package mcbfs_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcbfs"
)

// undirectedPath builds a symmetric path of n vertices: a BFS from
// vertex 0 reaches exactly n vertices, so with a distinct n per epoch
// every query result identifies the snapshot that served it.
func undirectedPath(t testing.TB, n int) *mcbfs.Graph {
	t.Helper()
	edges := make([]mcbfs.Edge, 0, 2*(n-1))
	for v := 0; v < n-1; v++ {
		edges = append(edges,
			mcbfs.Edge{Src: mcbfs.Vertex(v), Dst: mcbfs.Vertex(v + 1)},
			mcbfs.Edge{Src: mcbfs.Vertex(v + 1), Dst: mcbfs.Vertex(v)})
	}
	g, err := mcbfs.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// waitDrained polls until every retired snapshot has finished draining.
func waitDrained(t *testing.T, pool *mcbfs.Pool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for pool.Draining() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("snapshots still draining after 10s: %d", pool.Draining())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolSwapUnderLoad is the tentpole's acceptance test: continuous
// client traffic across three live Swaps, zero failed queries, and
// every result consistent with exactly one epoch — the path length its
// snapshot was built from. Per client the observed epoch must be
// monotone: once a query has been served by epoch k, no later query in
// that goroutine may see an older graph. Run with -race.
func TestPoolSwapUnderLoad(t *testing.T) {
	// Path length per epoch: epoch e serves sizes[e-1] vertices.
	sizes := []int{200, 300, 400, 500}
	epochOf := map[int64]int64{}
	for i, n := range sizes {
		epochOf[int64(n)] = int64(i + 1)
	}
	for _, mode := range []struct {
		name     string
		batching mcbfs.BatchingOptions
	}{
		{"direct", mcbfs.BatchingOptions{}},
		{"batching", mcbfs.BatchingOptions{Lanes: 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			metrics := &mcbfs.Metrics{}
			pool, err := mcbfs.NewPool(undirectedPath(t, sizes[0]), mcbfs.PoolOptions{
				Size:     2,
				Search:   mcbfs.Options{Threads: 2},
				Metrics:  metrics,
				Batching: mode.batching,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()

			var stop atomic.Bool
			var queries atomic.Int64
			const clients = 6
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastEpoch int64
					for !stop.Load() {
						res, err := pool.Query(context.Background(), 0)
						if err != nil {
							errs <- err
							return
						}
						queries.Add(1)
						e, ok := epochOf[res.Reached]
						if !ok {
							t.Errorf("result reached %d vertices, matching no epoch", res.Reached)
							return
						}
						if e < lastEpoch {
							t.Errorf("epoch went backwards: %d after %d", e, lastEpoch)
							return
						}
						lastEpoch = e
					}
				}()
			}

			for _, n := range sizes[1:] {
				time.Sleep(20 * time.Millisecond) // let traffic hit the current epoch
				if err := pool.Swap(undirectedPath(t, n)); err != nil {
					t.Errorf("swap to %d vertices: %v", n, err)
				}
			}
			time.Sleep(20 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Errorf("query failed during swap: %v", err)
			}

			if got := pool.Epoch(); got != 4 {
				t.Errorf("Epoch() = %d after 3 swaps, want 4", got)
			}
			if got := metrics.Swaps.Load(); got != 3 {
				t.Errorf("Swaps = %d, want 3", got)
			}
			if got := metrics.SwapDegraded.Load(); got != 0 {
				t.Errorf("SwapDegraded = %d, want 0", got)
			}
			waitDrained(t, pool)
			if got := metrics.SnapshotsDrained.Load(); got != 3 {
				t.Errorf("SnapshotsDrained = %d, want 3 (current epoch still serving)", got)
			}
			if queries.Load() < clients {
				t.Errorf("only %d queries ran across the swaps", queries.Load())
			}
		})
	}
}

// TestPoolSwapDrainWaitsForBorrower pins the drain protocol: a Swap
// while a QueryFunc still holds its borrow must leave the old snapshot
// draining — Searchers open, the in-flight query unharmed — until the
// borrow is released, and only then tear it down.
func TestPoolSwapDrainWaitsForBorrower(t *testing.T) {
	metrics := &mcbfs.Metrics{}
	pool, err := mcbfs.NewPool(undirectedPath(t, 100), mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 1},
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	inFn := make(chan struct{})
	releaseFn := make(chan struct{})
	qdone := make(chan error, 1)
	go func() {
		qdone <- pool.QueryFunc(context.Background(), 0, mcbfs.Query{}, func(res *mcbfs.Result) error {
			close(inFn)
			<-releaseFn
			if res.Reached != 100 {
				t.Errorf("in-flight query saw %d vertices, want the old epoch's 100", res.Reached)
			}
			return nil
		})
	}()
	<-inFn

	if err := pool.Swap(undirectedPath(t, 150)); err != nil {
		t.Fatal(err)
	}
	if got := pool.Draining(); got != 1 {
		t.Errorf("Draining() = %d with a borrow still held on the old epoch, want 1", got)
	}
	if got := metrics.SnapshotsDrained.Load(); got != 0 {
		t.Errorf("old snapshot drained while its borrower was still inside QueryFunc")
	}
	// New traffic is already on the new epoch while the old one drains.
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 150 {
		t.Errorf("post-swap query reached %d, want 150", res.Reached)
	}

	close(releaseFn)
	if err := <-qdone; err != nil {
		t.Fatalf("in-flight query failed across the swap: %v", err)
	}
	waitDrained(t, pool)
	if got := metrics.SnapshotsDrained.Load(); got != 1 {
		t.Errorf("SnapshotsDrained = %d after release, want 1", got)
	}
}

// TestPoolSwapAllocs checks the 0 allocs/op contract survives the
// snapshot indirection: warm queries between swaps allocate nothing,
// in both direct and batching mode.
func TestPoolSwapAllocs(t *testing.T) {
	for _, mode := range []struct {
		name     string
		batching mcbfs.BatchingOptions
	}{
		{"direct", mcbfs.BatchingOptions{}},
		{"batching", mcbfs.BatchingOptions{Lanes: 1}}, // width 1: no admission window in the loop
	} {
		t.Run(mode.name, func(t *testing.T) {
			pool, err := mcbfs.NewPool(undirectedPath(t, 100), mcbfs.PoolOptions{
				Size:     1,
				Search:   mcbfs.Options{Threads: 1},
				Batching: mode.batching,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			ctx := context.Background()
			if err := pool.Swap(undirectedPath(t, 150)); err != nil {
				t.Fatal(err)
			}
			waitDrained(t, pool)
			for i := 0; i < 3; i++ { // warm every path once
				if _, err := pool.Query(ctx, 0); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(20, func() {
				if _, err := pool.Query(ctx, 0); err != nil {
					t.Fatal(err)
				}
			})
			if avg > 0 {
				t.Errorf("warm query after a swap allocates %.1f objects/op, want 0", avg)
			}
		})
	}
}

// TestPoolSwapDegrades pins the degradation rule: when the new
// snapshot cannot be built the pool keeps serving the old epoch
// untouched and reports the failure, in both the Swap error and the
// SwapDegraded counter.
func TestPoolSwapDegrades(t *testing.T) {
	g := undirectedPath(t, 100)
	// A transpose that is a distinct object from g: valid for the
	// original graph, but impossible to carry to a swapped-in one.
	gt := undirectedPath(t, 100)
	metrics := &mcbfs.Metrics{}
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 1, Transpose: gt},
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if err := pool.Swap(undirectedPath(t, 150)); err == nil {
		t.Fatal("swap with a mismatched transpose built a snapshot")
	}
	if got := pool.Epoch(); got != 1 {
		t.Errorf("Epoch() = %d after failed swap, want 1", got)
	}
	if got := metrics.SwapDegraded.Load(); got != 1 {
		t.Errorf("SwapDegraded = %d, want 1", got)
	}
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatalf("query after failed swap: %v", err)
	}
	if res.Reached != 100 {
		t.Errorf("degraded pool reached %d, want the old epoch's 100", res.Reached)
	}
}

// TestPoolIngestRebuild exercises the buffered-ingest path: edges
// buffer invisibly, an explicit Rebuild merges them through the
// parallel builder and swaps the grown graph in, and with
// RebuildThreshold set the rebuild triggers itself.
func TestPoolIngestRebuild(t *testing.T) {
	metrics := &mcbfs.Metrics{}
	pool, err := mcbfs.NewPool(undirectedPath(t, 50), mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 1},
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Extend the path: 49–50, 50–51 (symmetric), growing the graph to
	// 52 vertices.
	pending, err := pool.Ingest([]mcbfs.Edge{
		{Src: 49, Dst: 50}, {Src: 50, Dst: 49},
		{Src: 50, Dst: 51}, {Src: 51, Dst: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pending != 4 {
		t.Errorf("Ingest reported %d pending, want 4", pending)
	}
	if got := metrics.IngestedEdges.Load(); got != 4 {
		t.Errorf("IngestedEdges = %d, want 4", got)
	}
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 50 {
		t.Errorf("buffered edges leaked into the serving graph: reached %d, want 50", res.Reached)
	}

	epoch, err := pool.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Errorf("Rebuild returned epoch %d, want 2", epoch)
	}
	if got := pool.Pending(); got != 0 {
		t.Errorf("Pending() = %d after Rebuild, want 0", got)
	}
	res, err = pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 52 {
		t.Errorf("rebuilt graph reached %d, want 52", res.Reached)
	}

	// No-op rebuild: nothing pending, epoch unchanged.
	epoch, err = pool.Rebuild()
	if err != nil || epoch != 2 {
		t.Errorf("empty Rebuild = (%d, %v), want (2, nil)", epoch, err)
	}
}

func TestPoolIngestAutoRebuild(t *testing.T) {
	pool, err := mcbfs.NewPool(undirectedPath(t, 50), mcbfs.PoolOptions{
		Size:             1,
		Search:           mcbfs.Options{Threads: 1},
		RebuildThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if _, err := pool.Ingest([]mcbfs.Edge{{Src: 49, Dst: 50}, {Src: 50, Dst: 49}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for pool.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("threshold-triggered rebuild never swapped a new epoch in")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 51 {
		t.Errorf("auto-rebuilt graph reached %d, want 51", res.Reached)
	}
}

// TestPoolSwapRecomputesOrdering checks a swapped-in graph gets its own
// locality ordering: queries on the new epoch still report original
// vertex ids (the translation layer was rebuilt for the new graph) and
// their parents form a valid BFS tree of the swapped-in graph.
func TestPoolSwapRecomputesOrdering(t *testing.T) {
	pool, err := mcbfs.NewPool(undirectedPath(t, 100), mcbfs.PoolOptions{
		Size:   1,
		Search: mcbfs.Options{Threads: 2, Ordering: mcbfs.OrderDegree},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	g2 := undirectedPath(t, 150)
	if err := pool.Swap(g2); err != nil {
		t.Fatal(err)
	}
	// Query from an endpoint that only exists in the new graph, and
	// validate the parent tree against it in original-id space.
	err = pool.QueryFunc(context.Background(), 149, mcbfs.Query{}, func(res *mcbfs.Result) error {
		if res.Reached != 150 {
			t.Errorf("reached %d from vertex 149, want 150", res.Reached)
		}
		return mcbfs.ValidateTree(g2, 149, res.Parents)
	})
	if err != nil {
		t.Fatalf("query on reordered swapped graph: %v", err)
	}
}

// TestPoolShedNotCancelled is the regression test for the
// double-counting defect: a query shed after its deadline expired
// matches both ErrPoolSaturated and context.DeadlineExceeded, and used
// to increment Shed and Cancelled. Each outcome must land in exactly
// one counter.
func TestPoolShedNotCancelled(t *testing.T) {
	metrics := &mcbfs.Metrics{}
	pool, err := mcbfs.NewPool(undirectedPath(t, 100), mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 1},
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Occupy the only Searcher so the next query must wait and shed.
	hold := make(chan struct{})
	inFn := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- pool.QueryFunc(context.Background(), 0, mcbfs.Query{}, func(*mcbfs.Result) error {
			close(inFn)
			<-hold
			return nil
		})
	}()
	<-inFn

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = pool.Query(ctx, 0)
	if err == nil {
		t.Fatal("query admitted while the pool was saturated")
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if shed := metrics.Shed.Load(); shed != 1 {
		t.Errorf("Shed = %d, want 1", shed)
	}
	if cancelled := metrics.Cancelled.Load(); cancelled != 0 {
		t.Errorf("Cancelled = %d for a shed query, want 0 (double-counted)", cancelled)
	}
}
