//go:build !linux

package affinity

import "errors"

// Supported reports whether CPU pinning works on this platform.
func Supported() bool { return false }

// PinToCPU is unavailable off Linux; callers fall back to unpinned
// execution.
func PinToCPU(cpu int) (func(), error) {
	return nil, errors.New("affinity: CPU pinning is only implemented on linux")
}

// AllowedCPUs is unavailable off Linux.
func AllowedCPUs() []int { return nil }
