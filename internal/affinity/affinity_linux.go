//go:build linux

// Package affinity provides best-effort CPU pinning for worker
// goroutines — the paper's "thread and memory affinity libraries"
// brought as close as Go allows.
//
// The paper pins one pthread per hardware thread so that the per-socket
// data partitioning of Algorithm 3 coincides with physical sockets. Go
// schedules goroutines over OS threads freely, but a goroutine can (1)
// lock itself to its OS thread and (2) on Linux, bind that thread to a
// CPU set with sched_setaffinity. Together these give the paper's
// placement discipline whenever the host exposes multiple CPUs.
//
// NUMA *memory* placement (the other half of the paper's affinity
// story) has no portable user-space control in Go; first-touch applies,
// and the multi-socket algorithm's partitioned writes mean each
// socket's workers touch their own partition first, which is the
// first-touch-friendly order.
package affinity

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// Supported reports whether CPU pinning works on this platform.
func Supported() bool { return true }

// cpuSet mirrors the kernel's cpu_set_t for up to 1024 CPUs.
type cpuSet [16]uint64

func (s *cpuSet) set(cpu int) {
	if cpu >= 0 && cpu < len(s)*64 {
		s[cpu/64] |= 1 << (uint(cpu) % 64)
	}
}

// PinToCPU locks the calling goroutine to its OS thread and binds that
// thread to the given CPU (modulo the machine's CPU count). It returns
// an unpin function that releases the thread back to the scheduler and
// restores a full CPU mask; callers should defer it.
//
// Errors are returned rather than fatal: pinning is a performance
// refinement, and callers fall back to unpinned execution.
func PinToCPU(cpu int) (unpin func(), err error) {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	cpu = ((cpu % n) + n) % n

	runtime.LockOSThread()
	var mask cpuSet
	mask.set(cpu)
	if err := schedSetaffinity(0, &mask); err != nil {
		runtime.UnlockOSThread()
		return nil, fmt.Errorf("affinity: pinning to cpu %d: %w", cpu, err)
	}
	return func() {
		// Restore permission to run anywhere before unlocking, so the
		// thread returned to the pool is not still pinned.
		var all cpuSet
		for c := 0; c < n && c < len(all)*64; c++ {
			all.set(c)
		}
		_ = schedSetaffinity(0, &all)
		runtime.UnlockOSThread()
	}, nil
}

// schedSetaffinity wraps the raw Linux syscall; pid 0 means the calling
// thread.
func schedSetaffinity(pid int, mask *cpuSet) error {
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		uintptr(pid),
		uintptr(unsafe.Sizeof(*mask)),
		uintptr(unsafe.Pointer(mask)),
	)
	if errno != 0 {
		return errno
	}
	return nil
}

// AllowedCPUs returns the CPUs the calling thread may run on, read
// back with sched_getaffinity. Useful for verifying pinning in tests;
// returns nil if the kernel call fails.
func AllowedCPUs() []int {
	var mask cpuSet
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_GETAFFINITY,
		0,
		uintptr(unsafe.Sizeof(mask)),
		uintptr(unsafe.Pointer(&mask)),
	)
	if errno != 0 {
		return nil
	}
	var cpus []int
	for i, word := range mask {
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				cpus = append(cpus, i*64+b)
			}
		}
	}
	return cpus
}
