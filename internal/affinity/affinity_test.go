package affinity

import (
	"runtime"
	"sync"
	"testing"
)

func TestPinToCPURestrictsMask(t *testing.T) {
	if !Supported() {
		t.Skip("pinning not supported on this platform")
	}
	unpin, err := PinToCPU(0)
	if err != nil {
		t.Fatalf("PinToCPU(0): %v", err)
	}
	cpus := AllowedCPUs()
	unpin()
	if len(cpus) != 1 || cpus[0] != 0 {
		t.Errorf("pinned mask = %v, want [0]", cpus)
	}
}

func TestUnpinRestoresMask(t *testing.T) {
	if !Supported() {
		t.Skip("pinning not supported on this platform")
	}
	unpin, err := PinToCPU(0)
	if err != nil {
		t.Fatal(err)
	}
	unpin()
	// The thread that ran unpin got a full mask; verify on a fresh
	// locked thread that the mask covers every CPU.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cpus := AllowedCPUs()
	if len(cpus) < runtime.NumCPU() {
		t.Errorf("mask after unpin covers %d CPUs, host has %d", len(cpus), runtime.NumCPU())
	}
}

func TestPinToCPUWrapsIndex(t *testing.T) {
	if !Supported() {
		t.Skip("pinning not supported on this platform")
	}
	// Worker indexes beyond NumCPU must wrap, not fail.
	for _, idx := range []int{runtime.NumCPU(), 3*runtime.NumCPU() + 1, -1} {
		unpin, err := PinToCPU(idx)
		if err != nil {
			t.Errorf("PinToCPU(%d): %v", idx, err)
			continue
		}
		unpin()
	}
}

func TestPinManyGoroutines(t *testing.T) {
	if !Supported() {
		t.Skip("pinning not supported on this platform")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			unpin, err := PinToCPU(w)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer unpin()
			if cpus := AllowedCPUs(); len(cpus) != 1 {
				t.Errorf("worker %d mask = %v, want a single CPU", w, cpus)
			}
		}(w)
	}
	wg.Wait()
}
