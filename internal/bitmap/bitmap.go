// Package bitmap provides dense bit vectors used to mark visited vertices
// during graph exploration.
//
// The SC'10 BFS paper's first major optimization is replacing the
// per-vertex parent check with a bitmap probe: 32 million vertices of
// visit state fit in 4 MB, which keeps the random-access working set
// inside the last-level cache and raises the probe rate by ~4x (paper
// Fig. 2). Two variants are provided:
//
//   - Bitmap: a plain, single-goroutine bit vector.
//   - Atomic: a concurrent bit vector whose TestAndSet is the Go
//     equivalent of the paper's __sync_or_and_fetch "LockedReadSet".
//
// Atomic additionally exposes Get, the cheap non-atomic probe that
// enables the paper's double-checked pattern (plain read first, atomic
// read-and-set only when the bit looks unset).
package bitmap

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

func wordsFor(n int) int {
	return (n + wordBits - 1) / wordBits
}

// Bitmap is a fixed-size bit vector. It is not safe for concurrent use;
// see Atomic for the concurrent variant.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a Bitmap with n bits, all zero. It panics if n < 0.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Bitmap{words: make([]uint64, wordsFor(n)), n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// TestAndSet sets bit i and reports whether it was previously set.
func (b *Bitmap) TestAndSet(i int) bool {
	w := i / wordBits
	mask := uint64(1) << (uint(i) % wordBits)
	old := b.words[w]
	b.words[w] = old | mask
	return old&mask != 0
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Bytes returns the size of the bitmap's backing storage in bytes. The
// paper reasons about working sets in these terms (4 MB for 32 M
// vertices).
func (b *Bitmap) Bytes() int { return len(b.words) * 8 }

// Atomic is a fixed-size bit vector safe for concurrent use. All methods
// except Reset may be called from multiple goroutines simultaneously.
type Atomic struct {
	words []atomic.Uint64
	n     int
}

// NewAtomic returns an Atomic bitmap with n bits, all zero. It panics if
// n < 0.
func NewAtomic(n int) *Atomic {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Atomic{words: make([]atomic.Uint64, wordsFor(n)), n: n}
}

// Len returns the number of bits in the bitmap.
func (a *Atomic) Len() int { return a.n }

// Get reports whether bit i is set, using a single atomic load. This is
// the inexpensive probe of the paper's double-checked idiom: it never
// takes a bus lock, so late BFS levels (where almost every neighbour is
// already visited) avoid nearly all locked operations (paper Fig. 4).
func (a *Atomic) Get(i int) bool {
	return a.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet atomically sets bit i and reports whether it was previously
// set. It is the moral equivalent of the paper's LockedReadSet
// (__sync_or_and_fetch on x86, a lock-prefixed OR).
//
// The implementation is a CAS loop rather than atomic.Uint64.Or: the Or
// intrinsic is miscompiled on some toolchains when the word is a slice
// element and the returned value is used, and the loop additionally
// short-circuits without a write when the bit is already set, which is
// the common case in late BFS levels.
func (a *Atomic) TestAndSet(i int) bool {
	w := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 {
			return true
		}
		if w.CompareAndSwap(old, old|mask) {
			return false
		}
	}
}

// Set atomically sets bit i without reporting the previous value.
func (a *Atomic) Set(i int) {
	w := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 {
			return
		}
		if w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// Clear atomically clears bit i. Like Set it short-circuits without a
// write when the bit is already clear.
func (a *Atomic) Clear(i int) {
	w := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := w.Load()
		if old&mask == 0 {
			return
		}
		if w.CompareAndSwap(old, old&^mask) {
			return
		}
	}
}

// Reset clears every bit. It must not race with other methods; callers
// reset between BFS runs, not during one.
func (a *Atomic) Reset() {
	for i := range a.words {
		a.words[i].Store(0)
	}
}

// ClearWordOf zeroes the whole 64-bit word containing bit i. It is the
// O(touched) reset primitive of a pooled search session: walking the
// reached list and zeroing each vertex's word clears every set bit as
// long as set bits only ever belong to reached vertices. Like Reset it
// is quiescent-only — it must not race with concurrent mutation.
func (a *Atomic) ClearWordOf(i int) {
	a.words[i/wordBits].Store(0)
}

// ResetWords zeroes words [lo, hi) — the shard primitive of a parallel
// full clear (each worker resets a disjoint word range). Quiescent-only
// in the same sense as Reset.
func (a *Atomic) ResetWords(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.words[i].Store(0)
	}
}

// Words returns the number of 64-bit words backing the bitmap.
func (a *Atomic) Words() int { return len(a.words) }

// Lanes is a dense vector of 64-bit lane masks, one whole word per
// element — the multi-source generalization of the visited bitmap. Where
// Atomic packs 64 vertices into one word to shrink a single search's
// working set, Lanes packs 64 *searches* into one word per vertex: bit l
// of word v records whether lane l's BFS has seen vertex v, so a batch
// of up to 64 traversals shares one working set and one pass over each
// adjacency list.
//
// Or is the multi-bit analogue of Atomic.TestAndSet: it returns the
// word's previous value, from which the caller derives which lane bits
// it newly claimed. Load is the cheap probe of the paper's
// double-checked idiom lifted to lane masks — probe first, and only when
// some wanted bit looks clear pay the locked OR.
type Lanes struct {
	words []atomic.Uint64
	n     int
}

// NewLanes returns a Lanes vector with n elements, all zero. It panics
// if n < 0.
func NewLanes(n int) *Lanes {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Lanes{words: make([]atomic.Uint64, n), n: n}
}

// Len returns the number of elements.
func (l *Lanes) Len() int { return l.n }

// Load returns element i's lane mask with a single atomic load — the
// inexpensive probe half of the double-checked claim.
func (l *Lanes) Load(i int) uint64 {
	return l.words[i].Load()
}

// Or sets the bits of mask in element i and returns the element's
// previous value. Like Atomic.TestAndSet it is a CAS loop that
// short-circuits without a write when every wanted bit is already set —
// the common case once a batch's lanes converge on the same frontier.
func (l *Lanes) Or(i int, mask uint64) uint64 {
	w := &l.words[i]
	for {
		old := w.Load()
		if old&mask == mask {
			return old
		}
		if w.CompareAndSwap(old, old|mask) {
			return old
		}
	}
}

// Store sets element i to mask, unconditionally. Quiescent-only in the
// same sense as Reset: session resets use it between traversals, never
// during one.
func (l *Lanes) Store(i int, mask uint64) {
	l.words[i].Store(mask)
}

// ResetWords zeroes elements [lo, hi) — the shard primitive of a
// parallel full clear. Quiescent-only.
func (l *Lanes) ResetWords(lo, hi int) {
	for i := lo; i < hi; i++ {
		l.words[i].Store(0)
	}
}

// Bytes returns the size of the backing storage in bytes (8 per
// element; a 64-lane batch over 32 M vertices carries 256 MB of lane
// state but amortizes every adjacency scan across the whole batch).
func (l *Lanes) Bytes() int { return len(l.words) * 8 }

// Count returns the number of set bits. The count is only exact when no
// concurrent mutation is in flight.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i].Load())
	}
	return c
}

// Bytes returns the size of the backing storage in bytes.
func (a *Atomic) Bytes() int { return len(a.words) * 8 }
