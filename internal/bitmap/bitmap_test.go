package bitmap

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewAllZero(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
	}
	if b.Count() != 0 {
		t.Errorf("Count = %d, want 0", b.Count())
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestNewAtomicPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAtomic(-1) did not panic")
		}
	}()
	NewAtomic(-1)
}

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestSetDoesNotDisturbNeighbours(t *testing.T) {
	b := New(192)
	b.Set(64)
	for i := 0; i < 192; i++ {
		if got := b.Get(i); got != (i == 64) {
			t.Errorf("bit %d = %v after Set(64)", i, got)
		}
	}
}

func TestTestAndSet(t *testing.T) {
	b := New(100)
	if b.TestAndSet(42) {
		t.Error("TestAndSet on clear bit returned true")
	}
	if !b.TestAndSet(42) {
		t.Error("TestAndSet on set bit returned false")
	}
	if !b.Get(42) {
		t.Error("bit not set after TestAndSet")
	}
}

func TestCount(t *testing.T) {
	b := New(1000)
	idx := []int{0, 5, 63, 64, 500, 999}
	for _, i := range idx {
		b.Set(i)
	}
	if got := b.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
	b.Set(0) // setting twice must not double-count
	if got := b.Count(); got != len(idx) {
		t.Errorf("Count after duplicate Set = %d, want %d", got, len(idx))
	}
}

func TestReset(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", b.Count())
	}
}

func TestLenAndBytes(t *testing.T) {
	cases := []struct{ n, words int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		b := New(c.n)
		if b.Len() != c.n {
			t.Errorf("New(%d).Len() = %d", c.n, b.Len())
		}
		if b.Bytes() != c.words*8 {
			t.Errorf("New(%d).Bytes() = %d, want %d", c.n, b.Bytes(), c.words*8)
		}
	}
}

func TestWorkingSetClaim(t *testing.T) {
	// Paper: "in 4MB we can store all the visit information for a graph
	// with 32 million vertices".
	b := New(32 << 20)
	if b.Bytes() != 4<<20 {
		t.Errorf("32M-vertex bitmap occupies %d bytes, want %d", b.Bytes(), 4<<20)
	}
}

func TestAtomicSetGet(t *testing.T) {
	a := NewAtomic(130)
	for _, i := range []int{0, 63, 64, 129} {
		if a.Get(i) {
			t.Errorf("bit %d set in fresh atomic bitmap", i)
		}
		a.Set(i)
		if !a.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
}

func TestAtomicTestAndSet(t *testing.T) {
	a := NewAtomic(100)
	if a.TestAndSet(7) {
		t.Error("TestAndSet on clear bit returned true")
	}
	if !a.TestAndSet(7) {
		t.Error("TestAndSet on set bit returned false")
	}
}

func TestAtomicClear(t *testing.T) {
	a := NewAtomic(100)
	a.Clear(7) // clearing a clear bit is a no-op
	if a.Get(7) {
		t.Error("bit set after Clear on clear bit")
	}
	a.Set(7)
	a.Set(8) // same word
	a.Clear(7)
	if a.Get(7) {
		t.Error("bit still set after Clear")
	}
	if !a.Get(8) {
		t.Error("Clear disturbed a neighbouring bit")
	}
}

// TestAtomicConcurrentSetClear drives Set and Clear on distinct bits of
// shared words from many goroutines — the hybrid BFS frontier
// build/clear pattern, where an index-partitioned frontier slice lands
// arbitrary vertices on the same word.
func TestAtomicConcurrentSetClear(t *testing.T) {
	const goroutines = 8
	const bits = 512
	a := NewAtomic(bits)
	for i := 0; i < bits; i += 2 {
		a.Set(i) // even bits pre-set, cleared below; odd bits set below
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < bits; i += goroutines {
				if i%2 == 0 {
					a.Clear(i)
				} else {
					a.Set(i)
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < bits; i++ {
		if want := i%2 == 1; a.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, a.Get(i), want)
		}
	}
}

func TestAtomicReset(t *testing.T) {
	a := NewAtomic(256)
	for i := 0; i < 256; i += 7 {
		a.Set(i)
	}
	a.Reset()
	if a.Count() != 0 {
		t.Errorf("Count after Reset = %d", a.Count())
	}
}

// TestAtomicTestAndSetExactlyOneWinner is the invariant the BFS relies on:
// when many goroutines race to claim the same vertex, exactly one observes
// "previously unset".
func TestAtomicTestAndSetExactlyOneWinner(t *testing.T) {
	const goroutines = 16
	const bits = 512
	a := NewAtomic(bits)
	wins := make([]int, goroutines)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < bits; i++ {
				if !a.TestAndSet(i) {
					wins[g]++
				}
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != bits {
		t.Errorf("total wins = %d, want exactly %d (one winner per bit)", total, bits)
	}
	if a.Count() != bits {
		t.Errorf("Count = %d, want %d", a.Count(), bits)
	}
}

func TestAtomicConcurrentDisjointSets(t *testing.T) {
	const goroutines = 8
	const per = 1000
	a := NewAtomic(goroutines * per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * per; i < (g+1)*per; i++ {
				a.Set(i)
			}
		}(g)
	}
	wg.Wait()
	if a.Count() != goroutines*per {
		t.Errorf("Count = %d, want %d", a.Count(), goroutines*per)
	}
}

func TestQuickBitmapMatchesMapModel(t *testing.T) {
	// Property: a Bitmap behaves like a set of ints.
	f := func(ops []uint16) bool {
		const n = 1 << 12
		b := New(n)
		model := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			switch op % 3 {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if b.Get(i) != model[i] {
					return false
				}
			}
		}
		return b.Count() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTestAndSetIdempotent(t *testing.T) {
	f := func(idx []uint16) bool {
		const n = 1 << 12
		a := NewAtomic(n)
		for _, raw := range idx {
			i := int(raw) % n
			first := a.TestAndSet(i)
			second := a.TestAndSet(i)
			_ = first
			if !second { // second call must always see the bit set
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBitmapGet(b *testing.B) {
	bm := New(32 << 20)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = bm.Get((i * 2654435761) & (32<<20 - 1))
	}
	_ = sink
}

func BenchmarkAtomicGet(b *testing.B) {
	bm := NewAtomic(32 << 20)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = bm.Get((i * 2654435761) & (32<<20 - 1))
	}
	_ = sink
}

func BenchmarkAtomicTestAndSet(b *testing.B) {
	bm := NewAtomic(32 << 20)
	for i := 0; i < b.N; i++ {
		bm.TestAndSet((i * 2654435761) & (32<<20 - 1))
	}
}

// BenchmarkAtomicDoubleChecked quantifies the paper's Fig. 4 idiom: on a
// mostly-set bitmap, a plain probe before the atomic op avoids the locked
// instruction almost always.
func BenchmarkAtomicDoubleChecked(b *testing.B) {
	bm := NewAtomic(1 << 20)
	for i := 0; i < 1<<20; i++ {
		bm.Set(i)
	}
	for i := 0; i < b.N; i++ {
		v := (i * 2654435761) & (1<<20 - 1)
		if !bm.Get(v) {
			bm.TestAndSet(v)
		}
	}
}

func TestLanesNewAllZero(t *testing.T) {
	l := NewLanes(100)
	if l.Len() != 100 {
		t.Errorf("Len = %d, want 100", l.Len())
	}
	if l.Bytes() != 800 {
		t.Errorf("Bytes = %d, want 800", l.Bytes())
	}
	for i := 0; i < 100; i++ {
		if l.Load(i) != 0 {
			t.Fatalf("word %d = %#x in fresh Lanes", i, l.Load(i))
		}
	}
}

func TestLanesNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLanes(-1) did not panic")
		}
	}()
	NewLanes(-1)
}

func TestLanesOrReturnsPrevious(t *testing.T) {
	l := NewLanes(4)
	if old := l.Or(1, 0b0101); old != 0 {
		t.Errorf("first Or returned %#x, want 0", old)
	}
	if old := l.Or(1, 0b0110); old != 0b0101 {
		t.Errorf("second Or returned %#x, want 0b0101", old)
	}
	if got := l.Load(1); got != 0b0111 {
		t.Errorf("word = %#x, want 0b0111", got)
	}
	// Subset already present: short-circuit still reports the old value.
	if old := l.Or(1, 0b0001); old != 0b0111 {
		t.Errorf("subset Or returned %#x, want 0b0111", old)
	}
	if l.Load(0) != 0 || l.Load(2) != 0 {
		t.Error("Or disturbed neighbouring words")
	}
}

func TestLanesStoreAndResetWords(t *testing.T) {
	l := NewLanes(10)
	for i := 0; i < 10; i++ {
		l.Store(i, uint64(i)+1)
	}
	l.ResetWords(2, 5)
	for i := 0; i < 10; i++ {
		want := uint64(i) + 1
		if i >= 2 && i < 5 {
			want = 0
		}
		if got := l.Load(i); got != want {
			t.Errorf("word %d = %#x, want %#x", i, got, want)
		}
	}
}

// TestLanesConcurrentOr hammers one word from many goroutines, each
// claiming a distinct lane bit; every claim must be won exactly once
// and the word must end with every bit set.
func TestLanesConcurrentOr(t *testing.T) {
	l := NewLanes(1)
	var wg sync.WaitGroup
	wins := make([]int, 64)
	for lane := 0; lane < 64; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			mask := uint64(1) << uint(lane)
			for k := 0; k < 100; k++ {
				if old := l.Or(0, mask); old&mask == 0 {
					wins[lane]++
				}
			}
		}(lane)
	}
	wg.Wait()
	if got := l.Load(0); got != ^uint64(0) {
		t.Errorf("word = %#x, want all ones", got)
	}
	for lane, w := range wins {
		if w != 1 {
			t.Errorf("lane %d claimed %d times, want exactly once", lane, w)
		}
	}
}
