// Package topology describes the logical machine the BFS algorithms run
// on: how many sockets, cores per socket and SMT threads per core, and
// how vertices and worker threads map onto sockets.
//
// On the paper's hardware (Table I) the mapping is physical — pthreads
// pinned with the affinity libraries. Go offers no thread pinning, so
// here the topology is *logical*: it drives the same data partitioning,
// queue layout and channel wiring as the paper's Algorithm 3, and it
// parameterizes the machine-model simulator that reproduces the paper's
// scaling figures at full scale.
package topology

import "fmt"

// Machine describes one shared-memory system.
type Machine struct {
	// Name identifies the configuration in reports, e.g. "Nehalem-EP".
	Name string
	// Sockets is the number of processor sockets.
	Sockets int
	// CoresPerSocket is the number of physical cores per socket.
	CoresPerSocket int
	// ThreadsPerCore is the SMT width (2 on both Nehalem parts).
	ThreadsPerCore int
	// ClockGHz is the core frequency in GHz.
	ClockGHz float64
	// L1KB, L2KB are per-core cache sizes in KB; L3MB is the per-socket
	// shared last-level cache in MB.
	L1KB, L2KB int
	L3MB       int
	// CacheLineBytes is the coherence granularity.
	CacheLineBytes int
	// MemChannels is the number of DDR3 channels per socket.
	MemChannels int
	// MemoryGB is the installed memory in GB.
	MemoryGB int
	// MaxOutstanding is the per-core limit on in-flight memory requests
	// (the paper measures ~10 on both EP and EX, rising to ~50 and ~75
	// aggregate per socket with SMT).
	MaxOutstanding int
}

// NehalemEP is the dual-socket Xeon X5570 system of Table I.
var NehalemEP = Machine{
	Name:           "Nehalem-EP",
	Sockets:        2,
	CoresPerSocket: 4,
	ThreadsPerCore: 2,
	ClockGHz:       2.93,
	L1KB:           32,
	L2KB:           256,
	L3MB:           8,
	CacheLineBytes: 64,
	MemChannels:    3,
	MemoryGB:       48,
	MaxOutstanding: 10,
}

// NehalemEX is the four-socket Xeon 7560 system of Table I.
var NehalemEX = Machine{
	Name:           "Nehalem-EX",
	Sockets:        4,
	CoresPerSocket: 8,
	ThreadsPerCore: 2,
	ClockGHz:       2.26,
	L1KB:           32,
	L2KB:           256,
	L3MB:           24,
	CacheLineBytes: 64,
	MemChannels:    4,
	MemoryGB:       256,
	MaxOutstanding: 10,
}

// Generic returns a machine with the given shape and EP-like cache
// parameters, for tests and for mapping onto arbitrary hosts.
func Generic(sockets, coresPerSocket, threadsPerCore int) Machine {
	return Machine{
		Name:           fmt.Sprintf("generic-%ds%dc%dt", sockets, coresPerSocket, threadsPerCore),
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		ThreadsPerCore: threadsPerCore,
		ClockGHz:       2.93,
		L1KB:           32,
		L2KB:           256,
		L3MB:           8,
		CacheLineBytes: 64,
		MemChannels:    3,
		MemoryGB:       48,
		MaxOutstanding: 10,
	}
}

// Validate checks that the machine description is usable.
func (m Machine) Validate() error {
	if m.Sockets < 1 {
		return fmt.Errorf("topology: %q has %d sockets", m.Name, m.Sockets)
	}
	if m.CoresPerSocket < 1 {
		return fmt.Errorf("topology: %q has %d cores per socket", m.Name, m.CoresPerSocket)
	}
	if m.ThreadsPerCore < 1 {
		return fmt.Errorf("topology: %q has %d threads per core", m.Name, m.ThreadsPerCore)
	}
	return nil
}

// TotalCores returns the number of physical cores in the machine.
func (m Machine) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// TotalThreads returns the number of hardware threads in the machine
// (64 for the 4-socket EX, 16 for the EP).
func (m Machine) TotalThreads() int {
	return m.Sockets * m.CoresPerSocket * m.ThreadsPerCore
}

// SocketOfThread maps a worker thread id in [0, nThreads) to its socket
// following the paper's affinity policy (Table I): one thread per
// physical core first, walking sockets in order, then a second SMT pass
// over the same cores. On the EP this yields the published map
// "Proc 0: threads 0-3 & 8-11, Proc 1: 4-7 & 12-15"; on the EX
// "Proc 0: 0-7 & 32-39" and so on.
func (m Machine) SocketOfThread(thread, nThreads int) int {
	if thread < 0 || thread >= nThreads {
		panic(fmt.Sprintf("topology: thread %d out of range [0,%d)", thread, nThreads))
	}
	return (thread / m.CoresPerSocket) % m.Sockets
}

// SocketsForThreads returns how many sockets a run with nThreads workers
// spans under the SocketOfThread policy: nThreads <= CoresPerSocket
// stays on one socket (the paper's single-socket algorithm applies);
// beyond that, cores of further sockets are engaged before SMT.
func (m Machine) SocketsForThreads(nThreads int) int {
	if nThreads < 1 {
		return 1
	}
	s := (nThreads + m.CoresPerSocket - 1) / m.CoresPerSocket
	if s > m.Sockets {
		s = m.Sockets
	}
	return s
}

// Partition maps vertices onto sockets in contiguous equal blocks, the
// paper's "allocate n/sockets nodes to each socket" (Algorithm 3 line
// 2). DetermineSocket is O(1): one multiply-free division by a
// precomputed block size.
type Partition struct {
	n       int
	sockets int
	block   int
}

// NewPartition partitions n vertices over the given number of sockets.
func NewPartition(n, sockets int) (Partition, error) {
	if n < 0 {
		return Partition{}, fmt.Errorf("topology: negative vertex count %d", n)
	}
	if sockets < 1 {
		return Partition{}, fmt.Errorf("topology: partition needs >= 1 socket, got %d", sockets)
	}
	block := (n + sockets - 1) / sockets
	if block == 0 {
		block = 1
	}
	return Partition{n: n, sockets: sockets, block: block}, nil
}

// Sockets returns the number of sockets in the partition.
func (p Partition) Sockets() int { return p.sockets }

// DetermineSocket returns the socket owning vertex v (the paper's
// DetermineSocket(v)).
func (p Partition) DetermineSocket(v uint32) int {
	s := int(v) / p.block
	if s >= p.sockets {
		s = p.sockets - 1
	}
	return s
}

// Range returns the vertex range [lo, hi) owned by socket s.
func (p Partition) Range(s int) (lo, hi int) {
	lo = s * p.block
	hi = lo + p.block
	if lo > p.n {
		lo = p.n
	}
	if hi > p.n {
		hi = p.n
	}
	return lo, hi
}
