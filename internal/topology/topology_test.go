package topology

import (
	"testing"
	"testing/quick"
)

func TestTableIMachines(t *testing.T) {
	// Sanity-check the encoded Table I entries.
	if NehalemEP.TotalThreads() != 16 {
		t.Errorf("EP TotalThreads = %d, want 16", NehalemEP.TotalThreads())
	}
	if NehalemEP.TotalCores() != 8 {
		t.Errorf("EP TotalCores = %d, want 8", NehalemEP.TotalCores())
	}
	if NehalemEX.TotalThreads() != 64 {
		t.Errorf("EX TotalThreads = %d, want 64", NehalemEX.TotalThreads())
	}
	if NehalemEX.TotalCores() != 32 {
		t.Errorf("EX TotalCores = %d, want 32", NehalemEX.TotalCores())
	}
	for _, m := range []Machine{NehalemEP, NehalemEX, Generic(1, 1, 1)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	bad := []Machine{
		{Name: "no-sockets", Sockets: 0, CoresPerSocket: 4, ThreadsPerCore: 2},
		{Name: "no-cores", Sockets: 2, CoresPerSocket: 0, ThreadsPerCore: 2},
		{Name: "no-threads", Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s accepted", m.Name)
		}
	}
}

func TestSocketOfThreadEPMatchesTableI(t *testing.T) {
	// Table I: Proc 0 gets threads 0-3 and 8-11; Proc 1 gets 4-7 and
	// 12-15.
	want := map[int]int{
		0: 0, 1: 0, 2: 0, 3: 0,
		4: 1, 5: 1, 6: 1, 7: 1,
		8: 0, 9: 0, 10: 0, 11: 0,
		12: 1, 13: 1, 14: 1, 15: 1,
	}
	for th, s := range want {
		if got := NehalemEP.SocketOfThread(th, 16); got != s {
			t.Errorf("EP SocketOfThread(%d) = %d, want %d", th, got, s)
		}
	}
}

func TestSocketOfThreadEXMatchesTableI(t *testing.T) {
	// Table I: Proc 0: 0-7 & 32-39; Proc 1: 8-15 & 40-47; etc.
	cases := []struct{ thread, socket int }{
		{0, 0}, {7, 0}, {32, 0}, {39, 0},
		{8, 1}, {15, 1}, {40, 1}, {47, 1},
		{16, 2}, {23, 2}, {48, 2}, {55, 2},
		{24, 3}, {31, 3}, {56, 3}, {63, 3},
	}
	for _, c := range cases {
		if got := NehalemEX.SocketOfThread(c.thread, 64); got != c.socket {
			t.Errorf("EX SocketOfThread(%d) = %d, want %d", c.thread, got, c.socket)
		}
	}
}

func TestSocketOfThreadPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range thread")
		}
	}()
	NehalemEP.SocketOfThread(16, 16)
}

func TestSocketsForThreads(t *testing.T) {
	cases := []struct {
		m       Machine
		threads int
		want    int
	}{
		{NehalemEP, 1, 1},
		{NehalemEP, 4, 1},
		{NehalemEP, 5, 2},
		{NehalemEP, 8, 2},
		{NehalemEP, 16, 2}, // SMT threads reuse the same sockets
		{NehalemEX, 8, 1},
		{NehalemEX, 9, 2},
		{NehalemEX, 16, 2},
		{NehalemEX, 32, 4},
		{NehalemEX, 64, 4},
		{NehalemEX, 0, 1},
	}
	for _, c := range cases {
		if got := c.m.SocketsForThreads(c.threads); got != c.want {
			t.Errorf("%s SocketsForThreads(%d) = %d, want %d", c.m.Name, c.threads, got, c.want)
		}
	}
}

func TestPartitionBasic(t *testing.T) {
	p, err := NewPartition(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sockets() != 4 {
		t.Errorf("Sockets = %d, want 4", p.Sockets())
	}
	if p.DetermineSocket(0) != 0 {
		t.Error("vertex 0 not on socket 0")
	}
	if p.DetermineSocket(99) != 3 {
		t.Error("vertex 99 not on socket 3")
	}
	// Ranges cover [0, n) exactly once.
	covered := 0
	for s := 0; s < 4; s++ {
		lo, hi := p.Range(s)
		covered += hi - lo
		for v := lo; v < hi; v++ {
			if p.DetermineSocket(uint32(v)) != s {
				t.Fatalf("vertex %d: Range says socket %d, DetermineSocket says %d", v, s, p.DetermineSocket(uint32(v)))
			}
		}
	}
	if covered != 100 {
		t.Errorf("ranges cover %d vertices, want 100", covered)
	}
}

func TestPartitionUneven(t *testing.T) {
	// 10 vertices over 3 sockets: blocks of 4; socket 2 gets 2 vertices.
	p, err := NewPartition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Range(2)
	if lo != 8 || hi != 10 {
		t.Errorf("Range(2) = [%d,%d), want [8,10)", lo, hi)
	}
}

func TestPartitionMoreSocketsThanVertices(t *testing.T) {
	p, err := NewPartition(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex must land on a valid socket; tail sockets own empty
	// ranges.
	for v := uint32(0); v < 2; v++ {
		s := p.DetermineSocket(v)
		if s < 0 || s >= 4 {
			t.Errorf("vertex %d on socket %d", v, s)
		}
	}
	lo, hi := p.Range(3)
	if lo != hi {
		t.Errorf("socket 3 should own empty range, got [%d,%d)", lo, hi)
	}
}

func TestPartitionSingleSocket(t *testing.T) {
	p, err := NewPartition(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 50; v++ {
		if p.DetermineSocket(v) != 0 {
			t.Fatalf("vertex %d not on socket 0", v)
		}
	}
}

func TestPartitionRejectsBadArgs(t *testing.T) {
	if _, err := NewPartition(-1, 2); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewPartition(10, 0); err == nil {
		t.Error("zero sockets accepted")
	}
}

func TestPartitionZeroVertices(t *testing.T) {
	p, err := NewPartition(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Range(0)
	if lo != 0 || hi != 0 {
		t.Errorf("Range(0) on empty partition = [%d,%d)", lo, hi)
	}
}

func TestQuickPartitionConsistency(t *testing.T) {
	// Property: for any (n, sockets), DetermineSocket agrees with Range
	// and ranges tile [0, n).
	f := func(nRaw uint16, sRaw uint8) bool {
		n := int(nRaw % 5000)
		sockets := int(sRaw%8) + 1
		p, err := NewPartition(n, sockets)
		if err != nil {
			return false
		}
		total := 0
		for s := 0; s < sockets; s++ {
			lo, hi := p.Range(s)
			if lo > hi {
				return false
			}
			total += hi - lo
			for v := lo; v < hi; v++ {
				if p.DetermineSocket(uint32(v)) != s {
					return false
				}
			}
		}
		return total == n
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSocketOfThreadInRange(t *testing.T) {
	f := func(thRaw uint8, nRaw uint8) bool {
		m := NehalemEX
		n := int(nRaw%64) + 1
		th := int(thRaw) % n
		s := m.SocketOfThread(th, n)
		return s >= 0 && s < m.Sockets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
