package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// The seed-0 sequence is the canonical test vector published with the
	// reference C implementation (Vigna, 2015); the seed-1234567 values
	// are a stability snapshot of this implementation.
	s0 := NewSplitMix64(0)
	if got := s0.Uint64(); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) first output = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if got := s0.Uint64(); got != 0x6e789e6aa1b965f4 {
		t.Errorf("SplitMix64(0) second output = %#x, want 0x6e789e6aa1b965f4", got)
	}
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestXoshiroDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	x := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 5} {
		for i := 0; i < 200; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d, out of range", n, v)
			}
		}
	}
}

func TestUint64nOne(t *testing.T) {
	x := New(7)
	for i := 0; i < 50; i++ {
		if v := x.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared sanity check over 16 buckets.
	x := New(2024)
	const buckets = 16
	const samples = 160000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[x.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-squared = %.2f, distribution looks non-uniform", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v, out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	a := New(11)
	b := *a
	b.Jump()
	// The jumped stream must not coincide with the original for a long
	// prefix (they are 2^128 steps apart).
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("jumped stream collided with base stream at step %d", i)
		}
	}
}

func TestSplitAdvancesParent(t *testing.T) {
	parent := New(13)
	reference := New(13)
	child := parent.Split()
	reference.Jump()
	for i := 0; i < 100; i++ {
		if parent.Uint64() != reference.Uint64() {
			t.Fatalf("parent after Split does not match Jump at step %d", i)
		}
	}
	// Child must replay the original stream.
	orig := New(13)
	for i := 0; i < 100; i++ {
		if child.Uint64() != orig.Uint64() {
			t.Fatalf("child stream does not match pre-split stream at step %d", i)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(3)
	for _, n := range []int{0, 1, 2, 17, 1000} {
		p := make([]uint32, n)
		x.Perm(p)
		seen := make([]bool, n)
		for _, v := range p {
			if int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) produced invalid permutation", n)
			}
			seen[v] = true
		}
	}
}

func TestPermShuffles(t *testing.T) {
	x := New(8)
	p := make([]uint32, 100)
	x.Perm(p)
	inPlace := 0
	for i, v := range p {
		if int(v) == i {
			inPlace++
		}
	}
	// Expected number of fixed points of a random permutation is 1.
	if inPlace > 10 {
		t.Errorf("%d fixed points out of 100; Perm may not be shuffling", inPlace)
	}
}

func TestQuickUint64nAlwaysInRange(t *testing.T) {
	x := New(77)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return x.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSameSeedSameStream(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(steps); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkXoshiroUint64n(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64n(1000003)
	}
	_ = sink
}
