// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the graph generators and the benchmark harness.
//
// The generators in this package are reproducible across platforms and Go
// releases: given the same seed they always emit the same sequence. This
// matters for the experiment harness, where a figure must be regenerated
// on the exact same synthetic graph every run. math/rand makes no such
// cross-release guarantee for its shuffling helpers, so we keep our own.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator used to seed others and for
//     cheap one-off streams.
//   - Xoshiro256: xoshiro256**, the workhorse generator with good
//     statistical quality and a jump function for partitioning one logical
//     stream across worker goroutines.
package rng

import "math/bits"

// SplitMix64 is a 64-bit generator with a single uint64 of state.
// It is primarily used to expand a user seed into initialization material
// for larger-state generators. The zero value is a valid generator seeded
// with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements the xoshiro256** generator of Blackman and
// Vigna. It has 256 bits of state, passes stringent statistical tests,
// and supports Jump for creating 2^128 non-overlapping subsequences.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64,
// following the authors' recommended initialization.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// All-zero state is the one invalid state; SplitMix64 cannot emit four
	// consecutive zeros, so this is defensive only.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 1
	}
	return &x
}

// Uint64 returns the next value in the sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0. Lemire's multiply-shift rejection method is used to avoid
// modulo bias without a division in the common case.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly distributed value in [0, n) as an int.
// It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns a uniformly distributed boolean.
func (x *Xoshiro256) Bool() bool {
	return x.Uint64()&1 == 1
}

// jumpPoly is the characteristic polynomial used by Jump; it advances the
// stream by 2^128 steps.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps in O(256) time. Calling Jump
// k times on generators copied from a common origin yields k
// non-overlapping subsequences, one per worker.
func (x *Xoshiro256) Jump() {
	var s0, s1, s2, s3 uint64
	for _, p := range jumpPoly {
		for b := 0; b < 64; b++ {
			if p&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Split returns a new generator whose stream is non-overlapping with the
// receiver's next 2^128 outputs. The receiver is advanced past the
// returned generator's stream. Use it to hand independent streams to
// worker goroutines:
//
//	base := rng.New(seed)
//	for i := range workers {
//	    workers[i].rng = base.Split()
//	}
func (x *Xoshiro256) Split() *Xoshiro256 {
	child := *x
	x.Jump()
	return &child
}

// Perm fills p with a uniformly random permutation of [0, len(p)) using
// the Fisher-Yates shuffle.
func (x *Xoshiro256) Perm(p []uint32) {
	for i := range p {
		p[i] = uint32(i)
	}
	for i := len(p) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
