package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := randomGraph(t, 100, 400, 5)
	var buf bytes.Buffer
	if err := g.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, got) {
		t.Error("DIMACS round trip differs")
	}
}

func TestDIMACSFormatShape(t *testing.T) {
	g, err := FromEdges(3, []Edge{{Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p sp 3 1") {
		t.Errorf("missing problem line in %q", out)
	}
	if !strings.Contains(out, "a 1 3 1") {
		t.Errorf("missing 1-based edge in %q", out)
	}
}

func TestReadDIMACSAcceptsCommentsAndWeights(t *testing.T) {
	in := `c a comment
c another
p sp 4 2
a 1 2 7
a 4 1 3
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 0) {
		t.Error("edges misread")
	}
}

func TestReadDIMACSRejectsMalformed(t *testing.T) {
	bad := []string{
		"a 1 2 1\n",                     // edge before problem line
		"p sp 2 1\np sp 2 1\na 1 2 1\n", // duplicate problem line
		"p sp 2 1\na 1 3 1\n",           // endpoint beyond n
		"p sp 2 1\na 0 1 1\n",           // 0 endpoint in 1-based format
		"p sp 2 2\na 1 2 1\n",           // edge count mismatch
		"p sp 2\na 1 2 1\n",             // short problem line
		"p sp 2 1\nx 1 2\n",             // unknown record
		"p sp 2 1\na one 2 1\n",         // non-numeric
		"",                              // empty
		"p sp -1 0\n",                   // negative n
	}
	for _, in := range bad {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(t, 50, 200, 6)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, got) {
		t.Error("edge list round trip differs")
	}
}

func TestEdgeListPreservesIsolatedTail(t *testing.T) {
	// Vertex 9 is isolated; without the header it would be dropped.
	g, err := FromEdges(10, []Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10", got.NumVertices())
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 5\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Errorf("NumVertices = %d, want 6 (1 + max id)", g.NumVertices())
	}
	if !g.HasEdge(0, 5) || !g.HasEdge(2, 3) {
		t.Error("edges misread")
	}
}

func TestReadEdgeListRejectsMalformed(t *testing.T) {
	bad := []string{
		"0\n",                 // one field
		"0 x\n",               // non-numeric
		"-1 2\n",              // negative
		"# vertices 2\n0 5\n", // endpoint beyond declared count
		"# vertices -4\n",     // bad header
	}
	for _, in := range bad {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# a comment\n\n0 1\n\n# more\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestSortByDegree(t *testing.T) {
	// Star: the hub must become vertex 0.
	g, err := FromEdges(5, []Edge{
		{Src: 3, Dst: 0}, {Src: 3, Dst: 1}, {Src: 3, Dst: 2}, {Src: 3, Dst: 4}, {Src: 0, Dst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sorted, perm, err := g.SortByDegree()
	if err != nil {
		t.Fatal(err)
	}
	if perm[3] != 0 {
		t.Errorf("hub relabeled to %d, want 0", perm[3])
	}
	if sorted.Degree(0) != 4 {
		t.Errorf("new vertex 0 has degree %d, want 4", sorted.Degree(0))
	}
	// Degrees must be non-increasing.
	for v := 1; v < sorted.NumVertices(); v++ {
		if sorted.Degree(Vertex(v)) > sorted.Degree(Vertex(v-1)) {
			t.Errorf("degree order violated at %d", v)
		}
	}
	// Edge structure preserved under the permutation.
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			if !sorted.HasEdge(perm[u], perm[v]) {
				t.Errorf("edge %d->%d lost in relabeling", u, v)
			}
		}
	}
}

func TestSortByDegreeEmpty(t *testing.T) {
	var g Graph
	sorted, perm, err := g.SortByDegree()
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumVertices() != 0 || len(perm) != 0 {
		t.Error("empty graph mishandled")
	}
}
