package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary file format:
//
//	magic   uint32  'MCBF'
//	version uint32  1 or 2
//	n       uint64  vertex count
//	m       uint64  edge count
//	meta    uint64  (version 2 only) ordering tag << 32 | flags
//	offsets n+1 × int64 (little endian)
//	targets m × uint32 (little endian)
//	inv     n × uint32 (version 2 only, when flags bit 0 is set)
//
// The format is deliberately trivial: the harness writes multi-hundred-
// megabyte graphs and reads them back once per run, so raw arrays beat
// any clever encoding.
//
// Version 2 exists because version 1 silently lost ordering metadata:
// a file written after Reorder bakes the locality-optimized layout
// into the CSR, but nothing recorded which ordering produced it or how
// to translate ids back, so a loader served relabeled vertex ids as if
// they were original ones. Version 2 records the ordering tag and
// (optionally) the inverse permutation; version 1 files remain fully
// readable and WriteTo without metadata still emits byte-identical
// version 1 output.

const (
	fileMagic       = 0x4d434246 // "MCBF"
	fileVersion     = 1
	fileVersionMeta = 2

	// metaFlagInv marks that the inverse permutation array follows the
	// targets. All other flag bits must be zero.
	metaFlagInv = 1 << 0
)

// FileMeta is the ordering metadata carried by version-2 graph files:
// which Ordering the stored CSR was relabeled under, and (optionally)
// the inverse permutation translating relabeled ids back to original
// ones (Reordered.Inv — Inv[new] == old). A nil FileMeta, or one with
// OrderNatural and no permutation, round-trips as a version-1 file.
type FileMeta struct {
	// Order is the vertex ordering the stored layout was produced by.
	Order Ordering
	// Inv maps relabeled ids back to original ids; nil when the file
	// records only the ordering tag. When non-nil its length equals the
	// graph's vertex count and it is validated to be a bijection on
	// load.
	Inv []Vertex
}

// isV1 reports whether the metadata carries nothing worth a version-2
// header.
func (fm *FileMeta) isV1() bool {
	return fm == nil || (fm.Order == OrderNatural && fm.Inv == nil)
}

// WriteTo writes the graph to w as a version-1 file (no ordering
// metadata). It returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	return g.WriteToMeta(w, nil)
}

// WriteToMeta writes the graph to w with ordering metadata. A nil (or
// natural, permutation-free) meta produces a version-1 file identical
// to WriteTo's output; anything else produces a version-2 file. It
// returns the number of bytes written.
func (g *Graph) WriteToMeta(w io.Writer, meta *FileMeta) (int64, error) {
	n := g.NumVertices()
	if !meta.isV1() && meta.Inv != nil && len(meta.Inv) != n {
		return 0, fmt.Errorf("graph: permutation length %d != vertex count %d", len(meta.Inv), n)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	version := uint64(fileVersion)
	if !meta.isV1() {
		version = fileVersionMeta
	}
	header := []uint64{
		uint64(fileMagic)<<32 | version,
		uint64(n),
		uint64(len(g.targets)),
	}
	if version == fileVersionMeta {
		var flags uint64
		if meta.Inv != nil {
			flags |= metaFlagInv
		}
		header = append(header, uint64(meta.Order)<<32|flags)
	}
	if err := put(header); err != nil {
		return written, fmt.Errorf("graph: writing header: %w", err)
	}
	offsets := g.offsets
	if n == 0 {
		offsets = []int64{0}
	}
	if err := put(offsets); err != nil {
		return written, fmt.Errorf("graph: writing offsets: %w", err)
	}
	if err := put(g.targets); err != nil {
		return written, fmt.Errorf("graph: writing targets: %w", err)
	}
	if version == fileVersionMeta && meta.Inv != nil {
		if err := put(meta.Inv); err != nil {
			return written, fmt.Errorf("graph: writing permutation: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("graph: flushing: %w", err)
	}
	return written, nil
}

// ReadFrom reads a graph in the binary format produced by WriteTo or
// WriteToMeta, discarding any ordering metadata. Use ReadFromMeta to
// keep it.
func ReadFrom(r io.Reader) (*Graph, error) {
	g, _, err := ReadFromMeta(r)
	return g, err
}

// ReadFromMeta reads a graph and its ordering metadata. Version-1
// files (and version-2 files written without metadata) return a nil
// FileMeta. A stored permutation is validated to be a bijection on
// [0, n) before it is returned.
func ReadFromMeta(r io.Reader) (*Graph, *FileMeta, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var header [3]uint64
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if magic := header[0] >> 32; magic != fileMagic {
		return nil, nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	ver := header[0] & 0xffffffff
	if ver != fileVersion && ver != fileVersionMeta {
		return nil, nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	n, m := header[1], header[2]
	if n > MaxVertices {
		return nil, nil, fmt.Errorf("graph: vertex count %d exceeds maximum", n)
	}
	var meta *FileMeta
	if ver == fileVersionMeta {
		var metaWord uint64
		if err := binary.Read(br, binary.LittleEndian, &metaWord); err != nil {
			return nil, nil, fmt.Errorf("graph: reading metadata: %w", err)
		}
		order := Ordering(metaWord >> 32)
		flags := metaWord & 0xffffffff
		if order > OrderBFS {
			return nil, nil, fmt.Errorf("graph: unknown ordering tag %d", int(order))
		}
		if flags&^uint64(metaFlagInv) != 0 {
			return nil, nil, fmt.Errorf("graph: unknown metadata flags %#x", flags)
		}
		if order != OrderNatural || flags&metaFlagInv != 0 {
			meta = &FileMeta{Order: order}
			if flags&metaFlagInv != 0 {
				meta.Inv = []Vertex{} // marks "permutation follows"
			}
		}
	}
	// The header sizes are untrusted: read every array in bounded
	// chunks so a corrupt or malicious header cannot demand gigabytes
	// of allocation before the stream proves it actually carries the
	// data.
	const chunk = 1 << 20
	offsets := make([]int64, 0, min64(n+1, chunk))
	for read := uint64(0); read < n+1; {
		want := n + 1 - read
		if want > chunk {
			want = chunk
		}
		part := make([]int64, want)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		offsets = append(offsets, part...)
		read += want
	}
	targets := make([]Vertex, 0, min64(m, chunk))
	for read := uint64(0); read < m; {
		want := m - read
		if want > chunk {
			want = chunk
		}
		part := make([]Vertex, want)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, nil, fmt.Errorf("graph: reading targets: %w", err)
		}
		targets = append(targets, part...)
		read += want
	}
	if meta != nil && meta.Inv != nil {
		inv := make([]Vertex, 0, min64(n, chunk))
		for read := uint64(0); read < n; {
			want := n - read
			if want > chunk {
				want = chunk
			}
			part := make([]Vertex, want)
			if err := binary.Read(br, binary.LittleEndian, part); err != nil {
				return nil, nil, fmt.Errorf("graph: reading permutation: %w", err)
			}
			inv = append(inv, part...)
			read += want
		}
		seen := make([]bool, n)
		for i, v := range inv {
			if uint64(v) >= n || seen[v] {
				return nil, nil, fmt.Errorf("graph: permutation is not a bijection at index %d (value %d)", i, v)
			}
			seen[v] = true
		}
		meta.Inv = inv
	}
	g := &Graph{offsets: offsets, targets: targets}
	if n == 0 {
		g.offsets = nil
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: file contents invalid: %w", err)
	}
	return g, meta, nil
}

// Save writes the graph to the named file, creating or truncating it.
func (g *Graph) Save(path string) error {
	return g.SaveMeta(path, nil)
}

// SaveMeta is Save with ordering metadata, as for WriteToMeta.
func (g *Graph) SaveMeta(path string, meta *FileMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if _, err := g.WriteToMeta(f, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from the named file, discarding any ordering
// metadata.
func Load(path string) (*Graph, error) {
	g, _, err := LoadMeta(path)
	return g, err
}

// LoadMeta reads a graph and its ordering metadata (nil for version-1
// files) from the named file.
func LoadMeta(path string) (*Graph, *FileMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadFromMeta(f)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
