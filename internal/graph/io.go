package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary file format:
//
//	magic   uint32  'MCBF'
//	version uint32  1
//	n       uint64  vertex count
//	m       uint64  edge count
//	offsets n+1 × int64 (little endian)
//	targets m × uint32 (little endian)
//
// The format is deliberately trivial: the harness writes multi-hundred-
// megabyte graphs and reads them back once per run, so raw arrays beat
// any clever encoding.

const (
	fileMagic   = 0x4d434246 // "MCBF"
	fileVersion = 1
)

// WriteTo writes the graph to w in the binary format above. It returns
// the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	n := g.NumVertices()
	header := []uint64{
		uint64(fileMagic)<<32 | fileVersion,
		uint64(n),
		uint64(len(g.targets)),
	}
	if err := put(header); err != nil {
		return written, fmt.Errorf("graph: writing header: %w", err)
	}
	offsets := g.offsets
	if n == 0 {
		offsets = []int64{0}
	}
	if err := put(offsets); err != nil {
		return written, fmt.Errorf("graph: writing offsets: %w", err)
	}
	if err := put(g.targets); err != nil {
		return written, fmt.Errorf("graph: writing targets: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("graph: flushing: %w", err)
	}
	return written, nil
}

// ReadFrom reads a graph in the binary format produced by WriteTo.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var header [3]uint64
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if magic := header[0] >> 32; magic != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if ver := header[0] & 0xffffffff; ver != fileVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	n, m := header[1], header[2]
	if n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds maximum", n)
	}
	// The header sizes are untrusted: read both arrays in bounded
	// chunks so a corrupt or malicious header cannot demand gigabytes
	// of allocation before the stream proves it actually carries the
	// data.
	const chunk = 1 << 20
	offsets := make([]int64, 0, min64(n+1, chunk))
	for read := uint64(0); read < n+1; {
		want := n + 1 - read
		if want > chunk {
			want = chunk
		}
		part := make([]int64, want)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		offsets = append(offsets, part...)
		read += want
	}
	targets := make([]Vertex, 0, min64(m, chunk))
	for read := uint64(0); read < m; {
		want := m - read
		if want > chunk {
			want = chunk
		}
		part := make([]Vertex, want)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, fmt.Errorf("graph: reading targets: %w", err)
		}
		targets = append(targets, part...)
		read += want
	}
	g := &Graph{offsets: offsets, targets: targets}
	if n == 0 {
		g.offsets = nil
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: file contents invalid: %w", err)
	}
	return g, nil
}

// Save writes the graph to the named file, creating or truncating it.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
