package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst Vertex
}

// FromEdges builds a CSR graph with n vertices from an arbitrary edge
// list. Edges are grouped by source using a counting sort (O(n+m), no
// comparison sort), preserving duplicate edges; the paper's generators
// may emit multi-edges and the BFS must tolerate them. It returns an
// error if n is out of range or an endpoint exceeds n.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 || n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d out of range [0,%d]", n, MaxVertices)
	}
	for i, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) exceeds vertex count %d", i, e.Src, e.Dst, n)
		}
	}
	offsets := make([]int64, n+1)
	for _, e := range edges {
		offsets[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]Vertex, len(edges))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		targets[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}

// FromAdjacency builds a graph from explicit adjacency lists. It is a
// convenience for tests and examples; adj[v] lists the out-neighbours of
// v. It returns an error if a neighbour id is out of range.
func FromAdjacency(adj [][]Vertex) (*Graph, error) {
	n := len(adj)
	offsets := make([]int64, n+1)
	for v, nbrs := range adj {
		offsets[v+1] = offsets[v] + int64(len(nbrs))
	}
	targets := make([]Vertex, 0, offsets[n])
	for v, nbrs := range adj {
		for _, w := range nbrs {
			if int(w) >= n {
				return nil, fmt.Errorf("graph: neighbour %d of vertex %d out of range", w, v)
			}
			targets = append(targets, w)
		}
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}

// FromCSR wraps pre-built CSR arrays in a Graph without copying. The
// arrays must satisfy the invariants checked by Validate; FromCSR
// verifies them and returns an error otherwise. Generators use this path
// to avoid materializing an intermediate edge list.
func FromCSR(offsets []int64, targets []Vertex) (*Graph, error) {
	g := &Graph{offsets: offsets, targets: targets}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Undirected returns a graph in which every edge of g is paired with its
// reverse. Duplicate pairs are not removed: if g already contains both
// directions of an edge, the result contains both twice. Use
// Deduplicate afterwards if a simple graph is needed.
func (g *Graph) Undirected() *Graph {
	n := g.NumVertices()
	deg := make([]int64, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			deg[u+1]++
			deg[v+1]++
		}
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	targets := make([]Vertex, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			targets[cursor[u]] = v
			cursor[u]++
			targets[cursor[v]] = Vertex(u)
			cursor[v]++
		}
	}
	return &Graph{offsets: offsets, targets: targets}
}

// Deduplicate returns a copy of g with each adjacency list sorted and
// duplicate edges and self-loops removed.
func (g *Graph) Deduplicate() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	targets := make([]Vertex, 0, len(g.targets))
	var scratch []Vertex
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(Vertex(u))
		scratch = append(scratch[:0], nbrs...)
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		var prev Vertex
		first := true
		for _, v := range scratch {
			if v == Vertex(u) {
				continue // self-loop
			}
			if !first && v == prev {
				continue // duplicate
			}
			targets = append(targets, v)
			prev, first = v, false
		}
		offsets[u+1] = int64(len(targets))
	}
	return &Graph{offsets: offsets, targets: targets}
}

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm
// must be a permutation of [0, n). Relabeling is how the harness breaks
// the artificial locality of synthetic generators (the paper's random
// graphs have no locality by construction; a grid does).
func (g *Graph) Relabel(perm []Vertex) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != vertex count %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	deg := make([]int64, n+1)
	for u := 0; u < n; u++ {
		deg[perm[u]+1] = int64(g.Degree(Vertex(u)))
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	targets := make([]Vertex, len(g.targets))
	for u := 0; u < n; u++ {
		pos := offsets[perm[u]]
		for _, v := range g.Neighbors(Vertex(u)) {
			targets[pos] = perm[v]
			pos++
		}
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}
