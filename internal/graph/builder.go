package graph

import (
	"fmt"
	"slices"
	"sync"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst Vertex
}

// FromEdges builds a CSR graph with n vertices from an arbitrary edge
// list. Edges are grouped by source using a stable counting sort
// (O(n+m), no comparison sort), preserving duplicate edges; the paper's
// generators may emit multi-edges and the BFS must tolerate them. Large
// inputs run the parallel kernel (see SetBuildParallelism); the result
// is byte-identical either way. It returns an error if n is out of
// range or an endpoint exceeds n.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 || n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d out of range [0,%d]", n, MaxVertices)
	}
	shards := buildShards(n, int64(len(edges)))
	if i, ok := checkEdgeBounds(n, edges, shards); !ok {
		e := edges[i]
		return nil, fmt.Errorf("graph: edge %d (%d->%d) exceeds vertex count %d", i, e.Src, e.Dst, n)
	}
	if shards == 1 {
		return fromEdgesSerial(n, edges), nil
	}
	offsets, targets := parallelCSR(n, int64(len(edges)), shards, 1,
		func(_ int, lo, hi int64, deg []int32) {
			for _, e := range edges[lo:hi] {
				deg[e.Src]++
			}
		},
		func(_ int, lo, hi int64, cur []int32, out []Vertex) {
			for _, e := range edges[lo:hi] {
				p := cur[e.Src]
				cur[e.Src] = p + 1
				out[p] = e.Dst
			}
		})
	return &Graph{offsets: offsets, targets: targets}, nil
}

// fromEdgesSerial is the serial reference counting sort. The offsets
// array doubles as the scatter cursor (each bucket's start is bumped
// as it fills, leaving offsets shifted one bucket left), then one
// overlapping copy restores it — no separate cursor allocation.
func fromEdgesSerial(n int, edges []Edge) *Graph {
	offsets := make([]int64, n+1)
	for _, e := range edges {
		offsets[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]Vertex, len(edges))
	for _, e := range edges {
		p := offsets[e.Src]
		offsets[e.Src] = p + 1
		targets[p] = e.Dst
	}
	restoreOffsets(offsets, n)
	return &Graph{offsets: offsets, targets: targets}
}

// restoreOffsets undoes the offsets-as-cursor trick: after a scatter
// that advanced each bucket's slot, offsets[v] holds the original
// offsets[v+1]; shift right and re-seat offsets[0].
func restoreOffsets(offsets []int64, n int) {
	copy(offsets[1:], offsets[:n])
	offsets[0] = 0
}

// FromArrays builds a CSR graph with n vertices from parallel
// source/target arrays (edge i is srcs[i] -> dsts[i]), avoiding the
// []Edge intermediate for large m. Generators use this path. The edge
// order semantics match FromEdges.
func FromArrays(n int, srcs, dsts []Vertex) (*Graph, error) {
	if n < 0 || n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d out of range [0,%d]", n, MaxVertices)
	}
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: source count %d != target count %d", len(srcs), len(dsts))
	}
	shards := buildShards(n, int64(len(srcs)))
	if i, ok := checkArrayBounds(n, srcs, dsts, shards); !ok {
		return nil, fmt.Errorf("graph: edge %d (%d->%d) exceeds vertex count %d", i, srcs[i], dsts[i], n)
	}
	if shards == 1 {
		return fromArraysSerial(n, srcs, dsts), nil
	}
	offsets, targets := parallelCSR(n, int64(len(srcs)), shards, 1,
		func(_ int, lo, hi int64, deg []int32) {
			for _, s := range srcs[lo:hi] {
				deg[s]++
			}
		},
		func(_ int, lo, hi int64, cur []int32, out []Vertex) {
			for i := lo; i < hi; i++ {
				s := srcs[i]
				p := cur[s]
				cur[s] = p + 1
				out[p] = dsts[i]
			}
		})
	return &Graph{offsets: offsets, targets: targets}, nil
}

func fromArraysSerial(n int, srcs, dsts []Vertex) *Graph {
	offsets := make([]int64, n+1)
	for _, s := range srcs {
		offsets[s+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]Vertex, len(dsts))
	for i, s := range srcs {
		p := offsets[s]
		offsets[s] = p + 1
		targets[p] = dsts[i]
	}
	restoreOffsets(offsets, n)
	return &Graph{offsets: offsets, targets: targets}
}

// FromAdjacency builds a graph from explicit adjacency lists. It is a
// convenience for tests and examples; adj[v] lists the out-neighbours of
// v. It returns an error if a neighbour id is out of range.
func FromAdjacency(adj [][]Vertex) (*Graph, error) {
	n := len(adj)
	offsets := make([]int64, n+1)
	for v, nbrs := range adj {
		offsets[v+1] = offsets[v] + int64(len(nbrs))
	}
	targets := make([]Vertex, 0, offsets[n])
	for v, nbrs := range adj {
		for _, w := range nbrs {
			if int(w) >= n {
				return nil, fmt.Errorf("graph: neighbour %d of vertex %d out of range", w, v)
			}
			targets = append(targets, w)
		}
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}

// FromCSR wraps pre-built CSR arrays in a Graph without copying. The
// arrays must satisfy the invariants checked by Validate; FromCSR
// verifies them and returns an error otherwise.
func FromCSR(offsets []int64, targets []Vertex) (*Graph, error) {
	g := &Graph{offsets: offsets, targets: targets}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Transpose returns the graph with every edge reversed. For an
// undirected graph (every edge paired with its reverse) the transpose
// equals the original up to adjacency ordering. Large graphs transpose
// in parallel (see SetBuildParallelism) with output byte-identical to
// the serial path.
func (g *Graph) Transpose() *Graph {
	n := g.NumVertices()
	m := g.NumEdges()
	shards := buildShards(n, m)
	if shards == 1 {
		return g.transposeSerial()
	}
	offsets, targets := parallelCSR(n, m, shards, 1,
		func(_ int, lo, hi int64, deg []int32) {
			for _, t := range g.targets[lo:hi] {
				deg[t]++
			}
		},
		func(_ int, lo, hi int64, cur []int32, out []Vertex) {
			u := g.vertexAt(lo)
			for i := lo; i < hi; i++ {
				for g.offsets[u+1] <= i {
					u++
				}
				t := g.targets[i]
				p := cur[t]
				cur[t] = p + 1
				out[p] = Vertex(u)
			}
		})
	return &Graph{offsets: offsets, targets: targets}
}

func (g *Graph) transposeSerial() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for _, t := range g.targets {
		offsets[t+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]Vertex, len(g.targets))
	for u := 0; u < n; u++ {
		for _, t := range g.targets[g.offsets[u]:g.offsets[u+1]] {
			p := offsets[t]
			offsets[t] = p + 1
			targets[p] = Vertex(u)
		}
	}
	restoreOffsets(offsets, n)
	return &Graph{offsets: offsets, targets: targets}
}

// Undirected returns a graph in which every edge of g is paired with its
// reverse. Duplicate pairs are not removed: if g already contains both
// directions of an edge, the result contains both twice. Use
// Deduplicate afterwards if a simple graph is needed.
func (g *Graph) Undirected() *Graph {
	n := g.NumVertices()
	m2 := 2 * g.NumEdges()
	shards := buildShards(n, m2)
	if shards == 1 {
		return g.undirectedSerial()
	}
	// The virtual edge sequence has 2m entries: entry 2j is edge j
	// forward (u->v), entry 2j+1 its reverse (v->u), matching the
	// serial interleaving exactly. Shard boundaries are aligned to 2 so
	// every shard owns whole pairs.
	offsets, targets := parallelCSR(n, m2, shards, 2,
		func(_ int, lo, hi int64, deg []int32) {
			u := g.vertexAt(lo / 2)
			for j := lo / 2; j < hi/2; j++ {
				for g.offsets[u+1] <= j {
					u++
				}
				deg[u]++
				deg[g.targets[j]]++
			}
		},
		func(_ int, lo, hi int64, cur []int32, out []Vertex) {
			u := g.vertexAt(lo / 2)
			for j := lo / 2; j < hi/2; j++ {
				for g.offsets[u+1] <= j {
					u++
				}
				v := g.targets[j]
				p := cur[u]
				cur[u] = p + 1
				out[p] = v
				q := cur[v]
				cur[v] = q + 1
				out[q] = Vertex(u)
			}
		})
	return &Graph{offsets: offsets, targets: targets}
}

func (g *Graph) undirectedSerial() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			offsets[u+1]++
			offsets[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]Vertex, offsets[n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			p := offsets[u]
			offsets[u] = p + 1
			targets[p] = v
			q := offsets[v]
			offsets[v] = q + 1
			targets[q] = Vertex(u)
		}
	}
	restoreOffsets(offsets, n)
	return &Graph{offsets: offsets, targets: targets}
}

// Deduplicate returns a copy of g with each adjacency list sorted and
// duplicate edges and self-loops removed. Vertex ranges (balanced by
// edge count) are processed in parallel for large graphs; the output is
// the canonical sorted simple graph either way.
func (g *Graph) Deduplicate() *Graph {
	n := g.NumVertices()
	m := g.NumEdges()
	shards := buildShards(n, m)
	if shards == 1 {
		return g.deduplicateSerial()
	}
	// Edge-balanced contiguous vertex ranges: range r starts at the
	// vertex owning edge m*r/S, so a hub-heavy prefix does not serialize
	// the sort work.
	bounds := make([]int, shards+1)
	for r := 1; r < shards; r++ {
		bounds[r] = g.vertexAt(m * int64(r) / int64(shards))
	}
	bounds[shards] = n
	offsets := make([]int64, n+1)
	bufs := make([][]Vertex, shards)
	var wg sync.WaitGroup
	for r := 0; r < shards; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vlo, vhi := bounds[r], bounds[r+1]
			buf := make([]Vertex, 0, g.offsets[vhi]-g.offsets[vlo])
			var scratch []Vertex
			for u := vlo; u < vhi; u++ {
				before := len(buf)
				buf, scratch = appendDeduped(buf, scratch, Vertex(u), g.Neighbors(Vertex(u)))
				offsets[u+1] = int64(len(buf) - before) // degree; prefixed below
			}
			bufs[r] = buf
		}(r)
	}
	wg.Wait()
	bases := make([]int64, shards+1)
	for r := 0; r < shards; r++ {
		bases[r+1] = bases[r] + int64(len(bufs[r]))
	}
	targets := make([]Vertex, bases[shards])
	for r := 0; r < shards; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			copy(targets[bases[r]:], bufs[r])
			running := bases[r]
			for u := bounds[r]; u < bounds[r+1]; u++ {
				running += offsets[u+1]
				offsets[u+1] = running
			}
		}(r)
	}
	wg.Wait()
	return &Graph{offsets: offsets, targets: targets}
}

func (g *Graph) deduplicateSerial() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	targets := make([]Vertex, 0, len(g.targets))
	var scratch []Vertex
	for u := 0; u < n; u++ {
		targets, scratch = appendDeduped(targets, scratch, Vertex(u), g.Neighbors(Vertex(u)))
		offsets[u+1] = int64(len(targets))
	}
	return &Graph{offsets: offsets, targets: targets}
}

// appendDeduped appends u's neighbours to dst sorted, with duplicates
// and the self-loop removed, reusing scratch for the sort.
func appendDeduped(dst, scratch []Vertex, u Vertex, nbrs []Vertex) ([]Vertex, []Vertex) {
	scratch = append(scratch[:0], nbrs...)
	slices.Sort(scratch)
	var prev Vertex
	first := true
	for _, v := range scratch {
		if v == u {
			continue // self-loop
		}
		if !first && v == prev {
			continue // duplicate
		}
		dst = append(dst, v)
		prev, first = v, false
	}
	return dst, scratch
}

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm
// must be a permutation of [0, n). Relabeling is how the harness breaks
// the artificial locality of synthetic generators (the paper's random
// graphs have no locality by construction; a grid does).
func (g *Graph) Relabel(perm []Vertex) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != vertex count %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	m := g.NumEdges()
	shards := buildShards(n, m)
	if shards == 1 {
		return g.relabelSerial(perm), nil
	}
	offsets, targets := parallelCSR(n, m, shards, 1,
		func(_ int, lo, hi int64, deg []int32) {
			if lo >= hi {
				return
			}
			u := g.vertexAt(lo)
			pu := perm[u]
			for i := lo; i < hi; i++ {
				if g.offsets[u+1] <= i {
					for g.offsets[u+1] <= i {
						u++
					}
					pu = perm[u]
				}
				deg[pu]++
			}
		},
		func(_ int, lo, hi int64, cur []int32, out []Vertex) {
			if lo >= hi {
				return
			}
			u := g.vertexAt(lo)
			pu := perm[u]
			for i := lo; i < hi; i++ {
				if g.offsets[u+1] <= i {
					for g.offsets[u+1] <= i {
						u++
					}
					pu = perm[u]
				}
				p := cur[pu]
				cur[pu] = p + 1
				out[p] = perm[g.targets[i]]
			}
		})
	return &Graph{offsets: offsets, targets: targets}, nil
}

func (g *Graph) relabelSerial(perm []Vertex) *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		offsets[perm[u]+1] = int64(g.Degree(Vertex(u)))
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]Vertex, len(g.targets))
	for u := 0; u < n; u++ {
		pos := offsets[perm[u]]
		for _, v := range g.Neighbors(Vertex(u)) {
			targets[pos] = perm[v]
			pos++
		}
	}
	return &Graph{offsets: offsets, targets: targets}
}
