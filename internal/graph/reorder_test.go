package graph

import (
	"testing"

	"mcbfs/internal/rng"
)

var allOrderings = []Ordering{OrderDegree, OrderDegreeGroup, OrderBFS}

// checkPermutation verifies that rd carries a valid (perm, inv) pair
// over n vertices: both are permutations of [0, n) and inverses of one
// another.
func checkPermutation(t *testing.T, rd *Reordered, n int) {
	t.Helper()
	if len(rd.Perm) != n || len(rd.Inv) != n {
		t.Fatalf("order %s: perm/inv lengths %d/%d, want %d", rd.Order, len(rd.Perm), len(rd.Inv), n)
	}
	seen := make([]bool, n)
	for v, p := range rd.Perm {
		if int(p) >= n {
			t.Fatalf("order %s: perm[%d] = %d out of range", rd.Order, v, p)
		}
		if seen[p] {
			t.Fatalf("order %s: perm maps two vertices to %d", rd.Order, p)
		}
		seen[p] = true
		if rd.Inv[p] != Vertex(v) {
			t.Fatalf("order %s: inv[perm[%d]] = %d, want %d", rd.Order, v, rd.Inv[p], v)
		}
	}
}

func TestReorderNatural(t *testing.T) {
	g := randomGraph(t, 100, 500, 1)
	rd, err := g.Reorder(OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Graph != g {
		t.Error("natural order should return the input graph")
	}
	if rd.Perm != nil || rd.Inv != nil {
		t.Error("natural order should carry nil permutations")
	}
	if rd.ReorderTime() != 0 {
		t.Errorf("natural order reported reorder time %v", rd.ReorderTime())
	}
}

// TestReorderPermutations checks, for every ordering over a sweep of
// random graphs, that the permutation pair is valid and the relabeled
// graph is exactly g.Relabel(perm).
func TestReorderPermutations(t *testing.T) {
	for seed, tc := range buildCases {
		if tc.n == 0 {
			continue
		}
		g := randomGraph(t, tc.n, tc.m, uint64(seed))
		for _, o := range allOrderings {
			rd, err := g.Reorder(o)
			if err != nil {
				t.Fatalf("n=%d m=%d order %s: %v", tc.n, tc.m, o, err)
			}
			checkPermutation(t, rd, tc.n)
			want, err := g.Relabel(rd.Perm)
			if err != nil {
				t.Fatal(err)
			}
			if !identical(rd.Graph, want) {
				t.Errorf("n=%d m=%d order %s: Reorder graph differs from Relabel(perm)", tc.n, tc.m, o)
			}
			if rd.HubVertices < 0 || rd.HubEdges < 0 || rd.HubEdges > g.NumEdges() {
				t.Errorf("n=%d m=%d order %s: implausible hub stats (%d vertices, %d edges)",
					tc.n, tc.m, o, rd.HubVertices, rd.HubEdges)
			}
		}
	}
}

// TestReorderDegreeProperties checks the ordering-specific shape:
// OrderDegree yields non-increasing degrees with equal-degree runs in
// natural order; OrderDegreeGroup packs exactly the hub vertices into a
// degree-sorted prefix and keeps the tail in natural order.
func TestReorderDegreeProperties(t *testing.T) {
	g := randomGraph(t, 257, 4096, 7)
	n := g.NumVertices()

	rd, err := g.Reorder(OrderDegree)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		di, dj := rd.Graph.Degree(Vertex(i-1)), rd.Graph.Degree(Vertex(i))
		if di < dj {
			t.Fatalf("degree order: position %d has degree %d after %d", i, dj, di)
		}
		if di == dj && rd.Inv[i-1] > rd.Inv[i] {
			t.Fatalf("degree order: equal-degree run not in natural order at %d", i)
		}
	}

	rd, err = g.Reorder(OrderDegreeGroup)
	if err != nil {
		t.Fatal(err)
	}
	hubT := hubThreshold(g.ComputeStats())
	for i := 0; i < n; i++ {
		orig := rd.Inv[i]
		if i < rd.HubVertices {
			if g.Degree(orig) < hubT {
				t.Fatalf("dbg: prefix position %d holds non-hub vertex %d (degree %d < %d)",
					i, orig, g.Degree(orig), hubT)
			}
			if i > 0 && rd.Graph.Degree(Vertex(i-1)) < rd.Graph.Degree(Vertex(i)) {
				t.Fatalf("dbg: hub prefix not degree-sorted at %d", i)
			}
		} else {
			if g.Degree(orig) >= hubT {
				t.Fatalf("dbg: tail position %d holds hub vertex %d", i, orig)
			}
			if i > rd.HubVertices && rd.Inv[i-1] > orig {
				t.Fatalf("dbg: tail not in natural order at %d", i)
			}
		}
	}
}

// TestReorderBFSLevels checks that OrderBFS numbers vertices in
// non-decreasing BFS depth from the max-degree seed, natural order
// within a level, unreached vertices last in natural order.
func TestReorderBFSLevels(t *testing.T) {
	g := randomGraph(t, 257, 2048, 9)
	rd, err := g.Reorder(OrderBFS)
	if err != nil {
		t.Fatal(err)
	}
	levels, _ := g.bfsLevels(g.maxDegreeVertex())
	key := func(v Vertex) int32 {
		if l := levels[v]; l >= 0 {
			return l
		}
		return 1 << 30 // unreached sorts after every real level
	}
	for i := 1; i < len(rd.Inv); i++ {
		a, b := rd.Inv[i-1], rd.Inv[i]
		ka, kb := key(a), key(b)
		if ka > kb {
			t.Fatalf("rcm: level %d precedes level %d at position %d", ka, kb, i)
		}
		if ka == kb && a > b {
			t.Fatalf("rcm: natural order violated within level %d at position %d", ka, i)
		}
	}
}

// TestReorderParallelMatchesSerial forces the parallel kernels (sort,
// inversion, stats, BFS levels) onto tiny graphs and checks the
// permutations are identical to the serial ones.
func TestReorderParallelMatchesSerial(t *testing.T) {
	serial := make(map[int]map[Ordering][]Vertex)
	for seed, tc := range buildCases {
		if tc.n == 0 {
			continue
		}
		g := randomGraph(t, tc.n, tc.m, uint64(seed))
		serial[seed] = make(map[Ordering][]Vertex)
		for _, o := range allOrderings {
			rd, err := g.Reorder(o)
			if err != nil {
				t.Fatal(err)
			}
			serial[seed][o] = rd.Perm
		}
	}
	for _, workers := range []int{2, 3, 7} {
		restore := forceParallel(t, workers)
		oldStats := serialStatsThreshold
		serialStatsThreshold = 0
		for seed, tc := range buildCases {
			if tc.n == 0 {
				continue
			}
			g := randomGraph(t, tc.n, tc.m, uint64(seed))
			for _, o := range allOrderings {
				rd, err := g.Reorder(o)
				if err != nil {
					t.Fatal(err)
				}
				want := serial[seed][o]
				for v := range want {
					if rd.Perm[v] != want[v] {
						t.Fatalf("workers=%d n=%d m=%d order %s: parallel perm differs from serial at %d",
							workers, tc.n, tc.m, o, v)
					}
				}
			}
		}
		serialStatsThreshold = oldStats
		restore()
	}
}

func TestParseOrdering(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Ordering
	}{
		{"", OrderNatural}, {"natural", OrderNatural},
		{"degree", OrderDegree}, {"dbg", OrderDegreeGroup},
		{"rcm", OrderBFS}, {"bfs", OrderBFS},
	} {
		got, err := ParseOrdering(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseOrdering(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseOrdering("bogus"); err == nil {
		t.Error("ParseOrdering accepted an unknown name")
	}
	for _, o := range append([]Ordering{OrderNatural}, allOrderings...) {
		back, err := ParseOrdering(o.String())
		if err != nil || back != o {
			t.Errorf("round trip of %v via %q failed: %v, %v", o, o.String(), back, err)
		}
	}
}

// TestComputeStatsParallelMatchesSerial forces the parallel stats fold
// and compares against the serial path on the full case sweep.
func TestComputeStatsParallelMatchesSerial(t *testing.T) {
	for _, tc := range buildCases {
		var g *Graph
		if tc.n == 0 {
			var err error
			if g, err = FromEdges(0, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			g = randomGraph(t, tc.n, tc.m, uint64(tc.n*31+tc.m))
		}
		want := g.ComputeStats()

		restore := forceParallel(t, 4)
		oldStats := serialStatsThreshold
		serialStatsThreshold = 0
		got := g.ComputeStats()
		serialStatsThreshold = oldStats
		restore()

		if got != want {
			t.Errorf("n=%d m=%d: parallel stats %+v differ from serial %+v", tc.n, tc.m, got, want)
		}
	}
}

// TestDegreeHistogramParallelMatchesSerial does the same for the
// bucketed degree histogram.
func TestDegreeHistogramParallelMatchesSerial(t *testing.T) {
	for _, tc := range buildCases {
		var g *Graph
		if tc.n == 0 {
			var err error
			if g, err = FromEdges(0, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			g = randomGraph(t, tc.n, tc.m, uint64(tc.n*17+tc.m))
		}
		want := g.DegreeHistogram()

		restore := forceParallel(t, 4)
		oldStats := serialStatsThreshold
		serialStatsThreshold = 0
		got := g.DegreeHistogram()
		serialStatsThreshold = oldStats
		restore()

		if len(got) != len(want) {
			t.Fatalf("n=%d m=%d: histogram lengths differ: parallel %d vs serial %d", tc.n, tc.m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("n=%d m=%d: histogram bucket %d: parallel %d vs serial %d", tc.n, tc.m, i, got[i], want[i])
			}
		}
	}
}

// FuzzReorderRoundTrip checks perm/inv inversion and relabel
// equivalence on generator-driven shapes.
func FuzzReorderRoundTrip(f *testing.F) {
	f.Add(uint64(1), 16, 64, 1)
	f.Add(uint64(7), 100, 10, 2)
	f.Add(uint64(42), 1000, 5000, 3)
	f.Fuzz(func(t *testing.T, seed uint64, n, m, order int) {
		if n < 1 || n > 2048 || m < 0 || m > 1<<14 {
			t.Skip()
		}
		o := Ordering(1 + (order&0x7fffffff)%3) // degree, dbg, or rcm
		r := rng.New(seed)
		g, err := FromEdges(n, randomEdges(r, n, m))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := g.Reorder(o)
		if err != nil {
			t.Fatal(err)
		}
		checkPermutation(t, rd, n)
		want, err := g.Relabel(rd.Perm)
		if err != nil {
			t.Fatal(err)
		}
		if !identical(rd.Graph, want) {
			t.Errorf("seed=%d n=%d m=%d order %s: Reorder differs from Relabel", seed, n, m, o)
		}
	})
}
