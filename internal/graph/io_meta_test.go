package graph

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
)

// metaTestGraph returns a small graph plus a degree reordering of it,
// for exercising the version-2 metadata path.
func metaTestGraph(t testing.TB) (*Graph, *Reordered) {
	t.Helper()
	g, err := FromEdges(6, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 2}, {Src: 4, Dst: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := g.Reorder(OrderDegree)
	if err != nil {
		t.Fatal(err)
	}
	return g, rd
}

func TestMetaRoundTrip(t *testing.T) {
	_, rd := metaTestGraph(t)
	var buf bytes.Buffer
	want := &FileMeta{Order: rd.Order, Inv: rd.Inv}
	n, err := rd.Graph.WriteToMeta(&buf, want)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteToMeta reported %d bytes, buffer holds %d", n, buf.Len())
	}
	got, meta, err := ReadFromMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(got, rd.Graph) {
		t.Error("graph did not round-trip through version 2")
	}
	if meta == nil {
		t.Fatal("version-2 file read back with nil metadata")
	}
	if meta.Order != OrderDegree {
		t.Errorf("ordering tag = %v, want %v", meta.Order, OrderDegree)
	}
	if len(meta.Inv) != len(rd.Inv) {
		t.Fatalf("permutation length = %d, want %d", len(meta.Inv), len(rd.Inv))
	}
	for i := range rd.Inv {
		if meta.Inv[i] != rd.Inv[i] {
			t.Fatalf("permutation differs at %d: %d != %d", i, meta.Inv[i], rd.Inv[i])
		}
	}
}

func TestMetaOrderOnly(t *testing.T) {
	_, rd := metaTestGraph(t)
	var buf bytes.Buffer
	if _, err := rd.Graph.WriteToMeta(&buf, &FileMeta{Order: OrderBFS}); err != nil {
		t.Fatal(err)
	}
	_, meta, err := ReadFromMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Order != OrderBFS || meta.Inv != nil {
		t.Errorf("got meta %+v, want OrderBFS with nil Inv", meta)
	}
}

// TestMetaV1Compat pins the compatibility contract: nil metadata writes
// byte-identical version-1 files, and version-1 files load with nil
// metadata through both the legacy and the metadata-aware readers.
func TestMetaV1Compat(t *testing.T) {
	g, _ := metaTestGraph(t)
	var v1, viaMeta bytes.Buffer
	if _, err := g.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteToMeta(&viaMeta, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), viaMeta.Bytes()) {
		t.Error("WriteToMeta(nil) output differs from version-1 WriteTo")
	}
	got, meta, err := ReadFromMeta(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Errorf("version-1 file produced metadata %+v", meta)
	}
	if !sameGraph(got, g) {
		t.Error("version-1 file did not round-trip through ReadFromMeta")
	}
	legacy, err := ReadFrom(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(legacy, g) {
		t.Error("version-1 file did not round-trip through ReadFrom")
	}
}

func TestWriteToMetaRejectsBadPerm(t *testing.T) {
	g, _ := metaTestGraph(t)
	var buf bytes.Buffer
	_, err := g.WriteToMeta(&buf, &FileMeta{Order: OrderDegree, Inv: []Vertex{0, 1}})
	if err == nil || !strings.Contains(err.Error(), "permutation length") {
		t.Errorf("short permutation accepted: %v", err)
	}
}

// v2File assembles a version-2 file by hand so tests can corrupt any
// field independently of what WriteToMeta is willing to produce.
func v2File(metaWord uint64, n, m uint64, offsets []int64, targets, inv []Vertex) []byte {
	var buf bytes.Buffer
	hdr := []uint64{uint64(fileMagic)<<32 | fileVersionMeta, n, m, metaWord}
	_ = binary.Write(&buf, binary.LittleEndian, hdr)
	_ = binary.Write(&buf, binary.LittleEndian, offsets)
	_ = binary.Write(&buf, binary.LittleEndian, targets)
	if inv != nil {
		_ = binary.Write(&buf, binary.LittleEndian, inv)
	}
	return buf.Bytes()
}

// TestReadFromCorrupt drives ReadFromMeta with corrupt and truncated
// inputs: every case must produce a descriptive error — never a panic,
// never a structurally broken graph.
func TestReadFromCorrupt(t *testing.T) {
	_, rd := metaTestGraph(t)
	var valid bytes.Buffer
	if _, err := rd.Graph.WriteToMeta(&valid, &FileMeta{Order: rd.Order, Inv: rd.Inv}); err != nil {
		t.Fatal(err)
	}
	full := valid.Bytes()
	orderTag := uint64(OrderDegree) << 32
	offs := []int64{0, 1, 2}
	targets := []Vertex{1, 0}
	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"empty", nil, "reading header"},
		{"bad magic", func() []byte {
			b := append([]byte(nil), full...)
			b[7] ^= 0xff // high byte of the magic word
			return b
		}(), "bad magic"},
		{"unsupported version", func() []byte {
			var buf bytes.Buffer
			_ = binary.Write(&buf, binary.LittleEndian, []uint64{uint64(fileMagic)<<32 | 99, 0, 0})
			return buf.Bytes()
		}(), "unsupported version"},
		{"vertex count over maximum", func() []byte {
			var buf bytes.Buffer
			_ = binary.Write(&buf, binary.LittleEndian, []uint64{uint64(fileMagic)<<32 | 1, MaxVertices + 1, 0})
			return buf.Bytes()
		}(), "exceeds maximum"},
		{"truncated before meta word", full[:24], "reading metadata"},
		{"truncated offsets", full[:40], "reading offsets"},
		{"truncated targets", func() []byte {
			// Keep the header + offsets, cut inside the targets array.
			n := rd.Graph.NumVertices()
			return full[:32+8*(n+1)+2]
		}(), "reading targets"},
		{"truncated permutation", full[:len(full)-2], "reading permutation"},
		// Arrays as long as the header promises, but offsets[n] (5)
		// disagrees with the edge count (2): caught by Validate.
		{"inconsistent header counts", v2File(orderTag, 2, 2, []int64{0, 1, 5}, targets, nil),
			"file contents invalid"},
		{"unknown ordering tag", v2File(uint64(OrderBFS+1)<<32, 2, 2, offs, targets, nil),
			"unknown ordering tag"},
		{"unknown metadata flags", v2File(orderTag|0x80, 2, 2, offs, targets, nil),
			"unknown metadata flags"},
		{"permutation out of range", v2File(orderTag|metaFlagInv, 2, 2, offs, targets, []Vertex{0, 7}),
			"not a bijection"},
		{"permutation with duplicate", v2File(orderTag|metaFlagInv, 2, 2, offs, targets, []Vertex{1, 1}),
			"not a bijection"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFromMeta(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadFromBoundedAllocation feeds headers claiming enormous arrays
// backed by a tiny stream and checks the reader fails without first
// allocating anywhere near what the header promised — the chunked-read
// defense against corrupt or malicious files.
func TestReadFromBoundedAllocation(t *testing.T) {
	huge := []struct {
		name string
		data []byte
	}{
		{"huge offsets", func() []byte {
			var buf bytes.Buffer
			_ = binary.Write(&buf, binary.LittleEndian,
				[]uint64{uint64(fileMagic)<<32 | 1, MaxVertices, 1 << 40})
			return buf.Bytes()
		}()},
		{"huge permutation", v2File(uint64(OrderDegree)<<32|metaFlagInv, MaxVertices, 0,
			nil, nil, nil)},
	}
	for _, tc := range huge {
		t.Run(tc.name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			_, _, err := ReadFromMeta(bytes.NewReader(tc.data))
			runtime.ReadMemStats(&after)
			if err == nil {
				t.Fatal("truncated huge-header file accepted")
			}
			// One offsets chunk is 8 MiB; anything beyond ~64 MiB means
			// the header size was trusted up front.
			if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
				t.Errorf("reader allocated %d bytes for a %d-byte file", grew, len(tc.data))
			}
		})
	}
}
