// Package graph provides the compressed-sparse-row (CSR) graph storage
// used by every algorithm in this repository.
//
// CSR is the layout the SC'10 paper's BFS operates on: one contiguous
// offsets array of n+1 entries and one contiguous adjacency array of m
// entries. Scanning the adjacency list of a vertex is a sequential walk,
// which is the only spatial locality a BFS gets; everything else (parent
// array, bitmap, queue insertion) is a random access.
//
// Vertices are identified by uint32 (the paper's largest graph has 200
// million vertices; uint32 halves the adjacency footprint versus int64
// and doubles effective memory bandwidth). Edge counts and offsets use
// int64 because the paper's graphs reach a billion edges.
package graph

import (
	"errors"
	"fmt"
	"math/bits"
)

// Vertex identifies a graph vertex. The zero vertex is a valid vertex.
type Vertex = uint32

// MaxVertices is the largest vertex count a Graph can hold.
const MaxVertices = 1 << 31

// Graph is an immutable directed graph in CSR form. Construct one with
// FromEdges, FromSorted, or a generator in package gen; the zero value is
// an empty graph with no vertices.
//
// A Graph is safe for concurrent readers; it is never mutated after
// construction.
type Graph struct {
	offsets []int64  // offsets[v]..offsets[v+1] index targets; len n+1
	targets []Vertex // adjacency array; len m
}

// NumVertices returns the number of vertices n. Valid vertex ids are
// [0, n).
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of directed edges m.
func (g *Graph) NumEdges() int64 { return int64(len(g.targets)) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v as a subslice of the shared
// adjacency array. Callers must not modify it.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// Offsets returns the CSR offsets array (length NumVertices()+1).
// Callers must not modify it. It is exported for the experiment harness,
// which partitions work by edge ranges.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Targets returns the CSR adjacency array. Callers must not modify it.
func (g *Graph) Targets() []Vertex { return g.targets }

// HasEdge reports whether the directed edge (u, v) exists. It is a
// linear scan of u's adjacency list and intended for tests and small
// graphs, not inner loops.
func (g *Graph) HasEdge(u, v Vertex) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Validate checks the structural invariants of the CSR arrays: offsets
// are monotonically non-decreasing, start at 0, end at NumEdges, and all
// targets are valid vertex ids. It returns a descriptive error for the
// first violation found.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n == 0 {
		if len(g.targets) != 0 {
			return errors.New("graph: edges present with zero vertices")
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.targets))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	for i, t := range g.targets {
		if int(t) >= n {
			return fmt.Errorf("graph: target %d at edge %d out of range [0,%d)", t, i, n)
		}
	}
	return nil
}

// Stats summarizes the degree distribution of a graph. The paper's two
// workload families differ exactly here: uniform graphs have a tight
// binomial degree distribution while R-MAT graphs have a few very high
// degree vertices and many low-degree ones.
type Stats struct {
	Vertices  int
	Edges     int64
	MinDegree int
	MaxDegree int
	AvgDegree float64
	Isolated  int // vertices with out-degree 0
}

// serialStatsThreshold is the vertex count below which ComputeStats and
// DegreeHistogram scan serially even when parallelism is available —
// the same goroutine-spawn crossover reasoning as
// serialBuildThreshold. A var so tests can force the parallel fold on
// tiny graphs.
var serialStatsThreshold int64 = 1 << 16

// ComputeStats scans the graph once and returns its degree statistics.
// Large graphs are scanned by BuildParallelism workers folding private
// partials, so the CLI startup cost (and the ordering heuristics that
// reuse it) scale with the search itself.
func (g *Graph) ComputeStats() Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	s.MinDegree = int(^uint(0) >> 1)
	workers := BuildParallelism()
	if workers <= 1 || int64(n) < serialStatsThreshold {
		for v := 0; v < n; v++ {
			d := g.Degree(Vertex(v))
			if d < s.MinDegree {
				s.MinDegree = d
			}
			if d > s.MaxDegree {
				s.MaxDegree = d
			}
			if d == 0 {
				s.Isolated++
			}
		}
		s.AvgDegree = float64(s.Edges) / float64(n)
		return s
	}
	type partial struct {
		min, max, isolated int
		_                  [40]byte // keep workers off each other's cache lines
	}
	parts := make([]partial, workers)
	parallelRange(int64(n), workers, func(w int, lo, hi int64) {
		p := partial{min: int(^uint(0) >> 1)}
		for v := lo; v < hi; v++ {
			d := int(g.offsets[v+1] - g.offsets[v])
			if d < p.min {
				p.min = d
			}
			if d > p.max {
				p.max = d
			}
			if d == 0 {
				p.isolated++
			}
		}
		parts[w] = p
	})
	for i := range parts {
		// A worker with an empty vertex range keeps min at MaxInt and
		// max at 0, so folding it is a no-op.
		if parts[i].min < s.MinDegree {
			s.MinDegree = parts[i].min
		}
		if parts[i].max > s.MaxDegree {
			s.MaxDegree = parts[i].max
		}
		s.Isolated += parts[i].isolated
	}
	s.AvgDegree = float64(s.Edges) / float64(n)
	return s
}

// degreeBuckets bounds the DegreeHistogram bucket index: degrees are at
// most NumEdges < 2^31, so bits.Len never exceeds 31 and bucket indices
// stay below 32.
const degreeBuckets = 33

// DegreeHistogram returns counts of vertices per degree bucket, where
// bucket i holds vertices with degree in [2^(i-1), 2^i) and bucket 0
// holds degree-0 vertices. It is used by the harness to display the
// power-law shape of R-MAT graphs. Like ComputeStats, large graphs fold
// per-worker partial histograms.
func (g *Graph) DegreeHistogram() []int64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	// bits.Len is exactly the bucket index: 0 for degree 0, and
	// [2^(i-1), 2^i) -> i for everything else.
	var hist [degreeBuckets]int64
	workers := BuildParallelism()
	if workers <= 1 || int64(n) < serialStatsThreshold {
		for v := 0; v < n; v++ {
			hist[bits.Len(uint(g.Degree(Vertex(v))))]++
		}
	} else {
		parts := make([][degreeBuckets]int64, workers)
		parallelRange(int64(n), workers, func(w int, lo, hi int64) {
			var p [degreeBuckets]int64
			for v := lo; v < hi; v++ {
				p[bits.Len(uint(g.offsets[v+1]-g.offsets[v]))]++
			}
			parts[w] = p
		})
		for i := range parts {
			for b, c := range parts[i] {
				hist[b] += c
			}
		}
	}
	top := 0
	for b, c := range hist {
		if c != 0 {
			top = b
		}
	}
	out := make([]int64, top+1)
	copy(out, hist[:top+1])
	return out
}

// MemoryFootprint returns the approximate number of bytes occupied by
// the CSR arrays. The paper reasons about working sets explicitly; the
// harness prints this alongside each experiment.
func (g *Graph) MemoryFootprint() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.targets))*4
}

// EdgePartition cuts the vertex range [0, n) into parts contiguous
// pieces of approximately equal adjacency mass, using the CSR offsets
// array (already the prefix sum of degrees) as the partition key: piece
// k is [bounds[k], bounds[k+1]) and holds ~m/parts adjacency entries.
// Interior boundaries are rounded down to a multiple of align (pass 64
// to keep pieces word-exclusive on a bitmap, 1 for no rounding), so a
// piece may be empty on extremely skewed graphs — callers must tolerate
// lo == hi. The returned slice has parts+1 entries with bounds[0] == 0
// and bounds[parts] == n.
func EdgePartition(offsets []int64, parts, align int) []int {
	n := len(offsets) - 1
	if n < 0 {
		n = 0
	}
	if parts < 1 {
		parts = 1
	}
	if align < 1 {
		align = 1
	}
	bounds := make([]int, parts+1)
	var m int64
	if n > 0 {
		m = offsets[n]
	}
	for k := 1; k < parts; k++ {
		target := m * int64(k) / int64(parts)
		// Smallest v with offsets[v] >= target: binary search the prefix
		// sums, the same O(log n) probe a worker would pay per level if
		// this were computed lazily — here it runs once per session.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if offsets[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		v := lo / align * align
		if v < bounds[k-1] {
			v = bounds[k-1]
		}
		bounds[k] = v
	}
	bounds[parts] = n
	return bounds
}
