// Package graph provides the compressed-sparse-row (CSR) graph storage
// used by every algorithm in this repository.
//
// CSR is the layout the SC'10 paper's BFS operates on: one contiguous
// offsets array of n+1 entries and one contiguous adjacency array of m
// entries. Scanning the adjacency list of a vertex is a sequential walk,
// which is the only spatial locality a BFS gets; everything else (parent
// array, bitmap, queue insertion) is a random access.
//
// Vertices are identified by uint32 (the paper's largest graph has 200
// million vertices; uint32 halves the adjacency footprint versus int64
// and doubles effective memory bandwidth). Edge counts and offsets use
// int64 because the paper's graphs reach a billion edges.
package graph

import (
	"errors"
	"fmt"
)

// Vertex identifies a graph vertex. The zero vertex is a valid vertex.
type Vertex = uint32

// MaxVertices is the largest vertex count a Graph can hold.
const MaxVertices = 1 << 31

// Graph is an immutable directed graph in CSR form. Construct one with
// FromEdges, FromSorted, or a generator in package gen; the zero value is
// an empty graph with no vertices.
//
// A Graph is safe for concurrent readers; it is never mutated after
// construction.
type Graph struct {
	offsets []int64  // offsets[v]..offsets[v+1] index targets; len n+1
	targets []Vertex // adjacency array; len m
}

// NumVertices returns the number of vertices n. Valid vertex ids are
// [0, n).
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of directed edges m.
func (g *Graph) NumEdges() int64 { return int64(len(g.targets)) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v as a subslice of the shared
// adjacency array. Callers must not modify it.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// Offsets returns the CSR offsets array (length NumVertices()+1).
// Callers must not modify it. It is exported for the experiment harness,
// which partitions work by edge ranges.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Targets returns the CSR adjacency array. Callers must not modify it.
func (g *Graph) Targets() []Vertex { return g.targets }

// HasEdge reports whether the directed edge (u, v) exists. It is a
// linear scan of u's adjacency list and intended for tests and small
// graphs, not inner loops.
func (g *Graph) HasEdge(u, v Vertex) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Validate checks the structural invariants of the CSR arrays: offsets
// are monotonically non-decreasing, start at 0, end at NumEdges, and all
// targets are valid vertex ids. It returns a descriptive error for the
// first violation found.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n == 0 {
		if len(g.targets) != 0 {
			return errors.New("graph: edges present with zero vertices")
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.targets))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	for i, t := range g.targets {
		if int(t) >= n {
			return fmt.Errorf("graph: target %d at edge %d out of range [0,%d)", t, i, n)
		}
	}
	return nil
}

// Stats summarizes the degree distribution of a graph. The paper's two
// workload families differ exactly here: uniform graphs have a tight
// binomial degree distribution while R-MAT graphs have a few very high
// degree vertices and many low-degree ones.
type Stats struct {
	Vertices  int
	Edges     int64
	MinDegree int
	MaxDegree int
	AvgDegree float64
	Isolated  int // vertices with out-degree 0
}

// ComputeStats scans the graph once and returns its degree statistics.
func (g *Graph) ComputeStats() Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	s.MinDegree = int(^uint(0) >> 1)
	for v := 0; v < n; v++ {
		d := g.Degree(Vertex(v))
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.AvgDegree = float64(s.Edges) / float64(n)
	return s
}

// DegreeHistogram returns counts of vertices per degree bucket, where
// bucket i holds vertices with degree in [2^(i-1), 2^i) and bucket 0
// holds degree-0 vertices. It is used by the harness to display the
// power-law shape of R-MAT graphs.
func (g *Graph) DegreeHistogram() []int64 {
	var hist []int64
	bucketOf := func(d int) int {
		if d == 0 {
			return 0
		}
		b := 1
		for d > 1 {
			d >>= 1
			b++
		}
		return b
	}
	for v := 0; v < g.NumVertices(); v++ {
		b := bucketOf(g.Degree(Vertex(v)))
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// MemoryFootprint returns the approximate number of bytes occupied by
// the CSR arrays. The paper reasons about working sets explicitly; the
// harness prints this alongside each experiment.
func (g *Graph) MemoryFootprint() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.targets))*4
}
