package graph

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"mcbfs/internal/rng"
)

// diamond returns the 4-vertex graph 0->1, 0->2, 1->3, 2->3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("zero graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("zero graph invalid: %v", err)
	}
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantDeg := []int{2, 1, 1, 0}
	for v, d := range wantDeg {
		if g.Degree(Vertex(v)) != d {
			t.Errorf("Degree(%d) = %d, want %d", v, g.Degree(Vertex(v)), d)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 3) || !g.HasEdge(2, 3) {
		t.Error("expected edge missing")
	}
	if g.HasEdge(3, 0) || g.HasEdge(1, 2) {
		t.Error("unexpected edge present")
	}
}

func TestFromEdgesPreservesDuplicates(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1}, {0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d, want 3 (duplicates preserved)", g.Degree(0))
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Error("edge to vertex 2 in 2-vertex graph accepted")
	}
	if _, err := FromEdges(2, []Edge{{5, 0}}); err == nil {
		t.Error("edge from vertex 5 in 2-vertex graph accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative vertex count accepted")
	}
}

func TestFromEdgesIsolatedVertices(t *testing.T) {
	g, err := FromEdges(10, []Edge{{0, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 1 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	for v := 1; v < 9; v++ {
		if g.Degree(Vertex(v)) != 0 {
			t.Errorf("vertex %d has degree %d, want 0", v, g.Degree(Vertex(v)))
		}
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]Vertex{{1, 2}, {2}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if got := g.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if _, err := FromAdjacency([][]Vertex{{5}}); err == nil {
		t.Error("out-of-range neighbour accepted")
	}
}

func TestFromCSRValidates(t *testing.T) {
	if _, err := FromCSR([]int64{0, 2, 1}, []Vertex{0, 0}); err == nil {
		t.Error("decreasing offsets accepted")
	}
	if _, err := FromCSR([]int64{0, 1}, []Vertex{7}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := FromCSR([]int64{0, 1}, []Vertex{0}); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
}

func TestTranspose(t *testing.T) {
	g := diamond(t)
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose changed edge count")
	}
	for _, e := range []Edge{{1, 0}, {2, 0}, {3, 1}, {3, 2}} {
		if !tr.HasEdge(e.Src, e.Dst) {
			t.Errorf("transpose missing edge %d->%d", e.Src, e.Dst)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Double transpose restores each adjacency list as a multiset; the
	// within-list order is not preserved.
	g := randomGraph(t, 100, 500, 42)
	tt := g.Transpose().Transpose()
	if !sameGraphUnordered(g, tt) {
		t.Error("double transpose differs from original")
	}
}

// sameGraphUnordered compares adjacency lists as multisets.
func sameGraphUnordered(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		na := append([]Vertex(nil), a.Neighbors(Vertex(v))...)
		nb := append([]Vertex(nil), b.Neighbors(Vertex(v))...)
		if len(na) != len(nb) {
			return false
		}
		sort.Slice(na, func(i, j int) bool { return na[i] < na[j] })
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestUndirected(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	u := g.Undirected()
	if u.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", u.NumEdges())
	}
	for _, e := range []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !u.HasEdge(e.Src, e.Dst) {
			t.Errorf("undirected graph missing %d->%d", e.Src, e.Dst)
		}
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeduplicate(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {0, 1}, {0, 0}, {0, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Deduplicate()
	if d.NumEdges() != 3 {
		t.Fatalf("NumEdges after dedup = %d, want 3", d.NumEdges())
	}
	if d.HasEdge(0, 0) {
		t.Error("self-loop survived Deduplicate")
	}
	if got := d.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want sorted [1 2]", got)
	}
}

func TestRelabel(t *testing.T) {
	g := diamond(t)
	// Swap 0<->3.
	perm := []Vertex{3, 1, 2, 0}
	r, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range []Edge{{3, 1}, {3, 2}, {1, 0}, {2, 0}} {
		if !r.HasEdge(e.Src, e.Dst) {
			t.Errorf("relabeled graph missing %d->%d", e.Src, e.Dst)
		}
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := diamond(t)
	if _, err := g.Relabel([]Vertex{0, 0, 1, 2}); err == nil {
		t.Error("duplicate in perm accepted")
	}
	if _, err := g.Relabel([]Vertex{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := g.Relabel([]Vertex{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range perm accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond(t)
	s := g.ComputeStats()
	if s.Vertices != 4 || s.Edges != 4 {
		t.Errorf("stats counts wrong: %+v", s)
	}
	if s.MinDegree != 0 || s.MaxDegree != 2 {
		t.Errorf("degree range = [%d,%d], want [0,2]", s.MinDegree, s.MaxDegree)
	}
	if s.AvgDegree != 1.0 {
		t.Errorf("AvgDegree = %v, want 1", s.AvgDegree)
	}
	if s.Isolated != 1 {
		t.Errorf("Isolated = %d, want 1 (vertex 3)", s.Isolated)
	}
}

func TestDegreeHistogram(t *testing.T) {
	// degrees: 2,1,1,0 -> bucket0:1 (deg 0), bucket1:2 (deg 1), bucket2:1 (deg 2)
	g := diamond(t)
	h := g.DegreeHistogram()
	want := []int64{1, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	g := diamond(t)
	want := int64(5*8 + 4*4)
	if got := g.MemoryFootprint(); got != want {
		t.Errorf("MemoryFootprint = %d, want %d", got, want)
	}
}

func TestRoundTripIO(t *testing.T) {
	g := randomGraph(t, 1000, 5000, 7)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, got) {
		t.Error("round-tripped graph differs")
	}
}

func TestRoundTripEmptyGraph(t *testing.T) {
	var g Graph
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 {
		t.Errorf("empty graph round-trip: %d vertices, %d edges", got.NumVertices(), got.NumEdges())
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a graph file at all......"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	g := randomGraph(t, 100, 300, 3)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadFrom(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	g := randomGraph(t, 200, 1000, 9)
	path := t.TempDir() + "/g.mcbf"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, got) {
		t.Error("Save/Load round trip differs")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nope.mcbf"); err == nil {
		t.Error("missing file did not error")
	}
}

func TestQuickFromEdgesDegreeSum(t *testing.T) {
	// Property: sum of out-degrees equals edge count, and every edge is
	// findable from its source.
	f := func(raw []uint16) bool {
		const n = 64
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Vertex(raw[i] % n), Vertex(raw[i+1] % n)})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		var sum int64
		for v := 0; v < n; v++ {
			sum += int64(g.Degree(Vertex(v)))
		}
		if sum != int64(len(edges)) {
			return false
		}
		for _, e := range edges {
			if !g.HasEdge(e.Src, e.Dst) {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposePreservesEdges(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		const n = 32
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Vertex(raw[i] % n), Vertex(raw[i+1] % n)})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		tr := g.Transpose()
		for _, e := range edges {
			if !tr.HasEdge(e.Dst, e.Src) {
				return false
			}
		}
		return tr.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIORoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 40
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Vertex(raw[i] % n), Vertex(raw[i+1] % n)})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		return sameGraph(g, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a deterministic pseudo-random graph for tests.
func randomGraph(t *testing.T, n int, m int, seed uint64) *Graph {
	t.Helper()
	r := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Vertex(r.Intn(n)), Vertex(r.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameGraph reports whether two graphs have identical CSR contents.
func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(Vertex(v)), b.Neighbors(Vertex(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func BenchmarkNeighborScan(b *testing.B) {
	r := rng.New(2)
	const n, m = 1 << 16, 1 << 20
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Vertex(r.Intn(n)), Vertex(r.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, w := range g.Neighbors(Vertex(i & (n - 1))) {
			sink += uint64(w)
		}
	}
	_ = sink
}

func TestEdgePartition(t *testing.T) {
	prefix := func(degs ...int64) []int64 {
		offs := make([]int64, len(degs)+1)
		for i, d := range degs {
			offs[i+1] = offs[i] + d
		}
		return offs
	}
	checkInvariants := func(t *testing.T, bounds []int, n, parts, align int) {
		t.Helper()
		if len(bounds) != parts+1 {
			t.Fatalf("len(bounds) = %d, want %d", len(bounds), parts+1)
		}
		if bounds[0] != 0 || bounds[parts] != n {
			t.Fatalf("bounds endpoints = %d..%d, want 0..%d", bounds[0], bounds[parts], n)
		}
		for k := 1; k <= parts; k++ {
			if bounds[k] < bounds[k-1] {
				t.Fatalf("bounds[%d]=%d < bounds[%d]=%d", k, bounds[k], k-1, bounds[k-1])
			}
			if k < parts && bounds[k]%align != 0 {
				t.Fatalf("interior bound %d not %d-aligned", bounds[k], align)
			}
		}
	}

	t.Run("balances skew", func(t *testing.T) {
		// One hub holds half the edges; the cut lands right after it
		// rather than splitting vertices evenly.
		offs := prefix(100, 1, 1, 1, 1, 96)
		bounds := EdgePartition(offs, 2, 1)
		checkInvariants(t, bounds, 6, 2, 1)
		if bounds[1] != 1 {
			t.Errorf("cut at vertex %d, want 1 (after the 100-degree hub)", bounds[1])
		}
	})
	t.Run("uniform degrees split evenly", func(t *testing.T) {
		degs := make([]int64, 64)
		for i := range degs {
			degs[i] = 3
		}
		bounds := EdgePartition(prefix(degs...), 4, 1)
		checkInvariants(t, bounds, 64, 4, 1)
		for k, want := range []int{0, 16, 32, 48, 64} {
			if bounds[k] != want {
				t.Errorf("bounds[%d] = %d, want %d", k, bounds[k], want)
			}
		}
	})
	t.Run("alignment rounds down", func(t *testing.T) {
		degs := make([]int64, 200)
		for i := range degs {
			degs[i] = 1
		}
		bounds := EdgePartition(prefix(degs...), 3, 64)
		checkInvariants(t, bounds, 200, 3, 64)
	})
	t.Run("more parts than vertices", func(t *testing.T) {
		bounds := EdgePartition(prefix(5, 5), 8, 1)
		checkInvariants(t, bounds, 2, 8, 1)
	})
	t.Run("empty graph", func(t *testing.T) {
		bounds := EdgePartition([]int64{0}, 4, 64)
		checkInvariants(t, bounds, 0, 4, 64)
	})
	t.Run("zero-degree run", func(t *testing.T) {
		offs := prefix(0, 0, 0, 10, 0, 0, 10, 0)
		bounds := EdgePartition(offs, 2, 1)
		checkInvariants(t, bounds, 8, 2, 1)
		// All of the first 10-edge vertex's work must land in part 0.
		if bounds[1] < 4 {
			t.Errorf("cut at %d splits nothing: first part would be empty of edges", bounds[1])
		}
	})
}
