// Serial-vs-parallel construction benchmarks over an R-MAT workload.
// This file is an external test package so it can use internal/gen
// (which imports graph) for the paper's scale-free edge distribution.
//
// The "serial" variants pin SetBuildParallelism(1), the reference
// counting sort; "parallel" restores the default (GOMAXPROCS), so `go
// test -bench=Construction -cpu=1,2,4,8` sweeps the worker count. The
// MB/s column reads directly as million edges built per second
// (SetBytes is the edge count).
package graph_test

import (
	"sync"
	"testing"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/rng"
)

// benchScale is log2 of the benchmark vertex count: the ISSUE's
// scale-20 R-MAT (1 M vertices, 16 M directed edges), shrunk under
// -short so the CI benchmark smoke step stays fast.
func benchScale(b *testing.B) int {
	if testing.Short() {
		return 14
	}
	return 20
}

var benchState struct {
	sync.Mutex
	scale int
	g     *graph.Graph
	n     int
	edges []graph.Edge
}

// benchWorkload generates (once per scale) the R-MAT graph plus a
// shuffled edge list extracted from it. Shuffling matters: CSR-order
// input would hand the scatter pass artificial locality that a real
// generator stream does not have.
func benchWorkload(b *testing.B) (*graph.Graph, int, []graph.Edge) {
	b.Helper()
	benchState.Lock()
	defer benchState.Unlock()
	scale := benchScale(b)
	if benchState.scale != scale {
		g, err := gen.RMAT(scale, int64(16)<<scale, gen.GTgraphDefaults, 42)
		if err != nil {
			b.Fatal(err)
		}
		n := g.NumVertices()
		edges := make([]graph.Edge, 0, g.NumEdges())
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(graph.Vertex(u)) {
				edges = append(edges, graph.Edge{Src: graph.Vertex(u), Dst: v})
			}
		}
		r := rng.New(7)
		for i := len(edges) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			edges[i], edges[j] = edges[j], edges[i]
		}
		benchState.scale, benchState.g, benchState.n, benchState.edges = scale, g, n, edges
	}
	return benchState.g, benchState.n, benchState.edges
}

func benchVariants(b *testing.B, run func(b *testing.B)) {
	b.Run("serial", func(b *testing.B) {
		graph.SetBuildParallelism(1)
		defer graph.SetBuildParallelism(0)
		run(b)
	})
	b.Run("parallel", func(b *testing.B) {
		graph.SetBuildParallelism(0)
		run(b)
	})
}

func BenchmarkFromEdges(b *testing.B) {
	_, n, edges := benchWorkload(b)
	benchVariants(b, func(b *testing.B) {
		b.SetBytes(int64(len(edges)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graph.FromEdges(n, edges); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTranspose(b *testing.B) {
	g, _, _ := benchWorkload(b)
	benchVariants(b, func(b *testing.B) {
		b.SetBytes(g.NumEdges())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.Transpose() == nil {
				b.Fatal("nil transpose")
			}
		}
	})
}

func BenchmarkUndirected(b *testing.B) {
	g, _, _ := benchWorkload(b)
	benchVariants(b, func(b *testing.B) {
		b.SetBytes(2 * g.NumEdges())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.Undirected() == nil {
				b.Fatal("nil undirected")
			}
		}
	})
}

func BenchmarkDeduplicate(b *testing.B) {
	g, _, _ := benchWorkload(b)
	benchVariants(b, func(b *testing.B) {
		b.SetBytes(g.NumEdges())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.Deduplicate() == nil {
				b.Fatal("nil deduplicate")
			}
		}
	})
}
