package graph

import (
	"fmt"
	"testing"

	"mcbfs/internal/rng"
)

// forceParallel drops the serial crossover to zero and pins the worker
// count so even tiny inputs exercise the parallel kernel; the returned
// func restores the defaults.
func forceParallel(t testing.TB, workers int) func() {
	t.Helper()
	oldThreshold := serialBuildThreshold
	serialBuildThreshold = 0
	SetBuildParallelism(workers)
	return func() {
		serialBuildThreshold = oldThreshold
		SetBuildParallelism(0)
	}
}

// identical reports whether two graphs have byte-identical CSR arrays
// (stronger than sameGraph: offsets must match slot for slot, not just
// per-vertex adjacency).
func identical(a, b *Graph) bool {
	if len(a.offsets) != len(b.offsets) || len(a.targets) != len(b.targets) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.targets {
		if a.targets[i] != b.targets[i] {
			return false
		}
	}
	return true
}

// randomEdges returns m edges over n vertices with multi-edges and
// self-loops: every vertex id stream includes repeats and v==v pairs by
// construction at these densities.
func randomEdges(r *rng.Xoshiro256, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: Vertex(r.Intn(n)), Dst: Vertex(r.Intn(n))}
	}
	return edges
}

// randomPerm returns a random permutation of [0, n).
func randomPerm(r *rng.Xoshiro256, n int) []Vertex {
	perm := make([]Vertex, n)
	for i := range perm {
		perm[i] = Vertex(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// buildCases is the (n, m) sweep used by the equivalence tests: empty
// graphs, single vertices, zero/one-edge lists, and dense multigraphs.
var buildCases = []struct{ n, m int }{
	{0, 0}, {1, 0}, {1, 1}, {1, 8}, {2, 1}, {3, 7},
	{10, 0}, {10, 1}, {17, 100}, {64, 64}, {100, 1},
	{257, 4096}, {1000, 10000}, {4096, 3},
}

func TestParallelFromEdgesMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 7, 16} {
		restore := forceParallel(t, workers)
		r := rng.New(uint64(workers))
		for _, tc := range buildCases {
			edges := []Edge(nil)
			if tc.n > 0 {
				edges = randomEdges(r, tc.n, tc.m)
			}
			got, err := FromEdges(tc.n, edges)
			if err != nil {
				t.Fatalf("workers=%d n=%d m=%d: %v", workers, tc.n, tc.m, err)
			}
			want := fromEdgesSerial(tc.n, edges)
			if !identical(got, want) {
				t.Errorf("workers=%d n=%d m=%d: parallel FromEdges differs from serial", workers, tc.n, tc.m)
			}
		}
		restore()
	}
}

func TestParallelFromArraysMatchesSerial(t *testing.T) {
	restore := forceParallel(t, 5)
	defer restore()
	r := rng.New(99)
	for _, tc := range buildCases {
		if tc.n == 0 {
			continue
		}
		srcs := make([]Vertex, tc.m)
		dsts := make([]Vertex, tc.m)
		for i := range srcs {
			srcs[i] = Vertex(r.Intn(tc.n))
			dsts[i] = Vertex(r.Intn(tc.n))
		}
		got, err := FromArrays(tc.n, srcs, dsts)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		want := fromArraysSerial(tc.n, srcs, dsts)
		if !identical(got, want) {
			t.Errorf("n=%d m=%d: parallel FromArrays differs from serial", tc.n, tc.m)
		}
	}
}

func TestParallelDerivedBuildersMatchSerial(t *testing.T) {
	for _, workers := range []int{2, 4, 9} {
		restore := forceParallel(t, workers)
		r := rng.New(uint64(1000 + workers))
		for _, tc := range buildCases {
			if tc.n == 0 {
				continue
			}
			g := fromEdgesSerial(tc.n, randomEdges(r, tc.n, tc.m))
			label := fmt.Sprintf("workers=%d n=%d m=%d", workers, tc.n, tc.m)
			if !identical(g.Transpose(), g.transposeSerial()) {
				t.Errorf("%s: parallel Transpose differs from serial", label)
			}
			if !identical(g.Undirected(), g.undirectedSerial()) {
				t.Errorf("%s: parallel Undirected differs from serial", label)
			}
			if !identical(g.Deduplicate(), g.deduplicateSerial()) {
				t.Errorf("%s: parallel Deduplicate differs from serial", label)
			}
			perm := randomPerm(r, tc.n)
			got, err := g.Relabel(perm)
			if err != nil {
				t.Fatalf("%s: Relabel: %v", label, err)
			}
			if !identical(got, g.relabelSerial(perm)) {
				t.Errorf("%s: parallel Relabel differs from serial", label)
			}
		}
		restore()
	}
}

func TestParallelBuildIndependentOfWorkerCount(t *testing.T) {
	r := rng.New(7)
	edges := randomEdges(r, 500, 20000)
	var ref *Graph
	for _, workers := range []int{1, 2, 3, 8, 64} {
		restore := forceParallel(t, workers)
		g, err := FromEdges(500, edges)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = g
		} else if !identical(g, ref) {
			t.Errorf("workers=%d: CSR differs from workers=1 build", workers)
		}
	}
}

func TestParallelFromEdgesReportsFirstBadEdge(t *testing.T) {
	restore := forceParallel(t, 4)
	defer restore()
	edges := randomEdges(rng.New(3), 50, 4000)
	edges[1234] = Edge{Src: 50, Dst: 0} // first offender
	edges[3999] = Edge{Src: 0, Dst: 99}
	_, err := FromEdges(50, edges)
	if err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	want := "graph: edge 1234 (50->0) exceeds vertex count 50"
	if err.Error() != want {
		t.Errorf("error = %q, want %q (lowest offending index, as serial)", err, want)
	}
}

func TestFromArraysLengthMismatch(t *testing.T) {
	if _, err := FromArrays(4, []Vertex{0, 1}, []Vertex{2}); err == nil {
		t.Fatal("expected error for mismatched array lengths")
	}
}

func TestFromArraysValidates(t *testing.T) {
	g, err := FromArrays(3, []Vertex{0, 2, 2}, []Vertex{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || !g.HasEdge(2, 0) || !g.HasEdge(2, 2) {
		t.Error("FromArrays built wrong adjacency")
	}
	if _, err := FromArrays(3, []Vertex{3}, []Vertex{0}); err == nil {
		t.Error("expected error for out-of-range source")
	}
	if _, err := FromArrays(3, []Vertex{0}, []Vertex{3}); err == nil {
		t.Error("expected error for out-of-range target")
	}
}

func TestBuildParallelismKnob(t *testing.T) {
	SetBuildParallelism(3)
	if got := BuildParallelism(); got != 3 {
		t.Errorf("BuildParallelism() = %d after SetBuildParallelism(3)", got)
	}
	SetBuildParallelism(0)
	if got := BuildParallelism(); got < 1 {
		t.Errorf("BuildParallelism() = %d with default knob", got)
	}
	SetBuildParallelism(-5)
	if got := BuildParallelism(); got < 1 {
		t.Errorf("BuildParallelism() = %d after negative set", got)
	}
}

func TestBuildShardsCrossover(t *testing.T) {
	SetBuildParallelism(8)
	defer SetBuildParallelism(0)
	if s := buildShards(1000, serialBuildThreshold-1); s != 1 {
		t.Errorf("below-threshold input got %d shards, want serial", s)
	}
	if s := buildShards(1000, serialBuildThreshold); s != 8 {
		t.Errorf("above-threshold input got %d shards, want 8", s)
	}
	// Degenerately sparse graphs (m << n) stay serial: the cursor
	// matrix would dwarf the adjacency array.
	if s := buildShards(1<<24, serialBuildThreshold); s != 1 {
		t.Errorf("sparse input got %d shards, want serial", s)
	}
	if s := buildShards(0, 0); s != 1 {
		t.Errorf("empty graph got %d shards, want serial", s)
	}
}

// FuzzParallelFromEdges decodes arbitrary bytes as an edge list and
// asserts the parallel builder agrees byte-for-byte with the serial
// reference, across graph derivations.
func FuzzParallelFromEdges(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 0, 3, 3})
	f.Add(uint8(1), []byte{0, 0, 0, 0})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(200), []byte{5, 5, 5, 6, 199, 0})
	f.Fuzz(func(t *testing.T, n uint8, data []byte) {
		nv := int(n)
		edges := make([]Edge, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			if nv == 0 {
				break
			}
			edges = append(edges, Edge{Src: Vertex(data[i]) % Vertex(nv), Dst: Vertex(data[i+1]) % Vertex(nv)})
		}
		restore := forceParallel(t, 4)
		defer restore()
		got, err := FromEdges(nv, edges)
		if err != nil {
			t.Fatalf("in-range edges rejected: %v", err)
		}
		want := fromEdgesSerial(nv, edges)
		if !identical(got, want) {
			t.Fatal("parallel FromEdges differs from serial reference")
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("parallel build violates CSR invariants: %v", err)
		}
		if !identical(got.Transpose(), want.transposeSerial()) {
			t.Fatal("parallel Transpose differs from serial reference")
		}
		if !identical(got.Undirected(), want.undirectedSerial()) {
			t.Fatal("parallel Undirected differs from serial reference")
		}
		if !identical(got.Deduplicate(), want.deduplicateSerial()) {
			t.Fatal("parallel Deduplicate differs from serial reference")
		}
	})
}
