package graph

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Locality-optimized vertex orderings.
//
// The natural Kronecker labeling of an R-MAT graph scatters hub
// neighborhoods across the whole CSR, so every top-down probe and
// bottom-up in-scan lands on a cold cache line. Relabeling vertices so
// that frequently-touched ones share lines (and pages) is a first-order
// BFS optimization on one socket: the visited bitmap, parent array, and
// adjacency prefix for the hubs all shrink to a cache-resident working
// set.
//
// Each ordering here is computed as a stable counting sort of the
// vertex ids by a small integer key, which is exactly the shape of the
// parallel CSR kernel (histogram, prefix sum, scatter) — vertices play
// the role of edges, keys the role of source ids — so permutation
// computation is parallel and atomic-free, and applying it is
// graph.Relabel on the same kernel.

// Ordering selects a vertex relabeling strategy.
type Ordering int

const (
	// OrderNatural keeps the input labeling; Reorder returns the graph
	// unchanged with a nil permutation.
	OrderNatural Ordering = iota
	// OrderDegree sorts vertices by descending out-degree, ties in
	// natural order. Hubs move to the front of every per-vertex array
	// (parents, bitmaps) and their adjacency lists pack the front of the
	// CSR, so the vertices a power-law BFS touches most share cache
	// lines.
	OrderDegree
	// OrderDegreeGroup ("dbg" on the command line) packs only the hubs —
	// vertices with at least twice the average degree — into a
	// degree-sorted prefix and keeps the low-degree tail in natural
	// order. On generators whose natural order already has spatial
	// structure this keeps the tail's locality while still making the
	// hub working set cache-resident.
	OrderDegreeGroup
	// OrderBFS ("rcm" on the command line) is a BFS/RCM-style level
	// order from a maximum-degree seed: vertices are numbered level by
	// level, natural order within a level, unreached vertices last.
	// Neighboring levels — the only vertices a level-synchronous BFS
	// touches together — become contiguous in memory.
	OrderBFS
)

// String returns the command-line name of the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderDegree:
		return "degree"
	case OrderDegreeGroup:
		return "dbg"
	case OrderBFS:
		return "rcm"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// ParseOrdering parses a command-line ordering name as accepted by the
// -order flags: natural, degree, dbg, or rcm.
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "", "natural":
		return OrderNatural, nil
	case "degree":
		return OrderDegree, nil
	case "dbg":
		return OrderDegreeGroup, nil
	case "rcm", "bfs":
		return OrderBFS, nil
	}
	return OrderNatural, fmt.Errorf("graph: unknown ordering %q (want natural, degree, dbg, or rcm)", s)
}

// Reordered is a graph relabeled into a locality-optimized order,
// together with the permutation needed to translate between the two id
// spaces. For OrderNatural the permutation slices are nil and Graph is
// the input graph itself.
type Reordered struct {
	// Graph is the relabeled graph: original vertex v appears as
	// Perm[v].
	Graph *Graph
	// Perm maps original ids to relabeled ids; nil for OrderNatural.
	Perm []Vertex
	// Inv maps relabeled ids back to original ids: Inv[Perm[v]] == v.
	Inv []Vertex
	// Order is the ordering that produced this relabeling.
	Order Ordering
	// PermTime is the time spent computing the permutation; RelabelTime
	// the time spent rewriting the CSR through it. Reported separately
	// from graph construction so the amortization break-even is visible.
	PermTime    time.Duration
	RelabelTime time.Duration
	// HubVertices and HubEdges describe the hub prefix: how many
	// vertices have at least twice the average degree and how many edge
	// slots their adjacency lists occupy. For the degree orderings these
	// vertices occupy a contiguous CSR prefix after relabeling, so
	// HubEdges/NumEdges is the fraction of adjacency traffic served from
	// that prefix.
	HubVertices int
	HubEdges    int64
}

// ReorderTime returns the total cost of producing the reordering.
func (r *Reordered) ReorderTime() time.Duration { return r.PermTime + r.RelabelTime }

// Reorder computes the permutation for the given ordering and applies
// it, returning the relabeled graph and the (perm, inv) pair. The
// computation runs on BuildParallelism workers; the relabeling reuses
// the parallel CSR kernel. The input graph is not modified.
func (g *Graph) Reorder(o Ordering) (*Reordered, error) {
	n := g.NumVertices()
	if o == OrderNatural || n == 0 {
		return &Reordered{Graph: g, Order: o}, nil
	}
	rd := &Reordered{Order: o}
	start := time.Now()
	var inv []Vertex
	switch o {
	case OrderDegree, OrderDegreeGroup:
		inv = g.orderByDegree(o == OrderDegreeGroup, rd)
	case OrderBFS:
		inv = g.orderByBFSLevels()
		rd.HubVertices, rd.HubEdges = g.hubStats(hubThreshold(g.ComputeStats()))
	default:
		return nil, fmt.Errorf("graph: unknown ordering %d", int(o))
	}
	perm := make([]Vertex, n)
	invertPermutation(perm, inv)
	rd.Perm, rd.Inv = perm, inv
	rd.PermTime = time.Since(start)

	start = time.Now()
	rg, err := g.Relabel(perm)
	if err != nil {
		return nil, err
	}
	rd.Graph = rg
	rd.RelabelTime = time.Since(start)
	return rd, nil
}

// sortVerticesByKey stable counting-sorts the vertex ids 0..n-1 by
// key(v), which must lie in [0, nKeys). The returned slice is the
// inverse permutation: position i holds the original id of the vertex
// ranked i-th. Vertices stand in for the CSR kernel's edges and keys
// for its source ids, so the sort shares the histogram / prefix-sum /
// scatter phases (and the serial-threshold heuristics) with graph
// construction.
func sortVerticesByKey(n, nKeys int, key func(v int) int) []Vertex {
	shards := buildShards(nKeys, int64(n))
	if shards == 1 {
		counts := make([]int64, nKeys)
		for v := 0; v < n; v++ {
			counts[key(v)]++
		}
		var running int64
		for k := range counts {
			c := counts[k]
			counts[k] = running
			running += c
		}
		inv := make([]Vertex, n)
		for v := 0; v < n; v++ {
			k := key(v)
			inv[counts[k]] = Vertex(v)
			counts[k]++
		}
		return inv
	}
	_, inv := parallelCSR(nKeys, int64(n), shards, 1,
		func(_ int, lo, hi int64, deg []int32) {
			for v := lo; v < hi; v++ {
				deg[key(int(v))]++
			}
		},
		func(_ int, lo, hi int64, cur []int32, out []Vertex) {
			for v := lo; v < hi; v++ {
				k := key(int(v))
				p := cur[k]
				cur[k] = p + 1
				out[p] = Vertex(v)
			}
		})
	return inv
}

// invertPermutation fills perm with the inverse of inv:
// perm[inv[i]] = i.
func invertPermutation(perm, inv []Vertex) {
	n := int64(len(inv))
	workers := BuildParallelism()
	if workers <= 1 || n < serialBuildThreshold {
		for i, v := range inv {
			perm[v] = Vertex(i)
		}
		return
	}
	parallelRange(n, workers, func(_ int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			perm[inv[i]] = Vertex(i)
		}
	})
}

// hubThreshold is the degree at which a vertex counts as a hub: twice
// the average degree, clamped to [1, max degree] so the definition
// stays meaningful on regular and near-empty graphs.
func hubThreshold(st Stats) int {
	t := int(2 * st.AvgDegree)
	if t < 1 {
		t = 1
	}
	if t > st.MaxDegree {
		t = st.MaxDegree
	}
	if t < 1 {
		t = 1
	}
	return t
}

// hubStats counts the vertices with degree >= hubT and the edge slots
// their adjacency lists occupy, folding per-worker partials.
func (g *Graph) hubStats(hubT int) (int, int64) {
	n := int64(g.NumVertices())
	workers := BuildParallelism()
	if workers <= 1 || n < serialBuildThreshold {
		var hv int
		var he int64
		for v := int64(0); v < n; v++ {
			if d := int(g.offsets[v+1] - g.offsets[v]); d >= hubT {
				hv++
				he += int64(d)
			}
		}
		return hv, he
	}
	type partial struct {
		hv int
		he int64
		_  [48]byte // separate cache lines so workers don't false-share
	}
	parts := make([]partial, workers)
	parallelRange(n, workers, func(w int, lo, hi int64) {
		var p partial
		for v := lo; v < hi; v++ {
			if d := int(g.offsets[v+1] - g.offsets[v]); d >= hubT {
				p.hv++
				p.he += int64(d)
			}
		}
		parts[w] = p
	})
	var hv int
	var he int64
	for i := range parts {
		hv += parts[i].hv
		he += parts[i].he
	}
	return hv, he
}

// orderByDegree returns the inverse permutation for OrderDegree
// (group=false) or OrderDegreeGroup (group=true). Both are one stable
// counting sort: the key is maxDeg-d so higher degrees sort first and
// the stable sort keeps equal-degree vertices in natural order. The
// grouped variant collapses every tail vertex (degree below the hub
// threshold) into one shared final bucket, so the stable sort leaves
// the entire tail in natural order.
func (g *Graph) orderByDegree(group bool, rd *Reordered) []Vertex {
	n := g.NumVertices()
	st := g.ComputeStats()
	maxDeg := st.MaxDegree
	hubT := hubThreshold(st)
	rd.HubVertices, rd.HubEdges = g.hubStats(hubT)

	offsets := g.offsets
	if !group {
		return sortVerticesByKey(n, maxDeg+1, func(v int) int {
			return maxDeg - int(offsets[v+1]-offsets[v])
		})
	}
	// Hub keys occupy [0, maxDeg-hubT]; every tail vertex shares the
	// single key after them.
	tailKey := maxDeg - hubT + 1
	return sortVerticesByKey(n, tailKey+1, func(v int) int {
		if d := int(offsets[v+1] - offsets[v]); d >= hubT {
			return maxDeg - d
		}
		return tailKey
	})
}

// orderByBFSLevels returns the inverse permutation for OrderBFS: a
// level-synchronous BFS from a maximum-degree seed assigns each vertex
// its depth, and a stable counting sort by depth produces the order.
// The frontier expansion is parallel and claims vertices with CAS, so
// the set of vertices per level is deterministic even though the
// discovery order within a level is not — the stable sort by level
// restores natural order within each level, making the whole
// permutation deterministic. Unreached vertices (other components)
// keep natural order in a final bucket.
func (g *Graph) orderByBFSLevels() []Vertex {
	n := g.NumVertices()
	levels, maxLevel := g.bfsLevels(g.maxDegreeVertex())
	unreachedKey := int(maxLevel) + 1
	return sortVerticesByKey(n, unreachedKey+1, func(v int) int {
		if l := levels[v]; l >= 0 {
			return int(l)
		}
		return unreachedKey
	})
}

// maxDegreeVertex returns the lowest-id vertex of maximum out-degree.
func (g *Graph) maxDegreeVertex() Vertex {
	n := int64(g.NumVertices())
	workers := BuildParallelism()
	if workers <= 1 || n < serialBuildThreshold {
		best, bestDeg := Vertex(0), int64(-1)
		for v := int64(0); v < n; v++ {
			if d := g.offsets[v+1] - g.offsets[v]; d > bestDeg {
				best, bestDeg = Vertex(v), d
			}
		}
		return best
	}
	type partial struct {
		best Vertex
		deg  int64
		_    [48]byte
	}
	parts := make([]partial, workers)
	parallelRange(n, workers, func(w int, lo, hi int64) {
		p := partial{deg: -1}
		for v := lo; v < hi; v++ {
			if d := g.offsets[v+1] - g.offsets[v]; d > p.deg {
				p.best, p.deg = Vertex(v), d
			}
		}
		parts[w] = p
	})
	best, bestDeg := Vertex(0), int64(-1)
	for i := range parts {
		// Ranges are in ascending vertex order, so > keeps the lowest id
		// among ties.
		if parts[i].deg > bestDeg {
			best, bestDeg = parts[i].best, parts[i].deg
		}
	}
	return best
}

// bfsLevels runs a level-synchronous BFS from seed and returns the
// depth of every vertex (-1 for unreached) and the deepest level
// reached. Large frontiers are expanded in parallel with CAS claims
// into per-worker next buffers; the buffers are concatenated in worker
// order, which is only used to drive the next expansion — the level
// values themselves are deterministic.
func (g *Graph) bfsLevels(seed Vertex) ([]int32, int32) {
	n := g.NumVertices()
	levels := make([]int32, n)
	workers := BuildParallelism()
	fill := func(_ int, lo, hi int64) {
		s := levels[lo:hi]
		for i := range s {
			s[i] = -1
		}
	}
	if workers <= 1 || int64(n) < serialBuildThreshold {
		fill(0, 0, int64(n))
	} else {
		parallelRange(int64(n), workers, fill)
	}

	const parallelFrontier = 1 << 10
	levels[seed] = 0
	cur := []Vertex{seed}
	var next []Vertex
	depth, maxLevel := int32(0), int32(0)
	for len(cur) > 0 {
		depth++
		next = next[:0]
		if workers <= 1 || len(cur) < parallelFrontier {
			for _, u := range cur {
				for _, w := range g.Neighbors(u) {
					if levels[w] == -1 {
						levels[w] = depth
						next = append(next, w)
					}
				}
			}
		} else {
			bufs := make([][]Vertex, workers)
			parallelRange(int64(len(cur)), workers, func(w int, lo, hi int64) {
				var buf []Vertex
				for _, u := range cur[lo:hi] {
					for _, t := range g.Neighbors(u) {
						if atomic.LoadInt32(&levels[t]) != -1 {
							continue
						}
						if atomic.CompareAndSwapInt32(&levels[t], -1, depth) {
							buf = append(buf, t)
						}
					}
				}
				bufs[w] = buf
			})
			for _, buf := range bufs {
				next = append(next, buf...)
			}
		}
		cur, next = next, cur
		if len(cur) > 0 {
			maxLevel = depth
		}
	}
	return levels, maxLevel
}
