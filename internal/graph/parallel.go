package graph

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel CSR construction.
//
// Every structural kernel in this package (FromEdges, FromArrays,
// Transpose, Undirected, Relabel) is a stable counting sort of an edge
// sequence by source vertex. The serial version walks the sequence
// three times: histogram, prefix sum, scatter. At R-MAT scale >= 20 the
// walk is memory-bound and single-threaded construction dwarfs the
// parallel search it feeds, so the counting sort itself is
// parallelized here, once, and every builder is expressed on top of it.
//
// The decomposition mirrors the level-synchronous BFS it serves: shard
// the edge sequence, give every shard private state, and synchronize
// only at phase boundaries.
//
//  1. Histogram: shard s walks edge range [lo(s), hi(s)) and counts
//     per-source degrees into its private row of an S x n count matrix.
//     No shared writes.
//  2. Prefix sum: vertices are range-partitioned across workers. A
//     two-pass scan (per-range totals, serial prefix over the S range
//     totals, then per-range sweep) turns the count matrix in place
//     into per-shard scatter cursors and fills the global offsets
//     array. cursor[s][v] = offsets[v] + sum over t<s of count[t][v],
//     so shard s's slots within v's bucket start exactly where shard
//     s-1's end.
//  3. Scatter: shard s re-walks its edge range in order and places each
//     edge at cursor[s][src]++. Every (shard, vertex) cursor range is
//     disjoint by construction, so the steady state needs no atomic
//     operations at all — each slot of the adjacency array is written
//     by exactly one shard — and, because shards scatter their edges in
//     input order into consecutive slots, the result is byte-identical
//     to the serial stable counting sort for any shard count.
//
// Cursors are int32 (the matrix is the transient cost of the kernel:
// 4*S*n bytes), which bounds the parallel path to m < 2^31 edges;
// larger graphs — beyond this library's uint32 vertex ids' practical
// memory range anyway — fall back to the serial builder.

// serialBuildThreshold is the edge count below which the serial builder
// runs even when parallelism is available: under ~32 K edges the
// histogram+scatter walks complete in tens of microseconds, comparable
// to spawning the worker goroutines (measured crossover on a modern
// x86 core is 10-50 K edges; see EXPERIMENTS.md). A var, not a const,
// so tests can force the parallel path on tiny inputs.
var serialBuildThreshold int64 = 1 << 15

// maxBuildShards caps the shard count. Construction is memory-bandwidth
// bound, which saturates well before high core counts, and the cursor
// matrix costs 4*S*n bytes, so oversharding buys nothing.
const maxBuildShards = 64

// buildParallelism holds the configured worker count; 0 means
// runtime.GOMAXPROCS(0).
var buildParallelism atomic.Int32

// SetBuildParallelism sets the number of workers used by the parallel
// CSR construction kernels (FromEdges, FromArrays, Transpose,
// Undirected, Relabel, Deduplicate). p <= 0 restores the default,
// runtime.GOMAXPROCS(0) at the time of each build. p == 1 forces the
// serial reference builder. Safe to call concurrently with builds;
// builds in flight keep the value they started with.
func SetBuildParallelism(p int) {
	if p < 0 {
		p = 0
	}
	if p > maxBuildShards {
		p = maxBuildShards
	}
	buildParallelism.Store(int32(p))
}

// BuildParallelism returns the effective construction worker count.
func BuildParallelism() int {
	if p := int(buildParallelism.Load()); p > 0 {
		return p
	}
	p := runtime.GOMAXPROCS(0)
	if p > maxBuildShards {
		p = maxBuildShards
	}
	return p
}

// buildShards returns the shard count for a parallel build of m edges
// over n vertices, or 1 when the serial path should run: tiny inputs
// (below the goroutine-spawn crossover), single-threaded configuration,
// edge counts beyond the int32 cursor range, and graphs so sparse that
// the 4*S*n-byte cursor matrix would dwarf the 4*m-byte adjacency
// array (each shard must be worth its n-sized matrix row).
func buildShards(n int, m int64) int {
	p := int64(BuildParallelism())
	if p <= 1 || m < serialBuildThreshold || m >= math.MaxInt32 || n == 0 {
		return 1
	}
	if limit := 2 * m / int64(n); p > limit {
		p = limit
	}
	if p <= 1 {
		return 1
	}
	return int(p)
}

// parallelCSR runs the three-phase kernel. The edge sequence is
// abstract: count must increment deg[src] once per edge in [lo, hi),
// and scatter must place each edge of [lo, hi) in order via
// pos := cur[src]; cur[src] = pos + 1; out[pos] = dst. Both closures
// are handed whole shard ranges so the per-edge work stays in the
// caller's (inlinable) loop. align forces shard boundaries to
// multiples of the given stride, for edge sequences whose entries come
// in indivisible groups (Undirected emits two per underlying edge).
func parallelCSR(n int, m int64, shards int, align int64,
	count func(shard int, lo, hi int64, deg []int32),
	scatter func(shard int, lo, hi int64, cur []int32, out []Vertex),
) ([]int64, []Vertex) {
	offsets := make([]int64, n+1)
	out := make([]Vertex, m)
	matrix := make([]int32, int64(shards)*int64(n))
	row := func(s int) []int32 {
		return matrix[int64(s)*int64(n) : int64(s+1)*int64(n)]
	}
	edgeLo := func(s int) int64 {
		if s >= shards {
			return m
		}
		return m * int64(s) / int64(shards) / align * align
	}

	// Phase 1: private histograms.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			count(s, edgeLo(s), edgeLo(s+1), row(s))
		}(s)
	}
	wg.Wait()

	// Phase 2: two-pass prefix sum over vertex ranges. Worker r owns
	// vertices [n*r/S, n*(r+1)/S); pass one totals its range across all
	// shard rows, a serial scan of the S totals sets each range's base,
	// and pass two sweeps the range again, recording bucket starts in
	// offsets and rewriting each count slot as that shard's first
	// scatter position.
	totals := make([]int64, shards+1)
	vertLo := func(r int) int { return n * r / shards }
	for r := 0; r < shards; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vlo, vhi := vertLo(r), vertLo(r+1)
			var t int64
			for s := 0; s < shards; s++ {
				rs := row(s)
				for v := vlo; v < vhi; v++ {
					t += int64(rs[v])
				}
			}
			totals[r+1] = t
		}(r)
	}
	wg.Wait()
	for r := 0; r < shards; r++ {
		totals[r+1] += totals[r]
	}
	for r := 0; r < shards; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vlo, vhi := vertLo(r), vertLo(r+1)
			running := totals[r]
			for v := vlo; v < vhi; v++ {
				offsets[v] = running
				for s := 0; s < shards; s++ {
					i := int64(s)*int64(n) + int64(v)
					c := matrix[i]
					matrix[i] = int32(running)
					running += int64(c)
				}
			}
		}(r)
	}
	wg.Wait()
	offsets[n] = m

	// Phase 3: contention-free scatter into disjoint cursor ranges.
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			scatter(s, edgeLo(s), edgeLo(s+1), row(s), out)
		}(s)
	}
	wg.Wait()
	return offsets, out
}

// vertexAt returns the vertex whose adjacency range contains edge
// index i (the largest u with offsets[u] <= i < offsets[u+1] among
// non-empty ranges). i must be in [0, NumEdges()).
func (g *Graph) vertexAt(i int64) int {
	return sort.Search(g.NumVertices(), func(u int) bool { return g.offsets[u+1] > i })
}

// parallelRange splits [0, n) into the given number of contiguous
// chunks and runs fn on each concurrently.
func parallelRange(n int64, workers int, fn func(worker int, lo, hi int64)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w, n*int64(w)/int64(workers), n*int64(w+1)/int64(workers))
		}(w)
	}
	wg.Wait()
}

// checkEdgeBounds verifies every endpoint is below n, sharding the scan
// across workers. On failure it reports the lowest offending edge
// index, matching the serial scan's error exactly.
func checkEdgeBounds(n int, edges []Edge, workers int) (int64, bool) {
	m := int64(len(edges))
	if workers <= 1 {
		for i, e := range edges {
			if int(e.Src) >= n || int(e.Dst) >= n {
				return int64(i), false
			}
		}
		return 0, true
	}
	firstBad := make([]int64, workers)
	parallelRange(m, workers, func(w int, lo, hi int64) {
		firstBad[w] = -1
		for i := lo; i < hi; i++ {
			e := edges[i]
			if int(e.Src) >= n || int(e.Dst) >= n {
				firstBad[w] = i
				return
			}
		}
	})
	for _, i := range firstBad {
		if i >= 0 {
			return i, false
		}
	}
	return 0, true
}

// checkArrayBounds is checkEdgeBounds for parallel src/dst arrays.
func checkArrayBounds(n int, srcs, dsts []Vertex, workers int) (int64, bool) {
	m := int64(len(srcs))
	if workers <= 1 {
		for i := range srcs {
			if int(srcs[i]) >= n || int(dsts[i]) >= n {
				return int64(i), false
			}
		}
		return 0, true
	}
	firstBad := make([]int64, workers)
	parallelRange(m, workers, func(w int, lo, hi int64) {
		firstBad[w] = -1
		for i := lo; i < hi; i++ {
			if int(srcs[i]) >= n || int(dsts[i]) >= n {
				firstBad[w] = i
				return
			}
		}
	})
	for _, i := range firstBad {
		if i >= 0 {
			return i, false
		}
	}
	return 0, true
}
