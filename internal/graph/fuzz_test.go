package graph

import (
	"bytes"
	"testing"
)

// The fuzz targets below run their seed corpus under plain `go test`
// and can be expanded with `go test -fuzz=FuzzReadDIMACS` etc. The
// invariant in every case: arbitrary input must produce either an
// error or a graph whose Validate passes — never a panic, never a
// structurally broken graph.

func FuzzReadDIMACS(f *testing.F) {
	f.Add([]byte("p sp 3 2\na 1 2 1\na 2 3 1\n"))
	f.Add([]byte("c comment\np sp 1 0\n"))
	f.Add([]byte("p sp 0 0\n"))
	f.Add([]byte("a 1 2 1\n"))
	f.Add([]byte("p sp 2 9999999999999999999\n"))
	f.Add([]byte("p sp -5 0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadDIMACS(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted input produced invalid graph: %v", verr)
			}
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# vertices 10\n0 9\n"))
	f.Add([]byte("# vertices -1\n"))
	f.Add([]byte("999999999999999999999 0\n"))
	f.Add([]byte("0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted input produced invalid graph: %v", verr)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	g, err := FromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	corrupted := append([]byte(nil), valid...)
	if len(corrupted) > 30 {
		corrupted[29] ^= 0xff
	}
	f.Add(corrupted)
	// Version-2 seeds: a file carrying ordering metadata with the
	// permutation, a truncation inside the permutation, and one with a
	// corrupted meta word, so the fuzzer explores the metadata paths.
	rd, err := g.Reorder(OrderDegree)
	if err != nil {
		f.Fatal(err)
	}
	var v2buf bytes.Buffer
	if _, err := rd.Graph.WriteToMeta(&v2buf, &FileMeta{Order: rd.Order, Inv: rd.Inv}); err != nil {
		f.Fatal(err)
	}
	v2 := v2buf.Bytes()
	f.Add(v2)
	f.Add(v2[:len(v2)-3])
	badMeta := append([]byte(nil), v2...)
	if len(badMeta) > 31 {
		badMeta[28] ^= 0xff // the meta word: ordering tag / flags
	}
	f.Add(badMeta)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, meta, err := ReadFromMeta(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted input produced invalid graph: %v", verr)
		}
		if meta != nil && meta.Inv != nil {
			// An accepted permutation must be a bijection on [0, n).
			if len(meta.Inv) != g.NumVertices() {
				t.Fatalf("accepted permutation has %d entries for %d vertices", len(meta.Inv), g.NumVertices())
			}
			seen := make(map[Vertex]bool, len(meta.Inv))
			for _, v := range meta.Inv {
				if int(v) >= g.NumVertices() || seen[v] {
					t.Fatalf("accepted permutation is not a bijection (value %d)", v)
				}
				seen[v] = true
			}
		}
	})
}
