package graph

import (
	"bytes"
	"testing"
)

// The fuzz targets below run their seed corpus under plain `go test`
// and can be expanded with `go test -fuzz=FuzzReadDIMACS` etc. The
// invariant in every case: arbitrary input must produce either an
// error or a graph whose Validate passes — never a panic, never a
// structurally broken graph.

func FuzzReadDIMACS(f *testing.F) {
	f.Add([]byte("p sp 3 2\na 1 2 1\na 2 3 1\n"))
	f.Add([]byte("c comment\np sp 1 0\n"))
	f.Add([]byte("p sp 0 0\n"))
	f.Add([]byte("a 1 2 1\n"))
	f.Add([]byte("p sp 2 9999999999999999999\n"))
	f.Add([]byte("p sp -5 0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadDIMACS(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted input produced invalid graph: %v", verr)
			}
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# vertices 10\n0 9\n"))
	f.Add([]byte("# vertices -1\n"))
	f.Add([]byte("999999999999999999999 0\n"))
	f.Add([]byte("0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted input produced invalid graph: %v", verr)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	g, err := FromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	corrupted := append([]byte(nil), valid...)
	if len(corrupted) > 30 {
		corrupted[29] ^= 0xff
	}
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted input produced invalid graph: %v", verr)
			}
		}
	})
}
