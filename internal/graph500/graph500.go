// Package graph500 runs the Graph500-style BFS benchmark protocol over
// this library. The Graph500 list was launched in the same year as the
// paper (SC 2010) around exactly this kernel, and its protocol became
// the standard way to report BFS performance:
//
//  1. generate a Kronecker/R-MAT graph of the given scale and edge
//     factor;
//  2. sample a fixed number of search keys (roots) with non-zero
//     degree;
//  3. run one timed BFS per key;
//  4. validate every resulting tree;
//  5. report TEPS (traversed edges per second) statistics — notably
//     the harmonic mean, which Graph500 designates as the headline
//     number.
//
// Running the protocol here both exercises the library the way the
// community benchmarks BFS and provides the "competitive Graph500-era
// results" frame of the paper's abstract.
package graph500

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/rng"
	"mcbfs/internal/stats"
)

// Spec configures a benchmark run.
type Spec struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is the ratio m/n (Graph500 default 16).
	EdgeFactor int
	// Roots is the number of search keys (Graph500 uses 64).
	Roots int
	// Seed drives generation and root sampling.
	Seed uint64
	// Options configures the BFS runs (algorithm tier, threads, ...).
	Options core.Options
	// Ordering relabels the generated graph under a locality-optimized
	// vertex ordering before the search phase. The reorder time is
	// reported separately (Result.ReorderTime), never charged to
	// construction or search; roots keep their original ids — the
	// session translates transparently.
	Ordering graph.Ordering
	// SkipValidation skips per-root tree validation (validation is
	// O(n+m) per root and dominates small-scale runs).
	SkipValidation bool
	// SearchTimeout, when positive, bounds each root's BFS: a search
	// that exceeds it is abandoned via context cancellation, counted in
	// Result.RootsTimedOut, and excluded from the TEPS statistics. The
	// session stays warm — the next root pays only the usual reset.
	SearchTimeout time.Duration
	// Metrics, when non-nil, receives each timed-out root as a live
	// TimedOut increment, so a long run's abandonment count is visible
	// on /debug/vars and /metrics while the protocol is still going,
	// not only in the stdout summary at the end.
	Metrics *obs.Metrics
	// Batch additionally replays every sampled root through one MS-BFS
	// session in chunks of up to core.MaxLanes lanes per shared
	// adjacency pass, reporting the batched aggregate TEPS and
	// queries/sec next to the per-query cold/warm numbers. Each lane's
	// tree is validated unless SkipValidation is set.
	Batch bool
}

// DefaultSpec returns the standard protocol at the given scale: edge
// factor 16, 64 roots.
func DefaultSpec(scale int) Spec {
	return Spec{Scale: scale, EdgeFactor: 16, Roots: 64, Seed: 2010}
}

// Result reports one benchmark run.
type Result struct {
	// Scale and EdgeFactor echo the spec.
	Scale      int
	EdgeFactor int
	// Vertices and Edges are the generated graph's size.
	Vertices int
	Edges    int64
	// ConstructionTime is the kernel-1 (generation + CSR build) time,
	// the sum of GenerationTime and BuildTime. Construction is a
	// first-class reported metric alongside search TEPS: at large
	// scales a serial builder would dominate the whole protocol.
	ConstructionTime time.Duration
	// GenerationTime is the Kronecker edge-sampling portion of
	// kernel 1.
	GenerationTime time.Duration
	// BuildTime is the CSR-construction portion of kernel 1 (the
	// undirected counting-sort build).
	BuildTime time.Duration
	// Ordering echoes the active vertex ordering; ReorderTime is its
	// one-time cost (permutation + relabel), reported separately from
	// construction and search so the amortization math stays visible.
	// Zero for natural order.
	Ordering    graph.Ordering
	ReorderTime time.Duration
	// RootsRun is the number of BFS runs (may be below Spec.Roots if
	// the graph has fewer non-isolated vertices).
	RootsRun int
	// RootsTimedOut is the number of roots abandoned at
	// Spec.SearchTimeout; their partial searches contribute no TEPS
	// sample.
	RootsTimedOut int
	// TEPS holds one traversed-edges-per-second value per root.
	TEPS []float64
	// HarmonicMeanTEPS is the Graph500 headline metric.
	HarmonicMeanTEPS float64
	// ColdTEPS is the first root's rate with the search-session setup
	// (worker pool spawn, parent/bitmap/queue allocation) charged to
	// it — what a one-shot caller pays.
	ColdTEPS float64
	// WarmHarmonicMeanTEPS is the harmonic mean over roots 2..N, which
	// reuse the first root's session state and pay only an O(touched)
	// reset. The gap to ColdTEPS is the amortized setup. Zero when only
	// one root ran.
	WarmHarmonicMeanTEPS float64
	// MinTEPS, MedianTEPS, MaxTEPS summarize the distribution.
	MinTEPS, MedianTEPS, MaxTEPS float64
	// BatchDuration is the wall-clock time of the batched replay —
	// session setup plus every chunk. Zero unless Spec.Batch.
	BatchDuration time.Duration
	// BatchTEPS is the batched replay's aggregate rate: the sum of
	// per-lane attributable edges over BatchDuration. Comparable to
	// WarmHarmonicMeanTEPS, which is what one root at a time achieves
	// on the same warm machinery.
	BatchTEPS float64
	// BatchQueriesPerSec is completed roots per second of the batched
	// replay — the serving-throughput view of the same run.
	BatchQueriesPerSec float64
	// BatchAmortization is lane-attributed edges over edges the shared
	// traversals actually scanned: how many single-source passes each
	// shared pass replaced.
	BatchAmortization float64
	// BatchRootsRun counts roots completing in the batched replay.
	BatchRootsRun int
	// MeanReached is the average number of vertices reached per root.
	MeanReached float64
	// Validated reports whether every tree passed validation.
	Validated bool
}

// Run executes the protocol.
func Run(spec Spec) (*Result, error) {
	if spec.Scale < 1 || spec.Scale > 30 {
		return nil, fmt.Errorf("graph500: scale %d out of range [1,30]", spec.Scale)
	}
	if spec.EdgeFactor < 1 {
		return nil, fmt.Errorf("graph500: edge factor %d must be >= 1", spec.EdgeFactor)
	}
	if spec.Roots < 1 {
		return nil, fmt.Errorf("graph500: root count %d must be >= 1", spec.Roots)
	}

	n := 1 << spec.Scale
	m := int64(n) * int64(spec.EdgeFactor)

	constructStart := time.Now()
	// Graph500's Kronecker generator is the R-MAT recursion with the
	// (0.57, 0.19, 0.19, 0.05) parameters; edges are interpreted as
	// undirected, so both directions enter the CSR.
	directed, err := gen.RMAT(spec.Scale, m, gen.Graph500Params, spec.Seed)
	if err != nil {
		return nil, err
	}
	generated := time.Now()
	g := directed.Undirected()
	built := time.Now()
	generation := generated.Sub(constructStart)
	build := built.Sub(generated)
	construction := built.Sub(constructStart)

	// Sample roots among vertices with at least one edge, as the
	// specification requires.
	r := rng.New(spec.Seed ^ 0x500)
	roots := make([]graph.Vertex, 0, spec.Roots)
	seen := make(map[graph.Vertex]bool)
	attempts := 0
	for len(roots) < spec.Roots && attempts < 100*spec.Roots {
		attempts++
		v := graph.Vertex(r.Intn(n))
		if g.Degree(v) == 0 || seen[v] {
			continue
		}
		seen[v] = true
		roots = append(roots, v)
	}
	if len(roots) == 0 {
		return nil, errors.New("graph500: no non-isolated vertices to sample")
	}

	res := &Result{
		Scale:      spec.Scale,
		EdgeFactor: spec.EdgeFactor,
		Vertices:   n,
		Edges:      g.NumEdges(),

		ConstructionTime: construction,
		GenerationTime:   generation,
		BuildTime:        build,
		Ordering:         spec.Ordering,
		Validated:        true,
	}
	// Relabel under the requested ordering before any session is built;
	// both the per-query and batched phases share the one Reordered. The
	// cost is timed apart from construction and search.
	if spec.Ordering != graph.OrderNatural {
		rd, err := g.Reorder(spec.Ordering)
		if err != nil {
			return nil, err
		}
		res.ReorderTime = rd.ReorderTime()
		spec.Options.Ordering = spec.Ordering
		spec.Options.Reordered = rd
		if spec.Metrics != nil {
			spec.Metrics.ReorderNs.Add(int64(rd.ReorderTime()))
		}
	}
	// All roots run on one search session: the worker pool, parent
	// array, bitmaps and queues are created once and reused, so roots
	// after the first pay only an O(touched) reset. Setup is charged to
	// the first (cold) root, matching what a one-shot caller would pay.
	setupStart := time.Now()
	searcher, err := core.NewSearcher(g, spec.Options)
	if err != nil {
		return nil, err
	}
	defer searcher.Close()
	setup := time.Since(setupStart)

	var reachedSum float64
	completed := 0
	for i, root := range roots {
		bfsRes, err := runRoot(searcher, root, spec.SearchTimeout)
		if errors.Is(err, context.DeadlineExceeded) {
			// The deadline knob: a pathological root is abandoned
			// mid-search; the session's O(touched) reset makes the next
			// root's tree exact regardless.
			res.RootsTimedOut++
			if spec.Metrics != nil {
				spec.Metrics.TimedOut.Add(1)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		completed++
		res.TEPS = append(res.TEPS, bfsRes.EdgesPerSecond())
		reachedSum += float64(bfsRes.Reached)
		if i == 0 {
			if d := setup + bfsRes.Duration; d > 0 {
				res.ColdTEPS = float64(bfsRes.EdgesTraversed) / d.Seconds()
			}
		}
		// Validate in-loop: the session reuses its parent array, so the
		// tree must be checked before the next search resets it.
		if !spec.SkipValidation {
			if err := core.ValidateTree(g, root, bfsRes.Parents); err != nil {
				res.Validated = false
				return res, fmt.Errorf("graph500: root %d produced invalid tree: %w", root, err)
			}
		}
	}
	res.RootsRun = len(roots)
	if completed == 0 {
		return res, fmt.Errorf("graph500: all %d roots exceeded the %v search timeout", len(roots), spec.SearchTimeout)
	}
	res.MeanReached = reachedSum / float64(completed)
	res.HarmonicMeanTEPS = stats.HarmonicMean(res.TEPS)
	if len(res.TEPS) > 1 {
		res.WarmHarmonicMeanTEPS = stats.HarmonicMean(res.TEPS[1:])
	}
	res.MinTEPS = stats.Quantile(res.TEPS, 0)
	res.MedianTEPS = stats.Quantile(res.TEPS, 0.5)
	res.MaxTEPS = stats.Quantile(res.TEPS, 1)
	if spec.Batch {
		if err := runBatch(spec, g, roots, res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// runBatch replays the sampled roots through one MS-BFS session,
// core.MaxLanes lanes per shared traversal, filling the Batch* result
// fields. Session setup is charged to the replay, mirroring how the
// per-query phase charges setup to its cold root.
func runBatch(spec Spec, g *graph.Graph, roots []graph.Vertex, res *Result) error {
	setupStart := time.Now()
	bs, err := core.NewBatchSearcher(g, core.BatchOptions{
		Width:          core.MaxLanes,
		Threads:        spec.Options.Threads,
		PinThreads:     spec.Options.PinThreads,
		Telemetry:      spec.Options.Telemetry,
		TelemetryShard: spec.Options.TelemetryShard,
		Metrics:        spec.Metrics,
		Ordering:       spec.Options.Ordering,
		Reordered:      spec.Options.Reordered,
	})
	if err != nil {
		return err
	}
	defer bs.Close()
	// Like the per-query phase, the replay's clock counts setup and
	// traversal but not validation.
	elapsed := time.Since(setupStart)
	var laneEdges, scanned int64
	var parents []uint32
	for off := 0; off < len(roots); off += core.MaxLanes {
		chunk := roots[off:min(off+core.MaxLanes, len(roots))]
		bres, err := runChunk(bs, chunk, spec.SearchTimeout)
		if errors.Is(err, context.DeadlineExceeded) {
			// The whole chunk is abandoned at the deadline; the
			// session's O(touched) reset keeps the next chunk exact.
			res.RootsTimedOut += len(chunk)
			if spec.Metrics != nil {
				spec.Metrics.TimedOut.Add(int64(len(chunk)))
			}
			continue
		}
		if err != nil {
			return err
		}
		elapsed += bres.Duration
		scanned += bres.EdgesScanned
		for l := range chunk {
			if bres.Err[l] != nil {
				continue
			}
			res.BatchRootsRun++
			laneEdges += bres.Edges[l]
			// Validate in-loop: the session reuses its lane state, so
			// trees must be checked before the next chunk resets them.
			if !spec.SkipValidation {
				parents = bres.ExtractParents(l, parents)
				if err := core.ValidateTree(g, chunk[l], parents); err != nil {
					res.Validated = false
					return fmt.Errorf("graph500: batched root %d produced invalid tree: %w", chunk[l], err)
				}
			}
		}
	}
	res.BatchDuration = elapsed
	if s := res.BatchDuration.Seconds(); s > 0 {
		res.BatchTEPS = float64(laneEdges) / s
		res.BatchQueriesPerSec = float64(res.BatchRootsRun) / s
	}
	if scanned > 0 {
		res.BatchAmortization = float64(laneEdges) / float64(scanned)
	}
	return nil
}

// runChunk runs one batch of roots, deadline-bounded when timeout is
// positive.
func runChunk(bs *core.BatchSearcher, chunk []graph.Vertex, timeout time.Duration) (*core.BatchResult, error) {
	if timeout <= 0 {
		return bs.Search(chunk)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return bs.SearchContext(ctx, chunk)
}

// runRoot runs one root's BFS, deadline-bounded when timeout is
// positive.
func runRoot(s *core.Searcher, root graph.Vertex, timeout time.Duration) (*core.Result, error) {
	if timeout <= 0 {
		return s.BFS(root)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.SearchContext(ctx, root, core.Query{})
}

// ConstructionEPS returns the kernel-1 rate: directed CSR edge slots
// built per second of total construction time (generation + build),
// the construction analogue of search TEPS.
func (r *Result) ConstructionEPS() float64 {
	s := r.ConstructionTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Edges) / s
}

// String renders the result the way Graph500 submissions are quoted,
// with construction reported separately from search.
func (r *Result) String() string {
	coldWarm := ""
	if r.WarmHarmonicMeanTEPS > 0 {
		coldWarm = fmt.Sprintf(", cold %s / warm %s",
			stats.FormatRate(r.ColdTEPS), stats.FormatRate(r.WarmHarmonicMeanTEPS))
	}
	if r.RootsTimedOut > 0 {
		coldWarm += fmt.Sprintf(", %d roots timed out", r.RootsTimedOut)
	}
	if r.BatchDuration > 0 {
		coldWarm += fmt.Sprintf(", batched %s aggregate TEPS (%.1f queries/s, %.1fx edge amortization, %d roots in %v)",
			stats.FormatRate(r.BatchTEPS), r.BatchQueriesPerSec, r.BatchAmortization,
			r.BatchRootsRun, r.BatchDuration.Round(time.Millisecond))
	}
	reorder := ""
	if r.Ordering != graph.OrderNatural {
		reorder = fmt.Sprintf(" + reorder[%s] %v", r.Ordering, r.ReorderTime.Round(time.Millisecond))
	}
	return fmt.Sprintf(
		"graph500 scale=%d edgefactor=%d: %s harmonic-mean TEPS over %d roots (min %s, median %s, max %s)%s, construction %v (generate %v + build %v, %s construction rate)%s, validated=%v",
		r.Scale, r.EdgeFactor, stats.FormatRate(r.HarmonicMeanTEPS), r.RootsRun,
		stats.FormatRate(r.MinTEPS), stats.FormatRate(r.MedianTEPS), stats.FormatRate(r.MaxTEPS),
		coldWarm,
		r.ConstructionTime.Round(time.Millisecond),
		r.GenerationTime.Round(time.Millisecond), r.BuildTime.Round(time.Millisecond),
		stats.FormatRate(r.ConstructionEPS()), reorder, r.Validated)
}
