package graph500

import (
	"strings"
	"testing"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/obs"
)

func TestRunSmallScale(t *testing.T) {
	spec := DefaultSpec(10)
	spec.Roots = 8
	spec.Options = core.Options{Threads: 4}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vertices != 1024 {
		t.Errorf("Vertices = %d", res.Vertices)
	}
	if res.Edges != 2*1024*16 {
		t.Errorf("Edges = %d, want undirected doubling of n*16", res.Edges)
	}
	if res.RootsRun != 8 {
		t.Errorf("RootsRun = %d", res.RootsRun)
	}
	if len(res.TEPS) != res.RootsRun {
		t.Errorf("TEPS count = %d", len(res.TEPS))
	}
	if res.HarmonicMeanTEPS <= 0 {
		t.Error("no harmonic mean TEPS")
	}
	if !res.Validated {
		t.Error("trees failed validation")
	}
	if res.MinTEPS > res.MedianTEPS || res.MedianTEPS > res.MaxTEPS {
		t.Errorf("TEPS quantiles out of order: %v %v %v", res.MinTEPS, res.MedianTEPS, res.MaxTEPS)
	}
	if res.ConstructionTime <= 0 {
		t.Error("no construction time")
	}
	if res.MeanReached <= 1 {
		t.Errorf("MeanReached = %v", res.MeanReached)
	}
}

func TestRunHarmonicMeanBelowMax(t *testing.T) {
	spec := DefaultSpec(9)
	spec.Roots = 6
	spec.SkipValidation = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.HarmonicMeanTEPS > res.MaxTEPS {
		t.Errorf("harmonic mean %v above max %v", res.HarmonicMeanTEPS, res.MaxTEPS)
	}
	if res.HarmonicMeanTEPS < res.MinTEPS {
		t.Errorf("harmonic mean %v below min %v", res.HarmonicMeanTEPS, res.MinTEPS)
	}
}

func TestRunDeterministicGraph(t *testing.T) {
	spec := DefaultSpec(8)
	spec.Roots = 2
	spec.SkipValidation = true
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges != b.Edges || a.Vertices != b.Vertices || a.RootsRun != b.RootsRun {
		t.Error("same spec produced different graphs")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	bad := []Spec{
		{Scale: 0, EdgeFactor: 16, Roots: 4},
		{Scale: 31, EdgeFactor: 16, Roots: 4},
		{Scale: 10, EdgeFactor: 0, Roots: 4},
		{Scale: 10, EdgeFactor: 16, Roots: 0},
	}
	for _, s := range bad {
		if _, err := Run(s); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestRunAllTiers(t *testing.T) {
	for _, alg := range []core.Algorithm{
		core.AlgSequential, core.AlgSingleSocket, core.AlgMultiSocket, core.AlgDirectionOptimizing,
	} {
		spec := DefaultSpec(9)
		spec.Roots = 3
		spec.Options = core.Options{Algorithm: alg, Threads: 4}
		res, err := Run(spec)
		if err != nil {
			t.Errorf("%v: %v", alg, err)
			continue
		}
		if !res.Validated {
			t.Errorf("%v: validation failed", alg)
		}
	}
}

// TestRunDeadlineFeedsMetrics pins the -deadline observability path: a
// deadline so tight every root times out must surface the abandonment
// count through the attached obs.Metrics (the live view), in agreement
// with Result.RootsTimedOut (the summary).
func TestRunDeadlineFeedsMetrics(t *testing.T) {
	var m obs.Metrics
	spec := DefaultSpec(12)
	spec.Roots = 3
	spec.SkipValidation = true
	spec.Options = core.Options{Threads: 2}
	spec.SearchTimeout = time.Nanosecond // expires before the first level barrier
	spec.Metrics = &m
	res, err := Run(spec)
	if err == nil {
		t.Fatal("expected the all-roots-timed-out error")
	}
	if res == nil {
		t.Fatal("timed-out run must still return its partial result")
	}
	if res.RootsTimedOut != spec.Roots {
		t.Fatalf("RootsTimedOut = %d, want %d", res.RootsTimedOut, spec.Roots)
	}
	if got := m.TimedOut.Load(); got != int64(spec.Roots) {
		t.Errorf("Metrics.TimedOut = %d, want %d (must match RootsTimedOut live)", got, spec.Roots)
	}
	if snap := m.Snapshot(); snap["timedOut"] != int64(spec.Roots) {
		t.Errorf("Snapshot timedOut = %d, want %d", snap["timedOut"], spec.Roots)
	}
}

func TestResultString(t *testing.T) {
	spec := DefaultSpec(8)
	spec.Roots = 2
	spec.SkipValidation = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"graph500 scale=8", "harmonic-mean TEPS", "validated"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestRunBatch(t *testing.T) {
	spec := DefaultSpec(10)
	spec.Roots = 70 // forces two chunks: 64 + 6
	spec.Options = core.Options{Threads: 2}
	spec.Batch = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchRootsRun != res.RootsRun {
		t.Errorf("BatchRootsRun = %d, want %d", res.BatchRootsRun, res.RootsRun)
	}
	if res.BatchDuration <= 0 || res.BatchTEPS <= 0 || res.BatchQueriesPerSec <= 0 {
		t.Errorf("batch stats not populated: dur=%v teps=%v qps=%v",
			res.BatchDuration, res.BatchTEPS, res.BatchQueriesPerSec)
	}
	// Lanes share scans, so attribution can only meet or beat 1x.
	if res.BatchAmortization < 1 {
		t.Errorf("BatchAmortization = %v, want >= 1", res.BatchAmortization)
	}
	if !res.Validated {
		t.Error("batched trees failed validation")
	}
	if s := res.String(); !strings.Contains(s, "batched") {
		t.Errorf("String() omits batch stats: %s", s)
	}
}
