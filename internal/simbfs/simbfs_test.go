package simbfs

import (
	"testing"

	"mcbfs/internal/machine"
)

func uniform(n, d float64) Workload { return Workload{Kind: Uniform, N: n, Degree: d} }
func rmat(n, d float64) Workload    { return Workload{Kind: RMAT, N: n, Degree: d} }

// --- workload / frontier model ---

func TestLevelsConserveVertices(t *testing.T) {
	w := uniform(1e6, 8)
	var reached float64 = 1
	for _, l := range w.Levels() {
		reached += l.Discovered
	}
	total := w.reachableFraction() * w.N
	if reached < 0.95*total || reached > 1.05*total {
		t.Errorf("levels reach %.0f vertices, expected ~%.0f", reached, total)
	}
}

func TestLevelsEdgesMatchDegree(t *testing.T) {
	w := uniform(1e6, 8)
	for i, l := range w.Levels() {
		if l.Edges != l.Frontier*8 {
			t.Errorf("level %d: %v edges for %v frontier", i, l.Edges, l.Frontier)
		}
	}
}

func TestFrontierRisesThenFalls(t *testing.T) {
	// The classic BFS frontier profile on a random graph: exponential
	// growth, a peak covering a large share of vertices, then decay.
	w := uniform(32e6, 8)
	levels := w.Levels()
	if len(levels) < 5 {
		t.Fatalf("only %d levels", len(levels))
	}
	peak, peakIdx := 0.0, 0
	for i, l := range levels {
		if l.Frontier > peak {
			peak, peakIdx = l.Frontier, i
		}
	}
	if peakIdx == 0 || peakIdx == len(levels)-1 {
		t.Errorf("frontier peak at level %d of %d; expected interior peak", peakIdx, len(levels))
	}
	if peak < 0.2*w.N {
		t.Errorf("peak frontier %.0f is < 20%% of n", peak)
	}
	for i := 1; i <= peakIdx; i++ {
		if levels[i].Frontier < levels[i-1].Frontier {
			t.Errorf("frontier not monotone before peak at level %d", i)
		}
	}
}

func TestReachableFractionUniform(t *testing.T) {
	// Degree-8 uniform graphs have a giant component covering nearly
	// everything; degree-1 graphs do not.
	if f := uniform(1e6, 8).reachableFraction(); f < 0.99 {
		t.Errorf("degree-8 reachable fraction = %v, want ~1", f)
	}
	if f := uniform(1e6, 1).reachableFraction(); f > 0.9 {
		t.Errorf("degree-1 reachable fraction = %v, want well below 1", f)
	}
}

func TestReachableFractionRMATLower(t *testing.T) {
	u := uniform(1e6, 5).reachableFraction()
	r := rmat(1e6, 5).reachableFraction()
	if r >= u {
		t.Errorf("R-MAT reachable fraction %v not below uniform %v", r, u)
	}
	if r < 0.2 {
		t.Errorf("R-MAT reachable fraction %v implausibly low", r)
	}
}

func TestTotalEdgesBounded(t *testing.T) {
	w := uniform(1e6, 8)
	total := w.TotalEdges()
	if total > w.N*w.Degree {
		t.Errorf("m_a = %.0f exceeds m = %.0f", total, w.N*w.Degree)
	}
	if total < 0.9*w.N*w.Degree {
		t.Errorf("m_a = %.0f implausibly below m = %.0f for a well-connected graph", total, w.N*w.Degree)
	}
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "uniform" || RMAT.String() != "rmat" {
		t.Error("kind names wrong")
	}
	if GraphKind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestVariantString(t *testing.T) {
	for _, v := range []Variant{VariantSimple, VariantBitmap, VariantBitmapDC, VariantChannels} {
		if v.String() == "" {
			t.Errorf("empty name for variant %d", int(v))
		}
	}
}

// --- simulation: paper figure shape pins ---

// TestFig8RateBand pins Fig. 8a: on the 4-socket EX with 64 threads and
// 32 M vertices, rates run from ~0.55 GE/s (256 M edges) to ~1.3 GE/s
// (1 B edges).
func TestFig8RateBand(t *testing.T) {
	ex := machine.EX()
	low := SimulateBest(uniform(32e6, 8), ex, 64).RatePerSec
	high := SimulateBest(uniform(32e6, 32), ex, 64).RatePerSec
	if low < 0.45e9 || low > 0.9e9 {
		t.Errorf("EX-64 d=8: %.2f GE/s, paper ~0.55", low/1e9)
	}
	if high < 0.9e9 || high > 1.6e9 {
		t.Errorf("EX-64 d=32: %.2f GE/s, paper ~1.3", high/1e9)
	}
	if high/low < 1.3 {
		t.Errorf("rate should grow markedly with degree: %.2f -> %.2f", low/1e9, high/1e9)
	}
}

// TestFig6RateBand pins Fig. 6a: EP with 16 threads, 32 M vertices,
// rates between ~0.2 and ~0.8 GE/s over the same degree sweep.
func TestFig6RateBand(t *testing.T) {
	ep := machine.EP()
	low := SimulateBest(uniform(32e6, 8), ep, 16).RatePerSec
	high := SimulateBest(uniform(32e6, 32), ep, 16).RatePerSec
	if low < 0.12e9 || low > 0.45e9 {
		t.Errorf("EP-16 d=8: %.2f GE/s, paper ~0.2-0.3", low/1e9)
	}
	if high < 0.25e9 || high > 0.9e9 {
		t.Errorf("EP-16 d=32: %.2f GE/s, paper up to ~0.8", high/1e9)
	}
	if high <= low {
		t.Error("EP rate does not grow with degree")
	}
}

// TestFig8SpeedupBand pins Fig. 8b: speedup between 14x and 24x at 64
// threads on the EX.
func TestFig8SpeedupBand(t *testing.T) {
	ex := machine.EX()
	// The paper's 14-24x band covers its swept configurations; the
	// simulator lands inside it at the denser settings and slightly
	// above at d=8, where partitioning shrinks the per-socket working
	// set superlinearly relative to the single-thread baseline.
	for _, c := range []struct {
		d      float64
		lo, hi float64
	}{
		{8, 14, 30},
		{16, 14, 24},
		{32, 14, 24},
	} {
		s := Speedup(uniform(32e6, c.d), ex, 64)
		if s < c.lo || s > c.hi {
			t.Errorf("EX speedup(64) at d=%v = %.1f, want [%v,%v] (paper band 14-24)", c.d, s, c.lo, c.hi)
		}
	}
}

// TestSpeedupSlopeTailsOffAtSocketCrossing pins the paper's repeated
// observation: "the slope of the speedup curve tails off from 8 to 16
// threads, when the algorithm starts using inter-socket channels"
// (EX; 4 to 8 on the EP).
func TestSpeedupSlopeTailsOffAtSocketCrossing(t *testing.T) {
	ex := machine.EX()
	w := uniform(32e6, 16)
	s8 := Speedup(w, ex, 8)
	s16 := Speedup(w, ex, 16)
	s4 := Speedup(w, ex, 4)
	slopeBefore := s8 / s4  // ~2 for linear scaling
	slopeAcross := s16 / s8 // < slopeBefore
	if slopeAcross >= slopeBefore {
		t.Errorf("no slope change at socket crossing: %.2f then %.2f", slopeBefore, slopeAcross)
	}
	if s16 <= s8 {
		t.Errorf("speedup must still increase across the boundary: s8=%.1f s16=%.1f", s8, s16)
	}

	ep := machine.EP()
	e2 := Speedup(w, ep, 2)
	e4 := Speedup(w, ep, 4)
	e8 := Speedup(w, ep, 8)
	if e8/e4 >= e4/e2 {
		t.Errorf("EP: no slope change at 4->8: %.2f then %.2f", e4/e2, e8/e4)
	}
}

func TestSpeedupNearLinearWithinSocket(t *testing.T) {
	ex := machine.EX()
	w := uniform(32e6, 16)
	for _, th := range []int{2, 4, 8} {
		s := Speedup(w, ex, th)
		if s < 0.85*float64(th) || s > 1.15*float64(th) {
			t.Errorf("within-socket speedup(%d) = %.2f, want ~linear", th, s)
		}
	}
}

// TestFig5VariantOrdering pins Fig. 5: each optimization layer helps,
// and the inter-socket channels are "the key optimization" once the run
// spans sockets.
func TestFig5VariantOrdering(t *testing.T) {
	ep := machine.EP()
	w := uniform(16e6, 8)
	rate := func(v Variant) float64 {
		return Simulate(w, Config{Model: ep, Threads: 8, Variant: v}).RatePerSec
	}
	simple, bm, dc, ch := rate(VariantSimple), rate(VariantBitmap), rate(VariantBitmapDC), rate(VariantChannels)
	if !(simple < bm && bm < dc && dc < ch) {
		t.Errorf("variant ordering violated: simple=%.0fM bitmap=%.0fM dc=%.0fM channels=%.0fM",
			simple/1e6, bm/1e6, dc/1e6, ch/1e6)
	}
	if ch/dc < 1.1 {
		t.Errorf("channels should be a clear win across sockets: %.2fx", ch/dc)
	}
}

func TestChannelsNoWinOnSingleSocket(t *testing.T) {
	// Within one socket the channel tier only adds overhead; the paper
	// disables channels for single-socket runs.
	ep := machine.EP()
	w := uniform(16e6, 8)
	dc := Simulate(w, Config{Model: ep, Threads: 4, Variant: VariantBitmapDC}).RatePerSec
	ch := Simulate(w, Config{Model: ep, Threads: 4, Variant: VariantChannels}).RatePerSec
	if ch > dc*1.05 {
		t.Errorf("channels should not beat plain bitmap+DC on one socket: %.0fM vs %.0fM", ch/1e6, dc/1e6)
	}
}

// TestTableIIIAnchors pins the three headline comparisons.
func TestTableIIIAnchors(t *testing.T) {
	ex := machine.EX()
	// (1) uniform 64 M vertices / 512 M edges: 2.4x a 128-proc Cray XMT
	// at 210 ME/s => ~500 ME/s.
	u := SimulateBest(uniform(64e6, 8), ex, 64).RatePerSec
	if ratio := u / 210e6; ratio < 1.8 || ratio > 3.6 {
		t.Errorf("uniform 64M/512M: %.0f ME/s = %.1fx XMT-128, paper reports 2.4x", u/1e6, ratio)
	}
	// (2) R-MAT 200 M vertices / 1 B edges: ~550 ME/s, comparable to a
	// 40-proc MTA-2 at 500 ME/s.
	r := SimulateBest(rmat(200e6, 5), ex, 64).RatePerSec
	if ratio := r / 500e6; ratio < 0.6 || ratio > 1.6 {
		t.Errorf("rmat 200M/1B: %.0f ME/s = %.1fx MTA-2/40, paper reports ~comparable", r/1e6, ratio)
	}
	// (3) degree-50 graph: ~5x 256 BlueGene/L processors at 232 ME/s.
	d50 := SimulateBest(uniform(64e6, 50), ex, 64).RatePerSec
	if ratio := d50 / 232e6; ratio < 3.5 || ratio > 8 {
		t.Errorf("d=50: %.0f ME/s = %.1fx BG/L-256, paper reports 5x", d50/1e6, ratio)
	}
}

// TestFig6cSizeSensitivity pins Fig. 6c: on the EP, the rate "only
// drops by a small factor when increasing the number of vertices" from
// 1 M to 32 M (larger random working sets).
func TestFig6cSizeSensitivity(t *testing.T) {
	ep := machine.EP()
	r1 := SimulateBest(uniform(1e6, 8), ep, 16).RatePerSec
	r32 := SimulateBest(uniform(32e6, 8), ep, 16).RatePerSec
	if r32 >= r1 {
		t.Error("rate should decline with vertex count on the EP")
	}
	if r1/r32 > 4 {
		t.Errorf("drop 1M->32M = %.1fx; paper shows a small factor", r1/r32)
	}
}

// TestFig8cEXLessSensitive pins Figs. 8c/9c: "the processing rate is
// not influenced by the number of vertices... due to a larger cache
// size on the Nehalem EX" — the EX declines less than the EP.
func TestFig8cEXLessSensitive(t *testing.T) {
	ep, ex := machine.EP(), machine.EX()
	epDrop := SimulateBest(uniform(1e6, 8), ep, 16).RatePerSec /
		SimulateBest(uniform(32e6, 8), ep, 16).RatePerSec
	exDrop := SimulateBest(uniform(1e6, 8), ex, 64).RatePerSec /
		SimulateBest(uniform(32e6, 8), ex, 64).RatePerSec
	if exDrop >= epDrop {
		t.Errorf("EX should be less size-sensitive than EP: EX drop %.2fx, EP drop %.2fx", exDrop, epDrop)
	}
}

// TestRMATFasterThanUniform pins the paper's observation that "R-MAT
// graphs have higher processing rates than uniformly random graphs".
func TestRMATFasterThanUniform(t *testing.T) {
	ex := machine.EX()
	u := SimulateBest(uniform(32e6, 16), ex, 64)
	r := SimulateBest(rmat(32e6, 16), ex, 64)
	if r.RatePerSec <= u.RatePerSec {
		t.Errorf("R-MAT rate %.0f ME/s not above uniform %.0f ME/s", r.RatePerSec/1e6, u.RatePerSec/1e6)
	}
}

func TestSimulateDegenerateInputs(t *testing.T) {
	ex := machine.EX()
	r := Simulate(uniform(1000, 4), Config{Model: ex, Threads: 0, Variant: VariantBitmapDC})
	if r.RatePerSec <= 0 || r.Levels == 0 {
		t.Errorf("degenerate run produced %+v", r)
	}
	r2 := Simulate(uniform(1000, 4), Config{Model: ex, Threads: 4, Variant: VariantChannels, BatchSize: -3})
	if r2.RatePerSec <= 0 {
		t.Errorf("negative batch size broke the simulation: %+v", r2)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	ex := machine.EX()
	w := uniform(32e6, 16)
	a := Simulate(w, Config{Model: ex, Threads: 64, Variant: VariantChannels})
	b := Simulate(w, Config{Model: ex, Threads: 64, Variant: VariantChannels})
	if a != b {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestBatchSizeSweepHasOptimum(t *testing.T) {
	// Tiny batches pay lock handoffs; the cost should drop steeply from
	// batch=1 and flatten out.
	ex := machine.EX()
	w := uniform(32e6, 16)
	r1 := Simulate(w, Config{Model: ex, Threads: 64, Variant: VariantChannels, BatchSize: 1}).RatePerSec
	r64 := Simulate(w, Config{Model: ex, Threads: 64, Variant: VariantChannels, BatchSize: 64}).RatePerSec
	if r64 <= r1 {
		t.Errorf("batching does not pay: batch1=%.0fM batch64=%.0fM", r1/1e6, r64/1e6)
	}
}
