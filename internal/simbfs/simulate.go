package simbfs

import (
	"fmt"

	"mcbfs/internal/machine"
)

// Variant selects which algorithm tier the simulator prices, matching
// the measured tiers of package core and the curves of the paper's
// Fig. 5.
type Variant int

const (
	// VariantSimple is Algorithm 1: no bitmap (random accesses hit the
	// 4-byte-per-vertex parent array), an atomic claim per scanned edge,
	// per-vertex locked queue operations.
	VariantSimple Variant = iota
	// VariantBitmap is Algorithm 2 without the double check: bitmap
	// working set, but still one atomic read-and-set per scanned edge.
	VariantBitmap
	// VariantBitmapDC is full Algorithm 2: plain probe first, atomic
	// only for apparently-unvisited targets.
	VariantBitmapDC
	// VariantChannels is Algorithm 3: per-socket partitions keep all
	// atomics socket-local; remote discoveries ride batched channels;
	// two barriers per level.
	VariantChannels
)

// String names the variant as in the Fig. 5 legend.
func (v Variant) String() string {
	switch v {
	case VariantSimple:
		return "simple"
	case VariantBitmap:
		return "bitmap"
	case VariantBitmapDC:
		return "bitmap+doublecheck"
	case VariantChannels:
		return "bitmap+doublecheck+channels"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config describes one simulated run.
type Config struct {
	// Model is the machine cost model (machine.EP(), machine.EX(), ...).
	Model machine.Model
	// Threads is the number of hardware threads used.
	Threads int
	// Variant is the algorithm tier.
	Variant Variant
	// BatchSize is the channel batch size (VariantChannels only);
	// 0 means 64.
	BatchSize int
}

// Result is the simulated outcome of one BFS run.
type Result struct {
	// Seconds is the simulated wall-clock time of the search.
	Seconds float64
	// Edges is m_a, the adjacency entries scanned.
	Edges float64
	// Levels is the number of BFS levels.
	Levels int
	// RatePerSec is Edges/Seconds, the paper's metric.
	RatePerSec float64
}

// smtYield is the marginal throughput of a second SMT thread relative
// to a full core. For the memory-bound BFS inner loop SMT mostly buys
// additional outstanding misses; Nehalem's measured aggregate in-flight
// occupancy (Section II: ~50 on EP = 4 cores x 10 + SMT, ~75 on EX)
// implies roughly a 40% yield.
const smtYield = 0.4

// vertexOverheadReads is the number of dependent random reads each
// frontier vertex costs outside its adjacency scan: the CSR offset
// lookup and the first (random) adjacency line. The chain is dependent
// — the offset must arrive before the list address is known — so unlike
// the bitmap probes it earns no memory-level parallelism; this is the
// dominant per-vertex cost and the reason the paper's rates grow
// strongly with average degree.
const vertexOverheadReads = 2

// streamEdgeNS is the amortized sequential-streaming cost per adjacency
// entry (4 bytes per edge, 16 entries per line, hardware prefetched).
const streamEdgeNS = 0.45

// lockedQueueOpNS is the per-vertex cost of the unbatched locked queue
// of Algorithm 1 (LockedEnqueue/LockedDequeue with a contended lock).
const lockedQueueOpNS = 45

// batchedQueueOpNS is the per-vertex cost of chunked/batched queue
// traffic in Algorithms 2-3.
const batchedQueueOpNS = 3

// collisionFactor inflates the discovered-vertex atomic count for
// claims that race and lose (multiple frontier vertices sharing a
// target in the same level).
const collisionFactor = 1.15

// tupleContentionNS is the additional per-tuple channel cost per extra
// socket in the run: more producer sockets mean more ticket-lock
// convoys and ring-stop hops on the consumer side. Calibrated so that a
// remote edge costs ~28 ns end-to-end on the 2-socket EP and ~45 ns on
// the 4-socket EX, the values the paper's measured rates imply.
const tupleContentionNS = 4

// invalidationNS is the extra cost a shared-bitmap probe pays when the
// line was invalidated by another socket's atomic since the last visit.
// Only the non-partitioned tiers (Algorithms 1-2 run across sockets)
// pay it; partitioning is exactly the paper's cure.
const invalidationNS = 25

// recvClaimNS is the receiving socket's per-tuple processing cost in
// phase 2 (dequeue from the local buffer, branch, bookkeeping) beyond
// the probe and atomic that are priced separately.
const recvClaimNS = 6

// effectiveThreads converts a hardware-thread count into compute
// throughput units, accounting for SMT sharing of the physical cores.
func effectiveThreads(m machine.Model, threads int) float64 {
	cores := m.Topo.TotalCores()
	if threads <= cores {
		return float64(threads)
	}
	return float64(cores) + smtYield*float64(threads-cores)
}

// Simulate prices a BFS of workload w under cfg and returns the
// simulated time and rate.
func Simulate(w Workload, cfg Config) Result {
	m := cfg.Model
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	sockets := m.Topo.SocketsForThreads(threads)

	// Working sets of the randomly-accessed structures. Algorithm 3
	// partitions bitmap and parents so each socket's threads touch only
	// a 1/sockets slice; the other tiers share the full arrays.
	bitmapWS := int64(w.N / 8)
	parentWS := int64(w.N * 4)
	offsetsWS := int64(w.N * 8)
	if cfg.Variant == VariantChannels {
		bitmapWS /= int64(sockets)
		parentWS /= int64(sockets)
	}

	// Probe cost: the paper's decisive working-set effect. Probes are
	// independent reads the software pipeline keeps in flight.
	probeTarget := bitmapWS
	if cfg.Variant == VariantSimple {
		probeTarget = parentWS // no bitmap: probes hit the parent array
	}
	probeNS := 1e9 / m.RandomReadRate(probeTarget, m.Topo.MaxOutstanding)
	// The per-vertex offset+first-line chain is dependent: no pipelining.
	vertexReadNS := m.RandomReadLatencyNS(offsetsWS)
	parentWriteNS := 1e9 / m.RandomReadRate(parentWS, 4) // RFO-limited, shallower pipeline

	// Cross-socket penalties for the non-partitioned tiers: a fraction
	// (s-1)/s of claims land on lines homed or recently invalidated by
	// another socket.
	remoteFrac := float64(sockets-1) / float64(sockets)
	atomicNS := m.AtomicLocalNS
	if cfg.Variant != VariantChannels && sockets > 1 {
		atomicNS = m.AtomicLocalNS*(1-remoteFrac) + m.AtomicRemoteNS*remoteFrac
		probeNS += remoteFrac * invalidationNS
		parentWriteNS *= 1 + 0.6*remoteFrac
		vertexReadNS *= 1 + 0.3*remoteFrac // read-only graph data interleaved across sockets
	}

	// End-to-end per-tuple cost of the inter-socket channel: batched
	// insert, consumer-side dequeue, plus lock/ring contention growing
	// with the socket count.
	tupleNS := m.ChannelBatchNS(batch, batch)/float64(batch) +
		recvClaimNS + tupleContentionNS*float64(sockets-1)

	eff := effectiveThreads(m, threads)

	levels := w.Levels()
	var total float64 // nanoseconds
	var edges float64
	probeBonus := 1.0
	if w.Kind == RMAT {
		// High-degree hubs concentrate probes on a few hot cache lines;
		// the paper measures R-MAT rates above uniform ones.
		probeBonus = 0.75
	}

	for _, l := range levels {
		edges += l.Edges

		localEdges := l.Edges
		remoteEdges := 0.0
		if cfg.Variant == VariantChannels {
			remoteEdges = l.Edges * remoteFrac
			localEdges = l.Edges - remoteEdges
		}

		// Probes: local scans probe directly; channel tuples are probed
		// by the owning socket in phase 2.
		probes := l.Edges
		atomics := l.Discovered * collisionFactor
		if cfg.Variant == VariantSimple || cfg.Variant == VariantBitmap {
			atomics = l.Edges
		}
		_ = localEdges

		var work float64 // aggregate thread-nanoseconds for the level
		work += l.Edges * streamEdgeNS
		work += l.Frontier * float64(vertexOverheadReads) * vertexReadNS
		work += probes * probeNS * probeBonus
		work += atomics * atomicNS
		work += l.Discovered * parentWriteNS

		queueNS := float64(batchedQueueOpNS)
		if cfg.Variant == VariantSimple {
			queueNS = lockedQueueOpNS
		}
		work += (l.Frontier + l.Discovered) * queueNS

		barriers := 1.0
		if cfg.Variant == VariantChannels {
			barriers = 2.0
			work += remoteEdges * tupleNS
		}

		// Load balance: a level with fewer frontier vertices than
		// threads cannot use them all for the scan phase.
		activeEff := eff
		if l.Frontier < float64(threads) {
			frac := (l.Frontier + 1) / float64(threads)
			activeEff = eff * frac
			if activeEff < 1 {
				activeEff = 1
			}
		}

		levelNS := work/activeEff + barriers*m.BarrierNS(threads)
		total += levelNS
	}

	sec := total / 1e9
	res := Result{Seconds: sec, Edges: edges, Levels: len(levels)}
	if sec > 0 {
		res.RatePerSec = edges / sec
	}
	return res
}

// Speedup returns rate(threads)/rate(1 thread) for the same workload,
// using the best algorithm tier at each point as the paper does
// ("the best performing algorithm for each thread configuration"):
// single-socket runs disable the channels.
func Speedup(w Workload, m machine.Model, threads int) float64 {
	base := Simulate(w, Config{Model: m, Threads: 1, Variant: VariantBitmapDC})
	best := SimulateBest(w, m, threads)
	if base.RatePerSec == 0 {
		return 0
	}
	return best.RatePerSec / base.RatePerSec
}

// SimulateBest runs the tier the paper would pick for the thread count:
// bitmap+doublecheck within a socket, channels beyond.
func SimulateBest(w Workload, m machine.Model, threads int) Result {
	v := VariantBitmapDC
	if m.Topo.SocketsForThreads(threads) > 1 {
		v = VariantChannels
	}
	return Simulate(w, Config{Model: m, Threads: threads, Variant: v})
}
