package simbfs

import (
	"testing"

	"mcbfs/internal/machine"
)

func clusterCfg(nodes int, net Network) ClusterConfig {
	return ClusterConfig{
		Node:           machine.EX(),
		ThreadsPerNode: 64,
		Nodes:          nodes,
		Net:            net,
		BatchSize:      4096,
	}
}

func TestClusterSingleNodeMatchesSharedMemoryScale(t *testing.T) {
	// One node, no network: the projection should land in the same
	// ballpark as the shared-memory simulator (same cost components,
	// coarser composition).
	w := uniform(32e6, 16)
	c, err := SimulateCluster(w, clusterCfg(1, InfiniBandQDR))
	if err != nil {
		t.Fatal(err)
	}
	s := SimulateBest(w, machine.EX(), 64)
	ratio := c.RatePerSec / s.RatePerSec
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("single-node cluster rate %.0f ME/s vs shared-memory %.0f ME/s (ratio %.2f)",
			c.RatePerSec/1e6, s.RatePerSec/1e6, ratio)
	}
	if c.CommFraction != 0 {
		t.Errorf("single node should spend nothing on the network, got %.2f", c.CommFraction)
	}
}

func TestClusterScalesThenSaturates(t *testing.T) {
	// The projection must show the Section V story: more nodes help on
	// a fast network, but the communication share grows with the
	// (p-1)/p remote fraction.
	w := uniform(128e6, 16)
	var prevRate float64
	var comm4, comm16 float64
	for _, p := range []int{1, 4, 16} {
		c, err := SimulateCluster(w, clusterCfg(p, InfiniBandQDR))
		if err != nil {
			t.Fatal(err)
		}
		if p > 1 && c.RatePerSec <= prevRate {
			t.Errorf("no scaling from more nodes at p=%d: %.0f -> %.0f ME/s",
				p, prevRate/1e6, c.RatePerSec/1e6)
		}
		prevRate = c.RatePerSec
		if p == 4 {
			comm4 = c.CommFraction
		}
		if p == 16 {
			comm16 = c.CommFraction
		}
	}
	if comm16 <= comm4 {
		t.Errorf("communication share should grow with nodes: p=4 %.2f, p=16 %.2f", comm4, comm16)
	}
}

func TestClusterFastNetworkBeatsSlow(t *testing.T) {
	// The paper's call for "low-latency communication networks": at the
	// same node count, IB beats 10GigE.
	w := uniform(128e6, 16)
	ib, err := SimulateCluster(w, clusterCfg(8, InfiniBandQDR))
	if err != nil {
		t.Fatal(err)
	}
	eth, err := SimulateCluster(w, clusterCfg(8, TenGigE))
	if err != nil {
		t.Fatal(err)
	}
	if ib.RatePerSec <= eth.RatePerSec {
		t.Errorf("InfiniBand (%.0f ME/s) should beat 10GigE (%.0f ME/s)",
			ib.RatePerSec/1e6, eth.RatePerSec/1e6)
	}
	if eth.CommFraction <= ib.CommFraction {
		t.Error("slower network should spend a larger share communicating")
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	if _, err := SimulateCluster(uniform(1e6, 8), clusterCfg(0, InfiniBandQDR)); err == nil {
		t.Error("0 nodes accepted")
	}
}

func TestClusterDefaultsThreads(t *testing.T) {
	cfg := clusterCfg(2, InfiniBandQDR)
	cfg.ThreadsPerNode = 0 // should default to the node's full threads
	c, err := SimulateCluster(uniform(16e6, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.RatePerSec <= 0 {
		t.Error("no rate with defaulted threads")
	}
}

func TestClusterDeterministic(t *testing.T) {
	w := uniform(64e6, 16)
	a, _ := SimulateCluster(w, clusterCfg(8, InfiniBandQDR))
	b, _ := SimulateCluster(w, clusterCfg(8, InfiniBandQDR))
	if a != b {
		t.Errorf("projection not deterministic: %+v vs %+v", a, b)
	}
}
