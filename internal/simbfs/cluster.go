package simbfs

import (
	"fmt"

	"mcbfs/internal/machine"
)

// Cluster projection: the paper's Section V proposes mapping the
// exploration onto distributed-memory machines built from nodes like
// the ones evaluated, joined by "high-performance, low-latency
// communication networks". Package dist implements that algorithm over
// in-process nodes; this file prices it at scale, composing the
// per-node machine model with a simple network model, so the projected
// scaling curve — and the point where the network, not the socket,
// becomes the wall — can be examined at paper-era parameters.

// Network models the interconnect between cluster nodes.
type Network struct {
	// LatencyUS is the one-way small-message latency in microseconds
	// (PGAS-era InfiniBand QDR: ~1.5 us).
	LatencyUS float64
	// BandwidthGBs is the per-node injection bandwidth in GB/s
	// (IB QDR: ~3.2 GB/s effective).
	BandwidthGBs float64
}

// InfiniBandQDR is a 2010-era low-latency cluster interconnect, the
// class of network the paper's conclusion targets.
var InfiniBandQDR = Network{LatencyUS: 1.5, BandwidthGBs: 3.2}

// TenGigE is the commodity alternative: an order of magnitude more
// latency.
var TenGigE = Network{LatencyUS: 15, BandwidthGBs: 1.1}

// ClusterConfig describes one projected cluster run.
type ClusterConfig struct {
	// Node is the per-node machine model.
	Node machine.Model
	// ThreadsPerNode is the hardware threads used per node.
	ThreadsPerNode int
	// Nodes is the node count.
	Nodes int
	// Net is the interconnect model.
	Net Network
	// BatchSize is the message aggregation unit in tuples; 0 means one
	// message per destination per level (pure level aggregation).
	BatchSize int
}

// ClusterResult is the projected outcome.
type ClusterResult struct {
	// Seconds is the projected BFS time.
	Seconds float64
	// RatePerSec is m_a / Seconds.
	RatePerSec float64
	// CommFraction is the share of time spent in the exchange phase.
	CommFraction float64
	// Levels is the BFS depth.
	Levels int
}

// SimulateCluster prices a distributed BFS of workload w on the
// cluster: each level costs the slowest node's local expansion (the
// intra-node costs follow SimulateBest's channel tier) plus the
// all-to-all exchange of remote tuples (alpha-beta network model with
// per-destination aggregation), plus a log-depth allreduce for
// termination.
func SimulateCluster(w Workload, cfg ClusterConfig) (ClusterResult, error) {
	p := cfg.Nodes
	if p < 1 {
		return ClusterResult{}, fmt.Errorf("simbfs: node count %d must be >= 1", p)
	}
	threads := cfg.ThreadsPerNode
	if threads < 1 {
		threads = cfg.Node.Topo.TotalThreads()
	}
	batch := cfg.BatchSize

	// Local work: each node runs the multi-socket algorithm over its
	// 1/p slice of every level. Approximate by pricing the whole-level
	// compute at one node's throughput over a 1/p workload share, with
	// the remote fraction of *cluster* edges handled by the network
	// instead of the inter-socket channels.
	remoteFrac := float64(p-1) / float64(p)

	levels := w.Levels()
	var totalNS, commNS, edges float64
	for _, l := range levels {
		edges += l.Edges

		// Per-node shares of the level.
		nodeEdges := l.Edges / float64(p)
		nodeFrontier := l.Frontier / float64(p)
		nodeDiscovered := l.Discovered / float64(p)

		// Intra-node compute priced with the same components as the
		// shared-memory simulator's channel tier, on the node's slice.
		nodeW := Workload{Kind: w.Kind, N: w.N / float64(p), Degree: w.Degree}
		perEdge := perEdgeNS(nodeW, cfg.Node, threads)
		perVertex := perVertexNS(nodeW, cfg.Node)
		compute := nodeEdges*perEdge + (nodeFrontier+nodeDiscovered)*perVertex
		eff := effectiveThreads(cfg.Node, threads)
		if nodeFrontier+1 < float64(threads) {
			frac := (nodeFrontier + 1) / float64(threads)
			if e := eff * frac; e >= 1 {
				eff = e
			} else {
				eff = 1
			}
		}
		computeNS := compute / eff

		// Exchange: each node sends remoteFrac of its scanned edges as
		// 8-byte tuples, aggregated per destination. alpha-beta: each
		// message costs latency; the payload is bandwidth-bound on the
		// injection port.
		tuplesOut := nodeEdges * remoteFrac
		bytesOut := tuplesOut * 8
		msgs := float64(p - 1) // one aggregate per destination per level
		if batch > 0 && tuplesOut > 0 {
			perDest := tuplesOut / float64(p-1)
			if extra := perDest / float64(batch); extra > 1 {
				msgs = float64(p-1) * extra
			}
		}
		netNS := msgs*cfg.Net.LatencyUS*1e3 + bytesOut/cfg.Net.BandwidthGBs
		// Termination allreduce: log2(p) latency hops.
		allreduceNS := log2ceil(p) * cfg.Net.LatencyUS * 1e3

		levelNS := computeNS + netNS + allreduceNS + cfg.Node.BarrierNS(threads)
		totalNS += levelNS
		commNS += netNS + allreduceNS
	}

	res := ClusterResult{
		Seconds: totalNS / 1e9,
		Levels:  len(levels),
	}
	if res.Seconds > 0 {
		res.RatePerSec = edges / res.Seconds
		res.CommFraction = commNS / totalNS
	}
	return res, nil
}

// perEdgeNS and perVertexNS expose the shared-memory simulator's cost
// split for reuse by the cluster projection.
func perEdgeNS(w Workload, m machine.Model, threads int) float64 {
	sockets := m.Topo.SocketsForThreads(threads)
	bitmapWS := int64(w.N / 8 / float64(sockets))
	probeNS := 1e9 / m.RandomReadRate(bitmapWS, m.Topo.MaxOutstanding)
	sockRemote := float64(sockets-1) / float64(sockets)
	tupleNS := m.ChannelBatchNS(64, 64)/64 + recvClaimNS + tupleContentionNS*float64(sockets-1)
	return streamEdgeNS + probeNS + sockRemote*tupleNS
}

func perVertexNS(w Workload, m machine.Model) float64 {
	offsetsWS := int64(w.N * 8)
	vertexReadNS := m.RandomReadLatencyNS(offsetsWS)
	return float64(vertexOverheadReads)*vertexReadNS + m.AtomicLocalNS + batchedQueueOpNS
}

func log2ceil(p int) float64 {
	c := 0.0
	for v := 1; v < p; v *= 2 {
		c++
	}
	return c
}
