// Package simbfs reproduces the paper's evaluation figures at paper
// scale (up to 200 M vertices and 1 B edges) by simulating the BFS
// algorithms on the machine model of package machine.
//
// The host cannot hold the paper's graphs (256 GB testbed) nor exhibit
// 4-socket scaling, so the simulator works with *expected* per-level
// workloads rather than materialized graphs: the frontier of a BFS on a
// random graph follows a well-characterized branching recurrence, and
// every cost the algorithms pay — bitmap probes, atomic claims, parent
// writes, queue traffic, channel batches, barriers — is an explicit
// function of those per-level quantities and the memory model. The
// result is a deterministic, closed-form reproduction of the shape of
// Figs. 5-10: who wins, by what factor, and where the slopes change.
package simbfs

import (
	"fmt"
	"math"
)

// GraphKind selects the workload family of the paper's evaluation.
type GraphKind int

const (
	// Uniform is the paper's "uniformly random" family: n vertices of
	// out-degree d with uniformly chosen neighbours.
	Uniform GraphKind = iota
	// RMAT is the GTgraph R-MAT scale-free family: a few very high
	// degree vertices, many low-degree ones, and a sizeable fraction of
	// vertices unreachable from a random root.
	RMAT
)

// String names the kind.
func (k GraphKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case RMAT:
		return "rmat"
	default:
		return fmt.Sprintf("GraphKind(%d)", int(k))
	}
}

// Workload describes one synthetic graph at paper scale.
type Workload struct {
	Kind GraphKind
	// N is the vertex count.
	N float64
	// Degree is the average out-degree (edges = N * Degree).
	Degree float64
}

// LevelLoad is the expected work of one BFS level.
type LevelLoad struct {
	// Frontier is the number of vertices expanded.
	Frontier float64
	// Edges is the number of adjacency entries scanned.
	Edges float64
	// Discovered is the number of vertices newly claimed.
	Discovered float64
}

// reachableFraction estimates how much of the graph a BFS from a random
// root covers. A uniform directed random graph with degree d >= 2 has a
// giant strongly-connected component covering most vertices; R-MAT
// graphs leave a sizeable fraction of vertices isolated or unreachable
// (the paper observes ma up to 2% below m on uniform graphs and uses
// R-MAT graphs with many low-degree vertices).
func (w Workload) reachableFraction() float64 {
	switch w.Kind {
	case RMAT:
		// Empirically, GTgraph R-MAT at the paper's densities reaches
		// roughly half to three quarters of vertices; the skew grows
		// with sparsity.
		f := 0.75 - 1.2/w.Degree
		if f < 0.3 {
			f = 0.3
		}
		return f
	default:
		if w.Degree < 1 {
			return w.Degree * 0.5
		}
		// Survival probability of a Galton-Watson process with Poisson(d)
		// offspring: 1 - q where q = exp(d(q-1)).
		q := 0.0001
		for i := 0; i < 64; i++ {
			q = math.Exp(w.Degree * (q - 1))
		}
		return 1 - q
	}
}

// Levels returns the expected per-level workload of a BFS from a random
// root, following the standard branching recurrence on a random graph:
// a frontier of F vertices scans F*d edges whose targets are uniform
// over the reachable set, discovering (R - reached)*(1 - exp(-F*d/R))
// new vertices.
func (w Workload) Levels() []LevelLoad {
	reach := w.reachableFraction() * w.N
	if reach < 1 {
		reach = 1
	}
	var levels []LevelLoad
	frontier := 1.0
	reached := 1.0
	for frontier >= 0.5 && len(levels) < 200 {
		edges := frontier * w.Degree
		remaining := reach - reached
		if remaining < 0 {
			remaining = 0
		}
		discovered := remaining * (1 - math.Exp(-edges/reach))
		levels = append(levels, LevelLoad{
			Frontier:   frontier,
			Edges:      edges,
			Discovered: discovered,
		})
		reached += discovered
		frontier = discovered
	}
	return levels
}

// TotalEdges returns the paper's m_a for the workload: the adjacency
// entries scanned over the whole search.
func (w Workload) TotalEdges() float64 {
	total := 0.0
	for _, l := range w.Levels() {
		total += l.Edges
	}
	return total
}
