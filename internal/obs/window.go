package obs

import (
	"sync/atomic"
	"time"
)

// windowSlots is the ring length of a SlidingCounter: one slot per
// second, enough to answer 60-second windows with slack for slot reuse.
const windowSlots = 64

// SlidingCounter is a lock-free sliding-window event counter with
// one-second resolution: Add lands events in the current second's slot,
// Rate sums the trailing window. The zero value is ready to use.
//
// Writers are wait-free (one atomic load + add, plus a CAS when the
// slot rolls to a new second); a burst racing the roll can miscount a
// handful of events at a second boundary, which is acceptable for the
// monitoring rates this backs.
type SlidingCounter struct {
	slots [windowSlots]windowSlot
	// nowNanos overrides the clock in tests; nil means time.Now.
	nowNanos func() int64
}

// windowSlot is one second's tally, padded to keep concurrent writers
// of adjacent seconds off a shared cache line.
type windowSlot struct {
	sec   atomic.Int64
	count atomic.Int64
	_     [48]byte
}

func (c *SlidingCounter) unix() int64 {
	if c.nowNanos != nil {
		return c.nowNanos() / int64(time.Second)
	}
	return time.Now().Unix()
}

// Add records n events at the current time.
func (c *SlidingCounter) Add(n int64) {
	sec := c.unix()
	s := &c.slots[sec%windowSlots]
	if old := s.sec.Load(); old != sec {
		if s.sec.CompareAndSwap(old, sec) {
			s.count.Store(0)
		}
	}
	s.count.Add(n)
}

// Total returns the number of events in the trailing window, including
// the current (partial) second. Windows are clamped to one second at
// least and the ring length minus slack at most.
func (c *SlidingCounter) Total(window time.Duration) int64 {
	w := int64(window / time.Second)
	if w < 1 {
		w = 1
	}
	if w > windowSlots-2 {
		w = windowSlots - 2
	}
	now := c.unix()
	var total int64
	for sec := now - w + 1; sec <= now; sec++ {
		s := &c.slots[sec%windowSlots]
		if s.sec.Load() == sec {
			total += s.count.Load()
		}
	}
	return total
}

// Rate returns events per second over the trailing window.
func (c *SlidingCounter) Rate(window time.Duration) float64 {
	w := window / time.Second
	if w < 1 {
		w = 1
	}
	if w > windowSlots-2 {
		w = windowSlots - 2
	}
	return float64(c.Total(window)) / float64(w)
}
