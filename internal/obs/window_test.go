package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a SlidingCounter deterministically.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

func TestSlidingCounterWindows(t *testing.T) {
	clk := &fakeClock{ns: int64(1000 * time.Second)}
	var c SlidingCounter
	c.nowNanos = clk.now

	// 5 events/sec for 20 seconds, ending in the current second (the
	// window includes the current partial second).
	for s := 0; s < 20; s++ {
		clk.advance(time.Second)
		c.Add(5)
	}
	if got := c.Total(10 * time.Second); got != 50 {
		t.Errorf("Total(10s) = %d, want 50", got)
	}
	if got := c.Rate(10 * time.Second); got != 5 {
		t.Errorf("Rate(10s) = %g, want 5", got)
	}
	if got := c.Total(60 * time.Second); got != 100 {
		t.Errorf("Total(60s) = %d, want all 100", got)
	}
	// After a quiet minute the windows drain to zero.
	clk.advance(61 * time.Second)
	if got := c.Total(60 * time.Second); got != 0 {
		t.Errorf("Total(60s) after idle = %d, want 0", got)
	}
}

func TestSlidingCounterSlotReuse(t *testing.T) {
	clk := &fakeClock{ns: int64(5000 * time.Second)}
	var c SlidingCounter
	c.nowNanos = clk.now
	c.Add(7)
	// windowSlots seconds later the same slot is reused for a new
	// second; the stale count must not leak into the new window.
	clk.advance(windowSlots * time.Second)
	c.Add(1)
	if got := c.Total(time.Second); got != 1 {
		t.Errorf("Total(1s) after slot reuse = %d, want 1", got)
	}
}

func TestSlidingCounterConcurrent(t *testing.T) {
	var c SlidingCounter
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	// All adds land within the last few seconds; boundary races may drop
	// a handful, so assert the window holds nearly everything.
	got := c.Total(10 * time.Second)
	if got < goroutines*perG*9/10 {
		t.Errorf("Total(10s) = %d, want >= %d", got, goroutines*perG*9/10)
	}
}

func TestSlidingCounterZeroAlloc(t *testing.T) {
	var c SlidingCounter
	if allocs := testing.AllocsPerRun(100, func() { c.Add(1) }); allocs != 0 {
		t.Errorf("Add allocates %.1f/op, want 0", allocs)
	}
}
