// Package obs is the observability layer of the BFS engine: per-worker,
// per-level phase timers and counters deposited in cache-line-padded
// worker slots, folded at the level barrier into a structured trace, a
// pluggable Tracer hook interface, and live metrics publishable via
// expvar.
//
// The design rule is the one the hot loop lives by: workers never share
// a cache line and never execute an atomic operation on behalf of
// observability. Each worker writes only its own padded slot; the
// elected barrier coordinator folds all slots in the window between the
// two level barriers, when no worker is writing. Phase slots are
// double-buffered by level parity so the fold of level L can overlap
// the first writes of level L+1 without a race.
//
// When tracing is disabled the collector is a nil pointer and every
// recording method is a nil-receiver no-op, so the only cost on the hot
// path is a handful of predictable nil-checks per level — no atomics,
// no allocation, no time.Now calls.
package obs

import (
	"time"
	"unsafe"
)

// Phase labels one portion of a worker's time within a BFS level.
type Phase uint8

const (
	// PhaseLocalScan is top-down expansion of the worker's share of the
	// current frontier (paper Algorithm 3 phase 1, or the whole level in
	// the single-socket tiers).
	PhaseLocalScan Phase = iota
	// PhaseQueueDrain is draining the socket's inter-socket channel
	// (paper Algorithm 3 phase 2).
	PhaseQueueDrain
	// PhaseBarrierWait is time parked at level barriers waiting for
	// stragglers — the load-imbalance signal.
	PhaseBarrierWait
	// PhaseFrontierBuild is constructing the frontier bitmap before a
	// bottom-up sweep (direction-optimizing tier only).
	PhaseFrontierBuild
	// PhaseBottomUpScan is the bottom-up sweep over unvisited vertices
	// (direction-optimizing tier only).
	PhaseBottomUpScan
	// NumPhases bounds the Phase enum; LevelBreakdown.Phases is indexed
	// by Phase.
	NumPhases
)

// String returns the phase name used in Chrome traces and tables.
func (p Phase) String() string {
	switch p {
	case PhaseLocalScan:
		return "local-scan"
	case PhaseQueueDrain:
		return "queue-drain"
	case PhaseBarrierWait:
		return "barrier-wait"
	case PhaseFrontierBuild:
		return "frontier-build"
	case PhaseBottomUpScan:
		return "bottom-up-scan"
	default:
		return "phase?"
	}
}

// Span is one contiguous stretch of a worker's timeline. Start is the
// offset from the start of the run.
type Span struct {
	Level int
	Phase Phase
	Start time.Duration
	Dur   time.Duration
}

// Counters are the per-level tallies shared with core.LevelStats.
type Counters struct {
	Frontier    int64
	Edges       int64
	BitmapReads int64
	AtomicOps   int64
	RemoteSends int64
	// MaxWorkerEdges is the largest single worker's share of Edges —
	// the numerator of the level's load-imbalance factor
	// (MaxWorkerEdges · workers / Edges; 1.0 is perfect balance).
	MaxWorkerEdges int64
	// Steals counts chunks claimed from sibling socket queues by
	// early-finishing workers (multi-socket tier, edge budgeting on).
	Steals int64
}

// LevelBreakdown is one level's folded observability record: the
// counter totals plus per-phase worker-time sums (a phase entry is the
// sum over all workers, so it can exceed Duration on multi-worker
// runs).
type LevelBreakdown struct {
	Level int
	// Workers is the number of workers that ran the level — the
	// denominator that turns MaxWorkerEdges into an imbalance factor
	// (stamped by EndLevel, so breakdowns detached from their Trace,
	// e.g. in the flight recorder, remain self-contained).
	Workers int
	// Start is the level's offset from the start of the run; Duration
	// its wall-clock time as stamped by the level coordinator.
	Start    time.Duration
	Duration time.Duration
	Counters
	// RemoteBatches and RemoteTuples count inter-socket channel flushes
	// issued by workers during the level.
	RemoteBatches int64
	RemoteTuples  int64
	// Phases[p] is the total worker time spent in phase p.
	Phases [NumPhases]time.Duration
}

// Imbalance returns the level's edge-load imbalance factor: the
// straggler's edge share (MaxWorkerEdges) over the mean per-worker
// share (Edges/Workers). 1.0 is perfect balance; Workers is an upper
// bound (one worker scanned everything). Zero when the level carries no
// edges or the breakdown predates imbalance tracking.
func (b *LevelBreakdown) Imbalance() float64 {
	if b.Edges <= 0 || b.Workers <= 0 {
		return 0
	}
	return float64(b.MaxWorkerEdges) * float64(b.Workers) / float64(b.Edges)
}

// ChannelSample is one level's view of one inter-socket channel.
type ChannelSample struct {
	Level  int
	Socket int
	// Tuples and Batches are the tuples and SendBatch flushes that
	// crossed the channel during the level.
	Tuples  int64
	Batches int64
	// MaxLen is the channel's occupancy high-water mark during the
	// level; MaxBatch the largest single flush.
	MaxLen   int
	MaxBatch int
}

// Tracer receives observability callbacks from a BFS run. Methods are
// invoked from worker goroutines concurrently (OnRemoteBatch,
// OnBarrierWait) and from the level coordinator (OnLevelStart,
// OnLevelEnd); implementations must be safe for concurrent use. A nil
// Tracer disables the hooks at zero cost.
type Tracer interface {
	// OnLevelStart fires when a level begins (level 0 fires as the run
	// starts).
	OnLevelStart(level int)
	// OnLevelEnd fires at the level barrier with the folded breakdown.
	OnLevelEnd(level int, b LevelBreakdown)
	// OnRemoteBatch fires when worker flushes a batch of tuples into
	// the channel of socket toSocket.
	OnRemoteBatch(level, worker, toSocket, tuples int)
	// OnBarrierWait fires after worker has waited wait at a level
	// barrier.
	OnBarrierWait(level, worker int, wait time.Duration)
}

// TracerFuncs adapts plain functions to the Tracer interface; nil
// fields are skipped.
type TracerFuncs struct {
	LevelStart  func(level int)
	LevelEnd    func(level int, b LevelBreakdown)
	RemoteBatch func(level, worker, toSocket, tuples int)
	BarrierWait func(level, worker int, wait time.Duration)
}

func (t TracerFuncs) OnLevelStart(level int) {
	if t.LevelStart != nil {
		t.LevelStart(level)
	}
}

func (t TracerFuncs) OnLevelEnd(level int, b LevelBreakdown) {
	if t.LevelEnd != nil {
		t.LevelEnd(level, b)
	}
}

func (t TracerFuncs) OnRemoteBatch(level, worker, toSocket, tuples int) {
	if t.RemoteBatch != nil {
		t.RemoteBatch(level, worker, toSocket, tuples)
	}
}

func (t TracerFuncs) OnBarrierWait(level, worker int, wait time.Duration) {
	if t.BarrierWait != nil {
		t.BarrierWait(level, worker, wait)
	}
}

const cacheLine = 64

// workerState is the unpadded per-worker recording state. Phase and
// remote tallies are double-buffered by level parity: workers write
// buffer L&1 during level L, the coordinator folds buffer L&1 at the
// level's closing barrier while workers may already be writing buffer
// (L+1)&1. The collector's configuration is copied in (rather than
// held by pointer) so the pad below is not a recursive size.
type workerState struct {
	tracer        Tracer
	traceOn       bool
	origin        time.Time
	w             int
	level         int
	phases        [2][NumPhases]time.Duration
	remoteBatches [2]int64
	remoteTuples  [2]int64
	spans         []Span
}

// WorkerRec records one worker's phases. All methods are no-ops on a
// nil receiver, so the hot path carries only the nil-check.
type WorkerRec struct {
	workerState
	_ [(cacheLine - unsafe.Sizeof(workerState{})%cacheLine) % cacheLine]byte
}

// PhaseStart stamps the beginning of a phase. On a nil receiver it
// returns the zero time without touching the clock.
func (r *WorkerRec) PhaseStart() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// PhaseEnd closes a phase opened with PhaseStart, crediting its
// duration to the worker's current-level slot, appending a timeline
// span when full tracing is on, and firing the OnBarrierWait hook for
// barrier phases.
func (r *WorkerRec) PhaseEnd(p Phase, start time.Time) {
	if r == nil {
		return
	}
	d := time.Since(start)
	r.phases[r.level&1][p] += d
	if r.traceOn {
		r.spans = append(r.spans, Span{Level: r.level, Phase: p, Start: start.Sub(r.origin), Dur: d})
	}
	if p == PhaseBarrierWait && r.tracer != nil {
		r.tracer.OnBarrierWait(r.level, r.w, d)
	}
}

// RemoteBatch records a flush of tuples into socket toSocket's channel
// and fires the OnRemoteBatch hook.
func (r *WorkerRec) RemoteBatch(toSocket, tuples int) {
	if r == nil || tuples == 0 {
		return
	}
	par := r.level & 1
	r.remoteBatches[par]++
	r.remoteTuples[par] += int64(tuples)
	if r.tracer != nil {
		r.tracer.OnRemoteBatch(r.level, r.w, toSocket, tuples)
	}
}

// NextLevel advances the worker's level counter. Call it after the
// level's closing barrier, once all of the level's phases are recorded.
func (r *WorkerRec) NextLevel() {
	if r == nil {
		return
	}
	r.level++
}

// Config configures a Collector.
type Config struct {
	// Workers is the number of worker goroutines.
	Workers int
	// Sockets is the number of logical sockets (for channel tracks).
	Sockets int
	// Algorithm names the BFS tier, for trace metadata.
	Algorithm string
	// Trace retains the full structured trace (timelines, level
	// breakdowns, channel samples) for Finish to return.
	Trace bool
	// Tracer receives callbacks; may be nil.
	Tracer Tracer
}

// Collector coordinates per-worker recording for one BFS run. A nil
// *Collector is valid and disables everything.
type Collector struct {
	origin  time.Time
	tracer  Tracer
	trace   *Trace
	workers []WorkerRec
	level   int
}

// NewCollector builds a collector for one run and stamps the run
// origin; construct it immediately before the search starts. It fires
// OnLevelStart(0).
func NewCollector(cfg Config) *Collector {
	c := &Collector{
		origin:  time.Now(),
		tracer:  cfg.Tracer,
		workers: make([]WorkerRec, cfg.Workers),
	}
	if cfg.Trace {
		c.trace = &Trace{
			Workers:   cfg.Workers,
			Sockets:   cfg.Sockets,
			Algorithm: cfg.Algorithm,
		}
	}
	for i := range c.workers {
		ws := &c.workers[i].workerState
		ws.tracer = c.tracer
		ws.traceOn = c.trace != nil
		ws.origin = c.origin
		ws.w = i
	}
	if c.tracer != nil {
		c.tracer.OnLevelStart(0)
	}
	return c
}

// Reset re-arms a pooled collector for a new run with the same worker
// count, reusing the per-worker padded slots (and each worker's span
// backing array) so a warm telemetry-enabled search allocates nothing
// here. It returns false — leaving the collector untouched — when the
// requested shape differs, in which case the caller builds a fresh
// collector with NewCollector. Like NewCollector it stamps the run
// origin and fires OnLevelStart(0), so call it immediately before the
// search starts.
func (c *Collector) Reset(cfg Config) bool {
	if c == nil || len(c.workers) != cfg.Workers {
		return false
	}
	c.origin = time.Now()
	c.tracer = cfg.Tracer
	c.level = 0
	c.trace = nil
	if cfg.Trace {
		c.trace = &Trace{
			Workers:   cfg.Workers,
			Sockets:   cfg.Sockets,
			Algorithm: cfg.Algorithm,
		}
	}
	for i := range c.workers {
		ws := &c.workers[i].workerState
		spans := ws.spans[:0]
		*ws = workerState{
			tracer:  c.tracer,
			traceOn: c.trace != nil,
			origin:  c.origin,
			w:       i,
			spans:   spans,
		}
	}
	if c.tracer != nil {
		c.tracer.OnLevelStart(0)
	}
	return true
}

// Origin returns the run's time origin (span offsets are relative to
// it). Zero on a nil receiver.
func (c *Collector) Origin() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.origin
}

// Worker returns worker w's recorder, or nil on a nil collector.
func (c *Collector) Worker(w int) *WorkerRec {
	if c == nil {
		return nil
	}
	return &c.workers[w]
}

// AddChannelSample appends one channel's per-level sample for the level
// currently being folded. Call it from the closing-barrier coordinator,
// before EndLevel.
func (c *Collector) AddChannelSample(socket int, tuples, batches int64, maxLen, maxBatch int) {
	if c == nil || c.trace == nil {
		return
	}
	c.trace.Channels = append(c.trace.Channels, ChannelSample{
		Level:    c.level,
		Socket:   socket,
		Tuples:   tuples,
		Batches:  batches,
		MaxLen:   maxLen,
		MaxBatch: maxBatch,
	})
}

// EndLevel folds every worker's current-parity phase slots into one
// LevelBreakdown, clears them for reuse two levels later, appends the
// breakdown to the trace, and fires OnLevelEnd (and OnLevelStart for
// the next level when more is true).
//
// It must be called from the coordinator elected at the level's closing
// barrier — the window in which every worker has finished writing the
// level's slots and is at most writing the other parity.
func (c *Collector) EndLevel(start, dur time.Duration, ct Counters, more bool) {
	if c == nil {
		return
	}
	par := c.level & 1
	b := LevelBreakdown{Level: c.level, Workers: len(c.workers), Start: start, Duration: dur, Counters: ct}
	for i := range c.workers {
		ws := &c.workers[i].workerState
		for p := Phase(0); p < NumPhases; p++ {
			b.Phases[p] += ws.phases[par][p]
			ws.phases[par][p] = 0
		}
		b.RemoteBatches += ws.remoteBatches[par]
		b.RemoteTuples += ws.remoteTuples[par]
		ws.remoteBatches[par] = 0
		ws.remoteTuples[par] = 0
	}
	if c.trace != nil {
		c.trace.Levels = append(c.trace.Levels, b)
	}
	if c.tracer != nil {
		c.tracer.OnLevelEnd(c.level, b)
	}
	c.level++
	if more && c.tracer != nil {
		c.tracer.OnLevelStart(c.level)
	}
}

// Finish assembles and returns the structured trace, or nil when full
// tracing was not requested. Call it only after every worker has
// exited. The timelines are copied out of the per-worker span buffers,
// so the returned Trace is self-contained: it stays valid — and safe to
// export from another goroutine — while the collector is Reset and
// reused by subsequent runs.
func (c *Collector) Finish() *Trace {
	if c == nil || c.trace == nil {
		return nil
	}
	c.trace.Timelines = make([][]Span, len(c.workers))
	for i := range c.workers {
		c.trace.Timelines[i] = append([]Span(nil), c.workers[i].spans...)
	}
	return c.trace
}
