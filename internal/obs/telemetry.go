package obs

import (
	"sync/atomic"
	"time"
)

// TelemetryOptions configures a Telemetry hub. The zero value is usable:
// one histogram shard, a 256-entry flight ring, an adaptive-only slow
// threshold, and no Metrics attachment.
type TelemetryOptions struct {
	// Shards is the latency histogram's shard count; size it to the
	// number of concurrent recorders (the Pool uses its Searcher count).
	// Values below 1 become 1.
	Shards int
	// FlightSize is the flight recorder's ring length. 0 means 256.
	FlightSize int
	// SlowThreshold floors the flight recorder's adaptive slow-capture
	// threshold: queries faster than it never retain their per-level
	// breakdown even when the current p99 is lower. 0 means adaptive
	// only (and a cold recorder captures everything until its first
	// threshold refresh).
	SlowThreshold time.Duration
	// Metrics, when non-nil, is exported on /metrics alongside the
	// telemetry's own series. The Telemetry does not feed it — attach
	// Metrics.Tracer() / PoolOptions.Metrics for that as usual.
	Metrics *Metrics
}

// Telemetry is the serving-telemetry hub: a sharded latency histogram,
// a slow-query flight recorder, sliding-window QPS/error counters,
// per-outcome totals, and the HTTP exposition over all of them
// (Prometheus text /metrics, JSON /debug/bfs — see serve.go).
//
// One Telemetry is shared by every session serving a pool (or any set
// of concurrent recorders); RecordQuery is safe for concurrent use and
// allocation-free on the warm path. A nil *Telemetry disables every
// recording method.
type Telemetry struct {
	metrics  *Metrics
	hist     *Histogram
	flight   *FlightRecorder
	ok       SlidingCounter
	errs     SlidingCounter
	outcomes [numOutcomes]atomic.Int64
	// poolGauge reports (busy, size) of the serving pool; registered by
	// Pool, read by the status page. Atomic so registration can trail
	// the first queries.
	poolGauge atomic.Pointer[func() (busy, size int)]
	// batchLanes is the lanes-per-traversal histogram: bucket i counts
	// MS-BFS traversals that carried at most 1<<i lanes (le 1, 2, 4, …,
	// 64). batchTraversals/batchLaneTotal/batchEdgesScanned/
	// batchLaneEdges are the matching totals, from which the status page
	// derives mean batch width and edge-scan amortization.
	batchLanes        [batchLaneBuckets]atomic.Int64
	batchTraversals   atomic.Int64
	batchLaneTotal    atomic.Int64
	batchEdgesScanned atomic.Int64
	batchLaneEdges    atomic.Int64
	// ordering describes the active vertex ordering (nil when the pool
	// serves in natural order); registered by Pool at construction, read
	// by the status page and /metrics. Atomic for the same registration
	// ordering reason as poolGauge.
	ordering atomic.Pointer[OrderingInfo]
	// poolInfo is the richer capacity gauge a hot-swapping pool
	// registers: Searcher slots and batch lanes reported separately, so
	// batching-dominant configurations are not misread as tiny pools.
	// When set it supersedes poolGauge on the status page.
	poolInfo atomic.Pointer[func() PoolInfo]
	// Snapshot hot-swap telemetry: the current graph epoch, cumulative
	// swap count and build+install time, the last swap's latency, and
	// when it landed (from which the status page derives snapshot
	// staleness). drainGauge reports retired-but-undrained snapshots.
	graphEpoch  atomic.Int64
	swaps       atomic.Int64
	swapTotalNs atomic.Int64
	lastSwapNs  atomic.Int64
	lastSwapAt  atomic.Int64 // unix nanos; 0 = never swapped
	drainGauge  atomic.Pointer[func() int]
	// epoch anchors process-relative timestamps on the status page.
	epoch time.Time
}

// PoolInfo is the serving pool's capacity broken out by admission path:
// warm Searcher slots (with how many are currently borrowed) and — when
// batching is on — the MS-BFS lane capacity (Lanes × Runners) that
// serves default-configuration queries without borrowing a Searcher.
type PoolInfo struct {
	SearcherSlots int
	SearchersBusy int
	BatchLanes    int
	BatchRunners  int
}

// OrderingInfo describes the vertex ordering a serving pool relabeled
// its graph with: the ordering's name, the one-time cost split into
// permutation computation and CSR rewrite, and the hub-prefix residency
// (how many vertices cleared the hub threshold and what fraction of the
// adjacency their lists occupy).
type OrderingInfo struct {
	Order       string
	PermNs      int64
	RelabelNs   int64
	HubVertices int64
	HubEdges    int64
	TotalEdges  int64
}

// batchLaneBuckets is the lanes histogram's bucket count: powers of two
// 1..64.
const batchLaneBuckets = 7

// NewTelemetry builds a telemetry hub.
func NewTelemetry(opt TelemetryOptions) *Telemetry {
	size := opt.FlightSize
	if size <= 0 {
		size = 256
	}
	hist := NewHistogram(opt.Shards)
	return &Telemetry{
		metrics: opt.Metrics,
		hist:    hist,
		flight:  newFlightRecorder(size, opt.SlowThreshold, hist),
		epoch:   time.Now(),
	}
}

// Histogram returns the latency histogram (nil on a nil receiver).
func (t *Telemetry) Histogram() *Histogram {
	if t == nil {
		return nil
	}
	return t.hist
}

// Flight returns the flight recorder (nil on a nil receiver).
func (t *Telemetry) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// AttachedMetrics returns the Metrics exported on /metrics, or nil.
func (t *Telemetry) AttachedMetrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// SetPoolGauge registers the pool-occupancy callback shown on
// /debug/bfs and /metrics; fn must be safe for concurrent use. The Pool
// registers itself; standalone users may register anything (or
// nothing).
func (t *Telemetry) SetPoolGauge(fn func() (busy, size int)) {
	if t == nil {
		return
	}
	t.poolGauge.Store(&fn)
}

// SetOrdering registers the active vertex ordering shown on /debug/bfs
// and /metrics. The Pool registers it when PoolOptions.Search carries a
// non-natural ordering; no-op on a nil receiver.
func (t *Telemetry) SetOrdering(info OrderingInfo) {
	if t == nil {
		return
	}
	t.ordering.Store(&info)
}

// Ordering returns the registered ordering info, or nil when the hub
// serves a natural-order pool (or on a nil receiver).
func (t *Telemetry) Ordering() *OrderingInfo {
	if t == nil {
		return nil
	}
	return t.ordering.Load()
}

// SetPoolInfo registers the structured capacity gauge (Searcher slots
// and batch lanes separately); fn must be safe for concurrent use. When
// registered it supersedes SetPoolGauge on the status page and adds the
// batch-lane gauges to /metrics. No-op on a nil receiver.
func (t *Telemetry) SetPoolInfo(fn func() PoolInfo) {
	if t == nil {
		return
	}
	t.poolInfo.Store(&fn)
}

// SetEpoch publishes the current graph epoch without recording a swap —
// the pool calls it once at construction so the status page shows epoch
// 1 before the first Swap. No-op on a nil receiver.
func (t *Telemetry) SetEpoch(epoch int64) {
	if t == nil {
		return
	}
	t.graphEpoch.Store(epoch)
}

// RecordSwap deposits one completed graph snapshot hot-swap: the new
// epoch becomes current and d — building the epoch's Searchers plus the
// atomic install — feeds the swap latency series. Safe for concurrent
// use, no-op on a nil receiver.
func (t *Telemetry) RecordSwap(epoch int64, d time.Duration) {
	if t == nil {
		return
	}
	t.graphEpoch.Store(epoch)
	t.swaps.Add(1)
	t.swapTotalNs.Add(int64(d))
	t.lastSwapNs.Store(int64(d))
	t.lastSwapAt.Store(time.Now().UnixNano())
}

// SetDrainGauge registers the retired-but-undrained snapshot count
// shown on /debug/bfs and /metrics; fn must be safe for concurrent use.
// No-op on a nil receiver.
func (t *Telemetry) SetDrainGauge(fn func() int) {
	if t == nil {
		return
	}
	t.drainGauge.Store(&fn)
}

// Epoch returns the current graph epoch (0 when no pool registered
// one) and the number of swaps recorded.
func (t *Telemetry) Epoch() (epoch, swaps int64) {
	if t == nil {
		return 0, 0
	}
	return t.graphEpoch.Load(), t.swaps.Load()
}

// Staleness returns the time since the last recorded swap, or 0 when
// no swap has been recorded (the initial snapshot is as fresh as the
// pool).
func (t *Telemetry) Staleness() time.Duration {
	if t == nil {
		return 0
	}
	at := t.lastSwapAt.Load()
	if at == 0 {
		return 0
	}
	return time.Since(time.Unix(0, at))
}

// draining reads the registered drain gauge, or 0 when none is set.
func (t *Telemetry) draining() int {
	if t == nil {
		return 0
	}
	if fn := t.drainGauge.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

// RecordQuery deposits one finished query: latency into the histogram's
// given shard, the outcome into the per-outcome totals and the rolling
// ok/error windows, and the sample into the flight recorder (which
// retains s.PerLevel only for slow queries). Safe for concurrent use;
// allocation-free once the flight ring's slot capacities have warmed.
// No-op on a nil receiver.
func (t *Telemetry) RecordQuery(shard int, s QuerySample) {
	if t == nil {
		return
	}
	t.hist.Record(shard, s.Duration)
	o := s.Outcome
	if o >= numOutcomes {
		o = numOutcomes - 1
	}
	t.outcomes[o].Add(1)
	if o == OutcomeOK {
		t.ok.Add(1)
	} else {
		t.errs.Add(1)
	}
	t.flight.note(s)
}

// RecordShed deposits a query refused at pool admission: it never
// searched, so the sample carries only the time spent waiting.
func (t *Telemetry) RecordShed(start time.Time, d time.Duration) {
	t.RecordQuery(0, QuerySample{Start: start, Duration: d, Outcome: OutcomeShed})
}

// RecordBatch deposits one finished MS-BFS batch traversal: the lane
// count into the lanes-per-traversal histogram (power-of-two buckets le
// 1, 2, 4, …, 64) and the edge-scan totals — edgesScanned is what the
// shared traversal actually loaded, laneEdges what its lanes would have
// scanned as independent single-source searches. Per-lane latency
// samples are recorded separately via RecordQuery. Safe for concurrent
// use, allocation-free, no-op on a nil receiver.
func (t *Telemetry) RecordBatch(lanes int, edgesScanned, laneEdges int64) {
	if t == nil {
		return
	}
	b := 0
	for (1<<uint(b)) < lanes && b < batchLaneBuckets-1 {
		b++
	}
	t.batchLanes[b].Add(1)
	t.batchTraversals.Add(1)
	t.batchLaneTotal.Add(int64(lanes))
	t.batchEdgesScanned.Add(edgesScanned)
	t.batchLaneEdges.Add(laneEdges)
}

// BatchStats returns the batch totals recorded so far: traversals,
// lanes carried, edges the shared traversals scanned, and edges the
// lanes would have scanned independently.
func (t *Telemetry) BatchStats() (traversals, lanes, edgesScanned, laneEdges int64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.batchTraversals.Load(), t.batchLaneTotal.Load(),
		t.batchEdgesScanned.Load(), t.batchLaneEdges.Load()
}

// BatchLaneBuckets returns the lanes-per-traversal histogram as
// (upper-bound, count) pairs: bucket i counts traversals with at most
// 1<<i lanes.
func (t *Telemetry) BatchLaneBuckets() [batchLaneBuckets]int64 {
	var out [batchLaneBuckets]int64
	if t == nil {
		return out
	}
	for i := range out {
		out[i] = t.batchLanes[i].Load()
	}
	return out
}

// OutcomeCount returns the total number of queries recorded with the
// given outcome.
func (t *Telemetry) OutcomeCount(o Outcome) int64 {
	if t == nil || o >= numOutcomes {
		return 0
	}
	return t.outcomes[o].Load()
}

// QPS returns the rolling queries-per-second (all outcomes) over the
// trailing window.
func (t *Telemetry) QPS(window time.Duration) float64 {
	if t == nil {
		return 0
	}
	return t.ok.Rate(window) + t.errs.Rate(window)
}

// ErrorRate returns the rolling non-OK outcomes per second over the
// trailing window.
func (t *Telemetry) ErrorRate(window time.Duration) float64 {
	if t == nil {
		return 0
	}
	return t.errs.Rate(window)
}

// pool reads the registered pool occupancy: the structured PoolInfo
// gauge when one is set (Searcher slots only — batch lanes are reported
// separately), else the plain (busy, size) gauge, else (0, 0).
func (t *Telemetry) pool() (busy, size int) {
	if t == nil {
		return 0, 0
	}
	if fn := t.poolInfo.Load(); fn != nil {
		info := (*fn)()
		return info.SearchersBusy, info.SearcherSlots
	}
	if fn := t.poolGauge.Load(); fn != nil {
		return (*fn)()
	}
	return 0, 0
}

// info reads the structured capacity gauge, or nil when only the plain
// gauge (or nothing) is registered.
func (t *Telemetry) info() *PoolInfo {
	if t == nil {
		return nil
	}
	if fn := t.poolInfo.Load(); fn != nil {
		i := (*fn)()
		return &i
	}
	return nil
}
