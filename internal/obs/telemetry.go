package obs

import (
	"sync/atomic"
	"time"
)

// TelemetryOptions configures a Telemetry hub. The zero value is usable:
// one histogram shard, a 256-entry flight ring, an adaptive-only slow
// threshold, and no Metrics attachment.
type TelemetryOptions struct {
	// Shards is the latency histogram's shard count; size it to the
	// number of concurrent recorders (the Pool uses its Searcher count).
	// Values below 1 become 1.
	Shards int
	// FlightSize is the flight recorder's ring length. 0 means 256.
	FlightSize int
	// SlowThreshold floors the flight recorder's adaptive slow-capture
	// threshold: queries faster than it never retain their per-level
	// breakdown even when the current p99 is lower. 0 means adaptive
	// only (and a cold recorder captures everything until its first
	// threshold refresh).
	SlowThreshold time.Duration
	// Metrics, when non-nil, is exported on /metrics alongside the
	// telemetry's own series. The Telemetry does not feed it — attach
	// Metrics.Tracer() / PoolOptions.Metrics for that as usual.
	Metrics *Metrics
}

// Telemetry is the serving-telemetry hub: a sharded latency histogram,
// a slow-query flight recorder, sliding-window QPS/error counters,
// per-outcome totals, and the HTTP exposition over all of them
// (Prometheus text /metrics, JSON /debug/bfs — see serve.go).
//
// One Telemetry is shared by every session serving a pool (or any set
// of concurrent recorders); RecordQuery is safe for concurrent use and
// allocation-free on the warm path. A nil *Telemetry disables every
// recording method.
type Telemetry struct {
	metrics  *Metrics
	hist     *Histogram
	flight   *FlightRecorder
	ok       SlidingCounter
	errs     SlidingCounter
	outcomes [numOutcomes]atomic.Int64
	// poolGauge reports (busy, size) of the serving pool; registered by
	// Pool, read by the status page. Atomic so registration can trail
	// the first queries.
	poolGauge atomic.Pointer[func() (busy, size int)]
	// epoch anchors process-relative timestamps on the status page.
	epoch time.Time
}

// NewTelemetry builds a telemetry hub.
func NewTelemetry(opt TelemetryOptions) *Telemetry {
	size := opt.FlightSize
	if size <= 0 {
		size = 256
	}
	hist := NewHistogram(opt.Shards)
	return &Telemetry{
		metrics: opt.Metrics,
		hist:    hist,
		flight:  newFlightRecorder(size, opt.SlowThreshold, hist),
		epoch:   time.Now(),
	}
}

// Histogram returns the latency histogram (nil on a nil receiver).
func (t *Telemetry) Histogram() *Histogram {
	if t == nil {
		return nil
	}
	return t.hist
}

// Flight returns the flight recorder (nil on a nil receiver).
func (t *Telemetry) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// AttachedMetrics returns the Metrics exported on /metrics, or nil.
func (t *Telemetry) AttachedMetrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// SetPoolGauge registers the pool-occupancy callback shown on
// /debug/bfs and /metrics; fn must be safe for concurrent use. The Pool
// registers itself; standalone users may register anything (or
// nothing).
func (t *Telemetry) SetPoolGauge(fn func() (busy, size int)) {
	if t == nil {
		return
	}
	t.poolGauge.Store(&fn)
}

// RecordQuery deposits one finished query: latency into the histogram's
// given shard, the outcome into the per-outcome totals and the rolling
// ok/error windows, and the sample into the flight recorder (which
// retains s.PerLevel only for slow queries). Safe for concurrent use;
// allocation-free once the flight ring's slot capacities have warmed.
// No-op on a nil receiver.
func (t *Telemetry) RecordQuery(shard int, s QuerySample) {
	if t == nil {
		return
	}
	t.hist.Record(shard, s.Duration)
	o := s.Outcome
	if o >= numOutcomes {
		o = numOutcomes - 1
	}
	t.outcomes[o].Add(1)
	if o == OutcomeOK {
		t.ok.Add(1)
	} else {
		t.errs.Add(1)
	}
	t.flight.note(s)
}

// RecordShed deposits a query refused at pool admission: it never
// searched, so the sample carries only the time spent waiting.
func (t *Telemetry) RecordShed(start time.Time, d time.Duration) {
	t.RecordQuery(0, QuerySample{Start: start, Duration: d, Outcome: OutcomeShed})
}

// OutcomeCount returns the total number of queries recorded with the
// given outcome.
func (t *Telemetry) OutcomeCount(o Outcome) int64 {
	if t == nil || o >= numOutcomes {
		return 0
	}
	return t.outcomes[o].Load()
}

// QPS returns the rolling queries-per-second (all outcomes) over the
// trailing window.
func (t *Telemetry) QPS(window time.Duration) float64 {
	if t == nil {
		return 0
	}
	return t.ok.Rate(window) + t.errs.Rate(window)
}

// ErrorRate returns the rolling non-OK outcomes per second over the
// trailing window.
func (t *Telemetry) ErrorRate(window time.Duration) float64 {
	if t == nil {
		return 0
	}
	return t.errs.Rate(window)
}

// pool reads the registered pool gauge, or (0, 0) when none is set.
func (t *Telemetry) pool() (busy, size int) {
	if t == nil {
		return 0, 0
	}
	if fn := t.poolGauge.Load(); fn != nil {
		return (*fn)()
	}
	return 0, 0
}
