package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the HTTP exposition layer over a Telemetry hub:
//
//   - /metrics — Prometheus text format (version 0.0.4), no external
//     dependencies: the latency histogram with cumulative le buckets,
//     per-outcome query counters, pool-occupancy gauges, and — when a
//     Metrics was attached — its cumulative counters;
//   - /debug/bfs — a JSON status page: pool occupancy, rolling
//     1s/10s/60s QPS and error rates, latency quantiles, and the top-K
//     slowest recent queries with per-level phase breakdowns for those
//     the flight recorder captured.

// Handler returns an http.Handler serving GET /metrics and /debug/bfs.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", t.MetricsHandler())
	mux.Handle("/debug/bfs", t.StatusHandler())
	return mux
}

// MetricsHandler returns the Prometheus text-format exposition handler
// alone, for mounting on an existing mux.
func (t *Telemetry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WriteMetrics(w)
	})
}

// StatusHandler returns the JSON status-page handler alone.
func (t *Telemetry) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Status())
	})
}

// promSec renders a nanosecond count as Prometheus seconds.
func promSec(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WriteMetrics writes the hub's state in Prometheus text format.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	var b strings.Builder

	// Latency histogram: cumulative le buckets. Only buckets that close
	// a non-empty range are emitted (plus +Inf), which keeps the series
	// compact and remains valid exposition: le values ascend, cumulative
	// counts are non-decreasing, and +Inf equals _count.
	snap := t.hist.Snapshot()
	b.WriteString("# HELP mcbfs_query_duration_seconds BFS query latency (search time; shed queries report their admission wait).\n")
	b.WriteString("# TYPE mcbfs_query_duration_seconds histogram\n")
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		c := snap.Counts[i]
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(&b, "mcbfs_query_duration_seconds_bucket{le=%q} %d\n", promSec(bucketUpper(i)), cum)
	}
	fmt.Fprintf(&b, "mcbfs_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", snap.Count)
	fmt.Fprintf(&b, "mcbfs_query_duration_seconds_sum %s\n", promSec(snap.SumNs))
	fmt.Fprintf(&b, "mcbfs_query_duration_seconds_count %d\n", snap.Count)

	// Per-outcome query totals.
	b.WriteString("# HELP mcbfs_queries_total Queries recorded, by outcome.\n")
	b.WriteString("# TYPE mcbfs_queries_total counter\n")
	for o := Outcome(0); o < numOutcomes; o++ {
		fmt.Fprintf(&b, "mcbfs_queries_total{outcome=%q} %d\n", o.String(), t.outcomes[o].Load())
	}

	// Lanes-per-traversal histogram and batch totals, emitted only once a
	// batch has been recorded so non-batching deployments keep their
	// exposition unchanged.
	if traversals, lanes, scanned, laneEdges := t.BatchStats(); traversals > 0 {
		b.WriteString("# HELP mcbfs_batch_lanes Lanes (queries) carried per MS-BFS batch traversal.\n")
		b.WriteString("# TYPE mcbfs_batch_lanes histogram\n")
		buckets := t.BatchLaneBuckets()
		var cum int64
		for i, c := range buckets {
			cum += c
			if c == 0 && i < len(buckets)-1 {
				continue
			}
			fmt.Fprintf(&b, "mcbfs_batch_lanes_bucket{le=\"%d\"} %d\n", 1<<uint(i), cum)
		}
		fmt.Fprintf(&b, "mcbfs_batch_lanes_bucket{le=\"+Inf\"} %d\n", traversals)
		fmt.Fprintf(&b, "mcbfs_batch_lanes_sum %d\n", lanes)
		fmt.Fprintf(&b, "mcbfs_batch_lanes_count %d\n", traversals)
		b.WriteString("# HELP mcbfs_batch_edges_scanned_total Adjacency entries loaded by shared batch traversals.\n")
		b.WriteString("# TYPE mcbfs_batch_edges_scanned_total counter\n")
		fmt.Fprintf(&b, "mcbfs_batch_edges_scanned_total %d\n", scanned)
		b.WriteString("# HELP mcbfs_batch_lane_edges_total Adjacency entries the batched lanes would have scanned as single-source searches.\n")
		b.WriteString("# TYPE mcbfs_batch_lane_edges_total counter\n")
		fmt.Fprintf(&b, "mcbfs_batch_lane_edges_total %d\n", laneEdges)
	}

	// Active vertex ordering: one-time reorder cost and hub-prefix
	// residency, emitted only when a pool registered a reordering.
	if info := t.Ordering(); info != nil {
		b.WriteString("# HELP mcbfs_reorder_seconds One-time cost of the active vertex reordering (permutation + CSR rewrite).\n")
		b.WriteString("# TYPE mcbfs_reorder_seconds gauge\n")
		fmt.Fprintf(&b, "mcbfs_reorder_seconds{order=%q} %s\n", info.Order, promSec(uint64(info.PermNs+info.RelabelNs)))
		if info.TotalEdges > 0 {
			b.WriteString("# HELP mcbfs_hub_edge_fraction Fraction of adjacency slots owned by hub vertices (degree >= 2x average).\n")
			b.WriteString("# TYPE mcbfs_hub_edge_fraction gauge\n")
			fmt.Fprintf(&b, "mcbfs_hub_edge_fraction %s\n",
				strconv.FormatFloat(float64(info.HubEdges)/float64(info.TotalEdges), 'g', -1, 64))
		}
	}

	// Graph snapshot epoch, swap latency, and staleness — emitted only
	// when a hot-swapping pool registered an epoch.
	if epoch, swaps := t.Epoch(); epoch > 0 {
		b.WriteString("# HELP mcbfs_graph_epoch Current graph snapshot epoch (bumped by each hot-swap).\n")
		b.WriteString("# TYPE mcbfs_graph_epoch gauge\n")
		fmt.Fprintf(&b, "mcbfs_graph_epoch %d\n", epoch)
		b.WriteString("# HELP mcbfs_graph_swaps_total Graph snapshot hot-swaps installed.\n")
		b.WriteString("# TYPE mcbfs_graph_swaps_total counter\n")
		fmt.Fprintf(&b, "mcbfs_graph_swaps_total %d\n", swaps)
		if swaps > 0 {
			b.WriteString("# HELP mcbfs_swap_duration_seconds Last hot-swap's build+install latency.\n")
			b.WriteString("# TYPE mcbfs_swap_duration_seconds gauge\n")
			fmt.Fprintf(&b, "mcbfs_swap_duration_seconds %s\n", promSec(uint64(t.lastSwapNs.Load())))
			b.WriteString("# HELP mcbfs_snapshot_staleness_seconds Time since the current snapshot was installed.\n")
			b.WriteString("# TYPE mcbfs_snapshot_staleness_seconds gauge\n")
			fmt.Fprintf(&b, "mcbfs_snapshot_staleness_seconds %s\n", promSec(uint64(t.Staleness())))
		}
		b.WriteString("# HELP mcbfs_snapshots_draining Retired snapshots still waiting for their last borrower.\n")
		b.WriteString("# TYPE mcbfs_snapshots_draining gauge\n")
		fmt.Fprintf(&b, "mcbfs_snapshots_draining %d\n", t.draining())
	}

	// Flight-recorder threshold and pool occupancy gauges.
	b.WriteString("# HELP mcbfs_slow_capture_threshold_seconds Current flight-recorder slow-capture threshold.\n")
	b.WriteString("# TYPE mcbfs_slow_capture_threshold_seconds gauge\n")
	fmt.Fprintf(&b, "mcbfs_slow_capture_threshold_seconds %s\n", promSec(uint64(t.flight.Threshold())))
	if busy, size := t.pool(); size > 0 {
		b.WriteString("# HELP mcbfs_pool_searchers Searchers in the serving pool.\n")
		b.WriteString("# TYPE mcbfs_pool_searchers gauge\n")
		fmt.Fprintf(&b, "mcbfs_pool_searchers %d\n", size)
		b.WriteString("# HELP mcbfs_pool_searchers_busy Searchers currently borrowed by in-flight queries.\n")
		b.WriteString("# TYPE mcbfs_pool_searchers_busy gauge\n")
		fmt.Fprintf(&b, "mcbfs_pool_searchers_busy %d\n", busy)
	}
	if info := t.info(); info != nil && info.BatchLanes > 0 {
		b.WriteString("# HELP mcbfs_pool_batch_lanes MS-BFS lane capacity (lanes per traversal x runners).\n")
		b.WriteString("# TYPE mcbfs_pool_batch_lanes gauge\n")
		fmt.Fprintf(&b, "mcbfs_pool_batch_lanes %d\n", info.BatchLanes*info.BatchRunners)
	}

	// Attached Metrics counters, exported generically so the series set
	// follows the Metrics struct without a second name table here.
	if t.metrics != nil {
		snap := t.metrics.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			name := "mcbfs_" + camelToSnake(k) + "_total"
			fmt.Fprintf(&b, "# HELP %s Cumulative %s counter (obs.Metrics).\n", name, k)
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			fmt.Fprintf(&b, "%s %d\n", name, snap[k])
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// camelToSnake converts a Snapshot key (e.g. "barrierWaitNs") to a
// Prometheus-style name fragment ("barrier_wait_ns").
func camelToSnake(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Status is the /debug/bfs JSON document.
type Status struct {
	// Pool is the serving pool's occupancy (zero when no gauge is
	// registered).
	Pool PoolStatus `json:"pool"`
	// QPS and ErrorRate are rolling rates over 1s/10s/60s windows.
	QPS       WindowRates `json:"qps"`
	ErrorRate WindowRates `json:"errorRate"`
	// Latency summarizes the histogram.
	Latency LatencyStatus `json:"latency"`
	// Queries is the per-outcome totals.
	Queries map[string]int64 `json:"queries"`
	// Batch summarizes MS-BFS batch traversals; omitted until one has
	// been recorded.
	Batch *BatchStatus `json:"batch,omitempty"`
	// Ordering describes the active vertex ordering; omitted for
	// natural-order pools.
	Ordering *OrderingStatus `json:"ordering,omitempty"`
	// Snapshot describes the graph epoch and hot-swap history; omitted
	// until a pool registers an epoch.
	Snapshot *SnapshotStatus `json:"snapshot,omitempty"`
	// SlowThresholdNs is the flight recorder's current capture
	// threshold.
	SlowThresholdNs int64 `json:"slowThresholdNs"`
	// Slowest is the top-K slowest queries currently in the flight
	// ring, slowest first; captured entries carry per-level breakdowns.
	Slowest []QueryStatus `json:"slowest"`
}

// PoolStatus is the pool-occupancy block of Status. Size and Busy
// describe the Searcher slots; when the pool runs in batching mode,
// BatchLanes and BatchRunners report the MS-BFS lane capacity that
// serves default-configuration queries without borrowing a Searcher —
// the two admission paths are listed explicitly rather than folded
// into one misleading number.
type PoolStatus struct {
	Size         int `json:"size"`
	Busy         int `json:"busy"`
	BatchLanes   int `json:"batchLanes,omitempty"`
	BatchRunners int `json:"batchRunners,omitempty"`
}

// SnapshotStatus is the graph-epoch block of Status: which snapshot is
// serving, how many hot-swaps have been installed, the last swap's
// build+install latency, how stale the serving snapshot is, and how
// many retired snapshots are still draining in-flight borrowers.
type SnapshotStatus struct {
	Epoch       int64  `json:"epoch"`
	Swaps       int64  `json:"swaps"`
	LastSwap    string `json:"lastSwap,omitempty"`
	LastSwapNs  int64  `json:"lastSwapNs,omitempty"`
	StalenessNs int64  `json:"stalenessNs,omitempty"`
	Draining    int    `json:"draining"`
}

// BatchStatus is the MS-BFS block of Status: batch volume, mean width,
// and the edge-scan amortization factor (lane-attributed edges over
// edges actually scanned — the bandwidth multiplier batching bought).
type BatchStatus struct {
	Traversals   int64   `json:"traversals"`
	Lanes        int64   `json:"lanes"`
	MeanWidth    float64 `json:"meanWidth"`
	EdgesScanned int64   `json:"edgesScanned"`
	LaneEdges    int64   `json:"laneEdges"`
	Amortization float64 `json:"amortization"`
}

// OrderingStatus is the vertex-ordering block of Status: which
// locality ordering the pool relabeled its graph with, the one-time
// cost (split into permutation computation and CSR rewrite), and the
// hub-prefix residency — the fraction of adjacency slots owned by hub
// vertices, i.e. how much of the edge traffic the cache-resident
// prefix serves.
type OrderingStatus struct {
	Order           string  `json:"order"`
	ReorderNs       int64   `json:"reorderNs"`
	PermNs          int64   `json:"permNs"`
	RelabelNs       int64   `json:"relabelNs"`
	HubVertices     int64   `json:"hubVertices"`
	HubEdges        int64   `json:"hubEdges"`
	HubEdgeFraction float64 `json:"hubEdgeFraction"`
}

// WindowRates holds one rate per rolling window.
type WindowRates struct {
	S1  float64 `json:"1s"`
	S10 float64 `json:"10s"`
	S60 float64 `json:"60s"`
}

// LatencyStatus summarizes the latency histogram.
type LatencyStatus struct {
	Count uint64 `json:"count"`
	Mean  string `json:"mean"`
	P50   string `json:"p50"`
	P90   string `json:"p90"`
	P99   string `json:"p99"`
	P999  string `json:"p999"`
	Max   string `json:"max"`
}

// QueryStatus is one flight-recorder entry rendered for the status
// page.
type QueryStatus struct {
	Seq        uint64        `json:"seq"`
	Root       uint32        `json:"root"`
	Start      time.Time     `json:"start"`
	Duration   string        `json:"duration"`
	DurationNs int64         `json:"durationNs"`
	Levels     int           `json:"levels"`
	Reached    int64         `json:"reached"`
	Edges      int64         `json:"edges"`
	Outcome    string        `json:"outcome"`
	Algorithm  string        `json:"algorithm,omitempty"`
	Captured   bool          `json:"captured"`
	PerLevel   []LevelStatus `json:"perLevel,omitempty"`
}

// LevelStatus is one captured level's breakdown on the status page:
// the folded counters plus per-phase worker nanoseconds keyed by phase
// name.
type LevelStatus struct {
	Level      int   `json:"level"`
	DurationNs int64 `json:"durationNs"`
	Frontier   int64 `json:"frontier"`
	Edges      int64 `json:"edges"`
	// MaxWorkerEdges and Imbalance expose the level's edge-load skew:
	// the straggler worker's edge share and its ratio to the mean share
	// (see LevelBreakdown.Imbalance).
	MaxWorkerEdges int64            `json:"maxWorkerEdges"`
	Imbalance      float64          `json:"imbalance"`
	Steals         int64            `json:"steals,omitempty"`
	PhaseNs        map[string]int64 `json:"phaseNs"`
}

// statusTopK is how many slowest queries the status page lists.
const statusTopK = 8

// Status assembles the /debug/bfs document.
func (t *Telemetry) Status() Status {
	var st Status
	if t == nil {
		return st
	}
	st.Pool.Busy, st.Pool.Size = t.pool()
	if info := t.info(); info != nil {
		st.Pool.BatchLanes = info.BatchLanes
		st.Pool.BatchRunners = info.BatchRunners
	}
	if epoch, swaps := t.Epoch(); epoch > 0 {
		ss := &SnapshotStatus{Epoch: epoch, Swaps: swaps, Draining: t.draining()}
		if at := t.lastSwapAt.Load(); at != 0 {
			ss.LastSwap = time.Unix(0, at).Format(time.RFC3339Nano)
			ss.LastSwapNs = t.lastSwapNs.Load()
			ss.StalenessNs = int64(t.Staleness())
		}
		st.Snapshot = ss
	}
	st.QPS = WindowRates{
		S1:  t.QPS(1 * time.Second),
		S10: t.QPS(10 * time.Second),
		S60: t.QPS(60 * time.Second),
	}
	st.ErrorRate = WindowRates{
		S1:  t.ErrorRate(1 * time.Second),
		S10: t.ErrorRate(10 * time.Second),
		S60: t.ErrorRate(60 * time.Second),
	}
	snap := t.hist.Snapshot()
	st.Latency = LatencyStatus{
		Count: snap.Count,
		Mean:  snap.Mean().String(),
		P50:   snap.Quantile(0.50).String(),
		P90:   snap.Quantile(0.90).String(),
		P99:   snap.Quantile(0.99).String(),
		P999:  snap.Quantile(0.999).String(),
		Max:   time.Duration(snap.MaxNs).String(),
	}
	st.Queries = make(map[string]int64, numOutcomes)
	for o := Outcome(0); o < numOutcomes; o++ {
		st.Queries[o.String()] = t.outcomes[o].Load()
	}
	if traversals, lanes, scanned, laneEdges := t.BatchStats(); traversals > 0 {
		bs := &BatchStatus{
			Traversals:   traversals,
			Lanes:        lanes,
			MeanWidth:    float64(lanes) / float64(traversals),
			EdgesScanned: scanned,
			LaneEdges:    laneEdges,
		}
		if scanned > 0 {
			bs.Amortization = float64(laneEdges) / float64(scanned)
		}
		st.Batch = bs
	}
	if info := t.Ordering(); info != nil {
		os := &OrderingStatus{
			Order:       info.Order,
			ReorderNs:   info.PermNs + info.RelabelNs,
			PermNs:      info.PermNs,
			RelabelNs:   info.RelabelNs,
			HubVertices: info.HubVertices,
			HubEdges:    info.HubEdges,
		}
		if info.TotalEdges > 0 {
			os.HubEdgeFraction = float64(info.HubEdges) / float64(info.TotalEdges)
		}
		st.Ordering = os
	}
	st.SlowThresholdNs = int64(t.flight.Threshold())
	for _, rec := range t.flight.Slowest(statusTopK) {
		st.Slowest = append(st.Slowest, renderRecord(rec))
	}
	return st
}

// renderRecord converts a QueryRecord into its status-page form.
func renderRecord(rec QueryRecord) QueryStatus {
	q := QueryStatus{
		Seq:        rec.Seq,
		Root:       rec.Root,
		Start:      rec.Start,
		Duration:   rec.Duration.String(),
		DurationNs: int64(rec.Duration),
		Levels:     rec.Levels,
		Reached:    rec.Reached,
		Edges:      rec.Edges,
		Outcome:    rec.Outcome.String(),
		Algorithm:  rec.Algorithm,
		Captured:   rec.Captured,
	}
	for _, lb := range rec.PerLevel {
		ls := LevelStatus{
			Level:          lb.Level,
			DurationNs:     int64(lb.Duration),
			Frontier:       lb.Frontier,
			Edges:          lb.Edges,
			MaxWorkerEdges: lb.MaxWorkerEdges,
			Imbalance:      lb.Imbalance(),
			Steals:         lb.Steals,
			PhaseNs:        make(map[string]int64, NumPhases),
		}
		for p := Phase(0); p < NumPhases; p++ {
			ls.PhaseNs[p.String()] = int64(lb.Phases[p])
		}
		q.PerLevel = append(q.PerLevel, ls)
	}
	return q
}
