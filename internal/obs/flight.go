package obs

import (
	"sort"
	"sync"
	"time"
)

// Outcome classifies how a query ended.
type Outcome uint8

const (
	// OutcomeOK is a query that completed its search.
	OutcomeOK Outcome = iota
	// OutcomeCancelled is a query unwound by context cancellation or
	// deadline expiry mid-search.
	OutcomeCancelled
	// OutcomeShed is a query refused at pool admission (no Searcher
	// freed up before its context expired); it never searched.
	OutcomeShed
	// OutcomePanic is a query whose search panicked; its Searcher was
	// discarded and rebuilt.
	OutcomePanic
	// numOutcomes bounds the enum for per-outcome counters.
	numOutcomes
)

// String returns the outcome label used on /metrics and /debug/bfs.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeShed:
		return "shed"
	case OutcomePanic:
		return "panic"
	default:
		return "outcome?"
	}
}

// QuerySample is one query's telemetry deposit, handed to
// Telemetry.RecordQuery as the query finishes. PerLevel is borrowed
// from the recorder's pooled buffer: the flight recorder copies it only
// when the query is retained as slow, so passing it costs nothing.
type QuerySample struct {
	Root      uint32
	Start     time.Time
	Duration  time.Duration
	Levels    int
	Reached   int64
	Edges     int64
	Outcome   Outcome
	Algorithm string
	PerLevel  []LevelBreakdown
}

// QueryRecord is one entry of the flight recorder's ring: the
// QuerySample scalars plus, for queries at or above the slow threshold
// when they landed, the full per-level breakdown.
type QueryRecord struct {
	// Seq is the query's global sequence number (monotone, starts at 1);
	// the ring holds the trailing window of sequence numbers.
	Seq       uint64
	Root      uint32
	Start     time.Time
	Duration  time.Duration
	Levels    int
	Reached   int64
	Edges     int64
	Outcome   Outcome
	Algorithm string
	// Captured reports whether PerLevel was retained; fast queries keep
	// only the scalars above.
	Captured bool
	// PerLevel is the per-level breakdown — counters and per-phase
	// worker nanoseconds — of a captured slow query.
	PerLevel []LevelBreakdown
}

// flightRefreshEvery is how many recorded queries pass between
// recomputations of the adaptive slow threshold.
const flightRefreshEvery = 64

// FlightRecorder is a fixed-size ring of the most recent queries. Every
// query deposits its scalar record; only queries slower than the
// adaptive threshold — the histogram's current p99, floored at a
// configured minimum — retain their full per-level breakdown, so the
// ring stays cheap to feed (one short mutex hold, no steady-state
// allocation: slow captures reuse each slot's PerLevel capacity) while
// the pathological queries arrive with their phase anatomy attached.
//
// The threshold starts at the configured floor (default 0, i.e.
// capture everything) and adapts after each flightRefreshEvery
// recordings, so a cold recorder documents its first queries fully and
// a warm one spends capture space only on the tail.
type FlightRecorder struct {
	mu           sync.Mutex
	ring         []QueryRecord
	seq          uint64
	floor        int64 // ns; configured minimum threshold
	threshold    int64 // ns; current capture threshold
	sinceRefresh int
	hist         *Histogram // threshold source; may be nil (floor only)
}

// newFlightRecorder builds a recorder of the given ring size whose
// adaptive threshold tracks hist's p99 (floored at floor).
func newFlightRecorder(size int, floor time.Duration, hist *Histogram) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	f := int64(floor)
	if f < 0 {
		f = 0
	}
	return &FlightRecorder{
		ring:      make([]QueryRecord, size),
		floor:     f,
		threshold: f,
		hist:      hist,
	}
}

// note deposits one query into the ring. Called by Telemetry.RecordQuery.
func (r *FlightRecorder) note(s QuerySample) {
	r.mu.Lock()
	r.seq++
	slot := &r.ring[(r.seq-1)%uint64(len(r.ring))]
	perLevel := slot.PerLevel // keep the slot's capacity for reuse
	*slot = QueryRecord{
		Seq:       r.seq,
		Root:      s.Root,
		Start:     s.Start,
		Duration:  s.Duration,
		Levels:    s.Levels,
		Reached:   s.Reached,
		Edges:     s.Edges,
		Outcome:   s.Outcome,
		Algorithm: s.Algorithm,
	}
	if int64(s.Duration) >= r.threshold && len(s.PerLevel) > 0 {
		slot.Captured = true
		slot.PerLevel = append(perLevel[:0], s.PerLevel...)
	} else {
		slot.PerLevel = perLevel[:0]
	}
	r.sinceRefresh++
	if r.sinceRefresh >= flightRefreshEvery {
		r.sinceRefresh = 0
		r.refreshThreshold()
	}
	r.mu.Unlock()
}

// refreshThreshold re-derives the capture threshold from the
// histogram's current p99, floored at the configured minimum. Called
// with r.mu held.
func (r *FlightRecorder) refreshThreshold() {
	if r.hist == nil {
		return
	}
	snap := r.hist.Snapshot()
	t := int64(snap.Quantile(0.99))
	if t < r.floor {
		t = r.floor
	}
	r.threshold = t
}

// Threshold returns the current slow-capture threshold.
func (r *FlightRecorder) Threshold() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.threshold)
}

// Records returns a copy of the ring's occupied entries, most recent
// first. PerLevel slices are deep-copied, so the result is safe to hold
// while recording continues.
func (r *FlightRecorder) Records() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.seq
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	out := make([]QueryRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		slot := r.ring[(r.seq-1-i)%uint64(len(r.ring))]
		if slot.Captured {
			slot.PerLevel = append([]LevelBreakdown(nil), slot.PerLevel...)
		} else {
			slot.PerLevel = nil
		}
		out = append(out, slot)
	}
	return out
}

// Slowest returns the k slowest queries currently in the ring, slowest
// first, with the same deep-copy guarantee as Records.
func (r *FlightRecorder) Slowest(k int) []QueryRecord {
	recs := r.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Duration > recs[j].Duration })
	if k >= 0 && len(recs) > k {
		recs = recs[:k]
	}
	return recs
}
