package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// feedTelemetry pushes a small mixed workload through a hub.
func feedTelemetry(t *Telemetry) {
	for i := 0; i < 10; i++ {
		t.RecordQuery(i, sampleWithLevels(time.Duration(i+1)*time.Millisecond, 3))
	}
	s := sampleWithLevels(50*time.Millisecond, 5)
	s.Outcome = OutcomeCancelled
	t.RecordQuery(0, s)
	t.RecordShed(time.Now(), 2*time.Millisecond)
}

// promSample matches a Prometheus text-format sample line.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?(Inf|[0-9].*))$`)

// validatePrometheus checks the exposition's line grammar plus the
// histogram invariants: ascending le values, non-decreasing cumulative
// counts, and +Inf == _count.
func validatePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	values := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	var lastLe float64
	var lastCum float64
	typed := map[string]string{}
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", n, line)
			}
			if f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", n, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil && m[3] != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", n, m[3], err)
		}
		values[m[1]+m[2]] = v
		if m[1] == "mcbfs_query_duration_seconds_bucket" {
			leStr := strings.TrimSuffix(strings.TrimPrefix(m[2], `{le="`), `"}`)
			le, err := strconv.ParseFloat(leStr, 64)
			if leStr == "+Inf" {
				le = float64(^uint64(0))
				err = nil
			}
			if err != nil {
				t.Fatalf("line %d: bad le %q", n, leStr)
			}
			if le <= lastLe && lastLe != 0 {
				t.Fatalf("line %d: le %v not ascending (prev %v)", n, le, lastLe)
			}
			if v < lastCum {
				t.Fatalf("line %d: cumulative bucket count decreased (%v < %v)", n, v, lastCum)
			}
			lastLe, lastCum = le, v
		}
	}
	if typed["mcbfs_query_duration_seconds"] != "histogram" {
		t.Errorf("query duration not typed as histogram: %v", typed)
	}
	return values
}

func TestWriteMetricsPrometheusFormat(t *testing.T) {
	var m Metrics
	m.Searches.Add(3)
	m.TimedOut.Add(2)
	tel := NewTelemetry(TelemetryOptions{Shards: 4, Metrics: &m})
	tel.SetPoolGauge(func() (int, int) { return 2, 8 })
	tel.SetOrdering(OrderingInfo{
		Order: "degree", PermNs: 1_500_000_000, RelabelNs: 500_000_000,
		HubVertices: 10, HubEdges: 600, TotalEdges: 1000,
	})
	feedTelemetry(tel)

	var b strings.Builder
	if err := tel.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	values := validatePrometheus(t, b.String())

	if got := values[`mcbfs_query_duration_seconds_bucket{le="+Inf"}`]; got != 12 {
		t.Errorf("+Inf bucket = %v, want 12", got)
	}
	if got := values["mcbfs_query_duration_seconds_count"]; got != 12 {
		t.Errorf("count = %v, want 12", got)
	}
	if got := values[`mcbfs_queries_total{outcome="ok"}`]; got != 10 {
		t.Errorf("ok outcomes = %v, want 10", got)
	}
	if got := values[`mcbfs_queries_total{outcome="cancelled"}`]; got != 1 {
		t.Errorf("cancelled outcomes = %v, want 1", got)
	}
	if got := values[`mcbfs_queries_total{outcome="shed"}`]; got != 1 {
		t.Errorf("shed outcomes = %v, want 1", got)
	}
	if got := values["mcbfs_pool_searchers"]; got != 8 {
		t.Errorf("pool size gauge = %v, want 8", got)
	}
	if got := values["mcbfs_pool_searchers_busy"]; got != 2 {
		t.Errorf("pool busy gauge = %v, want 2", got)
	}
	if got := values["mcbfs_searches_total"]; got != 3 {
		t.Errorf("attached metric searches = %v, want 3", got)
	}
	if got := values["mcbfs_timed_out_total"]; got != 2 {
		t.Errorf("attached metric timedOut = %v, want 2", got)
	}
	if got := values[`mcbfs_reorder_seconds{order="degree"}`]; got != 2 {
		t.Errorf("reorder seconds gauge = %v, want 2", got)
	}
	if got := values["mcbfs_hub_edge_fraction"]; got != 0.6 {
		t.Errorf("hub edge fraction gauge = %v, want 0.6", got)
	}
}

func TestStatusPage(t *testing.T) {
	tel := NewTelemetry(TelemetryOptions{Shards: 2})
	// Pin the rolling-QPS clock: with the real clock, the wall second
	// can tick over between feedTelemetry and the handler's QPS read,
	// leaving the 1-second window empty and the assertion flaky.
	clk := &fakeClock{ns: int64(1000 * time.Second)}
	tel.ok.nowNanos = clk.now
	tel.errs.nowNanos = clk.now
	tel.SetPoolGauge(func() (int, int) { return 1, 4 })
	tel.SetOrdering(OrderingInfo{
		Order: "dbg", PermNs: 100, RelabelNs: 900,
		HubVertices: 4, HubEdges: 250, TotalEdges: 1000,
	})
	feedTelemetry(tel)

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/bfs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if st.Pool.Size != 4 || st.Pool.Busy != 1 {
		t.Errorf("pool = %+v", st.Pool)
	}
	if st.QPS.S1 <= 0 || st.QPS.S60 <= 0 {
		t.Errorf("rolling QPS missing: %+v", st.QPS)
	}
	if st.ErrorRate.S60 <= 0 {
		t.Errorf("error rate missing (cancelled+shed fed): %+v", st.ErrorRate)
	}
	if st.Latency.Count != 12 || st.Latency.P50 == "" || st.Latency.P999 == "" {
		t.Errorf("latency block = %+v", st.Latency)
	}
	if st.Queries["ok"] != 10 || st.Queries["cancelled"] != 1 || st.Queries["shed"] != 1 {
		t.Errorf("queries = %v", st.Queries)
	}
	if st.Ordering == nil || st.Ordering.Order != "dbg" || st.Ordering.ReorderNs != 1000 ||
		st.Ordering.HubVertices != 4 || st.Ordering.HubEdgeFraction != 0.25 {
		t.Errorf("ordering block = %+v", st.Ordering)
	}
	if len(st.Slowest) == 0 {
		t.Fatal("no slowest entries")
	}
	// The cold recorder captures everything, so the slowest entry (the
	// 50ms cancelled query) must carry its per-level phase breakdown.
	top := st.Slowest[0]
	if top.Duration == "" || top.DurationNs != int64(50*time.Millisecond) {
		t.Errorf("slowest = %+v", top)
	}
	if !top.Captured || len(top.PerLevel) != 5 {
		t.Fatalf("slowest entry not captured with levels: %+v", top)
	}
	if top.PerLevel[0].PhaseNs["local-scan"] <= 0 {
		t.Errorf("per-level phase nanos missing: %+v", top.PerLevel[0])
	}
	// The load-balance view: straggler share, max/mean imbalance and
	// steal count must survive into the JSON per-level records.
	if lv := top.PerLevel[0]; lv.MaxWorkerEdges != 75 || lv.Imbalance != 1.5 || lv.Steals != 3 {
		t.Errorf("level load-balance fields = %+v, want maxWorkerEdges=75 imbalance=1.5 steals=3", lv)
	}

	// /metrics over HTTP round-trips the text format.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	validatePrometheus(t, string(body))
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.RecordQuery(0, QuerySample{Duration: time.Millisecond})
	tel.RecordShed(time.Now(), time.Millisecond)
	tel.SetPoolGauge(func() (int, int) { return 0, 0 })
	if tel.QPS(time.Second) != 0 || tel.ErrorRate(time.Second) != 0 {
		t.Error("nil telemetry reported rates")
	}
	if tel.Histogram() != nil || tel.Flight() != nil || tel.AttachedMetrics() != nil {
		t.Error("nil telemetry returned components")
	}
	st := tel.Status()
	if st.Latency.Count != 0 {
		t.Errorf("nil telemetry status: %+v", st)
	}
	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil telemetry wrote metrics: %q", sb.String())
	}
}

func TestPublishIdempotent(t *testing.T) {
	var m Metrics
	m.Searches.Add(1)
	// Twice on the same Metrics, and once on a second Metrics under the
	// same name: none may panic, and the first registration wins.
	m.Publish("mcbfs-test-publish")
	m.Publish("mcbfs-test-publish")
	var other Metrics
	other.Publish("mcbfs-test-publish")
	v := expvar.Get("mcbfs-test-publish")
	if v == nil {
		t.Fatal("variable not registered")
	}
	if got := v.String(); !strings.Contains(got, `"searches":1`) {
		t.Errorf("published var = %s, want the first Metrics' snapshot", got)
	}
}
