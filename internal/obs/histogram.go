package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free, sharded, log-bucketed latency histogram for
// the serving path. Buckets are logarithmic with histSubCount
// sub-buckets per power of two (relative bucket width 1/histSubCount,
// i.e. quantile estimates carry at most ~12.5% relative error before
// interpolation), covering nanoseconds to hours with the tails clamped
// into the first and last bucket.
//
// Recording is one uncontended atomic add per bucket/sum/max on the
// caller's shard and allocates nothing; shards are cache-line padded so
// concurrent recorders never share a line. Assign each concurrent
// recorder (e.g. each pooled Searcher) its own shard — a shard is
// multi-writer safe either way, sharding only removes the contention.
// Readers fold all shards into a HistogramSnapshot; a snapshot taken
// while recorders run is a consistent-enough view for monitoring (each
// bucket is exact, cross-bucket skew is bounded by the fold's duration).
type Histogram struct {
	shards []histShard
}

const (
	// histSubBits sub-bucket resolution: 2^histSubBits buckets per
	// power of two.
	histSubBits  = 3
	histSubCount = 1 << histSubBits

	// histBuckets covers [0ns, (8+7)<<40 ns ≈ 4.6h); slower samples
	// clamp into the last bucket, whose upper bound exports as +Inf.
	histMaxExp  = 40
	histBuckets = (histMaxExp + 2) * histSubCount
)

// histShard is one recorder's slice of the histogram, padded so the
// trailing counters of shard i and the leading buckets of shard i+1
// never share a cache line.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds
	max    atomic.Uint64 // high-water nanoseconds
	_      [64]byte
}

// NewHistogram builds a histogram with the given shard count (values
// below 1 become 1). Size shards to the number of concurrent recorders;
// extra recorders wrap around.
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	return &Histogram{shards: make([]histShard, shards)}
}

// Shards returns the shard count.
func (h *Histogram) Shards() int { return len(h.shards) }

// bucketIndex maps a non-negative nanosecond value to its bucket.
// Values below 2*histSubCount get exact unit buckets; above that,
// bucket (e+1)*histSubCount + s holds values whose top histSubBits+1
// bits are 1<<histSubBits | s at exponent e.
func bucketIndex(ns uint64) int {
	l := bits.Len64(ns)
	if l <= histSubBits+1 {
		return int(ns)
	}
	exp := l - histSubBits - 1
	sub := int(ns>>uint(exp)) & (histSubCount - 1)
	idx := (exp+1)*histSubCount + sub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketLower returns the smallest nanosecond value mapping to bucket
// idx (the inverse of bucketIndex).
func bucketLower(idx int) uint64 {
	if idx < 2*histSubCount {
		return uint64(idx)
	}
	exp := idx/histSubCount - 1
	sub := uint64(idx % histSubCount)
	return (histSubCount + sub) << uint(exp)
}

// bucketUpper returns the exclusive upper bound of bucket idx in
// nanoseconds. The last bucket is open-ended; callers exporting it
// should render +Inf.
func bucketUpper(idx int) uint64 {
	if idx >= histBuckets-1 {
		return ^uint64(0)
	}
	return bucketLower(idx + 1)
}

// Record adds one latency observation to the given shard (wrapped into
// range). It is safe for concurrent use, performs no allocation, and is
// a no-op on a nil receiver.
func (h *Histogram) Record(shard int, d time.Duration) {
	if h == nil {
		return
	}
	if shard < 0 {
		shard = 0
	}
	s := &h.shards[shard%len(h.shards)]
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	s.counts[bucketIndex(ns)].Add(1)
	s.sum.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramSnapshot is a folded, point-in-time view of a Histogram.
type HistogramSnapshot struct {
	// Counts[i] is the number of observations in bucket i; see
	// BucketBounds for the bucket's range.
	Counts [histBuckets]uint64
	// Count and SumNs are the total observation count and their sum in
	// nanoseconds; MaxNs the largest single observation.
	Count uint64
	SumNs uint64
	MaxNs uint64
}

// Snapshot folds every shard into one view. Nil-receiver safe (returns
// the zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			c := sh.counts[b].Load()
			s.Counts[b] += c
			s.Count += c
		}
		s.SumNs += sh.sum.Load()
		if m := sh.max.Load(); m > s.MaxNs {
			s.MaxNs = m
		}
	}
	return s
}

// BucketBounds returns bucket i's half-open nanosecond range
// [lo, hi); the last bucket's hi is MaxUint64 (render as +Inf).
func (s *HistogramSnapshot) BucketBounds(i int) (lo, hi uint64) {
	return bucketLower(i), bucketUpper(i)
}

// NumBuckets returns the bucket count (shared by every histogram).
func (s *HistogramSnapshot) NumBuckets() int { return histBuckets }

// Mean returns the mean observation, or 0 when empty.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by nearest rank with
// linear interpolation inside the landing bucket, so the estimate's
// error is bounded by the bucket's width (≤ 1/8 relative). q >= 1
// returns the exact maximum. Returns 0 when the histogram is empty.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(s.MaxNs)
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum <= rank {
			continue
		}
		lo, hi := bucketLower(i), bucketUpper(i)
		// Clamp the open-ended (or partially filled) top bucket to the
		// recorded maximum so tail quantiles never exceed it.
		if hi > s.MaxNs {
			hi = s.MaxNs + 1
		}
		if hi <= lo {
			return time.Duration(lo)
		}
		within := float64(rank-(cum-c)) + 0.5
		est := float64(lo) + float64(hi-lo)*within/float64(c)
		if est > float64(s.MaxNs) {
			est = float64(s.MaxNs)
		}
		return time.Duration(est)
	}
	return time.Duration(s.MaxNs)
}
