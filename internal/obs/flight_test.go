package obs

import (
	"testing"
	"time"
)

func sampleWithLevels(d time.Duration, levels int) QuerySample {
	s := QuerySample{
		Root:      7,
		Start:     time.Now(),
		Duration:  d,
		Levels:    levels,
		Reached:   100,
		Edges:     1000,
		Outcome:   OutcomeOK,
		Algorithm: "single-socket",
	}
	for l := 0; l < levels; l++ {
		lb := LevelBreakdown{Level: l, Duration: d / time.Duration(levels), Workers: 2}
		lb.Phases[PhaseLocalScan] = d / time.Duration(levels+1)
		lb.Edges = 100
		lb.MaxWorkerEdges = 75 // 1.5× the 2-worker mean
		lb.Steals = 3
		s.PerLevel = append(s.PerLevel, lb)
	}
	return s
}

func TestFlightRecorderCapturesAboveThreshold(t *testing.T) {
	// No histogram: the threshold stays at the configured floor.
	r := newFlightRecorder(8, 10*time.Millisecond, nil)
	r.note(sampleWithLevels(time.Millisecond, 3))    // fast: scalars only
	r.note(sampleWithLevels(20*time.Millisecond, 4)) // slow: captured
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// Most recent first.
	if recs[0].Duration != 20*time.Millisecond || !recs[0].Captured || len(recs[0].PerLevel) != 4 {
		t.Errorf("slow record not captured: %+v", recs[0])
	}
	if recs[1].Captured || recs[1].PerLevel != nil {
		t.Errorf("fast record retained a breakdown: %+v", recs[1])
	}
	if recs[0].Seq != 2 || recs[1].Seq != 1 {
		t.Errorf("seq = %d,%d want 2,1", recs[0].Seq, recs[1].Seq)
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r := newFlightRecorder(4, 0, nil)
	for i := 1; i <= 10; i++ {
		r.note(sampleWithLevels(time.Duration(i)*time.Millisecond, 2))
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want ring size 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(10 - i); rec.Seq != want {
			t.Errorf("records[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestFlightRecorderAdaptiveThreshold(t *testing.T) {
	h := NewHistogram(1)
	r := newFlightRecorder(32, 0, h)
	if r.Threshold() != 0 {
		t.Fatalf("cold threshold = %v, want 0 (capture everything)", r.Threshold())
	}
	// Feed the histogram a tight distribution around 1ms and push enough
	// records through to trigger a refresh: the threshold must rise to
	// the p99 neighbourhood, so a typical query stops being captured.
	for i := 0; i < flightRefreshEvery; i++ {
		h.Record(0, time.Millisecond)
		r.note(sampleWithLevels(time.Millisecond, 2))
	}
	th := r.Threshold()
	if th <= 500*time.Microsecond {
		t.Fatalf("threshold after refresh = %v, want ~p99 of 1ms distribution", th)
	}
	r.note(sampleWithLevels(th/2, 2))
	recs := r.Records()
	if recs[0].Captured {
		t.Errorf("query at threshold/2 was captured (threshold %v)", th)
	}
	r.note(sampleWithLevels(th*2, 2))
	if recs = r.Records(); !recs[0].Captured {
		t.Errorf("query at 2x threshold was not captured (threshold %v)", th)
	}
}

func TestFlightRecorderSlowest(t *testing.T) {
	r := newFlightRecorder(16, 0, nil)
	for _, ms := range []int{5, 1, 9, 3, 7} {
		r.note(sampleWithLevels(time.Duration(ms)*time.Millisecond, 1))
	}
	top := r.Slowest(3)
	if len(top) != 3 {
		t.Fatalf("slowest = %d entries, want 3", len(top))
	}
	want := []time.Duration{9 * time.Millisecond, 7 * time.Millisecond, 5 * time.Millisecond}
	for i, rec := range top {
		if rec.Duration != want[i] {
			t.Errorf("slowest[%d] = %v, want %v", i, rec.Duration, want[i])
		}
	}
}

func TestFlightRecorderRecordsAreCopies(t *testing.T) {
	r := newFlightRecorder(2, 0, nil)
	r.note(sampleWithLevels(time.Second, 3))
	recs := r.Records()
	// Overwrite the slot by wrapping the ring; the copy must not change.
	r.note(sampleWithLevels(time.Millisecond, 1))
	r.note(sampleWithLevels(2*time.Millisecond, 1))
	r.note(sampleWithLevels(3*time.Millisecond, 1))
	if recs[0].Duration != time.Second || len(recs[0].PerLevel) != 3 {
		t.Errorf("dumped record mutated by later notes: %+v", recs[0])
	}
}

func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{
		OutcomeOK:        "ok",
		OutcomeCancelled: "cancelled",
		OutcomeShed:      "shed",
		OutcomePanic:     "panic",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}
