package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestWorkerRecPadding(t *testing.T) {
	if s := unsafe.Sizeof(WorkerRec{}); s%64 != 0 {
		t.Errorf("WorkerRec size %d is not a multiple of the cache line", s)
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	wr := c.Worker(0)
	if wr != nil {
		t.Fatalf("nil collector returned non-nil worker")
	}
	start := wr.PhaseStart()
	if !start.IsZero() {
		t.Errorf("nil WorkerRec.PhaseStart touched the clock: %v", start)
	}
	// None of these may panic.
	wr.PhaseEnd(PhaseLocalScan, start)
	wr.RemoteBatch(1, 10)
	wr.NextLevel()
	c.EndLevel(0, 0, Counters{}, true)
	c.AddChannelSample(0, 1, 1, 1, 1)
	if c.Finish() != nil {
		t.Errorf("nil collector produced a trace")
	}
}

func TestCollectorFoldAndParity(t *testing.T) {
	c := NewCollector(Config{Workers: 2, Sockets: 1, Algorithm: "test", Trace: true})

	// Level 0: both workers record a local-scan phase.
	for w := 0; w < 2; w++ {
		wr := c.Worker(w)
		wr.workerState.phases[0][PhaseLocalScan] = time.Duration(w+1) * time.Millisecond
		wr.RemoteBatch(0, 5)
	}
	c.EndLevel(0, 3*time.Millisecond, Counters{Frontier: 7, Edges: 70}, true)
	c.Worker(0).NextLevel()
	c.Worker(1).NextLevel()

	// Level 1 writes must land in the other parity buffer and not leak
	// into level 0's folded record.
	c.Worker(0).workerState.phases[1][PhaseBarrierWait] = 4 * time.Millisecond
	c.EndLevel(3*time.Millisecond, 4*time.Millisecond, Counters{Frontier: 1}, false)

	tr := c.Finish()
	if tr == nil {
		t.Fatal("no trace")
	}
	if len(tr.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(tr.Levels))
	}
	b0 := tr.Levels[0]
	if b0.Phases[PhaseLocalScan] != 3*time.Millisecond {
		t.Errorf("level 0 local-scan = %v, want 3ms", b0.Phases[PhaseLocalScan])
	}
	if b0.Phases[PhaseBarrierWait] != 0 {
		t.Errorf("level 0 barrier-wait leaked from level 1: %v", b0.Phases[PhaseBarrierWait])
	}
	if b0.RemoteTuples != 10 || b0.RemoteBatches != 2 {
		t.Errorf("level 0 remote = %d tuples / %d batches, want 10/2", b0.RemoteTuples, b0.RemoteBatches)
	}
	if b0.Frontier != 7 || b0.Edges != 70 {
		t.Errorf("level 0 counters = %+v", b0.Counters)
	}
	b1 := tr.Levels[1]
	if b1.Phases[PhaseBarrierWait] != 4*time.Millisecond {
		t.Errorf("level 1 barrier-wait = %v, want 4ms", b1.Phases[PhaseBarrierWait])
	}
	if b1.RemoteTuples != 0 {
		t.Errorf("level 1 remote tuples not cleared: %d", b1.RemoteTuples)
	}
	// Folding clears the slots for reuse two levels later.
	if got := c.Worker(0).workerState.phases[0][PhaseLocalScan]; got != 0 {
		t.Errorf("parity-0 slot not cleared after fold: %v", got)
	}
}

func TestSpansRecorded(t *testing.T) {
	c := NewCollector(Config{Workers: 1, Trace: true})
	wr := c.Worker(0)
	start := wr.PhaseStart()
	time.Sleep(time.Millisecond)
	wr.PhaseEnd(PhaseLocalScan, start)
	c.EndLevel(0, time.Millisecond, Counters{}, false)
	tr := c.Finish()
	if len(tr.Timelines) != 1 || len(tr.Timelines[0]) != 1 {
		t.Fatalf("timelines = %v", tr.Timelines)
	}
	s := tr.Timelines[0][0]
	if s.Phase != PhaseLocalScan || s.Level != 0 || s.Dur <= 0 || s.Start < 0 {
		t.Errorf("span = %+v", s)
	}
}

func TestTracerHooks(t *testing.T) {
	var mu sync.Mutex
	var events []string
	rec := func(e string) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	tr := TracerFuncs{
		LevelStart:  func(level int) { rec("start") },
		LevelEnd:    func(level int, b LevelBreakdown) { rec("end") },
		RemoteBatch: func(level, worker, toSocket, tuples int) { rec("batch") },
		BarrierWait: func(level, worker int, wait time.Duration) { rec("wait") },
	}
	c := NewCollector(Config{Workers: 1, Tracer: tr})
	wr := c.Worker(0)
	wr.RemoteBatch(1, 3)
	wr.PhaseEnd(PhaseBarrierWait, wr.PhaseStart())
	c.EndLevel(0, time.Millisecond, Counters{}, true) // fires end + next start
	c.EndLevel(0, time.Millisecond, Counters{}, false)
	want := []string{"start", "batch", "wait", "end", "start", "end"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Errorf("events = %v, want %v", events, want)
	}
}

func TestTracerFuncsNilFields(t *testing.T) {
	// A zero TracerFuncs must be usable.
	var tr TracerFuncs
	tr.OnLevelStart(0)
	tr.OnLevelEnd(0, LevelBreakdown{})
	tr.OnRemoteBatch(0, 0, 0, 0)
	tr.OnBarrierWait(0, 0, 0)
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector(Config{Workers: 2, Sockets: 2, Algorithm: "multi-socket", Trace: true})
	for w := 0; w < 2; w++ {
		wr := c.Worker(w)
		wr.PhaseEnd(PhaseLocalScan, wr.PhaseStart())
		wr.PhaseEnd(PhaseBarrierWait, wr.PhaseStart())
	}
	c.AddChannelSample(0, 100, 3, 80, 64)
	c.AddChannelSample(1, 50, 1, 50, 50)
	c.EndLevel(0, time.Millisecond, Counters{Frontier: 1}, false)

	var buf bytes.Buffer
	if err := c.Finish().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var workerTracks, spans, levels, chans int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "worker") {
				workerTracks++
			}
		case e.Ph == "X" && strings.HasPrefix(e.Name, "level"):
			levels++
		case e.Ph == "X" && strings.Contains(e.Name, "tuples"):
			chans++
		case e.Ph == "X":
			spans++
		}
	}
	if workerTracks != 2 {
		t.Errorf("worker tracks = %d, want 2", workerTracks)
	}
	if spans != 4 {
		t.Errorf("phase spans = %d, want 4", spans)
	}
	if levels != 1 {
		t.Errorf("level events = %d, want 1", levels)
	}
	if chans != 2 {
		t.Errorf("channel events = %d, want 2", chans)
	}
}

func TestWriteBreakdown(t *testing.T) {
	c := NewCollector(Config{Workers: 2, Trace: true})
	wr := c.Worker(0)
	wr.workerState.phases[0][PhaseLocalScan] = 2 * time.Millisecond
	c.EndLevel(0, 2*time.Millisecond, Counters{Frontier: 9, Edges: 81}, false)
	var buf bytes.Buffer
	if err := c.Finish().WriteBreakdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 2ms of scan over 2 workers × 2ms = 50%.
	if !strings.Contains(out, "50.0") || !strings.Contains(out, "total") {
		t.Errorf("breakdown output:\n%s", out)
	}
}

func TestMetrics(t *testing.T) {
	var m Metrics
	tr := m.Tracer()
	tr.OnLevelStart(0)
	tr.OnLevelStart(1) // not a new search
	b := LevelBreakdown{Counters: Counters{Frontier: 4, Edges: 40, BitmapReads: 30, AtomicOps: 5}}
	b.Phases[PhaseLocalScan] = time.Millisecond
	tr.OnLevelEnd(0, b)
	tr.OnRemoteBatch(0, 0, 1, 64)
	tr.OnBarrierWait(0, 0, time.Microsecond)

	s := m.Snapshot()
	want := map[string]int64{
		"searches": 1, "levelsDone": 1, "frontier": 4, "edges": 40,
		"bitmapReads": 30, "atomicOps": 5, "remoteBatches": 1, "remoteTuples": 64,
		"barrierWaitNs": 1000, "localScanNs": 1e6,
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("%s = %d, want %d", k, s[k], v)
		}
	}
}

func TestMultiTracer(t *testing.T) {
	var a, b Metrics
	mt := MultiTracer(a.Tracer(), nil, b.Tracer())
	mt.OnLevelStart(0)
	mt.OnLevelEnd(0, LevelBreakdown{Counters: Counters{Edges: 7}})
	mt.OnRemoteBatch(0, 0, 0, 2)
	mt.OnBarrierWait(0, 0, time.Millisecond)
	for _, m := range []*Metrics{&a, &b} {
		if m.Searches.Load() != 1 || m.Edges.Load() != 7 || m.RemoteTuples.Load() != 2 {
			t.Errorf("metrics not fanned out: %+v", m.Snapshot())
		}
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhaseLocalScan:     "local-scan",
		PhaseQueueDrain:    "queue-drain",
		PhaseBarrierWait:   "barrier-wait",
		PhaseFrontierBuild: "frontier-build",
		PhaseBottomUpScan:  "bottom-up-scan",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}
