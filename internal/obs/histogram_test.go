package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexInverse(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, bounds
	// must be strictly increasing, and the bucket ranges must tile the
	// value space without gaps.
	for i := 0; i < histBuckets; i++ {
		lo := bucketLower(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)=%d) = %d", i, lo, got)
		}
		if i > 0 && bucketLower(i) != bucketUpper(i-1) {
			t.Fatalf("gap between bucket %d upper (%d) and bucket %d lower (%d)",
				i-1, bucketUpper(i-1), i, bucketLower(i))
		}
		if i < histBuckets-1 {
			// The last in-range value of bucket i still maps to i.
			if got := bucketIndex(bucketUpper(i) - 1); got != i {
				t.Fatalf("bucketIndex(upper(%d)-1) = %d", i, got)
			}
		}
	}
	// Overflow clamps into the last bucket.
	if got := bucketIndex(^uint64(0)); got != histBuckets-1 {
		t.Errorf("max value bucket = %d, want %d", got, histBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(4)
	// 1000 samples uniform over (0, 100ms]: quantile estimates must land
	// within one bucket width (12.5% relative) of the true value.
	for i := 1; i <= 1000; i++ {
		h.Record(i%4, time.Duration(i)*100*time.Microsecond)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d, want 1000", snap.Count)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 50 * time.Millisecond},
		{0.9, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	} {
		got := snap.Quantile(tc.q)
		if relerr := math.Abs(float64(got)-float64(tc.want)) / float64(tc.want); relerr > 0.13 {
			t.Errorf("p%g = %v, want %v ± 13%% (err %.1f%%)", tc.q*100, got, tc.want, 100*relerr)
		}
	}
	if got := snap.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want exact max 100ms", got)
	}
	if mean := snap.Mean(); math.Abs(float64(mean)-float64(50050*time.Microsecond)) > float64(time.Microsecond) {
		t.Errorf("mean = %v, want ~50.05ms", mean)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Record(0, time.Second) // must not panic
	snap := nilH.Snapshot()
	if snap.Count != 0 || snap.Quantile(0.5) != 0 || snap.Mean() != 0 {
		t.Errorf("nil histogram snapshot not empty: %+v", snap)
	}
	h := NewHistogram(0) // clamps to 1 shard
	if h.Shards() != 1 {
		t.Errorf("shards = %d, want 1", h.Shards())
	}
	h.Record(-3, -time.Second) // negative shard and duration both clamp
	if s := h.Snapshot(); s.Count != 1 || s.Counts[0] != 1 {
		t.Errorf("negative-duration record landed wrong: %+v", s.Counts[:4])
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram(8)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(g, time.Duration(i+1)*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	if snap.MaxNs != uint64(perG*int(time.Microsecond)) {
		t.Errorf("max = %d, want %d", snap.MaxNs, perG*int(time.Microsecond))
	}
}

func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := NewHistogram(2)
	if allocs := testing.AllocsPerRun(100, func() {
		h.Record(1, 3*time.Millisecond)
	}); allocs != 0 {
		t.Errorf("Record allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(0, time.Duration(i))
	}
}
