package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a set of live, concurrency-safe counters fed by a Tracer
// and publishable through expvar, for watching long-running BFS
// workloads (e.g. bfsbench -pprof :6060, then
// curl localhost:6060/debug/vars). The zero value is ready to use; one
// Metrics may be shared by any number of concurrent searches.
type Metrics struct {
	// Searches counts BFS runs started; LevelsDone completed levels.
	Searches   atomic.Int64
	LevelsDone atomic.Int64
	// Frontier and Edges accumulate the folded per-level counters.
	Frontier    atomic.Int64
	Edges       atomic.Int64
	BitmapReads atomic.Int64
	AtomicOps   atomic.Int64
	// RemoteBatches and RemoteTuples count inter-socket channel flushes.
	RemoteBatches atomic.Int64
	RemoteTuples  atomic.Int64
	// BarrierWaitNs, LocalScanNs and QueueDrainNs accumulate worker
	// phase time in nanoseconds.
	BarrierWaitNs atomic.Int64
	LocalScanNs   atomic.Int64
	QueueDrainNs  atomic.Int64
	// Cancelled counts queries that returned early on context
	// cancellation or deadline expiry; Shed counts queries refused at
	// admission because the pool stayed saturated past their deadline;
	// Recovered counts panicking queries whose Searcher was discarded
	// and rebuilt. These are fed by the serving layer (mcbfs.Pool)
	// rather than by the Tracer callbacks below.
	Cancelled atomic.Int64
	Shed      atomic.Int64
	Recovered atomic.Int64
	// TimedOut counts protocol-level roots abandoned at a per-root
	// deadline (graph500 -deadline) — distinct from Cancelled, which the
	// serving layer feeds per query.
	TimedOut atomic.Int64
	// BatchTraversals counts MS-BFS batch traversals; BatchLanes the
	// lanes (queries) they carried, so BatchLanes/BatchTraversals is the
	// mean batch width. BatchEdges accumulates the adjacency entries the
	// shared traversals actually scanned and BatchLaneEdges the entries
	// the lanes would have scanned as single-source searches —
	// BatchLaneEdges/BatchEdges is the live bandwidth-amortization
	// factor. Fed by core.BatchSearcher via BatchOptions.Metrics.
	BatchTraversals atomic.Int64
	BatchLanes      atomic.Int64
	BatchEdges      atomic.Int64
	BatchLaneEdges  atomic.Int64
	// ReorderNs accumulates time spent computing and applying
	// locality-optimized vertex orderings (graph.Reorder), fed by the
	// serving layer when a pool relabels its graph at construction. The
	// counter against which ordering TEPS gains amortize.
	ReorderNs atomic.Int64
	// Swaps counts graph snapshot hot-swaps installed by the serving
	// layer (mcbfs.Pool.Swap); SwapNs accumulates their end-to-end
	// latency — building the new epoch's Searchers (reordering
	// included) plus the atomic install. SwapDegraded counts swap or
	// rebind attempts that failed and left serving on the stale
	// snapshot: the degradation rule made visible.
	Swaps        atomic.Int64
	SwapNs       atomic.Int64
	SwapDegraded atomic.Int64
	// IngestedEdges counts edges buffered through Pool.Ingest awaiting
	// the next rebuild; SnapshotsDrained counts retired snapshots whose
	// last borrower has returned and whose Searchers have all been
	// closed — when it equals Swaps (plus one after Close), no stale
	// epoch still holds worker goroutines.
	IngestedEdges    atomic.Int64
	SnapshotsDrained atomic.Int64
}

// Snapshot returns the current counter values keyed by name.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"searches":      m.Searches.Load(),
		"levelsDone":    m.LevelsDone.Load(),
		"frontier":      m.Frontier.Load(),
		"edges":         m.Edges.Load(),
		"bitmapReads":   m.BitmapReads.Load(),
		"atomicOps":     m.AtomicOps.Load(),
		"remoteBatches": m.RemoteBatches.Load(),
		"remoteTuples":  m.RemoteTuples.Load(),
		"barrierWaitNs": m.BarrierWaitNs.Load(),
		"localScanNs":   m.LocalScanNs.Load(),
		"queueDrainNs":  m.QueueDrainNs.Load(),
		"cancelled":     m.Cancelled.Load(),
		"shed":          m.Shed.Load(),
		"recovered":     m.Recovered.Load(),
		"timedOut":      m.TimedOut.Load(),

		"batchTraversals": m.BatchTraversals.Load(),
		"batchLanes":      m.BatchLanes.Load(),
		"batchEdges":      m.BatchEdges.Load(),
		"batchLaneEdges":  m.BatchLaneEdges.Load(),
		"reorderNs":       m.ReorderNs.Load(),

		"swaps":            m.Swaps.Load(),
		"swapNs":           m.SwapNs.Load(),
		"swapDegraded":     m.SwapDegraded.Load(),
		"ingestedEdges":    m.IngestedEdges.Load(),
		"snapshotsDrained": m.SnapshotsDrained.Load(),
	}
}

// publishMu serializes Publish's check-then-register against the
// process-wide expvar registry, which offers no atomic try-publish.
var publishMu sync.Mutex

// Publish registers the metrics under name in the process-wide expvar
// registry (served at /debug/vars by any net/http server using the
// default mux). Re-publishing is idempotent rather than a panic: when
// name is already registered — by this Metrics or anything else, since
// expvar offers no way to replace a variable — Publish leaves the
// existing variable in place and returns.
func (m *Metrics) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

// Tracer returns a Tracer that feeds the metrics; attach it to
// Options.Tracer. It is safe for concurrent use and may be combined
// with other tracers via MultiTracer.
func (m *Metrics) Tracer() Tracer {
	return metricsTracer{m}
}

type metricsTracer struct{ m *Metrics }

func (t metricsTracer) OnLevelStart(level int) {
	if level == 0 {
		t.m.Searches.Add(1)
	}
}

func (t metricsTracer) OnLevelEnd(level int, b LevelBreakdown) {
	t.m.LevelsDone.Add(1)
	t.m.Frontier.Add(b.Frontier)
	t.m.Edges.Add(b.Edges)
	t.m.BitmapReads.Add(b.BitmapReads)
	t.m.AtomicOps.Add(b.AtomicOps)
	t.m.LocalScanNs.Add(int64(b.Phases[PhaseLocalScan]))
	t.m.QueueDrainNs.Add(int64(b.Phases[PhaseQueueDrain]))
}

func (t metricsTracer) OnRemoteBatch(level, worker, toSocket, tuples int) {
	t.m.RemoteBatches.Add(1)
	t.m.RemoteTuples.Add(int64(tuples))
}

func (t metricsTracer) OnBarrierWait(level, worker int, wait time.Duration) {
	t.m.BarrierWaitNs.Add(int64(wait))
}

// MultiTracer fans callbacks out to every tracer in order.
func MultiTracer(tracers ...Tracer) Tracer {
	ts := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			ts = append(ts, t)
		}
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

func (m multiTracer) OnLevelStart(level int) {
	for _, t := range m {
		t.OnLevelStart(level)
	}
}

func (m multiTracer) OnLevelEnd(level int, b LevelBreakdown) {
	for _, t := range m {
		t.OnLevelEnd(level, b)
	}
}

func (m multiTracer) OnRemoteBatch(level, worker, toSocket, tuples int) {
	for _, t := range m {
		t.OnRemoteBatch(level, worker, toSocket, tuples)
	}
}

func (m multiTracer) OnBarrierWait(level, worker int, wait time.Duration) {
	for _, t := range m {
		t.OnBarrierWait(level, worker, wait)
	}
}
