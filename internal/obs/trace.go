package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace is the structured record of one BFS run: one timeline per
// worker, one folded breakdown per level, and one sample per
// inter-socket channel per level.
type Trace struct {
	// Workers and Sockets are the run's shape; Algorithm the tier name.
	Workers   int
	Sockets   int
	Algorithm string
	// Timelines[w] is worker w's phase spans in chronological order.
	Timelines [][]Span
	// Levels holds one breakdown per BFS level.
	Levels []LevelBreakdown
	// Channels holds per-level samples of the inter-socket channels
	// (multi-socket tier only).
	Channels []ChannelSample
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the trace in Chrome trace-event JSON: one
// track ("thread") per worker carrying its phase spans, one track for
// the level spans, and one track per inter-socket channel carrying its
// per-level flush statistics. Open the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	const pid = 1
	levelTid := t.Workers
	chanTid := func(socket int) int { return t.Workers + 1 + socket }

	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": fmt.Sprintf("mcbfs %s (%d workers)", t.Algorithm, t.Workers)},
	}}
	meta := func(tid int, name string) {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for w := 0; w < t.Workers; w++ {
		meta(w, fmt.Sprintf("worker %d", w))
	}
	meta(levelTid, "levels")
	for s := 0; s < t.Sockets; s++ {
		if t.Sockets > 1 {
			meta(chanTid(s), fmt.Sprintf("channel socket %d", s))
		}
	}

	for _, b := range t.Levels {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("level %d", b.Level), Ph: "X", Pid: pid, Tid: levelTid,
			Ts: usec(b.Start), Dur: usec(b.Duration),
			Args: map[string]any{
				"frontier": b.Frontier, "edges": b.Edges,
				"bitmapReads": b.BitmapReads, "atomicOps": b.AtomicOps,
				"remoteSends": b.RemoteSends, "maxWorkerEdges": b.MaxWorkerEdges,
				"steals": b.Steals, "imbalance": b.Imbalance(),
			},
		})
	}
	for wk, tl := range t.Timelines {
		for _, s := range tl {
			events = append(events, chromeEvent{
				Name: s.Phase.String(), Ph: "X", Pid: pid, Tid: wk,
				Ts: usec(s.Start), Dur: usec(s.Dur),
				Args: map[string]any{"level": s.Level},
			})
		}
	}
	for _, cs := range t.Channels {
		b := t.levelByIndex(cs.Level)
		if b == nil || cs.Tuples == 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%d tuples / %d batches", cs.Tuples, cs.Batches),
			Ph:   "X", Pid: pid, Tid: chanTid(cs.Socket),
			Ts: usec(b.Start), Dur: usec(b.Duration),
			Args: map[string]any{
				"level": cs.Level, "tuples": cs.Tuples, "batches": cs.Batches,
				"maxOccupancy": cs.MaxLen, "maxBatch": cs.MaxBatch,
			},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

func (t *Trace) levelByIndex(level int) *LevelBreakdown {
	for i := range t.Levels {
		if t.Levels[i].Level == level {
			return &t.Levels[i]
		}
	}
	return nil
}

// WriteBreakdown writes the per-level phase table in the style of the
// paper's per-level figures: each phase column is the share of total
// worker time (Workers × level duration) spent in that phase, and imb
// is the edge-load imbalance factor (straggler's edge share over the
// mean share; 1.00 is perfect balance). The total row's imb divides the
// per-level stragglers' summed edges — the traversal's critical path —
// by the mean, which is what the level barriers actually serialize on.
func (t *Trace) WriteBreakdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-6s %-12s %-10s %-12s %5s %6s %6s %7s %8s %7s %8s  %s\n",
		"level", "duration", "frontier", "edges", "imb", "steals",
		"scan%", "drain%", "barrier%", "build%", "bottomup%", "remote"); err != nil {
		return err
	}
	var tot LevelBreakdown
	tot.Workers = t.Workers
	for _, b := range t.Levels {
		if err := t.writeBreakdownRow(w, fmt.Sprintf("%d", b.Level), b); err != nil {
			return err
		}
		tot.Duration += b.Duration
		tot.Frontier += b.Frontier
		tot.Edges += b.Edges
		tot.MaxWorkerEdges += b.MaxWorkerEdges
		tot.Steals += b.Steals
		tot.RemoteTuples += b.RemoteTuples
		tot.RemoteBatches += b.RemoteBatches
		for p := range tot.Phases {
			tot.Phases[p] += b.Phases[p]
		}
	}
	return t.writeBreakdownRow(w, "total", tot)
}

func (t *Trace) writeBreakdownRow(w io.Writer, label string, b LevelBreakdown) error {
	workerTime := float64(t.Workers) * float64(b.Duration)
	pct := func(p Phase) float64 {
		if workerTime <= 0 {
			return 0
		}
		return 100 * float64(b.Phases[p]) / workerTime
	}
	_, err := fmt.Fprintf(w, "%-6s %-12s %-10d %-12d %5.2f %6d %6.1f %7.1f %8.1f %7.1f %8.1f  %d\n",
		label, b.Duration.Round(time.Microsecond), b.Frontier, b.Edges,
		b.Imbalance(), b.Steals,
		pct(PhaseLocalScan), pct(PhaseQueueDrain), pct(PhaseBarrierWait),
		pct(PhaseFrontierBuild), pct(PhaseBottomUpScan), b.RemoteTuples)
	return err
}
