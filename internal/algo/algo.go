// Package algo implements the graph analyses the paper's introduction
// motivates BFS with: connected components for community analysis,
// shortest paths between entities of a semantic graph, st-connectivity,
// and reachability/diameter estimates. Each is built on the package
// core BFS, demonstrating it as the building block the paper positions
// it to be.
package algo

import (
	"errors"
	"fmt"
	"math/bits"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
)

// NoComponent labels vertices not assigned to any component (cannot
// occur in ConnectedComponents output; exported for symmetry with
// core.NoParent).
const NoComponent = int32(-1)

// Components is the result of a connected-components run.
type Components struct {
	// Label[v] is the component id of vertex v, in [0, Count).
	Label []int32
	// Count is the number of components.
	Count int
	// Sizes[c] is the number of vertices in component c.
	Sizes []int64
}

// GiantFraction returns the fraction of vertices in the largest
// component — the quantity community-analysis studies track on
// power-law graphs.
func (c *Components) GiantFraction() float64 {
	if len(c.Label) == 0 {
		return 0
	}
	var max int64
	for _, s := range c.Sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(len(c.Label))
}

// ConnectedComponents labels the weakly connected components of g
// (edges are treated as undirected) by multi-source BFS: each batch
// seeds one MS-BFS lane per candidate component root, so up to
// core.MaxLanes components are flooded in a single shared adjacency
// pass. The long tail of small components — where the classic
// one-BFS-per-component loop pays a full frontier scan each — costs
// 1/64th the passes; the giant component of a power-law graph still
// parallelizes across opt.Threads workers like a single BFS.
//
// opt's Threads, PinThreads, Telemetry and TelemetryShard configure
// the underlying MS-BFS session (Algorithm is ignored: the lane engine
// is its own tier). If g is already symmetric, pass symmetric=true to
// skip building the undirected copy.
func ConnectedComponents(g *graph.Graph, symmetric bool, opt core.Options) (*Components, error) {
	if g == nil {
		return nil, errors.New("algo: nil graph")
	}
	u := g
	if !symmetric {
		u = g.Undirected()
	}
	n := u.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = NoComponent
	}
	// One session covers every batch: after the giant component's
	// batch, later batches pay only an O(touched) reset each instead
	// of re-zeroing n-sized arrays.
	bs, err := core.NewBatchSearcher(u, core.BatchOptions{
		Width:          core.MaxLanes,
		Threads:        opt.Threads,
		PinThreads:     opt.PinThreads,
		Telemetry:      opt.Telemetry,
		TelemetryShard: opt.TelemetryShard,
	})
	if err != nil {
		return nil, err
	}
	defer bs.Close()
	var sizes []int64
	roots := make([]graph.Vertex, 0, core.MaxLanes)
	laneComp := make([]int32, core.MaxLanes)
	next := int32(0)
	for v := 0; v < n; {
		// Gather the next batch of candidate roots: the lowest
		// unlabeled vertices. Two candidates may share a component —
		// the lane-inheritance rule below resolves that after the
		// search. Everything a lane can reach is unlabeled (a weak
		// component is always flooded whole), so labels stay stable
		// across batches.
		roots = roots[:0]
		for ; v < n && len(roots) < core.MaxLanes; v++ {
			if label[v] == NoComponent {
				roots = append(roots, graph.Vertex(v))
			}
		}
		if len(roots) == 0 {
			break
		}
		res, err := bs.Search(roots)
		if err != nil {
			return nil, err
		}
		// Lane i founds a new component iff it is the lowest lane to
		// reach its own root; otherwise an earlier lane of the same
		// component flooded it and lane i inherits that label.
		// Candidates ascend, so components keep the sequential loop's
		// ascending-smallest-member numbering.
		for i, r := range roots {
			low := bits.TrailingZeros64(res.SeenMask(r))
			if low == i {
				laneComp[i] = next
				next++
				sizes = append(sizes, 0)
			} else {
				laneComp[i] = laneComp[low]
			}
		}
		for _, w := range res.Touched() {
			c := laneComp[bits.TrailingZeros64(res.SeenMask(w))]
			label[w] = c
			sizes[c]++
		}
	}
	return &Components{Label: label, Count: int(next), Sizes: sizes}, nil
}

// ShortestPath returns a shortest (minimum-hop) path from s to t in g,
// inclusive of both endpoints, or ok=false if t is unreachable from s.
func ShortestPath(g *graph.Graph, s, t graph.Vertex, opt core.Options) (path []graph.Vertex, ok bool, err error) {
	if g == nil {
		return nil, false, errors.New("algo: nil graph")
	}
	n := g.NumVertices()
	if int(s) >= n || int(t) >= n {
		return nil, false, fmt.Errorf("algo: endpoint out of range [0,%d)", n)
	}
	if s == t {
		return []graph.Vertex{s}, true, nil
	}
	res, err := core.BFS(g, s, opt)
	if err != nil {
		return nil, false, err
	}
	if res.Parents[t] == core.NoParent {
		return nil, false, nil
	}
	var rev []graph.Vertex
	for v := t; ; v = graph.Vertex(res.Parents[v]) {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	path = make([]graph.Vertex, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, true, nil
}

// Distance returns the hop distance from s to t, or -1 if unreachable.
func Distance(g *graph.Graph, s, t graph.Vertex, opt core.Options) (int, error) {
	path, ok, err := ShortestPath(g, s, t, opt)
	if err != nil {
		return 0, err
	}
	if !ok {
		return -1, nil
	}
	return len(path) - 1, nil
}

// STConnectivity reports whether t is reachable from s. It runs a
// bidirectional search — a forward frontier from s and a backward
// frontier from t over the transpose — expanding the smaller frontier
// each step, the strategy of the Bader-Madduri MTA-2 st-connectivity
// kernel the paper compares against. The transpose is computed
// internally; for repeated queries precompute it once and use
// STConnectivityWithTranspose.
func STConnectivity(g *graph.Graph, s, t graph.Vertex) (bool, error) {
	if g == nil {
		return false, errors.New("algo: nil graph")
	}
	return STConnectivityWithTranspose(g, g.Transpose(), s, t)
}

// STConnectivityWithTranspose is STConnectivity with a caller-supplied
// transpose of g.
func STConnectivityWithTranspose(g, gt *graph.Graph, s, t graph.Vertex) (bool, error) {
	n := g.NumVertices()
	if int(s) >= n || int(t) >= n {
		return false, fmt.Errorf("algo: endpoint out of range [0,%d)", n)
	}
	if gt.NumVertices() != n || gt.NumEdges() != g.NumEdges() {
		return false, errors.New("algo: transpose does not match graph")
	}
	if s == t {
		return true, nil
	}
	const (
		unseen = 0
		fwd    = 1
		bwd    = 2
	)
	mark := make([]uint8, n)
	mark[s], mark[t] = fwd, bwd
	fq := []graph.Vertex{s}
	bq := []graph.Vertex{t}
	// Expand the cheaper side first: compare pending edge work.
	edgeWork := func(g *graph.Graph, q []graph.Vertex) int64 {
		var w int64
		for _, v := range q {
			w += int64(g.Degree(v))
		}
		return w
	}
	for len(fq) > 0 && len(bq) > 0 {
		if edgeWork(g, fq) <= edgeWork(gt, bq) {
			var next []graph.Vertex
			for _, u := range fq {
				for _, v := range g.Neighbors(u) {
					switch mark[v] {
					case bwd:
						return true, nil
					case unseen:
						mark[v] = fwd
						next = append(next, v)
					}
				}
			}
			fq = next
		} else {
			var next []graph.Vertex
			for _, u := range bq {
				for _, v := range gt.Neighbors(u) {
					switch mark[v] {
					case fwd:
						return true, nil
					case unseen:
						mark[v] = bwd
						next = append(next, v)
					}
				}
			}
			bq = next
		}
	}
	return false, nil
}

// MultiSourceBFS runs one BFS from a virtual super-source connected to
// all roots: the returned depths hold each vertex's distance to the
// *nearest* root (NoDepth when unreachable from every root), and
// nearest holds which root claimed it. Community seeding and landmark
// distance schemes use exactly this primitive.
func MultiSourceBFS(g *graph.Graph, roots []graph.Vertex) (depths []int32, nearest []int32, err error) {
	if g == nil {
		return nil, nil, errors.New("algo: nil graph")
	}
	n := g.NumVertices()
	depths = make([]int32, n)
	nearest = make([]int32, n)
	for i := range depths {
		depths[i] = core.NoDepth
		nearest[i] = -1
	}
	var frontier []graph.Vertex
	for i, r := range roots {
		if int(r) >= n {
			return nil, nil, fmt.Errorf("algo: root %d out of range [0,%d)", r, n)
		}
		if depths[r] == core.NoDepth {
			depths[r] = 0
			nearest[r] = int32(i)
			frontier = append(frontier, r)
		}
	}
	depth := int32(0)
	for len(frontier) > 0 {
		depth++
		var next []graph.Vertex
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if depths[v] == core.NoDepth {
					depths[v] = depth
					nearest[v] = nearest[u]
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return depths, nearest, nil
}

// Eccentricity returns the greatest BFS depth from root within its
// reachable set, i.e. Result.Levels-1.
func Eccentricity(g *graph.Graph, root graph.Vertex, opt core.Options) (int, error) {
	res, err := core.BFS(g, root, opt)
	if err != nil {
		return 0, err
	}
	return res.Levels - 1, nil
}

// ApproxDiameter lower-bounds the diameter of g by the double-sweep
// heuristic: BFS from start, then BFS from the deepest vertex found.
// On trees the bound is exact; on general graphs it is a strong lower
// bound widely used for power-law networks.
func ApproxDiameter(g *graph.Graph, start graph.Vertex, opt core.Options) (int, error) {
	if g == nil {
		return 0, errors.New("algo: nil graph")
	}
	res, err := core.BFS(g, start, opt)
	if err != nil {
		return 0, err
	}
	depths := core.TreeDepths(res.Parents, start)
	far := start
	best := int32(0)
	for v, d := range depths {
		if d != core.NoDepth && d > best {
			best, far = d, graph.Vertex(v)
		}
	}
	ecc, err := Eccentricity(g, far, opt)
	if err != nil {
		return 0, err
	}
	if int(best) > ecc {
		return int(best), nil
	}
	return ecc, nil
}

// Reachable returns the number of vertices reachable from root,
// including root itself.
func Reachable(g *graph.Graph, root graph.Vertex, opt core.Options) (int64, error) {
	res, err := core.BFS(g, root, opt)
	if err != nil {
		return 0, err
	}
	return res.Reached, nil
}
