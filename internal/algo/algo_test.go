package algo

import (
	"testing"
	"testing/quick"

	"mcbfs/internal/core"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
)

func must(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// --- ConnectedComponents ---

func TestCCTwoIslands(t *testing.T) {
	// 0-1-2 and 3-4, as directed chains.
	g := must(graph.FromEdges(5, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}))
	cc, err := ConnectedComponents(g, false, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Count != 2 {
		t.Fatalf("Count = %d, want 2", cc.Count)
	}
	if cc.Label[0] != cc.Label[1] || cc.Label[1] != cc.Label[2] {
		t.Error("first island not one component")
	}
	if cc.Label[3] != cc.Label[4] {
		t.Error("second island not one component")
	}
	if cc.Label[0] == cc.Label[3] {
		t.Error("islands merged")
	}
	if cc.Sizes[cc.Label[0]] != 3 || cc.Sizes[cc.Label[3]] != 2 {
		t.Errorf("sizes = %v", cc.Sizes)
	}
}

func TestCCDirectedChainIsWeaklyConnected(t *testing.T) {
	// A directed chain is one weak component even though reachability
	// is asymmetric.
	g := must(gen.Chain(10))
	cc, err := ConnectedComponents(g, false, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Count != 1 {
		t.Errorf("Count = %d, want 1", cc.Count)
	}
}

func TestCCIsolatedVertices(t *testing.T) {
	g := must(graph.FromEdges(4, nil))
	cc, err := ConnectedComponents(g, true, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Count != 4 {
		t.Errorf("Count = %d, want 4", cc.Count)
	}
	for _, s := range cc.Sizes {
		if s != 1 {
			t.Errorf("sizes = %v", cc.Sizes)
		}
	}
}

func TestCCSymmetricFlag(t *testing.T) {
	g := must(gen.Grid(10, 10, 4)) // already symmetric
	a, err := ConnectedComponents(g, true, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConnectedComponents(g, false, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 1 || b.Count != 1 {
		t.Errorf("grid components: symmetric=%d undirected=%d, want 1", a.Count, b.Count)
	}
}

func TestCCGiantFraction(t *testing.T) {
	g := must(gen.Uniform(5000, 8, 1))
	cc, err := ConnectedComponents(g, false, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := cc.GiantFraction(); f < 0.95 {
		t.Errorf("degree-8 uniform graph giant fraction = %v, want ~1", f)
	}
	empty := &Components{}
	if empty.GiantFraction() != 0 {
		t.Error("empty GiantFraction should be 0")
	}
}

func TestCCParallelMatchesSequential(t *testing.T) {
	g := must(gen.RMAT(11, 8192, gen.GTgraphDefaults, 5))
	seq, err := ConnectedComponents(g, false, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ConnectedComponents(g, false, core.Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Count != par.Count {
		t.Fatalf("component counts differ: %d vs %d", seq.Count, par.Count)
	}
	// Labels may differ in numbering but must induce the same partition.
	remap := map[int32]int32{}
	for v := range seq.Label {
		s, p := seq.Label[v], par.Label[v]
		if got, ok := remap[s]; ok {
			if got != p {
				t.Fatalf("partition mismatch at vertex %d", v)
			}
		} else {
			remap[s] = p
		}
	}
}

func TestCCNilGraph(t *testing.T) {
	if _, err := ConnectedComponents(nil, false, core.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestCCLabelsAreCompleteAndConsistent(t *testing.T) {
	g := must(gen.Uniform(2000, 2, 9))
	cc, err := ConnectedComponents(g, false, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range cc.Sizes {
		total += s
	}
	if total != int64(len(cc.Label)) {
		t.Errorf("sizes sum to %d, want %d", total, len(cc.Label))
	}
	for v, l := range cc.Label {
		if l < 0 || int(l) >= cc.Count {
			t.Fatalf("vertex %d has invalid label %d", v, l)
		}
	}
	// Every edge connects same-labeled endpoints.
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if cc.Label[u] != cc.Label[v] {
				t.Fatalf("edge %d->%d crosses components", u, v)
			}
		}
	}
}

// --- ShortestPath / Distance ---

func TestShortestPathChain(t *testing.T) {
	g := must(gen.Chain(10))
	path, ok, err := ShortestPath(g, 2, 7, core.Options{Algorithm: core.AlgSequential})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(path) != 6 || path[0] != 2 || path[5] != 7 {
		t.Errorf("path = %v", path)
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	// Diamond with a long detour: 0->1->3, 0->2->3, and 0->4->5->3.
	g := must(graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 3}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 0, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}))
	d, err := Distance(g, 0, 3, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("Distance = %d, want 2", d)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := must(gen.Chain(5))
	_, ok, err := ShortestPath(g, 4, 0, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("backward path on a directed chain reported reachable")
	}
	d, err := Distance(g, 4, 0, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if d != -1 {
		t.Errorf("Distance = %d, want -1", d)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := must(gen.Chain(3))
	path, ok, err := ShortestPath(g, 1, 1, core.Options{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(path) != 1 || path[0] != 1 {
		t.Errorf("path = %v", path)
	}
}

func TestShortestPathBadEndpoints(t *testing.T) {
	g := must(gen.Chain(3))
	if _, _, err := ShortestPath(g, 0, 9, core.Options{}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, _, err := ShortestPath(nil, 0, 0, core.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestShortestPathEdgesExist(t *testing.T) {
	g := must(gen.RMAT(10, 8192, gen.GTgraphDefaults, 3))
	path, ok, err := ShortestPath(g, 0, 500, core.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("500 unreachable from 0 in this instance")
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatalf("hop %d->%d not an edge", path[i], path[i+1])
		}
	}
}

// --- STConnectivity ---

func TestSTConnectivityChain(t *testing.T) {
	g := must(gen.Chain(50))
	ok, err := STConnectivity(g, 0, 49)
	if err != nil || !ok {
		t.Errorf("forward chain: ok=%v err=%v", ok, err)
	}
	ok, err = STConnectivity(g, 49, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("backward chain reported connected")
	}
}

func TestSTConnectivitySelf(t *testing.T) {
	g := must(gen.Chain(3))
	ok, err := STConnectivity(g, 2, 2)
	if err != nil || !ok {
		t.Errorf("self-connectivity: ok=%v err=%v", ok, err)
	}
}

func TestSTConnectivityMatchesBFS(t *testing.T) {
	g := must(gen.RMAT(10, 4096, gen.GTgraphDefaults, 8))
	gt := g.Transpose()
	res, err := core.BFS(g, 0, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.Vertex{1, 17, 100, 512, 1023} {
		want := res.Parents[v] != core.NoParent || v == 0
		got, err := STConnectivityWithTranspose(g, gt, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("STConnectivity(0,%d) = %v, BFS says %v", v, got, want)
		}
	}
}

func TestSTConnectivityBadInputs(t *testing.T) {
	g := must(gen.Chain(3))
	if _, err := STConnectivity(g, 0, 5); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := STConnectivity(nil, 0, 0); err == nil {
		t.Error("nil graph accepted")
	}
	other := must(gen.Chain(4))
	if _, err := STConnectivityWithTranspose(g, other, 0, 1); err == nil {
		t.Error("mismatched transpose accepted")
	}
}

func TestQuickSTConnectivityAgreesWithBFS(t *testing.T) {
	f := func(raw []uint16, sRaw, tRaw uint8) bool {
		const n = 24
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{Src: graph.Vertex(raw[i] % n), Dst: graph.Vertex(raw[i+1] % n)})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return false
		}
		s, tt := graph.Vertex(sRaw%n), graph.Vertex(tRaw%n)
		res, err := core.BFS(g, s, core.Options{Algorithm: core.AlgSequential})
		if err != nil {
			return false
		}
		want := res.Parents[tt] != core.NoParent
		got, err := STConnectivity(g, s, tt)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- MultiSourceBFS ---

func TestMultiSourceBFSSingleRootMatchesTreeDepths(t *testing.T) {
	g := must(gen.BinaryTree(5))
	depths, nearest, err := MultiSourceBFS(g, []graph.Vertex{0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BFS(g, 0, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	ref := core.TreeDepths(res.Parents, 0)
	for v := range depths {
		if depths[v] != ref[v] {
			t.Errorf("depth[%d] = %d, want %d", v, depths[v], ref[v])
		}
		if depths[v] != core.NoDepth && nearest[v] != 0 {
			t.Errorf("nearest[%d] = %d, want 0", v, nearest[v])
		}
	}
}

func TestMultiSourceBFSNearest(t *testing.T) {
	// Chain 0..9 with roots at both ends: vertices 0-4 nearest to root
	// 0... but the chain is directed, so only forward reach counts.
	g := must(gen.Chain(10)).Undirected()
	depths, nearest, err := MultiSourceBFS(g, []graph.Vertex{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	if depths[4] != 4 || nearest[4] != 0 {
		t.Errorf("vertex 4: depth=%d nearest=%d, want 4, 0", depths[4], nearest[4])
	}
	if depths[7] != 2 || nearest[7] != 1 {
		t.Errorf("vertex 7: depth=%d nearest=%d, want 2, 1", depths[7], nearest[7])
	}
}

func TestMultiSourceBFSDuplicateRoots(t *testing.T) {
	g := must(gen.Chain(5))
	depths, _, err := MultiSourceBFS(g, []graph.Vertex{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if depths[2] != 0 || depths[4] != 2 {
		t.Errorf("depths = %v", depths)
	}
}

func TestMultiSourceBFSNoRoots(t *testing.T) {
	g := must(gen.Chain(5))
	depths, _, err := MultiSourceBFS(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range depths {
		if d != core.NoDepth {
			t.Errorf("vertex %d has depth %d with no roots", v, d)
		}
	}
}

func TestMultiSourceBFSBadRoot(t *testing.T) {
	g := must(gen.Chain(5))
	if _, _, err := MultiSourceBFS(g, []graph.Vertex{99}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, _, err := MultiSourceBFS(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}

// --- Eccentricity / ApproxDiameter / Reachable ---

func TestEccentricityChain(t *testing.T) {
	g := must(gen.Chain(10))
	e, err := Eccentricity(g, 0, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if e != 9 {
		t.Errorf("Eccentricity = %d, want 9", e)
	}
}

func TestApproxDiameterExactOnPath(t *testing.T) {
	// Undirected path of 20 vertices: diameter 19 regardless of start.
	g := must(gen.Chain(20)).Undirected()
	for _, start := range []graph.Vertex{0, 10, 19} {
		d, err := ApproxDiameter(g, start, core.Options{Algorithm: core.AlgSequential})
		if err != nil {
			t.Fatal(err)
		}
		if d != 19 {
			t.Errorf("ApproxDiameter from %d = %d, want 19", start, d)
		}
	}
}

func TestApproxDiameterGrid(t *testing.T) {
	// 5x9 4-connected grid: diameter = 4 + 8 = 12 (Manhattan).
	g := must(gen.Grid(5, 9, 4))
	d, err := ApproxDiameter(g, 22, core.Options{Algorithm: core.AlgSequential}) // center-ish
	if err != nil {
		t.Fatal(err)
	}
	if d < 8 || d > 12 {
		t.Errorf("ApproxDiameter = %d, want a strong lower bound of 12", d)
	}
}

func TestApproxDiameterNil(t *testing.T) {
	if _, err := ApproxDiameter(nil, 0, core.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestReachable(t *testing.T) {
	g := must(gen.Chain(7))
	r, err := Reachable(g, 3, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Errorf("Reachable = %d, want 4", r)
	}
}
