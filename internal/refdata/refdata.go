// Package refdata encodes the published comparison data of the paper's
// Tables II and III: the systems the authors compare against and the
// BFS rates those systems' papers report. The SC'10 paper compares
// against *published* numbers rather than reruns; this reproduction
// does the same, so the data lives here as a first-class artifact the
// harness joins with our measured and simulated rates.
package refdata

// System is one row of Table II: a platform evaluated in the BFS
// literature the paper compares against.
type System struct {
	Name        string
	CPU         string
	SpeedGHz    float64
	Sockets     int
	CoresPerSkt int
	Threads     int
	MemoryGB    int
}

// TableII lists the platforms of the paper's Table II.
var TableII = []System{
	{Name: "Nehalem-EX", CPU: "Intel Xeon 7560", SpeedGHz: 2.26, Sockets: 4, CoresPerSkt: 8, Threads: 64, MemoryGB: 256},
	{Name: "Nehalem-EP", CPU: "Intel Xeon X5570", SpeedGHz: 2.93, Sockets: 2, CoresPerSkt: 4, Threads: 16, MemoryGB: 48},
	{Name: "Nehalem-EP (X5580)", CPU: "Intel Xeon X5580", SpeedGHz: 3.2, Sockets: 2, CoresPerSkt: 4, Threads: 16, MemoryGB: 16},
	{Name: "Cray XMT", CPU: "Threadstorm", SpeedGHz: 0.5, Sockets: 128, CoresPerSkt: 1, Threads: 16384, MemoryGB: 1024},
	{Name: "Cray MTA-2", CPU: "MTA", SpeedGHz: 0.22, Sockets: 40, CoresPerSkt: 1, Threads: 5120, MemoryGB: 160},
	{Name: "AMD Opteron 2350", CPU: "Barcelona", SpeedGHz: 2.0, Sockets: 2, CoresPerSkt: 4, Threads: 8, MemoryGB: 16},
}

// Published is one row of Table III: a published BFS result.
type Published struct {
	// Reference names the cited work.
	Reference string
	// System names the platform.
	System string
	// Processors is the processor count the rate was achieved with.
	Processors int
	// GraphType describes the workload.
	GraphType string
	// Vertices and Edges give the graph size (0 when the cited paper
	// reports only a peak without sizes).
	Vertices int64
	Edges    int64
	// RateMEs is the reported rate in millions of edges per second.
	RateMEs float64
}

// TableIII lists the published results of the paper's Table III.
var TableIII = []Published{
	{Reference: "Bader, Madduri [16]", System: "Cray MTA-2", Processors: 40,
		GraphType: "R-MAT", Vertices: 200_000_000, Edges: 1_000_000_000, RateMEs: 500},
	{Reference: "Bader, Madduri [16]", System: "Cray MTA-2", Processors: 10,
		GraphType: "SSCA2v1", Vertices: 32_000_000, Edges: 310_000_000, RateMEs: 250},
	{Reference: "Bader, Madduri [16]", System: "Cray MTA-2", Processors: 10,
		GraphType: "SSCA2v1", Vertices: 4_000_000, Edges: 512_000_000, RateMEs: 250},
	{Reference: "Mizell, Maschhoff [15]", System: "Cray XMT", Processors: 128,
		GraphType: "Uniformly Random", Vertices: 64_000_000, Edges: 512_000_000, RateMEs: 210},
	{Reference: "Scarpazza, Villa, Petrini [14]", System: "IBM Cell/B.E.", Processors: 1,
		GraphType: "Uniformly Random", Vertices: 25_000_000, Edges: 256_000_000, RateMEs: 101},
	{Reference: "Scarpazza, Villa, Petrini [14]", System: "IBM Cell/B.E.", Processors: 1,
		GraphType: "Uniformly Random", Vertices: 5_000_000, Edges: 256_000_000, RateMEs: 305},
	{Reference: "Scarpazza, Villa, Petrini [14]", System: "IBM Cell/B.E.", Processors: 1,
		GraphType: "Uniformly Random", Vertices: 2_500_000, Edges: 256_000_000, RateMEs: 420},
	{Reference: "Scarpazza, Villa, Petrini [14]", System: "IBM Cell/B.E.", Processors: 1,
		GraphType: "Uniformly Random", Vertices: 1_000_000, Edges: 256_000_000, RateMEs: 540},
	{Reference: "Yoo et al. [20]", System: "IBM BlueGene/L", Processors: 256,
		GraphType: "Peak d=10", RateMEs: 80},
	{Reference: "Yoo et al. [20]", System: "IBM BlueGene/L", Processors: 256,
		GraphType: "Peak d=50", RateMEs: 232},
	{Reference: "Yoo et al. [20]", System: "IBM BlueGene/L", Processors: 256,
		GraphType: "Peak d=100", RateMEs: 492},
	{Reference: "Yoo et al. [20]", System: "IBM BlueGene/L", Processors: 256,
		GraphType: "Peak d=200", RateMEs: 731},
	{Reference: "Xia, Prasanna [19]", System: "dual Intel X5580", Processors: 2,
		GraphType: "8-Grid", Vertices: 1_000_000, Edges: 16_000_000, RateMEs: 220},
	{Reference: "Xia, Prasanna [19]", System: "dual Intel X5580", Processors: 2,
		GraphType: "16-Grid", Vertices: 1_000_000, Edges: 32_000_000, RateMEs: 311},
}

// Find returns the first Table III row whose system and graph type
// match, or nil.
func Find(system, graphType string) *Published {
	for i := range TableIII {
		if TableIII[i].System == system && TableIII[i].GraphType == graphType {
			return &TableIII[i]
		}
	}
	return nil
}

// HeadlineComparisons are the three claims of the paper's abstract,
// expressed as (reference row, claimed speedup of the 4-socket EX over
// that row).
type Headline struct {
	Row           Published
	ClaimedFactor float64
	Description   string
}

// Headlines returns the abstract's three comparisons.
func Headlines() []Headline {
	return []Headline{
		{
			Row:           *Find("Cray XMT", "Uniformly Random"),
			ClaimedFactor: 2.4,
			Description:   "2.4x a 128-processor Cray XMT, uniform 64M vertices / 512M edges",
		},
		{
			Row:           *Find("Cray MTA-2", "R-MAT"),
			ClaimedFactor: 1.1, // "550 ME/s ... comparable" vs 500 ME/s
			Description:   "~550 ME/s on R-MAT 200M vertices / 1B edges, comparable to a 40-processor MTA-2",
		},
		{
			Row:           *Find("IBM BlueGene/L", "Peak d=50"),
			ClaimedFactor: 5.0,
			Description:   "5x 256 BlueGene/L processors at average degree 50",
		},
	}
}
