package refdata

import "testing"

func TestTableIIHasPaperSystems(t *testing.T) {
	names := map[string]bool{}
	for _, s := range TableII {
		names[s.Name] = true
	}
	for _, want := range []string{"Nehalem-EX", "Nehalem-EP", "Cray XMT", "Cray MTA-2"} {
		if !names[want] {
			t.Errorf("Table II missing %s", want)
		}
	}
}

func TestTableIIShapes(t *testing.T) {
	for _, s := range TableII {
		if s.Name == "" || s.SpeedGHz <= 0 || s.Sockets < 1 || s.MemoryGB <= 0 {
			t.Errorf("malformed row: %+v", s)
		}
	}
	// Spot checks against Table I/II.
	for _, s := range TableII {
		switch s.Name {
		case "Nehalem-EX":
			if s.Threads != 64 || s.MemoryGB != 256 {
				t.Errorf("EX row wrong: %+v", s)
			}
		case "Cray XMT":
			if s.Sockets != 128 || s.MemoryGB != 1024 {
				t.Errorf("XMT row wrong: %+v", s)
			}
		}
	}
}

func TestTableIIIAnchorsPresent(t *testing.T) {
	xmt := Find("Cray XMT", "Uniformly Random")
	if xmt == nil || xmt.RateMEs != 210 || xmt.Processors != 128 {
		t.Errorf("XMT row wrong: %+v", xmt)
	}
	mta := Find("Cray MTA-2", "R-MAT")
	if mta == nil || mta.RateMEs != 500 || mta.Vertices != 200_000_000 {
		t.Errorf("MTA-2 row wrong: %+v", mta)
	}
	bgl := Find("IBM BlueGene/L", "Peak d=50")
	if bgl == nil || bgl.RateMEs != 232 || bgl.Processors != 256 {
		t.Errorf("BG/L row wrong: %+v", bgl)
	}
}

func TestFindMissing(t *testing.T) {
	if Find("Nonexistent", "whatever") != nil {
		t.Error("Find invented a row")
	}
}

func TestHeadlines(t *testing.T) {
	hs := Headlines()
	if len(hs) != 3 {
		t.Fatalf("want 3 headline comparisons, got %d", len(hs))
	}
	if hs[0].ClaimedFactor != 2.4 {
		t.Errorf("XMT claim factor = %v, want 2.4", hs[0].ClaimedFactor)
	}
	if hs[2].ClaimedFactor != 5.0 {
		t.Errorf("BG/L claim factor = %v, want 5", hs[2].ClaimedFactor)
	}
	for _, h := range hs {
		if h.Row.RateMEs <= 0 || h.Description == "" {
			t.Errorf("malformed headline: %+v", h)
		}
	}
}

func TestAllRowsPlausible(t *testing.T) {
	for _, r := range TableIII {
		if r.RateMEs <= 0 || r.RateMEs > 10_000 {
			t.Errorf("implausible rate in row %+v", r)
		}
		if r.Reference == "" || r.System == "" {
			t.Errorf("unattributed row %+v", r)
		}
	}
}
