// Package ssca2 implements the four kernels of the HPCS SSCA#2 graph
// analysis benchmark, the workload family the paper's Fig. 10 and
// Table III reference (Bader-Madduri report SSCA#2 rates on the
// MTA-2). The kernels exercise the BFS library as the building block
// the paper positions it to be:
//
//	K1  scalable data generation: a clustered, weighted directed graph;
//	K2  classify large sets: find the maximum-weight edges;
//	K3  subgraph extraction: the depth-bounded neighbourhood of each
//	    K2 edge (a MaxLevels-bounded BFS per edge);
//	K4  graph analysis: betweenness centrality via Brandes' algorithm,
//	    one BFS plus one dependency sweep per source, parallel over
//	    sources.
package ssca2

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mcbfs/internal/core"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/rng"
)

// WeightedGraph couples a CSR graph with one integer weight per edge
// (Weights[i] belongs to Targets()[i]).
type WeightedGraph struct {
	*graph.Graph
	Weights []uint32
}

// Params configures kernel 1 generation, mirroring the SSCA#2 written
// specification's tunables at reduced defaults.
type Params struct {
	// N is the vertex count.
	N int
	// MaxCliqueSize bounds the clique sizes of the clustered structure.
	MaxCliqueSize int
	// InterCliqueFraction is the fraction of vertices with a remote
	// relation.
	InterCliqueFraction float64
	// MaxWeight is the exclusive upper bound on edge weights (weights
	// are uniform in [1, MaxWeight]).
	MaxWeight uint32
	// Seed makes generation reproducible.
	Seed uint64
}

// DefaultParams returns a host-friendly configuration.
func DefaultParams(n int) Params {
	return Params{
		N:                   n,
		MaxCliqueSize:       8,
		InterCliqueFraction: 0.2,
		MaxWeight:           1 << 7,
		Seed:                42,
	}
}

// Kernel1 generates the SSCA#2 graph: the clustered topology of
// gen.SSCA2 plus uniformly random integer edge weights.
func Kernel1(p Params) (*WeightedGraph, error) {
	if p.MaxWeight < 1 {
		return nil, fmt.Errorf("ssca2: MaxWeight %d must be >= 1", p.MaxWeight)
	}
	g, err := gen.SSCA2(p.N, p.MaxCliqueSize, p.InterCliqueFraction, p.Seed)
	if err != nil {
		return nil, err
	}
	r := rng.New(p.Seed ^ 0x55ca2)
	weights := make([]uint32, g.NumEdges())
	for i := range weights {
		weights[i] = 1 + uint32(r.Uint64n(uint64(p.MaxWeight)))
	}
	return &WeightedGraph{Graph: g, Weights: weights}, nil
}

// HeavyEdge identifies one maximum-weight edge.
type HeavyEdge struct {
	Src, Dst graph.Vertex
	Weight   uint32
}

// Kernel2 returns every edge whose weight equals the maximum edge
// weight in the graph, scanning edge ranges in parallel.
func Kernel2(wg *WeightedGraph) ([]HeavyEdge, error) {
	if wg == nil || wg.Graph == nil {
		return nil, errors.New("ssca2: nil graph")
	}
	if int64(len(wg.Weights)) != wg.NumEdges() {
		return nil, fmt.Errorf("ssca2: %d weights for %d edges", len(wg.Weights), wg.NumEdges())
	}
	if len(wg.Weights) == 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(wg.Weights) {
		workers = len(wg.Weights)
	}
	maxes := make([]uint32, workers)
	var wgp sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(wg.Weights) * w / workers
		hi := len(wg.Weights) * (w + 1) / workers
		wgp.Add(1)
		go func(w, lo, hi int) {
			defer wgp.Done()
			var m uint32
			for _, x := range wg.Weights[lo:hi] {
				if x > m {
					m = x
				}
			}
			maxes[w] = m
		}(w, lo, hi)
	}
	wgp.Wait()
	var max uint32
	for _, m := range maxes {
		if m > max {
			max = m
		}
	}
	// Second pass: collect the maxima with their source vertices.
	var heavy []HeavyEdge
	offsets := wg.Offsets()
	targets := wg.Targets()
	for u := 0; u < wg.NumVertices(); u++ {
		for i := offsets[u]; i < offsets[u+1]; i++ {
			if wg.Weights[i] == max {
				heavy = append(heavy, HeavyEdge{
					Src: graph.Vertex(u), Dst: targets[i], Weight: max,
				})
			}
		}
	}
	return heavy, nil
}

// Subgraph is the K3 output for one heavy edge: the set of vertices
// within the depth bound of the edge's head.
type Subgraph struct {
	Edge     HeavyEdge
	Vertices []graph.Vertex
}

// Kernel3 extracts, for each heavy edge, the subgraph reachable from
// the edge's head within maxDepth hops — a MaxLevels-bounded BFS per
// edge, run with opt's algorithm tier.
func Kernel3(wg *WeightedGraph, heavy []HeavyEdge, maxDepth int, opt core.Options) ([]Subgraph, error) {
	if wg == nil || wg.Graph == nil {
		return nil, errors.New("ssca2: nil graph")
	}
	if maxDepth < 1 {
		return nil, fmt.Errorf("ssca2: maxDepth %d must be >= 1", maxDepth)
	}
	opt.MaxLevels = maxDepth
	// One search session serves every heavy edge: K3 is exactly the
	// repeated-bounded-search workload the session amortizes, and the
	// depth bound keeps each search's touched set — and therefore its
	// reset — small.
	searcher, err := core.NewSearcher(wg.Graph, opt)
	if err != nil {
		return nil, err
	}
	defer searcher.Close()
	out := make([]Subgraph, 0, len(heavy))
	for _, e := range heavy {
		res, err := searcher.BFS(e.Dst)
		if err != nil {
			return nil, err
		}
		var verts []graph.Vertex
		for v, p := range res.Parents {
			if p != core.NoParent {
				verts = append(verts, graph.Vertex(v))
			}
		}
		out = append(out, Subgraph{Edge: e, Vertices: verts})
	}
	return out, nil
}

// Kernel4 computes betweenness centrality by Brandes' algorithm on the
// unweighted graph, sampling the given sources (pass all vertices for
// exact centrality). Sources are processed in parallel: each worker
// runs its own BFS with path counting and dependency accumulation, and
// per-worker score vectors are reduced at the end. The per-source work
// is one BFS plus one reverse sweep — the benchmark's whole point is
// that BFS throughput bounds analysis throughput.
func Kernel4(g *graph.Graph, sources []graph.Vertex, workers int) ([]float64, error) {
	if g == nil {
		return nil, errors.New("ssca2: nil graph")
	}
	n := g.NumVertices()
	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("ssca2: source %d out of range [0,%d)", s, n)
		}
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}
	scores := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, n)
			st := newBrandesState(n)
			for i := w; i < len(sources); i += workers {
				st.accumulate(g, sources[i], local)
			}
			scores[w] = local
		}(w)
	}
	wg.Wait()
	total := make([]float64, n)
	for _, local := range scores {
		if local == nil {
			continue
		}
		for v := range total {
			total[v] += local[v]
		}
	}
	return total, nil
}

// brandesState holds the per-worker scratch arrays of Brandes'
// algorithm so repeated sources reuse allocations.
type brandesState struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []graph.Vertex // vertices in BFS discovery order
}

func newBrandesState(n int) *brandesState {
	return &brandesState{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		order: make([]graph.Vertex, 0, n),
	}
}

// accumulate adds source s's dependency contributions to scores.
func (st *brandesState) accumulate(g *graph.Graph, s graph.Vertex, scores []float64) {
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
	}
	st.order = st.order[:0]

	st.dist[s] = 0
	st.sigma[s] = 1
	frontier := []graph.Vertex{s}
	st.order = append(st.order, s)
	for len(frontier) > 0 {
		var next []graph.Vertex
		for _, u := range frontier {
			du := st.dist[u]
			for _, v := range g.Neighbors(u) {
				if st.dist[v] == -1 {
					st.dist[v] = du + 1
					next = append(next, v)
					st.order = append(st.order, v)
				}
				if st.dist[v] == du+1 {
					st.sigma[v] += st.sigma[u]
				}
			}
		}
		frontier = next
	}

	// Reverse sweep: delta[u] += sigma[u]/sigma[v] * (1 + delta[v]) for
	// each tree-DAG edge u->v with dist[v] = dist[u]+1.
	for i := len(st.order) - 1; i >= 0; i-- {
		u := st.order[i]
		du := st.dist[u]
		for _, v := range g.Neighbors(u) {
			if st.dist[v] == du+1 && st.sigma[v] > 0 {
				st.delta[u] += st.sigma[u] / st.sigma[v] * (1 + st.delta[v])
			}
		}
		if u != s {
			scores[u] += st.delta[u]
		}
	}
}

// RunAll executes the four kernels in sequence and returns a compact
// report, the shape of a full SSCA#2 benchmark run.
type Report struct {
	Vertices    int
	Edges       int64
	MaxWeight   uint32
	HeavyEdges  int
	SubgraphSum int // total vertices across K3 subgraphs
	TopVertex   graph.Vertex
	TopScore    float64
}

// RunAll runs K1-K4 with the given parameters, K3 depth, and K4 source
// sample count.
func RunAll(p Params, k3Depth, k4Sources int, opt core.Options) (*Report, error) {
	wg, err := Kernel1(p)
	if err != nil {
		return nil, err
	}
	heavy, err := Kernel2(wg)
	if err != nil {
		return nil, err
	}
	subs, err := Kernel3(wg, heavy, k3Depth, opt)
	if err != nil {
		return nil, err
	}
	if k4Sources > wg.NumVertices() {
		k4Sources = wg.NumVertices()
	}
	sources := make([]graph.Vertex, k4Sources)
	r := rng.New(p.Seed ^ 0xbead)
	for i := range sources {
		sources[i] = graph.Vertex(r.Intn(wg.NumVertices()))
	}
	scores, err := Kernel4(wg.Graph, sources, opt.Threads)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Vertices: wg.NumVertices(),
		Edges:    wg.NumEdges(),
	}
	if len(heavy) > 0 {
		rep.MaxWeight = heavy[0].Weight
	}
	rep.HeavyEdges = len(heavy)
	for _, s := range subs {
		rep.SubgraphSum += len(s.Vertices)
	}
	top := math.Inf(-1)
	for v, s := range scores {
		if s > top {
			top, rep.TopVertex = s, graph.Vertex(v)
		}
	}
	if !math.IsInf(top, -1) {
		rep.TopScore = top
	}
	return rep, nil
}
