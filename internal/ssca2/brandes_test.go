package ssca2

import (
	"math"
	"testing"
	"testing/quick"

	"mcbfs/internal/graph"
)

// bruteForceBetweenness computes exact betweenness centrality by
// explicit shortest-path counting: for every ordered pair (s, t), every
// interior vertex v on a shortest s-t path contributes
// sigma_st(v)/sigma_st to v's score. Exponential-free but O(n^2 * m),
// fine for the tiny graphs quick.Check generates.
func bruteForceBetweenness(g *graph.Graph) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	for s := 0; s < n; s++ {
		// BFS with path counting from s.
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
		}
		dist[s] = 0
		sigma[s] = 1
		frontier := []graph.Vertex{graph.Vertex(s)}
		var order []graph.Vertex
		for len(frontier) > 0 {
			var next []graph.Vertex
			for _, u := range frontier {
				for _, v := range g.Neighbors(u) {
					if dist[v] == -1 {
						dist[v] = dist[u] + 1
						next = append(next, v)
					}
					if dist[v] == dist[u]+1 {
						sigma[v] += sigma[u]
					}
				}
			}
			order = append(order, next...)
			frontier = next
		}
		// Per-pair contributions, independently of Brandes' dependency
		// trick: for each target t, count sigma_vt within the s-rooted
		// shortest-path DAG by dynamic programming in decreasing-distance
		// order; the number of shortest s-t paths through interior v is
		// then sigma_sv * sigma_vt, out of sigma_st total.
		pathsToT := make([]float64, n)
		for t := 0; t < n; t++ {
			if t == s || dist[t] <= 0 {
				continue
			}
			for i := range pathsToT {
				pathsToT[i] = 0
			}
			pathsToT[t] = 1
			// order lists reached vertices in non-decreasing distance;
			// walk it backwards so successors are final before u.
			for i := len(order) - 1; i >= 0; i-- {
				u := order[i]
				if int(u) == t || dist[u] >= dist[t] {
					continue
				}
				pathsToT[u] = pathsToTSum(g, u, dist, pathsToT)
			}
			for v := 0; v < n; v++ {
				if v == s || v == t || dist[v] <= 0 || dist[v] >= dist[t] {
					continue
				}
				if sigma[t] > 0 {
					scores[v] += sigma[v] * pathsToT[v] / sigma[t]
				}
			}
		}
	}
	return scores
}

// pathsToTSum sums the DAG-successor path counts of u.
func pathsToTSum(g *graph.Graph, u graph.Vertex, dist []int32, pathsToT []float64) float64 {
	sum := 0.0
	for _, w := range g.Neighbors(u) {
		if dist[w] == dist[u]+1 {
			sum += pathsToT[w]
		}
	}
	return sum
}

func TestQuickKernel4MatchesBruteForce(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 10
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw) && len(edges) < 30; i += 2 {
			u := graph.Vertex(raw[i] % n)
			v := graph.Vertex(raw[i+1] % n)
			if u == v {
				continue // self-loops contribute nothing to betweenness
			}
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return false
		}
		g = g.Deduplicate() // brute force assumes a simple graph
		sources := make([]graph.Vertex, n)
		for i := range sources {
			sources[i] = graph.Vertex(i)
		}
		got, err := Kernel4(g, sources, 2)
		if err != nil {
			return false
		}
		want := bruteForceBetweenness(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKernel4CycleGraph(t *testing.T) {
	// Directed 5-cycle: between any ordered pair (s,t) there is exactly
	// one path, passing through every intermediate vertex. Vertex v lies
	// strictly inside the unique s->t path for pairs where v is interior:
	// for a cycle of length L=5, each vertex is interior to
	// (L-1)(L-2)/2 = 6 ordered pairs.
	var edges []graph.Edge
	const L = 5
	for i := 0; i < L; i++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(i), Dst: graph.Vertex((i + 1) % L)})
	}
	g, err := graph.FromEdges(L, edges)
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.Vertex{0, 1, 2, 3, 4}
	bc, err := Kernel4(g, sources, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < L; v++ {
		if math.Abs(bc[v]-6) > 1e-12 {
			t.Errorf("BC(%d) = %v, want 6", v, bc[v])
		}
	}
}
