package ssca2

import (
	"math"
	"testing"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
)

func undirected(t *testing.T, n int, pairs [][2]graph.Vertex) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for _, p := range pairs {
		edges = append(edges,
			graph.Edge{Src: p[0], Dst: p[1]},
			graph.Edge{Src: p[1], Dst: p[0]})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// --- Kernel 1 ---

func TestKernel1Shapes(t *testing.T) {
	wg, err := Kernel1(DefaultParams(2000))
	if err != nil {
		t.Fatal(err)
	}
	if wg.NumVertices() != 2000 {
		t.Errorf("vertices = %d", wg.NumVertices())
	}
	if int64(len(wg.Weights)) != wg.NumEdges() {
		t.Fatalf("weights/edges mismatch: %d vs %d", len(wg.Weights), wg.NumEdges())
	}
	for i, w := range wg.Weights {
		if w < 1 || w > 1<<7 {
			t.Fatalf("weight %d at edge %d out of [1,128]", w, i)
		}
	}
	if err := wg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestKernel1Deterministic(t *testing.T) {
	a, err := Kernel1(DefaultParams(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kernel1(DefaultParams(500))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weight %d differs", i)
		}
	}
}

func TestKernel1RejectsBadParams(t *testing.T) {
	p := DefaultParams(100)
	p.MaxWeight = 0
	if _, err := Kernel1(p); err == nil {
		t.Error("MaxWeight 0 accepted")
	}
	p = DefaultParams(0)
	if _, err := Kernel1(p); err == nil {
		t.Error("N=0 accepted")
	}
}

// --- Kernel 2 ---

func TestKernel2FindsMaximum(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg := &WeightedGraph{Graph: g, Weights: []uint32{5, 9, 9, 3}}
	heavy, err := Kernel2(wg)
	if err != nil {
		t.Fatal(err)
	}
	if len(heavy) != 2 {
		t.Fatalf("found %d heavy edges, want 2", len(heavy))
	}
	for _, h := range heavy {
		if h.Weight != 9 {
			t.Errorf("heavy edge weight %d, want 9", h.Weight)
		}
	}
	if heavy[0].Src != 1 || heavy[0].Dst != 2 {
		t.Errorf("first heavy edge = %+v", heavy[0])
	}
	if heavy[1].Src != 2 || heavy[1].Dst != 3 {
		t.Errorf("second heavy edge = %+v", heavy[1])
	}
}

func TestKernel2EmptyAndErrors(t *testing.T) {
	if _, err := Kernel2(nil); err == nil {
		t.Error("nil accepted")
	}
	g, _ := graph.FromEdges(2, nil)
	heavy, err := Kernel2(&WeightedGraph{Graph: g, Weights: nil})
	if err != nil || heavy != nil {
		t.Errorf("empty graph: %v %v", heavy, err)
	}
	g2, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Kernel2(&WeightedGraph{Graph: g2, Weights: []uint32{1, 2}}); err == nil {
		t.Error("weight count mismatch accepted")
	}
}

func TestKernel2OnGenerated(t *testing.T) {
	wg, err := Kernel1(DefaultParams(3000))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Kernel2(wg)
	if err != nil {
		t.Fatal(err)
	}
	if len(heavy) == 0 {
		t.Fatal("no heavy edges found")
	}
	var max uint32
	for _, w := range wg.Weights {
		if w > max {
			max = w
		}
	}
	count := 0
	for _, w := range wg.Weights {
		if w == max {
			count++
		}
	}
	if len(heavy) != count {
		t.Errorf("found %d heavy edges, exhaustive scan says %d", len(heavy), count)
	}
}

// --- Kernel 3 ---

func TestKernel3DepthBound(t *testing.T) {
	// Chain 0->1->2->3->4 with the heavy edge pointing at vertex 1.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg := &WeightedGraph{Graph: g, Weights: []uint32{9, 1, 1, 1}}
	heavy := []HeavyEdge{{Src: 0, Dst: 1, Weight: 9}}
	subs, err := Kernel3(wg, heavy, 2, core.Options{Algorithm: core.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("got %d subgraphs", len(subs))
	}
	// Depth 2 from vertex 1: {1, 2, 3}.
	want := map[graph.Vertex]bool{1: true, 2: true, 3: true}
	if len(subs[0].Vertices) != len(want) {
		t.Fatalf("subgraph = %v, want {1,2,3}", subs[0].Vertices)
	}
	for _, v := range subs[0].Vertices {
		if !want[v] {
			t.Errorf("unexpected vertex %d in subgraph", v)
		}
	}
}

func TestKernel3Errors(t *testing.T) {
	if _, err := Kernel3(nil, nil, 2, core.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	wg := &WeightedGraph{Graph: g, Weights: []uint32{1}}
	if _, err := Kernel3(wg, nil, 0, core.Options{}); err == nil {
		t.Error("depth 0 accepted")
	}
}

// --- Kernel 4: hand-computed betweenness ---

func TestKernel4PathGraph(t *testing.T) {
	// Undirected path 0-1-2: BC(1) = 2 (ordered pairs (0,2) and (2,0)),
	// endpoints 0.
	g := undirected(t, 3, [][2]graph.Vertex{{0, 1}, {1, 2}})
	all := []graph.Vertex{0, 1, 2}
	bc, err := Kernel4(g, all, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-12 {
			t.Errorf("BC(%d) = %v, want %v", v, bc[v], want[v])
		}
	}
}

func TestKernel4StarGraph(t *testing.T) {
	// Undirected star, center 0, spokes 1..4: BC(0) = 4*3 = 12.
	g := undirected(t, 5, [][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	all := []graph.Vertex{0, 1, 2, 3, 4}
	bc, err := Kernel4(g, all, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bc[0]-12) > 1e-12 {
		t.Errorf("BC(center) = %v, want 12", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Errorf("BC(spoke %d) = %v, want 0", v, bc[v])
		}
	}
}

func TestKernel4DiamondSplitsCredit(t *testing.T) {
	// Undirected square 0-1-3-2-0: two shortest 0<->3 paths, each middle
	// vertex carries half the credit per direction. BC(1) = BC(2) =
	// 0.5*2 (pairs (0,3),(3,0)) = 1.
	g := undirected(t, 4, [][2]graph.Vertex{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	all := []graph.Vertex{0, 1, 2, 3}
	bc, err := Kernel4(g, all, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bc[1]-1) > 1e-12 || math.Abs(bc[2]-1) > 1e-12 {
		t.Errorf("BC = %v, want [0 1 1 0]", bc)
	}
}

func TestKernel4WorkerCountInvariance(t *testing.T) {
	wg, err := Kernel1(DefaultParams(800))
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.Vertex{0, 17, 99, 256, 512, 700}
	a, err := Kernel4(wg.Graph, sources, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kernel4(wg.Graph, sources, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-9 {
			t.Fatalf("BC(%d) differs across worker counts: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestKernel4Errors(t *testing.T) {
	if _, err := Kernel4(nil, nil, 1); err == nil {
		t.Error("nil graph accepted")
	}
	g := undirected(t, 2, [][2]graph.Vertex{{0, 1}})
	if _, err := Kernel4(g, []graph.Vertex{5}, 1); err == nil {
		t.Error("out-of-range source accepted")
	}
	bc, err := Kernel4(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bc {
		if s != 0 {
			t.Error("no sources should give zero scores")
		}
	}
}

// --- RunAll ---

func TestRunAllEndToEnd(t *testing.T) {
	rep, err := RunAll(DefaultParams(1500), 2, 16, core.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vertices != 1500 || rep.Edges == 0 {
		t.Errorf("report shape: %+v", rep)
	}
	if rep.HeavyEdges == 0 {
		t.Error("no heavy edges")
	}
	if rep.SubgraphSum == 0 {
		t.Error("empty K3 subgraphs")
	}
	if rep.TopScore <= 0 {
		t.Error("no positive betweenness found")
	}
}
