package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatRate(t *testing.T) {
	cases := []struct {
		eps  float64
		want string
	}{
		{1.3e9, "1.30 GE/s"},
		{550e6, "550 ME/s"},
		{1.5e3, "1.5 KE/s"},
		{42, "42 E/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.eps); got != c.want {
			t.Errorf("FormatRate(%v) = %q, want %q", c.eps, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{1_000_000_000, "1B"},
		{1_500_000_000, "1.5B"},
		{256_000_000, "256M"},
		{1_500_000, "1.5M"},
		{32_000, "32K"},
		{999, "999"},
	}
	for _, c := range cases {
		if got := FormatCount(c.n); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestMeanMedianMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Errorf("even-length Median = %v", Median([]float64{1, 2, 3, 4}))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
	if len(Speedups(nil)) != 0 {
		t.Error("Speedups(nil) not empty")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	got := StdDev(xs)
	want := 2.138089935299395 // sample std dev
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample StdDev should be 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("HarmonicMean(1,1,1) = %v", got)
	}
	// Classic: HM(40, 60) = 48.
	if got := HarmonicMean([]float64{40, 60}); math.Abs(got-48) > 1e-12 {
		t.Errorf("HarmonicMean(40,60) = %v, want 48", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("empty should be 0")
	}
	if HarmonicMean([]float64{5, 0}) != 0 {
		t.Error("non-positive element should yield 0")
	}
	// HM <= arithmetic mean always.
	xs := []float64{3, 7, 11, 2}
	if HarmonicMean(xs) > Mean(xs) {
		t.Error("harmonic mean exceeded arithmetic mean")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Quantile(xs, 0) != 1 {
		t.Errorf("q0 = %v", Quantile(xs, 0))
	}
	if Quantile(xs, 1) != 5 {
		t.Errorf("q1 = %v", Quantile(xs, 1))
	}
	if Quantile(xs, 0.5) != 3 {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestSpeedups(t *testing.T) {
	s := Speedups([]float64{100, 200, 350})
	if s[0] != 1 || s[1] != 2 || s[2] != 3.5 {
		t.Errorf("Speedups = %v", s)
	}
	z := Speedups([]float64{0, 5})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero-baseline Speedups = %v", z)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		lo, hi := clean[0], clean[0]
		for _, x := range clean {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
