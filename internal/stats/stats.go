// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to report rates the way the paper does:
// millions/billions of edges per second, speedups over a baseline, and
// simple aggregates over repeated runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// FormatRate renders an edges-per-second rate in the paper's units
// (ME/s below a billion, GE/s above).
func FormatRate(eps float64) string {
	switch {
	case eps >= 1e9:
		return fmt.Sprintf("%.2f GE/s", eps/1e9)
	case eps >= 1e6:
		return fmt.Sprintf("%.0f ME/s", eps/1e6)
	case eps >= 1e3:
		return fmt.Sprintf("%.1f KE/s", eps/1e3)
	default:
		return fmt.Sprintf("%.0f E/s", eps)
	}
}

// FormatCount renders a vertex/edge count compactly (1M, 256M, 1B).
func FormatCount(n int64) string {
	switch {
	case n >= 1_000_000_000 && n%1_000_000_000 == 0:
		return fmt.Sprintf("%dB", n/1_000_000_000)
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Max returns the maximum of xs, or 0 for an empty slice. The paper
// reports best-of-several for rate numbers.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation of xs, or 0 when fewer
// than two samples exist.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// HarmonicMean returns the harmonic mean of xs — the correct average
// for rates like TEPS (Graph500 reports harmonic-mean TEPS across
// roots). Returns 0 for an empty slice or any non-positive element.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by the
// nearest-rank method on a sorted copy. Returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Speedups divides each rate by the first one, producing the series of
// the paper's scalability plots (rate on t threads over rate on 1).
func Speedups(rates []float64) []float64 {
	out := make([]float64, len(rates))
	if len(rates) == 0 || rates[0] == 0 {
		return out
	}
	for i, r := range rates {
		out[i] = r / rates[0]
	}
	return out
}
