package machine

import (
	"testing"
	"time"
)

func TestMeasureRandomReadRatePositive(t *testing.T) {
	r := MeasureRandomReadRate(1<<16, 4, 20*time.Millisecond)
	if r <= 0 {
		t.Errorf("rate = %v", r)
	}
}

func TestMeasureRandomReadRateDepthClamps(t *testing.T) {
	if r := MeasureRandomReadRate(1<<14, 0, 10*time.Millisecond); r <= 0 {
		t.Error("depth 0 should clamp to 1")
	}
	if r := MeasureRandomReadRate(1<<14, 1000, 10*time.Millisecond); r <= 0 {
		t.Error("huge depth should clamp")
	}
}

// TestMeasuredPipeliningHelpsInDRAM is the real-hardware analogue of
// Fig. 2's central claim: independent chains overlap misses, dependent
// ones cannot. Even a single modern core shows a clear gain once the
// working set spills out of cache.
func TestMeasuredPipeliningHelpsInDRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("memory benchmark")
	}
	const ws = 96 << 20 // far beyond any L3
	d1 := MeasureRandomReadRate(ws, 1, 150*time.Millisecond)
	d8 := MeasureRandomReadRate(ws, 8, 150*time.Millisecond)
	if d8 < 1.5*d1 {
		t.Errorf("MLP gain only %.2fx (d1=%.1fM/s d8=%.1fM/s); expected clear overlap",
			d8/d1, d1/1e6, d8/1e6)
	}
}

// TestMeasuredCacheVsDRAM verifies the working-set staircase on the
// host: cache-resident random reads are much faster than DRAM-resident
// ones.
func TestMeasuredCacheVsDRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("memory benchmark")
	}
	small := MeasureRandomReadRate(16<<10, 1, 100*time.Millisecond)
	big := MeasureRandomReadRate(96<<20, 1, 120*time.Millisecond)
	if small < 3*big {
		t.Errorf("cache rate %.1fM/s not well above DRAM rate %.1fM/s", small/1e6, big/1e6)
	}
}

func TestMeasureFetchAddRatePositive(t *testing.T) {
	r := MeasureFetchAddRate(1<<16, 2, 20*time.Millisecond)
	if r <= 0 {
		t.Errorf("rate = %v", r)
	}
}

func TestMeasureFetchAddRateThreadClamp(t *testing.T) {
	if r := MeasureFetchAddRate(1<<14, 0, 10*time.Millisecond); r <= 0 {
		t.Error("0 threads should clamp to 1")
	}
}
