// Package machine models the memory system of the paper's Nehalem EP
// and EX platforms: cache-level latencies, memory-level parallelism
// (software pipelining of independent loads), atomic-operation
// serialization, and the inter-socket coherence penalty.
//
// The host running this reproduction has neither 4 Nehalem sockets nor
// 256 GB of memory, so the paper's *absolute* rates cannot be
// re-measured. What can be reproduced exactly is the structure of the
// performance story, and that structure lives in a handful of numbers
// the paper publishes or implies:
//
//   - Fig. 2: a single core issuing batches of independent random reads
//     sustains ~160 M reads/s in an 8 MB working set and ~40 M reads/s
//     in 2 GB; pipelining is worth ~8x; ~10 requests can be kept in
//     flight per core.
//   - Fig. 3: atomic fetch-and-add on a shared 4 MB buffer scales
//     within a socket but collapses across the socket boundary: 8 cores
//     on two sockets equal ~3 cores on one.
//   - Section III: a batched inter-socket channel transfer costs ~30 ns
//     per vertex, all locking and copying included.
//
// Model is a deterministic function from (working set, access kind,
// parallelism) to time; package simbfs composes it into level-by-level
// BFS execution times at paper scale.
package machine

import (
	"fmt"
	"math"

	"mcbfs/internal/topology"
)

// Model carries the calibrated cost parameters for one machine.
type Model struct {
	// Topo is the machine shape (sockets, cores, SMT, cache sizes).
	Topo topology.Machine

	// L1LatencyNS, L2LatencyNS, L3LatencyNS are load-to-use latencies of
	// the cache levels in nanoseconds.
	L1LatencyNS float64
	L2LatencyNS float64
	L3LatencyNS float64
	// MemLatencyNS is the local-DRAM random access latency.
	MemLatencyNS float64
	// TLBPenaltyNS is the additional per-access cost per doubling of the
	// working set beyond the L3, approximating page-walk pressure (the
	// gentle slope of Fig. 2's rightmost region).
	TLBPenaltyNS float64

	// IssueNS bounds the per-core throughput of dependent bookkeeping
	// around each access (address generation, branch); it caps the rates
	// in the cache-resident region of Fig. 2.
	IssueNS float64

	// AtomicLocalNS is the cost of a lock-prefixed RMW that hits a line
	// owned by the issuing socket.
	AtomicLocalNS float64
	// AtomicRemoteNS is the cost when the line was last owned by another
	// socket (invalidation + cross-QPI transfer under the bus lock).
	AtomicRemoteNS float64

	// ChannelVertexNS is the amortized per-vertex cost of the batched
	// inter-socket channel (the paper's ~30 ns, all costs included).
	ChannelVertexNS float64
	// BarrierBaseNS and BarrierPerThreadNS model the level
	// synchronization cost.
	BarrierBaseNS      float64
	BarrierPerThreadNS float64

	// MemBandwidthGBs is the per-socket memory bandwidth ceiling; the
	// aggregate pipelined read rate of a socket's cores saturates at
	// this point (Fig. 2's aggregate behaviour: ~50 in-flight requests
	// per EP socket, ~75 per EX socket).
	MemBandwidthGBs float64
}

// cyclesToNS converts core cycles to nanoseconds at the machine's clock.
func cyclesToNS(cycles float64, ghz float64) float64 { return cycles / ghz }

// NewModel returns the calibrated model for a Nehalem-class machine.
// Latencies follow the published Nehalem numbers (4/10/38-cycle caches,
// ~65 ns local DRAM, cf. Molka et al., PACT'09, which the paper cites as
// [21]); the atomic and channel costs are calibrated to the paper's
// Figs. 2-3 and the 30 ns channel claim.
func NewModel(topo topology.Machine) Model {
	ghz := topo.ClockGHz
	return Model{
		Topo:               topo,
		L1LatencyNS:        cyclesToNS(4, ghz),
		L2LatencyNS:        cyclesToNS(10, ghz),
		L3LatencyNS:        cyclesToNS(38, ghz),
		MemLatencyNS:       65,
		TLBPenaltyNS:       15,
		IssueNS:            1.0,
		AtomicLocalNS:      20,
		AtomicRemoteNS:     120,
		ChannelVertexNS:    30,
		BarrierBaseNS:      1500,
		BarrierPerThreadNS: 250,
		MemBandwidthGBs:    float64(topo.MemChannels) * 8.5,
	}
}

// EP returns the calibrated model of the paper's dual-socket Nehalem EP.
func EP() Model { return NewModel(topology.NehalemEP) }

// EX returns the calibrated model of the paper's 4-socket Nehalem EX.
func EX() Model { return NewModel(topology.NehalemEX) }

// Level identifies which level of the memory hierarchy a working set
// falls into.
type Level int

// Memory hierarchy levels from fastest to slowest.
const (
	L1 Level = iota
	L2
	L3
	DRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// LevelOf returns the hierarchy level that fully contains a working set
// of ws bytes.
func (m Model) LevelOf(ws int64) Level {
	switch {
	case ws <= int64(m.Topo.L1KB)*1024:
		return L1
	case ws <= int64(m.Topo.L2KB)*1024:
		return L2
	case ws <= int64(m.Topo.L3MB)<<20:
		return L3
	default:
		return DRAM
	}
}

// RandomReadLatencyNS returns the expected latency of one random read in
// a working set of ws bytes, including the TLB slope beyond the L3.
// Between cache levels the latency blends linearly with the miss ratio
// implied by the size overflow, reproducing the soft steps of Fig. 2
// rather than hard cliffs.
func (m Model) RandomReadLatencyNS(ws int64) float64 {
	l1 := int64(m.Topo.L1KB) * 1024
	l2 := int64(m.Topo.L2KB) * 1024
	l3 := int64(m.Topo.L3MB) << 20
	switch {
	case ws <= 0:
		return m.L1LatencyNS
	case ws <= l1:
		return m.L1LatencyNS
	case ws <= l2:
		// Fraction of accesses that miss L1 = 1 - l1/ws for a uniform
		// random pattern over ws bytes.
		miss := 1 - float64(l1)/float64(ws)
		return m.L1LatencyNS + miss*(m.L2LatencyNS-m.L1LatencyNS)
	case ws <= l3:
		miss := 1 - float64(l2)/float64(ws)
		return m.L2LatencyNS + miss*(m.L3LatencyNS-m.L2LatencyNS)
	default:
		miss := 1 - float64(l3)/float64(ws)
		base := m.L3LatencyNS + miss*(m.MemLatencyNS-m.L3LatencyNS)
		// Page-walk pressure grows with the footprint.
		extra := m.TLBPenaltyNS * math.Log2(float64(ws)/float64(l3))
		return base + extra
	}
}

// mlpForLevel bounds how many outstanding requests each hierarchy level
// sustains per core. Lower levels pipeline fully; the shared L3's queue
// occupancy limits overlap (this is what pins the paper's 160 M reads/s
// at an 8 MB working set); DRAM sustains the core's full MaxOutstanding.
func (m Model) mlpForLevel(l Level) int {
	switch l {
	case L1:
		return 16
	case L2:
		return 8
	case L3:
		return 2
	default:
		return m.Topo.MaxOutstanding
	}
}

// RandomReadRate returns the sustained random-read rate (reads/second)
// of a single core issuing software-pipelined batches of `depth`
// independent reads over a working set of ws bytes — the experiment of
// Fig. 2. Depth beyond the level's sustainable occupancy buys nothing.
func (m Model) RandomReadRate(ws int64, depth int) float64 {
	if depth < 1 {
		depth = 1
	}
	if mlp := m.mlpForLevel(m.LevelOf(ws)); depth > mlp {
		depth = mlp
	}
	lat := m.RandomReadLatencyNS(ws)
	// depth requests overlap; the issue slot is the floor.
	perRead := lat / float64(depth)
	if perRead < m.IssueNS {
		perRead = m.IssueNS
	}
	return 1e9 / perRead
}

// AggregateReadRate returns the random-read rate of `cores` cores (plus
// SMT if threads > cores) on one socket, capped by the socket's memory
// bandwidth (64-byte line per read).
func (m Model) AggregateReadRate(ws int64, threads, depth int) float64 {
	perThread := m.RandomReadRate(ws, depth)
	total := perThread * float64(threads)
	if m.LevelOf(ws) == DRAM {
		lineBytes := float64(m.Topo.CacheLineBytes)
		cap := m.MemBandwidthGBs * 1e9 / lineBytes
		if total > cap {
			total = cap
		}
	}
	return total
}

// FetchAddRate returns the aggregate rate (ops/second) of `threads`
// hardware threads hammering atomic fetch-and-adds on a shared buffer
// of ws bytes — the experiment of Fig. 3. Threads are placed like the
// paper places them: filling one socket's cores before the next's.
//
// Two effects shape the curve:
//
//   - atomics serialize on the locked line, so they pipeline poorly
//     (no MLP benefit);
//   - once threads span sockets, a fraction of operations hit lines
//     last owned by the other socket and pay the coherence penalty.
func (m Model) FetchAddRate(ws int64, threads int) float64 {
	if threads < 1 {
		return 0
	}
	sockets := m.Topo.SocketsForThreads(threads)
	// Probability that the line touched was last touched by a thread of
	// another socket: with uniform random addresses and s sockets of
	// equal activity, (s-1)/s.
	remoteFrac := float64(sockets-1) / float64(sockets)
	// Base cost includes the read latency of the line (atomics cannot
	// overlap it) plus the locked-RMW cost.
	read := m.RandomReadLatencyNS(ws)
	local := read + m.AtomicLocalNS
	remote := read + m.AtomicRemoteNS
	per := local*(1-remoteFrac) + remote*remoteFrac
	// Within a socket atomics to independent lines do overlap across
	// cores (each core has its own pending op), but the lock-prefixed
	// part contends for the shared L3/ring: model as a sublinear core
	// scaling.
	perSocketThreads := float64(threads) / float64(sockets)
	socketScale := math.Pow(perSocketThreads, 0.82)
	return float64(sockets) * socketScale * 1e9 / per
}

// ChannelBatchNS returns the cost of moving `count` vertices through an
// inter-socket channel with the given batch size: the per-vertex
// pipeline cost plus a per-batch ticket-lock handoff. At the paper's
// batch sizes this converges to ~ChannelVertexNS per vertex.
func (m Model) ChannelBatchNS(count, batchSize int) float64 {
	if count <= 0 {
		return 0
	}
	if batchSize < 1 {
		batchSize = 1
	}
	batches := float64((count + batchSize - 1) / batchSize)
	const lockHandoffNS = 120 // two ticket-lock acquisitions + line transfer
	return float64(count)*m.ChannelVertexNS*0.5 + batches*lockHandoffNS
}

// BarrierNS returns the cost of one level barrier across threads.
func (m Model) BarrierNS(threads int) float64 {
	return m.BarrierBaseNS + m.BarrierPerThreadNS*float64(threads)
}
