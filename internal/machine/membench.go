package machine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/rng"
)

// This file contains the *measured* counterparts of Figs. 2 and 3: the
// same microbenchmarks the paper runs, executed on the host. The
// simulated curves come from the Model; these functions let the harness
// print host-measured rows next to them.

// MeasureRandomReadRate measures the host's sustained random-read rate
// (reads/second) over a working set of ws bytes with `depth`
// independent dependency chains in flight — the software-pipelining
// experiment of Fig. 2.
//
// The working set is a permutation array walked as a linked cycle, the
// standard technique to defeat both the hardware prefetcher and
// out-of-order speculation: with depth=1 every load depends on the
// previous one and memory-level parallelism is impossible; with
// depth=k, k interleaved and independent cycles let the memory system
// overlap up to k misses, exactly like the paper's batch of up to 16
// outstanding requests.
func MeasureRandomReadRate(ws int64, depth int, duration time.Duration) float64 {
	if depth < 1 {
		depth = 1
	}
	if depth > 64 {
		depth = 64
	}
	n := int(ws / 8)
	if n < depth*2 {
		n = depth * 2
	}
	// Build one random cycle per chain, interleaved over the same array
	// so the combined footprint is ws. Chain c owns the indices
	// congruent to c mod depth; a Sattolo shuffle of each class links it
	// into a single cycle.
	arr := make([]uint64, n)
	r := rng.New(uint64(ws) ^ uint64(depth)<<32 ^ 0x9e3779b9)
	for c := 0; c < depth; c++ {
		// Collect this chain's slots.
		var slots []int
		for i := c; i < n; i += depth {
			slots = append(slots, i)
		}
		// Sattolo's algorithm: a single cycle over the slots.
		order := make([]int, len(slots))
		copy(order, slots)
		for i := len(order) - 1; i > 0; i-- {
			j := r.Intn(i)
			order[i], order[j] = order[j], order[i]
		}
		for i := 0; i < len(order); i++ {
			arr[order[i]] = uint64(order[(i+1)%len(order)])
		}
	}

	// Warm up the page tables.
	var sink uint64
	for i := 0; i < n; i += 512 {
		sink += arr[i]
	}

	cursors := make([]uint64, depth)
	for c := 0; c < depth; c++ {
		cursors[c] = uint64(c % n)
	}
	reads := 0
	start := time.Now()
	for time.Since(start) < duration {
		// An inner block keeps the timing call off the hot path.
		for b := 0; b < 1024; b++ {
			for c := 0; c < depth; c++ {
				cursors[c] = arr[cursors[c]]
			}
		}
		reads += 1024 * depth
	}
	elapsed := time.Since(start).Seconds()
	for _, c := range cursors {
		sink += c
	}
	runtime.KeepAlive(sink)
	if elapsed <= 0 {
		return 0
	}
	return float64(reads) / elapsed
}

// MeasureFetchAddRate measures the host's aggregate atomic
// fetch-and-add rate (ops/second) with `threads` goroutines hammering
// random slots of a shared buffer of ws bytes — the experiment of
// Fig. 3.
func MeasureFetchAddRate(ws int64, threads int, duration time.Duration) float64 {
	if threads < 1 {
		threads = 1
	}
	n := int(ws / 8)
	if n < 1 {
		n = 1
	}
	buf := make([]int64, n)
	var total atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rng.New(uint64(t)*0x9e3779b97f4a7c15 + 1)
			ops := int64(0)
			mask := uint64(0)
			pow2 := 1
			for pow2*2 <= n {
				pow2 *= 2
			}
			mask = uint64(pow2 - 1)
			for {
				select {
				case <-stop:
					total.Add(ops)
					return
				default:
				}
				for b := 0; b < 512; b++ {
					idx := r.Uint64() & mask
					atomic.AddInt64(&buf[idx], 1)
				}
				ops += 512
			}
		}(t)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	runtime.KeepAlive(buf)
	return float64(total.Load()) / duration.Seconds()
}
