package machine

import (
	"testing"

	"mcbfs/internal/topology"
)

func TestLevelOf(t *testing.T) {
	m := EP()
	cases := []struct {
		ws   int64
		want Level
	}{
		{1 << 10, L1},
		{32 << 10, L1},
		{33 << 10, L2},
		{256 << 10, L2},
		{1 << 20, L3},
		{8 << 20, L3},
		{9 << 20, DRAM},
		{2 << 30, DRAM},
	}
	for _, c := range cases {
		if got := m.LevelOf(c.ws); got != c.want {
			t.Errorf("LevelOf(%d) = %v, want %v", c.ws, got, c.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{L1, L2, L3, DRAM} {
		if l.String() == "" {
			t.Errorf("empty name for level %d", int(l))
		}
	}
}

func TestLatencyMonotonic(t *testing.T) {
	m := EP()
	prev := 0.0
	for ws := int64(4 << 10); ws <= 8<<30; ws *= 2 {
		lat := m.RandomReadLatencyNS(ws)
		if lat < prev {
			t.Errorf("latency decreased at ws=%d: %v < %v", ws, lat, prev)
		}
		prev = lat
	}
}

func TestLatencyAnchors(t *testing.T) {
	m := EP()
	if lat := m.RandomReadLatencyNS(4 << 10); lat > 2 {
		t.Errorf("L1 latency = %v ns, want ~1.4", lat)
	}
	// Nehalem local DRAM latency is ~65 ns before TLB effects.
	lat := m.RandomReadLatencyNS(64 << 20)
	if lat < 50 || lat > 120 {
		t.Errorf("64MB latency = %v ns, want around 65-100", lat)
	}
}

// TestFig2Anchors pins the model to the two rates the paper quotes for
// Fig. 2: ~160 M reads/s at an 8 MB working set and ~40 M reads/s at
// 2 GB, with 16 requests in flight.
func TestFig2Anchors(t *testing.T) {
	m := EP()
	r8m := m.RandomReadRate(8<<20, 16)
	if r8m < 100e6 || r8m > 250e6 {
		t.Errorf("rate(8MB, depth16) = %.1f M/s, paper reports ~160 M/s", r8m/1e6)
	}
	r2g := m.RandomReadRate(2<<30, 16)
	if r2g < 25e6 || r2g > 60e6 {
		t.Errorf("rate(2GB, depth16) = %.1f M/s, paper reports ~40 M/s", r2g/1e6)
	}
}

// TestFig2PipeliningGain pins the ~8x claim: "with a simple software
// pipelining strategy we can increase by a factor of eight the number
// of transactions per second".
func TestFig2PipeliningGain(t *testing.T) {
	m := EP()
	gain := m.RandomReadRate(2<<30, 16) / m.RandomReadRate(2<<30, 1)
	if gain < 6 || gain > 11 {
		t.Errorf("pipelining gain at 2GB = %.1fx, paper reports ~8x", gain)
	}
}

func TestRandomReadRateDepthMonotonic(t *testing.T) {
	m := EP()
	for _, ws := range []int64{16 << 10, 4 << 20, 1 << 30} {
		prev := 0.0
		for depth := 1; depth <= 16; depth++ {
			r := m.RandomReadRate(ws, depth)
			if r < prev {
				t.Errorf("rate decreased at ws=%d depth=%d", ws, depth)
			}
			prev = r
		}
	}
}

func TestRandomReadRateWorkingSetSteps(t *testing.T) {
	// The staircase of Fig. 2: each cache overflow loses throughput.
	m := EP()
	l1 := m.RandomReadRate(16<<10, 16)
	l2 := m.RandomReadRate(128<<10, 16)
	l3 := m.RandomReadRate(6<<20, 16)
	mem := m.RandomReadRate(1<<30, 16)
	if !(l1 >= l2 && l2 > l3 && l3 > mem) {
		t.Errorf("rates not a staircase: L1=%.0fM L2=%.0fM L3=%.0fM DRAM=%.0fM",
			l1/1e6, l2/1e6, l3/1e6, mem/1e6)
	}
	if l1 < 4*mem {
		t.Errorf("cache-resident rate %.0fM not well above DRAM rate %.0fM", l1/1e6, mem/1e6)
	}
}

func TestRandomReadRateDegenerateDepth(t *testing.T) {
	m := EP()
	if m.RandomReadRate(1<<20, 0) != m.RandomReadRate(1<<20, 1) {
		t.Error("depth 0 should clamp to 1")
	}
}

func TestAggregateReadRateBandwidthCap(t *testing.T) {
	m := EP()
	// 8 threads deep in DRAM must not exceed the socket bandwidth cap.
	agg := m.AggregateReadRate(4<<30, 16, 16)
	cap := m.MemBandwidthGBs * 1e9 / 64
	if agg > cap*1.001 {
		t.Errorf("aggregate rate %.0fM exceeds bandwidth cap %.0fM", agg/1e6, cap/1e6)
	}
	// Cache-resident aggregate is not capped.
	small := m.AggregateReadRate(16<<10, 8, 16)
	if small <= m.RandomReadRate(16<<10, 16) {
		t.Error("aggregate cache rate did not scale with threads")
	}
}

// TestFig3SocketCliff pins the headline of Fig. 3: "using 8 cores on
// two sockets, we achieve the same processing rate of only 3 cores on a
// single socket".
func TestFig3SocketCliff(t *testing.T) {
	m := EP()
	const ws = 4 << 20 // the paper's fixed 4 MB buffer
	r8x2 := m.FetchAddRate(ws, 8)
	r3x1 := m.FetchAddRate(ws, 3)
	ratio := r8x2 / r3x1
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("rate(8 threads, 2 sockets) / rate(3 threads, 1 socket) = %.2f, paper says ~1", ratio)
	}
}

func TestFig3DropAcrossBoundary(t *testing.T) {
	m := EP()
	const ws = 4 << 20
	r4 := m.FetchAddRate(ws, 4)
	r5 := m.FetchAddRate(ws, 5)
	if r5 >= r4 {
		t.Errorf("no drop crossing the socket boundary: rate(4)=%.0fM rate(5)=%.0fM", r4/1e6, r5/1e6)
	}
}

func TestFig3ScalesWithinSocket(t *testing.T) {
	m := EP()
	const ws = 4 << 20
	prev := 0.0
	for threads := 1; threads <= 4; threads++ {
		r := m.FetchAddRate(ws, threads)
		if r <= prev {
			t.Errorf("fetch-add rate not increasing within socket at %d threads", threads)
		}
		prev = r
	}
}

func TestFetchAddRateZeroThreads(t *testing.T) {
	if EP().FetchAddRate(4<<20, 0) != 0 {
		t.Error("0 threads should give 0 rate")
	}
}

// TestChannelPerVertexCost pins the ~30 ns per-vertex channel claim.
func TestChannelPerVertexCost(t *testing.T) {
	m := EX()
	total := m.ChannelBatchNS(10000, 64)
	per := total / 10000
	if per < 15 || per > 45 {
		t.Errorf("channel cost = %.1f ns/vertex, paper reports ~30", per)
	}
}

func TestChannelBatchingAmortizes(t *testing.T) {
	m := EX()
	batched := m.ChannelBatchNS(10000, 64)
	unbatched := m.ChannelBatchNS(10000, 1)
	if batched >= unbatched {
		t.Errorf("batching does not help: batched=%.0f unbatched=%.0f", batched, unbatched)
	}
}

func TestChannelZeroCount(t *testing.T) {
	if EX().ChannelBatchNS(0, 64) != 0 {
		t.Error("zero vertices should cost nothing")
	}
}

func TestBarrierGrowsWithThreads(t *testing.T) {
	m := EX()
	if m.BarrierNS(64) <= m.BarrierNS(8) {
		t.Error("barrier cost should grow with threads")
	}
}

func TestModelsForBothMachines(t *testing.T) {
	ep, ex := EP(), EX()
	if ep.Topo.Name != topology.NehalemEP.Name {
		t.Error("EP model has wrong topology")
	}
	if ex.Topo.Name != topology.NehalemEX.Name {
		t.Error("EX model has wrong topology")
	}
	// EX has the bigger L3: its 16 MB working set is still L3-resident.
	if ex.LevelOf(16<<20) != L3 {
		t.Error("16MB should be L3-resident on EX")
	}
	if ep.LevelOf(16<<20) != DRAM {
		t.Error("16MB should spill to DRAM on EP")
	}
}
