package gen

import (
	"runtime"
	"testing"
)

// TestGeneratorsIndependentOfGOMAXPROCS pins the package's central
// determinism promise: shard boundaries and RNG streams are fixed, so
// the generated graph is identical at any parallelism level.
func TestGeneratorsIndependentOfGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	u1, err := Uniform(5000, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RMAT(12, 1<<14, GTgraphDefaults, 77)
	if err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{2, 4, 16} {
		runtime.GOMAXPROCS(procs)
		u2, err := Uniform(5000, 8, 77)
		if err != nil {
			t.Fatal(err)
		}
		if !equalGraphs(u1, u2) {
			t.Errorf("Uniform differs at GOMAXPROCS=%d", procs)
		}
		r2, err := RMAT(12, 1<<14, GTgraphDefaults, 77)
		if err != nil {
			t.Fatal(err)
		}
		if !equalGraphs(r1, r2) {
			t.Errorf("RMAT differs at GOMAXPROCS=%d", procs)
		}
	}
}
