// Package gen produces the synthetic graph workloads evaluated in the
// SC'10 paper: uniformly random graphs, R-MAT scale-free graphs (the
// GTgraph parameterization), an SSCA#2-style clustered workload, and 2-D
// grids (used by the Xia-Prasanna comparison row of Table III). Small
// deterministic shapes (chain, star, complete graph, binary tree) are
// provided for tests.
//
// All generators are deterministic functions of their seed, and the
// heavyweight ones shard work across goroutines with non-overlapping RNG
// streams, so the same (parameters, seed) pair yields the same graph at
// any parallelism level.
package gen

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mcbfs/internal/graph"
	"mcbfs/internal/rng"
)

// Uniform returns a directed uniformly random graph with n vertices and
// exactly n*degree edges: each vertex gets degree out-neighbours chosen
// uniformly at random (with replacement, so multi-edges and self-loops
// can occur, matching the paper's "graphs with n vertices each with
// degree d, where the d neighbours of a vertex are chosen randomly").
func Uniform(n, degree int, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: vertex count %d must be positive", n)
	}
	if degree < 0 {
		return nil, fmt.Errorf("gen: degree %d must be non-negative", degree)
	}
	m := int64(n) * int64(degree)
	offsets := make([]int64, n+1)
	for v := 0; v <= n; v++ {
		offsets[v] = int64(v) * int64(degree)
	}
	targets := make([]graph.Vertex, m)
	parallelFill(n, seed, func(lo, hi int, r *rng.Xoshiro256) {
		for v := lo; v < hi; v++ {
			base := int64(v) * int64(degree)
			for i := 0; i < degree; i++ {
				targets[base+int64(i)] = graph.Vertex(r.Uint64n(uint64(n)))
			}
		}
	})
	return graph.FromCSR(offsets, targets)
}

// RMATParams are the four Kronecker probabilities of the R-MAT model.
// They must be positive and sum to 1. GTgraph's defaults, used by the
// paper's scale-free experiments, are (0.45, 0.15, 0.15, 0.25); the
// Graph500 parameterization is (0.57, 0.19, 0.19, 0.05).
type RMATParams struct {
	A, B, C, D float64
}

// GTgraphDefaults mirrors the default R-MAT parameters of the GTgraph
// suite cited by the paper.
var GTgraphDefaults = RMATParams{A: 0.45, B: 0.15, C: 0.15, D: 0.25}

// Graph500Params is the Graph500/Kronecker parameterization, included
// for cross-checking against the later reference implementations.
var Graph500Params = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

func (p RMATParams) validate() error {
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 {
		return fmt.Errorf("gen: R-MAT parameters must be positive: %+v", p)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gen: R-MAT parameters sum to %v, want 1", sum)
	}
	return nil
}

// RMAT returns a directed R-MAT graph with 2^scale vertices and m edges.
// Each edge is sampled independently by descending the implicit 2^scale
// x 2^scale adjacency matrix, choosing one of four quadrants per level
// with probabilities (A, B, C, D) plus a small symmetric noise term to
// avoid degenerate staircases, as in GTgraph. Multi-edges and self-loops
// are kept (the paper measures ma, the edges actually traversed).
func RMAT(scale int, m int64, p RMATParams, seed uint64) (*graph.Graph, error) {
	if scale < 0 || scale > 30 {
		return nil, fmt.Errorf("gen: R-MAT scale %d out of range [0,30]", scale)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: negative edge count %d", m)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := 1 << scale
	srcs := make([]graph.Vertex, m)
	dsts := make([]graph.Vertex, m)
	parallelFillEdges(m, seed, func(lo, hi int64, r *rng.Xoshiro256) {
		for i := lo; i < hi; i++ {
			srcs[i], dsts[i] = rmatEdge(scale, p, r)
		}
	})
	return fromArrays(n, srcs, dsts)
}

// rmatEdge samples one edge by quadrant descent.
func rmatEdge(scale int, p RMATParams, r *rng.Xoshiro256) (graph.Vertex, graph.Vertex) {
	var u, v uint64
	a, b, c := p.A, p.B, p.C
	for bit := 0; bit < scale; bit++ {
		// Perturb the probabilities by up to ±10% per level, renormalized,
		// as GTgraph does, so the generated matrix is not exactly
		// self-similar.
		noise := 0.9 + 0.2*r.Float64()
		an, bn, cn := a*noise, b, c
		total := an + bn + cn + (1 - a - b - c)
		x := r.Float64() * total
		switch {
		case x < an:
			// top-left quadrant: no bits set
		case x < an+bn:
			v |= 1 << uint(bit)
		case x < an+bn+cn:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
	}
	return graph.Vertex(u), graph.Vertex(v)
}

// SSCA2 returns an SSCA#2-style graph: maxCliqueSize-bounded cliques of
// vertices connected by sparse inter-clique edges, the workload of the
// SSCA#2 benchmark the paper's Fig. 10 references. n is rounded down to
// a whole number of cliques.
func SSCA2(n, maxCliqueSize int, interCliqueFraction float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: vertex count %d must be positive", n)
	}
	if maxCliqueSize < 1 {
		return nil, fmt.Errorf("gen: max clique size %d must be >= 1", maxCliqueSize)
	}
	if interCliqueFraction < 0 || interCliqueFraction > 1 {
		return nil, fmt.Errorf("gen: inter-clique fraction %v out of [0,1]", interCliqueFraction)
	}
	r := rng.New(seed)
	// Assign vertices to cliques of random size in [1, maxCliqueSize].
	cliqueOf := make([]int32, n)
	var cliqueStart []int
	for v := 0; v < n; {
		size := 1 + r.Intn(maxCliqueSize)
		if v+size > n {
			size = n - v
		}
		id := int32(len(cliqueStart))
		cliqueStart = append(cliqueStart, v)
		for i := 0; i < size; i++ {
			cliqueOf[v+i] = id
		}
		v += size
	}
	cliqueStart = append(cliqueStart, n)
	var edges []graph.Edge
	// Intra-clique: every ordered pair (directed clique).
	for c := 0; c+1 < len(cliqueStart); c++ {
		lo, hi := cliqueStart[c], cliqueStart[c+1]
		for u := lo; u < hi; u++ {
			for v := lo; v < hi; v++ {
				if u != v {
					edges = append(edges, graph.Edge{Src: graph.Vertex(u), Dst: graph.Vertex(v)})
				}
			}
		}
	}
	// Inter-clique: a fraction of vertices get one random remote edge,
	// plus both directions to keep the graph well connected.
	remote := int(float64(n) * interCliqueFraction)
	for i := 0; i < remote; i++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if cliqueOf[u] == cliqueOf[v] {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v}, graph.Edge{Src: v, Dst: u})
	}
	return graph.FromEdges(n, edges)
}

// Grid returns the k-connectivity 2-D grid with rows*cols vertices used
// in the Xia-Prasanna comparison: conn=4 connects the von Neumann
// neighbourhood, conn=8 the Moore neighbourhood. Edges are directed both
// ways.
func Grid(rows, cols, conn int) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: grid dimensions %dx%d must be positive", rows, cols)
	}
	if conn != 4 && conn != 8 {
		return nil, fmt.Errorf("gen: grid connectivity %d must be 4 or 8", conn)
	}
	n := rows * cols
	if n > graph.MaxVertices {
		return nil, fmt.Errorf("gen: grid too large (%d vertices)", n)
	}
	var deltas [][2]int
	deltas = [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	if conn == 8 {
		deltas = append(deltas, [][2]int{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}}...)
	}
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	adj := make([][]graph.Vertex, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for _, d := range deltas {
				nr, nc := r+d[0], c+d[1]
				if nr >= 0 && nr < rows && nc >= 0 && nc < cols {
					adj[id(r, c)] = append(adj[id(r, c)], id(nr, nc))
				}
			}
		}
	}
	return graph.FromAdjacency(adj)
}

// Chain returns the path graph 0->1->...->n-1 (directed).
func Chain(n int) (*graph.Graph, error) {
	adj := make([][]graph.Vertex, n)
	for v := 0; v+1 < n; v++ {
		adj[v] = []graph.Vertex{graph.Vertex(v + 1)}
	}
	return graph.FromAdjacency(adj)
}

// Star returns the star graph with edges hub->spoke for every spoke.
func Star(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: star needs at least 1 vertex")
	}
	adj := make([][]graph.Vertex, n)
	for v := 1; v < n; v++ {
		adj[0] = append(adj[0], graph.Vertex(v))
	}
	return graph.FromAdjacency(adj)
}

// Complete returns the complete directed graph on n vertices.
func Complete(n int) (*graph.Graph, error) {
	adj := make([][]graph.Vertex, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				adj[u] = append(adj[u], graph.Vertex(v))
			}
		}
	}
	return graph.FromAdjacency(adj)
}

// BinaryTree returns a complete binary tree of the given depth with
// edges pointing from parent to children. Depth 0 is a single vertex.
func BinaryTree(depth int) (*graph.Graph, error) {
	if depth < 0 || depth > 30 {
		return nil, fmt.Errorf("gen: tree depth %d out of range [0,30]", depth)
	}
	n := (1 << (depth + 1)) - 1
	adj := make([][]graph.Vertex, n)
	for v := 0; 2*v+2 < n; v++ {
		adj[v] = []graph.Vertex{graph.Vertex(2*v + 1), graph.Vertex(2*v + 2)}
	}
	return graph.FromAdjacency(adj)
}

// fromArrays builds a CSR graph from parallel source/target arrays
// using graph.FromArrays — the shared (and, for large m, parallel)
// counting-sort kernel — avoiding the []Edge intermediate.
func fromArrays(n int, srcs, dsts []graph.Vertex) (*graph.Graph, error) {
	return graph.FromArrays(n, srcs, dsts)
}

// genShards is the fixed number of work shards used by the parallel
// generators. Shard s always covers the same index range and always
// receives the s-th split of the seed's RNG stream, so the generated
// graph is a pure function of (parameters, seed) regardless of
// GOMAXPROCS or scheduling.
const genShards = 64

// parallelFill partitions [0, n) into genShards fixed shards, each with
// a private non-overlapping RNG stream, and processes them on up to
// GOMAXPROCS goroutines.
func parallelFill(n int, seed uint64, fill func(lo, hi int, r *rng.Xoshiro256)) {
	base := rng.New(seed)
	streams := make([]*rng.Xoshiro256, genShards)
	for i := range streams {
		streams[i] = base.Split()
	}
	var next atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > genShards {
		workers = genShards
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= genShards {
					return
				}
				lo := n * s / genShards
				hi := n * (s + 1) / genShards
				if lo < hi {
					fill(lo, hi, streams[s])
				}
			}
		}()
	}
	wg.Wait()
}

// parallelFillEdges is parallelFill over an int64 edge range.
func parallelFillEdges(m int64, seed uint64, fill func(lo, hi int64, r *rng.Xoshiro256)) {
	base := rng.New(seed)
	streams := make([]*rng.Xoshiro256, genShards)
	for i := range streams {
		streams[i] = base.Split()
	}
	var next atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > genShards {
		workers = genShards
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int64(next.Add(1)) - 1
				if s >= genShards {
					return
				}
				lo := m * s / genShards
				hi := m * (s + 1) / genShards
				if lo < hi {
					fill(lo, hi, streams[s])
				}
			}
		}()
	}
	wg.Wait()
}
