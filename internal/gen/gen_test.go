package gen

import (
	"math"
	"testing"
	"testing/quick"

	"mcbfs/internal/graph"
)

func TestUniformCounts(t *testing.T) {
	g, err := Uniform(1000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("NumVertices = %d, want 1000", g.NumVertices())
	}
	if g.NumEdges() != 8000 {
		t.Errorf("NumEdges = %d, want 8000", g.NumEdges())
	}
	for v := 0; v < 1000; v++ {
		if g.Degree(graph.Vertex(v)) != 8 {
			t.Fatalf("Degree(%d) = %d, want 8", v, g.Degree(graph.Vertex(v)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, err := Uniform(500, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(500, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(a, b) {
		t.Error("same seed produced different uniform graphs")
	}
	c, err := Uniform(500, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if equalGraphs(a, c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestUniformTargetSpread(t *testing.T) {
	// With 200k edges over 1000 vertices the in-degree distribution
	// should cover essentially every vertex.
	g, err := Uniform(1000, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 1000)
	for _, v := range g.Targets() {
		seen[v] = true
	}
	missing := 0
	for _, s := range seen {
		if !s {
			missing++
		}
	}
	if missing > 5 {
		t.Errorf("%d vertices never chosen as a target; generator may be biased", missing)
	}
}

func TestUniformRejectsBadArgs(t *testing.T) {
	if _, err := Uniform(0, 4, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Uniform(-5, 4, 1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Uniform(10, -1, 1); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestUniformZeroDegree(t *testing.T) {
	g, err := Uniform(10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestRMATCounts(t *testing.T) {
	g, err := RMAT(10, 8192, GTgraphDefaults, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("NumVertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() != 8192 {
		t.Errorf("NumEdges = %d, want 8192", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(8, 2048, GTgraphDefaults, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(8, 2048, GTgraphDefaults, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(a, b) {
		t.Error("same seed produced different R-MAT graphs")
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// The defining property of R-MAT: a handful of very high degree
	// vertices. Compare max degree against a uniform graph of the same
	// size; R-MAT's should be several times larger.
	rm, err := RMAT(12, 1<<16, GTgraphDefaults, 11)
	if err != nil {
		t.Fatal(err)
	}
	un, err := Uniform(1<<12, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	rs, us := rm.ComputeStats(), un.ComputeStats()
	if rs.MaxDegree < 3*us.MaxDegree {
		t.Errorf("R-MAT max degree %d vs uniform %d; expected heavy skew", rs.MaxDegree, us.MaxDegree)
	}
	if rs.Isolated == 0 {
		t.Error("R-MAT graph has no low-degree/isolated vertices; distribution looks wrong")
	}
}

func TestRMATQuadrantBias(t *testing.T) {
	// With A much larger than D, low-numbered vertices should carry far
	// more edges than high-numbered ones.
	g, err := RMAT(10, 1<<15, RMATParams{A: 0.7, B: 0.1, C: 0.1, D: 0.1}, 13)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var lowHalf, highHalf int64
	for v := 0; v < n; v++ {
		d := int64(g.Degree(graph.Vertex(v)))
		if v < n/2 {
			lowHalf += d
		} else {
			highHalf += d
		}
	}
	if lowHalf < 2*highHalf {
		t.Errorf("low half has %d edges, high half %d; expected strong bias to quadrant A", lowHalf, highHalf)
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(5, 10, RMATParams{A: 0.5, B: 0.5, C: 0.5, D: 0.5}, 1); err == nil {
		t.Error("parameters summing to 2 accepted")
	}
	if _, err := RMAT(5, 10, RMATParams{A: 1, B: 0, C: 0, D: 0}, 1); err == nil {
		t.Error("zero quadrant probability accepted")
	}
	if _, err := RMAT(-1, 10, GTgraphDefaults, 1); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := RMAT(31, 10, GTgraphDefaults, 1); err == nil {
		t.Error("scale 31 accepted")
	}
	if _, err := RMAT(5, -1, GTgraphDefaults, 1); err == nil {
		t.Error("negative edge count accepted")
	}
}

func TestSSCA2Structure(t *testing.T) {
	g, err := SSCA2(500, 10, 0.2, 21)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Errorf("NumVertices = %d, want 500", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every vertex in a clique of size >= 2 must have at least one edge;
	// overall edge count must be positive and bounded by n*maxClique plus
	// inter-clique extras.
	if g.NumEdges() == 0 {
		t.Error("SSCA2 produced no edges")
	}
	s := g.ComputeStats()
	if s.MaxDegree > 10+10 {
		t.Errorf("max degree %d exceeds clique bound + remote edges", s.MaxDegree)
	}
}

func TestSSCA2CliqueSizeOne(t *testing.T) {
	g, err := SSCA2(50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("size-1 cliques with no remote edges should have 0 edges, got %d", g.NumEdges())
	}
}

func TestSSCA2RejectsBadArgs(t *testing.T) {
	if _, err := SSCA2(0, 5, 0.1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SSCA2(10, 0, 0.1, 1); err == nil {
		t.Error("clique size 0 accepted")
	}
	if _, err := SSCA2(10, 5, -0.1, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := SSCA2(10, 5, 1.5, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestGrid4(t *testing.T) {
	g, err := Grid(3, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("NumVertices = %d, want 12", g.NumVertices())
	}
	// Interior vertex (1,1) = id 5 has 4 neighbours; corner 0 has 2.
	if g.Degree(5) != 4 {
		t.Errorf("interior degree = %d, want 4", g.Degree(5))
	}
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	// Edge count: 2*(rows*(cols-1) + cols*(rows-1)) directed.
	want := int64(2 * (3*3 + 4*2))
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
}

func TestGrid8(t *testing.T) {
	g, err := Grid(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(4) != 8 { // center of 3x3
		t.Errorf("center degree = %d, want 8", g.Degree(4))
	}
	if g.Degree(0) != 3 { // corner: right, down, diagonal
		t.Errorf("corner degree = %d, want 3", g.Degree(0))
	}
}

func TestGridSymmetric(t *testing.T) {
	g, err := Grid(5, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if !g.HasEdge(v, graph.Vertex(u)) {
				t.Fatalf("grid edge %d->%d has no reverse", u, v)
			}
		}
	}
}

func TestGridRejectsBadArgs(t *testing.T) {
	if _, err := Grid(0, 5, 4); err == nil {
		t.Error("0 rows accepted")
	}
	if _, err := Grid(5, 0, 4); err == nil {
		t.Error("0 cols accepted")
	}
	if _, err := Grid(5, 5, 6); err == nil {
		t.Error("connectivity 6 accepted")
	}
}

func TestChain(t *testing.T) {
	g, err := Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	for v := 0; v < 4; v++ {
		if !g.HasEdge(graph.Vertex(v), graph.Vertex(v+1)) {
			t.Errorf("missing chain edge %d->%d", v, v+1)
		}
	}
	if g.Degree(4) != 0 {
		t.Error("last vertex should have no out-edges")
	}
}

func TestChainEmpty(t *testing.T) {
	g, err := Chain(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Errorf("Chain(0) has %d vertices", g.NumVertices())
	}
}

func TestStar(t *testing.T) {
	g, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 5 {
		t.Errorf("hub degree = %d, want 5", g.Degree(0))
	}
	for v := 1; v < 6; v++ {
		if g.Degree(graph.Vertex(v)) != 0 {
			t.Errorf("spoke %d has out-degree %d", v, g.Degree(graph.Vertex(v)))
		}
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 20 {
		t.Errorf("NumEdges = %d, want 20", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(graph.Vertex(v)) != 4 {
			t.Errorf("Degree(%d) = %d, want 4", v, g.Degree(graph.Vertex(v)))
		}
		if g.HasEdge(graph.Vertex(v), graph.Vertex(v)) {
			t.Errorf("self-loop at %d", v)
		}
	}
}

func TestBinaryTree(t *testing.T) {
	g, err := BinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 15 {
		t.Fatalf("NumVertices = %d, want 15", g.NumVertices())
	}
	if g.NumEdges() != 14 {
		t.Fatalf("NumEdges = %d, want 14", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(6, 14) {
		t.Error("tree structure wrong")
	}
	// Leaves have no children.
	for v := 7; v < 15; v++ {
		if g.Degree(graph.Vertex(v)) != 0 {
			t.Errorf("leaf %d has degree %d", v, g.Degree(graph.Vertex(v)))
		}
	}
}

func TestUniformMeanInDegree(t *testing.T) {
	// In-degree of each vertex is Binomial(m, 1/n); mean must be close to
	// the out-degree.
	const n, d = 2000, 16
	g, err := Uniform(n, d, 17)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]int, n)
	for _, v := range g.Targets() {
		inDeg[v]++
	}
	sum := 0
	for _, x := range inDeg {
		sum += x
	}
	mean := float64(sum) / n
	if math.Abs(mean-d) > 0.001 {
		t.Errorf("mean in-degree = %v, want %v", mean, float64(d))
	}
}

func TestQuickUniformAlwaysValid(t *testing.T) {
	f := func(nRaw uint16, dRaw uint8, seed uint64) bool {
		n := int(nRaw%1000) + 1
		d := int(dRaw % 16)
		g, err := Uniform(n, d, seed)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.NumEdges() == int64(n)*int64(d)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRMATAlwaysValid(t *testing.T) {
	f := func(scaleRaw uint8, mRaw uint16, seed uint64) bool {
		scale := int(scaleRaw % 12)
		m := int64(mRaw % 4096)
		g, err := RMAT(scale, m, GTgraphDefaults, seed)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.NumEdges() == m && g.NumVertices() == 1<<scale
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func equalGraphs(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	at, bt := a.Targets(), b.Targets()
	for i := range at {
		if at[i] != bt[i] {
			return false
		}
	}
	ao, bo := a.Offsets(), b.Offsets()
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	return true
}

func BenchmarkUniform1M8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Uniform(1<<20, 8, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMATScale18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(18, 1<<21, GTgraphDefaults, 42); err != nil {
			b.Fatal(err)
		}
	}
}
