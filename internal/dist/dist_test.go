package dist

import (
	"testing"
	"testing/quick"

	"mcbfs/internal/core"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
)

func must(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestDistMatchesSequentialAcrossNodeCounts(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
		root graph.Vertex
	}{
		{"uniform", must(gen.Uniform(3000, 8, 1)), 0},
		{"rmat", must(gen.RMAT(11, 1<<14, gen.GTgraphDefaults, 2)), 5},
		{"chain", must(gen.Chain(300)), 0},
		{"grid", must(gen.Grid(30, 40, 4)), 7},
		{"islands", must(gen.Uniform(2000, 1, 3)), 11},
	}
	for _, f := range families {
		ref, err := core.BFS(f.g, f.root, core.Options{Algorithm: core.AlgSequential})
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 3, 4, 7} {
			for _, batch := range []int{0, 1, 16} {
				res, err := BFS(f.g, f.root, Options{Nodes: nodes, BatchSize: batch})
				if err != nil {
					t.Fatalf("%s nodes=%d: %v", f.name, nodes, err)
				}
				if res.Reached != ref.Reached {
					t.Errorf("%s nodes=%d batch=%d: Reached = %d, want %d",
						f.name, nodes, batch, res.Reached, ref.Reached)
				}
				if res.EdgesTraversed != ref.EdgesTraversed {
					t.Errorf("%s nodes=%d batch=%d: Edges = %d, want %d",
						f.name, nodes, batch, res.EdgesTraversed, ref.EdgesTraversed)
				}
				if res.Levels != ref.Levels {
					t.Errorf("%s nodes=%d batch=%d: Levels = %d, want %d",
						f.name, nodes, batch, res.Levels, ref.Levels)
				}
				if err := core.ValidateTree(f.g, f.root, res.Parents); err != nil {
					t.Errorf("%s nodes=%d batch=%d: %v", f.name, nodes, batch, err)
				}
			}
		}
	}
}

func TestDistRejectsBadInput(t *testing.T) {
	g := must(gen.Chain(3))
	if _, err := BFS(nil, 0, Options{Nodes: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := BFS(g, 9, Options{Nodes: 2}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := BFS(g, 0, Options{Nodes: 0}); err == nil {
		t.Error("0 nodes accepted")
	}
}

func TestDistCommStatsShape(t *testing.T) {
	g := must(gen.Uniform(2000, 8, 4))
	const nodes = 4
	res, err := BFS(g, 0, Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	// With pure level aggregation, each node sends one final marker to
	// every peer per level, plus one payload message per non-empty
	// destination buffer. Final markers alone give a lower bound.
	minMsgs := int64(nodes * (nodes - 1) * res.Comm.Supersteps)
	if res.Comm.Messages < minMsgs {
		t.Errorf("Messages = %d, below the %d final markers", res.Comm.Messages, minMsgs)
	}
	if res.Comm.Supersteps != res.Levels {
		t.Errorf("Supersteps = %d, Levels = %d", res.Comm.Supersteps, res.Levels)
	}
	// Tuples sent = cross-node adjacency scans: for a uniform random
	// graph roughly (nodes-1)/nodes of m_a.
	frac := float64(res.Comm.TuplesSent) / float64(res.EdgesTraversed)
	want := float64(nodes-1) / float64(nodes)
	if frac < want-0.1 || frac > want+0.1 {
		t.Errorf("cross-node tuple fraction = %.2f, want ~%.2f", frac, want)
	}
	if res.Comm.MaxNodeTuples <= 0 || res.Comm.MaxNodeTuples > res.Comm.TuplesSent {
		t.Errorf("MaxNodeTuples = %d out of range", res.Comm.MaxNodeTuples)
	}
}

func TestDistSingleNodeSendsNothing(t *testing.T) {
	g := must(gen.Uniform(1000, 8, 5))
	res, err := BFS(g, 0, Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.TuplesSent != 0 || res.Comm.Messages != 0 {
		t.Errorf("single node sent %d tuples in %d messages", res.Comm.TuplesSent, res.Comm.Messages)
	}
}

func TestDistMoreNodesThanVertices(t *testing.T) {
	g := must(gen.Chain(3))
	res, err := BFS(g, 0, Options{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 3 {
		t.Errorf("Reached = %d, want 3", res.Reached)
	}
	if err := core.ValidateTree(g, 0, res.Parents); err != nil {
		t.Error(err)
	}
}

func TestDistBatchSizeInvariance(t *testing.T) {
	g := must(gen.RMAT(10, 8192, gen.GTgraphDefaults, 6))
	base, err := BFS(g, 0, Options{Nodes: 4, BatchSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 33, 1024} {
		res, err := BFS(g, 0, Options{Nodes: 4, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached != base.Reached || res.Comm.TuplesSent != base.Comm.TuplesSent {
			t.Errorf("batch=%d: Reached=%d/%d Tuples=%d/%d", batch,
				res.Reached, base.Reached, res.Comm.TuplesSent, base.Comm.TuplesSent)
		}
		// Smaller batches mean at least as many messages.
		if batch == 1 && res.Comm.Messages < base.Comm.Messages {
			t.Errorf("batch=1 produced fewer messages (%d) than level aggregation (%d)",
				res.Comm.Messages, base.Comm.Messages)
		}
	}
}

func TestQuickDistMatchesSequential(t *testing.T) {
	f := func(raw []uint16, rootRaw, nodesRaw uint8) bool {
		const n = 40
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				Src: graph.Vertex(raw[i] % n), Dst: graph.Vertex(raw[i+1] % n),
			})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return false
		}
		root := graph.Vertex(rootRaw % n)
		nodes := 1 + int(nodesRaw)%6
		ref, err := core.BFS(g, root, core.Options{Algorithm: core.AlgSequential})
		if err != nil {
			return false
		}
		res, err := BFS(g, root, Options{Nodes: nodes})
		if err != nil {
			return false
		}
		return res.Reached == ref.Reached &&
			res.EdgesTraversed == ref.EdgesTraversed &&
			res.Levels == ref.Levels &&
			core.ValidateTree(g, root, res.Parents) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
