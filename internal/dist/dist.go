// Package dist prototypes the paper's stated future work: "to map the
// graph exploration on distributed-memory machines ... with
// high-performance, low-latency communication networks and lightweight
// PGAS programming languages" (Section V).
//
// The design is the paper's Algorithm 3 taken one step further: the
// inter-socket channel generalizes to an inter-node message exchange.
// Each node owns a contiguous vertex partition and *only ever touches
// its own memory* — parent array, visited bitmap and queues are private
// per node, and a vertex discovered on a remote node travels as a
// batched (vertex, parent) tuple message, the software analogue of a
// PGAS one-sided put into the owner's queue. One message per ordered
// node pair per level gives the receiver a deterministic completion
// condition without a runtime.
//
// The "network" is in-process (Go channels), so measured wall-clock is
// not a cluster prediction; what the package demonstrates is the
// algorithm and its communication profile — supersteps, message and
// tuple counts, per-node balance — which CommStats reports and the
// tests pin.
package dist

import (
	"errors"
	"fmt"
	"sync"

	"mcbfs/internal/bitmap"
	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/topology"
)

// Options configures a distributed BFS run.
type Options struct {
	// Nodes is the number of distributed-memory nodes (>= 1).
	Nodes int
	// BatchSize caps the tuples per message buffer before it is handed
	// to the network layer mid-level; 0 means one message per level per
	// destination (pure level aggregation).
	BatchSize int
}

// CommStats summarizes the communication of a run.
type CommStats struct {
	// Supersteps is the number of BFS levels executed.
	Supersteps int
	// Messages is the total number of point-to-point messages.
	Messages int64
	// TuplesSent is the total number of (vertex, parent) tuples
	// exchanged, the paper's channel traffic generalized to a network.
	TuplesSent int64
	// MaxNodeTuples is the largest tuple count sent by any single node,
	// a load-imbalance indicator.
	MaxNodeTuples int64
}

// Result is the outcome of a distributed BFS.
type Result struct {
	// Parents is the gathered parent array (the union of every node's
	// partition).
	Parents []uint32
	// Reached counts the vertices in the tree.
	Reached int64
	// EdgesTraversed is m_a, summed over nodes.
	EdgesTraversed int64
	// Levels is the number of BFS levels.
	Levels int
	// Comm reports the communication profile.
	Comm CommStats
}

// tuple mirrors the paper's channel payload.
type tuple struct {
	v, parent uint32
}

// message is one point-to-point transfer.
type message struct {
	from   int
	tuples []tuple
}

// mailbox is an unbounded MPSC message queue: senders never block, so
// no cyclic-send deadlock is possible at any batch size (a real
// network's flow control is out of scope here; the paper's channels
// solve the same problem with segmented rings).
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) pop() message {
	m.mu.Lock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	m.mu.Unlock()
	return msg
}

// node is one distributed-memory node. All mutable state is private:
// the slices cover only the node's vertex range.
type node struct {
	id       int
	lo, hi   int      // owned vertex range [lo, hi)
	parents  []uint32 // parents[v-lo]
	visited  *bitmap.Bitmap
	curr     []uint32
	next     []uint32
	inbox    *mailbox
	outboxes [][]tuple
	edges    int64
	reached  int64
	sent     int64
	msgs     int64
}

// BFS explores g from root over opt.Nodes simulated distributed-memory
// nodes and returns the gathered tree plus communication statistics.
func BFS(g *graph.Graph, root graph.Vertex, opt Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("dist: nil graph")
	}
	n := g.NumVertices()
	if int(root) >= n {
		return nil, fmt.Errorf("dist: root %d out of range [0,%d)", root, n)
	}
	p := opt.Nodes
	if p < 1 {
		return nil, fmt.Errorf("dist: node count %d must be >= 1", p)
	}
	part, err := topology.NewPartition(n, p)
	if err != nil {
		return nil, err
	}

	nodes := make([]*node, p)
	for i := 0; i < p; i++ {
		lo, hi := part.Range(i)
		nd := &node{
			id:       i,
			lo:       lo,
			hi:       hi,
			parents:  make([]uint32, hi-lo),
			visited:  bitmap.New(hi - lo),
			inbox:    newMailbox(),
			outboxes: make([][]tuple, p),
		}
		for j := range nd.parents {
			nd.parents[j] = core.NoParent
		}
		nodes[i] = nd
	}

	// Seed the root on its owner.
	owner := part.DetermineSocket(uint32(root))
	rn := nodes[owner]
	rn.parents[int(root)-rn.lo] = uint32(root)
	rn.visited.Set(int(root) - rn.lo)
	rn.curr = append(rn.curr, uint32(root))
	rn.reached = 1

	// Superstep loop: an SPMD program per node, synchronized by
	// barriers (the BSP/PGAS structure).
	bar := newBarrier(p)
	var discovered int64 // written only by the coordinator between barriers
	var doneFlag bool
	levels := 0

	var wg sync.WaitGroup
	levelDiscovered := make([]int64, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			for {
				levelDiscovered[nd.id] = 0

				// Phase 1: expand local frontier; remote targets go to
				// per-destination outboxes.
				for _, u := range nd.curr {
					nbrs := g.Neighbors(graph.Vertex(u))
					nd.edges += int64(len(nbrs))
					for _, v := range nbrs {
						d := part.DetermineSocket(v)
						if d == nd.id {
							nd.claim(v, u, &levelDiscovered[nd.id])
							continue
						}
						nd.outboxes[d] = append(nd.outboxes[d], tuple{v: v, parent: u})
						if opt.BatchSize > 0 && len(nd.outboxes[d]) >= opt.BatchSize {
							nd.send(nodes, d, false)
						}
					}
				}
				// Close out the level: exactly one (possibly empty) final
				// message per destination, so receivers can count.
				for d := 0; d < p; d++ {
					if d != nd.id {
						nd.send(nodes, d, true)
					}
				}

				// Phase 2: drain exactly one final message from every
				// peer (plus any early batches interleaved before it).
				pending := p - 1
				for pending > 0 {
					msg := nd.inbox.pop()
					if msg.tuples == nil {
						pending--
						continue
					}
					for _, t := range msg.tuples {
						nd.claim(t.v, t.parent, &levelDiscovered[nd.id])
					}
				}

				// Allreduce the discovered count; the coordinator slot of
				// the barrier performs the reduction.
				if bar.wait() {
					discovered = 0
					for _, d := range levelDiscovered {
						discovered += d
					}
					levels++
					doneFlag = discovered == 0
				}
				bar.wait()
				nd.curr, nd.next = nd.next, nd.curr[:0]
				if doneFlag {
					return
				}
			}
		}(nodes[i])
	}
	wg.Wait()

	// Gather.
	res := &Result{Parents: make([]uint32, n), Levels: levels}
	var maxSent int64
	for _, nd := range nodes {
		copy(res.Parents[nd.lo:nd.hi], nd.parents)
		res.Reached += nd.reached
		res.EdgesTraversed += nd.edges
		res.Comm.Messages += nd.msgs
		res.Comm.TuplesSent += nd.sent
		if nd.sent > maxSent {
			maxSent = nd.sent
		}
	}
	res.Comm.Supersteps = levels
	res.Comm.MaxNodeTuples = maxSent
	return res, nil
}

// claim runs the visitation protocol for an owned vertex. Ownership is
// exclusive, so no atomics are needed — the distributed layout buys
// what the paper's Algorithm 3 bought per socket.
func (nd *node) claim(v, parent uint32, discovered *int64) {
	idx := int(v) - nd.lo
	if nd.visited.TestAndSet(idx) {
		return
	}
	nd.parents[idx] = parent
	nd.next = append(nd.next, v)
	nd.reached++
	*discovered++
}

// send transfers the outbox for destination d. A final send delivers
// even an empty buffer, marked by a nil tuple slice after the payload,
// so the receiver can count level completion.
func (nd *node) send(nodes []*node, d int, final bool) {
	if len(nd.outboxes[d]) > 0 {
		payload := make([]tuple, len(nd.outboxes[d]))
		copy(payload, nd.outboxes[d])
		nd.outboxes[d] = nd.outboxes[d][:0]
		nodes[d].inbox.push(message{from: nd.id, tuples: payload})
		nd.msgs++
		nd.sent += int64(len(payload))
	}
	if final {
		nodes[d].inbox.push(message{from: nd.id, tuples: nil})
		nd.msgs++
	}
}

// barrier is a small reusable barrier (duplicated from core to keep the
// package dependency surface at graph/bitmap/topology only).
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() bool {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}
