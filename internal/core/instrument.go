package core

import (
	"time"
	"unsafe"

	"mcbfs/internal/obs"
)

// statSlot is one worker's counter deposit, padded so adjacent workers
// never share a cache line. The pad is never zero-length: a trailing
// zero-size field would make Go grow the struct by an alignment unit
// anyway (to keep past-the-end pointers in bounds), breaking the
// multiple-of-64 invariant exactly when LevelStats fills a line.
type statSlot struct {
	LevelStats
	_ [64 - unsafe.Sizeof(LevelStats{})%64]byte
}

// statsCollector gathers per-worker LevelStats without atomic traffic in
// the hot loop: each worker deposits its level-local counts in its own
// cache-line-padded slot before the level barrier, and the barrier
// coordinator folds the slots into the result between barriers (a
// window in which no worker writes).
//
// It also bridges to the obs layer: fold stashes the level's totals,
// and foldPhases — called by the coordinator of the level's closing
// barrier — hands them to the obs.Collector together with the folded
// phase timers.
//
// A Searcher embeds one statsCollector by value and re-arms it per
// search over a pooled slot array, so an uninstrumented warm search
// allocates nothing here.
type statsCollector struct {
	// enabled selects folding into Result.PerLevel (Options.Instrument).
	enabled bool
	slots   []statSlot
	// rec is the observability collector; nil when neither a Tracer nor
	// a full trace was requested.
	rec *obs.Collector

	// pending* carry the totals of the level folded at the first
	// barrier to foldPhases at the second. Written and read only by
	// barrier coordinators, sequenced by the barrier itself.
	pendingTotal LevelStats
	pendingStart time.Duration
}

// arm readies the collector for one search: slots (a pooled backing
// array, one per worker) are attached only when either Result.PerLevel
// (enabled) or the obs layer (rec) needs folded counts, and zeroed in
// case the previous search left residue.
func (c *statsCollector) arm(enabled bool, rec *obs.Collector, backing []statSlot) {
	c.enabled = enabled
	c.rec = rec
	if enabled || rec != nil {
		c.slots = backing
		for i := range c.slots {
			c.slots[i].LevelStats = LevelStats{}
		}
	} else {
		c.slots = nil
	}
}

// active reports whether workers should deposit counts at all.
func (c *statsCollector) active() bool { return c.slots != nil }

// add deposits worker w's counts for the level in progress.
func (c *statsCollector) add(w int, s LevelStats) {
	if c.slots == nil {
		return
	}
	slot := &c.slots[w].LevelStats
	slot.Frontier += s.Frontier
	slot.Edges += s.Edges
	slot.BitmapReads += s.BitmapReads
	slot.AtomicOps += s.AtomicOps
	slot.RemoteSends += s.RemoteSends
	slot.Steals += s.Steals
}

// creditFrontier adds f to worker 0's frontier count for the level in
// progress. The direction-optimizing coordinator uses it in bottom-up
// levels, where workers expand the frontier without popping it.
func (c *statsCollector) creditFrontier(f int64) {
	if c.slots == nil {
		return
	}
	c.slots[0].Frontier += f
}

// fold sums all worker slots into one LevelStats, stamps the level
// duration, appends it to dst (when Instrument is on), and clears the
// slots for the next level. Must be called while workers are parked
// between barriers.
func (c *statsCollector) fold(dst *[]LevelStats, levelDur time.Duration) {
	if c.slots == nil {
		return
	}
	total := LevelStats{Duration: levelDur}
	for i := range c.slots {
		s := &c.slots[i].LevelStats
		total.Frontier += s.Frontier
		total.Edges += s.Edges
		total.BitmapReads += s.BitmapReads
		total.AtomicOps += s.AtomicOps
		total.RemoteSends += s.RemoteSends
		total.Steals += s.Steals
		// The straggler's edge share: the numerator of the level's
		// load-imbalance factor (mean share is Edges over workers).
		if s.Edges > total.MaxWorkerEdges {
			total.MaxWorkerEdges = s.Edges
		}
		*s = LevelStats{}
	}
	if c.enabled {
		*dst = append(*dst, total)
	}
	if c.rec != nil {
		c.pendingTotal = total
		c.pendingStart = time.Since(c.rec.Origin()) - levelDur
	}
}

// foldPhases folds the level's phase timers into the obs layer using
// the totals stashed by fold. Call it from the coordinator elected at
// the level's closing barrier; more is false once termination has been
// decided.
func (c *statsCollector) foldPhases(more bool) {
	if c.rec == nil {
		return
	}
	t := c.pendingTotal
	c.rec.EndLevel(c.pendingStart, t.Duration, obs.Counters{
		Frontier:       t.Frontier,
		Edges:          t.Edges,
		BitmapReads:    t.BitmapReads,
		AtomicOps:      t.AtomicOps,
		RemoteSends:    t.RemoteSends,
		MaxWorkerEdges: t.MaxWorkerEdges,
		Steals:         t.Steals,
	}, more)
}
