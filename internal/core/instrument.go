package core

import "time"

// statsCollector gathers per-worker LevelStats without atomic traffic in
// the hot loop: each worker deposits its level-local counts in its own
// slot before the level barrier, and the barrier coordinator folds the
// slots into the result between barriers (a window in which no worker
// writes).
type statsCollector struct {
	enabled bool
	slots   []LevelStats
}

func newStatsCollector(enabled bool, workers int) *statsCollector {
	c := &statsCollector{enabled: enabled}
	if enabled {
		c.slots = make([]LevelStats, workers)
	}
	return c
}

// add deposits worker w's counts for the level in progress.
func (c *statsCollector) add(w int, s LevelStats) {
	if !c.enabled {
		return
	}
	slot := &c.slots[w]
	slot.Frontier += s.Frontier
	slot.Edges += s.Edges
	slot.BitmapReads += s.BitmapReads
	slot.AtomicOps += s.AtomicOps
	slot.RemoteSends += s.RemoteSends
}

// fold sums all worker slots into one LevelStats, stamps the level
// duration, appends it to dst, and clears the slots for the next level.
// Must be called while workers are parked between barriers.
func (c *statsCollector) fold(dst *[]LevelStats, levelDur time.Duration) {
	if !c.enabled {
		return
	}
	total := LevelStats{Duration: levelDur}
	for i := range c.slots {
		s := &c.slots[i]
		total.Frontier += s.Frontier
		total.Edges += s.Edges
		total.BitmapReads += s.BitmapReads
		total.AtomicOps += s.AtomicOps
		total.RemoteSends += s.RemoteSends
		*s = LevelStats{}
	}
	*dst = append(*dst, total)
}
