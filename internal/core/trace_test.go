package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcbfs/internal/gen"
	"mcbfs/internal/obs"
	"mcbfs/internal/topology"
)

// traceOptions enumerates one tracing configuration per algorithm tier.
func traceOptions(t *testing.T) []Options {
	t.Helper()
	return []Options{
		{Algorithm: AlgSequential, Threads: 1},
		{Algorithm: AlgParallelSimple, Threads: 3},
		{Algorithm: AlgSingleSocket, Threads: 3},
		{Algorithm: AlgMultiSocket, Threads: 4, Machine: topology.Generic(2, 2, 1)},
		{Algorithm: AlgDirectionOptimizing, Threads: 3},
	}
}

func TestTraceAcrossAlgorithms(t *testing.T) {
	g, err := gen.Uniform(1<<12, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range traceOptions(t) {
		opt.Trace = true
		res, err := BFS(g, 0, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt.Algorithm, err)
		}
		tr := res.Trace
		if tr == nil {
			t.Fatalf("%v: Options.Trace set but Result.Trace nil", opt.Algorithm)
		}
		wantWorkers := opt.Threads
		if tr.Workers != wantWorkers || len(tr.Timelines) != wantWorkers {
			t.Errorf("%v: %d workers / %d timelines, want %d",
				opt.Algorithm, tr.Workers, len(tr.Timelines), wantWorkers)
		}
		if len(tr.Levels) != res.Levels {
			t.Errorf("%v: %d level breakdowns, want %d", opt.Algorithm, len(tr.Levels), res.Levels)
		}
		var edges int64
		for i, b := range tr.Levels {
			if b.Level != i {
				t.Errorf("%v: breakdown %d has level %d", opt.Algorithm, i, b.Level)
			}
			edges += b.Edges
		}
		if edges != res.EdgesTraversed {
			t.Errorf("%v: trace edges %d != traversed %d", opt.Algorithm, edges, res.EdgesTraversed)
		}
		for w, tl := range tr.Timelines {
			if len(tl) == 0 {
				t.Errorf("%v: worker %d has an empty timeline", opt.Algorithm, w)
			}
		}
		// The trace must serialize to valid Chrome-trace JSON.
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%v: WriteChromeTrace: %v", opt.Algorithm, err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Errorf("%v: chrome trace is not valid JSON", opt.Algorithm)
		}
		if err := tr.WriteBreakdown(&bytes.Buffer{}); err != nil {
			t.Errorf("%v: WriteBreakdown: %v", opt.Algorithm, err)
		}
	}
}

func TestTraceMatchesInstrument(t *testing.T) {
	g, err := gen.RMAT(11, 1<<14, gen.GTgraphDefaults, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, Options{
		Algorithm: AlgSingleSocket, Threads: 2, Instrument: true, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLevel) != len(res.Trace.Levels) {
		t.Fatalf("PerLevel %d entries, Trace %d", len(res.PerLevel), len(res.Trace.Levels))
	}
	for i, ls := range res.PerLevel {
		b := res.Trace.Levels[i]
		if ls.Frontier != b.Frontier || ls.Edges != b.Edges ||
			ls.BitmapReads != b.BitmapReads || ls.AtomicOps != b.AtomicOps {
			t.Errorf("level %d: PerLevel %+v != Trace %+v", i, ls, b.Counters)
		}
	}
}

func TestTracerHooksFromBFS(t *testing.T) {
	g, err := gen.Uniform(1<<12, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	starts, ends := 0, 0
	var remoteTuples, barrierWaits int64
	tracer := obs.TracerFuncs{
		LevelStart: func(level int) { mu.Lock(); starts++; mu.Unlock() },
		LevelEnd: func(level int, b obs.LevelBreakdown) {
			mu.Lock()
			ends++
			mu.Unlock()
		},
		RemoteBatch: func(level, worker, toSocket, tuples int) {
			atomic.AddInt64(&remoteTuples, int64(tuples))
		},
		BarrierWait: func(level, worker int, wait time.Duration) {
			atomic.AddInt64(&barrierWaits, 1)
		},
	}
	res, err := BFS(g, 0, Options{
		Algorithm: AlgMultiSocket, Threads: 4,
		Machine: topology.Generic(2, 2, 1), Tracer: tracer, Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("Tracer alone must not retain a full trace")
	}
	if ends != res.Levels {
		t.Errorf("OnLevelEnd fired %d times, want %d", ends, res.Levels)
	}
	if starts != res.Levels {
		t.Errorf("OnLevelStart fired %d times, want %d (one per level)", starts, res.Levels)
	}
	var wantRemote int64
	for _, ls := range res.PerLevel {
		wantRemote += ls.RemoteSends
	}
	if remoteTuples != wantRemote {
		t.Errorf("OnRemoteBatch delivered %d tuples, instrument counted %d", remoteTuples, wantRemote)
	}
	if barrierWaits == 0 {
		t.Error("OnBarrierWait never fired")
	}
}

func TestTraceChannelSamples(t *testing.T) {
	g, err := gen.Uniform(1<<13, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, Options{
		Algorithm: AlgMultiSocket, Threads: 4,
		Machine: topology.Generic(2, 2, 1), Trace: true, Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sampleTuples int64
	for _, cs := range res.Trace.Channels {
		if cs.Socket < 0 || cs.Socket >= 2 {
			t.Errorf("channel sample socket %d out of range", cs.Socket)
		}
		sampleTuples += cs.Tuples
	}
	var remote int64
	for _, ls := range res.PerLevel {
		remote += ls.RemoteSends
	}
	if remote == 0 {
		t.Fatal("workload produced no remote sends; pick a bigger graph")
	}
	if sampleTuples != remote {
		t.Errorf("channel samples total %d tuples, RemoteSends %d", sampleTuples, remote)
	}
}

func TestTraceBarrierPhaseCoverage(t *testing.T) {
	g, err := gen.Uniform(1<<12, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, Options{Algorithm: AlgSingleSocket, Threads: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var scan, barrier time.Duration
	for _, b := range res.Trace.Levels {
		scan += b.Phases[obs.PhaseLocalScan]
		barrier += b.Phases[obs.PhaseBarrierWait]
	}
	if scan <= 0 {
		t.Error("no local-scan time recorded")
	}
	if barrier <= 0 {
		t.Error("no barrier-wait time recorded")
	}
}

// TestTraceConcurrentChromeExport runs several traced Searchers over
// one graph simultaneously, each interleaving searches with Chrome
// trace exports of its previous result — the serving-shape usage where
// a monitoring goroutine dumps traces while query traffic continues.
// Run under -race (this package is in the CI race matrix): the test
// pins down that concurrent sessions share no trace state and that
// WriteChromeTrace reads a finished Trace without racing the search
// that produces the next one on the same Searcher.
func TestTraceConcurrentChromeExport(t *testing.T) {
	g, err := gen.Uniform(1<<12, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSearcher(g, Options{Algorithm: AlgSingleSocket, Threads: 2, Trace: true})
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			// export runs one behind the search: the trace being written
			// belongs to a finished query while the next one runs.
			exportDone := make(chan error, 1)
			exportDone <- nil
			var prev *obs.Trace
			for r := 0; r < rounds; r++ {
				res, err := s.BFS(0)
				if err != nil {
					<-exportDone
					errs <- err
					return
				}
				if err := <-exportDone; err != nil {
					errs <- err
					return
				}
				prev, res.Trace = res.Trace, nil
				go func(tr *obs.Trace) {
					var buf bytes.Buffer
					if err := tr.WriteChromeTrace(&buf); err != nil {
						exportDone <- err
						return
					}
					if !json.Valid(buf.Bytes()) {
						exportDone <- errTraceJSON
						return
					}
					exportDone <- nil
				}(prev)
			}
			errs <- <-exportDone
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errTraceJSON = errors.New("chrome trace is not valid JSON")

// TestTraceCorrectnessUnchanged guards against observability perturbing
// the search itself: traced and untraced runs must produce identical
// trees (modulo parent races, so compare reachability counts and
// levels).
func TestTraceCorrectnessUnchanged(t *testing.T) {
	g, err := gen.RMAT(12, 1<<15, gen.GTgraphDefaults, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range traceOptions(t) {
		base, err := BFS(g, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Trace = true
		opt.Instrument = true
		traced, err := BFS(g, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		if base.Reached != traced.Reached || base.Levels != traced.Levels ||
			base.EdgesTraversed != traced.EdgesTraversed {
			t.Errorf("%v: traced run diverged: reached %d/%d levels %d/%d edges %d/%d",
				opt.Algorithm, base.Reached, traced.Reached, base.Levels, traced.Levels,
				base.EdgesTraversed, traced.EdgesTraversed)
		}
		if err := ValidateTree(g, 0, traced.Parents); err != nil {
			t.Errorf("%v: traced run produced an invalid tree: %v", opt.Algorithm, err)
		}
	}
}
