// Package core implements the paper's contribution: level-synchronous
// parallel breadth-first search for multicore shared-memory machines,
// in the three refinement tiers of the SC'10 paper.
//
//   - AlgSequential: the textbook serial BFS, the baseline every
//     parallel variant is judged against.
//   - AlgParallelSimple (paper Algorithm 1): shared current/next queues,
//     visitation claimed with an atomic compare-and-swap on the parent
//     array.
//   - AlgSingleSocket (paper Algorithm 2): adds the visited bitmap
//     (shrinking the random working set ~8x versus the parent array) and
//     the double-checked claim — a plain bitmap probe before the atomic
//     read-and-set, which eliminates nearly all lock-prefixed operations
//     in late levels (paper Fig. 4).
//   - AlgMultiSocket (paper Algorithm 3): partitions graph, parent array
//     and bitmap by socket; vertices discovered on a remote socket
//     travel through batched FastForward+TicketLock channels and are
//     processed by their owning socket in a second phase per level.
//
// The socket structure is logical, driven by a topology.Machine; on real
// multi-socket hardware with one OS thread per worker it reproduces the
// paper's locality story, and under any GOMAXPROCS it remains correct.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/topology"
)

// NoParent marks an unvisited vertex in the parent array (the paper's
// P[v] = ∞).
const NoParent = ^uint32(0)

// Algorithm selects a BFS implementation tier.
type Algorithm int

const (
	// AlgAuto picks AlgSequential for 1 thread, AlgSingleSocket when the
	// run fits one socket, and AlgMultiSocket otherwise — the paper's
	// "best performing algorithm for each thread configuration".
	AlgAuto Algorithm = iota
	// AlgSequential is the serial baseline.
	AlgSequential
	// AlgParallelSimple is paper Algorithm 1.
	AlgParallelSimple
	// AlgSingleSocket is paper Algorithm 2.
	AlgSingleSocket
	// AlgMultiSocket is paper Algorithm 3.
	AlgMultiSocket
	// AlgDirectionOptimizing is the top-down/bottom-up hybrid — an
	// extension beyond the paper (Beamer et al.'s direction-optimizing
	// BFS) that eliminates atomics entirely in the dense middle levels.
	// It needs in-edges: supply the transpose via Options.Transpose, or
	// pass the graph itself for symmetric graphs; if absent it is
	// computed once per call.
	AlgDirectionOptimizing
)

// String returns the algorithm's short name as used in reports.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgSequential:
		return "sequential"
	case AlgParallelSimple:
		return "parallel-simple"
	case AlgSingleSocket:
		return "single-socket"
	case AlgMultiSocket:
		return "multi-socket"
	case AlgDirectionOptimizing:
		return "direction-optimizing"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a BFS run. The zero value requests AlgAuto with
// GOMAXPROCS workers on a single-socket logical machine.
type Options struct {
	// Algorithm selects the implementation tier; AlgAuto (zero) picks by
	// thread count and machine shape.
	Algorithm Algorithm
	// Threads is the number of worker goroutines; 0 means
	// runtime.GOMAXPROCS(0).
	Threads int
	// Machine is the logical topology used for partitioning and channel
	// wiring. The zero value means a single socket holding all threads.
	Machine topology.Machine
	// BatchSize is the number of tuples buffered per destination socket
	// before a channel send, and the receive buffer size (paper: batching
	// amortizes the ticket lock to ~30 ns/vertex). 0 means 64.
	BatchSize int
	// ChunkSize is the number of vertices a worker claims from the
	// current queue per atomic operation. 0 means 128. With edge
	// budgeting active (see EdgeBudget) it caps the vertex count of a
	// budgeted chunk, so low-degree stretches of the frontier still move
	// in cheap batches.
	ChunkSize int
	// EdgeBudget makes frontier scheduling degree-aware in the parallel
	// tiers: workers claim chunks whose summed out-degree stays within
	// the budget rather than a fixed vertex count, a vertex whose degree
	// alone exceeds it is split into edge-range sub-tasks expanded by
	// several workers, and an early-finishing multi-socket worker steals
	// budgeted chunks from the busiest sibling socket's queue. The
	// direction-optimizing bottom-up sweep and the MS-BFS frontier scan
	// partition by edge prefix sums under the same flag.
	//
	// 0 picks an automatic budget from the graph's average degree and
	// ChunkSize (the default). A positive value sets the budget in
	// adjacency entries. EdgeBudgetOff (any negative value) disables
	// edge-aware scheduling entirely, restoring fixed vertex-count
	// chunks — the ablation baseline. Very small budgets classify many
	// vertices as hubs and cost one pooled cache line per hub for the
	// session's lifetime.
	EdgeBudget int64
	// HybridAlpha and HybridBeta are the direction-optimizing switch
	// thresholds (Beamer's alpha/beta rule): a top-down level switches
	// to bottom-up when the next frontier exceeds n/HybridAlpha
	// vertices, and back to top-down when it falls below n/HybridBeta.
	// 0 means the defaults (14 and 24); negative values are rejected.
	// Larger values make the respective switch happen sooner.
	HybridAlpha int
	HybridBeta  int
	// LocalBatch is the number of vertices buffered before a batched
	// push to the local next queue. 0 means 64.
	LocalBatch int
	// DisableDoubleCheck forces the atomic read-and-set on every
	// neighbour, skipping the plain bitmap probe. Ablation knob for the
	// paper's Fig. 5 "impact of optimizations".
	DisableDoubleCheck bool
	// Instrument enables per-level counters (bitmap probes, atomic
	// operations, frontier sizes, remote sends), the data behind the
	// paper's Fig. 4. It costs a few percent of throughput.
	Instrument bool
	// Transpose supplies the in-edge graph for AlgDirectionOptimizing.
	// Pass the graph itself when it is symmetric. When nil, the
	// transpose is computed per call (O(n+m) time and memory).
	Transpose *graph.Graph
	// MaxLevels stops the search after exploring that many levels
	// (level 0 is the root). 0 means unbounded. Depth-bounded
	// neighbourhood extraction (e.g. SSCA#2 kernel 3) uses this.
	MaxLevels int
	// PinThreads locks each worker goroutine to its OS thread and binds
	// that thread to CPU (worker index mod NumCPU) — the paper's thread
	// affinity discipline, available on Linux. Linux enumerates the
	// cores of socket 0 first, so the default mapping coincides with
	// the paper's Table I placement on typical hosts. Pinning failures
	// are ignored (the run proceeds unpinned).
	PinThreads bool
	// ProbeBatch enables software pipelining of the bitmap probes in
	// the single-socket tier: neighbours are processed in blocks of
	// this size, with all of a block's independent probe loads issued
	// before any claim logic runs — the Go analogue of the paper's
	// carefully placed _mm_prefetch intrinsics that keep multiple
	// memory requests in flight (Fig. 2). 0 disables batching.
	ProbeBatch int
	// Tracer receives observability callbacks (level start/end, remote
	// batch flushes, barrier waits). Implementations must be safe for
	// concurrent use: OnRemoteBatch and OnBarrierWait fire from worker
	// goroutines. nil disables the hooks at zero cost.
	Tracer obs.Tracer
	// Trace retains the full structured trace — per-worker phase
	// timelines, per-level breakdowns, inter-socket channel samples —
	// in Result.Trace, exportable with Trace.WriteChromeTrace. Costs a
	// few time.Now calls per worker per level plus the span memory;
	// when false (and Tracer is nil) the hot path executes no extra
	// atomic operations and only per-level nil-checks.
	Trace bool
	// Telemetry, when non-nil, receives one obs.QuerySample per
	// Search/SearchContext on a session: latency into the histogram and
	// the query's scalars plus per-level phase breakdowns into the
	// flight recorder. Enabling it arms the obs collector every search
	// (the per-level breakdowns must be recorded before the query is
	// known to be slow), which costs a few time.Now calls per worker
	// per level; a warm search still performs zero heap allocations.
	Telemetry *obs.Telemetry
	// TelemetryShard selects the latency-histogram shard this session
	// records into. Give concurrent sessions distinct shards (as
	// mcbfs.Pool does) so their counter writes never contend.
	TelemetryShard int
	// Ordering relabels the graph into a locality-optimized vertex order
	// for the session's lifetime (see graph.Ordering). The permutation
	// is computed and applied once at construction; queries keep original
	// vertex ids — roots are translated in and parent arrays translated
	// back out in O(touched) per query — and a warm search still
	// performs zero heap allocations. OrderNatural (the zero value)
	// leaves the graph as-is.
	Ordering graph.Ordering
	// Reordered supplies a precomputed reordering (from graph.Reorder),
	// overriding Ordering: sessions sharing one Reordered share one
	// relabeled CSR instead of each paying the reorder, which is how
	// mcbfs.Pool runs all its Searchers on a single relabeled graph. It
	// must have been computed from this session's graph.
	Reordered *graph.Reordered
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Machine.Sockets == 0 {
		o.Machine = topology.Generic(1, o.Threads, 1)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 128
	}
	if o.LocalBatch <= 0 {
		o.LocalBatch = 64
	}
	if o.HybridAlpha == 0 {
		o.HybridAlpha = defaultHybridAlpha
	}
	if o.HybridBeta == 0 {
		o.HybridBeta = defaultHybridBeta
	}
	if o.Algorithm == AlgAuto {
		switch {
		case o.Threads == 1:
			o.Algorithm = AlgSequential
		case o.Machine.SocketsForThreads(o.Threads) == 1:
			o.Algorithm = AlgSingleSocket
		default:
			o.Algorithm = AlgMultiSocket
		}
	}
	return o
}

// EdgeBudgetOff disables edge-aware frontier scheduling (see
// Options.EdgeBudget); any negative value works, this one is the
// readable spelling.
const EdgeBudgetOff = -1

// autoEdgeBudgetFloor bounds the automatic edge budget from below so
// that near-edgeless graphs do not degenerate into per-vertex claims.
const autoEdgeBudgetFloor = 1024

// resolveEdgeBudget turns Options.EdgeBudget into the session's
// effective budget: 0 means off, positive is the per-chunk adjacency
// allowance. The automatic choice targets ChunkSize average-degree
// vertices per chunk — on uniform graphs that reproduces the legacy
// vertex-count chunking almost exactly, while on skewed graphs it cuts
// chunks early around hubs.
func resolveEdgeBudget(o Options, g *graph.Graph) int64 {
	if o.EdgeBudget < 0 {
		return 0
	}
	if o.EdgeBudget > 0 {
		return o.EdgeBudget
	}
	n := g.NumVertices()
	avg := int64(1)
	if n > 0 {
		if a := g.NumEdges() / int64(n); a > 1 {
			avg = a
		}
	}
	b := avg * int64(o.ChunkSize)
	if b < autoEdgeBudgetFloor {
		b = autoEdgeBudgetFloor
	}
	return b
}

// LevelStats records one BFS level's instrumentation.
type LevelStats struct {
	// Frontier is the number of vertices expanded in this level.
	Frontier int64
	// Edges is the number of adjacency entries scanned.
	Edges int64
	// BitmapReads counts plain (non-atomic) bitmap probes.
	BitmapReads int64
	// AtomicOps counts atomic read-and-set operations attempted.
	AtomicOps int64
	// RemoteSends counts tuples sent over inter-socket channels.
	RemoteSends int64
	// MaxWorkerEdges is the largest per-worker share of Edges in the
	// level — the load-imbalance numerator. A perfectly balanced level
	// has MaxWorkerEdges ≈ Edges/threads; the ratio of the two is the
	// imbalance factor reported by bfsbench -breakdown and /debug/bfs.
	MaxWorkerEdges int64
	// Steals counts frontier chunks claimed from a sibling socket's
	// queue by an early-finishing worker (multi-socket tier with edge
	// budgeting only).
	Steals int64
	// Duration is the wall-clock time of the level, stamped by the
	// level coordinator (and therefore inclusive of both phases and the
	// barriers).
	Duration time.Duration
}

// Result holds the output of a BFS run.
type Result struct {
	// Parents[v] is the BFS-tree parent of v, the root's parent is the
	// root itself, and unreached vertices hold NoParent.
	Parents []uint32
	// Root is the source vertex of the search.
	Root graph.Vertex
	// Reached is the number of vertices in the BFS tree (including the
	// root).
	Reached int64
	// EdgesTraversed is the paper's m_a: adjacency entries scanned
	// during the search (each edge leaving a reached vertex, counted
	// once).
	EdgesTraversed int64
	// Levels is the number of BFS levels, i.e. the eccentricity of the
	// root within its component plus one.
	Levels int
	// Duration is the wall-clock time of the search proper (excluding
	// allocation of the result arrays).
	Duration time.Duration
	// Algorithm is the tier that actually ran.
	Algorithm Algorithm
	// Threads is the worker count that actually ran.
	Threads int
	// PerLevel holds instrumentation when Options.Instrument was set.
	PerLevel []LevelStats
	// Trace holds the structured trace when Options.Trace was set.
	Trace *obs.Trace
}

// EdgesPerSecond returns the paper's headline metric: m_a divided by
// the run's duration.
func (r *Result) EdgesPerSecond() float64 {
	s := r.Duration.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / s
}

// BFS explores g from root and returns the breadth-first tree. It is a
// convenience wrapper that creates a one-shot Searcher session, runs a
// single search, and tears the session down; Options selects the
// algorithm tier and its tuning knobs exactly as for NewSearcher.
// Callers issuing repeated searches over one graph should hold a
// Searcher instead and amortize the setup.
func BFS(g *graph.Graph, root graph.Vertex, opt Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if n := g.NumVertices(); int(root) >= n {
		return nil, fmt.Errorf("core: root %d out of range [0,%d)", root, n)
	}
	s, err := NewSearcher(g, opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	r, err := s.Search(root, Query{})
	if err != nil {
		return nil, err
	}
	// The session is one-shot: its pooled arrays are never reused, so
	// ownership of Parents (and Trace/PerLevel) transfers to the caller
	// with a shallow copy of the Result.
	res := *r
	return &res, nil
}

// newParents allocates a parent array initialized to NoParent.
func newParents(n int) []uint32 {
	p := make([]uint32, n)
	fillNoParent(p)
	return p
}

// fillNoParent fills p with NoParent, in parallel for large arrays
// using the CSR builder's worker count — before the session refactor
// this serial O(n) fill ran ahead of every search; now it runs once per
// session but still dominates one-shot setup at large n.
func fillNoParent(p []uint32) {
	workers := graph.BuildParallelism()
	const serialCutoff = 1 << 17
	if workers <= 1 || len(p) < serialCutoff {
		for i := range p {
			p[i] = NoParent
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(p) * w / workers
		hi := len(p) * (w + 1) / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(q []uint32) {
			defer wg.Done()
			for i := range q {
				q[i] = NoParent
			}
		}(p[lo:hi])
	}
	wg.Wait()
}
