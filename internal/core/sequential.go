package core

import (
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// sequentialBFS is the serial baseline: a textbook two-queue
// level-synchronous BFS. It shares the Result bookkeeping (levels, m_a,
// optional per-level stats) with the parallel tiers so that speedup
// numbers compare identical work, and feeds the same observability
// layer (one worker, local-scan phase only).
func sequentialBFS(g *graph.Graph, root graph.Vertex, o Options) (*Result, error) {
	n := g.NumVertices()
	parents := newParents(n)
	cq := make([]uint32, 0, n)
	nq := make([]uint32, 0, n)

	coll := newObsCollector(o, 1, 1, AlgSequential)
	wr := coll.Worker(0)

	start := time.Now()
	parents[root] = uint32(root)
	cq = append(cq, uint32(root))
	var reached int64 = 1
	var edges int64
	levels := 0
	var perLevel []LevelStats
	observe := o.Instrument || coll != nil

	for len(cq) > 0 && (o.MaxLevels == 0 || levels < o.MaxLevels) {
		var stats LevelStats
		levelStart := time.Now()
		tp := wr.PhaseStart()
		for _, u := range cq {
			nbrs := g.Neighbors(graph.Vertex(u))
			edges += int64(len(nbrs))
			if observe {
				stats.Frontier++
				stats.Edges += int64(len(nbrs))
				stats.BitmapReads += int64(len(nbrs))
			}
			for _, v := range nbrs {
				if parents[v] == NoParent {
					parents[v] = u
					nq = append(nq, v)
					reached++
					if observe {
						stats.AtomicOps++ // the claim a parallel run would make atomic
					}
				}
			}
		}
		wr.PhaseEnd(obs.PhaseLocalScan, tp)
		levels++
		stats.Duration = time.Since(levelStart)
		if o.Instrument {
			perLevel = append(perLevel, stats)
		}
		cq, nq = nq, cq[:0]
		if coll != nil {
			more := len(cq) > 0 && (o.MaxLevels == 0 || levels < o.MaxLevels)
			coll.EndLevel(levelStart.Sub(coll.Origin()), stats.Duration, obs.Counters{
				Frontier:    stats.Frontier,
				Edges:       stats.Edges,
				BitmapReads: stats.BitmapReads,
				AtomicOps:   stats.AtomicOps,
			}, more)
			wr.NextLevel()
		}
	}

	return &Result{
		Parents:        parents,
		Root:           root,
		Reached:        reached,
		EdgesTraversed: edges,
		Levels:         levels,
		Duration:       time.Since(start),
		Algorithm:      AlgSequential,
		Threads:        1,
		PerLevel:       perLevel,
		Trace:          coll.Finish(),
	}, nil
}
