package core

import (
	"time"

	"mcbfs/internal/graph"
)

// sequentialBFS is the serial baseline: a textbook two-queue
// level-synchronous BFS. It shares the Result bookkeeping (levels, m_a,
// optional per-level stats) with the parallel tiers so that speedup
// numbers compare identical work.
func sequentialBFS(g *graph.Graph, root graph.Vertex, o Options) (*Result, error) {
	n := g.NumVertices()
	parents := newParents(n)
	cq := make([]uint32, 0, n)
	nq := make([]uint32, 0, n)

	start := time.Now()
	parents[root] = uint32(root)
	cq = append(cq, uint32(root))
	var reached int64 = 1
	var edges int64
	levels := 0
	var perLevel []LevelStats

	for len(cq) > 0 && (o.MaxLevels == 0 || levels < o.MaxLevels) {
		var stats LevelStats
		levelStart := time.Now()
		for _, u := range cq {
			nbrs := g.Neighbors(graph.Vertex(u))
			edges += int64(len(nbrs))
			if o.Instrument {
				stats.Frontier++
				stats.Edges += int64(len(nbrs))
				stats.BitmapReads += int64(len(nbrs))
			}
			for _, v := range nbrs {
				if parents[v] == NoParent {
					parents[v] = u
					nq = append(nq, v)
					reached++
					if o.Instrument {
						stats.AtomicOps++ // the claim a parallel run would make atomic
					}
				}
			}
		}
		levels++
		if o.Instrument {
			stats.Duration = time.Since(levelStart)
			perLevel = append(perLevel, stats)
		}
		cq, nq = nq, cq[:0]
	}

	return &Result{
		Parents:        parents,
		Root:           root,
		Reached:        reached,
		EdgesTraversed: edges,
		Levels:         levels,
		Duration:       time.Since(start),
		Algorithm:      AlgSequential,
		Threads:        1,
		PerLevel:       perLevel,
	}, nil
}
