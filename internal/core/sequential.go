package core

import (
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// sequentialSearch is the serial baseline: a textbook level-synchronous
// BFS, run inline on the caller's goroutine over the session's monotone
// queue (levels are windows of one append-only queue, so the queue's
// final contents double as the touched list the next reset walks). It
// shares the Result bookkeeping (levels, m_a, optional per-level stats)
// with the parallel tiers so that speedup numbers compare identical
// work, and feeds the same observability layer (one worker, local-scan
// phase only).
func (s *Searcher) sequentialSearch() (edges, reached int64) {
	g, q := s.g, s.q
	wr := s.coll.Worker(0)
	observe := s.o.Instrument || s.coll != nil

	// The root is already on the queue, seeded by SearchContext before
	// its parent entry was written so an abort cannot strand it.
	reached = 1
	checkpoints := 0
	prev, limit := int64(0), int64(1)
	for limit > prev && (s.maxLevels == 0 || s.levels < s.maxLevels) {
		var stats LevelStats
		levelStart := time.Now()
		tp := wr.PhaseStart()
		for _, u := range q.Window(prev, limit) {
			// Every claim is pushed before the next checkpoint, so an
			// abort here leaves the queue holding the full touched set.
			if s.aborted(&checkpoints) {
				return edges, reached
			}
			nbrs := g.Neighbors(graph.Vertex(u))
			edges += int64(len(nbrs))
			if observe {
				stats.Frontier++
				stats.Edges += int64(len(nbrs))
				stats.BitmapReads += int64(len(nbrs))
			}
			for _, v := range nbrs {
				if s.parents[v] == NoParent {
					s.parents[v] = u
					q.Push(v)
					reached++
					if observe {
						stats.AtomicOps++ // the claim a parallel run would make atomic
					}
				}
			}
		}
		wr.PhaseEnd(obs.PhaseLocalScan, tp)
		s.levels++
		stats.Duration = time.Since(levelStart)
		stats.MaxWorkerEdges = stats.Edges // one worker holds every edge
		if s.o.Instrument {
			s.perLevel = append(s.perLevel, stats)
		}
		prev, limit = limit, int64(q.Size())
		// Level boundary: same cancellation point as the parallel
		// tiers' coordinator, so levels too small to trip a vertex
		// checkpoint still observe the context once per level.
		if s.checkCancelAtBarrier() {
			return edges, reached
		}
		if s.coll != nil {
			more := limit > prev && (s.maxLevels == 0 || s.levels < s.maxLevels)
			s.coll.EndLevel(levelStart.Sub(s.coll.Origin()), stats.Duration, obs.Counters{
				Frontier:       stats.Frontier,
				Edges:          stats.Edges,
				BitmapReads:    stats.BitmapReads,
				AtomicOps:      stats.AtomicOps,
				MaxWorkerEdges: stats.MaxWorkerEdges,
			}, more)
			wr.NextLevel()
		}
	}
	return edges, reached
}
