package core

import (
	"testing"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
)

// reorderTestOrderings are the non-natural orderings under test.
var reorderTestOrderings = []graph.Ordering{
	graph.OrderDegree, graph.OrderDegreeGroup, graph.OrderBFS,
}

// reorderTestGraphs pairs a scale-free and a mesh workload: R-MAT's
// power law exercises the hub prefix, the grid's banded structure the
// BFS-level ordering.
func reorderTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"rmat": must(gen.RMAT(10, 1<<13, gen.GTgraphDefaults, 7)),
		"grid": must(gen.Grid(40, 40, 4)),
	}
}

// reorderTiers is the tier sweep: every concrete algorithm plus the
// direction-optimizing hybrid (which exercises the relabeled-transpose
// path).
var reorderTiers = []struct {
	name string
	opt  Options
}{
	{"sequential", Options{Algorithm: AlgSequential, Threads: 1}},
	{"parallel-simple", Options{Algorithm: AlgParallelSimple, Threads: 3}},
	{"single-socket", Options{Algorithm: AlgSingleSocket, Threads: 4}},
	{"multi-socket", Options{Algorithm: AlgMultiSocket, Threads: 4}},
	{"direction-optimizing", Options{Algorithm: AlgDirectionOptimizing, Threads: 4}},
}

// sampleReorderRoots picks a few spread-out non-isolated roots in
// original id space.
func sampleReorderRoots(g *graph.Graph, want int) []graph.Vertex {
	var roots []graph.Vertex
	n := g.NumVertices()
	for v := 0; v < n && len(roots) < want; v += 1 + n/(want*3) {
		if g.Degree(graph.Vertex(v)) > 0 {
			roots = append(roots, graph.Vertex(v))
		}
	}
	return roots
}

// TestReorderedSearchEquivalence checks, for every tier × ordering ×
// workload, that a reordered session answers queries identically to a
// natural one: same reached count and level count, identical depths,
// and a parent array that validates as a BFS tree of the ORIGINAL
// graph — i.e. the translation layer is transparent. Several roots run
// back to back on one session so the O(touched) reset of the external
// parent array is exercised between queries.
func TestReorderedSearchEquivalence(t *testing.T) {
	for gname, g := range reorderTestGraphs(t) {
		roots := sampleReorderRoots(g, 4)
		if len(roots) == 0 {
			t.Fatalf("%s: no non-isolated roots", gname)
		}
		// Natural baseline, one shot per root.
		base := make(map[graph.Vertex]*Result)
		depths := make(map[graph.Vertex][]int32)
		for _, root := range roots {
			res, err := BFS(g, root, Options{Algorithm: AlgSequential, Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			base[root] = res
			depths[root] = TreeDepths(res.Parents, root)
		}
		for _, o := range reorderTestOrderings {
			rd, err := g.Reorder(o)
			if err != nil {
				t.Fatal(err)
			}
			for _, tier := range reorderTiers {
				opt := tier.opt
				opt.Ordering = o
				opt.Reordered = rd
				s, err := NewSearcher(g, opt)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", gname, o, tier.name, err)
				}
				for _, root := range roots {
					res, err := s.BFS(root)
					if err != nil {
						t.Fatalf("%s/%s/%s root %d: %v", gname, o, tier.name, root, err)
					}
					want := base[root]
					if res.Reached != want.Reached || res.Levels != want.Levels {
						t.Fatalf("%s/%s/%s root %d: reached/levels %d/%d, want %d/%d",
							gname, o, tier.name, root, res.Reached, res.Levels, want.Reached, want.Levels)
					}
					if res.Root != root {
						t.Fatalf("%s/%s/%s: result echoes root %d, want %d", gname, o, tier.name, res.Root, root)
					}
					// The parent array must be a BFS tree of the original,
					// unrelabeled graph.
					if err := ValidateTree(g, root, res.Parents); err != nil {
						t.Fatalf("%s/%s/%s root %d: translated tree invalid: %v", gname, o, tier.name, root, err)
					}
					got := TreeDepths(res.Parents, root)
					for v := range got {
						if got[v] != depths[root][v] {
							t.Fatalf("%s/%s/%s root %d: depth of %d is %d, want %d",
								gname, o, tier.name, root, v, got[v], depths[root][v])
						}
					}
				}
				s.Close()
			}
		}
	}
}

// TestReorderedBatchEquivalence runs MS-BFS batches through a reordered
// session and checks every extraction surface speaks original ids:
// per-lane parents validate against the original graph, SeenMask
// matches the natural reached set, and Touched returns original-id
// vertices.
func TestReorderedBatchEquivalence(t *testing.T) {
	for gname, g := range reorderTestGraphs(t) {
		roots := sampleReorderRoots(g, 8)
		if len(roots) < 2 {
			t.Fatalf("%s: too few roots", gname)
		}
		baseline := make([]*Result, len(roots))
		for i, root := range roots {
			res, err := BFS(g, root, Options{Algorithm: AlgSequential, Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			baseline[i] = res
		}
		for _, o := range reorderTestOrderings {
			rd, err := g.Reorder(o)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := NewBatchSearcher(g, BatchOptions{
				Width:     len(roots),
				Threads:   3,
				Ordering:  o,
				Reordered: rd,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, o, err)
			}
			// Two batches back to back exercise the touched-list reset of
			// the translated lane state.
			var parents []uint32
			for pass := 0; pass < 2; pass++ {
				res, err := bs.Search(roots)
				if err != nil {
					t.Fatalf("%s/%s pass %d: %v", gname, o, pass, err)
				}
				for l, root := range roots {
					if res.Err[l] != nil {
						t.Fatalf("%s/%s lane %d: %v", gname, o, l, res.Err[l])
					}
					if res.Reached[l] != baseline[l].Reached {
						t.Fatalf("%s/%s lane %d: reached %d, want %d", gname, o, l, res.Reached[l], baseline[l].Reached)
					}
					parents = res.ExtractParents(l, parents)
					if err := ValidateTree(g, root, parents); err != nil {
						t.Fatalf("%s/%s lane %d: translated tree invalid: %v", gname, o, l, err)
					}
					if p := res.ParentOf(l, root); p != uint32(root) {
						t.Fatalf("%s/%s lane %d: ParentOf(root) = %d, want %d", gname, o, l, p, root)
					}
				}
				// SeenMask over every vertex must match the union of the
				// natural reached sets, lane by lane.
				for v := 0; v < g.NumVertices(); v++ {
					mask := res.SeenMask(graph.Vertex(v))
					for l := range roots {
						want := baseline[l].Parents[v] != NoParent
						if got := mask&(1<<uint(l)) != 0; got != want {
							t.Fatalf("%s/%s: SeenMask(%d) lane %d = %v, want %v", gname, o, v, l, got, want)
						}
					}
				}
				// Touched must be exactly the union of reached vertices, in
				// original ids.
				seen := make(map[uint32]bool)
				for _, v := range res.Touched() {
					seen[v] = true
				}
				for v := 0; v < g.NumVertices(); v++ {
					want := false
					for l := range roots {
						if baseline[l].Parents[v] != NoParent {
							want = true
							break
						}
					}
					if seen[uint32(v)] != want {
						t.Fatalf("%s/%s: Touched contains %d = %v, want %v", gname, o, v, seen[uint32(v)], want)
					}
				}
			}
			bs.Close()
		}
	}
}

// TestReorderedSearcherRejectsMismatch checks the Reordered-vs-graph
// validation paths.
func TestReorderedSearcherRejectsMismatch(t *testing.T) {
	g := must(gen.Chain(64))
	other := must(gen.Chain(65))
	rd, err := other.Reorder(graph.OrderDegree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(g, Options{Reordered: rd}); err == nil {
		t.Error("NewSearcher accepted a Reordered for a different graph")
	}
	if _, err := NewBatchSearcher(g, BatchOptions{Reordered: rd}); err == nil {
		t.Error("NewBatchSearcher accepted a Reordered for a different graph")
	}
}

// TestReorderedWarmSearchAllocs pins the zero-allocation warm path with
// the translation layer active: root translation in, parent
// translation out, and the extParents reset must all stay on pooled
// state.
func TestReorderedWarmSearchAllocs(t *testing.T) {
	g := must(gen.RMAT(10, 1<<13, gen.GTgraphDefaults, 7))
	roots := sampleReorderRoots(g, 4)
	if len(roots) < 2 {
		t.Fatal("too few roots")
	}
	for _, tier := range []struct {
		name string
		opt  Options
	}{
		{"sequential", Options{Algorithm: AlgSequential, Threads: 1}},
		{"single-socket", Options{Algorithm: AlgSingleSocket, Threads: 4}},
	} {
		opt := tier.opt
		opt.Ordering = graph.OrderDegree
		s, err := NewSearcher(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.BFS(roots[0]); err != nil { // absorb the cold search
			t.Fatal(err)
		}
		i := 0
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := s.BFS(roots[i%len(roots)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if allocs > 0 {
			t.Errorf("%s: warm reordered search allocates %.1f times per op", tier.name, allocs)
		}
		s.Close()
	}
}

// TestReorderedWarmBatchAllocs does the same for the MS-BFS session,
// including the pooled Touched translation buffer.
func TestReorderedWarmBatchAllocs(t *testing.T) {
	g := must(gen.RMAT(10, 1<<13, gen.GTgraphDefaults, 7))
	roots := sampleReorderRoots(g, 8)
	if len(roots) < 2 {
		t.Fatal("too few roots")
	}
	bs, err := NewBatchSearcher(g, BatchOptions{
		Width:    len(roots),
		Threads:  2,
		Ordering: graph.OrderDegree,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	if res, err := bs.Search(roots); err != nil { // absorb cold batch + warm extTouched
		t.Fatal(err)
	} else {
		res.Touched()
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := bs.Search(roots)
		if err != nil {
			t.Fatal(err)
		}
		res.Touched()
	})
	if allocs > 0 {
		t.Errorf("warm reordered batch allocates %.1f times per op", allocs)
	}
}
