package core

import (
	"testing"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
)

// hybridFamilies are graphs that exercise both directions of the
// hybrid: power-law graphs trigger bottom-up in the dense middle,
// chains never leave top-down.
func hybridFamilies(t *testing.T) []struct {
	name string
	g    *graph.Graph
	root graph.Vertex
} {
	t.Helper()
	return []struct {
		name string
		g    *graph.Graph
		root graph.Vertex
	}{
		{"uniform", must(gen.Uniform(5000, 8, 21)), 0},
		{"rmat", must(gen.RMAT(12, 1<<15, gen.GTgraphDefaults, 22)), 1},
		{"chain", must(gen.Chain(200)), 0},
		{"star", must(gen.Star(1000)), 0},
		{"grid", must(gen.Grid(50, 60, 4)), 0},
		{"two-islands", must(graph.FromEdges(6, []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5},
		})), 0},
	}
}

func TestDirectionOptimizingMatchesReference(t *testing.T) {
	for _, f := range hybridFamilies(t) {
		ref := run(t, f.g, f.root, Options{Algorithm: AlgSequential})
		for _, threads := range []int{1, 2, 4, 8} {
			res := run(t, f.g, f.root, Options{
				Algorithm: AlgDirectionOptimizing,
				Threads:   threads,
			})
			validate(t, f.g, res)
			if res.Reached != ref.Reached {
				t.Errorf("%s/t%d: Reached = %d, want %d", f.name, threads, res.Reached, ref.Reached)
			}
			if res.Levels != ref.Levels {
				t.Errorf("%s/t%d: Levels = %d, want %d", f.name, threads, res.Levels, ref.Levels)
			}
			// EdgesTraversed intentionally differs (early exit); it must
			// never exceed the top-down edge count plus the extra
			// conversion scans, and must be positive on non-trivial graphs.
			if ref.EdgesTraversed > 0 && res.EdgesTraversed <= 0 {
				t.Errorf("%s/t%d: no edges counted", f.name, threads)
			}
		}
	}
}

func TestDirectionOptimizingWithExplicitTranspose(t *testing.T) {
	g := must(gen.RMAT(11, 1<<14, gen.GTgraphDefaults, 9))
	gt := g.Transpose()
	res := run(t, g, 0, Options{
		Algorithm: AlgDirectionOptimizing,
		Threads:   4,
		Transpose: gt,
	})
	validate(t, g, res)
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	if res.Reached != ref.Reached {
		t.Errorf("Reached = %d, want %d", res.Reached, ref.Reached)
	}
}

func TestDirectionOptimizingSymmetricGraphSelfTranspose(t *testing.T) {
	g := must(gen.Grid(40, 40, 4)) // symmetric: g is its own transpose
	res := run(t, g, 0, Options{
		Algorithm: AlgDirectionOptimizing,
		Threads:   4,
		Transpose: g,
	})
	validate(t, g, res)
	if res.Reached != 1600 {
		t.Errorf("Reached = %d, want 1600", res.Reached)
	}
}

func TestDirectionOptimizingRejectsWrongTranspose(t *testing.T) {
	g := must(gen.Chain(10))
	wrong := must(gen.Chain(12))
	if _, err := BFS(g, 0, Options{Algorithm: AlgDirectionOptimizing, Transpose: wrong}); err == nil {
		t.Error("mismatched transpose accepted")
	}
}

// TestDirectionOptimizingSavesEdges verifies the point of the hybrid:
// on a dense random graph the scanned-edge count drops well below the
// top-down m_a.
func TestDirectionOptimizingSavesEdges(t *testing.T) {
	g := must(gen.Uniform(20000, 16, 5))
	topDown := run(t, g, 0, Options{Algorithm: AlgSingleSocket, Threads: 4})
	hybrid := run(t, g, 0, Options{Algorithm: AlgDirectionOptimizing, Threads: 4})
	validate(t, g, hybrid)
	if hybrid.EdgesTraversed >= topDown.EdgesTraversed {
		t.Errorf("hybrid scanned %d edges, top-down %d; expected a reduction",
			hybrid.EdgesTraversed, topDown.EdgesTraversed)
	}
	if float64(hybrid.EdgesTraversed) > 0.8*float64(topDown.EdgesTraversed) {
		t.Errorf("hybrid saved only %d of %d edges; expected a substantial cut",
			topDown.EdgesTraversed-hybrid.EdgesTraversed, topDown.EdgesTraversed)
	}
}

// TestDirectionOptimizingUsesNoAtomicsInBottomUp checks the headline
// property: in the dense levels the hybrid claims vertices without
// atomic operations.
func TestDirectionOptimizingUsesNoAtomicsInBottomUp(t *testing.T) {
	g := must(gen.Uniform(20000, 16, 6))
	hybrid := run(t, g, 0, Options{Algorithm: AlgDirectionOptimizing, Threads: 4, Instrument: true})
	topDown := run(t, g, 0, Options{Algorithm: AlgSingleSocket, Threads: 4, Instrument: true})
	var ha, ta int64
	for _, ls := range hybrid.PerLevel {
		ha += ls.AtomicOps
	}
	for _, ls := range topDown.PerLevel {
		ta += ls.AtomicOps
	}
	if ha >= ta {
		t.Errorf("hybrid used %d atomics, top-down %d; bottom-up should eliminate most", ha, ta)
	}
}

func TestDirectionOptimizingUnreachable(t *testing.T) {
	g := must(gen.Chain(10))
	res := run(t, g, 5, Options{Algorithm: AlgDirectionOptimizing, Threads: 4})
	validate(t, g, res)
	if res.Reached != 5 {
		t.Errorf("Reached = %d, want 5", res.Reached)
	}
	for v := 0; v < 5; v++ {
		if res.Parents[v] != NoParent {
			t.Errorf("Parents[%d] = %d, want NoParent", v, res.Parents[v])
		}
	}
}

func TestDirectionOptimizingManyThreadsSmallGraph(t *testing.T) {
	g := must(gen.Star(100))
	res := run(t, g, 0, Options{Algorithm: AlgDirectionOptimizing, Threads: 32})
	validate(t, g, res)
	if res.Reached != 100 {
		t.Errorf("Reached = %d, want 100", res.Reached)
	}
}

// TestDirectionOptimizingFrontierPartition stresses the index-
// partitioned frontier build/clear: thread counts that do not divide
// the frontier evenly, and a hub whose discovery floods one level's CQ
// with vertices from every range, so the worker that sets a frontier
// bit is routinely not the worker that owns that vertex's range.
func TestDirectionOptimizingFrontierPartition(t *testing.T) {
	g := must(gen.RMAT(11, 1<<14, gen.Graph500Params, 9)).Undirected()
	ref := run(t, g, 2, Options{Algorithm: AlgSequential})
	for _, threads := range []int{2, 3, 5, 7, 11, 16} {
		res := run(t, g, 2, Options{Algorithm: AlgDirectionOptimizing, Threads: threads})
		validate(t, g, res)
		if res.Reached != ref.Reached || res.Levels != ref.Levels {
			t.Errorf("t%d: Reached/Levels = %d/%d, want %d/%d",
				threads, res.Reached, res.Levels, ref.Reached, ref.Levels)
		}
	}
}

func TestDirectionOptimizingString(t *testing.T) {
	if AlgDirectionOptimizing.String() != "direction-optimizing" {
		t.Errorf("String = %q", AlgDirectionOptimizing.String())
	}
}

func TestHybridKnobsProduceValidTrees(t *testing.T) {
	// Extreme switch thresholds force degenerate policies — alpha=1
	// flips to bottom-up almost immediately, a huge beta makes the
	// return to top-down very late — and every one of them must still
	// deliver a correct tree with the reference vertex count.
	knobs := []struct {
		name        string
		alpha, beta int
	}{
		{"eager-bottom-up", 1, 2},
		{"sticky-bottom-up", 2, 1 << 20},
		{"reluctant", 1 << 20, 1 << 30},
		{"custom-moderate", 7, 48},
	}
	for _, f := range hybridFamilies(t) {
		ref := run(t, f.g, f.root, Options{Algorithm: AlgSequential})
		for _, k := range knobs {
			res := run(t, f.g, f.root, Options{
				Algorithm:   AlgDirectionOptimizing,
				Threads:     4,
				HybridAlpha: k.alpha,
				HybridBeta:  k.beta,
			})
			validate(t, f.g, res)
			if res.Reached != ref.Reached {
				t.Errorf("%s/%s: Reached = %d, want %d", f.name, k.name, res.Reached, ref.Reached)
			}
			if res.Levels != ref.Levels {
				t.Errorf("%s/%s: Levels = %d, want %d", f.name, k.name, res.Levels, ref.Levels)
			}
		}
	}
}

func TestHybridKnobsRejectNegatives(t *testing.T) {
	g := must(gen.Chain(10))
	for _, o := range []Options{
		{Algorithm: AlgDirectionOptimizing, HybridAlpha: -1},
		{Algorithm: AlgDirectionOptimizing, HybridBeta: -3},
	} {
		if _, err := NewSearcher(g, o); err == nil {
			t.Errorf("NewSearcher(%+v) accepted a negative hybrid knob", o)
		}
	}
}
