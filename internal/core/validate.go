package core

import (
	"fmt"

	"mcbfs/internal/graph"
)

// ValidateTree checks that parents encodes a correct BFS tree of g
// rooted at root:
//
//  1. the root is its own parent;
//  2. every reached vertex's parent edge exists in g;
//  3. the set of reached vertices is exactly the set reachable from
//     root;
//  4. tree depths are BFS depths: depth(v) = dist(root, v) for every
//     reached v — the property that separates breadth-first trees from
//     arbitrary spanning trees.
//
// It recomputes distances with an independent serial BFS, so it is
// O(n + m) and usable on every graph the tests generate.
func ValidateTree(g *graph.Graph, root graph.Vertex, parents []uint32) error {
	n := g.NumVertices()
	if len(parents) != n {
		return fmt.Errorf("core: parents length %d != vertex count %d", len(parents), n)
	}
	if parents[root] != uint32(root) {
		return fmt.Errorf("core: root %d has parent %d, want itself", root, parents[root])
	}

	// Reference distances by serial BFS.
	const unreached = -1
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = unreached
	}
	dist[root] = 0
	frontier := []uint32{uint32(root)}
	for len(frontier) > 0 {
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Neighbors(graph.Vertex(u)) {
				if dist[v] == unreached {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}

	// Check reachability agreement and parent-edge validity.
	for v := 0; v < n; v++ {
		p := parents[v]
		if dist[v] == unreached {
			if p != NoParent {
				return fmt.Errorf("core: unreachable vertex %d has parent %d", v, p)
			}
			continue
		}
		if p == NoParent {
			return fmt.Errorf("core: reachable vertex %d (dist %d) not in tree", v, dist[v])
		}
		if v == int(root) {
			continue
		}
		if int(p) >= n {
			return fmt.Errorf("core: vertex %d has out-of-range parent %d", v, p)
		}
		if !g.HasEdge(graph.Vertex(p), graph.Vertex(v)) {
			return fmt.Errorf("core: tree edge %d->%d not in graph", p, v)
		}
		if dist[v] != dist[p]+1 {
			return fmt.Errorf("core: vertex %d at distance %d has parent %d at distance %d; not a BFS tree",
				v, dist[v], p, dist[p])
		}
	}
	return nil
}

// TreeDepths returns the depth of every vertex in the parent tree
// (NoDepth for unreached vertices), computed by path-halving walks in
// O(n alpha) amortized. It does not verify BFS optimality; use
// ValidateTree for that.
func TreeDepths(parents []uint32, root graph.Vertex) []int32 {
	const NoDepth = -1
	n := len(parents)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = NoDepth
	}
	if n == 0 {
		return depth
	}
	depth[root] = 0
	var stack []uint32
	for v := 0; v < n; v++ {
		if parents[v] == NoParent || depth[v] != NoDepth {
			continue
		}
		// Walk up until a vertex with a known depth, then unwind.
		stack = stack[:0]
		u := uint32(v)
		for depth[u] == NoDepth {
			stack = append(stack, u)
			u = parents[u]
		}
		d := depth[u]
		for i := len(stack) - 1; i >= 0; i-- {
			d++
			depth[stack[i]] = d
		}
	}
	return depth
}

// NoDepth marks unreached vertices in TreeDepths output.
const NoDepth = int32(-1)
