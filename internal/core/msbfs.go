package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/affinity"
	"mcbfs/internal/bitmap"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
)

// This file implements batched multi-source BFS (MS-BFS): up to 64
// single-source searches advanced by one shared traversal. Where the
// paper's Algorithms 2–3 shrink one search's random working set (the
// visited bitmap) to relieve the memory-bandwidth bottleneck, MS-BFS
// attacks the same bottleneck from the other side for query-serving
// workloads: N concurrent queries over the same CSR no longer pay N
// full edge scans — one pass over a vertex's adjacency advances every
// lane whose frontier contains it, so each cache-missing edge load is
// amortized across the batch.
//
// The state is three lane-mask vectors (bitmap.Lanes, one 64-bit word
// per vertex):
//
//	seen[v]      — lanes that have reached v (the batched visited set)
//	visit[v]     — lanes whose current frontier contains v
//	visitNext[v] — lanes discovering v in this level
//
// and a lane-strided parent array. The per-neighbour claim is the
// paper's double-checked pattern lifted to lane masks: a plain read of
// seen[w] first (d = visit[v] &^ seen[w]), and only when some lane bit
// looks clear the atomic OR — whose returned previous value, not the
// probe, decides which lane bits this worker actually won.
//
// Parallelism reuses the level-barrier machinery of the session tiers:
// workers own static vertex ranges of the frontier vectors, a
// coordinator elected at the level barrier folds activity masks and
// decides termination, and the whole engine is a persistent worker pool
// with pooled state and an O(touched) reset, mirroring the Searcher
// contract.

// MaxLanes is the number of concurrent sources one batch traversal can
// carry: the lane words are 64 bits wide.
const MaxLanes = 64

// BatchAlgorithmName labels MS-BFS traversals in telemetry samples.
const BatchAlgorithmName = "msbfs"

// BatchOptions configures a BatchSearcher. The zero value is a 64-lane
// engine with GOMAXPROCS workers.
type BatchOptions struct {
	// Width is the maximum number of lanes (sources) per traversal,
	// 1..64. It sizes the lane-strided parent array, so sessions that
	// only ever batch 8 queries can pay an 8th of the parent memory.
	// 0 means 64.
	Width int
	// Threads is the number of worker goroutines; 0 means
	// runtime.GOMAXPROCS(0).
	Threads int
	// PinThreads pins each worker to a CPU for the session's lifetime,
	// as for Options.PinThreads.
	PinThreads bool
	// Telemetry, when non-nil, receives one batch sample per traversal
	// (lanes-per-traversal histogram, shared vs. per-lane edge scans)
	// and one obs.QuerySample per lane.
	Telemetry *obs.Telemetry
	// TelemetryShard selects the latency-histogram shard the per-lane
	// samples record into.
	TelemetryShard int
	// Metrics, when non-nil, receives the batch counters
	// (BatchTraversals, BatchLanes, BatchEdges, BatchLaneEdges).
	Metrics *obs.Metrics
	// EdgeBudget selects the worker partition of the frontier vectors:
	// 0 or positive (the default) splits [0, n) by edge prefix sums so
	// each worker's scan range carries ~equal adjacency mass; a
	// negative value (core.EdgeBudgetOff) restores the legacy uniform
	// vertex split. MS-BFS scans its whole range every level, so the
	// partition is static and the budget's magnitude is irrelevant —
	// only its sign participates, mirroring Options.EdgeBudget.
	EdgeBudget int64
	// Ordering and Reordered select a locality-optimized vertex
	// relabeling exactly as for Options: the traversal runs on the
	// relabeled graph, roots are translated in, and every extraction
	// method (SeenMask, ParentOf, Touched, ExtractParents) translates
	// back out, so callers keep original vertex ids. Reordered overrides
	// Ordering and lets the batch engine share mcbfs.Pool's relabeled
	// CSR.
	Ordering  graph.Ordering
	Reordered *graph.Reordered
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.Width <= 0 {
		o.Width = MaxLanes
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	return o
}

// batchWorker is one pool worker's per-traversal scratch, padded so the
// end-of-level deposits of adjacent workers never share a cache line.
type batchWorker struct {
	// activeNext is the OR of lane bits this worker newly set in
	// visitNext during the level; the coordinator folds the slots at
	// the barrier.
	activeNext uint64
	// edges counts adjacency entries this worker scanned (each scanned
	// once for the whole batch).
	edges int64
	// allEdges accumulates degree for frontier vertices whose active
	// mask equalled the full batch mask — the common case once lanes
	// converge — so per-lane edge attribution pays the bit loop only
	// for partial masks.
	allEdges int64
	// laneEdges and laneReached are per-lane attribution: what each
	// lane's single-source search would have scanned and reached.
	laneEdges   [MaxLanes]int64
	laneReached [MaxLanes]int64
	// tbuf batches pushes onto the touched queue.
	tbuf []uint32
	_    [64]byte
}

// BatchSearcher is a reusable MS-BFS session bound to one graph: a
// persistent worker pool plus pooled lane state — seen/visit/visitNext
// lane vectors, the lane-strided parent array, and the touched list —
// sized once and reused, so a warm Search performs zero per-batch heap
// allocations and pays an O(touched) reset rather than an O(n)
// reinitialization, exactly the Searcher contract.
//
// A BatchSearcher serves one batch at a time: Search and Close must not
// be called concurrently. For concurrent batch streams, create one
// BatchSearcher per stream (or use mcbfs.Pool's batching mode).
type BatchSearcher struct {
	g       *graph.Graph
	o       BatchOptions
	n       int
	width   int // lane capacity; stride of parents
	workers int

	// bounds is the edge-prefix-sum worker partition of [0, n] (nil
	// under BatchOptions.EdgeBudget < 0, selecting the uniform split).
	bounds []int

	seen      *bitmap.Lanes
	visit     *bitmap.Lanes
	visitNext *bitmap.Lanes
	parents   []uint32          // n*width, vertex-major: parents[v*width+lane]
	touched   *queue.ChunkQueue // vertices with any seen bit — the O(touched) reset list

	// Ordering translation layer, as in Searcher: the lane vectors and
	// parent stride are indexed by relabeled ids; perm/inv translate at
	// the API boundary. extTouched is the pooled caller-id copy of the
	// touched list, filled lazily by BatchResult.Touched. All nil in
	// natural order.
	perm, inv  []graph.Vertex
	extTouched []uint32

	ws []batchWorker

	bar    *barrier
	gate   *barrier
	wg     sync.WaitGroup
	closed bool
	job    jobKind

	// Per-batch state, written by Search before the launch gate (the
	// gate's mutex publishes it to the workers).
	lanes      int
	laneMask   uint64
	activeMask uint64 // laneMask minus cancelled lanes; coordinator-owned
	ctx        context.Context
	laneCtx    []context.Context // nil, or per-lane contexts (nil entries = background)
	cancelMask laneCancel        // lanes whose bits stop propagating
	done       atomic.Bool
	depth      int // depth of the frontier being expanded

	laneLevels  [MaxLanes]int
	laneReached [MaxLanes]int64
	laneEdges   [MaxLanes]int64
	laneErr     [MaxLanes]error

	hasTouched bool
	res        BatchResult
}

// laneCancel is the cross-worker cancellation mask: one bit per lane,
// set by whichever party first observes that lane's context expired (a
// worker on whole-batch cancellation, the coordinator on per-lane
// polls). The Or is the same CAS loop as bitmap.Lanes.Or, for the same
// toolchain-portability reason.
type laneCancel struct{ v atomic.Uint64 }

func (c *laneCancel) Load() uint64  { return c.v.Load() }
func (c *laneCancel) Store(m uint64) { c.v.Store(m) }

func (c *laneCancel) Or(m uint64) {
	for {
		old := c.v.Load()
		if old&m == m {
			return
		}
		if c.v.CompareAndSwap(old, old|m) {
			return
		}
	}
}

// NewBatchSearcher builds an MS-BFS session over g. Lane state for the
// full configured width is allocated eagerly, so the first Search pays
// only the traversal itself.
func NewBatchSearcher(g *graph.Graph, opt BatchOptions) (*BatchSearcher, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	o := opt.withDefaults()
	if o.Width > MaxLanes {
		return nil, fmt.Errorf("core: batch width %d exceeds %d lanes", o.Width, MaxLanes)
	}
	n := g.NumVertices()
	rd := o.Reordered
	if rd == nil && o.Ordering != graph.OrderNatural {
		var err error
		if rd, err = g.Reorder(o.Ordering); err != nil {
			return nil, err
		}
	}
	workGraph := g
	var perm, inv []graph.Vertex
	if rd != nil {
		if rd.Graph == nil || rd.Graph.NumVertices() != n || rd.Graph.NumEdges() != g.NumEdges() {
			return nil, errors.New("core: BatchOptions.Reordered does not match the graph")
		}
		if rd.Perm != nil && (len(rd.Perm) != n || len(rd.Inv) != n) {
			return nil, errors.New("core: BatchOptions.Reordered permutation length mismatch")
		}
		workGraph = rd.Graph
		perm, inv = rd.Perm, rd.Inv
	}
	b := &BatchSearcher{
		g:       workGraph,
		perm:    perm,
		inv:     inv,
		o:       o,
		n:       n,
		width:   o.Width,
		workers: o.Threads,
		seen:    bitmap.NewLanes(n),
		visit:   bitmap.NewLanes(n),
		visitNext: bitmap.NewLanes(n),
		parents: make([]uint32, n*o.Width),
		touched: queue.NewChunkQueue(n),
		ws:      make([]batchWorker, o.Threads),
		bar:     newBarrier(o.Threads),
		gate:    newBarrier(o.Threads + 1),
	}
	for w := range b.ws {
		b.ws[w].tbuf = make([]uint32, 0, 64)
	}
	if o.EdgeBudget >= 0 && b.workers > 1 {
		b.bounds = graph.EdgePartition(workGraph.Offsets(), b.workers, 1)
	}
	b.res = BatchResult{
		b:       b,
		Roots:   make([]graph.Vertex, 0, o.Width),
		Reached: make([]int64, 0, o.Width),
		Edges:   make([]int64, 0, o.Width),
		Levels:  make([]int, 0, o.Width),
		Err:     make([]error, 0, o.Width),
	}
	b.wg.Add(b.workers)
	for w := 0; w < b.workers; w++ {
		go b.workerLoop(w)
	}
	return b, nil
}

// Width returns the session's lane capacity.
func (b *BatchSearcher) Width() int { return b.width }

// workerLoop is one persistent pool worker, parked on the gate between
// jobs exactly as a Searcher worker is.
func (b *BatchSearcher) workerLoop(w int) {
	defer b.wg.Done()
	if b.o.PinThreads {
		if unpin, err := affinity.PinToCPU(w); err == nil {
			defer unpin()
		}
	}
	for {
		b.gate.wait()
		if b.closed {
			return
		}
		switch b.job {
		case jobSearch:
			b.batchWorker(w)
		case jobClear:
			b.clearShard(w)
		}
		b.gate.wait()
	}
}

// runJob hands the prepared job to the pool and blocks until every
// worker has finished it.
func (b *BatchSearcher) runJob(kind jobKind) {
	b.job = kind
	b.gate.wait()
	b.gate.wait()
}

// vertexRange is worker w's static share of the frontier vectors:
// edge-balanced boundaries when BatchOptions.EdgeBudget permits (the
// default), the uniform vertex split otherwise. Lane words are one per
// vertex, so no word alignment is needed.
func (b *BatchSearcher) vertexRange(w int) (lo, hi int) {
	if b.bounds != nil {
		return b.bounds[w], b.bounds[w+1]
	}
	return b.n * w / b.workers, b.n * (w + 1) / b.workers
}

// clearShard is worker w's share of the parallel full-reset fallback.
func (b *BatchSearcher) clearShard(w int) {
	lo, hi := b.vertexRange(w)
	b.seen.ResetWords(lo, hi)
	b.visit.ResetWords(lo, hi)
	b.visitNext.ResetWords(lo, hi)
}

// resetState restores the lane vectors after the previous batch in
// O(touched): every vertex with any lane bit set — in seen, and
// therefore in visit/visitNext, which only ever hold subsets of seen —
// is on the touched queue, so walking it and zeroing the three words
// restores pristine state. The parent array needs no reset: entries
// are only ever read under a set seen bit.
func (b *BatchSearcher) resetState() {
	if !b.hasTouched {
		return
	}
	touched := b.touched.Size()
	switch {
	case touched >= b.n/4 && b.workers > 1:
		b.runJob(jobClear)
	case touched >= b.n/4:
		b.clearShard(0)
	default:
		for _, v := range b.touched.Slice() {
			b.seen.Store(int(v), 0)
			b.visit.Store(int(v), 0)
			b.visitNext.Store(int(v), 0)
		}
	}
	b.touched.Reset()
	b.hasTouched = false
}

// Search runs one batch of up to Width BFS traversals, one lane per
// root. The returned BatchResult — including everything reachable
// through its extraction methods — remains valid only until the next
// Search or Close on this BatchSearcher.
func (b *BatchSearcher) Search(roots []graph.Vertex) (*BatchResult, error) {
	return b.SearchLanes(context.Background(), roots, nil)
}

// SearchContext is Search bounded by one context covering the whole
// batch: when ctx is cancelled, every lane unwinds at the next level
// barrier (or worker checkpoint) and SearchContext returns ctx.Err().
func (b *BatchSearcher) SearchContext(ctx context.Context, roots []graph.Vertex) (*BatchResult, error) {
	return b.SearchLanes(ctx, roots, nil)
}

// SearchLanes is the serving-shape entry point: each lane may carry its
// own context (nil entries mean context.Background()). A lane whose
// context expires is cancelled individually — its bits are masked out
// of the propagation at the next level barrier, so it stops consuming
// bandwidth while the other lanes run to completion — and reports the
// context's error in BatchResult.Err; the batch itself still succeeds.
// ctx bounds the whole batch as for SearchContext.
func (b *BatchSearcher) SearchLanes(ctx context.Context, roots []graph.Vertex, laneCtx []context.Context) (*BatchResult, error) {
	if b.closed {
		return nil, errors.New("core: Search on a closed BatchSearcher")
	}
	if len(roots) == 0 {
		return nil, errors.New("core: batch with no roots")
	}
	if len(roots) > b.width {
		return nil, fmt.Errorf("core: %d roots exceed the session's %d lanes", len(roots), b.width)
	}
	if laneCtx != nil && len(laneCtx) != len(roots) {
		return nil, fmt.Errorf("core: %d lane contexts for %d roots", len(laneCtx), len(roots))
	}
	for i, r := range roots {
		if int(r) >= b.n {
			return nil, fmt.Errorf("core: root %d (lane %d) out of range [0,%d)", r, i, b.n)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err // dead on arrival: no state dirtied
	}

	b.resetState()
	b.hasTouched = true
	b.ctx = ctx
	b.laneCtx = laneCtx
	b.lanes = len(roots)
	b.laneMask = laneAll(b.lanes)
	b.cancelMask.Store(0)
	b.done.Store(false)
	b.depth = 0

	// Seed the lanes. A lane whose context is already dead is cancelled
	// before the first scan, so it deterministically reaches only its
	// root.
	var cancelled uint64
	for i, r := range roots {
		// The traversal runs in the session's id space; res.Roots echoes
		// the caller's original ids.
		ir := int(r)
		if b.perm != nil {
			ir = int(b.perm[r])
		}
		bit := uint64(1) << uint(i)
		if old := b.seen.Or(ir, bit); old == 0 {
			b.touched.Push(uint32(ir))
		}
		b.visit.Or(ir, bit)
		b.parents[ir*b.width+i] = uint32(ir)
		b.laneLevels[i] = 1
		b.laneReached[i] = 1
		b.laneEdges[i] = 0
		b.laneErr[i] = nil
		if laneCtx != nil && laneCtx[i] != nil && laneCtx[i].Err() != nil {
			cancelled |= bit
		}
	}
	b.cancelMask.Store(cancelled)
	b.activeMask = b.laneMask &^ cancelled
	if b.activeMask == 0 {
		// Every lane dead on arrival: no traversal, but the seeds are
		// dirty, so finish through the normal path.
		b.done.Store(true)
	}

	start := time.Now()
	if !b.done.Load() {
		b.runJob(jobSearch)
	}
	dur := time.Since(start)

	// Fold per-worker attribution into the lane totals. The fold also
	// zeroes the worker scratch, so it must run even when the batch is
	// about to unwind on ctx — stale slots would leak into the next
	// batch otherwise.
	var edges int64
	for w := range b.ws {
		ws := &b.ws[w]
		edges += ws.edges
		ws.edges = 0
		for l := 0; l < b.lanes; l++ {
			b.laneEdges[l] += ws.laneEdges[l] + ws.allEdges
			b.laneReached[l] += ws.laneReached[l]
			ws.laneEdges[l] = 0
			ws.laneReached[l] = 0
		}
		ws.allEdges = 0
	}

	if ctx.Err() != nil {
		// Whole-batch abort mirrors Searcher.SearchContext: the partial
		// lane state is not a result; reset happens lazily on the next
		// Search.
		return nil, ctx.Err()
	}

	// Resolve per-lane errors for cancelled lanes.
	cm := b.cancelMask.Load()
	for l := 0; l < b.lanes; l++ {
		if cm&(1<<uint(l)) == 0 {
			continue
		}
		err := context.Canceled
		if laneCtx != nil && laneCtx[l] != nil && laneCtx[l].Err() != nil {
			err = laneCtx[l].Err()
		}
		b.laneErr[l] = err
	}

	res := &b.res
	res.Roots = append(res.Roots[:0], roots...)
	res.Lanes = b.lanes
	res.Reached = append(res.Reached[:0], b.laneReached[:b.lanes]...)
	res.Edges = append(res.Edges[:0], b.laneEdges[:b.lanes]...)
	res.Levels = append(res.Levels[:0], b.laneLevels[:b.lanes]...)
	res.Err = append(res.Err[:0], b.laneErr[:b.lanes]...)
	res.EdgesScanned = edges
	res.Duration = dur
	b.record(res, start)
	return res, nil
}

// record hands the finished batch to the session's telemetry sinks.
func (b *BatchSearcher) record(res *BatchResult, start time.Time) {
	var laneEdges int64
	for _, e := range res.Edges {
		laneEdges += e
	}
	if m := b.o.Metrics; m != nil {
		m.BatchTraversals.Add(1)
		m.BatchLanes.Add(int64(res.Lanes))
		m.BatchEdges.Add(res.EdgesScanned)
		m.BatchLaneEdges.Add(laneEdges)
	}
	t := b.o.Telemetry
	if t == nil {
		return
	}
	t.RecordBatch(res.Lanes, res.EdgesScanned, laneEdges)
	for l := 0; l < res.Lanes; l++ {
		outcome := obs.OutcomeOK
		if res.Err[l] != nil {
			outcome = obs.OutcomeCancelled
		}
		t.RecordQuery(b.o.TelemetryShard, obs.QuerySample{
			Root:      uint32(res.Roots[l]),
			Start:     start,
			Duration:  res.Duration,
			Levels:    res.Levels[l],
			Reached:   res.Reached[l],
			Edges:     res.Edges[l],
			Outcome:   outcome,
			Algorithm: BatchAlgorithmName,
		})
	}
}

// batchCancelStride is how many frontier-vector words a worker scans
// between whole-batch context polls; per-lane contexts are polled by
// the coordinator at every level barrier.
const batchCancelStride = 1 << 12

// batchWorker runs one worker's share of the traversal: scan the owned
// range of visit for active lane masks, advance every lane across each
// vertex's adjacency in one pass, and meet the others at the level
// barrier. The owner both reads and clears its visit words, so after a
// full scan the vector is empty and becomes the next level's visitNext
// at the swap — no O(n) zeroing between levels.
func (b *BatchSearcher) batchWorker(w int) {
	ws := &b.ws[w]
	g := b.g
	width := b.width
	parents := b.parents
	lo, hi := b.vertexRange(w)
	var myEdges int64
	tbuf := ws.tbuf[:0]
	for {
		visit, visitNext := b.visit, b.visitNext
		am := b.activeMask
		allMask := am
		var myActive uint64
		for v := lo; v < hi; v++ {
			if v&(batchCancelStride-1) == 0 && b.ctx.Err() != nil {
				b.cancelMask.Or(b.laneMask)
				break
			}
			m := visit.Load(v)
			if m == 0 {
				continue
			}
			visit.Store(v, 0)
			m &= am
			if m == 0 {
				continue
			}
			nbrs := g.Neighbors(graph.Vertex(v))
			deg := int64(len(nbrs))
			myEdges += deg
			// Per-lane edge attribution: the full-mask fast path keeps
			// the converged case at one add; partial masks pay one add
			// per set bit.
			if m == allMask {
				ws.allEdges += deg
			} else {
				for t := m; t != 0; t &= t - 1 {
					ws.laneEdges[bits.TrailingZeros64(t)] += deg
				}
			}
			for _, nb := range nbrs {
				wv := int(nb)
				// Double-checked claim on the shared seen words: the
				// plain probe first; only lanes that look unseen pay
				// the atomic OR, and the OR's returned previous value
				// decides which bits this worker actually won.
				d := m &^ b.seen.Load(wv)
				if d == 0 {
					continue
				}
				old := b.seen.Or(wv, d)
				d &^= old
				if d == 0 {
					continue
				}
				if old == 0 {
					tbuf = append(tbuf, nb)
					if len(tbuf) == cap(tbuf) {
						b.touched.PushBatch(tbuf)
						tbuf = tbuf[:0]
					}
				}
				visitNext.Or(wv, d)
				myActive |= d
				base := wv * width
				for t := d; t != 0; t &= t - 1 {
					l := bits.TrailingZeros64(t)
					parents[base+l] = uint32(v)
					ws.laneReached[l]++
				}
			}
		}
		b.touched.PushBatch(tbuf)
		tbuf = tbuf[:0]
		ws.activeNext = myActive

		if b.bar.wait() {
			b.advanceBatch()
		}
		b.bar.wait()
		if b.done.Load() {
			ws.edges = myEdges
			return
		}
	}
}

// advanceBatch is the level transition, run by the coordinator elected
// at the first barrier (its writes are published to the other workers
// by the second): fold the workers' activity masks, poll cancellation,
// stamp lane levels, and swap the frontier vectors.
func (b *BatchSearcher) advanceBatch() {
	var folded uint64
	for w := range b.ws {
		folded |= b.ws[w].activeNext
		b.ws[w].activeNext = 0
	}
	cm := b.cancelMask.Load()
	if b.ctx.Err() != nil {
		cm = b.laneMask
	} else if b.laneCtx != nil {
		for l := 0; l < b.lanes; l++ {
			bit := uint64(1) << uint(l)
			if cm&bit != 0 {
				continue
			}
			if c := b.laneCtx[l]; c != nil && c.Err() != nil {
				cm |= bit
			}
		}
	}
	b.cancelMask.Store(cm)
	active := folded &^ cm
	if active == 0 {
		b.done.Store(true)
		return
	}
	// Newly discovered vertices sit at depth+1; a lane active in this
	// fold therefore spans depth+2 levels (level 0 is the root).
	b.depth++
	for t := active; t != 0; t &= t - 1 {
		b.laneLevels[bits.TrailingZeros64(t)] = b.depth + 1
	}
	b.visit, b.visitNext = b.visitNext, b.visit
	b.activeMask = b.laneMask &^ cm
}

// Close shuts down the worker pool and joins it, exactly as
// Searcher.Close. Close is idempotent but must not run concurrently
// with Search.
func (b *BatchSearcher) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	b.gate.wait()
	b.wg.Wait()
	return nil
}

// Closed reports whether Close has completed on this BatchSearcher, for
// owners verifying teardown (e.g. a serving pool rebinding its batch
// runners to a new graph snapshot).
func (b *BatchSearcher) Closed() bool { return b.closed }

// laneAll returns the mask of the first lanes lane bits, handling the
// full 64-lane case where 1<<64 would overflow.
func laneAll(lanes int) uint64 {
	if lanes >= MaxLanes {
		return ^uint64(0)
	}
	return (uint64(1) << uint(lanes)) - 1
}

// BatchResult is the outcome of one MS-BFS batch. The per-lane slices
// are indexed by lane (the position of the root in the Search call);
// the extraction methods read the session's pooled lane state, so the
// whole result is valid only until the next Search or Close.
type BatchResult struct {
	// Roots echoes the batch's sources, one per lane.
	Roots []graph.Vertex
	// Lanes is the batch width actually run (len(Roots)).
	Lanes int
	// Reached[l] is the number of vertices in lane l's BFS tree,
	// including the root — identical to what the lane's single-source
	// search would report.
	Reached []int64
	// Edges[l] is the adjacency entries attributable to lane l (the
	// paper's m_a for that source): what a single-source search from
	// Roots[l] would have scanned. The sum over lanes divided by
	// EdgesScanned is the batch's bandwidth amortization factor.
	Edges []int64
	// Levels[l] is lane l's BFS level count (root eccentricity + 1).
	Levels []int
	// Err[l] is nil for a completed lane, or the lane context's error
	// for a lane cancelled mid-traversal.
	Err []error
	// EdgesScanned is the adjacency entries the shared traversal
	// actually loaded — each scanned once for all lanes whose frontier
	// met it.
	EdgesScanned int64
	// Duration is the wall-clock time of the whole batch.
	Duration time.Duration

	b *BatchSearcher
}

// LaneTEPS returns lane l's traversed-edges-per-second rate, charging
// the lane its attributed edges over the shared batch duration divided
// evenly — i.e. the per-query figure a serving system would quote.
func (r *BatchResult) LaneTEPS(l int) float64 {
	if r.Duration <= 0 || r.Lanes == 0 {
		return 0
	}
	perLane := r.Duration.Seconds() / float64(r.Lanes)
	if perLane <= 0 {
		return 0
	}
	return float64(r.Edges[l]) / perLane
}

// SeenMask returns the lane bits that reached v — which of the batch's
// sources have v in their BFS tree. v is a caller-id vertex; with an
// active ordering it is translated through the session's permutation.
func (r *BatchResult) SeenMask(v graph.Vertex) uint64 {
	iv := int(v)
	if r.b.perm != nil {
		iv = int(r.b.perm[v])
	}
	return r.b.seen.Load(iv) & r.b.laneMask
}

// ParentOf returns v's parent in lane l's BFS tree, or NoParent when
// lane l did not reach v. The root's parent is the root itself. Both v
// and the returned parent are caller ids.
func (r *BatchResult) ParentOf(l int, v graph.Vertex) uint32 {
	iv := int(v)
	if r.b.perm != nil {
		iv = int(r.b.perm[v])
	}
	if r.b.seen.Load(iv)&(1<<uint(l)) == 0 {
		return NoParent
	}
	p := r.b.parents[iv*r.b.width+l]
	if r.b.inv != nil {
		p = uint32(r.b.inv[p])
	}
	return p
}

// Touched returns the vertices reached by at least one lane, in
// discovery order, as caller ids. In natural order the slice aliases
// the session's touched queue; with an active ordering it is the
// session's pooled translation buffer (allocated once, then reused).
// Either way, read it before the next Search.
func (r *BatchResult) Touched() []uint32 {
	raw := r.b.touched.Slice()
	if r.b.inv == nil {
		return raw
	}
	if cap(r.b.extTouched) < len(raw) {
		r.b.extTouched = make([]uint32, 0, r.b.n)
	}
	out := r.b.extTouched[:len(raw)]
	for i, v := range raw {
		out[i] = uint32(r.b.inv[v])
	}
	return out
}

// ExtractParents materializes lane l's full parent array (NoParent for
// unreached vertices, everything in caller ids) into dst, allocating
// when dst is too small. The fill is O(n) plus O(touched) for the
// reached entries — the price of detaching a lane's tree from the
// pooled state.
func (r *BatchResult) ExtractParents(l int, dst []uint32) []uint32 {
	n := r.b.n
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	fillNoParent(dst)
	bit := uint64(1) << uint(l)
	width := r.b.width
	inv := r.b.inv
	for _, v := range r.b.touched.Slice() {
		if r.b.seen.Load(int(v))&bit == 0 {
			continue
		}
		p := r.b.parents[int(v)*width+l]
		if inv != nil {
			dst[inv[v]] = uint32(inv[p])
		} else {
			dst[v] = p
		}
	}
	return dst
}

// LaneResult renders lane l as a scalar core.Result (Parents, PerLevel
// and Trace nil) — the shape mcbfs.Pool returns for batched queries.
func (r *BatchResult) LaneResult(l int) Result {
	return Result{
		Root:           r.Roots[l],
		Reached:        r.Reached[l],
		EdgesTraversed: r.Edges[l],
		Levels:         r.Levels[l],
		Duration:       r.Duration,
		Threads:        r.b.workers,
	}
}

// BatchQuery is the one-shot convenience wrapper: it creates a session
// sized to the batch, runs it, extracts every lane's parent array, and
// tears the session down. Callers issuing repeated batches should hold
// a BatchSearcher instead and amortize the setup.
func BatchQuery(g *graph.Graph, roots []graph.Vertex, opt BatchOptions) (*BatchTrees, error) {
	if opt.Width <= 0 {
		opt.Width = len(roots)
	}
	b, err := NewBatchSearcher(g, opt)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	res, err := b.Search(roots)
	if err != nil {
		return nil, err
	}
	out := &BatchTrees{
		Roots:        append([]graph.Vertex(nil), res.Roots...),
		Reached:      append([]int64(nil), res.Reached...),
		Edges:        append([]int64(nil), res.Edges...),
		Levels:       append([]int(nil), res.Levels...),
		EdgesScanned: res.EdgesScanned,
		Duration:     res.Duration,
		Parents:      make([][]uint32, res.Lanes),
	}
	for l := 0; l < res.Lanes; l++ {
		out.Parents[l] = res.ExtractParents(l, nil)
	}
	return out, nil
}

// BatchTrees is BatchQuery's detached result: per-lane parent arrays
// that outlive the session.
type BatchTrees struct {
	Roots        []graph.Vertex
	Reached      []int64
	Edges        []int64
	Levels       []int
	Parents      [][]uint32
	EdgesScanned int64
	Duration     time.Duration
}
