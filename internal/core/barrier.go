package core

import "sync"

// barrier is a reusable synchronization barrier for a fixed party count.
// The level-synchronous BFS uses two barriers per phase transition: one
// to finish the phase, one to publish the coordinator's decision
// (termination, queue swap) made between them.
//
// It is condition-variable based rather than spinning: the logical
// thread count of an experiment routinely exceeds the host's cores
// (e.g. 64 "threads" of a simulated EX on a laptop), where spinning
// would collapse.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait for the current
// generation. It reports true to exactly one caller per generation (the
// last arriver), which parties can use to elect a coordinator.
func (b *barrier) wait() bool {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}
