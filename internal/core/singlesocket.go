package core

import (
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// singleSocketWorker is the paper's Algorithm 2, the single-socket
// optimized tier. Two changes over Algorithm 1:
//
//  1. Visitation state moves from the parent array into a bitmap: the
//     random-access working set drops from 4 bytes to 1 bit per vertex
//     (32 M vertices fit in the 4 MB that fits an L3 slice), which the
//     paper's Fig. 2 shows is worth ~4x in probe rate.
//
//  2. The claim is double-checked: a plain bitmap read first, and only
//     if the bit looks clear the atomic read-and-set. In late levels
//     almost every neighbour is already visited, so almost no
//     lock-prefixed operations execute (paper Fig. 4). The bit may be
//     set by a racing thread between the probe and the atomic, which is
//     why the atomic's return value, not the probe, decides the winner.
//
// The parent slot is written only by the winner of the atomic, so the
// write itself needs no synchronization; the level barrier publishes it.
// Like every session tier it runs over the monotone queue: the current
// level is the window [head, limit), discoveries land past limit, and
// the queue's final contents are the reached list the next reset walks.
func (s *Searcher) singleSocketWorker(w int) {
	ws := &s.ws[w]
	wr := s.coll.Worker(w)
	o := &s.o
	g := s.g
	offs := g.Offsets()
	tgts := g.Targets()
	budget := s.edgeBudget
	hubs := s.hubs
	var myEdges, myReached int64
	local := ws.local[:0]
	probeHit := ws.probeHit
	checkpoints := 0
	limit := s.limit
	// claim runs the atomic half of the double-checked protocol.
	claim := func(v, u uint32, stats *LevelStats) {
		stats.AtomicOps++
		if !s.visited.TestAndSet(int(v)) {
			s.parents[v] = u
			myReached++
			local = append(local, v)
			if len(local) == cap(local) {
				s.q.PushBatch(local)
				local = local[:0]
			}
		}
	}
	for {
		var stats LevelStats
		tp := wr.PhaseStart()
		for {
			// Cancellation checkpoint; the flush below still runs, so
			// aborting cannot strand a claimed vertex outside the queue.
			if s.aborted(&checkpoints) {
				break
			}
			var chunk []uint32
			if budget > 0 {
				chunk = s.q.PopChunkEdges(o.ChunkSize, budget, limit, offs)
			} else {
				chunk = s.q.PopChunkBounded(o.ChunkSize, limit)
			}
			posted := false
			for _, u := range chunk {
				if hubs != nil && offs[u+1]-offs[u] > budget {
					hubs.post(u, offs[u], offs[u+1])
					stats.Frontier++
					posted = true
					continue
				}
				nbrs := g.Neighbors(graph.Vertex(u))
				stats.Frontier++
				stats.Edges += int64(len(nbrs))
				if o.ProbeBatch > 0 && !o.DisableDoubleCheck {
					// Software-pipelined probing: issue a block of
					// independent bitmap loads first, then run the
					// claim logic over the survivors. The probe loop
					// carries no load-dependent branches, so the
					// memory system overlaps the misses — the
					// paper's "multiple memory requests in flight"
					// applied to the probe stream.
					for base := 0; base < len(nbrs); base += o.ProbeBatch {
						end := base + o.ProbeBatch
						if end > len(nbrs) {
							end = len(nbrs)
						}
						block := nbrs[base:end]
						for i, v := range block {
							probeHit[i] = s.visited.Get(int(v))
						}
						stats.BitmapReads += int64(len(block))
						for i, v := range block {
							if !probeHit[i] {
								claim(v, u, &stats)
							}
						}
					}
					continue
				}
				for _, v := range nbrs {
					if !o.DisableDoubleCheck {
						stats.BitmapReads++
						if s.visited.Get(int(v)) {
							continue
						}
					}
					claim(v, u, &stats)
				}
			}
			if hubs != nil && (posted || chunk == nil) {
				// Drain the hub board with the double-checked claim.
				// Hub ranges skip the software-pipelined probe path:
				// they are already contiguous adjacency runs, so the
				// probe stream gets its locality from the range itself.
				did := false
				for {
					u, elo, ehi, ok := hubs.claim(budget)
					if !ok {
						break
					}
					did = true
					stats.Edges += ehi - elo
					for _, v := range tgts[elo:ehi] {
						if !o.DisableDoubleCheck {
							stats.BitmapReads++
							if s.visited.Get(int(v)) {
								continue
							}
						}
						claim(v, u, &stats)
					}
				}
				if chunk == nil && !did {
					break
				}
			} else if chunk == nil {
				break
			}
		}
		s.q.PushBatch(local)
		local = local[:0]
		wr.PhaseEnd(obs.PhaseLocalScan, tp)
		myEdges += stats.Edges
		s.stats.add(w, stats)

		tp = wr.PhaseStart()
		if s.bar.wait() {
			s.advanceShared()
		}
		wr.PhaseEnd(obs.PhaseBarrierWait, tp)
		if s.bar.wait() {
			s.stats.foldPhases(!s.done.Load())
		}
		wr.NextLevel()
		if s.done.Load() {
			ws.edges = myEdges
			ws.reached = myReached
			return
		}
		limit = s.limit
	}
}
