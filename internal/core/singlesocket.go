package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/affinity"
	"mcbfs/internal/bitmap"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
)

// singleSocketBFS is the paper's Algorithm 2, the single-socket
// optimized tier. Two changes over Algorithm 1:
//
//  1. Visitation state moves from the parent array into a bitmap: the
//     random-access working set drops from 4 bytes to 1 bit per vertex
//     (32 M vertices fit in the 4 MB that fits an L3 slice), which the
//     paper's Fig. 2 shows is worth ~4x in probe rate.
//
//  2. The claim is double-checked: a plain bitmap read first, and only
//     if the bit looks clear the atomic read-and-set. In late levels
//     almost every neighbour is already visited, so almost no
//     lock-prefixed operations execute (paper Fig. 4). The bit may be
//     set by a racing thread between the probe and the atomic, which is
//     why the atomic's return value, not the probe, decides the winner.
//
// The parent slot is written only by the winner of the atomic, so the
// write itself needs no synchronization; the level barrier publishes it.
func singleSocketBFS(g *graph.Graph, root graph.Vertex, o Options) (*Result, error) {
	n := g.NumVertices()
	parents := newParents(n)
	visited := bitmap.NewAtomic(n)
	cq := queue.NewChunkQueue(n)
	nq := queue.NewChunkQueue(n)

	workers := o.Threads
	bar := newBarrier(workers)
	var done atomic.Bool
	edgeCounts := make([]int64, workers)
	reachedCounts := make([]int64, workers)
	levels := 0
	var perLevel []LevelStats
	coll := newObsCollector(o, workers, 1, AlgSingleSocket)
	collector := newStatsCollector(o.Instrument, workers, coll)
	levelStart := time.Now()

	start := time.Now()
	parents[root] = uint32(root)
	visited.Set(int(root))
	cq.Push(uint32(root))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if o.PinThreads {
				if unpin, err := affinity.PinToCPU(w); err == nil {
					defer unpin()
				}
			}
			wr := coll.Worker(w)
			var myEdges, myReached int64
			local := make([]uint32, 0, o.LocalBatch)
			var probeHit []bool
			if o.ProbeBatch > 0 {
				probeHit = make([]bool, o.ProbeBatch)
			}
			// claim runs the atomic half of the double-checked protocol.
			claim := func(v, u uint32, stats *LevelStats) {
				stats.AtomicOps++
				if !visited.TestAndSet(int(v)) {
					parents[v] = u
					myReached++
					local = append(local, v)
					if len(local) == cap(local) {
						nq.PushBatch(local)
						local = local[:0]
					}
				}
			}
			for {
				var stats LevelStats
				tp := wr.PhaseStart()
				for {
					chunk := cq.PopChunk(o.ChunkSize)
					if chunk == nil {
						break
					}
					for _, u := range chunk {
						nbrs := g.Neighbors(graph.Vertex(u))
						stats.Frontier++
						stats.Edges += int64(len(nbrs))
						if o.ProbeBatch > 0 && !o.DisableDoubleCheck {
							// Software-pipelined probing: issue a block of
							// independent bitmap loads first, then run the
							// claim logic over the survivors. The probe loop
							// carries no load-dependent branches, so the
							// memory system overlaps the misses — the
							// paper's "multiple memory requests in flight"
							// applied to the probe stream.
							for base := 0; base < len(nbrs); base += o.ProbeBatch {
								end := base + o.ProbeBatch
								if end > len(nbrs) {
									end = len(nbrs)
								}
								block := nbrs[base:end]
								for i, v := range block {
									probeHit[i] = visited.Get(int(v))
								}
								stats.BitmapReads += int64(len(block))
								for i, v := range block {
									if !probeHit[i] {
										claim(v, u, &stats)
									}
								}
							}
							continue
						}
						for _, v := range nbrs {
							if !o.DisableDoubleCheck {
								stats.BitmapReads++
								if visited.Get(int(v)) {
									continue
								}
							}
							claim(v, u, &stats)
						}
					}
				}
				nq.PushBatch(local)
				local = local[:0]
				wr.PhaseEnd(obs.PhaseLocalScan, tp)
				myEdges += stats.Edges
				collector.add(w, stats)

				tp = wr.PhaseStart()
				if bar.wait() {
					collector.fold(&perLevel, time.Since(levelStart))
					levelStart = time.Now()
					cq.Reset()
					cq, nq = nq, cq
					levels++
					if cq.Size() == 0 || (o.MaxLevels > 0 && levels >= o.MaxLevels) {
						done.Store(true)
					}
				}
				wr.PhaseEnd(obs.PhaseBarrierWait, tp)
				if bar.wait() {
					collector.foldPhases(!done.Load())
				}
				wr.NextLevel()
				if done.Load() {
					edgeCounts[w] = myEdges
					reachedCounts[w] = myReached
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var edges, reached int64
	for w := 0; w < workers; w++ {
		edges += edgeCounts[w]
		reached += reachedCounts[w]
	}
	return &Result{
		Parents:        parents,
		Root:           root,
		Reached:        reached + 1,
		EdgesTraversed: edges,
		Levels:         levels,
		Duration:       time.Since(start),
		Algorithm:      AlgSingleSocket,
		Threads:        workers,
		PerLevel:       perLevel,
		Trace:          coll.Finish(),
	}, nil
}
