package core

import (
	"testing"
	"testing/quick"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/topology"
)

// TestQuickAllTiersMatchSequential is the randomized cross-check: for
// arbitrary small graphs and arbitrary (algorithm, threads, machine,
// batching) configurations, every tier must agree with the sequential
// reference on the reached set, edge count and level count, and must
// produce a valid BFS tree.
func TestQuickAllTiersMatchSequential(t *testing.T) {
	machines := []topology.Machine{
		topology.Generic(1, 2, 2),
		topology.NehalemEP,
		topology.NehalemEX,
	}
	algs := []Algorithm{AlgParallelSimple, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing}
	f := func(raw []uint16, rootRaw uint8, algRaw, thrRaw, machRaw, batchRaw uint8) bool {
		const n = 48
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				Src: graph.Vertex(raw[i] % n),
				Dst: graph.Vertex(raw[i+1] % n),
			})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return false
		}
		root := graph.Vertex(rootRaw % n)
		ref, err := BFS(g, root, Options{Algorithm: AlgSequential})
		if err != nil {
			return false
		}
		opt := Options{
			Algorithm: algs[int(algRaw)%len(algs)],
			Threads:   1 + int(thrRaw)%9,
			Machine:   machines[int(machRaw)%len(machines)],
			BatchSize: 1 + int(batchRaw)%100,
		}
		res, err := BFS(g, root, opt)
		if err != nil {
			return false
		}
		if res.Reached != ref.Reached || res.Levels != ref.Levels {
			return false
		}
		if opt.Algorithm != AlgDirectionOptimizing && res.EdgesTraversed != ref.EdgesTraversed {
			return false
		}
		return ValidateTree(g, root, res.Parents) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestStressRepeatedConcurrentRuns hammers the multi-socket tier with
// many consecutive runs at high logical thread counts to shake out
// level-synchronization bugs that need specific interleavings.
func TestStressRepeatedConcurrentRuns(t *testing.T) {
	g := must(gen.RMAT(12, 1<<15, gen.GTgraphDefaults, 31))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for i := 0; i < 30; i++ {
		res := run(t, g, 0, Options{
			Algorithm: AlgMultiSocket,
			Threads:   16,
			Machine:   topology.NehalemEX,
			BatchSize: 1 + i*7%128,
			ChunkSize: 1 + i*13%256,
		})
		if res.Reached != ref.Reached || res.EdgesTraversed != ref.EdgesTraversed {
			t.Fatalf("run %d: Reached=%d/%d Edges=%d/%d", i,
				res.Reached, ref.Reached, res.EdgesTraversed, ref.EdgesTraversed)
		}
	}
}

// TestStressHybridModeFlapping forces the hybrid to cross the
// top-down/bottom-up boundary repeatedly by searching a graph whose
// frontier oscillates: a chain of expander blobs.
func TestStressHybridModeFlapping(t *testing.T) {
	// Build blobs of 600 vertices connected by single bridge edges:
	// the frontier balloons inside a blob (bottom-up) and collapses to
	// one vertex at each bridge (top-down).
	const blobs = 5
	const blobSize = 600
	n := blobs * blobSize
	var edges []graph.Edge
	r := func(i int) graph.Vertex { return graph.Vertex(i) }
	for b := 0; b < blobs; b++ {
		base := b * blobSize
		// Hub-and-spoke plus ring inside the blob: depth 2, wide.
		for i := 1; i < blobSize; i++ {
			edges = append(edges, graph.Edge{Src: r(base), Dst: r(base + i)})
			edges = append(edges, graph.Edge{Src: r(base + i), Dst: r(base + (i+1)%blobSize)})
		}
		if b+1 < blobs {
			// Bridge from an arbitrary member to the next blob's hub.
			edges = append(edges, graph.Edge{Src: r(base + blobSize/2), Dst: r(base + blobSize)})
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for _, threads := range []int{2, 4, 8} {
		res := run(t, g, 0, Options{Algorithm: AlgDirectionOptimizing, Threads: threads})
		validate(t, g, res)
		if res.Reached != ref.Reached || res.Levels != ref.Levels {
			t.Errorf("threads=%d: Reached=%d/%d Levels=%d/%d", threads,
				res.Reached, ref.Reached, res.Levels, ref.Levels)
		}
	}
}

// TestRootsAcrossPartitionBoundaries runs the multi-socket tier from
// roots that land on each socket's partition, including the exact
// boundary vertices.
func TestRootsAcrossPartitionBoundaries(t *testing.T) {
	g := must(gen.Uniform(1000, 8, 17))
	part, err := topology.NewPartition(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	var roots []graph.Vertex
	for s := 0; s < 4; s++ {
		lo, hi := part.Range(s)
		if lo < hi {
			roots = append(roots, graph.Vertex(lo), graph.Vertex(hi-1))
		}
	}
	for _, root := range roots {
		ref := run(t, g, root, Options{Algorithm: AlgSequential})
		res := run(t, g, root, Options{
			Algorithm: AlgMultiSocket,
			Threads:   32,
			Machine:   topology.NehalemEX,
		})
		validate(t, g, res)
		if res.Reached != ref.Reached {
			t.Errorf("root %d: Reached=%d, want %d", root, res.Reached, ref.Reached)
		}
	}
}

// TestLargerIntegrationRun is the heavyweight end-to-end check: a
// quarter-million-vertex R-MAT graph through every tier.
func TestLargerIntegrationRun(t *testing.T) {
	if testing.Short() {
		t.Skip("large integration run")
	}
	g := must(gen.RMAT(18, 1<<21, gen.GTgraphDefaults, 99))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for _, alg := range []Algorithm{AlgParallelSimple, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing} {
		res := run(t, g, 0, Options{Algorithm: alg, Threads: 8, Machine: topology.NehalemEP})
		validate(t, g, res)
		if res.Reached != ref.Reached {
			t.Errorf("%v: Reached=%d, want %d", alg, res.Reached, ref.Reached)
		}
	}
}
