package core

import (
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// Direction-optimizing BFS: an extension beyond the paper (the idea was
// published by Beamer et al. two years later and became the Graph500
// standard), included here as the natural "future work" of the paper's
// design. On power-law graphs the middle BFS levels contain most of the
// graph; exploring them top-down scans almost every edge even though
// almost every target is already visited. The bottom-up pass inverts
// the roles: each *unvisited* vertex scans its in-neighbours for a
// frontier member and claims itself on the first hit — with two
// consequences the paper's cost model immediately appreciates:
//
//   - early exit: a vertex stops scanning at its first frontier parent,
//     skipping the bulk of its in-edges in the dense levels;
//   - no atomics at all: each vertex is examined by exactly one worker
//     (vertices are range-partitioned), so the claim is a plain write —
//     the logical conclusion of the paper's Fig. 3/4 war on
//     lock-prefixed operations.
//
// The switch heuristic follows Beamer's alpha/beta rule on frontier
// size. Because bottom-up scans in-edges with early exit, the
// EdgesTraversed of a hybrid run counts the edges actually examined,
// which is typically far below the m_a of a top-down run — that gap IS
// the optimization.

// The default alpha/beta thresholds: switch to bottom-up when the
// frontier exceeds n/alpha vertices, back below n/beta. Tunable per
// session via Options.HybridAlpha / Options.HybridBeta.
const (
	defaultHybridAlpha = 14
	defaultHybridBeta  = 24
)

// hybridWorker runs the hybrid top-down/bottom-up search over the
// session's monotone queue: the current frontier is the window
// [prevLimit, limit), read by Window in bottom-up levels (which never
// pop) and popped by PopChunkBounded in top-down ones; the coordinator
// realigns the consume cursor at each level transition.
func (s *Searcher) hybridWorker(w int) {
	ws := &s.ws[w]
	wr := s.coll.Worker(w)
	o := &s.o
	g, gt := s.g, s.gt
	offs := g.Offsets()
	tgts := g.Targets()
	budget := s.edgeBudget
	hubs := s.hubs
	workers := s.workers
	var myEdges, myReached int64
	local := ws.local[:0]
	flush := func() {
		s.q.PushBatch(local)
		local = local[:0]
	}

	// Range partition for the bottom-up pass: worker w owns
	// [myLo, myHi), so each unvisited vertex is examined by exactly
	// one worker and claims itself with plain writes. Boundaries stay
	// aligned to 64-vertex words so a worker's visited/parent updates
	// never share a cache word's vertices with a neighbour's range.
	// With edge budgeting the boundaries come from an edge-prefix-sum
	// partition of the transpose (s.buPart), giving each worker ~equal
	// in-edge mass instead of ~equal vertex count; without it the
	// legacy uniform vertex split applies.
	var myLo, myHi int
	if s.buPart != nil {
		myLo, myHi = s.buPart[w], s.buPart[w+1]
	} else {
		words := (s.n + 63) / 64
		myLo = words * w / workers * 64
		myHi = words * (w + 1) / workers * 64
		if myHi > s.n {
			myHi = s.n
		}
	}

	prev, limit := s.prevLimit, s.limit
	checkpoints := 0
	for {
		var stats LevelStats
		if s.bottomUp.Load() {
			// Build the frontier bitmap from an index partition of the
			// current window: worker w sets the bits of its chunk,
			// O(frontier/P) rather than every worker filter-scanning
			// the whole frontier (O(frontier*P) total). Chunks hold
			// arbitrary vertices, so bits are set with the atomic
			// bitmap's word-OR.
			tp := wr.PhaseStart()
			frontierVerts := s.q.Window(prev, limit)
			flo := len(frontierVerts) * w / workers
			fhi := len(frontierVerts) * (w + 1) / workers
			for _, v := range frontierVerts[flo:fhi] {
				s.frontier.Set(int(v))
			}
			wr.PhaseEnd(obs.PhaseFrontierBuild, tp)
			tp = wr.PhaseStart()
			s.bar.wait()
			wr.PhaseEnd(obs.PhaseBarrierWait, tp)

			// Bottom-up sweep over this worker's unvisited range. The
			// cancellation checkpoint sits off the per-vertex path (the
			// sweep's selling point is no atomics); an abort skips the
			// rest of the range but still runs the flush, barrier and
			// frontier-clear passes below, so no stale frontier bit or
			// unqueued claim survives into the next search.
			tp = wr.PhaseStart()
			for v := myLo; v < myHi; v++ {
				if v&4095 == 0 && s.aborted(&checkpoints) {
					break
				}
				if s.visited.Get(v) {
					continue
				}
				stats.BitmapReads++
				for _, u := range gt.Neighbors(graph.Vertex(v)) {
					stats.Edges++
					if s.frontier.Get(int(u)) {
						// Sole owner of v: plain writes suffice.
						s.visited.Set(v)
						s.parents[v] = uint32(u)
						myReached++
						local = append(local, uint32(v))
						if len(local) == cap(local) {
							flush()
						}
						break
					}
				}
			}
			flush()
			wr.PhaseEnd(obs.PhaseBottomUpScan, tp)

			// Everyone must finish sweeping before anyone clears: a
			// cleared bit would hide a frontier parent from a worker
			// still scanning, deferring the discovery one level and
			// corrupting BFS depths.
			tp = wr.PhaseStart()
			s.bar.wait()
			wr.PhaseEnd(obs.PhaseBarrierWait, tp)

			// Clear this chunk's frontier bits for the next level —
			// the same index partition and atomic word ops as the
			// build pass.
			tp = wr.PhaseStart()
			for _, v := range frontierVerts[flo:fhi] {
				s.frontier.Clear(int(v))
			}
			wr.PhaseEnd(obs.PhaseFrontierBuild, tp)
		} else {
			// Top-down: identical to the single-socket algorithm,
			// including its per-chunk cancellation checkpoint and the
			// degree-aware claim/split/drain protocol.
			tp := wr.PhaseStart()
			for {
				if s.aborted(&checkpoints) {
					break
				}
				var chunk []uint32
				if budget > 0 {
					chunk = s.q.PopChunkEdges(o.ChunkSize, budget, limit, offs)
				} else {
					chunk = s.q.PopChunkBounded(o.ChunkSize, limit)
				}
				posted := false
				for _, u := range chunk {
					if hubs != nil && offs[u+1]-offs[u] > budget {
						hubs.post(u, offs[u], offs[u+1])
						stats.Frontier++
						posted = true
						continue
					}
					nbrs := g.Neighbors(graph.Vertex(u))
					stats.Frontier++
					stats.Edges += int64(len(nbrs))
					for _, v := range nbrs {
						if !o.DisableDoubleCheck {
							stats.BitmapReads++
							if s.visited.Get(int(v)) {
								continue
							}
						}
						stats.AtomicOps++
						if !s.visited.TestAndSet(int(v)) {
							s.parents[v] = u
							myReached++
							local = append(local, v)
							if len(local) == cap(local) {
								flush()
							}
						}
					}
				}
				if hubs != nil && (posted || chunk == nil) {
					// Drain the hub board: expand budget-sized edge
					// ranges of posted hubs with the same double-checked
					// claim as above.
					did := false
					for {
						u, elo, ehi, ok := hubs.claim(budget)
						if !ok {
							break
						}
						did = true
						stats.Edges += ehi - elo
						for _, v := range tgts[elo:ehi] {
							if !o.DisableDoubleCheck {
								stats.BitmapReads++
								if s.visited.Get(int(v)) {
									continue
								}
							}
							stats.AtomicOps++
							if !s.visited.TestAndSet(int(v)) {
								s.parents[v] = u
								myReached++
								local = append(local, v)
								if len(local) == cap(local) {
									flush()
								}
							}
						}
					}
					if chunk == nil && !did {
						break
					}
				} else if chunk == nil {
					break
				}
			}
			flush()
			wr.PhaseEnd(obs.PhaseLocalScan, tp)
		}
		myEdges += stats.Edges
		s.stats.add(w, stats)

		tp := wr.PhaseStart()
		if s.bar.wait() {
			s.advanceHybrid()
		}
		wr.PhaseEnd(obs.PhaseBarrierWait, tp)
		if s.bar.wait() {
			s.stats.foldPhases(!s.done.Load())
		}
		wr.NextLevel()
		if s.done.Load() {
			ws.edges = myEdges
			ws.reached = myReached
			return
		}
		prev, limit = s.prevLimit, s.limit
	}
}

// advanceHybrid is the direction-optimizing level transition, run by
// the coordinator elected at the closing barrier: credit the frontier
// (bottom-up levels expand without popping, so worker counters miss
// it), realign the consume cursor, advance the window, and apply the
// alpha/beta direction switch.
func (s *Searcher) advanceHybrid() {
	s.checkCancelAtBarrier() // only ever sets done; bookkeeping proceeds
	if s.hubs != nil {
		s.hubs.reset()
	}
	if s.bottomUp.Load() {
		// In bottom-up mode the frontier counter reflects the vertices
		// expanded, which is the current window.
		s.stats.creditFrontier(s.limit - s.prevLimit)
	}
	s.stats.fold(&s.perLevel, time.Since(s.levelStart))
	s.levelStart = time.Now()
	// Bottom-up levels read the window without popping, leaving the
	// consume cursor behind; realign it so the next top-down level pops
	// only the new window.
	s.q.SkipTo(s.limit)
	old := s.limit
	s.limit = int64(s.q.Size())
	s.prevLimit = old
	s.levels++
	f := s.limit - old
	switch {
	case f == 0 || (s.maxLevels > 0 && s.levels >= s.maxLevels):
		s.done.Store(true)
	case s.bottomUp.Load():
		if f < int64(s.n/s.o.HybridBeta) {
			s.bottomUp.Store(false)
		}
	default:
		if f > int64(s.n/s.o.HybridAlpha) {
			s.bottomUp.Store(true)
		}
	}
}
