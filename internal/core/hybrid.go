package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/affinity"
	"mcbfs/internal/bitmap"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
)

// Direction-optimizing BFS: an extension beyond the paper (the idea was
// published by Beamer et al. two years later and became the Graph500
// standard), included here as the natural "future work" of the paper's
// design. On power-law graphs the middle BFS levels contain most of the
// graph; exploring them top-down scans almost every edge even though
// almost every target is already visited. The bottom-up pass inverts
// the roles: each *unvisited* vertex scans its in-neighbours for a
// frontier member and claims itself on the first hit — with two
// consequences the paper's cost model immediately appreciates:
//
//   - early exit: a vertex stops scanning at its first frontier parent,
//     skipping the bulk of its in-edges in the dense levels;
//   - no atomics at all: each vertex is examined by exactly one worker
//     (vertices are range-partitioned), so the claim is a plain write —
//     the logical conclusion of the paper's Fig. 3/4 war on
//     lock-prefixed operations.
//
// The switch heuristic follows Beamer's alpha/beta rule on frontier
// size. Because bottom-up scans in-edges with early exit, the
// EdgesTraversed of a hybrid run counts the edges actually examined,
// which is typically far below the m_a of a top-down run — that gap IS
// the optimization.

// hybridAlpha switches to bottom-up when the frontier exceeds
// n/hybridAlpha vertices; hybridBeta switches back below n/hybridBeta.
const (
	hybridAlpha = 14
	hybridBeta  = 24
)

// directionOptBFS runs the hybrid top-down/bottom-up search. gt must be
// the transpose of g (or g itself for symmetric graphs).
func directionOptBFS(g, gt *graph.Graph, root graph.Vertex, o Options) (*Result, error) {
	n := g.NumVertices()
	parents := newParents(n)
	visited := bitmap.NewAtomic(n)
	// The frontier bitmap is built and cleared by index-partitioning the
	// CQ slice across workers — O(frontier/P) per worker — so two
	// workers can touch the same word; the atomic bitmap's word-OR
	// Set/Clear make that safe.
	frontier := bitmap.NewAtomic(n)
	cq := queue.NewChunkQueue(n)
	nq := queue.NewChunkQueue(n)

	workers := o.Threads
	bar := newBarrier(workers)
	var done atomic.Bool
	var bottomUp atomic.Bool
	edgeCounts := make([]int64, workers)
	reachedCounts := make([]int64, workers)
	levels := 0
	var perLevel []LevelStats
	coll := newObsCollector(o, workers, 1, AlgDirectionOptimizing)
	collector := newStatsCollector(o.Instrument, workers, coll)
	levelStart := time.Now()

	start := time.Now()
	parents[root] = uint32(root)
	visited.Set(int(root))
	cq.Push(uint32(root))

	// Range partition for the bottom-up pass: worker w owns
	// [lo(w), hi(w)), so each unvisited vertex is examined by exactly
	// one worker and claims itself with plain writes. Boundaries stay
	// aligned to 64-vertex words so a worker's visited/parent updates
	// never share a cache word's vertices with a neighbour's range.
	words := (n + 63) / 64
	lo := func(w int) int { return words * w / workers * 64 }
	hi := func(w int) int {
		h := words * (w + 1) / workers * 64
		if h > n {
			h = n
		}
		return h
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if o.PinThreads {
				if unpin, err := affinity.PinToCPU(w); err == nil {
					defer unpin()
				}
			}
			wr := coll.Worker(w)
			var myEdges, myReached int64
			local := make([]uint32, 0, o.LocalBatch)
			flush := func() {
				nq.PushBatch(local)
				local = local[:0]
			}
			for {
				var stats LevelStats
				if bottomUp.Load() {
					// Build the frontier bitmap from an index partition of
					// the shared CQ: worker w sets the bits of its slice
					// chunk, O(frontier/P) rather than every worker
					// filter-scanning the whole frontier (O(frontier*P)
					// total). Chunks hold arbitrary vertices, so bits are
					// set with the atomic bitmap's word-OR.
					tp := wr.PhaseStart()
					frontierVerts := cq.Slice()
					flo := len(frontierVerts) * w / workers
					fhi := len(frontierVerts) * (w + 1) / workers
					myLo, myHi := lo(w), hi(w)
					for _, v := range frontierVerts[flo:fhi] {
						frontier.Set(int(v))
					}
					wr.PhaseEnd(obs.PhaseFrontierBuild, tp)
					tp = wr.PhaseStart()
					bar.wait()
					wr.PhaseEnd(obs.PhaseBarrierWait, tp)

					// Bottom-up sweep over this worker's unvisited range.
					tp = wr.PhaseStart()
					for v := myLo; v < myHi; v++ {
						if visited.Get(v) {
							continue
						}
						stats.BitmapReads++
						for _, u := range gt.Neighbors(graph.Vertex(v)) {
							stats.Edges++
							if frontier.Get(int(u)) {
								// Sole owner of v: plain writes suffice.
								visited.Set(v)
								parents[v] = uint32(u)
								myReached++
								local = append(local, uint32(v))
								if len(local) == cap(local) {
									flush()
								}
								break
							}
						}
					}
					flush()
					wr.PhaseEnd(obs.PhaseBottomUpScan, tp)

					// Everyone must finish sweeping before anyone clears:
					// a cleared bit would hide a frontier parent from a
					// worker still scanning, deferring the discovery one
					// level and corrupting BFS depths.
					tp = wr.PhaseStart()
					bar.wait()
					wr.PhaseEnd(obs.PhaseBarrierWait, tp)

					// Clear this chunk's frontier bits for the next level —
					// the same index partition and atomic word ops as the
					// build pass.
					tp = wr.PhaseStart()
					for _, v := range frontierVerts[flo:fhi] {
						frontier.Clear(int(v))
					}
					wr.PhaseEnd(obs.PhaseFrontierBuild, tp)
				} else {
					// Top-down: identical to the single-socket algorithm.
					tp := wr.PhaseStart()
					for {
						chunk := cq.PopChunk(o.ChunkSize)
						if chunk == nil {
							break
						}
						for _, u := range chunk {
							nbrs := g.Neighbors(graph.Vertex(u))
							stats.Frontier++
							stats.Edges += int64(len(nbrs))
							for _, v := range nbrs {
								if !o.DisableDoubleCheck {
									stats.BitmapReads++
									if visited.Get(int(v)) {
										continue
									}
								}
								stats.AtomicOps++
								if !visited.TestAndSet(int(v)) {
									parents[v] = u
									myReached++
									local = append(local, v)
									if len(local) == cap(local) {
										flush()
									}
								}
							}
						}
					}
					flush()
					wr.PhaseEnd(obs.PhaseLocalScan, tp)
				}
				if bottomUp.Load() {
					// In bottom-up mode the frontier counter reflects the
					// vertices expanded, which is the previous level's CQ.
					stats.Frontier = 0 // folded by the coordinator below
				}
				myEdges += stats.Edges
				collector.add(w, stats)

				tp := wr.PhaseStart()
				if bar.wait() {
					if bottomUp.Load() && collector.active() {
						// Attribute the frontier size to the level.
						collector.slots[0].Frontier += int64(cq.Size())
					}
					collector.fold(&perLevel, time.Since(levelStart))
					levelStart = time.Now()
					cq.Reset()
					cq, nq = nq, cq
					levels++
					f := cq.Size()
					if f == 0 || (o.MaxLevels > 0 && levels >= o.MaxLevels) {
						done.Store(true)
					} else if bottomUp.Load() {
						if f < n/hybridBeta {
							bottomUp.Store(false)
						}
					} else {
						if f > n/hybridAlpha {
							bottomUp.Store(true)
						}
					}
				}
				wr.PhaseEnd(obs.PhaseBarrierWait, tp)
				if bar.wait() {
					collector.foldPhases(!done.Load())
				}
				wr.NextLevel()
				if done.Load() {
					edgeCounts[w] = myEdges
					reachedCounts[w] = myReached
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var edges, reached int64
	for w := 0; w < workers; w++ {
		edges += edgeCounts[w]
		reached += reachedCounts[w]
	}
	return &Result{
		Parents:        parents,
		Root:           root,
		Reached:        reached + 1,
		EdgesTraversed: edges,
		Levels:         levels,
		Duration:       time.Since(start),
		Algorithm:      AlgDirectionOptimizing,
		Threads:        workers,
		PerLevel:       perLevel,
		Trace:          coll.Finish(),
	}, nil
}
