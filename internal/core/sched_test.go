package core

import (
	"fmt"
	"testing"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/topology"
)

// schedTiers are the parallel tiers affected by edge-budgeted
// scheduling, each with the machine shape it needs.
func schedTiers() []struct {
	name    string
	alg     Algorithm
	machine topology.Machine
} {
	return []struct {
		name    string
		alg     Algorithm
		machine topology.Machine
	}{
		{"simple", AlgParallelSimple, topology.Machine{}},
		{"singlesocket", AlgSingleSocket, topology.Machine{}},
		{"multisocket", AlgMultiSocket, topology.Generic(2, 4, 1)},
		{"hybrid", AlgDirectionOptimizing, topology.Machine{}},
	}
}

// schedBudgets span the interesting regimes: a tiny budget that turns
// every chunk into a handful of edges and every moderate-degree vertex
// into a hub, the auto default, a budget so large it never splits, and
// the explicit off switch (legacy vertex-count chunking).
func schedBudgets(short bool) []struct {
	name   string
	budget int64
} {
	all := []struct {
		name   string
		budget int64
	}{
		{"tiny", 4},
		{"auto", 0},
		{"huge", 1 << 40},
		{"off", EdgeBudgetOff},
	}
	if short {
		return all[:2] // tiny stresses hubs hardest; auto is the shipping path
	}
	return all
}

// TestSchedulingEquivalence is the load-balance property test: for
// every tier × worker count × budget regime, the BFS tree must be one
// ValidateTree accepts and the per-vertex depths must be byte-equal to
// the sequential reference — chunk shape and hub splitting may change
// which parent wins a race, but never which level a vertex lands in.
func TestSchedulingEquivalence(t *testing.T) {
	workerCounts := []int{1, 2, 3, 4, 7, 13, 16}
	if testing.Short() {
		workerCounts = []int{1, 3, 16}
	}
	for _, f := range hybridFamilies(t) {
		ref := run(t, f.g, f.root, Options{Algorithm: AlgSequential})
		refDepths := TreeDepths(ref.Parents, f.root)
		for _, tier := range schedTiers() {
			for _, b := range schedBudgets(testing.Short()) {
				for _, workers := range workerCounts {
					name := fmt.Sprintf("%s/%s/%s/w%d", f.name, tier.name, b.name, workers)
					res := run(t, f.g, f.root, Options{
						Algorithm:  tier.alg,
						Threads:    workers,
						Machine:    tier.machine,
						EdgeBudget: b.budget,
					})
					validate(t, f.g, res)
					if res.Reached != ref.Reached {
						t.Fatalf("%s: Reached = %d, want %d", name, res.Reached, ref.Reached)
					}
					if res.Levels != ref.Levels {
						t.Fatalf("%s: Levels = %d, want %d", name, res.Levels, ref.Levels)
					}
					depths := TreeDepths(res.Parents, f.root)
					for v := range depths {
						if depths[v] != refDepths[v] {
							t.Fatalf("%s: vertex %d at depth %d, want %d",
								name, v, depths[v], refDepths[v])
						}
					}
				}
			}
		}
	}
}

// TestSchedulingWarmSession drives one Searcher through several roots
// per tier with a tiny budget, so hub-board and sub-cursor state must
// reset correctly between searches for later answers to stay right.
func TestSchedulingWarmSession(t *testing.T) {
	g := must(gen.RMAT(11, 1<<14, gen.GTgraphDefaults, 33))
	roots := []graph.Vertex{0, 7, 123, 0, 999}
	refs := make([]*Result, len(roots))
	for i, r := range roots {
		refs[i] = run(t, g, r, Options{Algorithm: AlgSequential})
	}
	for _, tier := range schedTiers() {
		s, err := NewSearcher(g, Options{
			Algorithm:  tier.alg,
			Threads:    4,
			Machine:    tier.machine,
			EdgeBudget: 4,
		})
		if err != nil {
			t.Fatalf("%s: NewSearcher: %v", tier.name, err)
		}
		for i, r := range roots {
			res, err := s.Search(r, Query{})
			if err != nil {
				t.Fatalf("%s: search %d: %v", tier.name, i, err)
			}
			validate(t, g, res)
			if res.Reached != refs[i].Reached {
				t.Errorf("%s: root %d search %d: Reached = %d, want %d",
					tier.name, r, i, res.Reached, refs[i].Reached)
			}
			if res.Levels != refs[i].Levels {
				t.Errorf("%s: root %d search %d: Levels = %d, want %d",
					tier.name, r, i, res.Levels, refs[i].Levels)
			}
		}
		s.Close()
	}
}

// TestMultiSocketStealingObserved pins down that the steal path is
// actually exercised (not just compiled): on a hub-heavy graph with an
// intentionally lopsided partition pressure, at least one steal should
// show up in the instrumented counters across a few searches.
func TestMultiSocketStealingObserved(t *testing.T) {
	g := must(gen.RMAT(12, 1<<15, gen.GTgraphDefaults, 44))
	s, err := NewSearcher(g, Options{
		Algorithm:  AlgMultiSocket,
		Threads:    8,
		Machine:    topology.Generic(2, 4, 1),
		EdgeBudget: 8,
		Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var steals int64
	for _, root := range []graph.Vertex{0, 1, 2, 3, 17} {
		res, err := s.Search(root, Query{})
		if err != nil {
			t.Fatal(err)
		}
		validate(t, g, res)
		for _, lv := range res.PerLevel {
			steals += lv.Steals
		}
	}
	// Stealing is opportunistic — a worker only steals after draining
	// its own socket — so any single level may see none; across five
	// skewed searches with a near-minimal budget, zero total steals
	// means the path is dead.
	if steals == 0 {
		t.Error("no steals observed across 5 skewed searches with budget=8")
	}
}

// TestSchedulingImbalanceReported checks the observability contract:
// instrumented parallel searches must report MaxWorkerEdges consistent
// with the level totals (straggler share of at most the whole level,
// at least the mean).
func TestSchedulingImbalanceReported(t *testing.T) {
	g := must(gen.Uniform(4000, 8, 55))
	for _, tier := range schedTiers() {
		res := run(t, g, 0, Options{
			Algorithm:  tier.alg,
			Threads:    4,
			Machine:    tier.machine,
			Instrument: true,
		})
		validate(t, g, res)
		sawWork := false
		for i, lv := range res.PerLevel {
			if lv.Edges == 0 {
				continue
			}
			sawWork = true
			if lv.MaxWorkerEdges <= 0 || lv.MaxWorkerEdges > lv.Edges {
				t.Errorf("%s level %d: MaxWorkerEdges = %d outside (0, %d]",
					tier.name, i, lv.MaxWorkerEdges, lv.Edges)
			}
		}
		if !sawWork {
			t.Errorf("%s: no level reported edges", tier.name)
		}
	}
}
