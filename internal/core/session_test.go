package core

import (
	"sync"
	"testing"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/topology"
)

// sessionVariants covers every tier, including the hybrid (which needs
// a transpose; the generators used here produce symmetric graphs, so
// the graph passes as its own transpose at the call sites below).
var sessionVariants = []struct {
	name string
	opt  func(g *graph.Graph) Options
}{
	{"sequential", func(*graph.Graph) Options { return Options{Algorithm: AlgSequential, Threads: 1} }},
	{"parallel-simple", func(*graph.Graph) Options { return Options{Algorithm: AlgParallelSimple, Threads: 4} }},
	{"single-socket", func(*graph.Graph) Options { return Options{Algorithm: AlgSingleSocket, Threads: 4} }},
	{"multi-socket", func(*graph.Graph) Options {
		return Options{Algorithm: AlgMultiSocket, Threads: 4, Machine: topology.Generic(2, 2, 1)}
	}},
	{"hybrid", func(g *graph.Graph) Options {
		return Options{Algorithm: AlgDirectionOptimizing, Threads: 4, Transpose: g}
	}},
}

// expectSameTree compares a session search against a fresh sequential
// one-shot: identical depth per vertex (parent choice may differ under
// parallelism), identical reach, and a valid tree. EdgesTraversed is
// compared only when told to — the hybrid's early-exit bottom-up scans
// examine a nondeterministic edge subset.
func expectSameTree(t *testing.T, g *graph.Graph, res *Result, compareEdges bool) {
	t.Helper()
	validate(t, g, res)
	ref := run(t, g, res.Root, Options{Algorithm: AlgSequential, Threads: 1})
	if res.Reached != ref.Reached {
		t.Errorf("root %d: reached %d, fresh BFS reached %d", res.Root, res.Reached, ref.Reached)
	}
	if res.Levels != ref.Levels {
		t.Errorf("root %d: %d levels, fresh BFS %d", res.Root, res.Levels, ref.Levels)
	}
	if compareEdges && res.EdgesTraversed != ref.EdgesTraversed {
		t.Errorf("root %d: traversed %d edges, fresh BFS %d", res.Root, res.EdgesTraversed, ref.EdgesTraversed)
	}
	want := TreeDepths(ref.Parents, ref.Root)
	got := TreeDepths(res.Parents, res.Root)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("root %d: vertex %d at depth %d, fresh BFS says %d", res.Root, v, got[v], want[v])
		}
	}
}

// TestSearcherReuseAcrossRoots runs many searches from different roots
// on one session per tier and checks each against a fresh one-shot BFS.
func TestSearcherReuseAcrossRoots(t *testing.T) {
	g := must(gen.RMAT(10, 8192, gen.GTgraphDefaults, 7)).Undirected()
	roots := []graph.Vertex{0, 17, 1023, 512, 17, 3}
	for _, v := range sessionVariants {
		t.Run(v.name, func(t *testing.T) {
			s, err := NewSearcher(g, v.opt(g))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for _, root := range roots {
				res, err := s.BFS(root)
				if err != nil {
					t.Fatalf("root %d: %v", root, err)
				}
				expectSameTree(t, g, res, v.name != "hybrid")
			}
		})
	}
}

// TestSearcherQueryOverrides switches algorithm and depth bound per
// query on a single session: every tier answers on the same pooled
// state, and a bounded query must not leak its truncated frontier into
// the next unbounded one.
func TestSearcherQueryOverrides(t *testing.T) {
	g := must(gen.Uniform(3000, 8, 11)).Undirected()
	s, err := NewSearcher(g, Options{Threads: 4, Transpose: g, MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	algs := []Algorithm{
		AlgSequential, AlgMultiSocket, AlgSingleSocket,
		AlgDirectionOptimizing, AlgParallelSimple, AlgAuto,
	}
	for _, alg := range algs {
		// Session default MaxLevels=2 applies when the query is silent.
		res, err := s.Search(5, Query{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v bounded: %v", alg, err)
		}
		if res.Levels > 2 {
			t.Fatalf("%v: session MaxLevels=2 ignored, got %d levels", alg, res.Levels)
		}
		ref := run(t, g, 5, Options{Algorithm: AlgSequential, Threads: 1, MaxLevels: 2})
		if res.Reached != ref.Reached {
			t.Fatalf("%v bounded: reached %d, want %d", alg, res.Reached, ref.Reached)
		}

		// A negative query MaxLevels lifts the session bound.
		res, err = s.Search(5, Query{Algorithm: alg, MaxLevels: -1})
		if err != nil {
			t.Fatalf("%v unbounded: %v", alg, err)
		}
		expectSameTree(t, g, res, false)
	}
}

// TestSearcherResetCompleteness is the reset property test: after a
// search that touches the giant component, a search from a tiny
// component must see pristine state — exactly its own vertices claimed,
// every other parent back to NoParent. A stale visited bit or parent
// entry from the previous search shows up directly here.
func TestSearcherResetCompleteness(t *testing.T) {
	// Chain 0..999 (giant component) plus edge 1000-1001 (tiny
	// component) in one 1002-vertex graph.
	edges := make([]graph.Edge, 0, 1000)
	for i := 0; i < 999; i++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(i), Dst: graph.Vertex(i + 1)})
	}
	edges = append(edges, graph.Edge{Src: 1000, Dst: 1001})
	directed, err := graph.FromEdges(1002, edges)
	if err != nil {
		t.Fatal(err)
	}
	g := directed.Undirected()

	for _, v := range sessionVariants {
		t.Run(v.name, func(t *testing.T) {
			s, err := NewSearcher(g, v.opt(g))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Alternate giant / tiny a few times: the giant search takes
			// the O(touched)-walk or full-clear path depending on tier
			// and threshold, the tiny one always the walk.
			for round := 0; round < 3; round++ {
				if _, err := s.BFS(0); err != nil {
					t.Fatal(err)
				}
				res, err := s.BFS(1000)
				if err != nil {
					t.Fatal(err)
				}
				if res.Reached != 2 {
					t.Fatalf("round %d: tiny component reached %d vertices, want 2", round, res.Reached)
				}
				for v, p := range res.Parents {
					switch v {
					case 1000:
						if p != 1000 {
							t.Fatalf("round %d: root parent %d", round, p)
						}
					case 1001:
						if p != 1000 {
							t.Fatalf("round %d: vertex 1001 parent %d, want 1000", round, p)
						}
					default:
						if p != NoParent {
							t.Fatalf("round %d: stale parent %d for vertex %d after reset", round, p, v)
						}
					}
				}
			}
		})
	}
}

// TestConcurrentSearchers runs two independent sessions over one shared
// graph from different goroutines — sessions share the immutable CSR
// but nothing else, which the race detector checks.
func TestConcurrentSearchers(t *testing.T) {
	g := must(gen.Uniform(2000, 8, 13))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s, err := NewSearcher(g, Options{Algorithm: AlgSingleSocket, Threads: 3})
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for r := 0; r < 8; r++ {
				root := graph.Vertex((seed*911 + r*37) % g.NumVertices())
				res, err := s.BFS(root)
				if err != nil {
					t.Error(err)
					return
				}
				if err := ValidateTree(g, root, res.Parents); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestSearcherClose checks Close idempotence and the post-Close guard.
func TestSearcherClose(t *testing.T) {
	g := must(gen.Chain(10))
	s, err := NewSearcher(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BFS(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.BFS(0); err == nil {
		t.Error("Search on a closed Searcher succeeded")
	}
}

// TestSearcherRejectsBadInput mirrors the one-shot BFS input checks at
// the session layer.
func TestSearcherRejectsBadInput(t *testing.T) {
	if _, err := NewSearcher(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := must(gen.Chain(4))
	if _, err := NewSearcher(g, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	s, err := NewSearcher(g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.BFS(100); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := s.Search(0, Query{Algorithm: Algorithm(42)}); err == nil {
		t.Error("unknown per-query algorithm accepted")
	}
}
