package core

import (
	"testing"
	"time"
	"unsafe"

	"mcbfs/internal/obs"
)

func TestStatSlotPadding(t *testing.T) {
	if s := unsafe.Sizeof(statSlot{}); s%64 != 0 {
		t.Errorf("statSlot size %d is not a multiple of the cache line", s)
	}
}

func TestStatsCollectorFoldMultiWorker(t *testing.T) {
	var c statsCollector
	c.arm(true, nil, make([]statSlot, 3))
	c.add(0, LevelStats{Frontier: 1, Edges: 10, BitmapReads: 8, AtomicOps: 2, RemoteSends: 1})
	c.add(1, LevelStats{Frontier: 2, Edges: 20, BitmapReads: 16, AtomicOps: 4, RemoteSends: 2})
	c.add(2, LevelStats{Frontier: 4, Edges: 40, BitmapReads: 32, AtomicOps: 8, RemoteSends: 4})
	// A worker may deposit more than once per level (e.g. per chunk).
	c.add(1, LevelStats{Edges: 5})

	var dst []LevelStats
	c.fold(&dst, 7*time.Millisecond)
	if len(dst) != 1 {
		t.Fatalf("fold appended %d entries, want 1", len(dst))
	}
	got := dst[0]
	// Worker 2's 40 edges are the level's straggler share.
	want := LevelStats{Frontier: 7, Edges: 75, BitmapReads: 56, AtomicOps: 14, RemoteSends: 7,
		MaxWorkerEdges: 40, Duration: 7 * time.Millisecond}
	if got != want {
		t.Errorf("fold = %+v, want %+v", got, want)
	}
}

func TestStatsCollectorSlotsClearedBetweenLevels(t *testing.T) {
	var c statsCollector
	c.arm(true, nil, make([]statSlot, 2))
	c.add(0, LevelStats{Frontier: 5, Edges: 50})
	c.add(1, LevelStats{AtomicOps: 3})
	var dst []LevelStats
	c.fold(&dst, time.Millisecond)

	// Second level: only worker 1 deposits; worker 0's slot must have
	// been cleared by the first fold.
	c.add(1, LevelStats{Frontier: 1, Edges: 2, BitmapReads: 3})
	c.fold(&dst, 2*time.Millisecond)
	if len(dst) != 2 {
		t.Fatalf("fold appended %d entries, want 2", len(dst))
	}
	want := LevelStats{Frontier: 1, Edges: 2, BitmapReads: 3, MaxWorkerEdges: 2, Duration: 2 * time.Millisecond}
	if dst[1] != want {
		t.Errorf("level 1 fold = %+v, want %+v (stale slot data?)", dst[1], want)
	}
}

func TestStatsCollectorDisabledNoOp(t *testing.T) {
	var c statsCollector
	c.arm(false, nil, make([]statSlot, 4))
	if c.active() {
		t.Error("disabled collector reports active")
	}
	// add and fold must be cheap no-ops that never touch dst.
	c.add(0, LevelStats{Frontier: 100})
	c.foldPhases(true)
	var dst []LevelStats
	c.fold(&dst, time.Second)
	if dst != nil {
		t.Errorf("disabled fold appended %v", dst)
	}
}

func TestStatsCollectorTracerOnlyFeedsObs(t *testing.T) {
	// Instrument off, but an obs collector attached: counts must fold
	// into the obs layer without appearing in Result.PerLevel.
	var got []obs.LevelBreakdown
	rec := obs.NewCollector(obs.Config{Workers: 2, Tracer: obs.TracerFuncs{
		LevelEnd: func(level int, b obs.LevelBreakdown) { got = append(got, b) },
	}})
	var c statsCollector
	c.arm(false, rec, make([]statSlot, 2))
	if !c.active() {
		t.Fatal("collector with obs recorder should be active")
	}
	c.add(0, LevelStats{Frontier: 3, Edges: 30})
	c.add(1, LevelStats{Frontier: 1, Edges: 10, RemoteSends: 4})
	var dst []LevelStats
	c.fold(&dst, time.Millisecond)
	c.foldPhases(false)
	if dst != nil {
		t.Errorf("Instrument off but PerLevel appended: %v", dst)
	}
	if len(got) != 1 {
		t.Fatalf("obs saw %d level ends, want 1", len(got))
	}
	if got[0].Frontier != 4 || got[0].Edges != 40 || got[0].RemoteSends != 4 {
		t.Errorf("obs breakdown = %+v", got[0].Counters)
	}
	if got[0].Duration != time.Millisecond {
		t.Errorf("obs duration = %v", got[0].Duration)
	}
}
