package core

import (
	"testing"
	"time"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/topology"
)

// allAlgorithms lists the concrete tiers (not AlgAuto).
var allAlgorithms = []Algorithm{AlgSequential, AlgParallelSimple, AlgSingleSocket, AlgMultiSocket}

// run executes BFS and fails the test on error.
func run(t *testing.T, g *graph.Graph, root graph.Vertex, opt Options) *Result {
	t.Helper()
	res, err := BFS(g, root, opt)
	if err != nil {
		t.Fatalf("BFS(%v): %v", opt.Algorithm, err)
	}
	return res
}

// validate runs ValidateTree and fails on error.
func validate(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if err := ValidateTree(g, res.Root, res.Parents); err != nil {
		t.Fatalf("%v (threads=%d): %v", res.Algorithm, res.Threads, err)
	}
}

// must unwraps a generator result; generator failures in tests are
// programming errors, not test conditions.
func must(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestBFSRejectsBadInput(t *testing.T) {
	if _, err := BFS(nil, 0, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := must(gen.Chain(3))
	if _, err := BFS(g, 3, Options{}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := BFS(g, 0, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSequentialChain(t *testing.T) {
	g := must(gen.Chain(10))
	res := run(t, g, 0, Options{Algorithm: AlgSequential})
	validate(t, g, res)
	if res.Reached != 10 {
		t.Errorf("Reached = %d, want 10", res.Reached)
	}
	if res.Levels != 10 {
		t.Errorf("Levels = %d, want 10", res.Levels)
	}
	if res.EdgesTraversed != 9 {
		t.Errorf("EdgesTraversed = %d, want 9", res.EdgesTraversed)
	}
	for v := 1; v < 10; v++ {
		if res.Parents[v] != uint32(v-1) {
			t.Errorf("Parents[%d] = %d, want %d", v, res.Parents[v], v-1)
		}
	}
}

func TestSequentialUnreachable(t *testing.T) {
	// Chain explored from the middle: earlier vertices unreachable.
	g := must(gen.Chain(10))
	res := run(t, g, 5, Options{Algorithm: AlgSequential})
	validate(t, g, res)
	if res.Reached != 5 {
		t.Errorf("Reached = %d, want 5", res.Reached)
	}
	for v := 0; v < 5; v++ {
		if res.Parents[v] != NoParent {
			t.Errorf("Parents[%d] = %d, want NoParent", v, res.Parents[v])
		}
	}
}

func TestSequentialSingleVertex(t *testing.T) {
	g := must(graph.FromAdjacency([][]graph.Vertex{{}}))
	res := run(t, g, 0, Options{Algorithm: AlgSequential})
	validate(t, g, res)
	if res.Reached != 1 || res.Levels != 1 || res.EdgesTraversed != 0 {
		t.Errorf("got Reached=%d Levels=%d Edges=%d", res.Reached, res.Levels, res.EdgesTraversed)
	}
}

func TestSequentialSelfLoop(t *testing.T) {
	g := must(graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}}))
	res := run(t, g, 0, Options{Algorithm: AlgSequential})
	validate(t, g, res)
	if res.Reached != 2 {
		t.Errorf("Reached = %d, want 2", res.Reached)
	}
}

// TestAllAlgorithmsAgreeOnFamilies is the central cross-validation:
// every tier, at several thread counts, on every graph family, must
// produce a valid BFS tree reaching the same vertex set with the same
// m_a and level count as the sequential reference.
func TestAllAlgorithmsAgreeOnFamilies(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
		root graph.Vertex
	}{
		{"uniform", must(gen.Uniform(2000, 8, 1)), 0},
		{"rmat", must(gen.RMAT(11, 16384, gen.GTgraphDefaults, 2)), 1},
		{"grid", must(gen.Grid(40, 50, 4)), 0},
		{"ssca2", must(gen.SSCA2(1000, 8, 0.2, 3)), 5},
		{"chain", must(gen.Chain(500)), 0},
		{"star", must(gen.Star(500)), 0},
		{"tree", must(gen.BinaryTree(9)), 0},
		{"sparse-islands", must(gen.Uniform(3000, 1, 4)), 7},
	}
	machines := []topology.Machine{
		topology.Generic(1, 4, 2),
		topology.NehalemEP,
		topology.NehalemEX,
	}
	for _, f := range families {
		ref := run(t, f.g, f.root, Options{Algorithm: AlgSequential})
		validate(t, f.g, ref)
		for _, alg := range allAlgorithms[1:] {
			for _, threads := range []int{1, 2, 3, 8} {
				for _, m := range machines {
					res := run(t, f.g, f.root, Options{
						Algorithm: alg,
						Threads:   threads,
						Machine:   m,
					})
					validate(t, f.g, res)
					if res.Reached != ref.Reached {
						t.Errorf("%s/%v/t%d/%s: Reached = %d, want %d",
							f.name, alg, threads, m.Name, res.Reached, ref.Reached)
					}
					if res.EdgesTraversed != ref.EdgesTraversed {
						t.Errorf("%s/%v/t%d/%s: EdgesTraversed = %d, want %d",
							f.name, alg, threads, m.Name, res.EdgesTraversed, ref.EdgesTraversed)
					}
					if res.Levels != ref.Levels {
						t.Errorf("%s/%v/t%d/%s: Levels = %d, want %d",
							f.name, alg, threads, m.Name, res.Levels, ref.Levels)
					}
				}
			}
		}
	}
}

func TestMultiSocketManyThreads(t *testing.T) {
	// 64 logical threads on the EX topology, more threads than host
	// cores: exercises barrier scheduling and all 4 channel pairs.
	g := must(gen.Uniform(5000, 16, 9))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	res := run(t, g, 0, Options{
		Algorithm: AlgMultiSocket,
		Threads:   64,
		Machine:   topology.NehalemEX,
	})
	validate(t, g, res)
	if res.Reached != ref.Reached || res.EdgesTraversed != ref.EdgesTraversed {
		t.Errorf("EX-64: Reached=%d/%d Edges=%d/%d",
			res.Reached, ref.Reached, res.EdgesTraversed, ref.EdgesTraversed)
	}
}

func TestMoreThreadsThanVertices(t *testing.T) {
	g := must(gen.Chain(3))
	for _, alg := range []Algorithm{AlgParallelSimple, AlgSingleSocket, AlgMultiSocket} {
		res := run(t, g, 0, Options{Algorithm: alg, Threads: 16, Machine: topology.NehalemEP})
		validate(t, g, res)
		if res.Reached != 3 {
			t.Errorf("%v: Reached = %d, want 3", alg, res.Reached)
		}
	}
}

func TestDisableDoubleCheck(t *testing.T) {
	g := must(gen.Uniform(1000, 8, 5))
	for _, alg := range []Algorithm{AlgSingleSocket, AlgMultiSocket} {
		res := run(t, g, 0, Options{
			Algorithm:          alg,
			Threads:            4,
			Machine:            topology.NehalemEP,
			DisableDoubleCheck: true,
			Instrument:         true,
		})
		validate(t, g, res)
		// Without the double check every scanned neighbour costs an
		// atomic op and no plain probes happen.
		var atomics, probes, edges int64
		for _, ls := range res.PerLevel {
			atomics += ls.AtomicOps
			probes += ls.BitmapReads
			edges += ls.Edges
		}
		if probes != 0 {
			t.Errorf("%v: %d bitmap probes with double-check disabled", alg, probes)
		}
		if atomics != edges {
			t.Errorf("%v: atomics = %d, want one per scanned edge %d", alg, atomics, edges)
		}
	}
}

// TestDoubleCheckReducesAtomics verifies the mechanism behind the
// paper's Fig. 4: with the plain probe enabled, atomic operations are
// far fewer than bitmap reads in the later levels of a random graph.
func TestDoubleCheckReducesAtomics(t *testing.T) {
	g := must(gen.Uniform(20000, 8, 6))
	res := run(t, g, 0, Options{
		Algorithm:  AlgSingleSocket,
		Threads:    4,
		Instrument: true,
	})
	validate(t, g, res)
	if len(res.PerLevel) < 3 {
		t.Fatalf("graph too shallow for the test: %d levels", len(res.PerLevel))
	}
	late := res.PerLevel[len(res.PerLevel)-2]
	if late.AtomicOps*2 > late.BitmapReads && late.BitmapReads > 100 {
		t.Errorf("late level: %d atomics vs %d probes; double check not effective",
			late.AtomicOps, late.BitmapReads)
	}
	var totalAtomics int64
	for _, ls := range res.PerLevel {
		totalAtomics += ls.AtomicOps
	}
	// Each vertex is claimed at most once plus losing attempts; the
	// total must be far below one atomic per edge.
	if totalAtomics >= res.EdgesTraversed {
		t.Errorf("total atomics %d not below edges %d", totalAtomics, res.EdgesTraversed)
	}
}

func TestInstrumentationConsistency(t *testing.T) {
	g := must(gen.Uniform(3000, 8, 7))
	for _, alg := range allAlgorithms {
		res := run(t, g, 0, Options{
			Algorithm:  alg,
			Threads:    4,
			Machine:    topology.NehalemEP,
			Instrument: true,
		})
		if len(res.PerLevel) != res.Levels {
			t.Errorf("%v: %d PerLevel entries, %d levels", alg, len(res.PerLevel), res.Levels)
		}
		var frontier, edges int64
		for _, ls := range res.PerLevel {
			frontier += ls.Frontier
			edges += ls.Edges
		}
		if frontier != res.Reached {
			t.Errorf("%v: sum of frontiers %d != reached %d", alg, frontier, res.Reached)
		}
		if edges != res.EdgesTraversed {
			t.Errorf("%v: sum of level edges %d != EdgesTraversed %d", alg, edges, res.EdgesTraversed)
		}
	}
}

func TestInstrumentationDurations(t *testing.T) {
	g := must(gen.Uniform(20000, 8, 14))
	for _, alg := range []Algorithm{AlgSequential, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing} {
		res := run(t, g, 0, Options{Algorithm: alg, Threads: 4, Machine: topology.NehalemEP, Instrument: true})
		var sum int64
		nonZero := 0
		for _, ls := range res.PerLevel {
			if ls.Duration < 0 {
				t.Errorf("%v: negative level duration", alg)
			}
			if ls.Duration > 0 {
				nonZero++
			}
			sum += int64(ls.Duration)
		}
		if nonZero == 0 {
			t.Errorf("%v: no level recorded a positive duration", alg)
		}
		// Level durations must not wildly exceed the whole run.
		if sum > 3*int64(res.Duration)+int64(time.Millisecond) {
			t.Errorf("%v: level durations sum to %v, run took %v", alg, time.Duration(sum), res.Duration)
		}
	}
}

func TestNoInstrumentationByDefault(t *testing.T) {
	g := must(gen.Chain(10))
	res := run(t, g, 0, Options{Algorithm: AlgSingleSocket, Threads: 2})
	if res.PerLevel != nil {
		t.Error("PerLevel populated without Instrument")
	}
}

func TestAutoSelection(t *testing.T) {
	g := must(gen.Chain(10))
	cases := []struct {
		threads int
		machine topology.Machine
		want    Algorithm
	}{
		{1, topology.NehalemEP, AlgSequential},
		{4, topology.NehalemEP, AlgSingleSocket},
		{8, topology.NehalemEP, AlgMultiSocket},
		{16, topology.NehalemEX, AlgMultiSocket},
		{8, topology.NehalemEX, AlgSingleSocket},
	}
	for _, c := range cases {
		res := run(t, g, 0, Options{Threads: c.threads, Machine: c.machine})
		if res.Algorithm != c.want {
			t.Errorf("auto(threads=%d, %s) ran %v, want %v", c.threads, c.machine.Name, res.Algorithm, c.want)
		}
	}
}

func TestResultMetadata(t *testing.T) {
	g := must(gen.Uniform(500, 4, 8))
	res := run(t, g, 3, Options{Algorithm: AlgMultiSocket, Threads: 6, Machine: topology.NehalemEP})
	if res.Root != 3 {
		t.Errorf("Root = %d, want 3", res.Root)
	}
	if res.Threads != 6 {
		t.Errorf("Threads = %d, want 6", res.Threads)
	}
	if res.Algorithm != AlgMultiSocket {
		t.Errorf("Algorithm = %v", res.Algorithm)
	}
	if res.Duration <= 0 {
		t.Error("Duration not positive")
	}
	if res.EdgesPerSecond() <= 0 {
		t.Error("EdgesPerSecond not positive")
	}
}

func TestEdgesPerSecondZeroDuration(t *testing.T) {
	r := &Result{EdgesTraversed: 100}
	if r.EdgesPerSecond() != 0 {
		t.Error("zero duration should yield 0 rate")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range append([]Algorithm{AlgAuto}, allAlgorithms...) {
		if a.String() == "" {
			t.Errorf("empty String for %d", int(a))
		}
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Errorf("unknown algorithm String = %q", Algorithm(42).String())
	}
}

func TestMultiEdgesAndSelfLoopsAllTiers(t *testing.T) {
	// Generators emit multi-edges and self-loops; every tier must cope.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3}, {Src: 3, Dst: 3},
	}
	g := must(graph.FromEdges(4, edges))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for _, alg := range allAlgorithms[1:] {
		res := run(t, g, 0, Options{Algorithm: alg, Threads: 4, Machine: topology.NehalemEP})
		validate(t, g, res)
		if res.Reached != ref.Reached || res.EdgesTraversed != ref.EdgesTraversed {
			t.Errorf("%v: Reached=%d/%d Edges=%d/%d", alg, res.Reached, ref.Reached,
				res.EdgesTraversed, ref.EdgesTraversed)
		}
	}
}

func TestRepeatedRunsIndependent(t *testing.T) {
	// Two BFS runs on the same graph must not share state.
	g := must(gen.Uniform(1000, 8, 10))
	a := run(t, g, 0, Options{Algorithm: AlgMultiSocket, Threads: 8, Machine: topology.NehalemEP})
	b := run(t, g, 0, Options{Algorithm: AlgMultiSocket, Threads: 8, Machine: topology.NehalemEP})
	if a.Reached != b.Reached || a.EdgesTraversed != b.EdgesTraversed || a.Levels != b.Levels {
		t.Errorf("repeated runs differ: %+v vs %+v", a, b)
	}
	validate(t, g, b)
}

func TestValidateTreeCatchesCorruption(t *testing.T) {
	g := must(gen.Uniform(200, 6, 11))
	res := run(t, g, 0, Options{Algorithm: AlgSequential})

	// Corrupt: fake edge parent.
	bad := append([]uint32(nil), res.Parents...)
	for v := 1; v < len(bad); v++ {
		if bad[v] != NoParent && bad[v] != uint32(v) {
			// Point v at a vertex that (almost surely) has no edge to it.
			bad[v] = uint32(v) // self-parent on non-root
			if err := ValidateTree(g, 0, bad); err == nil {
				t.Error("self-parent on non-root not caught")
			}
			break
		}
	}

	// Corrupt: mark a reached vertex unreached.
	bad2 := append([]uint32(nil), res.Parents...)
	for v := 1; v < len(bad2); v++ {
		if bad2[v] != NoParent {
			bad2[v] = NoParent
			break
		}
	}
	if err := ValidateTree(g, 0, bad2); err == nil {
		t.Error("missing reached vertex not caught")
	}

	// Corrupt: wrong root parent.
	bad3 := append([]uint32(nil), res.Parents...)
	bad3[0] = 1
	if err := ValidateTree(g, 0, bad3); err == nil {
		t.Error("non-self root parent not caught")
	}

	// Wrong length.
	if err := ValidateTree(g, 0, res.Parents[:10]); err == nil {
		t.Error("short parents not caught")
	}
}

func TestValidateTreeCatchesNonBFSTree(t *testing.T) {
	// A valid spanning tree that is not breadth-first: in the diamond
	// 0->1, 0->2, 1->3, 2->3 plus 0->3, parent[3]=1 gives depth 2 but
	// dist is 1.
	g := must(graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 0, Dst: 3},
	}))
	parents := []uint32{0, 0, 0, 1}
	if err := ValidateTree(g, 0, parents); err == nil {
		t.Error("non-BFS spanning tree accepted")
	}
	// The BFS tree is accepted.
	parents[3] = 0
	if err := ValidateTree(g, 0, parents); err != nil {
		t.Errorf("true BFS tree rejected: %v", err)
	}
}

func TestTreeDepths(t *testing.T) {
	g := must(gen.BinaryTree(4))
	res := run(t, g, 0, Options{Algorithm: AlgSequential})
	depths := TreeDepths(res.Parents, 0)
	if depths[0] != 0 {
		t.Errorf("root depth = %d", depths[0])
	}
	if depths[1] != 1 || depths[2] != 1 {
		t.Errorf("level-1 depths = %d, %d", depths[1], depths[2])
	}
	last := len(depths) - 1
	if depths[last] != 4 {
		t.Errorf("leaf depth = %d, want 4", depths[last])
	}
}

func TestTreeDepthsUnreached(t *testing.T) {
	g := must(gen.Chain(6))
	res := run(t, g, 3, Options{Algorithm: AlgSequential})
	depths := TreeDepths(res.Parents, 3)
	for v := 0; v < 3; v++ {
		if depths[v] != NoDepth {
			t.Errorf("unreached vertex %d has depth %d", v, depths[v])
		}
	}
	if depths[5] != 2 {
		t.Errorf("depth[5] = %d, want 2", depths[5])
	}
}

func TestTreeDepthsEmpty(t *testing.T) {
	if d := TreeDepths(nil, 0); len(d) != 0 {
		t.Errorf("TreeDepths(nil) = %v", d)
	}
}

func TestBatchSizeVariants(t *testing.T) {
	// Tiny and large batch/chunk sizes must not change results.
	g := must(gen.RMAT(10, 8192, gen.GTgraphDefaults, 12))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for _, batch := range []int{1, 2, 7, 1024} {
		res := run(t, g, 0, Options{
			Algorithm: AlgMultiSocket,
			Threads:   8,
			Machine:   topology.NehalemEP,
			BatchSize: batch,
			ChunkSize: batch,
		})
		validate(t, g, res)
		if res.Reached != ref.Reached {
			t.Errorf("batch=%d: Reached=%d, want %d", batch, res.Reached, ref.Reached)
		}
	}
}

func TestRemoteSendsOnlyAcrossSockets(t *testing.T) {
	g := must(gen.Uniform(4000, 8, 13))
	// Single socket: no remote sends.
	res := run(t, g, 0, Options{
		Algorithm:  AlgMultiSocket,
		Threads:    4,
		Machine:    topology.Generic(1, 4, 1),
		Instrument: true,
	})
	var sends int64
	for _, ls := range res.PerLevel {
		sends += ls.RemoteSends
	}
	if sends != 0 {
		t.Errorf("single-socket multi-socket run sent %d remote tuples", sends)
	}
	// Two sockets: roughly half the edges lead to the other socket.
	res2 := run(t, g, 0, Options{
		Algorithm:  AlgMultiSocket,
		Threads:    8,
		Machine:    topology.NehalemEP,
		Instrument: true,
	})
	var sends2 int64
	for _, ls := range res2.PerLevel {
		sends2 += ls.RemoteSends
	}
	if sends2 == 0 {
		t.Error("two-socket run sent no remote tuples")
	}
	frac := float64(sends2) / float64(res2.EdgesTraversed)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("remote fraction = %.2f, want ~0.5 for a uniform graph over 2 sockets", frac)
	}
}

func TestProbeBatchMatchesDirect(t *testing.T) {
	g := must(gen.Uniform(10000, 12, 23))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for _, pb := range []int{1, 4, 16, 64} {
		res := run(t, g, 0, Options{
			Algorithm:  AlgSingleSocket,
			Threads:    4,
			ProbeBatch: pb,
			Instrument: true,
		})
		validate(t, g, res)
		if res.Reached != ref.Reached || res.EdgesTraversed != ref.EdgesTraversed {
			t.Errorf("probeBatch=%d: Reached=%d/%d Edges=%d/%d", pb,
				res.Reached, ref.Reached, res.EdgesTraversed, ref.EdgesTraversed)
		}
		// Every neighbour still gets exactly one probe.
		var probes, edges int64
		for _, ls := range res.PerLevel {
			probes += ls.BitmapReads
			edges += ls.Edges
		}
		if probes != edges {
			t.Errorf("probeBatch=%d: probes=%d, want one per edge %d", pb, probes, edges)
		}
	}
}

func TestProbeBatchIgnoredWithDoubleCheckDisabled(t *testing.T) {
	g := must(gen.Uniform(2000, 8, 24))
	res := run(t, g, 0, Options{
		Algorithm:          AlgSingleSocket,
		Threads:            2,
		ProbeBatch:         16,
		DisableDoubleCheck: true,
		Instrument:         true,
	})
	validate(t, g, res)
	var probes int64
	for _, ls := range res.PerLevel {
		probes += ls.BitmapReads
	}
	if probes != 0 {
		t.Errorf("probes = %d with double check disabled", probes)
	}
}

func TestPinThreadsOption(t *testing.T) {
	// Pinning is best-effort; correctness must be unaffected either way.
	g := must(gen.Uniform(3000, 8, 25))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential})
	for _, alg := range []Algorithm{AlgParallelSimple, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing} {
		res := run(t, g, 0, Options{
			Algorithm:  alg,
			Threads:    4,
			Machine:    topology.NehalemEP,
			PinThreads: true,
		})
		validate(t, g, res)
		if res.Reached != ref.Reached {
			t.Errorf("%v pinned: Reached = %d, want %d", alg, res.Reached, ref.Reached)
		}
	}
}
