package core

import (
	"sync/atomic"
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// simpleWorker is the paper's Algorithm 1: a level-synchronous BFS
// where visitation is claimed directly on the parent array with an
// atomic compare-and-swap (the paper's "the assignment in lines 10-12
// must be executed atomically").
//
// Its weaknesses are exactly what the later tiers fix: the random
// working set is the full 4-byte-per-vertex parent array, and every
// discovered neighbour costs a lock-prefixed instruction.
//
// Unlike the paper's two-queue formulation, all session tiers run over
// one monotone queue: workers pop the current level's window
// [head, limit) and append discoveries past it; the coordinator
// advances the window at the level barrier. The queue is never reset
// mid-search, so its final contents are the reached list the session's
// O(touched) reset walks.
func (s *Searcher) simpleWorker(w int) {
	ws := &s.ws[w]
	wr := s.coll.Worker(w)
	o := &s.o
	g := s.g
	offs := g.Offsets()
	tgts := g.Targets()
	budget := s.edgeBudget
	hubs := s.hubs
	// Run totals stay in worker-local variables until exit so the hot
	// loop never writes a cache line another worker's totals live on.
	var myEdges, myReached int64
	local := ws.local[:0]
	checkpoints := 0
	limit := s.limit
	for {
		var stats LevelStats
		tp := wr.PhaseStart()
		for {
			// Cancellation checkpoint: on abort stop expanding and fall
			// through to the flush and barriers below — every CAS-claimed
			// vertex is already in local or the queue, so the unwound
			// session's touched list stays complete.
			if s.aborted(&checkpoints) {
				break
			}
			var chunk []uint32
			if budget > 0 {
				chunk = s.q.PopChunkEdges(o.ChunkSize, budget, limit, offs)
			} else {
				chunk = s.q.PopChunkBounded(o.ChunkSize, limit)
			}
			posted := false
			for _, u := range chunk {
				if hubs != nil && offs[u+1]-offs[u] > budget {
					// Over-budget vertex: publish it for cooperative
					// edge-range expansion instead of scanning it alone.
					hubs.post(u, offs[u], offs[u+1])
					stats.Frontier++
					posted = true
					continue
				}
				nbrs := g.Neighbors(graph.Vertex(u))
				stats.Frontier++
				stats.Edges += int64(len(nbrs))
				for _, v := range nbrs {
					// Algorithm 1 claims the parent slot directly; the
					// load is part of the CAS loop, not a bitmap-style
					// cheap probe.
					stats.AtomicOps++
					if atomic.CompareAndSwapUint32(&s.parents[v], NoParent, u) {
						myReached++
						local = append(local, v)
						if len(local) == cap(local) {
							s.q.PushBatch(local)
							local = local[:0]
						}
					}
				}
			}
			if hubs != nil && (posted || chunk == nil) {
				// Drain the hub board — after posting (the poster
				// guarantee that makes unready-slot skips safe) and when
				// the queue window runs dry (so everyone helps finish
				// the level's hubs instead of idling at the barrier).
				did := false
				for {
					u, elo, ehi, ok := hubs.claim(budget)
					if !ok {
						break
					}
					did = true
					stats.Edges += ehi - elo
					for _, v := range tgts[elo:ehi] {
						stats.AtomicOps++
						if atomic.CompareAndSwapUint32(&s.parents[v], NoParent, u) {
							myReached++
							local = append(local, v)
							if len(local) == cap(local) {
								s.q.PushBatch(local)
								local = local[:0]
							}
						}
					}
				}
				if chunk == nil && !did {
					break
				}
			} else if chunk == nil {
				break
			}
		}
		s.q.PushBatch(local)
		local = local[:0]
		wr.PhaseEnd(obs.PhaseLocalScan, tp)
		myEdges += stats.Edges
		s.stats.add(w, stats)

		// Everyone finished the level; the coordinator advances the
		// window and decides termination.
		tp = wr.PhaseStart()
		if s.bar.wait() {
			s.advanceShared()
		}
		wr.PhaseEnd(obs.PhaseBarrierWait, tp)
		if s.bar.wait() {
			s.stats.foldPhases(!s.done.Load())
		}
		wr.NextLevel()
		if s.done.Load() {
			ws.edges = myEdges
			ws.reached = myReached
			return
		}
		limit = s.limit
	}
}

// advanceShared is the level transition of the shared-queue tiers, run
// by the coordinator elected at the first level barrier (its writes are
// published to the other workers by the second): fold the level's
// stats, advance the monotone window, decide termination.
func (s *Searcher) advanceShared() {
	// A cancelled search folds and advances normally — the bookkeeping
	// below only ever sets done, so the abort decision stands and the
	// obs layer still sees a coherent final level.
	s.checkCancelAtBarrier()
	if s.hubs != nil {
		s.hubs.reset()
	}
	s.stats.fold(&s.perLevel, time.Since(s.levelStart))
	s.levelStart = time.Now()
	old := s.limit
	s.limit = int64(s.q.Size())
	s.prevLimit = old
	s.levels++
	if s.limit == old || (s.maxLevels > 0 && s.levels >= s.maxLevels) {
		s.done.Store(true)
	}
}
