package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/affinity"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
)

// parallelSimpleBFS is the paper's Algorithm 1: a level-synchronous BFS
// with one shared current queue and one shared next queue, where
// visitation is claimed directly on the parent array with an atomic
// compare-and-swap (the paper's "the assignment in lines 10-12 must be
// executed atomically").
//
// Its weaknesses are exactly what the later tiers fix: the random
// working set is the full 4-byte-per-vertex parent array, and every
// discovered neighbour costs a lock-prefixed instruction.
func parallelSimpleBFS(g *graph.Graph, root graph.Vertex, o Options) (*Result, error) {
	n := g.NumVertices()
	parents := newParents(n)
	cq := queue.NewChunkQueue(n)
	nq := queue.NewChunkQueue(n)

	workers := o.Threads
	bar := newBarrier(workers)
	var done atomic.Bool
	edgeCounts := make([]int64, workers)
	reachedCounts := make([]int64, workers)
	levels := 0
	var perLevel []LevelStats
	coll := newObsCollector(o, workers, 1, AlgParallelSimple)
	collector := newStatsCollector(o.Instrument, workers, coll)
	levelStart := time.Now()

	start := time.Now()
	parents[root] = uint32(root)
	cq.Push(uint32(root))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if o.PinThreads {
				if unpin, err := affinity.PinToCPU(w); err == nil {
					defer unpin()
				}
			}
			wr := coll.Worker(w)
			// Run totals stay in worker-local variables until exit so
			// the hot loop never writes a cache line another worker's
			// totals live on.
			var myEdges, myReached int64
			local := make([]uint32, 0, o.LocalBatch)
			for {
				var stats LevelStats
				tp := wr.PhaseStart()
				for {
					chunk := cq.PopChunk(o.ChunkSize)
					if chunk == nil {
						break
					}
					for _, u := range chunk {
						nbrs := g.Neighbors(graph.Vertex(u))
						stats.Frontier++
						stats.Edges += int64(len(nbrs))
						for _, v := range nbrs {
							// Algorithm 1 claims the parent slot directly;
							// the load is part of the CAS loop, not a
							// bitmap-style cheap probe.
							stats.AtomicOps++
							if atomic.CompareAndSwapUint32(&parents[v], NoParent, u) {
								myReached++
								local = append(local, v)
								if len(local) == cap(local) {
									nq.PushBatch(local)
									local = local[:0]
								}
							}
						}
					}
				}
				nq.PushBatch(local)
				local = local[:0]
				wr.PhaseEnd(obs.PhaseLocalScan, tp)
				myEdges += stats.Edges
				collector.add(w, stats)

				// Everyone finished the level; the coordinator swaps the
				// queues and decides termination.
				tp = wr.PhaseStart()
				if bar.wait() {
					collector.fold(&perLevel, time.Since(levelStart))
					levelStart = time.Now()
					cq.Reset()
					cq, nq = nq, cq
					levels++
					if cq.Size() == 0 || (o.MaxLevels > 0 && levels >= o.MaxLevels) {
						done.Store(true)
					}
				}
				wr.PhaseEnd(obs.PhaseBarrierWait, tp)
				if bar.wait() {
					collector.foldPhases(!done.Load())
				}
				wr.NextLevel()
				if done.Load() {
					edgeCounts[w] = myEdges
					reachedCounts[w] = myReached
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var edges, reached int64
	for w := 0; w < workers; w++ {
		edges += edgeCounts[w]
		reached += reachedCounts[w]
	}
	return &Result{
		Parents:        parents,
		Root:           root,
		Reached:        reached + 1, // workers count discoveries; the root is seeded
		EdgesTraversed: edges,
		Levels:         levels,
		Duration:       time.Since(start),
		Algorithm:      AlgParallelSimple,
		Threads:        workers,
		PerLevel:       perLevel,
		Trace:          coll.Finish(),
	}, nil
}
