package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// batchRef runs the single-source sequential reference for one root.
func batchRef(t *testing.T, g *graph.Graph, root graph.Vertex) *Result {
	t.Helper()
	res, err := BFS(g, root, Options{Algorithm: AlgSequential})
	if err != nil {
		t.Fatalf("reference BFS(%d): %v", root, err)
	}
	return res
}

// TestBatchMatchesSingleSource is the central MS-BFS property test:
// across random R-MAT graphs and batch widths (duplicate roots
// included), every lane's tree must validate and its scalars —
// Reached, Levels, and per-lane attributed Edges — must exactly equal
// the single-source sequential reference from the same root.
func TestBatchMatchesSingleSource(t *testing.T) {
	cases := []struct {
		scale   int
		edges   int64
		seed    uint64
		width   int
		threads int
	}{
		{8, 2048, 1, 1, 1},
		{8, 2048, 2, 8, 2},
		{9, 4096, 3, 17, 3},
		{10, 16384, 4, 32, 4},
		{10, 8192, 5, 64, 2},
		{11, 16384, 6, 64, 4},
	}
	for _, c := range cases {
		g := must(gen.RMAT(c.scale, c.edges, gen.GTgraphDefaults, c.seed))
		n := g.NumVertices()
		roots := make([]graph.Vertex, c.width)
		for i := range roots {
			// Deterministic spread, including duplicates: lanes 0 and
			// width-1 share a root when width > 1.
			roots[i] = graph.Vertex((i * 2654435761) % n)
		}
		if c.width > 1 {
			roots[c.width-1] = roots[0]
		}
		b, err := NewBatchSearcher(g, BatchOptions{Width: c.width, Threads: c.threads})
		if err != nil {
			t.Fatalf("NewBatchSearcher: %v", err)
		}
		res, err := b.Search(roots)
		if err != nil {
			t.Fatalf("scale %d width %d: Search: %v", c.scale, c.width, err)
		}
		if res.EdgesScanned <= 0 && g.NumEdges() > 0 {
			t.Errorf("scale %d: EdgesScanned = %d", c.scale, res.EdgesScanned)
		}
		var parents []uint32
		for l := 0; l < res.Lanes; l++ {
			ref := batchRef(t, g, roots[l])
			if res.Err[l] != nil {
				t.Fatalf("lane %d: unexpected error %v", l, res.Err[l])
			}
			if res.Reached[l] != ref.Reached {
				t.Errorf("scale %d lane %d (root %d): Reached = %d, want %d",
					c.scale, l, roots[l], res.Reached[l], ref.Reached)
			}
			if res.Levels[l] != ref.Levels {
				t.Errorf("scale %d lane %d (root %d): Levels = %d, want %d",
					c.scale, l, roots[l], res.Levels[l], ref.Levels)
			}
			if res.Edges[l] != ref.EdgesTraversed {
				t.Errorf("scale %d lane %d (root %d): Edges = %d, want %d",
					c.scale, l, roots[l], res.Edges[l], ref.EdgesTraversed)
			}
			parents = res.ExtractParents(l, parents)
			if err := ValidateTree(g, roots[l], parents); err != nil {
				t.Errorf("scale %d lane %d (root %d): %v", c.scale, l, roots[l], err)
			}
			// Depth-by-depth equivalence, not just tree validity.
			got := TreeDepths(parents, roots[l])
			want := TreeDepths(ref.Parents, ref.Root)
			for v := range got {
				if got[v] != want[v] {
					t.Errorf("scale %d lane %d: depth[%d] = %d, want %d",
						c.scale, l, v, got[v], want[v])
					break
				}
			}
		}
		if err := b.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

// TestBatchSessionReuse runs several batches through one session and
// checks the O(touched) reset leaves no residue: every batch must
// reproduce the fresh-searcher result, including after a chain batch
// that touches a different region than its predecessor.
func TestBatchSessionReuse(t *testing.T) {
	g := must(gen.RMAT(10, 8192, gen.GTgraphDefaults, 7))
	n := g.NumVertices()
	b, err := NewBatchSearcher(g, BatchOptions{Width: 16, Threads: 2})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	defer b.Close()
	for round := 0; round < 5; round++ {
		roots := make([]graph.Vertex, 16)
		for i := range roots {
			roots[i] = graph.Vertex((round*977 + i*131) % n)
		}
		res, err := b.Search(roots)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for l := range roots {
			ref := batchRef(t, g, roots[l])
			if res.Reached[l] != ref.Reached || res.Edges[l] != ref.EdgesTraversed || res.Levels[l] != ref.Levels {
				t.Fatalf("round %d lane %d: Reached=%d/%d Edges=%d/%d Levels=%d/%d",
					round, l, res.Reached[l], ref.Reached, res.Edges[l], ref.EdgesTraversed,
					res.Levels[l], ref.Levels)
			}
		}
	}
}

func TestBatchRejectsBadInput(t *testing.T) {
	g := must(gen.Chain(10))
	if _, err := NewBatchSearcher(nil, BatchOptions{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewBatchSearcher(g, BatchOptions{Width: 65}); err == nil {
		t.Error("width 65 accepted")
	}
	b, err := NewBatchSearcher(g, BatchOptions{Width: 2, Threads: 2})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	if _, err := b.Search(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := b.Search([]graph.Vertex{0, 1, 2}); err == nil {
		t.Error("over-width batch accepted")
	}
	if _, err := b.Search([]graph.Vertex{10}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := b.SearchLanes(context.Background(), []graph.Vertex{0, 1}, []context.Context{context.Background()}); err == nil {
		t.Error("mismatched lane-context count accepted")
	}
	if err := b.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := b.Search([]graph.Vertex{0}); err == nil {
		t.Error("Search on closed BatchSearcher accepted")
	}
}

// TestBatchPreCancelledLane seeds one lane with an already-expired
// context: the lane must deterministically report its root and only its
// root, with the context's error, while sibling lanes run to completion
// untouched.
func TestBatchPreCancelledLane(t *testing.T) {
	g := must(gen.Chain(100))
	b, err := NewBatchSearcher(g, BatchOptions{Width: 3, Threads: 2})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	defer b.Close()
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	roots := []graph.Vertex{0, 0, 50}
	res, err := b.SearchLanes(context.Background(), roots, []context.Context{nil, dead, nil})
	if err != nil {
		t.Fatalf("SearchLanes: %v", err)
	}
	if res.Err[1] == nil || !errors.Is(res.Err[1], context.Canceled) {
		t.Errorf("lane 1 error = %v, want context.Canceled", res.Err[1])
	}
	if res.Reached[1] != 1 || res.Levels[1] != 1 || res.Edges[1] != 0 {
		t.Errorf("cancelled lane: Reached=%d Levels=%d Edges=%d, want 1/1/0",
			res.Reached[1], res.Levels[1], res.Edges[1])
	}
	for _, l := range []int{0, 2} {
		ref := batchRef(t, g, roots[l])
		if res.Err[l] != nil {
			t.Errorf("lane %d: unexpected error %v", l, res.Err[l])
		}
		if res.Reached[l] != ref.Reached || res.Edges[l] != ref.EdgesTraversed {
			t.Errorf("lane %d: Reached=%d/%d Edges=%d/%d", l,
				res.Reached[l], ref.Reached, res.Edges[l], ref.EdgesTraversed)
		}
	}
}

// stepCancelCtx is a context whose Err flips to Canceled after a fixed
// number of polls. The batch engine polls a lane context once at
// seeding and once per level transition, so the flip lands at a
// deterministic depth — the reliable way to exercise mid-traversal
// lane cancellation.
type stepCancelCtx struct {
	polls     atomic.Int64
	threshold int64
}

func (c *stepCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stepCancelCtx) Done() <-chan struct{}       { return nil }
func (c *stepCancelCtx) Value(any) any               { return nil }
func (c *stepCancelCtx) Err() error {
	if c.polls.Add(1) > c.threshold {
		return context.Canceled
	}
	return nil
}

// TestBatchLaneCancelMidTraversal cancels one lane after two level
// transitions of a deep chain: the lane must stop with a truncated
// reach and a cancellation error while its siblings complete exactly.
func TestBatchLaneCancelMidTraversal(t *testing.T) {
	const n = 200
	g := must(gen.Chain(n))
	b, err := NewBatchSearcher(g, BatchOptions{Width: 2, Threads: 2})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	defer b.Close()
	// Poll 1 happens at seeding; polls 2 and 3 at the first two level
	// transitions. Threshold 3 cancels the lane at the third transition,
	// after it has advanced exactly 3 levels.
	ctx := &stepCancelCtx{threshold: 3}
	res, err := b.SearchLanes(context.Background(), []graph.Vertex{0, 0}, []context.Context{ctx, nil})
	if err != nil {
		t.Fatalf("SearchLanes: %v", err)
	}
	if res.Err[0] == nil || !errors.Is(res.Err[0], context.Canceled) {
		t.Fatalf("lane 0 error = %v, want context.Canceled", res.Err[0])
	}
	if res.Reached[0] <= 1 || res.Reached[0] >= n {
		t.Errorf("cancelled lane Reached = %d, want truncated in (1,%d)", res.Reached[0], n)
	}
	ref := batchRef(t, g, 0)
	if res.Err[1] != nil {
		t.Errorf("surviving lane error: %v", res.Err[1])
	}
	if res.Reached[1] != ref.Reached || res.Edges[1] != ref.EdgesTraversed || res.Levels[1] != ref.Levels {
		t.Errorf("surviving lane: Reached=%d/%d Edges=%d/%d Levels=%d/%d",
			res.Reached[1], ref.Reached, res.Edges[1], ref.EdgesTraversed, res.Levels[1], ref.Levels)
	}
	// The truncated lane's claimed prefix is still a consistent partial
	// tree: every claimed vertex has a claimed parent one step closer.
	var parents []uint32
	parents = res.ExtractParents(0, parents)
	for v := 0; v < n; v++ {
		p := parents[v]
		if p == NoParent || v == 0 {
			continue
		}
		if p != uint32(v-1) {
			t.Errorf("cancelled lane: parent[%d] = %d, want %d", v, p, v-1)
		}
		if parents[p] == NoParent {
			t.Errorf("cancelled lane: claimed vertex %d has unclaimed parent %d", v, p)
		}
	}
	// The session stays serviceable after a lane cancellation.
	res2, err := b.Search([]graph.Vertex{0, 10})
	if err != nil {
		t.Fatalf("post-cancel Search: %v", err)
	}
	if res2.Reached[0] != ref.Reached {
		t.Errorf("post-cancel Reached = %d, want %d", res2.Reached[0], ref.Reached)
	}
}

// TestBatchWholeCancel aborts the entire batch via the batch context
// and checks the session resets cleanly for the next call.
func TestBatchWholeCancel(t *testing.T) {
	g := must(gen.Chain(50))
	b, err := NewBatchSearcher(g, BatchOptions{Width: 2, Threads: 2})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	defer b.Close()

	// Dead on arrival: no state dirtied, error surfaces immediately.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.SearchContext(dead, []graph.Vertex{0, 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-on-arrival error = %v", err)
	}

	// Cancel mid-flight via the per-level coordinator poll.
	ctx := &stepCancelCtx{threshold: 3}
	if _, err := b.SearchLanes(ctx, []graph.Vertex{0, 1}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight error = %v", err)
	}

	// The session must recover to exact results.
	ref := batchRef(t, g, 0)
	res, err := b.Search([]graph.Vertex{0, 25})
	if err != nil {
		t.Fatalf("post-abort Search: %v", err)
	}
	if res.Reached[0] != ref.Reached || res.Edges[0] != ref.EdgesTraversed {
		t.Errorf("post-abort: Reached=%d/%d Edges=%d/%d",
			res.Reached[0], ref.Reached, res.Edges[0], ref.EdgesTraversed)
	}
}

func TestBatchSeenMaskAndParentOf(t *testing.T) {
	// Chain 0->1->2: lane 0 from vertex 0 sees everything, lane 1 from
	// vertex 2 sees only vertex 2.
	g := must(gen.Chain(3))
	b, err := NewBatchSearcher(g, BatchOptions{Width: 2, Threads: 1})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	defer b.Close()
	res, err := b.Search([]graph.Vertex{0, 2})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if m := res.SeenMask(0); m != 0b01 {
		t.Errorf("SeenMask(0) = %#b, want 0b01", m)
	}
	if m := res.SeenMask(2); m != 0b11 {
		t.Errorf("SeenMask(2) = %#b, want 0b11", m)
	}
	if p := res.ParentOf(0, 1); p != 0 {
		t.Errorf("ParentOf(0, 1) = %d, want 0", p)
	}
	if p := res.ParentOf(1, 1); p != NoParent {
		t.Errorf("ParentOf(1, 1) = %d, want NoParent", p)
	}
	if p := res.ParentOf(1, 2); p != 2 {
		t.Errorf("ParentOf(1, 2) = %d, want 2 (root self-parent)", p)
	}
	if got := len(res.Touched()); got != 3 {
		t.Errorf("Touched = %d vertices, want 3", got)
	}
}

func TestBatchQueryOneShot(t *testing.T) {
	g := must(gen.RMAT(9, 4096, gen.GTgraphDefaults, 9))
	roots := []graph.Vertex{0, 1, 2, 3}
	trees, err := BatchQuery(g, roots, BatchOptions{Threads: 2})
	if err != nil {
		t.Fatalf("BatchQuery: %v", err)
	}
	if len(trees.Parents) != len(roots) {
		t.Fatalf("got %d parent arrays, want %d", len(trees.Parents), len(roots))
	}
	for l, root := range roots {
		if err := ValidateTree(g, root, trees.Parents[l]); err != nil {
			t.Errorf("lane %d: %v", l, err)
		}
		ref := batchRef(t, g, root)
		if trees.Reached[l] != ref.Reached {
			t.Errorf("lane %d: Reached = %d, want %d", l, trees.Reached[l], ref.Reached)
		}
	}
}

// TestBatchTelemetry checks the batch sinks: lane histogram, batch
// totals, and one per-lane query sample with the msbfs algorithm label.
func TestBatchTelemetry(t *testing.T) {
	g := must(gen.RMAT(9, 4096, gen.GTgraphDefaults, 10))
	var m obs.Metrics
	tel := obs.NewTelemetry(obs.TelemetryOptions{Shards: 1})
	b, err := NewBatchSearcher(g, BatchOptions{Width: 8, Threads: 2, Telemetry: tel, Metrics: &m})
	if err != nil {
		t.Fatalf("NewBatchSearcher: %v", err)
	}
	defer b.Close()
	roots := []graph.Vertex{0, 1, 2, 3, 4}
	res, err := b.Search(roots)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if got := m.BatchTraversals.Load(); got != 1 {
		t.Errorf("BatchTraversals = %d, want 1", got)
	}
	if got := m.BatchLanes.Load(); got != 5 {
		t.Errorf("BatchLanes = %d, want 5", got)
	}
	if got := m.BatchEdges.Load(); got != res.EdgesScanned {
		t.Errorf("BatchEdges = %d, want %d", got, res.EdgesScanned)
	}
	var laneSum int64
	for _, e := range res.Edges {
		laneSum += e
	}
	if got := m.BatchLaneEdges.Load(); got != laneSum {
		t.Errorf("BatchLaneEdges = %d, want %d", got, laneSum)
	}
	if got := tel.OutcomeCount(obs.OutcomeOK); got != 5 {
		t.Errorf("OutcomeOK count = %d, want 5 (one per lane)", got)
	}
	traversals, lanes, scanned, laneEdges := tel.BatchStats()
	if traversals != 1 || lanes != 5 || scanned != res.EdgesScanned || laneEdges != laneSum {
		t.Errorf("BatchStats = (%d, %d, %d, %d), want (1, 5, %d, %d)",
			traversals, lanes, scanned, laneEdges, res.EdgesScanned, laneSum)
	}
	buckets := tel.BatchLaneBuckets()
	// 5 lanes lands in the le-8 bucket (index 3).
	if buckets[3] != 1 {
		t.Errorf("lane buckets = %v, want the le-8 bucket to hold the traversal", buckets)
	}
	found := false
	for _, rec := range tel.Flight().Records() {
		if rec.Algorithm == BatchAlgorithmName {
			found = true
			break
		}
	}
	if !found {
		t.Error("no flight-recorder sample labelled msbfs")
	}
}
