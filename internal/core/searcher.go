package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/affinity"
	"mcbfs/internal/bitmap"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
	"mcbfs/internal/topology"
)

// Query selects per-search overrides on a Searcher. The zero value
// reruns the session's configuration.
type Query struct {
	// Algorithm overrides the session's tier for this search; AlgAuto
	// (the zero value) keeps the session default.
	Algorithm Algorithm
	// MaxLevels overrides Options.MaxLevels for this search: 0 keeps
	// the session setting, a negative value forces unbounded.
	MaxLevels int
}

// jobKind is what the worker pool is asked to run between gates.
type jobKind int

const (
	jobSearch jobKind = iota
	jobClear
)

// searchWorker is one pool worker's pooled per-search scratch. The
// slice fields are sized once (NewSearcher / ensureTier) and reused
// every search, so a warm search allocates none of them. The trailing
// pad keeps the end-of-search counter writes of adjacent workers off a
// shared cache line.
type searchWorker struct {
	// local is the claimed-vertex batch (cap Options.LocalBatch),
	// flushed into the next-level window of the tier's queue when full.
	local []uint32
	// probeHit backs the software-pipelined probe block
	// (cap Options.ProbeBatch; nil when disabled).
	probeHit []bool
	// remote and recvBuf are the multi-socket tier's per-destination
	// send batches and channel receive buffer (nil until that tier is
	// first used).
	remote  [][]queue.Tuple
	recvBuf []queue.Tuple
	// edges and reached are the worker's run totals, written once as the
	// worker finishes a search and read by the caller after the finish
	// gate.
	edges, reached int64
	_              [64]byte
}

// Searcher is a reusable BFS session bound to one graph: a persistent
// worker pool (goroutines parked on a gate between queries, pinned once
// when Options.PinThreads is set) plus pooled per-search state —
// parents, visited/frontier bitmaps, chunk queues, inter-socket
// channels and remote-batch buffers — sized to the graph and reused
// across calls. A warm Search performs zero per-search heap allocations
// of that state; the per-search cost is an O(touched) reset of what the
// previous search dirtied, not an O(n) reinitialization.
//
// The reset stays O(touched) because each tier runs over a *monotone*
// queue: the queue is never reset within a search, levels are windows
// [prevLimit, limit) advanced by the level coordinator, and when the
// search finishes the queue's contents are exactly the set of reached
// vertices — a free "touched list" that the next Search walks to clear
// only the parent entries and visited-bitmap words the last search
// wrote (falling back to a parallel full clear when touched ≳ n/4).
//
// A Searcher serves one search at a time: Search, BFS and Close must
// not be called concurrently. For concurrent query streams, create one
// Searcher per stream — Searchers over the same graph are independent.
type Searcher struct {
	g       *graph.Graph
	gt      *graph.Graph // transpose; direction-optimizing tier only (lazy)
	o       Options      // session options, resolved by withDefaults
	n       int
	workers int
	sockets int
	part    topology.Partition // multi-socket tier only

	parents  []uint32
	visited  *bitmap.Atomic
	frontier *bitmap.Atomic // direction-optimizing tier only (lazy)

	// Degree-aware scheduling (Options.EdgeBudget): edgeBudget is the
	// session's effective per-chunk adjacency allowance (0 = off), hubs
	// the shared over-budget-vertex split board, and buPart the
	// edge-prefix-sum bottom-up partition of the transpose (lazy with
	// the direction-optimizing tier, 64-aligned boundaries).
	edgeBudget int64
	hubs       *hubBoard
	buPart     []int

	// Ordering translation layer (Options.Ordering / Options.Reordered):
	// the session searches a relabeled copy of the caller's graph, so s.g
	// is the relabeled CSR, perm maps caller ids into it, inv maps back,
	// and extParents is the pooled caller-id parent array that results
	// expose. A query translates its root in (one array read) and its
	// parent tree out (one O(touched) walk of the monotone queues); the
	// reset clears extParents alongside parents, so warm queries stay
	// allocation-free. All nil when the session runs in natural order.
	perm, inv  []graph.Vertex
	extParents []uint32

	// q is the monotone queue of the shared-queue tiers (sequential,
	// simple, single-socket, direction-optimizing); qs the per-socket
	// queues of the multi-socket tier. At most one of them holds data
	// after a search — the previous search's touched list.
	q         *queue.ChunkQueue
	qs        []*queue.ChunkQueue
	channels  []*queue.Channel
	chanStats bool
	prevChan  []queue.ChannelStats

	ws    []searchWorker
	slots []statSlot // statsCollector backing, reused across searches

	// bar synchronizes the workers inside a search (workers parties);
	// gate hands jobs between the caller and the pool (workers+1
	// parties, used alternately as launch and finish). The gate's mutex
	// is what publishes the caller's pre-launch writes to the workers
	// and the workers' finish writes back. wg joins the pool goroutines
	// in Close (each worker's deferred unpin must complete before Close
	// returns, or it could race the pinning of a successor's workers).
	bar    *barrier
	gate   *barrier
	wg     sync.WaitGroup
	closed bool

	// Per-search job description: written by Search before the launch
	// gate, read by workers after it.
	job       jobKind
	alg       Algorithm
	maxLevels int
	coll      *obs.Collector

	// collCache is the pooled obs collector, reused across searches via
	// Collector.Reset whenever the tier's worker count is unchanged, so
	// a warm observed search allocates no collector state. runTracer is
	// the session's effective tracer — Options.Tracer plus the
	// telemetry level capture when Options.Telemetry is set — and
	// levelRecs is the capture's pooled destination: the current
	// search's per-level breakdowns, handed to the flight recorder.
	collCache *obs.Collector
	runTracer obs.Tracer
	levelRecs []obs.LevelBreakdown

	// ctx is the current search's context; cancel is the cross-worker
	// abort flag, set by whichever party first observes ctx.Err() != nil
	// (a worker at a chunk-pop checkpoint, or the level coordinator at
	// the barrier). Workers that see it stop expanding, flush what they
	// claimed, and proceed through the normal level protocol, so the
	// monotone queues still hold exactly the touched set when the search
	// unwinds.
	ctx    context.Context
	cancel atomic.Bool

	// Level-coordination state: written by the coordinator elected at
	// the first level barrier, read by workers after the second (done
	// and bottomUp are atomic because workers also poll them at level
	// boundaries).
	done       atomic.Bool
	bottomUp   atomic.Bool
	limit      int64
	prevLimit  int64
	sockLimit  []int64
	levels     int
	levelStart time.Time

	stats    statsCollector
	perLevel []LevelStats

	hasTouched bool
	res        Result
}

// NewSearcher builds a search session over g. The algorithm tier, its
// worker count and all tuning knobs come from opt exactly as they do
// for BFS; state for the default tier is allocated eagerly so the first
// Search pays only the search itself, and state for other tiers
// requested via Query.Algorithm is allocated on first use.
func NewSearcher(g *graph.Graph, opt Options) (*Searcher, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	o := opt.withDefaults()
	if err := o.Machine.Validate(); err != nil {
		return nil, err
	}
	switch o.Algorithm {
	case AlgSequential, AlgParallelSimple, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing:
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opt.Algorithm)
	}
	if o.HybridAlpha < 0 || o.HybridBeta < 0 {
		return nil, fmt.Errorf("core: HybridAlpha/HybridBeta must be positive (got %d/%d)",
			opt.HybridAlpha, opt.HybridBeta)
	}
	n := g.NumVertices()
	rd := o.Reordered
	if rd == nil && o.Ordering != graph.OrderNatural {
		var err error
		if rd, err = g.Reorder(o.Ordering); err != nil {
			return nil, err
		}
		o.Reordered = rd // sessions rebuilt from these options reuse it
	}
	workGraph := g
	var perm, inv []graph.Vertex
	if rd != nil {
		if rd.Graph == nil || rd.Graph.NumVertices() != n || rd.Graph.NumEdges() != g.NumEdges() {
			return nil, errors.New("core: Options.Reordered does not match the graph")
		}
		if rd.Perm != nil && (len(rd.Perm) != n || len(rd.Inv) != n) {
			return nil, errors.New("core: Options.Reordered permutation length mismatch")
		}
		workGraph = rd.Graph
		perm, inv = rd.Perm, rd.Inv
	}
	s := &Searcher{
		g:       workGraph,
		perm:    perm,
		inv:     inv,
		o:       o,
		n:       n,
		workers: o.Threads,
		sockets: o.Machine.SocketsForThreads(o.Threads),
		parents: newParents(n),
		visited: bitmap.NewAtomic(n),
		ws:      make([]searchWorker, o.Threads),
		slots:   make([]statSlot, o.Threads),
		bar:     newBarrier(o.Threads),
		gate:    newBarrier(o.Threads + 1),
	}
	if perm != nil {
		s.extParents = newParents(n)
	}
	s.edgeBudget = resolveEdgeBudget(o, workGraph)
	if s.edgeBudget > 0 && s.workers > 1 {
		// With one worker there is nobody to share a split hub with, so
		// the board is skipped and over-budget vertices expand inline.
		s.hubs = newHubBoard(workGraph, s.edgeBudget)
	}
	for w := range s.ws {
		s.ws[w].local = make([]uint32, 0, o.LocalBatch)
		if o.ProbeBatch > 0 {
			s.ws[w].probeHit = make([]bool, o.ProbeBatch)
		}
	}
	s.runTracer = o.Tracer
	if o.Telemetry != nil {
		lc := levelCapture{s}
		if o.Tracer != nil {
			s.runTracer = obs.MultiTracer(o.Tracer, lc)
		} else {
			s.runTracer = lc
		}
		s.levelRecs = make([]obs.LevelBreakdown, 0, 64)
	}
	if err := s.ensureTier(o.Algorithm); err != nil {
		return nil, err
	}
	s.wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go s.workerLoop(w)
	}
	return s, nil
}

// ensureTier allocates the tier-specific pooled state the first time
// this session runs the given algorithm.
func (s *Searcher) ensureTier(alg Algorithm) error {
	switch alg {
	case AlgSequential, AlgParallelSimple, AlgSingleSocket, AlgDirectionOptimizing:
		if s.q == nil {
			s.q = queue.NewChunkQueue(s.n)
		}
		if alg == AlgDirectionOptimizing {
			if s.frontier == nil {
				s.frontier = bitmap.NewAtomic(s.n)
			}
			if s.gt == nil {
				gt := s.o.Transpose
				if gt == nil {
					// s.g is already the relabeled graph when the session
					// reorders, so the lazily computed transpose is too.
					gt = s.g.Transpose()
				} else if gt.NumVertices() != s.n || gt.NumEdges() != s.g.NumEdges() {
					return errors.New("core: Options.Transpose does not match the graph")
				} else if s.perm != nil {
					// A caller-supplied transpose is in original id space;
					// carry it into the session's relabeled space.
					rgt, err := gt.Relabel(s.perm)
					if err != nil {
						return err
					}
					gt = rgt
				}
				s.gt = gt
			}
			if s.edgeBudget > 0 && s.buPart == nil {
				// Edge-prefix-sum partition of the bottom-up sweep: each
				// worker scans ~equal in-edge mass of the transpose.
				// 64-aligned boundaries keep a worker's plain bitmap
				// writes word-exclusive, like the legacy uniform split.
				s.buPart = graph.EdgePartition(s.gt.Offsets(), s.workers, 64)
			}
		}
	case AlgMultiSocket:
		if s.qs == nil {
			part, err := topology.NewPartition(s.n, s.sockets)
			if err != nil {
				return err
			}
			s.part = part
			s.qs = make([]*queue.ChunkQueue, s.sockets)
			s.channels = make([]*queue.Channel, s.sockets)
			s.prevChan = make([]queue.ChannelStats, s.sockets)
			s.sockLimit = make([]int64, s.sockets)
			for sck := 0; sck < s.sockets; sck++ {
				lo, hi := part.Range(sck)
				c := hi - lo
				if c < 1 {
					c = 1
				}
				s.qs[sck] = queue.NewChunkQueue(c)
				s.channels[sck] = queue.NewChannel()
			}
			for w := range s.ws {
				s.ws[w].remote = make([][]queue.Tuple, s.sockets)
				for sck := range s.ws[w].remote {
					s.ws[w].remote[sck] = make([]queue.Tuple, 0, s.o.BatchSize)
				}
				s.ws[w].recvBuf = make([]queue.Tuple, s.o.BatchSize)
			}
		}
		// Channel counters cannot be disabled once on, so they are
		// enabled lazily and only when the session traces.
		if s.o.Trace && !s.chanStats {
			for _, c := range s.channels {
				c.EnableStats()
			}
			s.chanStats = true
		}
	default:
		return fmt.Errorf("core: unknown algorithm %v", alg)
	}
	return nil
}

// workerLoop is one persistent pool worker: pinned once for the
// session's lifetime when PinThreads is set, then parked on the gate
// between jobs.
func (s *Searcher) workerLoop(w int) {
	// Registered first so it runs last: the deferred unpin below must
	// have restored the OS thread before Close's join observes the exit.
	defer s.wg.Done()
	if s.o.PinThreads {
		if unpin, err := affinity.PinToCPU(w); err == nil {
			defer unpin()
		}
	}
	for {
		s.gate.wait()
		if s.closed {
			return
		}
		switch s.job {
		case jobSearch:
			switch s.alg {
			case AlgParallelSimple:
				s.simpleWorker(w)
			case AlgSingleSocket:
				s.singleSocketWorker(w)
			case AlgMultiSocket:
				s.multiSocketWorker(w)
			case AlgDirectionOptimizing:
				s.hybridWorker(w)
			}
		case jobClear:
			s.clearShard(w)
		}
		s.gate.wait()
	}
}

// runJob hands the prepared job to the pool and blocks until every
// worker has finished it.
func (s *Searcher) runJob(kind jobKind) {
	s.job = kind
	s.gate.wait()
	s.gate.wait()
}

// clearShard is worker w's share of the parallel full-reset fallback:
// restore a word-aligned shard of the parent array and visited bitmap.
// Word alignment keeps two workers' bitmap stores off the same word.
func (s *Searcher) clearShard(w int) {
	words := (s.n + 63) / 64
	wlo := words * w / s.workers
	whi := words * (w + 1) / s.workers
	lo := wlo * 64
	hi := whi * 64
	if hi > s.n {
		hi = s.n
	}
	p := s.parents[lo:hi]
	for i := range p {
		p[i] = NoParent
	}
	if s.extParents != nil {
		// The full clear restores all of [0, n) across workers, so the
		// same contiguous shard of the caller-id array covers it too.
		e := s.extParents[lo:hi]
		for i := range e {
			e[i] = NoParent
		}
	}
	s.visited.ResetWords(wlo, whi)
}

// resetState restores parents, visited and the queues after the
// previous search, in O(touched) rather than O(n): the monotone queues
// hold exactly the vertices the search reached, and every set visited
// bit belongs to a reached vertex, so walking the queue contents and
// zeroing each vertex's parent entry and containing bitmap word
// restores the pristine state. When the previous search touched a large
// fraction of the graph, a parallel full clear beats the walk's random
// stores.
func (s *Searcher) resetState() {
	if !s.hasTouched {
		return
	}
	touched := 0
	if s.q != nil {
		touched += s.q.Size()
	}
	for _, q := range s.qs {
		touched += q.Size()
	}
	switch {
	case touched >= s.n/4 && s.workers > 1:
		s.runJob(jobClear)
	case touched >= s.n/4:
		s.clearShard(0)
	default:
		// With an active ordering, a cell of the caller-id parent array
		// is dirty only if the last *translated* search wrote it — and
		// that search's touched list is still the queue contents being
		// walked here (a cancelled search in between translates nothing
		// and its reset walk just re-clears clean cells), so clearing
		// extParents[inv[v]] alongside parents[v] restores both arrays.
		if s.q != nil {
			for _, v := range s.q.Slice() {
				s.parents[v] = NoParent
				s.visited.ClearWordOf(int(v))
				if s.extParents != nil {
					s.extParents[s.inv[v]] = NoParent
				}
			}
		}
		for _, q := range s.qs {
			for _, v := range q.Slice() {
				s.parents[v] = NoParent
				s.visited.ClearWordOf(int(v))
				if s.extParents != nil {
					s.extParents[s.inv[v]] = NoParent
				}
			}
		}
	}
	if s.q != nil {
		s.q.Reset()
	}
	for _, q := range s.qs {
		q.Reset()
	}
	if s.hubs != nil {
		// A cancelled search can unwind with half-claimed hub tasks
		// still posted; clear them so the next search starts clean.
		s.hubs.reset()
	}
	s.hasTouched = false
}

// BFS runs one search from root with the session's configuration — the
// repeated-query fast path.
func (s *Searcher) BFS(root graph.Vertex) (*Result, error) {
	return s.Search(root, Query{})
}

// cancelCheckMask throttles the direct context poll: workers re-read
// ctx.Err() once every cancelCheckMask+1 checkpoints (a checkpoint is
// one claimed chunk, or one frontier vertex in the sequential tier);
// between polls the only cost is one atomic load of the shared flag.
// With the default ChunkSize that bounds the work between context
// observations to a few thousand vertices per worker.
const cancelCheckMask = 63

// aborted is the per-checkpoint cancellation probe, called from the hot
// loops of every tier with a worker-local checkpoint counter. It is
// two-level: the cross-worker flag on every call (so one worker's
// observation propagates at the next checkpoint), the context itself
// only every cancelCheckMask+1 calls.
func (s *Searcher) aborted(n *int) bool {
	if s.cancel.Load() {
		return true
	}
	*n++
	if *n&cancelCheckMask != 0 {
		return false
	}
	if s.ctx.Err() != nil {
		s.cancel.Store(true)
		return true
	}
	return false
}

// checkCancelAtBarrier is the level coordinator's probe, run at every
// level transition: levels too small to trip a worker checkpoint still
// observe cancellation within one level. It returns true — after
// setting both flags — when the search must unwind.
func (s *Searcher) checkCancelAtBarrier() bool {
	if s.cancel.Load() || s.ctx.Err() != nil {
		s.cancel.Store(true)
		s.done.Store(true)
		return true
	}
	return false
}

// Search runs one BFS from root, reusing the session's pooled state.
// The returned Result — including Parents, PerLevel and Trace — remains
// valid only until the next Search or Close on this Searcher; copy what
// must outlive it. Search must not be called concurrently with itself
// or Close.
func (s *Searcher) Search(root graph.Vertex, q Query) (*Result, error) {
	return s.SearchContext(context.Background(), root, q)
}

// SearchContext is Search with cancellation: when ctx is cancelled or
// its deadline passes, the search unwinds at the next cancellation
// point (a level barrier, or a chunk-pop checkpoint inside a level) and
// returns ctx.Err(). The abort leaves the session consistent — every
// vertex the aborted search claimed is on its touched list, so the next
// Search on this Searcher pays the usual O(touched) reset and returns
// exactly what a fresh session would. An uncancellable background
// context adds no per-search allocation or synchronization beyond
// Search.
func (s *Searcher) SearchContext(ctx context.Context, root graph.Vertex, q Query) (*Result, error) {
	if s.closed {
		return nil, errors.New("core: Search on a closed Searcher")
	}
	if int(root) >= s.n {
		return nil, fmt.Errorf("core: root %d out of range [0,%d)", root, s.n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err // dead on arrival: no state dirtied
	}
	alg := q.Algorithm
	if alg == AlgAuto {
		alg = s.o.Algorithm
	}
	if err := s.ensureTier(alg); err != nil {
		return nil, err
	}
	maxLevels := s.o.MaxLevels
	if q.MaxLevels > 0 {
		maxLevels = q.MaxLevels
	} else if q.MaxLevels < 0 {
		maxLevels = 0
	}

	s.resetState()
	// The session is dirty from here on. Recording that before any
	// parent/bitmap write (rather than after the search completes, as
	// an earlier version did) means an abort on any path below still
	// triggers a full reset of the partial state on the next query —
	// including the root's seeded parent entry, which is why the queue
	// push below precedes the s.parents[root] write.
	s.hasTouched = true
	s.ctx = ctx
	s.cancel.Store(false)

	tierWorkers := s.workers
	tierSockets := 1
	if alg == AlgSequential {
		tierWorkers = 1
	}
	if alg == AlgMultiSocket {
		tierSockets = s.sockets
	}
	s.coll = s.obsCollector(tierWorkers, tierSockets, alg)
	s.levelRecs = s.levelRecs[:0]
	s.alg = alg
	s.maxLevels = maxLevels
	s.levels = 0
	s.done.Store(false)
	if s.o.Instrument {
		s.perLevel = s.perLevel[:0]
	} else {
		s.perLevel = nil
	}

	// The search itself runs in the session's id space: with an active
	// ordering the root is translated in here and the parent tree
	// translated back out after the search; without one iroot == root.
	iroot := root
	if s.perm != nil {
		iroot = s.perm[root]
	}

	start := time.Now()
	s.levelStart = start
	var edges, reached int64
	if alg == AlgSequential {
		// The serial baseline runs inline on the caller's goroutine.
		s.q.Push(uint32(iroot))
		s.parents[iroot] = uint32(iroot)
		edges, reached = s.sequentialSearch()
	} else {
		s.stats.arm(s.o.Instrument, s.coll, s.slots)
		if alg == AlgMultiSocket {
			s.qs[s.part.DetermineSocket(uint32(iroot))].Push(uint32(iroot))
			for i := range s.sockLimit {
				s.sockLimit[i] = int64(s.qs[i].Size())
			}
			if s.chanStats {
				// Channel counters are cumulative across searches;
				// re-baseline the per-level delta tracking.
				for i, c := range s.channels {
					s.prevChan[i] = c.Stats()
					c.ResetHighWater()
				}
			}
		} else {
			s.q.Push(uint32(iroot))
			s.prevLimit = 0
			s.limit = 1
			s.bottomUp.Store(false)
		}
		s.parents[iroot] = uint32(iroot)
		switch alg {
		case AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing:
			s.visited.Set(int(iroot))
		}
		s.runJob(jobSearch)
		for w := range s.ws {
			edges += s.ws[w].edges
			reached += s.ws[w].reached
		}
		reached++ // workers count discoveries; the root is seeded
	}
	dur := time.Since(start)
	if s.cancel.Load() {
		// The partial tree is not a BFS tree of anything; expose only
		// the error. State reset happens lazily on the next query.
		s.recordQuery(root, start, dur, reached, edges, obs.OutcomeCancelled, alg)
		return nil, ctx.Err()
	}

	resultParents := s.parents
	if s.perm != nil {
		s.translateParents()
		resultParents = s.extParents
	}
	s.res = Result{
		Parents:        resultParents,
		Root:           root,
		Reached:        reached,
		EdgesTraversed: edges,
		Levels:         s.levels,
		Duration:       dur,
		Algorithm:      alg,
		Threads:        tierWorkers,
		PerLevel:       s.perLevel,
		Trace:          s.coll.Finish(),
	}
	s.hasTouched = true
	s.recordQuery(root, start, dur, reached, edges, obs.OutcomeOK, alg)
	return &s.res, nil
}

// translateParents projects the parent tree of the search that just
// finished from the session's relabeled id space back into caller ids,
// walking the monotone queues — exactly the reached set — so the cost
// is O(touched), not O(n). The entries written here are cleared by the
// next resetState, which walks the same queues.
func (s *Searcher) translateParents() {
	inv, parents, ext := s.inv, s.parents, s.extParents
	if s.q != nil {
		for _, v := range s.q.Slice() {
			ext[inv[v]] = uint32(inv[parents[v]])
		}
	}
	for _, q := range s.qs {
		for _, v := range q.Slice() {
			ext[inv[v]] = uint32(inv[parents[v]])
		}
	}
}

// recordQuery hands one finished (or cancelled) search to the session's
// telemetry hub. The per-level slice is borrowed: the hub copies it only
// when the query is slow enough to capture.
func (s *Searcher) recordQuery(root graph.Vertex, start time.Time, dur time.Duration, reached, edges int64, outcome obs.Outcome, alg Algorithm) {
	if s.o.Telemetry == nil {
		return
	}
	s.o.Telemetry.RecordQuery(s.o.TelemetryShard, obs.QuerySample{
		Root:      uint32(root),
		Start:     start,
		Duration:  dur,
		Levels:    s.levels,
		Reached:   reached,
		Edges:     edges,
		Outcome:   outcome,
		Algorithm: alg.String(),
		PerLevel:  s.levelRecs,
	})
}

// obsCollector readies the observability collector for one search: the
// pooled collector is Reset in place when the tier's worker count is
// unchanged, rebuilt otherwise, and nil when nothing observes the run —
// the nil pointer is what keeps the hot path at a handful of
// predictable nil-checks per level.
func (s *Searcher) obsCollector(workers, sockets int, alg Algorithm) *obs.Collector {
	if !s.o.Trace && s.runTracer == nil {
		return nil
	}
	cfg := obs.Config{
		Workers:   workers,
		Sockets:   sockets,
		Algorithm: alg.String(),
		Trace:     s.o.Trace,
		Tracer:    s.runTracer,
	}
	if s.collCache.Reset(cfg) {
		return s.collCache
	}
	s.collCache = obs.NewCollector(cfg)
	return s.collCache
}

// levelCapture is the telemetry hook: a Tracer that accumulates each
// level's folded breakdown into the session's pooled levelRecs slice,
// from which recordQuery hands the per-level view to the flight
// recorder. Callbacks fire only from the elected level coordinator (one
// goroutine at a time, sequenced by the level barrier), so plain
// appends are safe.
type levelCapture struct{ s *Searcher }

func (c levelCapture) OnLevelStart(level int) {}

func (c levelCapture) OnLevelEnd(level int, b obs.LevelBreakdown) {
	c.s.levelRecs = append(c.s.levelRecs, b)
}

func (c levelCapture) OnRemoteBatch(level, worker, toSocket, tuples int) {}

func (c levelCapture) OnBarrierWait(level, worker int, wait time.Duration) {}

// Close shuts down the worker pool and joins it: when Close returns,
// every pool goroutine has exited and (under PinThreads) restored its
// OS thread's affinity, so a successor Searcher's workers cannot race
// the unpinning. Results returned earlier (and their Parents) remain
// readable; further Search calls fail. Close is idempotent but must not
// run concurrently with Search.
func (s *Searcher) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.gate.wait() // release the pool; workers observe closed and exit
	s.wg.Wait()   // join: unpin deferreds have run when this returns
	return nil
}

// Closed reports whether Close has completed on this Searcher. It is
// meant for owners verifying teardown (e.g. a serving pool draining a
// retired snapshot), not for synchronizing with a concurrent Close.
func (s *Searcher) Closed() bool { return s.closed }
