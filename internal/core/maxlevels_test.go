package core

import (
	"testing"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
)

func TestMaxLevelsBoundsDepthAllTiers(t *testing.T) {
	g := must(gen.Chain(20))
	for _, alg := range []Algorithm{
		AlgSequential, AlgParallelSimple, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing,
	} {
		for _, maxLevels := range []int{1, 3, 7} {
			res := run(t, g, 0, Options{Algorithm: alg, Threads: 4, MaxLevels: maxLevels})
			if res.Levels != maxLevels {
				t.Errorf("%v max=%d: Levels = %d", alg, maxLevels, res.Levels)
			}
			// After exploring maxLevels levels of a chain, vertices
			// 0..maxLevels are discovered (the last level's frontier was
			// expanded, discovering depth maxLevels).
			if res.Reached != int64(maxLevels)+1 {
				t.Errorf("%v max=%d: Reached = %d, want %d", alg, maxLevels, res.Reached, maxLevels+1)
			}
			depths := TreeDepths(res.Parents, 0)
			for v, d := range depths {
				if d != NoDepth && int(d) > maxLevels {
					t.Errorf("%v max=%d: vertex %d at depth %d exceeds bound", alg, maxLevels, v, d)
				}
			}
		}
	}
}

func TestMaxLevelsLargerThanDiameterIsHarmless(t *testing.T) {
	g := must(gen.Chain(5))
	res := run(t, g, 0, Options{Algorithm: AlgSequential, MaxLevels: 100})
	if res.Reached != 5 || res.Levels != 5 {
		t.Errorf("Reached=%d Levels=%d", res.Reached, res.Levels)
	}
}

func TestMaxLevelsZeroMeansUnbounded(t *testing.T) {
	g := must(gen.BinaryTree(6))
	res := run(t, g, 0, Options{Algorithm: AlgSingleSocket, Threads: 2, MaxLevels: 0})
	if res.Reached != int64(g.NumVertices()) {
		t.Errorf("Reached = %d, want all %d", res.Reached, g.NumVertices())
	}
}

func TestMaxLevelsDiscoveredSetMatchesAcrossTiers(t *testing.T) {
	g := must(gen.RMAT(11, 1<<14, gen.GTgraphDefaults, 77))
	ref := run(t, g, 0, Options{Algorithm: AlgSequential, MaxLevels: 3})
	refSet := reachedSet(ref.Parents)
	for _, alg := range []Algorithm{AlgParallelSimple, AlgSingleSocket, AlgMultiSocket, AlgDirectionOptimizing} {
		res := run(t, g, 0, Options{Algorithm: alg, Threads: 8, MaxLevels: 3})
		if got := reachedSet(res.Parents); !sameSet(got, refSet) {
			t.Errorf("%v: depth-3 discovered set differs from sequential (%d vs %d vertices)",
				alg, len(got), len(refSet))
		}
	}
}

func reachedSet(parents []uint32) map[graph.Vertex]bool {
	s := make(map[graph.Vertex]bool)
	for v, p := range parents {
		if p != NoParent {
			s[graph.Vertex(v)] = true
		}
	}
	return s
}

func sameSet(a, b map[graph.Vertex]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
