package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/affinity"
	"mcbfs/internal/bitmap"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
	"mcbfs/internal/topology"
)

// multiSocketBFS is the paper's Algorithm 3, the multi-socket tier.
//
// The graph's vertex range, the parent array and the visited bitmap are
// partitioned into contiguous per-socket blocks (Algorithm 3 line 2).
// A socket's threads only ever mutate their own block, so the atomic
// traffic that Figure 3 shows collapsing across socket boundaries stays
// socket-local. A vertex discovered by a thread of another socket is
// not claimed remotely; instead the (vertex, parent) tuple travels
// through that socket's channel — a FastForward queue with TicketLock
// guarded ends — in batches that amortize the locking (lines 26,
// 28-35).
//
// Each level runs in two phases separated by barriers:
//
//	phase 1: expand the local current queue; local discoveries are
//	         claimed immediately, remote ones batched into channels;
//	phase 2: drain the socket's own channel, claiming the delivered
//	         tuples exactly as local ones.
//
// On the logical machine of this reproduction the "sockets" are
// goroutine groups; the data partitioning, channel wiring and two-phase
// schedule are identical to the paper's.
func multiSocketBFS(g *graph.Graph, root graph.Vertex, o Options) (*Result, error) {
	n := g.NumVertices()
	workers := o.Threads
	sockets := o.Machine.SocketsForThreads(workers)
	part, err := topology.NewPartition(n, sockets)
	if err != nil {
		return nil, err
	}

	parents := newParents(n)
	visited := bitmap.NewAtomic(n)

	coll := newObsCollector(o, workers, sockets, AlgMultiSocket)

	cqs := make([]*queue.ChunkQueue, sockets)
	nqs := make([]*queue.ChunkQueue, sockets)
	channels := make([]*queue.Channel, sockets)
	for s := 0; s < sockets; s++ {
		lo, hi := part.Range(s)
		cap := hi - lo
		if cap < 1 {
			cap = 1
		}
		cqs[s] = queue.NewChunkQueue(cap)
		nqs[s] = queue.NewChunkQueue(cap)
		channels[s] = queue.NewChannel()
		if o.Trace {
			channels[s].EnableStats()
		}
	}
	// prevChan carries the previous level's cumulative channel counters
	// so the coordinator can emit per-level deltas. Touched only by the
	// barrier coordinator between barriers.
	prevChan := make([]queue.ChannelStats, sockets)

	bar := newBarrier(workers)
	var done atomic.Bool
	edgeCounts := make([]int64, workers)
	reachedCounts := make([]int64, workers)
	levels := 0
	var perLevel []LevelStats
	collector := newStatsCollector(o.Instrument, workers, coll)
	levelStart := time.Now()

	start := time.Now()
	parents[root] = uint32(root)
	visited.Set(int(root))
	cqs[part.DetermineSocket(uint32(root))].Push(uint32(root))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if o.PinThreads {
				if unpin, err := affinity.PinToCPU(w); err == nil {
					defer unpin()
				}
			}
			wr := coll.Worker(w)
			var myEdges, myReached int64
			this := o.Machine.SocketOfThread(w, workers)
			myCQ := func() *queue.ChunkQueue { return cqs[this] }
			myNQ := func() *queue.ChunkQueue { return nqs[this] }

			local := make([]uint32, 0, o.LocalBatch)
			remote := make([][]queue.Tuple, sockets)
			for s := range remote {
				remote[s] = make([]queue.Tuple, 0, o.BatchSize)
			}
			recvBuf := make([]queue.Tuple, o.BatchSize)

			// claim runs the double-checked visitation protocol for a
			// vertex owned by this socket and appends winners to the
			// local batch.
			claim := func(v, parent uint32, stats *LevelStats) {
				if !o.DisableDoubleCheck {
					stats.BitmapReads++
					if visited.Get(int(v)) {
						return
					}
				}
				stats.AtomicOps++
				if !visited.TestAndSet(int(v)) {
					parents[v] = parent
					myReached++
					local = append(local, v)
					if len(local) == cap(local) {
						myNQ().PushBatch(local)
						local = local[:0]
					}
				}
			}

			for {
				var stats LevelStats

				// Phase 1: expand the local frontier.
				tp := wr.PhaseStart()
				for {
					chunk := myCQ().PopChunk(o.ChunkSize)
					if chunk == nil {
						break
					}
					for _, u := range chunk {
						nbrs := g.Neighbors(graph.Vertex(u))
						stats.Frontier++
						stats.Edges += int64(len(nbrs))
						for _, v := range nbrs {
							s := part.DetermineSocket(v)
							if s == this {
								claim(v, u, &stats)
								continue
							}
							stats.RemoteSends++
							remote[s] = append(remote[s], queue.Tuple{V: v, Parent: u})
							if len(remote[s]) == cap(remote[s]) {
								channels[s].SendBatch(remote[s])
								wr.RemoteBatch(s, len(remote[s]))
								remote[s] = remote[s][:0]
							}
						}
					}
				}
				for s := range remote {
					channels[s].SendBatch(remote[s])
					wr.RemoteBatch(s, len(remote[s]))
					remote[s] = remote[s][:0]
				}
				wr.PhaseEnd(obs.PhaseLocalScan, tp)

				// All sends for this level are complete once every worker
				// reaches the barrier; only then may anyone drain.
				tp = wr.PhaseStart()
				bar.wait()
				wr.PhaseEnd(obs.PhaseBarrierWait, tp)

				// Phase 2: drain this socket's channel.
				tp = wr.PhaseStart()
				for {
					got := channels[this].ReceiveBatch(recvBuf)
					if got == 0 {
						break
					}
					for _, t := range recvBuf[:got] {
						claim(t.V, t.Parent, &stats)
					}
				}
				nqs[this].PushBatch(local)
				local = local[:0]
				wr.PhaseEnd(obs.PhaseQueueDrain, tp)
				myEdges += stats.Edges
				collector.add(w, stats)

				tp = wr.PhaseStart()
				if bar.wait() {
					collector.fold(&perLevel, time.Since(levelStart))
					levelStart = time.Now()
					if o.Trace {
						// Per-level channel samples: no sends are in
						// flight between these barriers, so the deltas
						// are exact.
						for s := range channels {
							cs := channels[s].Stats()
							coll.AddChannelSample(s, cs.Tuples-prevChan[s].Tuples,
								cs.Batches-prevChan[s].Batches, cs.MaxLen, cs.MaxBatch)
							prevChan[s] = cs
							channels[s].ResetHighWater()
						}
					}
					total := 0
					for s := 0; s < sockets; s++ {
						cqs[s].Reset()
						cqs[s], nqs[s] = nqs[s], cqs[s]
						total += cqs[s].Size()
					}
					levels++
					if total == 0 || (o.MaxLevels > 0 && levels >= o.MaxLevels) {
						done.Store(true)
					}
				}
				wr.PhaseEnd(obs.PhaseBarrierWait, tp)
				if bar.wait() {
					collector.foldPhases(!done.Load())
				}
				wr.NextLevel()
				if done.Load() {
					edgeCounts[w] = myEdges
					reachedCounts[w] = myReached
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var edges, reached int64
	for w := 0; w < workers; w++ {
		edges += edgeCounts[w]
		reached += reachedCounts[w]
	}
	return &Result{
		Parents:        parents,
		Root:           root,
		Reached:        reached + 1,
		EdgesTraversed: edges,
		Levels:         levels,
		Duration:       time.Since(start),
		Algorithm:      AlgMultiSocket,
		Threads:        workers,
		PerLevel:       perLevel,
		Trace:          coll.Finish(),
	}, nil
}
