package core

import (
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/queue"
)

// multiSocketWorker is the paper's Algorithm 3, the multi-socket tier.
//
// The graph's vertex range, the parent array and the visited bitmap are
// partitioned into contiguous per-socket blocks (Algorithm 3 line 2).
// A socket's threads only ever mutate their own block, so the atomic
// traffic that Figure 3 shows collapsing across socket boundaries stays
// socket-local. A vertex discovered by a thread of another socket is
// not claimed remotely; instead the (vertex, parent) tuple travels
// through that socket's channel — a FastForward queue with TicketLock
// guarded ends — in batches that amortize the locking (lines 26,
// 28-35).
//
// Each level runs in two phases separated by barriers:
//
//	phase 1: expand the local current queue; local discoveries are
//	         claimed immediately, remote ones batched into channels;
//	phase 2: drain the socket's own channel, claiming the delivered
//	         tuples exactly as local ones.
//
// On the logical machine of this reproduction the "sockets" are
// goroutine groups; the data partitioning, channel wiring and two-phase
// schedule are identical to the paper's. Each socket's queue is
// monotone — its level window advanced by the coordinator — so the
// union of the per-socket queues is the reached list the session's
// O(touched) reset walks.
func (s *Searcher) multiSocketWorker(w int) {
	ws := &s.ws[w]
	wr := s.coll.Worker(w)
	o := &s.o
	g := s.g
	offs := g.Offsets()
	tgts := g.Targets()
	budget := s.edgeBudget
	hubs := s.hubs
	var myEdges, myReached int64
	this := o.Machine.SocketOfThread(w, s.workers)
	myQ := s.qs[this]
	local := ws.local[:0]
	remote := ws.remote
	recvBuf := ws.recvBuf
	limit := s.sockLimit[this]

	// claim runs the double-checked visitation protocol for a vertex
	// owned by this socket and appends winners to the local batch.
	claim := func(v, parent uint32, stats *LevelStats) {
		if !o.DisableDoubleCheck {
			stats.BitmapReads++
			if s.visited.Get(int(v)) {
				return
			}
		}
		stats.AtomicOps++
		if !s.visited.TestAndSet(int(v)) {
			s.parents[v] = parent
			myReached++
			local = append(local, v)
			if len(local) == cap(local) {
				myQ.PushBatch(local)
				local = local[:0]
			}
		}
	}

	checkpoints := 0
	for {
		var stats LevelStats

		// Phase 1: expand the local frontier.
		tp := wr.PhaseStart()
		for {
			// Cancellation checkpoint. Locally claimed vertices are in
			// local/myQ and survive into the touched list; remote tuples
			// are unclaimed by construction (the receiving socket claims
			// them), so the abort path may drop them.
			if s.aborted(&checkpoints) {
				break
			}
			var chunk []uint32
			if budget > 0 {
				chunk = myQ.PopChunkEdges(o.ChunkSize, budget, limit, offs)
				if chunk == nil {
					// Own window drained: steal a budgeted chunk from
					// the busiest sibling socket's window instead of
					// idling at the phase barrier. The expansion below
					// is symmetric in the expander's own socket —
					// local targets are claimed, remote ones travel
					// through the owner's channel — so a stolen chunk
					// needs no special handling.
					chunk = s.stealChunk(this)
					if chunk != nil {
						stats.Steals++
					}
				}
			} else {
				chunk = myQ.PopChunkBounded(o.ChunkSize, limit)
			}
			posted := false
			for _, u := range chunk {
				if hubs != nil && offs[u+1]-offs[u] > budget {
					hubs.post(u, offs[u], offs[u+1])
					stats.Frontier++
					posted = true
					continue
				}
				nbrs := g.Neighbors(graph.Vertex(u))
				stats.Frontier++
				stats.Edges += int64(len(nbrs))
				for _, v := range nbrs {
					sck := s.part.DetermineSocket(v)
					if sck == this {
						claim(v, u, &stats)
						continue
					}
					stats.RemoteSends++
					remote[sck] = append(remote[sck], queue.Tuple{V: v, Parent: u})
					if len(remote[sck]) == cap(remote[sck]) {
						s.channels[sck].SendBatch(remote[sck])
						wr.RemoteBatch(sck, len(remote[sck]))
						remote[sck] = remote[sck][:0]
					}
				}
			}
			if hubs != nil && (posted || chunk == nil) {
				// Drain the hub board with the claim-or-send expansion.
				did := false
				for {
					u, elo, ehi, ok := hubs.claim(budget)
					if !ok {
						break
					}
					did = true
					stats.Edges += ehi - elo
					for _, v := range tgts[elo:ehi] {
						sck := s.part.DetermineSocket(v)
						if sck == this {
							claim(v, u, &stats)
							continue
						}
						stats.RemoteSends++
						remote[sck] = append(remote[sck], queue.Tuple{V: v, Parent: u})
						if len(remote[sck]) == cap(remote[sck]) {
							s.channels[sck].SendBatch(remote[sck])
							wr.RemoteBatch(sck, len(remote[sck]))
							remote[sck] = remote[sck][:0]
						}
					}
				}
				if chunk == nil && !did {
					break
				}
			} else if chunk == nil {
				break
			}
		}
		// End-of-phase flush of the partial batches, skipping empty
		// ones: in late levels most destinations have nothing pending,
		// and an empty flush is pure overhead — a per-socket call per
		// worker per level and zero-length tracer-hook noise. On abort
		// the batches are dropped rather than sent: their tuples were
		// never claimed anywhere, and phase 2 discards in-flight ones.
		cancelled := s.cancel.Load()
		for sck := range remote {
			if len(remote[sck]) == 0 {
				continue
			}
			if cancelled {
				remote[sck] = remote[sck][:0]
				continue
			}
			s.channels[sck].SendBatch(remote[sck])
			wr.RemoteBatch(sck, len(remote[sck]))
			remote[sck] = remote[sck][:0]
		}
		wr.PhaseEnd(obs.PhaseLocalScan, tp)

		// All sends for this level are complete once every worker
		// reaches the barrier; only then may anyone drain.
		tp = wr.PhaseStart()
		s.bar.wait()
		wr.PhaseEnd(obs.PhaseBarrierWait, tp)

		// Phase 2: drain this socket's channel. The drain must run even
		// on abort — a tuple left in a channel would be claimed by the
		// *next* search and corrupt its tree — but an aborting worker
		// discards instead of claiming, keeping the unwind bounded by
		// what was already sent. Workers of one socket may mix the two
		// modes during an abort race; both leave the channel empty and
		// every claim on the touched list.
		tp = wr.PhaseStart()
		if s.cancel.Load() {
			s.channels[this].DiscardAll()
		} else {
			for {
				got := s.channels[this].ReceiveBatch(recvBuf)
				if got == 0 {
					break
				}
				for _, t := range recvBuf[:got] {
					claim(t.V, t.Parent, &stats)
				}
			}
		}
		myQ.PushBatch(local)
		local = local[:0]
		wr.PhaseEnd(obs.PhaseQueueDrain, tp)
		myEdges += stats.Edges
		s.stats.add(w, stats)

		tp = wr.PhaseStart()
		if s.bar.wait() {
			s.advanceMulti()
		}
		wr.PhaseEnd(obs.PhaseBarrierWait, tp)
		if s.bar.wait() {
			s.stats.foldPhases(!s.done.Load())
		}
		wr.NextLevel()
		if s.done.Load() {
			ws.edges = myEdges
			ws.reached = myReached
			return
		}
		limit = s.sockLimit[this]
	}
}

// stealChunk claims one edge-budgeted chunk from the current-level
// window of the sibling socket queue with the most unconsumed work.
// It rescans on a lost race — the head cursors are monotone within a
// level, so every retry sees strictly less remaining work and the loop
// terminates. Returns nil when every sibling window is drained.
//
// Stealing only moves which worker *expands* a frontier vertex; the
// discovered children still go through claim-or-send, so data ownership
// (parents, bitmap, channels) is untouched and phase-2 drains behave
// exactly as without stealing. The sockLimit entries are written by the
// level coordinator and published by the barrier, so reading them here
// is race-free.
func (s *Searcher) stealChunk(this int) []uint32 {
	offs := s.g.Offsets()
	for {
		best, bestRem := -1, int64(0)
		for sck, q := range s.qs {
			if sck == this {
				continue
			}
			if rem := s.sockLimit[sck] - q.Head(); rem > bestRem {
				best, bestRem = sck, rem
			}
		}
		if best < 0 {
			return nil
		}
		if chunk := s.qs[best].PopChunkEdges(s.o.ChunkSize, s.edgeBudget, s.sockLimit[best], offs); chunk != nil {
			return chunk
		}
	}
}

// advanceMulti is the multi-socket level transition, run by the
// coordinator elected at the closing barrier: sample the channels (no
// sends are in flight between the barriers, so the per-level deltas are
// exact), advance every socket's queue window, decide termination.
func (s *Searcher) advanceMulti() {
	s.checkCancelAtBarrier() // only ever sets done; bookkeeping proceeds
	if s.hubs != nil {
		s.hubs.reset()
	}
	s.stats.fold(&s.perLevel, time.Since(s.levelStart))
	s.levelStart = time.Now()
	if s.chanStats && s.coll != nil {
		for sck, c := range s.channels {
			cs := c.Stats()
			s.coll.AddChannelSample(sck, cs.Tuples-s.prevChan[sck].Tuples,
				cs.Batches-s.prevChan[sck].Batches, cs.MaxLen, cs.MaxBatch)
			s.prevChan[sck] = cs
			c.ResetHighWater()
		}
	}
	var total int64
	for sck, q := range s.qs {
		sz := int64(q.Size())
		total += sz - s.sockLimit[sck]
		s.sockLimit[sck] = sz
	}
	s.levels++
	if total == 0 || (s.maxLevels > 0 && s.levels >= s.maxLevels) {
		s.done.Store(true)
	}
}
