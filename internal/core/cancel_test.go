package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
)

// countdownCtx is a deterministic cancellation source: Err reports
// context.Canceled starting with the (after+1)-th call. SearchContext
// itself polls Err once on entry and the search polls it at every level
// barrier (plus worker chunk checkpoints), so small values of after
// cancel within the first few levels without any timing dependence.
type countdownCtx struct {
	after int64
	calls atomic.Int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// chainPlusIsland builds the reset-property graph: a 1000-vertex chain
// (many levels, so mid-search cancellation lands inside it) plus the
// disconnected edge 1000-1001 whose search exposes any state the
// aborted search left behind.
func chainPlusIsland(t *testing.T) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, 1000)
	for i := 0; i < 999; i++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(i), Dst: graph.Vertex(i + 1)})
	}
	edges = append(edges, graph.Edge{Src: 1000, Dst: 1001})
	directed, err := graph.FromEdges(1002, edges)
	if err != nil {
		t.Fatal(err)
	}
	return directed.Undirected()
}

// expectPristineAfter runs the island search and checks the session sees
// exactly pristine state: the two island vertices claimed, every other
// parent back to NoParent. Any vertex the previous (aborted) search
// claimed but failed to record on its touched list shows up here as a
// stale parent.
func expectPristineAfter(t *testing.T, s *Searcher, when string) {
	t.Helper()
	res, err := s.BFS(1000)
	if err != nil {
		t.Fatalf("%s: island search: %v", when, err)
	}
	if res.Reached != 2 {
		t.Fatalf("%s: island search reached %d vertices, want 2", when, res.Reached)
	}
	for v, p := range res.Parents {
		switch v {
		case 1000, 1001:
			if p != 1000 {
				t.Fatalf("%s: island vertex %d has parent %d, want 1000", when, v, p)
			}
		default:
			if p != NoParent {
				t.Fatalf("%s: stale parent %d for vertex %d after aborted search", when, p, v)
			}
		}
	}
}

// TestSearchContextPreCancelled checks the dead-on-arrival path: a
// context that is already cancelled returns its error before any session
// state is dirtied, and the session keeps answering exactly.
func TestSearchContextPreCancelled(t *testing.T) {
	g := chainPlusIsland(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, v := range sessionVariants {
		t.Run(v.name, func(t *testing.T) {
			s, err := NewSearcher(g, v.opt(g))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			res, err := s.SearchContext(ctx, 0, Query{})
			if res != nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled search: res=%v err=%v, want nil, context.Canceled", res, err)
			}
			expectPristineAfter(t, s, "after DOA search")
			full, err := s.BFS(0)
			if err != nil {
				t.Fatal(err)
			}
			expectSameTree(t, g, full, v.name != "hybrid")
		})
	}
}

// TestSearchContextCancelMidSearch is the satellite regression for the
// partial-touch-set bug: cancel at several depths into the chain —
// including right at level 0, where only the root's seeded parent entry
// exists — then prove the next queries on the same session match a
// fresh one exactly, for every tier.
func TestSearchContextCancelMidSearch(t *testing.T) {
	g := chainPlusIsland(t)
	for _, v := range sessionVariants {
		t.Run(v.name, func(t *testing.T) {
			s, err := NewSearcher(g, v.opt(g))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// after=1 admits the entry poll and cancels at the very first
			// in-search poll; larger values land deeper into the chain.
			for _, after := range []int64{1, 3, 16} {
				ctx := &countdownCtx{after: after}
				res, err := s.SearchContext(ctx, 0, Query{})
				if res != nil {
					t.Fatalf("after=%d: cancelled search returned a result", after)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
				}
				expectPristineAfter(t, s, "after mid-search cancel")
				full, err := s.BFS(0)
				if err != nil {
					t.Fatal(err)
				}
				expectSameTree(t, g, full, v.name != "hybrid")
			}
		})
	}
}

// TestSearchContextPostCompletion checks that cancelling after a search
// completed affects nothing: the returned Result stays valid and the
// session keeps serving.
func TestSearchContextPostCompletion(t *testing.T) {
	g := chainPlusIsland(t)
	s, err := NewSearcher(g, Options{Algorithm: AlgSingleSocket, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	res, err := s.SearchContext(ctx, 0, Query{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if res.Reached != 1000 {
		t.Fatalf("reached %d, want 1000", res.Reached)
	}
	if err := ValidateTree(g, 0, res.Parents); err != nil {
		t.Fatalf("tree invalid after post-completion cancel: %v", err)
	}
	full, err := s.SearchContext(context.Background(), 0, Query{})
	if err != nil {
		t.Fatal(err)
	}
	expectSameTree(t, g, full, true)
}

// TestSearchContextDeadlineBounded checks the wall-clock promise: a
// deadline that fires mid-search unwinds promptly (well under the time
// the full search would need), and the session then answers exactly.
func TestSearchContextDeadlineBounded(t *testing.T) {
	// A long chain maximizes levels: the uncancelled search crosses
	// ~30000 level barriers, so a few-millisecond deadline is guaranteed
	// to fire mid-search, and the barrier-level cancellation poll must
	// unwind it in a handful of levels.
	g := must(gen.Chain(30000)).Undirected()
	s, err := NewSearcher(g, Options{Algorithm: AlgSingleSocket, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := s.SearchContext(ctx, 0, Query{})
	elapsed := time.Since(start)
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline search: res=%v err=%v, want nil, context.DeadlineExceeded", res, err)
	}
	// Generous bound: detection happens within one level of the 2ms
	// deadline, so anything near a second means the poll is broken.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled search took %v to unwind", elapsed)
	}

	full, err := s.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	ref := run(t, g, 0, Options{Algorithm: AlgSequential, Threads: 1})
	if full.Reached != ref.Reached || full.Levels != ref.Levels {
		t.Fatalf("after deadline abort: reached %d levels %d, fresh BFS %d/%d",
			full.Reached, full.Levels, ref.Reached, ref.Levels)
	}
}

// TestSearcherCloseJoinsWorkers is the Close-join regression (the
// PinThreads unpin race): churn pinned sessions back to back and check
// no pool goroutine outlives its Close.
func TestSearcherCloseJoinsWorkers(t *testing.T) {
	g := must(gen.Uniform(5000, 8, 3))
	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		s, err := NewSearcher(g, Options{Algorithm: AlgSingleSocket, Threads: 4, PinThreads: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.BFS(graph.Vertex(i * 97 % 5000)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Close joins: every worker goroutine (and its deferred unpin)
		// has finished before the next, equally pinned session starts.
		if n := runtime.NumGoroutine(); n > base {
			t.Fatalf("iteration %d: %d goroutines alive after Close, started with %d", i, n, base)
		}
	}
}
