package core

import (
	"sync/atomic"

	"mcbfs/internal/graph"
)

// Degree-aware scheduling support: hub splitting.
//
// With edge-budgeted chunks (queue.PopChunkEdges) a frontier vertex
// whose degree exceeds the budget comes back as a single-vertex chunk —
// the queue cannot subdivide a vertex. The hubBoard can: the popping
// worker posts the hub's full adjacency range on the board instead of
// scanning it, and every worker (including the poster) claims bounded
// edge sub-ranges off the board with a CAS on the task's cursor. Parent
// claims in the top-down tiers already tolerate concurrent writers, so
// two workers expanding disjoint edge ranges of one hub need no further
// coordination.
//
// The board is a fixed array sized at session construction to the exact
// number of vertices whose degree exceeds the budget — each such vertex
// enters the frontier at most once per search, so the board can never
// overflow. Posts publish the task by storing its end cursor last: a
// scanner that observes end == 0 skips the slot as not-yet-ready (a hub
// range always has end > 0), and the posting worker itself drains the
// board before reaching the level barrier, so a skipped slot costs
// balance, never correctness.
type hubBoard struct {
	n     atomic.Int64 // posts this level
	_     [56]byte
	tasks []hubTask
}

// hubTask is one posted hub: vertex v with unclaimed adjacency range
// [cur, end) in CSR target-index space. Padded to a cache line so
// concurrent cursor CASes on adjacent tasks never collide.
type hubTask struct {
	v   uint32
	_   uint32
	cur atomic.Int64
	end atomic.Int64
	_   [40]byte
}

// newHubBoard sizes a board for g under the given budget. The O(n)
// degree scan runs once per session; a tiny budget makes many vertices
// "hubs" and costs one cache line each, which Options.EdgeBudget
// documents.
func newHubBoard(g *graph.Graph, budget int64) *hubBoard {
	offs := g.Offsets()
	count := 0
	for v := 0; v+1 < len(offs); v++ {
		if offs[v+1]-offs[v] > budget {
			count++
		}
	}
	return &hubBoard{tasks: make([]hubTask, count)}
}

// post publishes hub v's adjacency range [lo, hi) for cooperative
// expansion. The caller must be the worker that popped v off the
// frontier (so each hub is posted once), and must drain the board
// before its next level barrier.
func (b *hubBoard) post(v uint32, lo, hi int64) {
	i := b.n.Add(1) - 1
	t := &b.tasks[i]
	t.v = v
	t.cur.Store(lo)
	t.end.Store(hi) // publish last: end > 0 marks the slot ready
}

// claim carves up to budget edges off any posted task, returning the
// hub and the claimed target-index range. ok is false when no posted
// task has unclaimed edges (not-yet-ready posts may be skipped; see the
// type comment for why that is safe).
func (b *hubBoard) claim(budget int64) (v uint32, lo, hi int64, ok bool) {
	n := int(b.n.Load())
	for i := 0; i < n; i++ {
		t := &b.tasks[i]
		end := t.end.Load()
		if end == 0 {
			continue
		}
		for {
			c := t.cur.Load()
			if c >= end {
				break
			}
			nc := c + budget
			if nc > end {
				nc = end
			}
			if t.cur.CompareAndSwap(c, nc) {
				return t.v, c, nc, true
			}
		}
	}
	return 0, 0, 0, false
}

// reset clears the board between levels (and in the session reset path,
// where a cancelled search may have left half-claimed tasks). Only the
// end cursors of used slots are touched, so the cost is O(posts), not
// O(capacity). Must run while workers are parked — the level barrier or
// the session's serial section provides that exclusion.
func (b *hubBoard) reset() {
	n := int(b.n.Load())
	for i := 0; i < n; i++ {
		b.tasks[i].end.Store(0)
	}
	b.n.Store(0)
}
