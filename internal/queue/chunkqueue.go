package queue

import (
	"fmt"
	"sync/atomic"
)

// ChunkQueue is the shared vertex queue of the BFS (the paper's CQ and
// NQ). It is a fixed-capacity array of vertex ids with two atomic
// cursors:
//
//   - producers claim write ranges with one fetch-and-add on the tail
//     (the paper's LockedEnqueue, batched);
//   - consumers claim read chunks with one fetch-and-add on the head
//     (the paper's LockedDequeue, batched).
//
// Within a BFS level the queue is append-only and consume-only, and the
// level barrier orders all of one level's writes before the next level's
// reads, which is exactly the paper's usage. A chunk claimed by a
// consumer belongs to it exclusively, so element accesses need no
// further synchronization on x86-like or Go-memory-model machines
// (the atomic cursor operations publish the writes).
type ChunkQueue struct {
	buf  []uint32
	head atomic.Int64
	_    pad
	tail atomic.Int64
	_    pad
}

// NewChunkQueue returns a queue that can hold up to capacity vertices.
func NewChunkQueue(capacity int) *ChunkQueue {
	return &ChunkQueue{buf: make([]uint32, capacity)}
}

// PushBatch appends vals, claiming the destination range with a single
// atomic add. It panics if the queue would overflow — in the BFS the
// capacity is the vertex count and each vertex is enqueued at most once,
// so overflow indicates a correctness bug, not a recoverable condition.
func (q *ChunkQueue) PushBatch(vals []uint32) {
	if len(vals) == 0 {
		return
	}
	end := q.tail.Add(int64(len(vals)))
	if end > int64(len(q.buf)) {
		panic(fmt.Sprintf("queue: ChunkQueue overflow pushing %d: head=%d tail=%d cap=%d",
			len(vals), q.head.Load(), end-int64(len(vals)), len(q.buf)))
	}
	copy(q.buf[end-int64(len(vals)):end], vals)
}

// Push appends one vertex.
func (q *ChunkQueue) Push(v uint32) {
	end := q.tail.Add(1)
	if end > int64(len(q.buf)) {
		panic(fmt.Sprintf("queue: ChunkQueue overflow pushing 1: head=%d tail=%d cap=%d",
			q.head.Load(), end-1, len(q.buf)))
	}
	q.buf[end-1] = v
}

// PopChunk claims up to max elements and returns them as a subslice of
// the queue's buffer (valid until Reset). It returns nil when the queue
// is exhausted. The claimed elements are exclusively owned by the
// caller.
func (q *ChunkQueue) PopChunk(max int) []uint32 {
	return q.PopChunkBounded(max, q.tail.Load())
}

// PopChunkBounded claims up to max elements whose index is below limit.
// It is the primitive behind the monotone-queue BFS: one queue holds
// every level of a search, producers append the next level past limit
// while consumers pop the current level [head, limit), and the level
// barrier advances limit. Returns nil once the window is exhausted.
func (q *ChunkQueue) PopChunkBounded(max int, limit int64) []uint32 {
	if max <= 0 {
		return nil
	}
	for {
		h := q.head.Load()
		if h >= limit {
			return nil
		}
		end := h + int64(max)
		if end > limit {
			end = limit
		}
		if q.head.CompareAndSwap(h, end) {
			return q.buf[h:end]
		}
	}
}

// PopChunkEdges claims up to max elements whose index is below limit,
// additionally bounded by an adjacency budget: the chunk is cut as soon
// as the claimed vertices' summed out-degrees (read from the CSR offsets
// array) reach budget. It always claims at least one vertex when the
// window is non-empty, so a vertex whose degree alone exceeds the budget
// comes back as a single-element chunk — the caller's cue to split its
// edge range across workers. Degrees are summed before the CAS, so a
// lost race rescans from the new head; the head is monotone within a
// level, making the loop ABA-free.
func (q *ChunkQueue) PopChunkEdges(max int, budget, limit int64, offsets []int64) []uint32 {
	if max <= 0 {
		return nil
	}
	for {
		h := q.head.Load()
		if h >= limit {
			return nil
		}
		hi := h + int64(max)
		if hi > limit {
			hi = limit
		}
		end := h + 1
		sum := offsets[q.buf[h]+1] - offsets[q.buf[h]]
		for end < hi && sum < budget {
			v := q.buf[end]
			d := offsets[v+1] - offsets[v]
			if sum+d > budget {
				break
			}
			sum += d
			end++
		}
		if q.head.CompareAndSwap(h, end) {
			return q.buf[h:end]
		}
	}
}

// Head returns the consume cursor: the number of elements popped (or
// skipped) since the last Reset. Together with a level limit it tells a
// would-be thief how much of a sibling queue's window remains.
func (q *ChunkQueue) Head() int64 { return q.head.Load() }

// SkipTo positions the consume cursor at index h, abandoning anything
// before it. The direction-optimizing BFS uses it after bottom-up
// levels, which read the frontier by Window rather than by popping. It
// must not race with PopChunk; the level barrier provides exclusion.
func (q *ChunkQueue) SkipTo(h int64) {
	q.head.Store(h)
}

// Window returns the pushed contents [lo, hi). Like Slice it aliases
// the queue's buffer; it is the per-level view of a monotone queue.
func (q *ChunkQueue) Window(lo, hi int64) []uint32 {
	return q.buf[lo:hi]
}

// Len returns the number of unconsumed elements.
func (q *ChunkQueue) Len() int {
	n := q.tail.Load() - q.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Size returns the total number of elements pushed since the last Reset.
func (q *ChunkQueue) Size() int { return int(q.tail.Load()) }

// Cap returns the queue capacity.
func (q *ChunkQueue) Cap() int { return len(q.buf) }

// Reset empties the queue for reuse in the next BFS level. It must not
// race with Push or Pop; the level barrier provides that exclusion.
func (q *ChunkQueue) Reset() {
	q.head.Store(0)
	q.tail.Store(0)
}

// Slice returns the pushed contents [0, Size()). It is meant for the
// level swap: after a barrier, the next-queue's contents become the
// current level's work without copying.
func (q *ChunkQueue) Slice() []uint32 {
	return q.buf[:q.tail.Load()]
}
