package queue

// Tuple is the payload of the inter-socket channel: a discovered vertex
// and the vertex that discovered it (its BFS parent candidate). The pair
// packs into one uint64 ring slot because vertex ids are < 2^31.
type Tuple struct {
	V, Parent uint32
}

func packTuple(t Tuple) uint64 {
	return uint64(t.V)<<32 | uint64(t.Parent)
}

func unpackTuple(x uint64) Tuple {
	return Tuple{V: uint32(x >> 32), Parent: uint32(x)}
}

// Channel is the paper's inter-socket communication channel: a
// FastForward SPSC queue whose producer end and consumer end are each
// guarded by a Ticket Lock, so any thread of the sending socket can
// enqueue and any thread of the receiving socket can dequeue. All
// operations are batched — the paper found per-vertex locking too
// expensive and reports ~30 ns per inserted vertex once batching
// amortizes the lock handoff.
//
// The underlying queue is unbounded (segmented), so a producer can push
// an entire BFS level before the consumer drains any of it; in the
// two-phase schedule of Algorithm 3 nothing reads the channel until the
// level's synchronization point.
type Channel struct {
	prodLock TicketLock
	consLock TicketLock
	q        *SPSC
	// stats is nil unless EnableStats was called; the send path then
	// updates it under the producer lock it already holds, so enabling
	// statistics adds no atomic operations — only one predictable
	// nil-check per batch.
	stats *ChannelStats
}

// ChannelStats are a channel's cumulative flush statistics.
type ChannelStats struct {
	// Batches counts non-empty SendBatch calls; Tuples the tuples they
	// carried.
	Batches int64
	Tuples  int64
	// MaxBatch is the largest single flush; MaxLen the occupancy
	// high-water mark observed after a flush (since the last
	// ResetHighWater).
	MaxBatch int
	MaxLen   int
}

// NewChannel returns an empty channel.
func NewChannel() *Channel {
	return &Channel{q: NewSPSC()}
}

// EnableStats turns on flush accounting. Call it before the channel is
// shared between goroutines.
func (c *Channel) EnableStats() {
	c.stats = &ChannelStats{}
}

// Stats snapshots the cumulative statistics (zero value when stats are
// not enabled). It takes the producer lock, so it is safe to call
// concurrently with senders.
func (c *Channel) Stats() ChannelStats {
	if c.stats == nil {
		return ChannelStats{}
	}
	c.prodLock.Lock()
	s := *c.stats
	c.prodLock.Unlock()
	return s
}

// ResetHighWater clears the occupancy and batch high-water marks (for
// per-level sampling); the cumulative counters are untouched.
func (c *Channel) ResetHighWater() {
	if c.stats == nil {
		return
	}
	c.prodLock.Lock()
	c.stats.MaxLen = 0
	c.stats.MaxBatch = 0
	c.prodLock.Unlock()
}

// SendBatch enqueues every tuple in batch under one producer-lock
// acquisition.
func (c *Channel) SendBatch(batch []Tuple) {
	if len(batch) == 0 {
		return
	}
	c.prodLock.Lock()
	for _, t := range batch {
		c.q.Enqueue(packTuple(t))
	}
	if c.stats != nil {
		c.stats.Batches++
		c.stats.Tuples += int64(len(batch))
		if len(batch) > c.stats.MaxBatch {
			c.stats.MaxBatch = len(batch)
		}
		if n := c.q.Len(); n > c.stats.MaxLen {
			c.stats.MaxLen = n
		}
	}
	c.prodLock.Unlock()
}

// Send enqueues a single tuple. Prefer SendBatch in hot paths.
func (c *Channel) Send(t Tuple) {
	c.prodLock.Lock()
	c.q.Enqueue(packTuple(t))
	if c.stats != nil {
		c.stats.Batches++
		c.stats.Tuples++
		if c.stats.MaxBatch < 1 {
			c.stats.MaxBatch = 1
		}
		if n := c.q.Len(); n > c.stats.MaxLen {
			c.stats.MaxLen = n
		}
	}
	c.prodLock.Unlock()
}

// ReceiveBatch dequeues up to len(buf) tuples into buf under one
// consumer-lock acquisition and returns the number received.
func (c *Channel) ReceiveBatch(buf []Tuple) int {
	if len(buf) == 0 {
		return 0
	}
	c.consLock.Lock()
	n := 0
	for n < len(buf) {
		x, ok := c.q.Dequeue()
		if !ok {
			break
		}
		buf[n] = unpackTuple(x)
		n++
	}
	c.consLock.Unlock()
	return n
}

// DiscardAll dequeues and drops everything currently in the channel,
// returning the number of tuples discarded. It is the abort path of a
// cancelled multi-socket search: in-flight tuples are unclaimed by
// construction, so dropping them (rather than claiming them into the
// touched set) bounds the unwind without leaking state into the next
// search. Safe to call concurrently with ReceiveBatch — both ends
// drain under the consumer lock.
func (c *Channel) DiscardAll() int {
	c.consLock.Lock()
	n := 0
	for {
		if _, ok := c.q.Dequeue(); !ok {
			break
		}
		n++
	}
	c.consLock.Unlock()
	return n
}

// Len returns the approximate number of queued tuples.
func (c *Channel) Len() int { return c.q.Len() }
