// Package queue provides the synchronization and communication
// primitives underneath the multi-socket BFS:
//
//   - TicketLock: the fair spinlock of Sridharan et al. (SPAA'07) the
//     paper uses to guard channel endpoints;
//   - SPSC: a FastForward-style single-producer/single-consumer
//     lock-free ring (Giacomoni et al., PPoPP'08), extended with linked
//     segments so a level's worth of remote vertices never deadlocks a
//     fixed-capacity ring;
//   - Channel: the paper's inter-socket communication channel — an SPSC
//     queue whose producer and consumer ends are each guarded by a
//     TicketLock, with batched insert/remove to amortize locking (the
//     paper reports ~30 ns per vertex inserted, all costs included);
//   - ChunkQueue: the shared current/next vertex queue (CQ/NQ) with
//     atomic cursor claiming, the Go realization of the paper's
//     LockedDequeue/LockedEnqueue.
package queue

import (
	"runtime"
	"sync/atomic"
)

// cacheLine is the coherence granularity the paddings below target.
const cacheLine = 64

type pad [cacheLine]byte

// TicketLock is a fair FIFO spinlock. Acquirers take a ticket with one
// atomic fetch-and-add and spin until the serving counter reaches it, so
// waiters are served in arrival order and the lock word never bounces
// between more than two caches per handoff.
//
// The zero value is an unlocked TicketLock. It must not be copied after
// first use.
type TicketLock struct {
	next atomic.Uint64
	_    pad
	serv atomic.Uint64
	_    pad
}

// Lock acquires the lock, spinning with cooperative yields. On a
// machine with fewer cores than spinners the yield keeps forward
// progress (important under GOMAXPROCS=1, where a pure spin would
// live-lock the holder out of the scheduler).
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	for spins := 0; l.serv.Load() != ticket; spins++ {
		if spins >= 16 {
			runtime.Gosched()
		}
	}
}

// TryLock acquires the lock if it is free and reports success. It only
// succeeds when no other goroutine holds or is queued for the lock.
func (l *TicketLock) TryLock() bool {
	t := l.serv.Load()
	return l.next.CompareAndSwap(t, t+1)
}

// Unlock releases the lock. It must only be called by the current
// holder; the ticket discipline makes a double-unlock corrupt fairness
// rather than panic, so callers must be exact.
func (l *TicketLock) Unlock() {
	l.serv.Add(1)
}
