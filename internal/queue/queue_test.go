package queue

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// --- TicketLock ---

func TestTicketLockMutualExclusion(t *testing.T) {
	var l TicketLock
	counter := 0
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, goroutines*iters)
	}
}

func TestTicketLockTryLock(t *testing.T) {
	var l TicketLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestTicketLockFIFOUnderSequentialAcquire(t *testing.T) {
	// With a single goroutine, repeated Lock/Unlock must never hang and
	// must preserve the ticket discipline across many cycles (counter
	// wraps are 2^64 away; this exercises the basic progression).
	var l TicketLock
	for i := 0; i < 10000; i++ {
		l.Lock()
		l.Unlock()
	}
}

// --- SPSC ---

func TestSPSCSequentialFIFO(t *testing.T) {
	q := NewSPSC()
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(i * 3)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d failed", i)
		}
		if v != i*3 {
			t.Fatalf("Dequeue %d = %d, want %d", i, v, i*3)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("Dequeue on empty queue succeeded")
	}
}

func TestSPSCEmptyInitially(t *testing.T) {
	q := NewSPSC()
	if _, ok := q.Dequeue(); ok {
		t.Error("fresh queue not empty")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

func TestSPSCZeroValue(t *testing.T) {
	// Value 0 must round-trip despite the zero-means-empty encoding.
	q := NewSPSC()
	q.Enqueue(0)
	v, ok := q.Dequeue()
	if !ok || v != 0 {
		t.Errorf("Dequeue = (%d, %v), want (0, true)", v, ok)
	}
}

func TestSPSCMaxValue(t *testing.T) {
	q := NewSPSC()
	q.Enqueue(maxValue)
	v, ok := q.Dequeue()
	if !ok || v != maxValue {
		t.Errorf("Dequeue = (%d, %v), want (%d, true)", v, ok, uint64(maxValue))
	}
}

func TestSPSCRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue(maxValue+1) did not panic")
		}
	}()
	NewSPSC().Enqueue(maxValue + 1)
}

func TestSPSCSegmentOverflow(t *testing.T) {
	// Enqueue several segments' worth without draining; order must hold.
	q := NewSPSC()
	const n = segSize*3 + 17
	for i := uint64(0); i < n; i++ {
		q.Enqueue(i)
	}
	if q.Len() != n {
		t.Errorf("Len = %d, want %d", q.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("queue should be empty")
	}
}

func TestSPSCInterleavedWrap(t *testing.T) {
	// Exercise in-segment wraparound: fill half, drain half, repeatedly,
	// crossing the segment boundary many times.
	q := NewSPSC()
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < segSize/2+13; i++ {
			q.Enqueue(next)
			next++
		}
		for i := 0; i < segSize/2+13; i++ {
			v, ok := q.Dequeue()
			if !ok || v != expect {
				t.Fatalf("round %d: Dequeue = (%d, %v), want %d", round, v, ok, expect)
			}
			expect++
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	q := NewSPSC()
	const n = 200000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < n; i++ {
			q.Enqueue(i)
		}
	}()
	expect := uint64(0)
	for expect < n {
		v, ok := q.Dequeue()
		if !ok {
			continue
		}
		if v != expect {
			t.Fatalf("out of order: got %d, want %d", v, expect)
		}
		expect++
	}
	<-done
	if _, ok := q.Dequeue(); ok {
		t.Error("extra element after consuming all")
	}
}

func TestQuickSPSCMirrorsSliceQueue(t *testing.T) {
	f := func(ops []uint16) bool {
		q := NewSPSC()
		var model []uint64
		for _, op := range ops {
			if op%2 == 0 {
				v := uint64(op)
				q.Enqueue(v)
				model = append(model, v)
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Channel ---

func TestChannelRoundTrip(t *testing.T) {
	c := NewChannel()
	in := []Tuple{{V: 1, Parent: 2}, {V: 0, Parent: 0}, {V: 1<<31 - 1, Parent: 7}}
	c.SendBatch(in)
	buf := make([]Tuple, 10)
	n := c.ReceiveBatch(buf)
	if n != len(in) {
		t.Fatalf("ReceiveBatch = %d, want %d", n, len(in))
	}
	for i := range in {
		if buf[i] != in[i] {
			t.Errorf("tuple %d = %+v, want %+v", i, buf[i], in[i])
		}
	}
}

func TestChannelEmptyReceive(t *testing.T) {
	c := NewChannel()
	buf := make([]Tuple, 4)
	if n := c.ReceiveBatch(buf); n != 0 {
		t.Errorf("ReceiveBatch on empty channel = %d", n)
	}
	if n := c.ReceiveBatch(nil); n != 0 {
		t.Errorf("ReceiveBatch with nil buffer = %d", n)
	}
	c.SendBatch(nil) // must not panic
}

func TestChannelSingleSend(t *testing.T) {
	c := NewChannel()
	c.Send(Tuple{V: 9, Parent: 4})
	buf := make([]Tuple, 1)
	if n := c.ReceiveBatch(buf); n != 1 || buf[0] != (Tuple{V: 9, Parent: 4}) {
		t.Errorf("got n=%d buf[0]=%+v", n, buf[0])
	}
}

func TestChannelPartialReceive(t *testing.T) {
	c := NewChannel()
	var in []Tuple
	for i := uint32(0); i < 100; i++ {
		in = append(in, Tuple{V: i, Parent: i + 1})
	}
	c.SendBatch(in)
	buf := make([]Tuple, 7)
	var got []Tuple
	for {
		n := c.ReceiveBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != 100 {
		t.Fatalf("received %d tuples, want 100", len(got))
	}
	for i := range got {
		if got[i] != in[i] {
			t.Errorf("tuple %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestChannelManyProducersManyConsumers(t *testing.T) {
	// The paper's configuration: all threads of one socket produce, all
	// threads of another consume. Every tuple sent must arrive exactly
	// once.
	c := NewChannel()
	const producers, consumers = 4, 4
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]Tuple, 0, 64)
			for i := 0; i < perProducer; i++ {
				batch = append(batch, Tuple{V: uint32(p*perProducer + i), Parent: uint32(p)})
				if len(batch) == cap(batch) {
					c.SendBatch(batch)
					batch = batch[:0]
				}
			}
			c.SendBatch(batch)
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[uint32]bool)
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < consumers; r++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			buf := make([]Tuple, 64)
			for {
				n := c.ReceiveBatch(buf)
				if n == 0 {
					select {
					case <-stop:
						// Final drain after producers finish.
						for {
							n := c.ReceiveBatch(buf)
							if n == 0 {
								return
							}
							mu.Lock()
							for _, tp := range buf[:n] {
								if seen[tp.V] {
									t.Errorf("duplicate tuple %d", tp.V)
								}
								seen[tp.V] = true
							}
							mu.Unlock()
						}
					default:
						continue
					}
				}
				mu.Lock()
				for _, tp := range buf[:n] {
					if seen[tp.V] {
						t.Errorf("duplicate tuple %d", tp.V)
					}
					seen[tp.V] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Errorf("received %d distinct tuples, want %d", len(seen), producers*perProducer)
	}
}

func TestChannelStats(t *testing.T) {
	c := NewChannel()
	// Stats off: everything reads as zero.
	c.SendBatch([]Tuple{{V: 1}})
	if s := c.Stats(); s != (ChannelStats{}) {
		t.Errorf("stats without EnableStats = %+v", s)
	}

	c = NewChannel()
	c.EnableStats()
	c.SendBatch(nil) // empty flushes are not batches
	c.SendBatch([]Tuple{{V: 1}, {V: 2}, {V: 3}})
	c.SendBatch([]Tuple{{V: 4}})
	c.Send(Tuple{V: 5})
	s := c.Stats()
	if s.Batches != 3 || s.Tuples != 5 {
		t.Errorf("batches=%d tuples=%d, want 3/5", s.Batches, s.Tuples)
	}
	if s.MaxBatch != 3 {
		t.Errorf("MaxBatch = %d, want 3", s.MaxBatch)
	}
	if s.MaxLen != 5 {
		t.Errorf("MaxLen = %d, want 5 (nothing drained yet)", s.MaxLen)
	}

	// High-water marks reset; cumulative counters survive.
	c.ResetHighWater()
	s = c.Stats()
	if s.MaxBatch != 0 || s.MaxLen != 0 {
		t.Errorf("high-water not reset: %+v", s)
	}
	if s.Batches != 3 || s.Tuples != 5 {
		t.Errorf("cumulative counters lost on reset: %+v", s)
	}

	// Draining then sending again: MaxLen reflects post-drain occupancy.
	buf := make([]Tuple, 8)
	c.ReceiveBatch(buf)
	c.SendBatch([]Tuple{{V: 6}})
	if s = c.Stats(); s.MaxLen != 1 {
		t.Errorf("MaxLen after drain+send = %d, want 1", s.MaxLen)
	}
}

func TestQuickTuplePackRoundTrip(t *testing.T) {
	f := func(v, p uint32) bool {
		v &= 1<<31 - 1
		tu := Tuple{V: v, Parent: p}
		return unpackTuple(packTuple(tu)) == tu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- ChunkQueue ---

func TestChunkQueuePushPop(t *testing.T) {
	q := NewChunkQueue(100)
	q.Push(5)
	q.PushBatch([]uint32{6, 7, 8})
	if q.Len() != 4 || q.Size() != 4 {
		t.Fatalf("Len=%d Size=%d, want 4, 4", q.Len(), q.Size())
	}
	chunk := q.PopChunk(2)
	if len(chunk) != 2 || chunk[0] != 5 || chunk[1] != 6 {
		t.Fatalf("PopChunk = %v", chunk)
	}
	chunk = q.PopChunk(10)
	if len(chunk) != 2 || chunk[0] != 7 || chunk[1] != 8 {
		t.Fatalf("second PopChunk = %v", chunk)
	}
	if q.PopChunk(1) != nil {
		t.Error("PopChunk on drained queue returned data")
	}
}

func TestChunkQueuePopChunkZeroMax(t *testing.T) {
	q := NewChunkQueue(10)
	q.Push(1)
	if q.PopChunk(0) != nil {
		t.Error("PopChunk(0) returned data")
	}
	if q.PopChunk(-1) != nil {
		t.Error("PopChunk(-1) returned data")
	}
}

func TestChunkQueueReset(t *testing.T) {
	q := NewChunkQueue(10)
	q.PushBatch([]uint32{1, 2, 3})
	q.PopChunk(1)
	q.Reset()
	if q.Len() != 0 || q.Size() != 0 {
		t.Errorf("after Reset: Len=%d Size=%d", q.Len(), q.Size())
	}
	q.Push(9)
	chunk := q.PopChunk(5)
	if len(chunk) != 1 || chunk[0] != 9 {
		t.Errorf("after Reset PopChunk = %v", chunk)
	}
}

func TestChunkQueueOverflowPanics(t *testing.T) {
	q := NewChunkQueue(2)
	q.PushBatch([]uint32{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Push(3)
}

func TestChunkQueueSlice(t *testing.T) {
	q := NewChunkQueue(10)
	q.PushBatch([]uint32{4, 5, 6})
	s := q.Slice()
	if len(s) != 3 || s[0] != 4 || s[2] != 6 {
		t.Errorf("Slice = %v", s)
	}
}

func TestChunkQueueConcurrentProducers(t *testing.T) {
	const producers = 8
	const per = 1000
	q := NewChunkQueue(producers * per)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]uint32, 0, 32)
			for i := 0; i < per; i++ {
				batch = append(batch, uint32(p*per+i))
				if len(batch) == cap(batch) {
					q.PushBatch(batch)
					batch = batch[:0]
				}
			}
			q.PushBatch(batch)
		}(p)
	}
	wg.Wait()
	if q.Size() != producers*per {
		t.Fatalf("Size = %d, want %d", q.Size(), producers*per)
	}
	seen := make([]bool, producers*per)
	for {
		chunk := q.PopChunk(64)
		if chunk == nil {
			break
		}
		for _, v := range chunk {
			if seen[v] {
				t.Fatalf("value %d appeared twice", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("value %d missing", v)
		}
	}
}

func TestChunkQueueConcurrentConsumers(t *testing.T) {
	const n = 10000
	q := NewChunkQueue(n)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	q.PushBatch(vals)
	const consumers = 8
	var mu sync.Mutex
	seen := make([]bool, n)
	var wg sync.WaitGroup
	for cns := 0; cns < consumers; cns++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				chunk := q.PopChunk(17)
				if chunk == nil {
					return
				}
				mu.Lock()
				for _, v := range chunk {
					if seen[v] {
						t.Errorf("value %d claimed twice", v)
					}
					seen[v] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for v, s := range seen {
		if !s {
			t.Fatalf("value %d never claimed", v)
		}
	}
}

// --- benchmarks ---

func BenchmarkSPSCEnqueueDequeue(b *testing.B) {
	q := NewSPSC()
	for i := 0; i < b.N; i++ {
		q.Enqueue(uint64(i))
		q.Dequeue()
	}
}

func BenchmarkChannelBatch64(b *testing.B) {
	c := NewChannel()
	batch := make([]Tuple, 64)
	for i := range batch {
		batch[i] = Tuple{V: uint32(i), Parent: uint32(i)}
	}
	buf := make([]Tuple, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SendBatch(batch)
		c.ReceiveBatch(buf)
	}
}

// BenchmarkChannelPerVertexCost measures the amortized per-vertex cost
// of the batched channel, the paper's ~30 ns/vertex claim.
func BenchmarkChannelPerVertexCost(b *testing.B) {
	c := NewChannel()
	const batchSize = 64
	batch := make([]Tuple, batchSize)
	buf := make([]Tuple, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		c.SendBatch(batch)
		c.ReceiveBatch(buf)
	}
}

func BenchmarkTicketLockUncontended(b *testing.B) {
	var l TicketLock
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkChunkQueuePushPop(b *testing.B) {
	q := NewChunkQueue(1 << 16)
	batch := make([]uint32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PushBatch(batch)
		for q.PopChunk(64) != nil {
		}
		q.Reset()
	}
}

func TestChannelLen(t *testing.T) {
	c := NewChannel()
	if c.Len() != 0 {
		t.Errorf("fresh channel Len = %d", c.Len())
	}
	c.SendBatch([]Tuple{{V: 1}, {V: 2}, {V: 3}})
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	buf := make([]Tuple, 2)
	c.ReceiveBatch(buf)
	if c.Len() != 1 {
		t.Errorf("Len after partial receive = %d, want 1", c.Len())
	}
}

func TestChunkQueueCapAndPushBatchBounds(t *testing.T) {
	q := NewChunkQueue(8)
	if q.Cap() != 8 {
		t.Errorf("Cap = %d", q.Cap())
	}
	q.PushBatch(nil) // no-op
	if q.Size() != 0 {
		t.Errorf("Size after empty PushBatch = %d", q.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing PushBatch did not panic")
		}
	}()
	q.PushBatch(make([]uint32, 9))
}

func TestSPSCLenNeverNegative(t *testing.T) {
	q := NewSPSC()
	q.Enqueue(1)
	q.Dequeue()
	q.Dequeue() // extra dequeue on empty queue
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

// TestTicketLockContendedYieldPath forces the spin loop past its yield
// threshold by holding the lock while another goroutine waits.
func TestTicketLockContendedYieldPath(t *testing.T) {
	var l TicketLock
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		l.Lock() // must spin long enough to hit the Gosched branch
		l.Unlock()
		close(acquired)
	}()
	time.Sleep(5 * time.Millisecond)
	l.Unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never acquired the lock")
	}
}

func TestChunkQueueOverflowPanicMessage(t *testing.T) {
	// The panic must carry the cursor state so a CI-log invariant
	// violation is diagnosable without a reproducer.
	check := func(name string, wantTail string, f func(q *ChunkQueue)) {
		q := NewChunkQueue(3)
		q.PushBatch([]uint32{1, 2})
		q.PopChunk(1)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: overflow did not panic", name)
			}
			msg, ok := r.(string)
			if !ok {
				t.Fatalf("%s: panic value %T, want string", name, r)
			}
			for _, want := range []string{"head=1", wantTail, "cap=3"} {
				if !strings.Contains(msg, want) {
					t.Errorf("%s: panic %q missing %q", name, msg, want)
				}
			}
		}()
		f(q)
	}
	check("PushBatch", "tail=2", func(q *ChunkQueue) { q.PushBatch([]uint32{7, 8}) })
	check("Push", "tail=3", func(q *ChunkQueue) { q.PushBatch([]uint32{7}); q.Push(9) })
}

// edgeOffsets builds a CSR offsets array from per-vertex degrees.
func edgeOffsets(degs ...int64) []int64 {
	offs := make([]int64, len(degs)+1)
	for i, d := range degs {
		offs[i+1] = offs[i] + d
	}
	return offs
}

func TestChunkQueuePopChunkEdges(t *testing.T) {
	offs := edgeOffsets(2, 3, 5, 100, 1, 1, 4)
	q := NewChunkQueue(10)
	q.PushBatch([]uint32{0, 1, 2, 3, 4, 5, 6})
	limit := int64(q.Size())

	// Budget 10 admits vertices 0..2 (2+3+5 = 10 edges) and stops.
	if got := q.PopChunkEdges(128, 10, limit, offs); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("budgeted chunk = %v, want [0 1 2]", got)
	}
	// Vertex 3's degree (100) exceeds the budget alone: single-vertex
	// chunk, never an empty claim.
	if got := q.PopChunkEdges(128, 10, limit, offs); len(got) != 1 || got[0] != 3 {
		t.Fatalf("hub chunk = %v, want [3]", got)
	}
	// max caps the vertex count even under a roomy budget.
	if got := q.PopChunkEdges(1, 1000, limit, offs); len(got) != 1 || got[0] != 4 {
		t.Fatalf("max-capped chunk = %v, want [4]", got)
	}
	// A partial fit stops before the vertex that would overflow.
	if got := q.PopChunkEdges(128, 3, limit, offs); len(got) != 1 || got[0] != 5 {
		t.Fatalf("partial-fit chunk = %v, want [5]", got)
	}
	if got := q.PopChunkEdges(128, 1000, limit, offs); len(got) != 1 || got[0] != 6 {
		t.Fatalf("tail chunk = %v, want [6]", got)
	}
	if got := q.PopChunkEdges(128, 1000, limit, offs); got != nil {
		t.Fatalf("drained window returned %v", got)
	}
}

func TestChunkQueuePopChunkEdgesRespectsLimit(t *testing.T) {
	offs := edgeOffsets(1, 1, 1, 1)
	q := NewChunkQueue(4)
	q.PushBatch([]uint32{0, 1, 2, 3})
	if got := q.PopChunkEdges(128, 1000, 2, offs); len(got) != 2 {
		t.Fatalf("windowed chunk = %v, want 2 elements", got)
	}
	if got := q.PopChunkEdges(128, 1000, 2, offs); got != nil {
		t.Fatalf("window exhausted but got %v", got)
	}
	// The next window picks up exactly where the previous one ended.
	if got := q.PopChunkEdges(128, 1000, 4, offs); len(got) != 2 || got[0] != 2 {
		t.Fatalf("next window = %v, want [2 3]", got)
	}
}

func TestChunkQueuePopChunkEdgesConcurrent(t *testing.T) {
	// Degrees vary wildly; concurrent consumers must partition the
	// window exactly (each element claimed once) regardless of races.
	const n = 1 << 12
	degs := make([]int64, n)
	for i := range degs {
		degs[i] = int64(i % 97)
		if i%131 == 0 {
			degs[i] = 5000 // hubs forcing single-vertex chunks
		}
	}
	offs := edgeOffsets(degs...)
	q := NewChunkQueue(n)
	for i := 0; i < n; i++ {
		q.Push(uint32(i))
	}
	limit := int64(q.Size())

	const consumers = 8
	var wg sync.WaitGroup
	claimed := make([][]uint32, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				chunk := q.PopChunkEdges(64, 1000, limit, offs)
				if chunk == nil {
					return
				}
				claimed[c] = append(claimed[c], chunk...)
			}
		}(c)
	}
	wg.Wait()

	seen := make([]bool, n)
	total := 0
	for _, ch := range claimed {
		for _, v := range ch {
			if seen[v] {
				t.Fatalf("vertex %d claimed twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("claimed %d of %d elements", total, n)
	}
}

func TestChunkQueueHead(t *testing.T) {
	q := NewChunkQueue(8)
	q.PushBatch([]uint32{1, 2, 3, 4})
	if h := q.Head(); h != 0 {
		t.Fatalf("Head = %d, want 0", h)
	}
	q.PopChunk(3)
	if h := q.Head(); h != 3 {
		t.Fatalf("Head after pop = %d, want 3", h)
	}
	q.Reset()
	if h := q.Head(); h != 0 {
		t.Fatalf("Head after Reset = %d, want 0", h)
	}
}
