package queue

import "sync/atomic"

// segBits fixes the FastForward ring segment at 2^segBits slots; 4096
// slots × 8 bytes = 32 KB, small enough to live in L1/L2 while a level
// is streaming through it.
const segBits = 12

const segSize = 1 << segBits

// segment is one FastForward ring. Slot state doubles as the
// synchronization protocol: a zero slot is empty, a non-zero slot holds
// an encoded value. Producer and consumer therefore make independent
// progress without sharing head/tail indices — the property the paper
// exploits to keep coherence traffic off the critical path.
type segment struct {
	slots [segSize]atomic.Uint64
	next  atomic.Pointer[segment]
}

// SPSC is an unbounded single-producer/single-consumer queue of uint64
// values in [0, 2^63): one goroutine may call Enqueue and one goroutine
// may call Dequeue concurrently. The core is the FastForward protocol;
// when a segment fills, the producer links a fresh one, so a BFS level
// can never deadlock on a full ring (a fixed ring would: in the paper's
// two-phase schedule nothing drains the channel until the level's
// barrier).
type SPSC struct {
	// Producer-private state, padded away from the consumer's.
	ptail uint64
	pseg  *segment
	_     pad
	// Consumer-private state.
	chead uint64
	cseg  *segment
	_     pad
	// Approximate count of elements ever enqueued/dequeued, for stats.
	enq atomic.Uint64
	deq atomic.Uint64
	// free is a stack of drained segments awaiting reuse, linked through
	// their next pointers. The consumer pushes, the producer pops, so a
	// long-lived queue reaches a steady state where levels of traffic
	// recirculate the same segments instead of allocating — the property
	// the amortized search session relies on for zero-alloc warm runs.
	// The single-popper discipline makes the CAS loop ABA-free: nodes in
	// the stack are never re-pushed while present, so the head can only
	// return to an observed value via that same observer's pop.
	free atomic.Pointer[segment]
}

// NewSPSC returns an empty queue.
func NewSPSC() *SPSC {
	s := &segment{}
	return &SPSC{pseg: s, cseg: s}
}

// maxValue is the largest value Enqueue accepts. Values are stored
// +1 so the zero word can mean "empty"; the top bit is kept clear so the
// encoding never wraps.
const maxValue = 1<<63 - 2

// Enqueue appends v to the queue. It never blocks: if the current
// segment is full it links a new one. It must be called by at most one
// goroutine at a time. v must be <= maxValue; values outside the range
// panic, because silently truncating a vertex id would corrupt the BFS.
func (q *SPSC) Enqueue(v uint64) {
	if v > maxValue {
		panic("queue: SPSC value out of range")
	}
	idx := q.ptail & (segSize - 1)
	slot := &q.pseg.slots[idx]
	if slot.Load() != 0 {
		// Ring is full at this position: the consumer is at least a full
		// segment behind. Link a recycled (or fresh) segment and continue
		// there.
		ns := q.getSegment()
		q.pseg.next.Store(ns)
		q.pseg = ns
		q.ptail = 0
		slot = &ns.slots[0]
	}
	slot.Store(v + 1)
	q.ptail++
	q.enq.Add(1)
}

// Dequeue removes and returns the oldest value. ok is false if the
// queue appeared empty. It must be called by at most one goroutine at a
// time.
//
// Segment-advance invariant: the producer abandons a segment only when
// it wraps onto a still-unconsumed slot, i.e. when exactly one segment's
// worth of items is outstanding. The consumer therefore sees a zero slot
// in a segment with a non-nil next pointer only after it has drained
// every item the producer wrote there, so advancing is always safe.
func (q *SPSC) Dequeue() (v uint64, ok bool) {
	idx := q.chead & (segSize - 1)
	slot := &q.cseg.slots[idx]
	x := slot.Load()
	if x == 0 {
		next := q.cseg.next.Load()
		if next == nil {
			return 0, false
		}
		// Re-check the slot after observing the link. Between the first
		// load and the next.Load the producer may have filled the entire
		// ring (making our slot non-empty again) and then abandoned it;
		// advancing on the stale zero would skip a full segment. The
		// producer's old-segment writes all precede its next.Store, so
		// once next is visible a zero slot genuinely means drained.
		x = slot.Load()
		if x == 0 {
			// The abandoned segment is fully drained (every written slot
			// was zeroed by a dequeue) and no longer referenced by the
			// producer, so it goes to the free stack for reuse.
			old := q.cseg
			q.cseg = next
			q.chead = 0
			q.putSegment(old)
			slot = &q.cseg.slots[0]
			x = slot.Load()
			if x == 0 {
				return 0, false
			}
		}
	}
	slot.Store(0)
	q.chead++
	q.deq.Add(1)
	return x - 1, true
}

// getSegment pops a drained segment off the free stack, or allocates
// when the stack is empty. Producer-side only.
func (q *SPSC) getSegment() *segment {
	for {
		s := q.free.Load()
		if s == nil {
			return &segment{}
		}
		if q.free.CompareAndSwap(s, s.next.Load()) {
			s.next.Store(nil)
			return s
		}
	}
}

// putSegment pushes a drained segment onto the free stack. Consumer-side
// only; the segment must be fully drained (all slots zero) and
// unreachable from the live chain.
func (q *SPSC) putSegment(s *segment) {
	for {
		head := q.free.Load()
		s.next.Store(head)
		if q.free.CompareAndSwap(head, s) {
			return
		}
	}
}

// Len returns the approximate number of queued elements. Exact when no
// operation is concurrently in flight.
func (q *SPSC) Len() int {
	e, d := q.enq.Load(), q.deq.Load()
	if e < d {
		return 0
	}
	return int(e - d)
}
