module mcbfs

go 1.23
