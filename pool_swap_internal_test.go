package mcbfs

import (
	"context"
	"testing"
	"time"

	"mcbfs/internal/core"
)

// TestSwapClosesOldSearchers proves the drain actually tears the old
// epoch down: every Searcher the retired snapshot owned reports Closed
// once the drain completes. This needs package-internal access to the
// snapshot's free channel, so it lives in package mcbfs.
func TestSwapClosesOldSearchers(t *testing.T) {
	g, err := GridGraph(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(g, PoolOptions{Size: 2, Search: Options{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Capture the old epoch's Searchers while the pool is idle: pop
	// them all, remember the pointers, put them back.
	old := pool.snap.Load()
	var searchers []*core.Searcher
	for i := 0; i < pool.size; i++ {
		searchers = append(searchers, <-old.free)
	}
	for _, s := range searchers {
		old.free <- s
	}

	g2, err := GridGraph(20, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Swap(g2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for pool.Draining() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("old snapshot never finished draining")
		}
		time.Sleep(time.Millisecond)
	}
	for i, s := range searchers {
		if !s.Closed() {
			t.Errorf("old epoch's Searcher %d not closed after drain", i)
		}
	}
	if got := old.refs.Load(); got != 0 {
		t.Errorf("retired snapshot still holds %d references", got)
	}

	// The new epoch serves as usual.
	if _, err := pool.Query(context.Background(), 0); err != nil {
		t.Errorf("query on new epoch: %v", err)
	}
}
