package mcbfs_test

import (
	"bytes"
	"testing"

	"mcbfs"
)

// TestPublicAPIRoundTrip exercises the whole public surface the way a
// downstream user would: generate, search, validate, inspect.
func TestPublicAPIRoundTrip(t *testing.T) {
	g, err := mcbfs.UniformGraph(10_000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcbfs.BFS(g, 0, mcbfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcbfs.ValidateTree(g, 0, res.Parents); err != nil {
		t.Fatal(err)
	}
	if res.Reached < 9_000 {
		t.Errorf("reached only %d of 10000 on a degree-8 uniform graph", res.Reached)
	}
	depths := mcbfs.TreeDepths(res.Parents, 0)
	if depths[0] != 0 {
		t.Errorf("root depth = %d", depths[0])
	}
	if mcbfs.FormatRate(res.EdgesPerSecond()) == "" {
		t.Error("empty rate string")
	}
}

func TestPublicAPIExplicitMachine(t *testing.T) {
	g, err := mcbfs.RMATGraph(12, 1<<15, mcbfs.GTgraphDefaults, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcbfs.BFS(g, 3, mcbfs.Options{
		Algorithm: mcbfs.AlgMultiSocket,
		Threads:   8,
		Machine:   mcbfs.NehalemEP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcbfs.ValidateTree(g, 3, res.Parents); err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != mcbfs.AlgMultiSocket {
		t.Errorf("ran %v", res.Algorithm)
	}
}

func TestPublicAPIBuildersAndGenerators(t *testing.T) {
	if _, err := mcbfs.NewGraph(3, []mcbfs.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}); err != nil {
		t.Error(err)
	}
	if _, err := mcbfs.NewGraphFromAdjacency([][]mcbfs.Vertex{{1}, {}}); err != nil {
		t.Error(err)
	}
	if _, err := mcbfs.SSCA2Graph(100, 5, 0.2, 1); err != nil {
		t.Error(err)
	}
	if _, err := mcbfs.GridGraph(10, 10, 8); err != nil {
		t.Error(err)
	}
	m := mcbfs.GenericMachine(2, 4, 2)
	if m.TotalThreads() != 16 {
		t.Errorf("GenericMachine threads = %d", m.TotalThreads())
	}
}

func TestPublicAPISaveLoad(t *testing.T) {
	g, err := mcbfs.UniformGraph(500, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.mcbf"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	g2, err := mcbfs.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Error("loaded graph differs")
	}
}

func TestPublicAPIAlgorithms(t *testing.T) {
	g, err := mcbfs.UniformGraph(3000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := mcbfs.ConnectedComponents(g, false, mcbfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cc.GiantFraction() < 0.9 {
		t.Errorf("giant fraction = %v", cc.GiantFraction())
	}
	if _, _, err := mcbfs.ShortestPath(g, 0, 100, mcbfs.Options{}); err != nil {
		t.Error(err)
	}
	if _, err := mcbfs.Distance(g, 0, 100, mcbfs.Options{}); err != nil {
		t.Error(err)
	}
	if _, err := mcbfs.STConnectivity(g, 0, 100); err != nil {
		t.Error(err)
	}
	if _, _, err := mcbfs.MultiSourceBFS(g, []mcbfs.Vertex{0, 1}); err != nil {
		t.Error(err)
	}
	if _, err := mcbfs.ApproxDiameter(g, 0, mcbfs.Options{}); err != nil {
		t.Error(err)
	}
	// Direction-optimizing tier through the public API.
	res, err := mcbfs.BFS(g, 0, mcbfs.Options{Algorithm: mcbfs.AlgDirectionOptimizing, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcbfs.ValidateTree(g, 0, res.Parents); err != nil {
		t.Error(err)
	}
}

func TestPublicAPITextFormats(t *testing.T) {
	g, err := mcbfs.NewGraph(3, []mcbfs.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	var dimacs, elist bytes.Buffer
	if err := g.WriteDIMACS(&dimacs); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(&elist); err != nil {
		t.Fatal(err)
	}
	if g2, err := mcbfs.ReadDIMACS(&dimacs); err != nil || g2.NumEdges() != 2 {
		t.Errorf("DIMACS round trip: %v %v", g2, err)
	}
	if g3, err := mcbfs.ReadEdgeList(&elist); err != nil || g3.NumVertices() != 3 {
		t.Errorf("edge list round trip: %v %v", g3, err)
	}
}

func TestPublicAPIUnreachedMarkers(t *testing.T) {
	g, err := mcbfs.NewGraph(4, []mcbfs.Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcbfs.BFS(g, 0, mcbfs.Options{Algorithm: mcbfs.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parents[2] != mcbfs.NoParent || res.Parents[3] != mcbfs.NoParent {
		t.Error("unreached vertices not marked NoParent")
	}
	depths := mcbfs.TreeDepths(res.Parents, 0)
	if depths[2] != mcbfs.NoDepth {
		t.Error("unreached vertex depth not NoDepth")
	}
}

// TestPublicAPISearcher exercises the amortized session surface: one
// Searcher answering repeated queries, with per-query overrides, under
// the race detector when CI runs this package with -race.
func TestPublicAPISearcher(t *testing.T) {
	g, err := mcbfs.UniformGraph(5_000, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mcbfs.NewSearcher(g, mcbfs.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, root := range []mcbfs.Vertex{0, 4_999, 123, 0} {
		res, err := s.BFS(root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if err := mcbfs.ValidateTree(g, root, res.Parents); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
	res, err := s.Search(0, mcbfs.Query{Algorithm: mcbfs.AlgSequential, MaxLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	// MaxLevels=1 expands only the root's level: root plus its direct
	// neighbours are discovered.
	if res.Levels != 1 || res.Reached < 1 || res.Reached > 9 {
		t.Errorf("MaxLevels=1 query: %d levels, %d reached", res.Levels, res.Reached)
	}
}
