// Command graphgen generates synthetic graphs in the library's binary
// format — the reproduction's equivalent of the GTgraph suite the paper
// uses for its workloads.
//
// Usage:
//
//	graphgen -kind uniform -n 1048576 -degree 16 -seed 42 -o g.mcbf
//	graphgen -kind rmat -scale 20 -edges 16777216 -o rmat.mcbf
//	graphgen -kind ssca2 -n 100000 -clique 8 -o ssca.mcbf
//	graphgen -kind grid -rows 1024 -cols 1024 -conn 8 -o grid.mcbf
//
// Add -stats to print the degree distribution of the generated graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/stats"
)

func main() {
	var (
		kind    = flag.String("kind", "uniform", "uniform | rmat | ssca2 | grid")
		n       = flag.Int("n", 1<<20, "vertex count (uniform, ssca2)")
		degree  = flag.Int("degree", 8, "out-degree per vertex (uniform)")
		scale   = flag.Int("scale", 20, "log2 vertex count (rmat)")
		edges   = flag.Int64("edges", 1<<23, "edge count (rmat)")
		a       = flag.Float64("a", gen.GTgraphDefaults.A, "R-MAT parameter a")
		b       = flag.Float64("b", gen.GTgraphDefaults.B, "R-MAT parameter b")
		c       = flag.Float64("c", gen.GTgraphDefaults.C, "R-MAT parameter c")
		d       = flag.Float64("d", gen.GTgraphDefaults.D, "R-MAT parameter d")
		clique  = flag.Int("clique", 8, "max clique size (ssca2)")
		inter   = flag.Float64("inter", 0.2, "inter-clique edge fraction (ssca2)")
		rows    = flag.Int("rows", 1024, "grid rows")
		cols    = flag.Int("cols", 1024, "grid cols")
		conn    = flag.Int("conn", 4, "grid connectivity (4 or 8)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (required)")
		show    = flag.Bool("stats", false, "print degree statistics")
		threads = flag.Int("threads", 0, "CSR construction worker count (0 = GOMAXPROCS)")
		order   = flag.String("order", "natural", "bake a vertex ordering into the saved layout: natural, degree, dbg, rcm (consumers load an already locality-optimized graph)")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}
	ordering, err := graph.ParseOrdering(*order)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(2)
	}
	if *threads > 0 {
		graph.SetBuildParallelism(*threads)
	}

	var g *graph.Graph
	start := time.Now()
	switch *kind {
	case "uniform":
		g, err = gen.Uniform(*n, *degree, *seed)
	case "rmat":
		g, err = gen.RMAT(*scale, *edges, gen.RMATParams{A: *a, B: *b, C: *c, D: *d}, *seed)
	case "ssca2":
		g, err = gen.SSCA2(*n, *clique, *inter, *seed)
	case "grid":
		g, err = gen.Grid(*rows, *cols, *conn)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	construction := time.Since(start)

	// Bake the requested ordering into the saved layout: the relabeled
	// CSR goes to disk, so every consumer loads the locality-optimized
	// graph without paying the reorder itself. The ordering tag and the
	// inverse permutation travel in the file's version-2 metadata, so
	// loaders can tell the layout is relabeled and translate vertex ids
	// back to the generator's originals (previously Save recorded
	// nothing and the relabeling was silently lost).
	var meta *graph.FileMeta
	if ordering != graph.OrderNatural {
		rd, err := g.Reorder(ordering)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		g = rd.Graph
		meta = &graph.FileMeta{Order: rd.Order, Inv: rd.Inv}
		fmt.Printf("reorder: ordering %s in %v (perm %v + relabel %v)\n",
			ordering, rd.ReorderTime().Round(time.Millisecond),
			rd.PermTime.Round(time.Millisecond), rd.RelabelTime.Round(time.Millisecond))
	}

	saveStart := time.Now()
	if err := g.SaveMeta(*out, meta); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s vertices, %s edges, %s on disk\n",
		*out, stats.FormatCount(int64(g.NumVertices())), stats.FormatCount(g.NumEdges()),
		stats.FormatCount(g.MemoryFootprint()))
	rate := 0.0
	if s := construction.Seconds(); s > 0 {
		rate = float64(g.NumEdges()) / s
	}
	fmt.Printf("construction: %v (%s edges/s, %d-way build), save: %v\n",
		construction.Round(time.Millisecond), stats.FormatCount(int64(rate)),
		graph.BuildParallelism(), time.Since(saveStart).Round(time.Millisecond))

	if *show {
		s := g.ComputeStats()
		fmt.Printf("degrees: min=%d max=%d avg=%.2f isolated=%d\n",
			s.MinDegree, s.MaxDegree, s.AvgDegree, s.Isolated)
		fmt.Println("degree histogram (bucket i holds degrees [2^(i-1), 2^i)):")
		for i, c := range g.DegreeHistogram() {
			fmt.Printf("  bucket %-2d %d\n", i, c)
		}
	}
}
