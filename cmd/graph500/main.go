// Command graph500 runs the Graph500-style BFS benchmark protocol:
// generate a Kronecker graph, BFS from sampled roots, validate every
// tree, report harmonic-mean TEPS.
//
// Usage:
//
//	graph500 -scale 20 -edgefactor 16 -roots 64 -threads 8
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/graph500"
	"mcbfs/internal/obs"
	"mcbfs/internal/stats"
)

func main() {
	var (
		scale      = flag.Int("scale", 18, "log2 of the vertex count")
		edgefactor = flag.Int("edgefactor", 16, "edges per vertex")
		roots      = flag.Int("roots", 64, "number of BFS roots")
		threads    = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 2010, "generator seed")
		skipVal    = flag.Bool("skip-validation", false, "skip per-root tree validation")
		deadline   = flag.Duration("deadline", 0, "per-root search deadline; roots exceeding it are abandoned and reported, not failed (0 = none)")
		batch      = flag.Bool("batch", false, "also replay the sampled roots through one MS-BFS session, 64 lanes per shared traversal, and report batched vs per-query TEPS")
		order      = flag.String("order", "natural", "vertex ordering applied before the search phase: natural, degree, dbg (degree-grouped hubs), rcm (BFS levels); reorder time is reported separately")
		pprofAddr  = flag.String("pprof", "", "serve live telemetry on this address while the protocol runs: /metrics (Prometheus), /debug/bfs (status), /debug/vars (expvar incl. timed-out roots), /debug/pprof")
		verbose    = flag.Bool("v", false, "print per-root TEPS")
	)
	flag.Parse()

	// Construction uses the same worker budget as the search: the
	// parallel counting-sort CSR builder honours this knob.
	if *threads > 0 {
		graph.SetBuildParallelism(*threads)
	}

	ordering, err := graph.ParseOrdering(*order)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graph500: %v\n", err)
		os.Exit(2)
	}

	spec := graph500.Spec{
		Scale:          *scale,
		EdgeFactor:     *edgefactor,
		Roots:          *roots,
		Seed:           *seed,
		Options:        core.Options{Threads: *threads},
		Ordering:       ordering,
		SkipValidation: *skipVal,
		SearchTimeout:  *deadline,
		Batch:          *batch,
	}
	if *pprofAddr != "" {
		// Long protocol runs are watchable live: per-level counters feed
		// an expvar-published Metrics (timed-out roots included, not just
		// the stdout summary at the end), and every root's search reports
		// into a telemetry hub served at /metrics and /debug/bfs.
		live := &obs.Metrics{}
		live.Publish("graph500")
		tel := obs.NewTelemetry(obs.TelemetryOptions{Shards: 1, Metrics: live})
		spec.Metrics = live
		spec.Options.Tracer = live.Tracer()
		spec.Options.Telemetry = tel
		http.Handle("/metrics", tel.MetricsHandler())
		http.Handle("/debug/bfs", tel.StatusHandler())
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "graph500: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "graph500: telemetry at http://%s/metrics and /debug/bfs, expvar at /debug/vars, pprof at /debug/pprof\n",
			*pprofAddr)
	}
	res, err := graph500.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graph500: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	if res.WarmHarmonicMeanTEPS > 0 {
		fmt.Printf("session: cold %s TEPS (root 0, includes session setup), warm %s harmonic-mean TEPS (roots 1..%d, pooled state reused)\n",
			stats.FormatRate(res.ColdTEPS), stats.FormatRate(res.WarmHarmonicMeanTEPS), res.RootsRun-1)
	}
	if res.BatchDuration > 0 {
		fmt.Printf("batched: %s aggregate TEPS, %.1f queries/s over %d roots in %v (%.1fx edge-scan amortization vs one search per root)\n",
			stats.FormatRate(res.BatchTEPS), res.BatchQueriesPerSec, res.BatchRootsRun,
			res.BatchDuration.Round(time.Millisecond), res.BatchAmortization)
	}
	fmt.Printf("graph: %d vertices, %d directed edge slots, mean reach %.0f vertices/root\n",
		res.Vertices, res.Edges, res.MeanReached)
	fmt.Printf("construction: %v total = generate %v + build csr %v (%s edge slots/s, %d-way build)\n",
		res.ConstructionTime, res.GenerationTime, res.BuildTime,
		stats.FormatCount(int64(res.ConstructionEPS())), graph.BuildParallelism())
	if res.Ordering != graph.OrderNatural {
		fmt.Printf("reorder: %v for ordering %s (one-time, amortized across %d roots)\n",
			res.ReorderTime, res.Ordering, res.RootsRun)
	}
	if *verbose {
		for i, teps := range res.TEPS {
			fmt.Printf("  root %2d: %s\n", i, stats.FormatRate(teps))
		}
	}
}
