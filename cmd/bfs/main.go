// Command bfs runs one breadth-first search over a graph file produced
// by graphgen and reports the paper's metric (edges traversed per
// second) along with the tree shape.
//
// Usage:
//
//	bfs -graph g.mcbf -root 0 -threads 8 -algorithm auto -validate
//	bfs -graph g.mcbf -threads 4 -trace out.json
//
// The -sockets and -cores flags describe the host's topology so the
// multi-socket algorithm can partition the graph the way the paper's
// Algorithm 3 does. -trace records per-worker phase timelines for the
// best run and writes them as Chrome trace-event JSON (viewable in
// Perfetto or chrome://tracing).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/stats"
	"mcbfs/internal/topology"
)

// errWriter remembers the first write error so output to a full disk
// or closed pipe fails loudly instead of silently truncating.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

func main() {
	var (
		path       = flag.String("graph", "", "graph file (required)")
		root       = flag.Uint64("root", 0, "source vertex")
		threads    = flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		algName    = flag.String("algorithm", "auto", "auto | sequential | simple | single-socket | multi-socket | direction-optimizing")
		sockets    = flag.Int("sockets", 1, "logical sockets of the machine")
		cores      = flag.Int("cores", 0, "cores per socket (0 = threads/sockets)")
		batch      = flag.Int("batch", 64, "inter-socket channel batch size")
		validate   = flag.Bool("validate", false, "verify the BFS tree after the run")
		repeat     = flag.Int("repeat", 1, "number of runs (best rate reported)")
		instrument = flag.Bool("instrument", false, "print per-level statistics (paper Fig. 4 style)")
		pin        = flag.Bool("pin", false, "pin worker threads to CPUs (Linux)")
		traceOut   = flag.String("trace", "", "write the best run's Chrome trace-event JSON to this file")
	)
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "bfs: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	g, meta, err := graph.LoadMeta(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfs: %v\n", err)
		os.Exit(1)
	}
	if meta != nil {
		// The stored layout is relabeled: vertex ids in this run (the
		// root and any reported parents) live in the baked ordering's id
		// space, not the generator's.
		fmt.Printf("graph layout: %s-ordered (ids are relabeled; permutation %s)\n",
			meta.Order, map[bool]string{true: "stored", false: "not stored"}[meta.Inv != nil])
	}

	var alg core.Algorithm
	switch *algName {
	case "auto":
		alg = core.AlgAuto
	case "sequential":
		alg = core.AlgSequential
	case "simple":
		alg = core.AlgParallelSimple
	case "single-socket":
		alg = core.AlgSingleSocket
	case "multi-socket":
		alg = core.AlgMultiSocket
	case "direction-optimizing":
		alg = core.AlgDirectionOptimizing
	default:
		fmt.Fprintf(os.Stderr, "bfs: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	th := *threads
	if th <= 0 {
		th = 1
	}
	cps := *cores
	if cps <= 0 {
		cps = (th + *sockets - 1) / *sockets
		if cps < 1 {
			cps = 1
		}
	}
	opts := core.Options{
		Algorithm:  alg,
		Threads:    *threads,
		Machine:    topology.Generic(*sockets, cps, 2),
		BatchSize:  *batch,
		Instrument: *instrument,
		PinThreads: *pin,
		Trace:      *traceOut != "",
	}

	var best *core.Result
	for i := 0; i < *repeat; i++ {
		res, err := core.BFS(g, graph.Vertex(*root), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfs: %v\n", err)
			os.Exit(1)
		}
		if best == nil || res.EdgesPerSecond() > best.EdgesPerSecond() {
			best = res
		}
	}

	out := &errWriter{w: os.Stdout}
	fmt.Fprintf(out, "graph:     %s vertices, %s edges\n",
		stats.FormatCount(int64(g.NumVertices())), stats.FormatCount(g.NumEdges()))
	fmt.Fprintf(out, "algorithm: %v, %d threads, %d logical socket(s)\n",
		best.Algorithm, best.Threads, opts.Machine.SocketsForThreads(best.Threads))
	fmt.Fprintf(out, "reached:   %d vertices in %d levels\n", best.Reached, best.Levels)
	fmt.Fprintf(out, "traversed: %s edges (m_a) in %v\n", stats.FormatCount(best.EdgesTraversed), best.Duration)
	fmt.Fprintf(out, "rate:      %s\n", stats.FormatRate(best.EdgesPerSecond()))

	if *instrument {
		fmt.Fprintln(out, "level  frontier   edges       bitmap-reads  atomic-ops  remote-sends  duration")
		for i, ls := range best.PerLevel {
			fmt.Fprintf(out, "%-6d %-10d %-11d %-13d %-11d %-13d %v\n",
				i, ls.Frontier, ls.Edges, ls.BitmapReads, ls.AtomicOps, ls.RemoteSends,
				ls.Duration.Round(10*time.Microsecond))
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfs: %v\n", err)
			os.Exit(1)
		}
		werr := best.Trace.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "bfs: writing %s: %v\n", *traceOut, werr)
			os.Exit(1)
		}
		fmt.Fprintf(out, "trace:     %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}

	if *validate {
		if err := core.ValidateTree(g, graph.Vertex(*root), best.Parents); err != nil {
			fmt.Fprintf(os.Stderr, "bfs: VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, "validated: BFS tree is correct")
	}

	if out.err != nil {
		fmt.Fprintf(os.Stderr, "bfs: writing output: %v\n", out.err)
		os.Exit(1)
	}
}
