package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/machine"
	"mcbfs/internal/obs"
	"mcbfs/internal/refdata"
	"mcbfs/internal/simbfs"
	"mcbfs/internal/stats"
	"mcbfs/internal/topology"
)

type harnessConfig struct {
	Mode   string // sim | measured | both
	Scale  int    // log2 vertices for measured runs
	Seed   uint64
	Short  bool
	Tracer obs.Tracer // observes every measured library run (nil = off)
	// Telemetry, when non-nil (-pprof), is the serving hub the -clients
	// pool reports into, exposed at /metrics and /debug/bfs.
	Telemetry *obs.Telemetry
	// Order relabels the measured graph under a locality-optimized
	// vertex ordering (-order); the reorder time is reported on its own
	// line, never folded into setup or query time.
	Order graph.Ordering
	// EdgeBudget configures degree-aware frontier scheduling for the
	// measured library runs (-edge-budget): 0 auto, -1 off, positive
	// an explicit per-chunk adjacency allowance.
	EdgeBudget int64
}

func (c harnessConfig) sim() bool      { return c.Mode == "sim" || c.Mode == "both" }
func (c harnessConfig) measured() bool { return c.Mode == "measured" || c.Mode == "both" }

func (c harnessConfig) measuredN() int {
	s := c.Scale
	if c.Short && s > 16 {
		s = 16
	}
	return 1 << s
}

type experiment struct {
	title string
	run   func(w io.Writer, cfg harnessConfig) error
}

var experiments = map[string]experiment{
	"fig2":   {"memory pipelining: random-read rate vs working set and in-flight depth", runFig2},
	"fig3":   {"atomic fetch-and-add rate vs threads, 4 MB shared buffer", runFig3},
	"fig4":   {"bitmap accesses vs atomic operations per BFS level", runFig4},
	"fig5":   {"impact of the optimizations (algorithm variants) vs threads, Nehalem EP", runFig5},
	"fig6a":  {"uniformly random graphs, Nehalem EP: processing rates", figRates(simbfs.Uniform, machine.EP())},
	"fig6b":  {"uniformly random graphs, Nehalem EP: scalability", figSpeedup(simbfs.Uniform, machine.EP())},
	"fig6c":  {"uniformly random graphs, Nehalem EP: sensitivity to graph size", figSize(simbfs.Uniform, machine.EP())},
	"fig7a":  {"R-MAT graphs, Nehalem EP: processing rates", figRates(simbfs.RMAT, machine.EP())},
	"fig7b":  {"R-MAT graphs, Nehalem EP: scalability", figSpeedup(simbfs.RMAT, machine.EP())},
	"fig7c":  {"R-MAT graphs, Nehalem EP: sensitivity to graph size", figSize(simbfs.RMAT, machine.EP())},
	"fig8a":  {"uniformly random graphs, Nehalem EX: processing rates", figRates(simbfs.Uniform, machine.EX())},
	"fig8b":  {"uniformly random graphs, Nehalem EX: scalability", figSpeedup(simbfs.Uniform, machine.EX())},
	"fig8c":  {"uniformly random graphs, Nehalem EX: sensitivity to graph size", figSize(simbfs.Uniform, machine.EX())},
	"fig9a":  {"R-MAT graphs, Nehalem EX: processing rates", figRates(simbfs.RMAT, machine.EX())},
	"fig9b":  {"R-MAT graphs, Nehalem EX: scalability", figSpeedup(simbfs.RMAT, machine.EX())},
	"fig9c":  {"R-MAT graphs, Nehalem EX: sensitivity to graph size", figSize(simbfs.RMAT, machine.EX())},
	"fig10":  {"SSCA#2-style throughput: one BFS per socket, Nehalem EX", runFig10},
	"table1": {"system configuration (Table I)", runTable1},
	"table2": {"systems compared in the literature (Table II)", runTable2},
	"table3": {"comparison with published results (Table III)", runTable3},
	"ext-hybrid": {"extension: direction-optimizing BFS vs the paper's top-down (post-paper)",
		runExtHybrid},
	"ext-cluster": {"extension: projected distributed-memory scaling (paper Section V future work)",
		runExtCluster},
}

// measuredThreads returns the thread sweep used for measured runs.
func measuredThreads(cfg harnessConfig) []int {
	if cfg.Short {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16}
}

// graphCache avoids regenerating identical measured graphs within one
// invocation.
var graphCache = map[string]*graph.Graph{}

// reportConstruction notes every fresh measured-graph build on stderr —
// construction time reported separately from the search rates in the
// experiment tables, without disturbing -o report output.
func reportConstruction(what string, g *graph.Graph, d time.Duration) {
	rate := 0.0
	if s := d.Seconds(); s > 0 {
		rate = float64(g.NumEdges()) / s
	}
	fmt.Fprintf(os.Stderr, "bfsbench: constructed %s (%s vertices, %s edges) in %v — %s construction, %d-way build\n",
		what, stats.FormatCount(int64(g.NumVertices())), stats.FormatCount(g.NumEdges()),
		d.Round(time.Millisecond), stats.FormatRate(rate), graph.BuildParallelism())
}

func measuredUniform(n, d int, seed uint64) (*graph.Graph, error) {
	key := fmt.Sprintf("u/%d/%d/%d", n, d, seed)
	if g, ok := graphCache[key]; ok {
		return g, nil
	}
	start := time.Now()
	g, err := gen.Uniform(n, d, seed)
	if err == nil {
		reportConstruction(fmt.Sprintf("uniform d=%d", d), g, time.Since(start))
		graphCache[key] = g
	}
	return g, err
}

func measuredRMAT(scale int, m int64, seed uint64) (*graph.Graph, error) {
	key := fmt.Sprintf("r/%d/%d/%d", scale, m, seed)
	if g, ok := graphCache[key]; ok {
		return g, nil
	}
	start := time.Now()
	g, err := gen.RMAT(scale, m, gen.GTgraphDefaults, seed)
	if err == nil {
		reportConstruction(fmt.Sprintf("rmat scale=%d", scale), g, time.Since(start))
		graphCache[key] = g
	}
	return g, err
}

// bestBFS runs the library with the paper's per-thread-count algorithm
// choice on a logical EP topology and returns the rate.
func bestBFS(g *graph.Graph, threads int, cfg harnessConfig) (float64, error) {
	res, err := core.BFS(g, graph.Vertex(cfg.Seed%uint64(g.NumVertices())), core.Options{
		Threads: threads,
		Machine: topology.NehalemEP,
		Tracer:  cfg.Tracer,
	})
	if err != nil {
		return 0, err
	}
	return res.EdgesPerSecond(), nil
}

// --- Fig. 2 ---

func runFig2(w io.Writer, cfg harnessConfig) error {
	depths := []int{1, 2, 4, 8, 16}
	sizes := []int64{4 << 10, 32 << 10, 256 << 10, 1 << 20, 8 << 20, 64 << 20, 512 << 20, 2 << 30, 8 << 30}
	if cfg.sim() {
		fmt.Fprintln(w, "-- simulated (Nehalem EP model), million reads/s per core --")
		fmt.Fprintf(w, "%-10s", "ws")
		for _, d := range depths {
			fmt.Fprintf(w, "  depth=%-3d", d)
		}
		fmt.Fprintln(w)
		ep := machine.EP()
		for _, ws := range sizes {
			fmt.Fprintf(w, "%-10s", stats.FormatCount(ws))
			for _, d := range depths {
				fmt.Fprintf(w, "  %-9.1f", ep.RandomReadRate(ws, d)/1e6)
			}
			fmt.Fprintf(w, "  [%s]\n", ep.LevelOf(ws))
		}
	}
	if cfg.measured() {
		dur := 120 * time.Millisecond
		msizes := []int64{4 << 10, 256 << 10, 8 << 20, 64 << 20, 256 << 20}
		if cfg.Short {
			msizes = msizes[:4]
			dur = 40 * time.Millisecond
		}
		fmt.Fprintln(w, "-- measured on this host, million reads/s per core --")
		fmt.Fprintf(w, "%-10s", "ws")
		for _, d := range depths {
			fmt.Fprintf(w, "  depth=%-3d", d)
		}
		fmt.Fprintln(w)
		for _, ws := range msizes {
			fmt.Fprintf(w, "%-10s", stats.FormatCount(ws))
			for _, d := range depths {
				fmt.Fprintf(w, "  %-9.1f", machine.MeasureRandomReadRate(ws, d, dur)/1e6)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// --- Fig. 3 ---

func runFig3(w io.Writer, cfg harnessConfig) error {
	const ws = 4 << 20
	threads := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.sim() {
		fmt.Fprintln(w, "-- simulated (Nehalem EP model, threads fill socket 0 then socket 1) --")
		fmt.Fprintln(w, "threads  Mops/s   sockets")
		ep := machine.EP()
		for _, t := range threads {
			fmt.Fprintf(w, "%-8d %-8.1f %d\n", t, ep.FetchAddRate(ws, t)/1e6,
				ep.Topo.SocketsForThreads(t))
		}
	}
	if cfg.measured() {
		dur := 150 * time.Millisecond
		if cfg.Short {
			dur = 40 * time.Millisecond
		}
		fmt.Fprintf(w, "-- measured on this host (GOMAXPROCS=%d; no socket cliff expected on a single-socket host) --\n",
			runtime.GOMAXPROCS(0))
		fmt.Fprintln(w, "threads  Mops/s")
		for _, t := range threads {
			fmt.Fprintf(w, "%-8d %.1f\n", t, machine.MeasureFetchAddRate(ws, t, dur)/1e6)
		}
	}
	return nil
}

// --- Fig. 4 ---

func runFig4(w io.Writer, cfg harnessConfig) error {
	// Paper: random uniform graph with 16M edges, average arity 8 ->
	// 2M vertices; scaled to the host via -scale.
	n := cfg.measuredN()
	if n > 2<<20 {
		n = 2 << 20
	}
	g, err := measuredUniform(n, 8, cfg.Seed)
	if err != nil {
		return err
	}
	res, err := core.BFS(g, 0, core.Options{
		Algorithm:  core.AlgSingleSocket,
		Threads:    4,
		Instrument: true,
		Tracer:     cfg.Tracer,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- measured: uniform n=%s m=%s, single-socket algorithm with double check --\n",
		stats.FormatCount(int64(n)), stats.FormatCount(g.NumEdges()))
	fmt.Fprintln(w, "level  frontier   bitmap-reads  atomic-ops   atomics/reads")
	for i, ls := range res.PerLevel {
		ratio := 0.0
		if ls.BitmapReads > 0 {
			ratio = float64(ls.AtomicOps) / float64(ls.BitmapReads)
		}
		fmt.Fprintf(w, "%-6d %-10d %-13d %-12d %.3f\n",
			i, ls.Frontier, ls.BitmapReads, ls.AtomicOps, ratio)
	}
	return nil
}

// --- Fig. 5 ---

func runFig5(w io.Writer, cfg harnessConfig) error {
	variants := []simbfs.Variant{
		simbfs.VariantSimple, simbfs.VariantBitmap, simbfs.VariantBitmapDC, simbfs.VariantChannels,
	}
	if cfg.sim() {
		fmt.Fprintln(w, "-- simulated (EP model, uniform n=16M d=8), ME/s --")
		fmt.Fprintf(w, "%-8s", "threads")
		for _, v := range variants {
			fmt.Fprintf(w, "  %-28s", v)
		}
		fmt.Fprintln(w)
		wl := simbfs.Workload{Kind: simbfs.Uniform, N: 16e6, Degree: 8}
		for _, t := range []int{1, 2, 4, 8, 16} {
			fmt.Fprintf(w, "%-8d", t)
			for _, v := range variants {
				r := simbfs.Simulate(wl, simbfs.Config{Model: machine.EP(), Threads: t, Variant: v})
				fmt.Fprintf(w, "  %-28.0f", r.RatePerSec/1e6)
			}
			fmt.Fprintln(w)
		}
	}
	if cfg.measured() {
		n := cfg.measuredN()
		g, err := measuredUniform(n, 8, cfg.Seed)
		if err != nil {
			return err
		}
		algs := []core.Algorithm{core.AlgParallelSimple, core.AlgSingleSocket, core.AlgMultiSocket}
		names := []string{"simple(Alg1)", "bitmap+dc(Alg2)", "channels(Alg3)"}
		fmt.Fprintf(w, "-- measured on this host (uniform n=%s d=8, logical EP topology), ME/s --\n",
			stats.FormatCount(int64(n)))
		fmt.Fprintf(w, "%-8s", "threads")
		for _, nm := range names {
			fmt.Fprintf(w, "  %-16s", nm)
		}
		fmt.Fprintln(w)
		for _, t := range measuredThreads(cfg) {
			fmt.Fprintf(w, "%-8d", t)
			for _, a := range algs {
				res, err := core.BFS(g, 0, core.Options{
					Algorithm: a, Threads: t, Machine: topology.NehalemEP, Tracer: cfg.Tracer,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %-16.1f", res.EdgesPerSecond()/1e6)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// --- Figs. 6a/7a/8a/9a: rates ---

func figRates(kind simbfs.GraphKind, m machine.Model) func(io.Writer, harnessConfig) error {
	return func(w io.Writer, cfg harnessConfig) error {
		degrees := []float64{8, 16, 24, 32}
		threadSweep := threadsFor(m)
		if cfg.sim() {
			fmt.Fprintf(w, "-- simulated (%s model, %s n=32M, edges 256M..1B), ME/s --\n", m.Topo.Name, kind)
			fmt.Fprintf(w, "%-8s", "threads")
			for _, d := range degrees {
				fmt.Fprintf(w, "  m=%-8s", stats.FormatCount(int64(32e6*d)))
			}
			fmt.Fprintln(w)
			for _, t := range threadSweep {
				fmt.Fprintf(w, "%-8d", t)
				for _, d := range degrees {
					wl := simbfs.Workload{Kind: kind, N: 32e6, Degree: d}
					fmt.Fprintf(w, "  %-10.0f", simbfs.SimulateBest(wl, m, t).RatePerSec/1e6)
				}
				fmt.Fprintln(w)
			}
		}
		if cfg.measured() {
			n := cfg.measuredN()
			fmt.Fprintf(w, "-- measured on this host (%s n=%s, logical EP topology), ME/s --\n",
				kind, stats.FormatCount(int64(n)))
			fmt.Fprintf(w, "%-8s", "threads")
			mdegrees := []int{8, 16, 32}
			for _, d := range mdegrees {
				fmt.Fprintf(w, "  d=%-8d", d)
			}
			fmt.Fprintln(w)
			for _, t := range measuredThreads(cfg) {
				fmt.Fprintf(w, "%-8d", t)
				for _, d := range mdegrees {
					g, err := measuredGraph(kind, n, d, cfg.Seed)
					if err != nil {
						return err
					}
					rate, err := bestBFS(g, t, cfg)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "  %-10.1f", rate/1e6)
				}
				fmt.Fprintln(w)
			}
		}
		return nil
	}
}

// --- Figs. 6b/7b/8b/9b: speedup ---

func figSpeedup(kind simbfs.GraphKind, m machine.Model) func(io.Writer, harnessConfig) error {
	return func(w io.Writer, cfg harnessConfig) error {
		if cfg.sim() {
			fmt.Fprintf(w, "-- simulated (%s model, %s n=32M), speedup over 1 thread --\n", m.Topo.Name, kind)
			fmt.Fprintln(w, "threads  d=8     d=16    d=32")
			for _, t := range threadsFor(m) {
				fmt.Fprintf(w, "%-8d", t)
				for _, d := range []float64{8, 16, 32} {
					wl := simbfs.Workload{Kind: kind, N: 32e6, Degree: d}
					fmt.Fprintf(w, " %-7.1f", simbfs.Speedup(wl, m, t))
				}
				fmt.Fprintln(w)
			}
		}
		if cfg.measured() {
			n := cfg.measuredN()
			g, err := measuredGraph(kind, n, 8, cfg.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "-- measured on this host (%s n=%s d=8; GOMAXPROCS=%d limits real speedup) --\n",
				kind, stats.FormatCount(int64(n)), runtime.GOMAXPROCS(0))
			fmt.Fprintln(w, "threads  ME/s    speedup")
			var base float64
			for _, t := range measuredThreads(cfg) {
				rate, err := bestBFS(g, t, cfg)
				if err != nil {
					return err
				}
				if base == 0 {
					base = rate
				}
				fmt.Fprintf(w, "%-8d %-7.1f %.2f\n", t, rate/1e6, rate/base)
			}
		}
		return nil
	}
}

// --- Figs. 6c/7c/8c/9c: size sensitivity ---

func figSize(kind simbfs.GraphKind, m machine.Model) func(io.Writer, harnessConfig) error {
	return func(w io.Writer, cfg harnessConfig) error {
		threads := m.Topo.TotalThreads()
		if cfg.sim() {
			fmt.Fprintf(w, "-- simulated (%s model, %s, %d threads), ME/s --\n", m.Topo.Name, kind, threads)
			fmt.Fprintln(w, "vertices  d=8     d=16    d=32")
			for _, n := range []float64{1e6, 2e6, 4e6, 8e6, 16e6, 32e6} {
				fmt.Fprintf(w, "%-9s", stats.FormatCount(int64(n)))
				for _, d := range []float64{8, 16, 32} {
					wl := simbfs.Workload{Kind: kind, N: n, Degree: d}
					fmt.Fprintf(w, " %-7.0f", simbfs.SimulateBest(wl, m, threads).RatePerSec/1e6)
				}
				fmt.Fprintln(w)
			}
		}
		if cfg.measured() {
			fmt.Fprintf(w, "-- measured on this host (%s d=8, %d threads, logical EP) --\n", kind, 4)
			fmt.Fprintln(w, "vertices  ME/s")
			maxScale := cfg.Scale
			if cfg.Short && maxScale > 16 {
				maxScale = 16
			}
			for s := maxScale - 4; s <= maxScale; s++ {
				if s < 10 {
					continue
				}
				g, err := measuredGraph(kind, 1<<s, 8, cfg.Seed)
				if err != nil {
					return err
				}
				rate, err := bestBFS(g, 4, cfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-9s %.1f\n", stats.FormatCount(int64(1)<<s), rate/1e6)
			}
		}
		return nil
	}
}

// --- Fig. 10 ---

func runFig10(w io.Writer, cfg harnessConfig) error {
	if cfg.sim() {
		fmt.Fprintln(w, "-- simulated (EX model): one independent single-socket BFS per socket --")
		fmt.Fprintln(w, "sockets  aggregate-ME/s")
		wl := simbfs.Workload{Kind: simbfs.Uniform, N: 8e6, Degree: 16}
		perSocket := simbfs.Simulate(wl, simbfs.Config{
			Model: machine.EX(), Threads: 16, Variant: simbfs.VariantBitmapDC,
		})
		for s := 1; s <= 4; s++ {
			fmt.Fprintf(w, "%-8d %.0f\n", s, float64(s)*perSocket.RatePerSec/1e6)
		}
	}
	if cfg.measured() {
		n := cfg.measuredN() / 4
		if n < 1<<12 {
			n = 1 << 12
		}
		fmt.Fprintln(w, "-- measured on this host: concurrent independent BFS instances --")
		fmt.Fprintln(w, "instances  aggregate-ME/s")
		for _, instances := range []int{1, 2, 4} {
			graphs := make([]*graph.Graph, instances)
			for i := range graphs {
				g, err := measuredUniform(n, 16, cfg.Seed+uint64(i))
				if err != nil {
					return err
				}
				graphs[i] = g
			}
			start := time.Now()
			type out struct {
				edges int64
				err   error
			}
			ch := make(chan out, instances)
			for i := range graphs {
				go func(i int) {
					res, err := core.BFS(graphs[i], 0, core.Options{
						Algorithm: core.AlgSingleSocket, Threads: 2, Tracer: cfg.Tracer,
					})
					if err != nil {
						ch <- out{0, err}
						return
					}
					ch <- out{res.EdgesTraversed, nil}
				}(i)
			}
			var totalEdges int64
			for range graphs {
				o := <-ch
				if o.err != nil {
					return o.err
				}
				totalEdges += o.edges
			}
			elapsed := time.Since(start).Seconds()
			fmt.Fprintf(w, "%-10d %.1f\n", instances, float64(totalEdges)/elapsed/1e6)
		}
	}
	return nil
}

// --- Tables ---

func runTable1(w io.Writer, _ harnessConfig) error {
	for _, m := range []topology.Machine{topology.NehalemEP, topology.NehalemEX} {
		fmt.Fprintf(w, "%-12s sockets=%d cores/socket=%d threads/core=%d clock=%.2fGHz L1=%dKB L2=%dKB L3=%dMB line=%dB channels=%d mem=%dGB\n",
			m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.ClockGHz,
			m.L1KB, m.L2KB, m.L3MB, m.CacheLineBytes, m.MemChannels, m.MemoryGB)
	}
	return nil
}

func runTable2(w io.Writer, _ harnessConfig) error {
	fmt.Fprintf(w, "%-20s %-18s %-8s %-8s %-8s %-8s\n", "system", "cpu", "GHz", "sockets", "threads", "memGB")
	for _, s := range refdata.TableII {
		fmt.Fprintf(w, "%-20s %-18s %-8.2f %-8d %-8d %-8d\n",
			s.Name, s.CPU, s.SpeedGHz, s.Sockets, s.Threads, s.MemoryGB)
	}
	return nil
}

func runTable3(w io.Writer, cfg harnessConfig) error {
	fmt.Fprintf(w, "%-28s %-18s %-6s %-22s %-10s\n", "reference", "system", "procs", "graph", "ME/s")
	for _, r := range refdata.TableIII {
		size := ""
		if r.Vertices > 0 {
			size = fmt.Sprintf(" %s/%s", stats.FormatCount(r.Vertices), stats.FormatCount(r.Edges))
		}
		fmt.Fprintf(w, "%-28s %-18s %-6d %-22s %-10.0f\n",
			r.Reference, r.System, r.Processors, r.GraphType+size, r.RateMEs)
	}
	if cfg.sim() {
		fmt.Fprintln(w, "\n-- this work (simulated 4-socket Nehalem EX, 64 threads) vs the headlines --")
		ex := machine.EX()
		rows := []struct {
			desc    string
			w       simbfs.Workload
			baseME  float64
			claimed float64
		}{
			{"uniform 64M/512M vs Cray XMT-128", simbfs.Workload{Kind: simbfs.Uniform, N: 64e6, Degree: 8}, 210, 2.4},
			{"R-MAT 200M/1B vs Cray MTA-2/40", simbfs.Workload{Kind: simbfs.RMAT, N: 200e6, Degree: 5}, 500, 1.1},
			{"uniform d=50 vs BlueGene/L-256", simbfs.Workload{Kind: simbfs.Uniform, N: 64e6, Degree: 50}, 232, 5.0},
		}
		for _, r := range rows {
			got := simbfs.SimulateBest(r.w, ex, 64).RatePerSec / 1e6
			fmt.Fprintf(w, "%-36s %6.0f ME/s = %.1fx published (paper claims %.1fx)\n",
				r.desc, got, got/r.baseME, r.claimed)
		}
	}
	return nil
}

// --- extensions beyond the paper ---

func runExtHybrid(w io.Writer, cfg harnessConfig) error {
	if !cfg.measured() {
		fmt.Fprintln(w, "(measured-only experiment; rerun with -mode measured or both)")
		return nil
	}
	n := cfg.measuredN()
	fmt.Fprintln(w, "-- measured: top-down (Alg. 2) vs direction-optimizing hybrid --")
	fmt.Fprintln(w, "(effective-ME/s divides the full edge count by wall time, so the")
	fmt.Fprintln(w, " rows are directly comparable despite the hybrid scanning less)")
	fmt.Fprintln(w, "graph          algorithm             scanned/m  time        effective-ME/s")
	for _, d := range []int{8, 16} {
		g, err := measuredUniform(n, d, cfg.Seed)
		if err != nil {
			return err
		}
		gt := g.Transpose()
		for _, mode := range []struct {
			name string
			opt  core.Options
		}{
			{"top-down", core.Options{Algorithm: core.AlgSingleSocket, Threads: 4, Tracer: cfg.Tracer}},
			{"hybrid", core.Options{Algorithm: core.AlgDirectionOptimizing, Threads: 4, Transpose: gt,
				Tracer: cfg.Tracer}},
		} {
			res, err := core.BFS(g, 0, mode.opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "uniform d=%-4d %-21s %-10.2f %-11v %.1f\n",
				d, mode.name,
				float64(res.EdgesTraversed)/float64(g.NumEdges()),
				res.Duration.Round(time.Microsecond*100),
				float64(g.NumEdges())/res.Duration.Seconds()/1e6)
		}
	}
	return nil
}

func runExtCluster(w io.Writer, cfg harnessConfig) error {
	if !cfg.sim() {
		fmt.Fprintln(w, "(simulated-only experiment; rerun with -mode sim or both)")
		return nil
	}
	wl := simbfs.Workload{Kind: simbfs.Uniform, N: 128e6, Degree: 16}
	fmt.Fprintln(w, "-- projected: EX nodes joined by a cluster network, uniform 128M/2B --")
	fmt.Fprintln(w, "nodes  IB-QDR-GE/s  comm%   10GigE-GE/s  comm%")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		ib, err := simbfs.SimulateCluster(wl, simbfs.ClusterConfig{
			Node: machine.EX(), ThreadsPerNode: 64, Nodes: p,
			Net: simbfs.InfiniBandQDR, BatchSize: 4096,
		})
		if err != nil {
			return err
		}
		eth, err := simbfs.SimulateCluster(wl, simbfs.ClusterConfig{
			Node: machine.EX(), ThreadsPerNode: 64, Nodes: p,
			Net: simbfs.TenGigE, BatchSize: 4096,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %-12.2f %-7.0f %-12.2f %.0f\n",
			p, ib.RatePerSec/1e9, ib.CommFraction*100,
			eth.RatePerSec/1e9, eth.CommFraction*100)
	}
	return nil
}

// --- helpers ---

func threadsFor(m machine.Model) []int {
	if m.Topo.TotalThreads() >= 64 {
		return []int{1, 2, 4, 8, 16, 32, 64}
	}
	return []int{1, 2, 4, 8, 16}
}

func measuredGraph(kind simbfs.GraphKind, n, d int, seed uint64) (*graph.Graph, error) {
	if kind == simbfs.RMAT {
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return measuredRMAT(scale, int64(n)*int64(d), seed)
	}
	return measuredUniform(n, d, seed)
}
