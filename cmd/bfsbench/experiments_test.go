package main

import (
	"bytes"
	"strings"
	"testing"
)

// simCfg runs experiments in simulated-only short mode, so the tests
// stay fast and host-independent.
var simCfg = harnessConfig{Mode: "sim", Scale: 14, Seed: 1, Short: true}

// measuredCfg exercises the measured paths at tiny scale.
var measuredCfg = harnessConfig{Mode: "measured", Scale: 12, Seed: 1, Short: true}

func TestEveryExperimentRunsSimulated(t *testing.T) {
	for id, e := range experiments {
		var buf bytes.Buffer
		if err := e.run(&buf, simCfg); err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		switch id {
		case "fig4":
			// fig4 is measured-only; empty output is fine in sim mode.
		case "ext-hybrid":
			// measured-only: prints a notice in sim mode.
		default:
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", id)
			}
		}
	}
}

func TestEveryExperimentRunsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiments exercise real memory benchmarks")
	}
	for id, e := range experiments {
		var buf bytes.Buffer
		if err := e.run(&buf, measuredCfg); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestFig2OutputShape(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig2(&buf, simCfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"simulated", "depth=1", "depth=16", "[L1]", "[DRAM]"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3OutputShowsSocketColumn(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig3(&buf, simCfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sockets") {
		t.Errorf("fig3 output missing socket column:\n%s", buf.String())
	}
}

func TestTable3OutputContainsHeadlines(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable3(&buf, simCfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Cray XMT", "MTA-2", "BlueGene", "paper claims 2.4x", "paper claims 5.0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestTable1MatchesTopology(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(&buf, simCfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Nehalem-EP", "Nehalem-EX", "L3=24MB", "L3=8MB", "clock=2.26GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4MeasuredShowsDoubleCheckEffect(t *testing.T) {
	var buf bytes.Buffer
	cfg := harnessConfig{Mode: "measured", Scale: 14, Seed: 1, Short: true}
	if err := runFig4(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bitmap-reads") || !strings.Contains(out, "atomic-ops") {
		t.Errorf("fig4 output malformed:\n%s", out)
	}
}

func TestMeasuredGraphKinds(t *testing.T) {
	gU, err := measuredGraph(0, 1<<10, 4, 1) // uniform
	if err != nil {
		t.Fatal(err)
	}
	if gU.NumVertices() != 1<<10 {
		t.Errorf("uniform vertices = %d", gU.NumVertices())
	}
	gR, err := measuredGraph(1, 1<<10, 4, 1) // rmat
	if err != nil {
		t.Fatal(err)
	}
	if gR.NumVertices() != 1<<10 || gR.NumEdges() != 4<<10 {
		t.Errorf("rmat shape = %d/%d", gR.NumVertices(), gR.NumEdges())
	}
}

func TestHarnessConfigHelpers(t *testing.T) {
	both := harnessConfig{Mode: "both"}
	if !both.sim() || !both.measured() {
		t.Error("both mode should enable both halves")
	}
	sim := harnessConfig{Mode: "sim"}
	if !sim.sim() || sim.measured() {
		t.Error("sim mode wrong")
	}
	short := harnessConfig{Scale: 20, Short: true}
	if short.measuredN() != 1<<16 {
		t.Errorf("short measuredN = %d, want 2^16", short.measuredN())
	}
	full := harnessConfig{Scale: 18}
	if full.measuredN() != 1<<18 {
		t.Errorf("measuredN = %d, want 2^18", full.measuredN())
	}
}
