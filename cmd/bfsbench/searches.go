package main

import (
	"fmt"
	"io"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/rng"
	"mcbfs/internal/stats"
)

// runSearches exercises the amortized-search-session path: one Searcher
// over one R-MAT graph, issuing many queries back to back. It reports
// the cold rate (first query, session setup charged to it), the warm
// distribution over the remaining queries, and end-to-end queries/sec —
// the figure of merit for repeated-search workloads (landmark tables,
// st-queries, K3-style neighbourhood extraction) as opposed to the
// single-search TEPS of the experiment tables.
func runSearches(w io.Writer, cfg harnessConfig, searches int) error {
	if searches < 1 {
		return fmt.Errorf("searches %d must be >= 1", searches)
	}
	n := cfg.measuredN()
	g, err := measuredRMAT(log2(n), int64(n)*16, cfg.Seed)
	if err != nil {
		return err
	}

	// Sample roots with non-zero degree, Graph500-style, reusing roots
	// cyclically if the component structure offers fewer than requested.
	r := rng.New(cfg.Seed ^ 0x5ea5c)
	roots := make([]graph.Vertex, 0, searches)
	for attempts := 0; len(roots) < searches && attempts < 100*searches; attempts++ {
		v := graph.Vertex(r.Intn(g.NumVertices()))
		if g.Degree(v) > 0 {
			roots = append(roots, v)
		}
	}
	if len(roots) == 0 {
		return fmt.Errorf("no non-isolated roots at scale %d", log2(n))
	}

	setupStart := time.Now()
	s, err := core.NewSearcher(g, core.Options{Tracer: cfg.Tracer})
	if err != nil {
		return err
	}
	defer s.Close()
	setup := time.Since(setupStart)

	var (
		teps     []float64
		coldTEPS float64
		total    time.Duration
	)
	for i, root := range roots {
		res, err := s.BFS(root)
		if err != nil {
			return err
		}
		total += res.Duration
		teps = append(teps, res.EdgesPerSecond())
		if i == 0 {
			if d := setup + res.Duration; d > 0 {
				coldTEPS = float64(res.EdgesTraversed) / d.Seconds()
			}
		}
	}

	fmt.Fprintf(w, "searches=%d scale=%d: %.1f queries/sec over one session (setup %v amortized)\n",
		len(roots), log2(n), float64(len(roots))/(setup+total).Seconds(),
		setup.Round(time.Microsecond))
	fmt.Fprintf(w, "  cold:  %s TEPS (query 0, session setup included)\n", stats.FormatRate(coldTEPS))
	if len(teps) > 1 {
		warm := teps[1:]
		fmt.Fprintf(w, "  warm:  %s harmonic-mean TEPS (min %s, median %s, max %s)\n",
			stats.FormatRate(stats.HarmonicMean(warm)),
			stats.FormatRate(stats.Quantile(warm, 0)),
			stats.FormatRate(stats.Quantile(warm, 0.5)),
			stats.FormatRate(stats.Quantile(warm, 1)))
	}
	return nil
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}
