package main

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs"
	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
	"mcbfs/internal/rng"
	"mcbfs/internal/stats"
)

// sampleRoots draws exactly want roots with non-zero degree,
// Graph500-style, cycling the distinct sample when the component
// structure offers fewer than requested (an earlier version silently
// ran fewer queries instead). The second return is the number of
// distinct roots sampled; zero distinct roots is the caller's error.
func sampleRoots(g *graph.Graph, want int, seed uint64) ([]graph.Vertex, int) {
	r := rng.New(seed ^ 0x5ea5c)
	roots := make([]graph.Vertex, 0, want)
	for attempts := 0; len(roots) < want && attempts < 100*want; attempts++ {
		v := graph.Vertex(r.Intn(g.NumVertices()))
		if g.Degree(v) > 0 {
			roots = append(roots, v)
		}
	}
	distinct := len(roots)
	for i := 0; len(roots) < want && distinct > 0; i++ {
		roots = append(roots, roots[i%distinct])
	}
	return roots, distinct
}

// runSearches exercises the amortized-search-session path: one Searcher
// over one R-MAT graph, issuing many queries back to back. It reports
// the cold rate (first query, session setup charged to it), the warm
// distribution over the remaining queries, and end-to-end queries/sec —
// the figure of merit for repeated-search workloads (landmark tables,
// st-queries, K3-style neighbourhood extraction) as opposed to the
// single-search TEPS of the experiment tables.
// When batchWidth > 0, the same roots are then replayed through a
// BatchSearcher at that lane width, reporting batched queries/sec
// against the single-lane session — the MS-BFS amortization measured on
// identical work.
func runSearches(w io.Writer, cfg harnessConfig, searches, batchWidth int) error {
	if searches < 1 {
		return fmt.Errorf("searches %d must be >= 1", searches)
	}
	n := cfg.measuredN()
	g, err := measuredRMAT(log2(n), int64(n)*16, cfg.Seed)
	if err != nil {
		return err
	}

	roots, distinct := sampleRoots(g, searches, cfg.Seed)
	if distinct == 0 {
		return fmt.Errorf("no non-isolated roots at scale %d", log2(n))
	}
	if distinct < searches {
		fmt.Fprintf(w, "note: only %d distinct non-isolated roots sampled; cycling them to %d queries\n",
			distinct, searches)
	}

	rd, err := reorderFor(w, g, cfg)
	if err != nil {
		return err
	}

	setupStart := time.Now()
	s, err := core.NewSearcher(g, core.Options{Tracer: cfg.Tracer, Ordering: cfg.Order, Reordered: rd,
		EdgeBudget: cfg.EdgeBudget})
	if err != nil {
		return err
	}
	defer s.Close()
	setup := time.Since(setupStart)

	var (
		teps     []float64
		coldTEPS float64
		total    time.Duration
	)
	for i, root := range roots {
		res, err := s.BFS(root)
		if err != nil {
			return err
		}
		total += res.Duration
		teps = append(teps, res.EdgesPerSecond())
		if i == 0 {
			if d := setup + res.Duration; d > 0 {
				coldTEPS = float64(res.EdgesTraversed) / d.Seconds()
			}
		}
	}

	singleQPS := float64(len(roots)) / (setup + total).Seconds()
	fmt.Fprintf(w, "searches=%d scale=%d order=%s: %.1f queries/sec over one session (setup %v amortized)\n",
		len(roots), log2(n), cfg.Order, singleQPS, setup.Round(time.Microsecond))
	fmt.Fprintf(w, "  cold:  %s TEPS (query 0, session setup included)\n", stats.FormatRate(coldTEPS))
	if len(teps) > 1 {
		warm := teps[1:]
		fmt.Fprintf(w, "  warm:  %s harmonic-mean TEPS (min %s, median %s, max %s)\n",
			stats.FormatRate(stats.HarmonicMean(warm)),
			stats.FormatRate(stats.Quantile(warm, 0)),
			stats.FormatRate(stats.Quantile(warm, 0.5)),
			stats.FormatRate(stats.Quantile(warm, 1)))
	}
	if batchWidth > 0 {
		return runBatchedSearches(w, g, rd, roots, batchWidth, cfg, singleQPS)
	}
	return nil
}

// reorderFor relabels g under cfg.Order, printing the one-time cost on
// its own report line so it is never conflated with session setup or
// query time. Natural order returns (nil, nil) and prints nothing.
func reorderFor(w io.Writer, g *graph.Graph, cfg harnessConfig) (*graph.Reordered, error) {
	if cfg.Order == graph.OrderNatural {
		return nil, nil
	}
	rd, err := g.Reorder(cfg.Order)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "reorder: ordering %s in %v (perm %v + relabel %v, %d hub vertices holding %d edge slots)\n",
		cfg.Order, rd.ReorderTime().Round(time.Microsecond),
		rd.PermTime.Round(time.Microsecond), rd.RelabelTime.Round(time.Microsecond),
		rd.HubVertices, rd.HubEdges)
	return rd, nil
}

// runBatchedSearches replays roots through one MS-BFS session at the
// given lane width and prints batched throughput next to the
// single-lane session's queries/sec.
func runBatchedSearches(w io.Writer, g *graph.Graph, rd *graph.Reordered, roots []graph.Vertex, width int, cfg harnessConfig, singleQPS float64) error {
	if width > core.MaxLanes {
		width = core.MaxLanes
	}
	setupStart := time.Now()
	bs, err := core.NewBatchSearcher(g, core.BatchOptions{
		Width:     width,
		Telemetry: cfg.Telemetry,
		Ordering:  cfg.Order,
		Reordered: rd,
	})
	if err != nil {
		return err
	}
	defer bs.Close()
	elapsed := time.Since(setupStart)
	var laneEdges, scanned int64
	for off := 0; off < len(roots); off += width {
		chunk := roots[off:min(off+width, len(roots))]
		res, err := bs.Search(chunk)
		if err != nil {
			return err
		}
		elapsed += res.Duration
		scanned += res.EdgesScanned
		for l := range chunk {
			laneEdges += res.Edges[l]
		}
	}
	qps := float64(len(roots)) / elapsed.Seconds()
	amort := 1.0
	if scanned > 0 {
		amort = float64(laneEdges) / float64(scanned)
	}
	fmt.Fprintf(w, "  batch: width %d: %.1f queries/sec (%.2fx vs single-lane), %s aggregate TEPS, %.1fx edge-scan amortization\n",
		width, qps, qps/singleQPS, stats.FormatRate(float64(laneEdges)/elapsed.Seconds()), amort)
	return nil
}

// runClientSearches is the concurrent-serving benchmark: M client
// goroutines issue the same total number of queries against an
// mcbfs.Pool of warm Searchers, reporting end-to-end queries/sec and
// the query-latency distribution under contention — the serving-shape
// figure of merit, where admission waits and reset costs show up in
// tail latency rather than in single-search TEPS. Client-observed
// latency (admission wait included) goes into an obs.Histogram with one
// shard per client, so the measurement adds no cross-client contention
// and no per-query allocation — unlike the earlier version, which
// appended every latency to a slice and sorted the lot.
// When batchLanes > 0, the pool runs in batching mode: concurrently
// admitted queries coalesce (up to batchLanes of them per admission
// window) into shared MS-BFS traversals instead of each borrowing a
// Searcher.
// When churn > 0, a swapper goroutine hot-swaps that many freshly
// generated snapshots (same scale, different seeds) into the pool while
// the clients run, spaced across the workload — the reported latency
// distribution then covers queries served across live swaps, and the
// swap/drain counters are printed alongside the serving ones.
func runClientSearches(w io.Writer, cfg harnessConfig, searches, clients, poolSize, batchLanes int, batchWindow time.Duration, churn int) error {
	if searches < 1 {
		return fmt.Errorf("searches %d must be >= 1", searches)
	}
	if clients < 1 {
		return fmt.Errorf("clients %d must be >= 1", clients)
	}
	n := cfg.measuredN()
	g, err := measuredRMAT(log2(n), int64(n)*16, cfg.Seed)
	if err != nil {
		return err
	}
	roots, distinct := sampleRoots(g, searches, cfg.Seed)
	if distinct == 0 {
		return fmt.Errorf("no non-isolated roots at scale %d", log2(n))
	}

	if poolSize <= 0 {
		// Default: split the host's parallelism across a handful of
		// Searchers so clients actually contend for sessions.
		poolSize = runtime.GOMAXPROCS(0) / 2
		if poolSize < 1 {
			poolSize = 1
		}
		if poolSize > clients {
			poolSize = clients
		}
	}
	threads := runtime.GOMAXPROCS(0) / poolSize
	if threads < 1 {
		threads = 1
	}

	rd, err := reorderFor(w, g, cfg)
	if err != nil {
		return err
	}

	var serving obs.Metrics
	setupStart := time.Now()
	popt := mcbfs.PoolOptions{
		Size:      poolSize,
		Search: mcbfs.Options{Threads: threads, Tracer: cfg.Tracer, Ordering: cfg.Order, Reordered: rd,
			EdgeBudget: cfg.EdgeBudget},
		Metrics:   &serving,
		Telemetry: cfg.Telemetry,
	}
	if batchLanes > 0 {
		popt.Batching = mcbfs.BatchingOptions{Lanes: batchLanes, Window: batchWindow}
	}
	pool, err := mcbfs.NewPool(g, popt)
	if err != nil {
		return err
	}
	defer pool.Close()
	setup := time.Since(setupStart)

	var (
		next     atomic.Int64
		done     atomic.Int64
		firstErr atomic.Value
		lat      = obs.NewHistogram(clients)
		wg       sync.WaitGroup
	)
	ctx := context.Background()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(roots)) {
					return
				}
				t0 := time.Now()
				if _, err := pool.Query(ctx, roots[i]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lat.Record(c, time.Since(t0))
				done.Add(1)
			}
		}(c)
	}
	// Churn mode: swap fresh snapshots in while the clients run. Each
	// swap is held until the clients have worked through another even
	// share of the workload, so the latency distribution genuinely
	// interleaves queries with swaps rather than front-loading them.
	var swapErr error
	if churn > 0 {
		swapDone := make(chan struct{})
		go func() {
			defer close(swapDone)
			for s := 1; s <= churn; s++ {
				gate := int64(s) * int64(len(roots)) / int64(churn+1)
				for done.Load() < gate && next.Load() < int64(len(roots)) {
					if firstErr.Load() != nil {
						return // the clients died; don't spin on a stalled gate
					}
					time.Sleep(100 * time.Microsecond)
				}
				fresh, err := measuredRMAT(log2(n), int64(n)*16, cfg.Seed+uint64(s))
				if err != nil {
					swapErr = fmt.Errorf("generating churn snapshot %d: %w", s, err)
					return
				}
				if err := pool.Swap(fresh); err != nil {
					swapErr = fmt.Errorf("churn swap %d: %w", s, err)
					return
				}
			}
		}()
		<-swapDone
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	if swapErr != nil {
		return swapErr
	}

	snap := serving.Snapshot()
	dist := lat.Snapshot()
	fmt.Fprintf(w, "clients=%d pool=%d threads/searcher=%d scale=%d order=%s: %.1f queries/sec over %d queries (pool setup %v)\n",
		clients, poolSize, threads, log2(n), cfg.Order,
		float64(done.Load())/elapsed.Seconds(), done.Load(), setup.Round(time.Microsecond))
	fmt.Fprintf(w, "  latency: p50 %v  p90 %v  p99 %v  p99.9 %v  max %v\n",
		dist.Quantile(0.5).Round(time.Microsecond),
		dist.Quantile(0.9).Round(time.Microsecond),
		dist.Quantile(0.99).Round(time.Microsecond),
		dist.Quantile(0.999).Round(time.Microsecond),
		time.Duration(dist.MaxNs).Round(time.Microsecond))
	fmt.Fprintf(w, "  serving: cancelled=%d shed=%d recovered=%d\n",
		snap["cancelled"], snap["shed"], snap["recovered"])
	if churn > 0 {
		// Drains run asynchronously once the last borrower returns; give
		// them a moment so the report shows the settled state.
		for waited := time.Duration(0); pool.Draining() > 0 && waited < 2*time.Second; waited += 5 * time.Millisecond {
			time.Sleep(5 * time.Millisecond)
		}
		snap = serving.Snapshot()
		meanSwap := time.Duration(0)
		if snap["swaps"] > 0 {
			meanSwap = time.Duration(snap["swapNs"] / snap["swaps"])
		}
		fmt.Fprintf(w, "  churn: %d swaps (mean build+publish %v, degraded %d), epoch %d serving, %d snapshots drained, %d still draining\n",
			snap["swaps"], meanSwap.Round(time.Microsecond), snap["swapDegraded"],
			pool.Epoch(), snap["snapshotsDrained"], pool.Draining())
	}
	if batchLanes > 0 && snap["batchTraversals"] > 0 {
		meanWidth := float64(snap["batchLanes"]) / float64(snap["batchTraversals"])
		amort := 1.0
		if snap["batchEdges"] > 0 {
			amort = float64(snap["batchLaneEdges"]) / float64(snap["batchEdges"])
		}
		fmt.Fprintf(w, "  batching: %d traversals served %d queries (mean width %.1f of %d lanes, window %v, %.1fx edge-scan amortization)\n",
			snap["batchTraversals"], snap["batchLanes"], meanWidth, batchLanes, batchWindow, amort)
	}
	return nil
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}
