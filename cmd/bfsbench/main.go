// Command bfsbench regenerates the tables and figures of the SC'10
// paper "Scalable Graph Exploration on Multicore Processors".
//
// Each experiment prints the same rows/series the paper reports, from
// two sources:
//
//   - simulated: the calibrated Nehalem machine model run at the
//     paper's full scale (up to 200M vertices / 1B edges);
//   - measured: the real concurrent library run on this host at a
//     host-appropriate scale (the paper's testbed had 64 hardware
//     threads and 256 GB of memory; this host typically does not).
//
// Usage:
//
//	bfsbench -experiment fig6a            # one experiment
//	bfsbench -experiment all              # everything
//	bfsbench -experiment fig8b -mode sim  # simulated only
//	bfsbench -list                        # list experiment ids
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-reproduced results.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		expID = flag.String("experiment", "", "experiment id (fig2..fig10, table1..table3, all)")
		mode  = flag.String("mode", "both", "sim | measured | both")
		scale = flag.Int("scale", 20, "log2 of the vertex count for measured runs")
		seed  = flag.Uint64("seed", 42, "workload seed for measured runs")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		short = flag.Bool("short", false, "shrink measured runs (CI-friendly)")
	)
	flag.Parse()

	cfg := harnessConfig{
		Mode:  *mode,
		Scale: *scale,
		Seed:  *seed,
		Short: *short,
	}
	if cfg.Mode != "sim" && cfg.Mode != "measured" && cfg.Mode != "both" {
		fmt.Fprintf(os.Stderr, "bfsbench: unknown mode %q\n", cfg.Mode)
		os.Exit(2)
	}

	if *list {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-8s %s\n", id, experiments[id].title)
		}
		return
	}

	if *expID == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if *expID == "all" {
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		for _, id := range strings.Split(*expID, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "bfsbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		e := experiments[id]
		fmt.Printf("== %s — %s ==\n", id, e.title)
		if err := e.run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
