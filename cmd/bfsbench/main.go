// Command bfsbench regenerates the tables and figures of the SC'10
// paper "Scalable Graph Exploration on Multicore Processors".
//
// Each experiment prints the same rows/series the paper reports, from
// two sources:
//
//   - simulated: the calibrated Nehalem machine model run at the
//     paper's full scale (up to 200M vertices / 1B edges);
//   - measured: the real concurrent library run on this host at a
//     host-appropriate scale (the paper's testbed had 64 hardware
//     threads and 256 GB of memory; this host typically does not).
//
// Usage:
//
//	bfsbench -experiment fig6a            # one experiment
//	bfsbench -experiment all              # everything
//	bfsbench -experiment fig8b -mode sim  # simulated only
//	bfsbench -list                        # list experiment ids
//	bfsbench -trace out.json -breakdown   # one traced BFS, Chrome trace + phase table
//	bfsbench -searches 64 -scale 20       # repeated searches on one session, cold vs warm
//	bfsbench -searches 256 -clients 8     # concurrent clients over a Searcher pool: qps + p50/p99
//	bfsbench -experiment all -pprof :6060 # live pprof/expvar while experiments run
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-reproduced results.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strings"
	"time"

	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

func main() {
	var (
		expID     = flag.String("experiment", "", "experiment id (fig2..fig10, table1..table3, all)")
		mode      = flag.String("mode", "both", "sim | measured | both")
		scale     = flag.Int("scale", 20, "log2 of the vertex count for measured runs")
		seed      = flag.Uint64("seed", 42, "workload seed for measured runs")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		short     = flag.Bool("short", false, "shrink measured runs (CI-friendly)")
		searches  = flag.Int("searches", 0, "run N back-to-back searches on one amortized session and report queries/sec (cold vs warm)")
		clients   = flag.Int("clients", 1, "with -searches: issue the N queries from M concurrent clients through a Searcher pool, reporting queries/sec and p50/p99 latency")
		poolSize  = flag.Int("pool", 0, "with -clients: number of pooled Searchers (0 = GOMAXPROCS/2 capped at -clients)")
		batch     = flag.Int("batch", 0, "with -searches: MS-BFS lane width — single-client mode replays the roots through one batched session; clients mode runs the pool in batching mode, coalescing concurrent queries (0 = off, max 64)")
		batchWin  = flag.Duration("batch-window", 100*time.Microsecond, "with -clients and -batch: how long an admission window stays open to coalesce queries into one traversal")
		churn     = flag.Int("churn", 0, "with -clients: hot-swap N freshly generated graph snapshots into the pool while the clients run, reporting tail latency across the swaps")
		traceOut  = flag.String("trace", "", "run one traced BFS and write a Chrome trace-event JSON file (view in Perfetto)")
		breakdown = flag.Bool("breakdown", false, "run one traced BFS and print its per-level phase breakdown")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and live expvar counters on this address (e.g. :6060)")
		outPath   = flag.String("o", "", "write output to this file instead of stdout")
		buildPar  = flag.Int("build-threads", 0, "CSR construction worker count (0 = GOMAXPROCS)")
		order     = flag.String("order", "natural", "with -searches: vertex ordering applied to the measured graph (natural, degree, dbg, rcm); reorder time reported separately")
		edgeBud   = flag.Int64("edge-budget", 0, "degree-aware frontier scheduling for measured runs: 0 = auto budget, -1 = off (fixed 128-vertex chunks), >0 = explicit per-chunk edge budget")
	)
	flag.Parse()

	if *buildPar > 0 {
		graph.SetBuildParallelism(*buildPar)
	}

	ordering, err := graph.ParseOrdering(*order)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
		os.Exit(2)
	}

	cfg := harnessConfig{
		Mode:       *mode,
		Scale:      *scale,
		Seed:       *seed,
		Short:      *short,
		Order:      ordering,
		EdgeBudget: *edgeBud,
	}
	if cfg.Mode != "sim" && cfg.Mode != "measured" && cfg.Mode != "both" {
		fmt.Fprintf(os.Stderr, "bfsbench: unknown mode %q\n", cfg.Mode)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		// Live observability for long runs: every measured BFS feeds a
		// process-wide obs.Metrics published under /debug/vars, the same
		// counters plus the latency histogram and flight recorder are
		// served in Prometheus text format at /metrics and as JSON at
		// /debug/bfs, and the default mux already carries /debug/pprof
		// via the blank import. The -clients pool reports into the same
		// telemetry hub.
		var live obs.Metrics
		live.Publish("mcbfs")
		cfg.Tracer = live.Tracer()
		cfg.Telemetry = obs.NewTelemetry(obs.TelemetryOptions{
			Shards:  *clients,
			Metrics: &live,
		})
		http.Handle("/metrics", cfg.Telemetry.MetricsHandler())
		http.Handle("/debug/bfs", cfg.Telemetry.StatusHandler())
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "bfsbench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "bfsbench: pprof at http://%s/debug/pprof, Prometheus at /metrics, status at /debug/bfs, expvar at /debug/vars\n",
			*pprofAddr)
	}

	if *list {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-8s %s\n", id, experiments[id].title)
		}
		return
	}

	traceMode := *traceOut != "" || *breakdown
	if *expID == "" && !traceMode && *searches == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// All report output goes through an error-checked writer so that a
	// full disk (or a broken pipe on -o) fails loudly.
	out := &errWriter{w: os.Stdout}
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
		outFile = f
		out.w = f
	}
	fatal := func(format string, args ...any) {
		if outFile != nil {
			outFile.Close()
		}
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	if traceMode {
		if err := runTraced(out, cfg, *traceOut, *breakdown); err != nil {
			fatal("bfsbench: trace: %v\n", err)
		}
	}

	if *searches > 0 {
		if *clients > 1 {
			if err := runClientSearches(out, cfg, *searches, *clients, *poolSize, *batch, *batchWin, *churn); err != nil {
				fatal("bfsbench: searches: %v\n", err)
			}
		} else if err := runSearches(out, cfg, *searches, *batch); err != nil {
			fatal("bfsbench: searches: %v\n", err)
		}
	}

	if *expID != "" {
		var ids []string
		if *expID == "all" {
			for id := range experiments {
				ids = append(ids, id)
			}
			sort.Strings(ids)
		} else {
			for _, id := range strings.Split(*expID, ",") {
				id = strings.TrimSpace(id)
				if _, ok := experiments[id]; !ok {
					fatal("bfsbench: unknown experiment %q (use -list)\n", id)
				}
				ids = append(ids, id)
			}
		}

		for _, id := range ids {
			e := experiments[id]
			fmt.Fprintf(out, "== %s — %s ==\n", id, e.title)
			if err := e.run(out, cfg); err != nil {
				fatal("bfsbench: %s: %v\n", id, err)
			}
			fmt.Fprintln(out)
		}
	}

	if out.err != nil {
		fatal("bfsbench: writing output: %v\n", out.err)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
	}
}
