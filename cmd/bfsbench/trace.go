package main

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/stats"
	"mcbfs/internal/topology"
)

// errWriter wraps an io.Writer and remembers the first write error so
// a long run writing to a full disk fails loudly at the end instead of
// silently truncating its output.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// runTraced performs one fully observed BFS — the multi-socket
// algorithm on an R-MAT graph at the harness scale — and exports the
// requested sinks: a Chrome trace-event file (-trace) and a per-level
// phase breakdown table (-breakdown).
func runTraced(w io.Writer, cfg harnessConfig, tracePath string, breakdown bool) error {
	scale := cfg.Scale
	if cfg.Short && scale > 16 {
		scale = 16
	}
	g, err := measuredRMAT(scale, int64(8)<<scale, cfg.Seed)
	if err != nil {
		return err
	}
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		threads = 2
	}
	if threads%2 != 0 {
		threads++
	}
	root := graph.Vertex(cfg.Seed % uint64(g.NumVertices()))
	res, err := core.BFS(g, root, core.Options{
		Algorithm:  core.AlgMultiSocket,
		Threads:    threads,
		Machine:    topology.Generic(2, threads/2, 1),
		Instrument: true,
		Trace:      true,
		Tracer:     cfg.Tracer,
		EdgeBudget: cfg.EdgeBudget,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "R-MAT scale=%d: %s vertices, %s edges\n",
		scale, stats.FormatCount(int64(g.NumVertices())), stats.FormatCount(g.NumEdges()))
	fmt.Fprintf(w, "algorithm: %v, %d threads on a 2-socket logical topology\n",
		res.Algorithm, res.Threads)
	fmt.Fprintf(w, "reached:   %d vertices in %d levels, %s\n",
		res.Reached, res.Levels, stats.FormatRate(res.EdgesPerSecond()))

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := res.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", tracePath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", tracePath, err)
		}
		fmt.Fprintf(w, "trace:     %s (open in ui.perfetto.dev or chrome://tracing)\n", tracePath)
	}
	if breakdown {
		fmt.Fprintln(w)
		if err := res.Trace.WriteBreakdown(w); err != nil {
			return err
		}
	}
	return nil
}
