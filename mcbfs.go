// Package mcbfs is a scalable breadth-first search library for
// multicore shared-memory machines, reproducing Agarwal, Petrini,
// Pasetto and Bader, "Scalable Graph Exploration on Multicore
// Processors" (SC 2010).
//
// The library explores directed graphs in compressed-sparse-row form
// with a level-synchronous parallel BFS in three tiers of refinement:
// a simple shared-queue algorithm, a single-socket algorithm with a
// visited bitmap and double-checked atomic claims, and a multi-socket
// algorithm that partitions the graph per socket and ships remote
// discoveries through batched lock-free channels. The appropriate tier
// is selected automatically from the thread count and machine shape.
//
// # Quick start
//
//	g, err := mcbfs.UniformGraph(1<<20, 16, 42) // 1M vertices, degree 16
//	if err != nil { ... }
//	res, err := mcbfs.BFS(g, 0, mcbfs.Options{})
//	if err != nil { ... }
//	fmt.Printf("reached %d vertices at %s\n",
//		res.Reached, mcbfs.FormatRate(res.EdgesPerSecond()))
//
// # Machine topology
//
// On a multi-socket host, describe the topology so the multi-socket
// tier can partition the graph and wire its channels:
//
//	opts := mcbfs.Options{
//		Threads: 16,
//		Machine: mcbfs.NehalemEP, // or mcbfs.Machine{...} for yours
//	}
//
// The topology is logical: the library does not pin threads (Go offers
// no portable pinning), but partitioning by socket is what removes the
// cross-socket atomic traffic, and that effect follows the data layout
// rather than the pinning.
package mcbfs

import (
	"io"

	"mcbfs/internal/algo"
	"mcbfs/internal/core"
	"mcbfs/internal/dist"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/graph500"
	"mcbfs/internal/obs"
	"mcbfs/internal/ssca2"
	"mcbfs/internal/stats"
	"mcbfs/internal/topology"
)

// Graph is an immutable directed graph in CSR form.
type Graph = graph.Graph

// Vertex identifies a graph vertex.
type Vertex = graph.Vertex

// Edge is a directed edge.
type Edge = graph.Edge

// Options configures a BFS run; the zero value uses GOMAXPROCS workers
// and automatic algorithm selection.
type Options = core.Options

// Result is the outcome of a BFS run.
type Result = core.Result

// LevelStats is per-level instrumentation (enable with
// Options.Instrument).
type LevelStats = core.LevelStats

// Algorithm selects a BFS implementation tier.
type Algorithm = core.Algorithm

// Tracer receives observability callbacks from a BFS run (attach via
// Options.Tracer); implementations must be safe for concurrent use.
type Tracer = obs.Tracer

// TracerFuncs adapts plain functions to the Tracer interface.
type TracerFuncs = obs.TracerFuncs

// Trace is the structured record of a traced BFS run (enable with
// Options.Trace, read from Result.Trace); export it with
// Trace.WriteChromeTrace for Perfetto or chrome://tracing.
type Trace = obs.Trace

// Span is one phase of one worker's timeline within a Trace.
type Span = obs.Span

// LevelBreakdown is one level's folded counters and phase times.
type LevelBreakdown = obs.LevelBreakdown

// Phase labels a portion of a worker's time within a level.
type Phase = obs.Phase

// Metrics is a set of live counters fed by Metrics.Tracer() and
// publishable via expvar.
type Metrics = obs.Metrics

// Telemetry is the serving telemetry hub: a lock-free sharded latency
// histogram, per-outcome rolling-window counters, and a flight recorder
// that retains the slowest recent queries with their per-level phase
// breakdowns. Attach one to a Pool (PoolOptions.Telemetry, or
// implicitly via PoolOptions.ServeMonitor) or to a Searcher
// (Options.Telemetry), and expose it over HTTP with Telemetry.Handler —
// Prometheus text format at /metrics, JSON status at /debug/bfs.
type Telemetry = obs.Telemetry

// TelemetryOptions configures NewTelemetry.
type TelemetryOptions = obs.TelemetryOptions

// NewTelemetry builds a telemetry hub; share one across everything
// that should aggregate into the same histogram and status page.
func NewTelemetry(opt TelemetryOptions) *Telemetry { return obs.NewTelemetry(opt) }

// Histogram is a lock-free sharded log-bucketed latency histogram
// (≤12.5% relative bucket width); the building block Telemetry uses,
// exported for standalone latency measurement.
type Histogram = obs.Histogram

// NewHistogram builds a histogram with the given number of
// contention-free shards (one per recording goroutine).
func NewHistogram(shards int) *Histogram { return obs.NewHistogram(shards) }

// QuerySample is one query's telemetry record as handed to
// Telemetry.RecordQuery; QueryRecord is its retained flight-recorder
// form.
type (
	QuerySample = obs.QuerySample
	QueryRecord = obs.QueryRecord
)

// Outcome classifies how a query ended in telemetry.
type Outcome = obs.Outcome

// Query outcomes.
const (
	OutcomeOK        = obs.OutcomeOK
	OutcomeCancelled = obs.OutcomeCancelled
	OutcomeShed      = obs.OutcomeShed
	OutcomePanic     = obs.OutcomePanic
)

// Phases of a worker's timeline.
const (
	PhaseLocalScan     = obs.PhaseLocalScan
	PhaseQueueDrain    = obs.PhaseQueueDrain
	PhaseBarrierWait   = obs.PhaseBarrierWait
	PhaseFrontierBuild = obs.PhaseFrontierBuild
	PhaseBottomUpScan  = obs.PhaseBottomUpScan
)

// MultiTracer fans tracer callbacks out to several tracers.
func MultiTracer(tracers ...Tracer) Tracer { return obs.MultiTracer(tracers...) }

// Machine describes a shared-memory system's shape.
type Machine = topology.Machine

// RMATParams are the R-MAT generator's quadrant probabilities.
type RMATParams = gen.RMATParams

// Algorithm tiers; see the package documentation of internal/core.
const (
	AlgAuto                = core.AlgAuto
	AlgSequential          = core.AlgSequential
	AlgParallelSimple      = core.AlgParallelSimple
	AlgSingleSocket        = core.AlgSingleSocket
	AlgMultiSocket         = core.AlgMultiSocket
	AlgDirectionOptimizing = core.AlgDirectionOptimizing
)

// NoParent marks an unvisited vertex in Result.Parents.
const NoParent = core.NoParent

// EdgeBudgetOff disables degree-aware frontier scheduling
// (Options.EdgeBudget); see core.EdgeBudgetOff.
const EdgeBudgetOff = core.EdgeBudgetOff

// Predefined machine topologies (the paper's Table I).
var (
	NehalemEP = topology.NehalemEP
	NehalemEX = topology.NehalemEX
)

// GenericMachine returns a topology with the given shape for hosts not
// covered by the predefined ones.
func GenericMachine(sockets, coresPerSocket, threadsPerCore int) Machine {
	return topology.Generic(sockets, coresPerSocket, threadsPerCore)
}

// GTgraphDefaults are the R-MAT parameters of the GTgraph suite used by
// the paper; Graph500Params the later Graph500 parameterization.
var (
	GTgraphDefaults = gen.GTgraphDefaults
	Graph500Params  = gen.Graph500Params
)

// BFS explores g from root and returns the breadth-first tree. Each
// call sets up and tears down a one-shot search session; callers
// issuing repeated searches over one graph should hold a Searcher
// instead and amortize the setup.
func BFS(g *Graph, root Vertex, opt Options) (*Result, error) {
	return core.BFS(g, root, opt)
}

// Searcher is a reusable BFS session: a persistent worker pool plus
// pooled per-search state sized to the bound graph, giving warm
// searches zero per-search setup allocations and an O(touched) reset
// instead of an O(n) reinitialization. Create one with NewSearcher,
// run queries with Searcher.BFS, Searcher.Search or — for cancellable
// / deadline-bounded queries — Searcher.SearchContext, release the
// pool with Close. A Searcher serves one search at a time; use one per
// concurrent query stream, or a Pool to multiplex many callers over a
// fixed set of warm sessions.
type Searcher = core.Searcher

// Query selects per-search overrides (algorithm tier, depth bound) on
// a Searcher; the zero value reruns the session's configuration.
type Query = core.Query

// NewSearcher builds a reusable search session over g. Options selects
// the tier and tuning knobs exactly as for BFS:
//
//	s, err := mcbfs.NewSearcher(g, mcbfs.Options{})
//	if err != nil { ... }
//	defer s.Close()
//	for _, root := range roots {
//		res, err := s.BFS(root)
//		...
//	}
func NewSearcher(g *Graph, opt Options) (*Searcher, error) {
	return core.NewSearcher(g, opt)
}

// BatchSearcher is a reusable multi-source BFS session: up to 64
// single-source searches ("lanes") advanced by one shared traversal,
// so each pass over a vertex's adjacency serves every lane whose
// frontier contains it — N concurrent queries over one graph no longer
// pay N full edge scans. Like Searcher it is a persistent worker pool
// with pooled state and an O(touched) reset; a warm Search performs no
// per-batch heap allocation. Create one with NewBatchSearcher, run
// batches with Search / SearchContext / SearchLanes (per-lane
// contexts), release with Close. For transparent batching of a
// concurrent single-query stream, see PoolOptions.Batching instead.
type BatchSearcher = core.BatchSearcher

// BatchOptions configures a BatchSearcher (lane width, workers,
// telemetry); the zero value is a 64-lane engine with GOMAXPROCS
// workers.
type BatchOptions = core.BatchOptions

// BatchResult is one batch's outcome: per-lane scalars plus extraction
// methods (ParentOf, ExtractParents, SeenMask) over the session's
// pooled lane state. Valid only until the next Search or Close.
type BatchResult = core.BatchResult

// BatchTrees is BatchQuery's detached result: per-lane parent arrays
// and scalars that outlive the session.
type BatchTrees = core.BatchTrees

// MaxBatchLanes is the widest batch one traversal can carry (the lane
// words are 64 bits).
const MaxBatchLanes = core.MaxLanes

// NewBatchSearcher builds a reusable MS-BFS session over g:
//
//	b, err := mcbfs.NewBatchSearcher(g, mcbfs.BatchOptions{})
//	if err != nil { ... }
//	defer b.Close()
//	res, err := b.Search(roots) // up to 64 roots, one lane each
func NewBatchSearcher(g *Graph, opt BatchOptions) (*BatchSearcher, error) {
	return core.NewBatchSearcher(g, opt)
}

// BatchQuery runs one multi-source batch — up to 64 roots, one BFS
// lane each — in a single shared traversal and returns every lane's
// detached parent array. It is the one-shot convenience form; callers
// issuing repeated batches should hold a BatchSearcher and amortize
// the setup.
func BatchQuery(g *Graph, roots []Vertex, opt BatchOptions) (*BatchTrees, error) {
	return core.BatchQuery(g, roots, opt)
}

// ValidateTree checks that parents encodes a correct BFS tree of g
// rooted at root (reachability, parent edges, and breadth-first
// depths).
func ValidateTree(g *Graph, root Vertex, parents []uint32) error {
	return core.ValidateTree(g, root, parents)
}

// TreeDepths returns each vertex's depth in the parent tree, or
// NoDepth for unreached vertices.
func TreeDepths(parents []uint32, root Vertex) []int32 {
	return core.TreeDepths(parents, root)
}

// NoDepth marks unreached vertices in TreeDepths output.
const NoDepth = core.NoDepth

// Ordering selects a locality-optimized vertex ordering: a relabeling
// of the graph that packs vertices likely to be touched together into
// adjacent ids, improving cache behaviour of the per-vertex state
// (parents, visited bitmap) during traversal. Set Options.Ordering (or
// PoolOptions.Search.Ordering) and the session relabels the graph once
// at construction; queries keep speaking original vertex ids — roots
// are translated in and parent arrays translated back out in
// O(touched) per query, with warm queries still allocation-free.
type Ordering = graph.Ordering

// Vertex orderings.
const (
	// OrderNatural keeps the graph's construction-time ids (the
	// default; no relabeling, no translation).
	OrderNatural = graph.OrderNatural
	// OrderDegree sorts vertices by descending out-degree.
	OrderDegree = graph.OrderDegree
	// OrderDegreeGroup packs high-degree hubs into a cache-resident
	// prefix and keeps the low-degree tail in natural order.
	OrderDegreeGroup = graph.OrderDegreeGroup
	// OrderBFS renumbers by BFS level from a high-degree seed
	// (RCM-style), so frontier neighbours stay close.
	OrderBFS = graph.OrderBFS
)

// ParseOrdering maps a CLI-style name ("natural", "degree", "dbg",
// "rcm") to an Ordering.
func ParseOrdering(s string) (Ordering, error) { return graph.ParseOrdering(s) }

// Reordered is the outcome of relabeling a graph under an Ordering:
// the relabeled graph, the permutation pair, timings, and hub-prefix
// stats. Compute one with Reorder and share it across sessions via
// Options.Reordered to pay the relabeling once.
type Reordered = graph.Reordered

// Reorder relabels g under the given ordering. Natural order returns a
// trivial Reordered sharing g.
func Reorder(g *Graph, o Ordering) (*Reordered, error) { return g.Reorder(o) }

// NewGraph builds a graph with n vertices from an edge list.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// NewGraphFromAdjacency builds a graph from explicit adjacency lists.
func NewGraphFromAdjacency(adj [][]Vertex) (*Graph, error) {
	return graph.FromAdjacency(adj)
}

// NewGraphFromArrays builds a graph with n vertices from parallel
// source/target arrays — the natural output shape of edge generators,
// fed straight to the counting-sort CSR builder without materializing
// an []Edge.
func NewGraphFromArrays(n int, srcs, dsts []Vertex) (*Graph, error) {
	return graph.FromArrays(n, srcs, dsts)
}

// SetBuildParallelism caps the worker count used by the parallel CSR
// construction kernels (NewGraph, Transpose, Undirected, Relabel, and
// the generators). 0 restores the default, GOMAXPROCS; 1 forces the
// serial builder. Parallel and serial builds produce byte-identical
// graphs.
func SetBuildParallelism(p int) { graph.SetBuildParallelism(p) }

// BuildParallelism reports the effective CSR construction worker count.
func BuildParallelism() int { return graph.BuildParallelism() }

// LoadGraph reads a graph from a file written by (*Graph).Save,
// discarding any ordering metadata a version-2 file carries.
func LoadGraph(path string) (*Graph, error) {
	return graph.Load(path)
}

// FileMeta is the ordering metadata carried by version-2 graph files:
// the Ordering the stored CSR layout was produced by, and optionally
// the inverse permutation back to original vertex ids.
type FileMeta = graph.FileMeta

// LoadGraphMeta reads a graph together with its ordering metadata (nil
// for files written without any, including all version-1 files).
func LoadGraphMeta(path string) (*Graph, *FileMeta, error) {
	return graph.LoadMeta(path)
}

// UniformGraph generates a uniformly random directed graph with n
// vertices of out-degree degree (the paper's "uniformly random"
// workload).
func UniformGraph(n, degree int, seed uint64) (*Graph, error) {
	return gen.Uniform(n, degree, seed)
}

// RMATGraph generates a scale-free R-MAT graph with 2^scale vertices
// and m edges (the paper's GTgraph workload).
func RMATGraph(scale int, m int64, p RMATParams, seed uint64) (*Graph, error) {
	return gen.RMAT(scale, m, p, seed)
}

// SSCA2Graph generates an SSCA#2-style clustered graph.
func SSCA2Graph(n, maxCliqueSize int, interCliqueFraction float64, seed uint64) (*Graph, error) {
	return gen.SSCA2(n, maxCliqueSize, interCliqueFraction, seed)
}

// GridGraph generates a rows x cols grid with 4- or 8-connectivity.
func GridGraph(rows, cols, conn int) (*Graph, error) {
	return gen.Grid(rows, cols, conn)
}

// FormatRate renders an edges-per-second rate in the paper's units.
func FormatRate(eps float64) string { return stats.FormatRate(eps) }

// ReadDIMACS reads a graph in DIMACS .gr format (the format the
// GTgraph suite emits).
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// ReadEdgeList reads a plain 0-based "src dst" edge list, optionally
// preceded by a "# vertices <n>" header.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// Components is the result of a connected-components run.
type Components = algo.Components

// ConnectedComponents labels the weakly connected components of g —
// the community-analysis primitive the paper's introduction motivates.
// Candidate component roots are flooded up to MaxBatchLanes at a time
// through a shared MS-BFS traversal, so the long tail of small
// components costs a fraction of the adjacency passes repeated BFS
// would pay. Pass symmetric=true when g already contains both
// directions of every edge.
func ConnectedComponents(g *Graph, symmetric bool, opt Options) (*Components, error) {
	return algo.ConnectedComponents(g, symmetric, opt)
}

// ShortestPath returns a minimum-hop path from s to t (both endpoints
// included), or ok=false if t is unreachable.
func ShortestPath(g *Graph, s, t Vertex, opt Options) (path []Vertex, ok bool, err error) {
	return algo.ShortestPath(g, s, t, opt)
}

// Distance returns the hop distance from s to t, or -1 if unreachable.
func Distance(g *Graph, s, t Vertex, opt Options) (int, error) {
	return algo.Distance(g, s, t, opt)
}

// STConnectivity reports whether t is reachable from s, using a
// bidirectional search in the style of the Bader-Madduri MTA-2 kernel.
func STConnectivity(g *Graph, s, t Vertex) (bool, error) {
	return algo.STConnectivity(g, s, t)
}

// MultiSourceBFS returns each vertex's distance to the nearest of the
// given roots and which root claimed it.
func MultiSourceBFS(g *Graph, roots []Vertex) (depths []int32, nearest []int32, err error) {
	return algo.MultiSourceBFS(g, roots)
}

// ApproxDiameter lower-bounds the diameter of g by the double-sweep
// heuristic (exact on trees).
func ApproxDiameter(g *Graph, start Vertex, opt Options) (int, error) {
	return algo.ApproxDiameter(g, start, opt)
}

// Betweenness computes betweenness centrality by Brandes' algorithm
// (one BFS plus one dependency sweep per source, parallel over
// sources). Pass every vertex as a source for exact centrality, or a
// sample for the SSCA#2-style estimate. workers <= 0 means GOMAXPROCS.
func Betweenness(g *Graph, sources []Vertex, workers int) ([]float64, error) {
	return ssca2.Kernel4(g, sources, workers)
}

// DistOptions configures DistributedBFS.
type DistOptions = dist.Options

// DistResult is the outcome of DistributedBFS, including the
// communication profile (supersteps, messages, tuples).
type DistResult = dist.Result

// DistributedBFS runs the level-synchronous BFS over simulated
// distributed-memory nodes with strictly private per-node state and
// batched message exchange — the paper's stated future-work design
// (Section V: distributed-memory machines with PGAS-style
// communication).
func DistributedBFS(g *Graph, root Vertex, opt DistOptions) (*DistResult, error) {
	return dist.BFS(g, root, opt)
}

// Graph500Spec configures RunGraph500.
type Graph500Spec = graph500.Spec

// Graph500Result reports a Graph500-protocol run.
type Graph500Result = graph500.Result

// DefaultGraph500Spec returns the standard protocol (edge factor 16,
// 64 roots) at the given scale.
func DefaultGraph500Spec(scale int) Graph500Spec { return graph500.DefaultSpec(scale) }

// RunGraph500 executes the Graph500-style BFS benchmark protocol:
// Kronecker generation, BFS from sampled roots, per-root validation,
// harmonic-mean TEPS reporting.
func RunGraph500(spec Graph500Spec) (*Graph500Result, error) { return graph500.Run(spec) }
