package mcbfs_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mcbfs"
)

// TestPoolBatchingConcurrentAdmission is the batching mode's core
// contract under contention (run with -race): many concurrent clients
// issue single-source queries, the pool coalesces them into shared
// MS-BFS traversals, and every client gets exactly the scalars a
// dedicated single-source search would have produced.
func TestPoolBatchingConcurrentAdmission(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 2},
		Metrics: &m,
		Batching: mcbfs.BatchingOptions{
			Lanes:  8,
			Window: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const clients = 16
	const perClient = 8
	// Precompute the reference scalars for every root the clients use.
	type ref struct{ reached, edges int64; levels int }
	refs := make(map[mcbfs.Vertex]ref)
	for c := 0; c < clients; c++ {
		for i := 0; i < perClient; i++ {
			root := mcbfs.Vertex((c*131 + i*977) % g.NumVertices())
			if _, ok := refs[root]; !ok {
				r, err := mcbfs.BFS(g, root, mcbfs.Options{Algorithm: mcbfs.AlgSequential})
				if err != nil {
					t.Fatal(err)
				}
				refs[root] = ref{r.Reached, r.EdgesTraversed, r.Levels}
			}
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				root := mcbfs.Vertex((c*131 + i*977) % g.NumVertices())
				res, err := pool.Query(context.Background(), root)
				if err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					return
				}
				want := refs[root]
				if res.Reached != want.reached || res.EdgesTraversed != want.edges || res.Levels != want.levels {
					t.Errorf("client %d root %d: Reached=%d/%d Edges=%d/%d Levels=%d/%d",
						c, root, res.Reached, want.reached, res.EdgesTraversed, want.edges,
						res.Levels, want.levels)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	const total = clients * perClient
	if got := m.BatchLanes.Load(); got != total {
		t.Errorf("BatchLanes = %d, want %d (every query rides a batch)", got, total)
	}
	traversals := m.BatchTraversals.Load()
	if traversals < 1 || traversals > total {
		t.Errorf("BatchTraversals = %d, want within [1, %d]", traversals, total)
	}
	// The shared scans must not exceed what independent searches would
	// have paid; equality holds only if no two lanes ever shared a
	// traversal.
	if scanned, lane := m.BatchEdges.Load(), m.BatchLaneEdges.Load(); scanned > lane {
		t.Errorf("BatchEdges = %d exceeds BatchLaneEdges = %d", scanned, lane)
	}
}

// holdCtx is a context whose Err blocks until released: handed to a
// batched query it deterministically parks the batch runner at lane
// seeding, which is how the admission-shed tests fill the queue without
// racing a fast traversal.
type holdCtx struct {
	heldOnce sync.Once
	held     chan struct{} // closed on the first Err poll
	release  chan struct{}
}

func newHoldCtx() *holdCtx {
	return &holdCtx{held: make(chan struct{}), release: make(chan struct{})}
}

func (c *holdCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *holdCtx) Done() <-chan struct{}       { return nil }
func (c *holdCtx) Value(any) any               { return nil }
func (c *holdCtx) Err() error {
	c.heldOnce.Do(func() { close(c.held) })
	<-c.release
	return nil
}

// TestPoolBatchingShed saturates the batching admission path and
// checks the shed is recorded in every sink before ErrPoolSaturated
// returns: the Shed counter, the shed outcome total, and the telemetry
// error-rate window that feeds /metrics.
//
// Setup: with Lanes=1, Runners=1, QueueDepth=1 the reply free-list
// holds exactly 2 channels. Query A parks the runner (blocking lane
// context) while holding one. Two racing probes then contend for the
// last channel: whichever wins it is admitted and parks behind A, so
// the other deterministically sheds at its deadline.
func TestPoolBatchingShed(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	tel := mcbfs.NewTelemetry(mcbfs.TelemetryOptions{Shards: 1})
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:      1,
		Search:    mcbfs.Options{Threads: 2},
		Metrics:   &m,
		Telemetry: tel,
		Batching: mcbfs.BatchingOptions{
			Lanes:      1, // no admission window: the runner serves one query at a time
			Runners:    1,
			QueueDepth: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	hold := newHoldCtx()
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(hold.release) }) }
	defer release() // runs before the deferred Close, so it cannot hang

	// Query A parks the runner at lane seeding via its blocking context.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.Query(hold, 0); err != nil {
			t.Errorf("held query: %v", err)
		}
	}()
	<-hold.held

	// The two probes race for the one remaining reply channel. The
	// winner is admitted (it resolves with DeadlineExceeded once the
	// runner resumes and sees its dead lane context); the loser sheds.
	errCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(root mcbfs.Vertex) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err := pool.Query(ctx, root)
			errCh <- err
		}(mcbfs.Vertex(1 + i))
	}
	shedErr := <-errCh
	if !errors.Is(shedErr, mcbfs.ErrPoolSaturated) {
		t.Fatalf("saturated query error = %v, want ErrPoolSaturated", shedErr)
	}
	if !errors.Is(shedErr, context.DeadlineExceeded) {
		t.Errorf("saturated query error = %v, want context.DeadlineExceeded in chain", shedErr)
	}
	if got := m.Shed.Load(); got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}
	if got := tel.OutcomeCount(mcbfs.OutcomeShed); got != 1 {
		t.Errorf("OutcomeShed count = %d, want 1", got)
	}
	if rate := tel.ErrorRate(time.Minute); rate <= 0 {
		t.Errorf("ErrorRate = %v, want > 0 after a shed", rate)
	}
	release()
	// The absorbed probe must resolve with its context's error, not
	// hang and not shed.
	if err := <-errCh; !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, mcbfs.ErrPoolSaturated) {
		t.Errorf("absorbed probe error = %v, want bare context.DeadlineExceeded", err)
	}
	wg.Wait()
}

// TestPoolBatchingCancelledQuery routes a dead-context query through
// the batched path: it must come back with the context's error and feed
// the Cancelled counter, while a healthy sibling query is unaffected.
func TestPoolBatchingCancelledQuery(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:     1,
		Search:   mcbfs.Options{Threads: 2},
		Metrics:  &m,
		Batching: mcbfs.BatchingOptions{Lanes: 4, Window: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Query(dead, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("dead-context query error = %v, want context.Canceled", err)
	}
	if got := m.Cancelled.Load(); got != 1 {
		t.Errorf("Cancelled = %d, want 1", got)
	}
	ref, err := mcbfs.BFS(g, 0, mcbfs.Options{Algorithm: mcbfs.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	if res.Reached != ref.Reached {
		t.Errorf("healthy query Reached = %d, want %d", res.Reached, ref.Reached)
	}
}

// TestPoolBatchingOverridesBypass checks that per-query overrides still
// use the Searcher pool: they must succeed and not ride a batch.
func TestPoolBatchingOverridesBypass(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:     1,
		Search:   mcbfs.Options{Threads: 2},
		Metrics:  &m,
		Batching: mcbfs.BatchingOptions{Lanes: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res, err := pool.Search(context.Background(), 0, mcbfs.Query{Algorithm: mcbfs.AlgSequential})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached == 0 {
		t.Error("override query reached nothing")
	}
	if got := m.BatchLanes.Load(); got != 0 {
		t.Errorf("override query rode a batch (BatchLanes = %d)", got)
	}
	// QueryFunc also bypasses batching — it needs the borrow-held
	// parents.
	err = pool.QueryFunc(context.Background(), 3, mcbfs.Query{}, func(res *mcbfs.Result) error {
		return mcbfs.ValidateTree(g, 3, res.Parents)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BatchLanes.Load(); got != 0 {
		t.Errorf("QueryFunc rode a batch (BatchLanes = %d)", got)
	}
}

// TestPoolBatchingClose closes a batching pool with traffic in flight:
// every query must resolve (result or ErrPoolClosed), and Close must
// not hang.
func TestPoolBatchingClose(t *testing.T) {
	g := poolTestGraph(t)
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:     1,
		Search:   mcbfs.Options{Threads: 2},
		Batching: mcbfs.BatchingOptions{Lanes: 8, Window: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := pool.Query(context.Background(), mcbfs.Vertex(c))
				if err != nil && !errors.Is(err, mcbfs.ErrPoolClosed) {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if err != nil {
					return
				}
			}
		}(c)
	}
	time.Sleep(5 * time.Millisecond)
	if err := pool.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()
	if _, err := pool.Query(context.Background(), 0); !errors.Is(err, mcbfs.ErrPoolClosed) {
		t.Errorf("post-close query error = %v, want ErrPoolClosed", err)
	}
}

// TestPoolBatchedQueryZeroAlloc checks the warm batched query path
// allocates nothing per query: the request is a channel send of a
// value and the reply channel comes from the pool's free-list.
func TestPoolBatchedQueryZeroAlloc(t *testing.T) {
	g := poolTestGraph(t)
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:     1,
		Search:   mcbfs.Options{Threads: 2},
		Batching: mcbfs.BatchingOptions{Lanes: 1}, // width 1: no admission window in the loop
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	// Warm every path once.
	for i := 0; i < 3; i++ {
		if _, err := pool.Query(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := pool.Query(ctx, 0); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("warm batched query allocates %.1f objects/op, want 0", avg)
	}
}
