package mcbfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// poolSnapshot is one graph epoch of a Pool: an immutable CSR, the
// resolved search configuration (including the ordering recomputed for
// this graph), and the warm Searchers built over it. The Pool serves
// from exactly one snapshot at a time; Swap publishes a successor and
// retires the old one, which keeps answering its in-flight queries and
// tears down only after the last borrower returns.
//
// Lifecycle is reference-counted: refs starts at 1 (the Pool's own
// reference while the snapshot is current) and each borrow — acquire
// through release — holds one more. retire drops the Pool's reference;
// whoever drops refs to 0 with the snapshot retired triggers the drain
// exactly once. A borrower always returns its Searcher to free before
// releasing its reference, so by the time the drain runs every live
// Searcher is parked in free and can be closed without waiting.
type poolSnapshot struct {
	// epoch numbers snapshots from 1; each successful Swap increments.
	epoch int64
	g     *Graph
	// searchOpt is the resolved per-Searcher configuration for this
	// epoch: Pool.opt.Search plus the telemetry hub and this graph's
	// Reordered. Post-panic rebuilds reuse it (TelemetryShard 0).
	searchOpt core.Options

	// free holds the snapshot's idle Searchers; live is how many exist
	// (idle or borrowed), shrinking only when a post-panic rebuild fails
	// or is skipped because the epoch was already superseded.
	free chan *core.Searcher
	live atomic.Int64

	// refs / retired / retiredCh / drainOnce implement the drain
	// protocol described on the type. retiredCh unblocks acquirers
	// waiting on free when the epoch is superseded mid-wait.
	refs      atomic.Int64
	retired   atomic.Bool
	retiredCh chan struct{}
	drainOnce sync.Once
}

// retire drops the Pool's reference: the snapshot stops admitting new
// borrows (acquire re-checks retired after referencing) and will drain
// once in-flight borrowers finish. Called with p.swapMu held, exactly
// once per snapshot — by Swap when superseded or by Close.
func (sn *poolSnapshot) retire(p *Pool) {
	sn.retired.Store(true)
	close(sn.retiredCh)
	p.draining.Add(1)
	sn.release(p)
}

// release drops one reference. The holder of the last reference on a
// retired snapshot starts the drain (async: releasing is on query fast
// paths and must not absorb Searcher teardown latency). The drain is
// Once-guarded because acquire can transiently re-reference a retired
// snapshot — add, see retired, release — making the 0→1→0 transition
// reachable more than once.
func (sn *poolSnapshot) release(p *Pool) {
	if sn.refs.Add(-1) == 0 && sn.retired.Load() {
		sn.drainOnce.Do(func() { go sn.drain(p) })
	}
}

// drain closes every Searcher the snapshot still owns. All of them are
// parked in free by now: refs hit 0, so no borrow is outstanding, and
// borrowers return Searchers before releasing. Close errors are
// surfaced through Pool.Close via closeErr.
func (sn *poolSnapshot) drain(p *Pool) {
	var firstErr error
	for i := int64(0); i < sn.live.Load(); i++ {
		s := <-sn.free
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		p.mu.Lock()
		if p.closeErr == nil {
			p.closeErr = firstErr
		}
		p.mu.Unlock()
	}
	p.draining.Add(-1)
	if p.opt.Metrics != nil {
		p.opt.Metrics.SnapshotsDrained.Add(1)
	}
	p.drains.Done()
}

// buildSnapshot constructs a full epoch over g: the ordering is
// recomputed for this graph (unless rd, the caller's precomputed
// Reordered, is supplied — only NewPool does that, passing
// opt.Search.Reordered through for epoch 1) and p.size warm Searchers
// are built. A panic anywhere in the build — the reorder, the CSR
// relabel, Searcher construction — is contained here and reported as
// an error, so a Swap against a pathological graph degrades instead of
// crashing the serving process.
func (p *Pool) buildSnapshot(g *Graph, epoch int64, rd *Reordered) (sn *poolSnapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			if sn != nil {
				for len(sn.free) > 0 {
					_ = (<-sn.free).Close()
				}
			}
			sn, err = nil, fmt.Errorf("mcbfs: building snapshot epoch %d panicked: %v", epoch, r)
		}
	}()
	searchOpt := p.opt.Search
	searchOpt.Telemetry = p.tel
	searchOpt.Ordering = p.ordering
	searchOpt.TelemetryShard = 0
	if epoch > 1 && searchOpt.Transpose != nil {
		// The configured transpose belongs to the epoch-1 graph. The
		// "graph is its own transpose" idiom (symmetric graphs) carries
		// forward to the swapped-in graph; any other transpose cannot —
		// using it would silently corrupt direction-optimizing searches
		// on the new epoch, so the swap fails (degrading to the old
		// epoch) instead.
		if !p.transposeSelf {
			return nil, errors.New("mcbfs: Options.Transpose was built for the original graph; swapped-in graphs need none (or must be symmetric, with Transpose set to the graph itself)")
		}
		searchOpt.Transpose = g
	}
	if rd == nil && p.ordering != graph.OrderNatural {
		// Relabel once per epoch: every Searcher and batch runner on
		// this snapshot shares one Reordered rather than paying its own
		// permutation + CSR rewrite.
		rd, err = g.Reorder(p.ordering)
		if err != nil {
			return nil, err
		}
		if p.opt.Metrics != nil {
			p.opt.Metrics.ReorderNs.Add(int64(rd.ReorderTime()))
		}
	}
	searchOpt.Reordered = rd
	if rd != nil && p.tel != nil {
		p.tel.SetOrdering(obs.OrderingInfo{
			Order:       rd.Order.String(),
			PermNs:      int64(rd.PermTime),
			RelabelNs:   int64(rd.RelabelTime),
			HubVertices: int64(rd.HubVertices),
			HubEdges:    rd.HubEdges,
			TotalEdges:  g.NumEdges(),
		})
	}
	sn = &poolSnapshot{
		epoch:     epoch,
		g:         g,
		searchOpt: searchOpt,
		free:      make(chan *core.Searcher, p.size),
		retiredCh: make(chan struct{}),
	}
	sn.refs.Store(1)
	sn.live.Store(int64(p.size))
	for i := 0; i < p.size; i++ {
		so := searchOpt
		so.TelemetryShard = i
		s, err := core.NewSearcher(g, so)
		if err != nil {
			for len(sn.free) > 0 {
				_ = (<-sn.free).Close()
			}
			return nil, err
		}
		sn.free <- s
	}
	return sn, nil
}

// Swap replaces the pool's serving graph with g, with zero downtime:
// a full snapshot (ordering recomputed, Size warm Searchers) is built
// over g while the old epoch keeps serving, then published atomically.
// Queries admitted after Swap returns run on g; queries in flight —
// including any still waiting for a Searcher — drain on (or migrate
// from) the old snapshot, whose Searchers are closed only after its
// last borrower returns. If building the new snapshot fails, the pool
// keeps serving the old epoch untouched (the degradation rule) and
// Swap returns the error. Swaps serialize with each other, Rebuild,
// and Close.
func (p *Pool) Swap(g *Graph) error {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	return p.swapLocked(g)
}

// swapLocked is Swap with p.swapMu held (shared with Rebuild).
func (p *Pool) swapLocked(g *Graph) error {
	if g == nil {
		return errors.New("mcbfs: Swap with nil graph")
	}
	if err := p.err(); err != nil {
		return err
	}
	old := p.snap.Load()
	start := time.Now()
	sn, err := p.buildSnapshot(g, old.epoch+1, nil)
	if err != nil {
		if p.opt.Metrics != nil {
			p.opt.Metrics.SwapDegraded.Add(1)
		}
		return fmt.Errorf("mcbfs: swap to epoch %d failed, still serving epoch %d: %w", old.epoch+1, old.epoch, err)
	}
	p.drains.Add(1)
	p.snap.Store(sn)
	old.retire(p)
	d := time.Since(start)
	if p.opt.Metrics != nil {
		p.opt.Metrics.Swaps.Add(1)
		p.opt.Metrics.SwapNs.Add(int64(d))
	}
	if p.tel != nil {
		p.tel.RecordSwap(sn.epoch, d)
	}
	return nil
}

// Ingest buffers edges for a future Rebuild and returns how many edges
// are now pending. Buffered edges are not visible to queries until a
// Rebuild (explicit, or automatic once the buffer reaches
// PoolOptions.RebuildThreshold) merges them with the serving graph and
// swaps the result in. Duplicate edges are kept, as in the CSR builder
// itself; endpoints beyond the current vertex count grow the graph.
func (p *Pool) Ingest(edges []Edge) (pending int, err error) {
	if err := p.err(); err != nil {
		return 0, err
	}
	p.pendMu.Lock()
	for _, e := range edges {
		p.pendSrcs = append(p.pendSrcs, e.Src)
		p.pendDsts = append(p.pendDsts, e.Dst)
	}
	pending = len(p.pendSrcs)
	p.pendMu.Unlock()
	if p.opt.Metrics != nil {
		p.opt.Metrics.IngestedEdges.Add(int64(len(edges)))
	}
	if th := p.opt.RebuildThreshold; th > 0 && pending >= th &&
		p.rebuilding.CompareAndSwap(false, true) {
		go func() {
			defer p.rebuilding.Store(false)
			_, _ = p.Rebuild()
		}()
	}
	return pending, nil
}

// Rebuild merges every buffered Ingest edge with the serving graph
// through the parallel CSR builder and hot-swaps the result in,
// returning the new serving epoch. With nothing buffered it is a no-op
// returning the current epoch. On failure the buffered edges are
// restored (ahead of anything ingested meanwhile) and the old epoch
// keeps serving.
func (p *Pool) Rebuild() (epoch int64, err error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	p.pendMu.Lock()
	srcs, dsts := p.pendSrcs, p.pendDsts
	p.pendSrcs, p.pendDsts = nil, nil
	p.pendMu.Unlock()
	if err := p.err(); err != nil {
		return 0, err
	}
	if len(srcs) == 0 {
		return p.snap.Load().epoch, nil
	}
	restore := func() {
		p.pendMu.Lock()
		p.pendSrcs = append(srcs, p.pendSrcs...)
		p.pendDsts = append(dsts, p.pendDsts...)
		p.pendMu.Unlock()
	}
	merged, err := mergeEdges(p.snap.Load().g, srcs, dsts)
	if err != nil {
		restore()
		return 0, fmt.Errorf("mcbfs: rebuild merge of %d pending edges: %w", len(srcs), err)
	}
	if err := p.swapLocked(merged); err != nil {
		restore()
		return 0, err
	}
	return p.snap.Load().epoch, nil
}

// mergeEdges materializes g's edges plus the pending batch as parallel
// source/target arrays and rebuilds one CSR via the parallel builder.
// The vertex count grows to cover any endpoint beyond g's range.
func mergeEdges(g *Graph, srcs, dsts []Vertex) (*Graph, error) {
	n := g.NumVertices()
	for i := range srcs {
		if v := int(srcs[i]) + 1; v > n {
			n = v
		}
		if v := int(dsts[i]) + 1; v > n {
			n = v
		}
	}
	m := g.NumEdges()
	total := m + int64(len(srcs))
	allS := make([]Vertex, total)
	allD := make([]Vertex, total)
	offs := g.Offsets()
	targets := g.Targets()
	idx := int64(0)
	for v := 0; v < g.NumVertices(); v++ {
		for i := offs[v]; i < offs[v+1]; i++ {
			allS[idx] = Vertex(v)
			allD[idx] = targets[i]
			idx++
		}
	}
	copy(allS[m:], srcs)
	copy(allD[m:], dsts)
	return graph.FromArrays(n, allS, allD)
}
