// Shortest paths in a semantic graph — the paper's motivating use
// case: "in the analysis of semantic graphs the relationship between
// two vertices is expressed by the properties of the shortest path
// between them, given by a BFS search".
//
// The example builds a clustered SSCA#2-style graph (communities of
// densely related entities with sparse cross-links), picks entity
// pairs, and uses one BFS per source to answer st-connectivity and
// recover the actual shortest paths from the parent array.
//
// Run with:
//
//	go run ./examples/stconnectivity
package main

import (
	"fmt"
	"log"

	"mcbfs"
)

func main() {
	// Communities of up to 12 entities, 30% of entities with a
	// cross-community relation.
	g, err := mcbfs.SSCA2Graph(200_000, 12, 0.3, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantic graph: %d entities, %d relations\n", g.NumVertices(), g.NumEdges())

	pairs := [][2]mcbfs.Vertex{
		{0, 199_999},
		{5, 100_000},
		{42, 43},
		{77_777, 12},
	}

	for _, pair := range pairs {
		s, t := pair[0], pair[1]
		res, err := mcbfs.BFS(g, s, mcbfs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if res.Parents[t] == mcbfs.NoParent {
			fmt.Printf("%d -> %d: NOT CONNECTED\n", s, t)
			continue
		}
		path := recoverPath(res.Parents, s, t)
		fmt.Printf("%d -> %d: distance %d, path %v\n", s, t, len(path)-1, path)

		// The BFS tree guarantees this is a *shortest* path; double-check
		// each hop is a real relation.
		for i := 0; i+1 < len(path); i++ {
			if !hasEdge(g, path[i], path[i+1]) {
				log.Fatalf("path hop %d->%d is not an edge", path[i], path[i+1])
			}
		}
	}
}

// recoverPath walks the parent array from t back to s.
func recoverPath(parents []uint32, s, t mcbfs.Vertex) []mcbfs.Vertex {
	var rev []mcbfs.Vertex
	for v := t; ; v = parents[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	path := make([]mcbfs.Vertex, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

func hasEdge(g *mcbfs.Graph, u, v mcbfs.Vertex) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}
