// Live updates: hot-swapping graph snapshots into a serving pool with
// zero downtime.
//
// A serving process usually outlives its graph — edges keep arriving
// while clients keep querying. The pool serves from immutable
// snapshots: Swap builds a full new epoch (Searchers, orderings, the
// lot) off to the side and publishes it atomically; queries in flight
// finish on the epoch that admitted them, whose Searchers are closed
// only after the last borrower returns. Ingest + Rebuild layer a
// buffered edge pipeline on top: edges accumulate invisibly and a
// rebuild merges them with the serving graph through the parallel CSR
// builder, swapping the grown graph in.
//
// Run with:
//
//	go run ./examples/liveupdate
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs"
)

func main() {
	// Epoch 1: a modest scale-free graph.
	g, err := mcbfs.RMATGraph(14, 1<<18, mcbfs.GTgraphDefaults, 1)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:   2,
		Search: mcbfs.Options{Threads: 2},
		// Every 1<<15 buffered edges, merge + hot-swap automatically.
		RebuildThreshold: 1 << 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Continuous client traffic across every swap below.
	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := pool.Query(context.Background(), 0); err != nil {
					log.Printf("query: %v", err)
					return
				}
				queries.Add(1)
			}
		}()
	}

	// Explicit swap: replace the whole graph (a re-generated snapshot,
	// a reload from disk, ...). Traffic never pauses.
	g2, err := mcbfs.RMATGraph(14, 1<<18, mcbfs.GTgraphDefaults, 2)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := pool.Swap(g2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swapped to epoch %d in %v (queries so far: %d)\n",
		pool.Epoch(), time.Since(start).Round(time.Microsecond), queries.Load())

	// Incremental growth: buffer edges, then merge them in. Crossing
	// RebuildThreshold would trigger this rebuild automatically.
	var batch []mcbfs.Edge
	for v := 0; v < 1000; v++ {
		batch = append(batch, mcbfs.Edge{Src: 0, Dst: mcbfs.Vertex(v + 100)})
	}
	pending, err := pool.Ingest(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d edges (invisible until rebuild)\n", pending)
	epoch, err := pool.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt: epoch %d now serving %d edges\n", epoch, pool.Graph().NumEdges())

	stop.Store(true)
	wg.Wait()

	// Old epochs drain asynchronously once their last query returns.
	for pool.Draining() > 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("all retired snapshots drained; %d queries served across %d epochs with zero downtime\n",
		queries.Load(), pool.Epoch())
}
