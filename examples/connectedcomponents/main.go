// Connected components of a scale-free network via repeated BFS — the
// community-analysis building block the paper's introduction motivates
// ("applications in community analysis often need to determine the
// connected components of a semantic graph ... connected components
// algorithms often employ a BFS search").
//
// The example generates an R-MAT graph (a synthetic stand-in for a
// social or semantic network), symmetrizes it, and peels off weakly
// connected components by BFS until every vertex is labeled, reporting
// the classic power-law component profile: one giant component and a
// long tail of tiny ones.
//
// Run with:
//
//	go run ./examples/connectedcomponents
package main

import (
	"fmt"
	"log"
	"sort"

	"mcbfs"
)

func main() {
	// Scale-free graph: 2^18 vertices, ~2M directed edges.
	directed, err := mcbfs.RMATGraph(18, 2<<20, mcbfs.GTgraphDefaults, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Connectivity is about the underlying undirected structure.
	g := directed.Undirected()
	n := g.NumVertices()
	fmt.Printf("network: %d vertices, %d undirected edge endpoints\n", n, g.NumEdges())

	component := make([]int32, n)
	for i := range component {
		component[i] = -1
	}

	var sizes []int
	comp := int32(0)
	for v := 0; v < n; v++ {
		if component[v] != -1 {
			continue
		}
		res, err := mcbfs.BFS(g, mcbfs.Vertex(v), mcbfs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		size := 0
		for u, p := range res.Parents {
			if p != mcbfs.NoParent && component[u] == -1 {
				component[u] = comp
				size++
			}
		}
		sizes = append(sizes, size)
		comp++
	}

	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("components: %d\n", len(sizes))
	fmt.Printf("largest:    %d vertices (%.1f%% of the graph)\n",
		sizes[0], 100*float64(sizes[0])/float64(n))
	isolated := 0
	for _, s := range sizes {
		if s == 1 {
			isolated++
		}
	}
	fmt.Printf("isolated:   %d single-vertex components\n", isolated)
	fmt.Println("largest ten components:", sizes[:min(10, len(sizes))])

	// Sanity: labels must cover every vertex exactly once.
	covered := 0
	for _, c := range component {
		if c >= 0 {
			covered++
		}
	}
	if covered != n {
		log.Fatalf("labeling covered %d of %d vertices", covered, n)
	}
	fmt.Println("labeling verified: every vertex belongs to exactly one component")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
