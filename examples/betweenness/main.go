// Betweenness centrality of a scale-free network — SSCA#2's kernel 4
// and the classic "find the important vertices" analysis of the
// security and business-analytics domains the paper's introduction
// names. Each source costs one BFS plus one dependency sweep, so BFS
// throughput is exactly what bounds analysis throughput.
//
// Run with:
//
//	go run ./examples/betweenness
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"mcbfs"
)

func main() {
	// A scale-free network with pronounced hubs.
	g, err := mcbfs.RMATGraph(15, 1<<18, mcbfs.GTgraphDefaults, 13)
	if err != nil {
		log.Fatal(err)
	}
	// Betweenness is about undirected importance here.
	u := g.Undirected()
	fmt.Printf("network: %d vertices, %d edges\n", u.NumVertices(), u.NumEdges())

	// Exact betweenness needs every vertex as a source (O(nm) total); a
	// few hundred sampled sources estimate the ranking well.
	const samples = 256
	sources := make([]mcbfs.Vertex, samples)
	for i := range sources {
		sources[i] = mcbfs.Vertex(i * (u.NumVertices() / samples))
	}

	start := time.Now()
	scores, err := mcbfs.Betweenness(u, sources, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	type ranked struct {
		v mcbfs.Vertex
		s float64
	}
	top := make([]ranked, 0, u.NumVertices())
	for v, s := range scores {
		if s > 0 {
			top = append(top, ranked{mcbfs.Vertex(v), s})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].s > top[j].s })

	fmt.Printf("%d sources in %v (%.1f BFS+sweep per second)\n",
		samples, elapsed, float64(samples)/elapsed.Seconds())
	fmt.Println("top 10 vertices by estimated betweenness:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Printf("  #%2d vertex %-8d score %.0f  (degree %d)\n",
			i+1, top[i].v, top[i].s, u.Degree(top[i].v))
	}

	// On R-MAT graphs the hubs dominate centrality; show the rank
	// correlation informally.
	hubDeg := 0
	for _, r := range top[:min(10, len(top))] {
		hubDeg += u.Degree(r.v)
	}
	avgDeg := float64(u.NumEdges()) / float64(u.NumVertices())
	fmt.Printf("mean degree of top-10: %.0f vs graph average %.1f\n",
		float64(hubDeg)/10, avgDeg)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
