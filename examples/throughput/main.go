// Throughput mode: several independent BFS instances running
// concurrently, one per socket — the paper's Fig. 10 workload,
// "representative of the SSCA#2 benchmarks".
//
// Where the other examples minimize the latency of one search, analytic
// pipelines often need aggregate throughput across many searches on
// many graphs. The paper's recipe is to pin one single-socket BFS per
// socket so the instances never share a cache or an inter-socket link;
// here each instance is one single-socket BFS run on its own goroutine
// group over its own graph.
//
// Run with:
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"mcbfs"
)

func main() {
	const (
		graphs   = 4 // "sockets": independent instances
		nPerInst = 1 << 19
		degree   = 16
	)

	// Each instance explores its own graph, as in SSCA#2's many-kernel
	// phases.
	gs := make([]*mcbfs.Graph, graphs)
	for i := range gs {
		g, err := mcbfs.UniformGraph(nPerInst, degree, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		gs[i] = g
	}
	fmt.Printf("%d instances of %d vertices / %d edges each\n",
		graphs, gs[0].NumVertices(), gs[0].NumEdges())

	threadsPer := runtime.GOMAXPROCS(0)

	for instances := 1; instances <= graphs; instances *= 2 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var totalEdges int64
		start := time.Now()
		for i := 0; i < instances; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := mcbfs.BFS(gs[i], 0, mcbfs.Options{
					Algorithm: mcbfs.AlgSingleSocket,
					Threads:   threadsPer,
				})
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				totalEdges += res.EdgesTraversed
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		fmt.Printf("instances=%d: aggregate %s in %v\n",
			instances, mcbfs.FormatRate(float64(totalEdges)/elapsed.Seconds()), elapsed)
	}

	fmt.Println()
	fmt.Println("On the paper's 4-socket EX each added instance contributes nearly its")
	fmt.Println("full single-socket rate because instances share no cache or QPI link;")
	fmt.Println("on a single-socket host the instances compete for the same memory system.")
}
