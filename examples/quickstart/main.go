// Quickstart: generate a graph, run a parallel BFS, inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"mcbfs"
)

func main() {
	// A uniformly random graph: 1M vertices, out-degree 16 — the
	// paper's basic workload, scaled to run anywhere in a second.
	g, err := mcbfs.UniformGraph(1<<20, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (%d MB in CSR form)\n",
		g.NumVertices(), g.NumEdges(), g.MemoryFootprint()>>20)

	// The zero Options picks the algorithm tier automatically:
	// sequential for one thread, the bitmap algorithm within a socket,
	// the channel algorithm across sockets.
	res, err := mcbfs.BFS(g, 0, mcbfs.Options{Threads: runtime.GOMAXPROCS(0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS from vertex 0 using the %v algorithm on %d threads:\n",
		res.Algorithm, res.Threads)
	fmt.Printf("  reached   %d vertices in %d levels\n", res.Reached, res.Levels)
	fmt.Printf("  traversed %d edges in %v\n", res.EdgesTraversed, res.Duration)
	fmt.Printf("  rate      %s\n", mcbfs.FormatRate(res.EdgesPerSecond()))

	// The result is a breadth-first tree: Parents[v] is v's parent, and
	// TreeDepths recovers each vertex's distance from the root.
	depths := mcbfs.TreeDepths(res.Parents, 0)
	histogram := map[int32]int{}
	for _, d := range depths {
		if d != mcbfs.NoDepth {
			histogram[d]++
		}
	}
	fmt.Println("  vertices per BFS level:")
	for d := int32(0); int(d) < res.Levels; d++ {
		fmt.Printf("    level %d: %d\n", d, histogram[d])
	}

	// Validation re-derives distances independently; use it in tests and
	// whenever correctness matters more than the microseconds it costs.
	if err := mcbfs.ValidateTree(g, 0, res.Parents); err != nil {
		log.Fatalf("invalid tree: %v", err)
	}
	fmt.Println("  tree validated")
}
