// Distributed-memory BFS — the paper's future work (Section V: "map
// the graph exploration on distributed-memory machines ... and
// lightweight PGAS programming languages"), prototyped over simulated
// nodes with strictly private memory and batched message exchange.
//
// The example runs the same search over 1..8 nodes and reports the
// communication profile: the tuple traffic is the inter-socket channel
// traffic of the paper's Algorithm 3 generalized to a network, and the
// (nodes-1)/nodes growth curve it prints is the reason the paper calls
// for low-latency networks before scaling out.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"mcbfs"
)

func main() {
	g, err := mcbfs.UniformGraph(1<<19, 16, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// A single-node reference for correctness and traffic comparison.
	ref, err := mcbfs.BFS(g, 0, mcbfs.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nodes  reached   levels  messages  tuples-sent  cross-edge-fraction")
	for _, nodes := range []int{1, 2, 4, 8} {
		res, err := mcbfs.DistributedBFS(g, 0, mcbfs.DistOptions{Nodes: nodes, BatchSize: 4096})
		if err != nil {
			log.Fatal(err)
		}
		if res.Reached != ref.Reached {
			log.Fatalf("nodes=%d reached %d, reference %d", nodes, res.Reached, ref.Reached)
		}
		if err := mcbfs.ValidateTree(g, 0, res.Parents); err != nil {
			log.Fatalf("nodes=%d: %v", nodes, err)
		}
		frac := float64(res.Comm.TuplesSent) / float64(res.EdgesTraversed)
		fmt.Printf("%-6d %-9d %-7d %-9d %-12d %.2f\n",
			nodes, res.Reached, res.Levels, res.Comm.Messages, res.Comm.TuplesSent, frac)
	}

	fmt.Println()
	fmt.Println("With uniform random edges a 1/nodes fraction of targets is local, so")
	fmt.Println("tuple traffic approaches the full edge count as nodes grow — message")
	fmt.Println("aggregation (one batch per destination per level) is what keeps the")
	fmt.Println("message count at nodes*(nodes-1) per level regardless of graph size.")
}
