// Tracing: observe a parallel BFS with the three observability sinks —
// a custom Tracer hook, a Chrome trace-event file for Perfetto, and a
// per-level phase breakdown table.
//
// Run with:
//
//	go run ./examples/tracing
//
// Then open trace.json in https://ui.perfetto.dev (or chrome://tracing)
// to see one timeline track per worker with local-scan / queue-drain /
// barrier-wait spans for every BFS level.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mcbfs"
)

func main() {
	// The paper's skewed workload: an R-MAT graph, scale 18 (262k
	// vertices, 2M edges) so the example finishes quickly anywhere.
	g, err := mcbfs.RMATGraph(18, 1<<21, mcbfs.GTgraphDefaults, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Sink 1: live Tracer hooks. OnLevelStart/OnLevelEnd fire from the
	// level coordinator, one at a time; OnRemoteBatch and OnBarrierWait
	// fire concurrently from every worker, so this example routes those
	// into an atomic Metrics collector via MultiTracer instead of
	// counting them by hand.
	var metrics mcbfs.Metrics
	hook := mcbfs.TracerFuncs{
		LevelEnd: func(level int, b mcbfs.LevelBreakdown) {
			fmt.Printf("  level %d: frontier=%-7d edges=%-8d barrier-wait=%v\n",
				level, b.Frontier, b.Edges,
				b.Phases[mcbfs.PhaseBarrierWait].Round(10*time.Microsecond))
		},
	}

	fmt.Println("running a traced multi-socket BFS:")
	res, err := mcbfs.BFS(g, 0, mcbfs.Options{
		Algorithm: mcbfs.AlgMultiSocket,
		Threads:   4,
		Machine:   mcbfs.GenericMachine(2, 2, 1),
		Trace:     true, // retain the full per-worker timeline in res.Trace
		Tracer:    mcbfs.MultiTracer(hook, metrics.Tracer()),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reached %d vertices in %d levels at %s\n",
		res.Reached, res.Levels, mcbfs.FormatRate(res.EdgesPerSecond()))
	fmt.Printf("live metrics: %d remote batches, %d tuples across sockets\n",
		metrics.RemoteBatches.Load(), metrics.RemoteTuples.Load())

	// Sink 2: the Chrome trace-event file.
	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Trace.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote trace.json — open it in https://ui.perfetto.dev")

	// Sink 3: the per-level phase breakdown, the paper's figure-style
	// view of where each level's time went.
	fmt.Println()
	if err := res.Trace.WriteBreakdown(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
