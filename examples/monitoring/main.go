// A monitored BFS serving process: a Pool of warm Searchers answering
// query traffic while exposing its serving telemetry over HTTP — the
// operational shape of the paper's "BFS as a building block for
// higher-level analysis" framing, where the search kernel runs as a
// long-lived service rather than a one-shot benchmark.
//
// PoolOptions.ServeMonitor starts an HTTP server alongside the pool:
//
//   - /metrics is Prometheus text format (scrape it, or curl it): the
//     query-latency histogram, per-outcome counters, pool occupancy;
//   - /debug/bfs is a JSON status page: rolling 1s/10s/60s QPS and
//     error rates, latency quantiles, and the slowest recent queries —
//     captured with per-level phase breakdowns by the flight recorder,
//     so a pathological query arrives with its anatomy attached.
//
// The telemetry layer is lock-free on the query path (per-Searcher
// histogram shards, one short mutex hold for the flight ring) and a
// warm monitored query still performs zero heap allocations.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"mcbfs"
)

func main() {
	g, err := mcbfs.RMATGraph(16, 1<<20, mcbfs.GTgraphDefaults, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:           2,
		Search:         mcbfs.Options{Threads: 2},
		DefaultTimeout: time.Second,
		ServeMonitor:   "127.0.0.1:0", // ":6060" for a fixed port
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	fmt.Printf("monitor: http://%s/metrics and http://%s/debug/bfs\n",
		pool.MonitorAddr(), pool.MonitorAddr())

	// Serve some query traffic so the telemetry has something to show.
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if _, err := pool.Query(ctx, mcbfs.Vertex(i*31%g.NumVertices())); err != nil {
			log.Fatal(err)
		}
	}

	// What an operator (or Prometheus) sees.
	curl := func(path string, maxLines int) {
		resp, err := http.Get("http://" + pool.MonitorAddr() + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n$ curl http://%s%s\n", pool.MonitorAddr(), path)
		lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
		for i, line := range lines {
			if i >= maxLines {
				fmt.Printf("... (%d more lines)\n", len(lines)-i)
				break
			}
			fmt.Println(line)
		}
	}
	curl("/metrics", 16)
	curl("/debug/bfs", 24)

	// The same numbers are available in-process, without HTTP.
	tel := pool.Telemetry()
	snap := tel.Histogram().Snapshot()
	fmt.Printf("\nin-process: %d queries, p50 %v, p99 %v, %0.1f qps (10s window)\n",
		snap.Count, snap.Quantile(0.5).Round(time.Microsecond),
		snap.Quantile(0.99).Round(time.Microsecond), tel.QPS(10*time.Second))
	if slow := tel.Flight().Slowest(1); len(slow) > 0 && slow[0].Captured {
		rec := slow[0]
		fmt.Printf("slowest query: root %d, %v over %d levels (per-level breakdown captured)\n",
			rec.Root, rec.Duration.Round(time.Microsecond), rec.Levels)
	}
}
