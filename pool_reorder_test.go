package mcbfs_test

import (
	"context"
	"sync"
	"testing"

	"mcbfs"
)

// TestPoolOrderingEquivalence serves queries through a pool whose graph
// was relabeled under every non-natural ordering and checks answers are
// indistinguishable from a natural-order pool: callers keep original
// vertex ids in roots and parent arrays, and the reorder cost shows up
// in the metrics counter and telemetry exactly once.
func TestPoolOrderingEquivalence(t *testing.T) {
	g := poolTestGraph(t)
	roots := []mcbfs.Vertex{0, 1, 63, 64 * 32, 64*64 - 1}
	base := make([]mcbfs.Result, len(roots))
	for i, root := range roots {
		res, err := mcbfs.BFS(g, root, mcbfs.Options{Algorithm: mcbfs.AlgSequential, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		base[i] = *res
	}

	for _, o := range []mcbfs.Ordering{mcbfs.OrderDegree, mcbfs.OrderDegreeGroup, mcbfs.OrderBFS} {
		var metrics mcbfs.Metrics
		tel := mcbfs.NewTelemetry(mcbfs.TelemetryOptions{Shards: 2})
		pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
			Size:      2,
			Search:    mcbfs.Options{Threads: 2, Ordering: o},
			Metrics:   &metrics,
			Telemetry: tel,
		})
		if err != nil {
			t.Fatalf("%s: %v", o, err)
		}

		if got := metrics.ReorderNs.Load(); got <= 0 {
			t.Errorf("%s: ReorderNs = %d, want > 0", o, got)
		}
		info := tel.Ordering()
		if info == nil || info.Order != o.String() {
			t.Fatalf("%s: telemetry ordering info = %+v", o, info)
		}
		if info.TotalEdges != g.NumEdges() {
			t.Errorf("%s: telemetry TotalEdges = %d, want %d", o, info.TotalEdges, g.NumEdges())
		}

		// Concurrent clients: every pooled Searcher translates
		// independently (run with -race).
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, root := range roots {
					// QueryFunc holds the Searcher while fn runs, so the
					// translated parent array is safe to validate in place.
					err := pool.QueryFunc(context.Background(), root, mcbfs.Query{}, func(res *mcbfs.Result) error {
						if res.Reached != base[i].Reached || res.Levels != base[i].Levels {
							t.Errorf("%s root %d: reached/levels %d/%d, want %d/%d",
								o, root, res.Reached, res.Levels, base[i].Reached, base[i].Levels)
						}
						return mcbfs.ValidateTree(g, root, res.Parents)
					})
					if err != nil {
						t.Errorf("%s root %d: %v", o, root, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		pool.Close()
	}
}

// TestPoolOrderingBatchedEquivalence runs a reordered pool in batching
// mode: concurrently admitted queries coalesce into shared MS-BFS
// traversals over the relabeled graph, and every per-lane answer must
// still speak original ids.
func TestPoolOrderingBatchedEquivalence(t *testing.T) {
	g := poolTestGraph(t)
	roots := []mcbfs.Vertex{0, 7, 63, 64 * 11, 64*64 - 1, 5, 1000, 2000}
	base := make(map[mcbfs.Vertex]mcbfs.Result)
	for _, root := range roots {
		res, err := mcbfs.BFS(g, root, mcbfs.Options{Algorithm: mcbfs.AlgSequential, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		base[root] = *res
	}
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:     2,
		Search:   mcbfs.Options{Threads: 2, Ordering: mcbfs.OrderDegree},
		Batching: mcbfs.BatchingOptions{Lanes: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3*len(roots); i++ {
				root := roots[(c+i)%len(roots)]
				res, err := pool.Query(context.Background(), root)
				if err != nil {
					t.Errorf("root %d: %v", root, err)
					return
				}
				want := base[root]
				if res.Reached != want.Reached || res.Levels != want.Levels {
					t.Errorf("root %d: reached/levels %d/%d, want %d/%d",
						root, res.Reached, res.Levels, want.Reached, want.Levels)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestPoolOrderingWarmQueryZeroAlloc pins the serving acceptance bar:
// a warm Pool.Query through the translation layer — root mapped in,
// touched-list parent scatter out, external reset — allocates nothing,
// in both direct and batching modes.
func TestPoolOrderingWarmQueryZeroAlloc(t *testing.T) {
	g := poolTestGraph(t)
	for _, batching := range []bool{false, true} {
		popt := mcbfs.PoolOptions{
			Size:   1,
			Search: mcbfs.Options{Threads: 2, Ordering: mcbfs.OrderDegree},
		}
		if batching {
			popt.Batching = mcbfs.BatchingOptions{Lanes: 1} // width 1: no admission window in the loop
		}
		pool, err := mcbfs.NewPool(g, popt)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 3; i++ { // warm every path once
			if _, err := pool.Query(ctx, 0); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(20, func() {
			if _, err := pool.Query(ctx, 0); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 0 {
			t.Errorf("batching=%v: warm reordered query allocates %.1f objects/op, want 0", batching, avg)
		}
		pool.Close()
	}
}
