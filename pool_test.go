package mcbfs_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mcbfs"
)

// poolTestGraph is a symmetric grid (so the direction-optimizing tier
// can run with the graph as its own transpose) with enough levels that
// every tier does real level-synchronous work.
func poolTestGraph(t *testing.T) *mcbfs.Graph {
	t.Helper()
	g, err := mcbfs.GridGraph(64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPoolConcurrentQueries hammers a small pool from many more clients
// than Searchers, mixing every algorithm tier per query, and checks each
// answer against a fresh reference — the pool's core contract under
// contention (run it with -race).
func TestPoolConcurrentQueries(t *testing.T) {
	g := poolTestGraph(t)
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:   2,
		Search: mcbfs.Options{Threads: 2, Transpose: g},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", pool.Size())
	}

	ref, err := mcbfs.BFS(g, 0, mcbfs.Options{Algorithm: mcbfs.AlgSequential, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	algs := []mcbfs.Algorithm{
		mcbfs.AlgSequential, mcbfs.AlgParallelSimple, mcbfs.AlgSingleSocket,
		mcbfs.AlgMultiSocket, mcbfs.AlgDirectionOptimizing,
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				alg := algs[(c+i)%len(algs)]
				res, err := pool.Search(context.Background(), 0, mcbfs.Query{Algorithm: alg})
				if err != nil {
					t.Errorf("client %d query %d (%v): %v", c, i, alg, err)
					return
				}
				if res.Reached != ref.Reached || res.Levels != ref.Levels {
					t.Errorf("client %d (%v): reached %d levels %d, want %d/%d",
						c, alg, res.Reached, res.Levels, ref.Reached, ref.Levels)
					return
				}
				if res.Parents != nil || res.PerLevel != nil || res.Trace != nil {
					t.Errorf("client %d: pooled slices leaked out of Query", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestPoolQueryFunc checks the borrow-held read path: fn sees the full
// Result, including Parents, and they validate as a BFS tree.
func TestPoolQueryFunc(t *testing.T) {
	g := poolTestGraph(t)
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{Size: 1, Search: mcbfs.Options{Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	err = pool.QueryFunc(context.Background(), 5, mcbfs.Query{}, func(res *mcbfs.Result) error {
		if res.Parents == nil {
			return errors.New("QueryFunc result has nil Parents")
		}
		return mcbfs.ValidateTree(g, 5, res.Parents)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolSaturation blocks the pool's only Searcher and checks that a
// second query waits only as long as its deadline, then sheds with an
// error matching both ErrPoolSaturated and context.DeadlineExceeded.
func TestPoolSaturation(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 2},
		Metrics: &m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	hold := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := pool.QueryFunc(context.Background(), 0, mcbfs.Query{}, func(*mcbfs.Result) error {
			close(held)
			<-hold // keep the borrow while the other query times out
			return nil
		})
		if err != nil {
			t.Errorf("holding query: %v", err)
		}
	}()
	<-held

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = pool.Query(ctx, 0)
	if !errors.Is(err, mcbfs.ErrPoolSaturated) {
		t.Errorf("saturated query: %v, want ErrPoolSaturated", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("saturated query: %v, want context.DeadlineExceeded in chain", err)
	}
	close(hold)
	wg.Wait()
	if shed := m.Shed.Load(); shed != 1 {
		t.Errorf("Shed = %d, want 1", shed)
	}
}

// TestPoolPanicRecovery panics inside a QueryFunc callback and checks
// the pool discards that Searcher, rebuilds the slot, counts the
// recovery, and keeps serving exact answers.
func TestPoolPanicRecovery(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 2},
		Metrics: &m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	err = pool.QueryFunc(context.Background(), 0, mcbfs.Query{}, func(*mcbfs.Result) error {
		panic("reader exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking query returned %v, want a panic error", err)
	}
	if rec := m.Recovered.Load(); rec != 1 {
		t.Errorf("Recovered = %d, want 1", rec)
	}

	ref, err := mcbfs.BFS(g, 0, mcbfs.Options{Algorithm: mcbfs.AlgSequential, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if res.Reached != ref.Reached || res.Levels != ref.Levels {
		t.Fatalf("after recovery: reached %d levels %d, want %d/%d",
			res.Reached, res.Levels, ref.Reached, ref.Levels)
	}
}

// TestPoolCancelledQuery checks context-driven unwinding through the
// pool: a cancelled query reports ctx.Err(), feeds the Cancelled
// counter, and the Searcher it borrowed serves the next query exactly.
func TestPoolCancelledQuery(t *testing.T) {
	g := poolTestGraph(t)
	var m mcbfs.Metrics
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:    1,
		Search:  mcbfs.Options{Threads: 2},
		Metrics: &m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Query(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: %v, want context.Canceled", err)
	}
	if c := m.Cancelled.Load(); c != 1 {
		t.Errorf("Cancelled = %d, want 1", c)
	}

	ref, err := mcbfs.BFS(g, 0, mcbfs.Options{Algorithm: mcbfs.AlgSequential, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != ref.Reached || res.Levels != ref.Levels {
		t.Fatalf("after cancel: reached %d levels %d, want %d/%d",
			res.Reached, res.Levels, ref.Reached, ref.Levels)
	}
}

// TestPoolDefaultTimeout checks both sides of the per-query default: an
// impossible default bounds deadline-free queries, and a query carrying
// its own (satisfiable) deadline is not re-bounded by it.
func TestPoolDefaultTimeout(t *testing.T) {
	g := poolTestGraph(t)
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:           1,
		Search:         mcbfs.Options{Threads: 2},
		DefaultTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if _, err := pool.Query(context.Background(), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query under 1ns default timeout: %v, want context.DeadlineExceeded", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := pool.Query(ctx, 0); err != nil {
		t.Fatalf("query with own generous deadline: %v", err)
	}
}

// TestPoolClose checks shutdown semantics: queries after Close fail
// with ErrPoolClosed, waiting acquirers are released, and Close is
// idempotent.
func TestPoolClose(t *testing.T) {
	g := poolTestGraph(t)
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{Size: 1, Search: mcbfs.Options{Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Query(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Query(context.Background(), 0); !errors.Is(err, mcbfs.ErrPoolClosed) {
		t.Errorf("query after Close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// BenchmarkPoolQueryWarm measures the serving fast path: a warm,
// deadline-free, uncancelled Query must stay at zero heap allocations
// per operation, exactly like a bare Searcher search.
func BenchmarkPoolQueryWarm(b *testing.B) {
	g, err := mcbfs.GridGraph(64, 64, 4)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{Size: 1, Search: mcbfs.Options{Threads: 2}})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	if _, err := pool.Query(ctx, 0); err != nil { // warm the session
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Query(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}
