package mcbfs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/graph"
	"mcbfs/internal/obs"
)

// Pool errors. ErrPoolSaturated wraps the context error that expired
// while waiting, so errors.Is matches both it and
// context.DeadlineExceeded / context.Canceled.
var (
	// ErrPoolSaturated is returned by Query when every Searcher stayed
	// borrowed until the caller's context expired — the admission-control
	// signal to shed load.
	ErrPoolSaturated = errors.New("mcbfs: pool saturated")
	// ErrPoolClosed is returned by Query once Close has begun.
	ErrPoolClosed = errors.New("mcbfs: pool closed")
)

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Size is the number of warm Searchers held by the pool, i.e. the
	// maximum number of queries in flight at once; further queries wait
	// (bounded by their context) and are shed with ErrPoolSaturated when
	// the wait outlives the context. 0 sizes the pool so that the
	// Searchers' combined worker count roughly matches GOMAXPROCS:
	// max(1, GOMAXPROCS / per-Searcher threads).
	Size int
	// Search configures every Searcher in the pool, exactly as for
	// NewSearcher. Note Threads is per Searcher: a pool of K Searchers
	// runs up to K*Threads workers when fully loaded.
	Search Options
	// DefaultTimeout, when positive, bounds every query whose context
	// carries no deadline of its own: the query — waiting for a Searcher
	// and searching — is abandoned with context.DeadlineExceeded when it
	// exceeds the timeout. Contexts that already have a deadline are
	// used as-is. Queries carrying a deadline (from either source) pay
	// one context allocation; deadline-free queries on a deadline-free
	// pool stay allocation-free.
	DefaultTimeout time.Duration
	// Metrics, when non-nil, receives the pool's serving counters:
	// Cancelled (queries unwound by context), Shed (admission failures),
	// Recovered (Searchers rebuilt after a panicking query).
	Metrics *Metrics
	// Telemetry, when non-nil, is the serving telemetry hub every query
	// reports to: latency into a per-Searcher-sharded histogram,
	// outcomes into rolling-window counters, and slow queries — with
	// per-level phase breakdowns — into the flight recorder. Share one
	// hub across pools to aggregate them, or leave nil and set
	// ServeMonitor to have the pool build its own.
	Telemetry *Telemetry
	// ServeMonitor, when non-empty, is a TCP listen address (e.g.
	// ":6060" or "127.0.0.1:0") on which the pool serves its telemetry
	// over HTTP: Prometheus text format at /metrics and a JSON status
	// page at /debug/bfs. The bound address is available from
	// Pool.MonitorAddr; the server shuts down with Close. When
	// Telemetry is nil, setting ServeMonitor creates a hub (wired to
	// Metrics, one histogram shard per Searcher) automatically.
	ServeMonitor string
	// Batching, when enabled (Lanes > 0), coalesces concurrently
	// admitted default-configuration queries into shared MS-BFS batch
	// traversals instead of borrowing per-query Searchers: up to Lanes
	// queries ride one pass over the adjacency. Queries with per-query
	// overrides (Search with a non-zero Query) and QueryFunc calls still
	// use the Searcher pool.
	Batching BatchingOptions
	// RebuildThreshold, when positive, turns Ingest into a
	// self-rebuilding pipeline: once at least that many edges are
	// buffered, a background goroutine merges them with the serving
	// graph through the parallel CSR builder and hot-swaps the result
	// in (exactly as an explicit Rebuild would). 0 leaves rebuilds to
	// explicit Rebuild / Swap calls.
	RebuildThreshold int
}

// BatchingOptions configures the Pool's MS-BFS batching mode.
type BatchingOptions struct {
	// Lanes is the maximum queries coalesced into one batch traversal,
	// 1..64. 0 disables batching.
	Lanes int
	// Window bounds how long a batch runner waits for more queries
	// after admitting its first: the latency each query may pay to
	// improve coalescing under light load (under heavy load batches
	// fill instantly and the window never expires). 0 means 100µs.
	Window time.Duration
	// Runners is the number of concurrent batch traversals (each runner
	// owns one BatchSearcher with Search.Threads workers). 0 means 1.
	Runners int
	// QueueDepth is the admission buffer beyond the lanes the runners
	// can carry; queries beyond it shed with ErrPoolSaturated when
	// their context expires first. 0 sizes it to Lanes*Runners.
	QueueDepth int
}

func (o BatchingOptions) withDefaults() BatchingOptions {
	if o.Window <= 0 {
		o.Window = 100 * time.Microsecond
	}
	if o.Runners <= 0 {
		o.Runners = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = o.Lanes * o.Runners
	}
	return o
}

// Pool is a fixed-size pool of warm Searchers over one graph, for
// serving concurrent query traffic: each Query borrows a Searcher,
// runs one cancellable search on it, and returns it. Admission is
// bounded — when all Searchers are busy, Query waits only as long as
// its context allows and then sheds with ErrPoolSaturated — and a
// query that panics poisons only its own Searcher, which the pool
// discards and rebuilds.
//
// The Result returned by Query and Search is self-contained scalars
// only: Parents, PerLevel and Trace are nil, because the borrowed
// Searcher returns to the pool before Query does and the next borrower
// would overwrite them. Use QueryFunc to read the full Result —
// including Parents — while the borrow is still held.
type Pool struct {
	opt PoolOptions
	// size is the number of Searcher slots every snapshot is built with;
	// ordering is the effective vertex ordering each snapshot is
	// relabeled under (from Search.Reordered's Order when one was
	// supplied, else Search.Ordering), both fixed at construction.
	// transposeSelf records that Options.Transpose was the graph itself
	// (the symmetric idiom), which Swap carries to new snapshots.
	size          int
	ordering      graph.Ordering
	transposeSelf bool

	// snap is the serving snapshot: the graph epoch new queries borrow
	// from. Swap publishes a successor here and retires the old one; a
	// retired snapshot drains — its Searchers are closed — only after
	// its last in-flight borrower returns (see poolSnapshot).
	snap atomic.Pointer[poolSnapshot]
	// swapMu serializes snapshot transitions (Swap, Rebuild, Close), so
	// epochs advance one at a time and a Rebuild's read-merge-swap of
	// the serving graph is atomic against concurrent Swaps.
	swapMu sync.Mutex
	// draining counts retired snapshots whose drain has not finished;
	// drains joins them all at Close.
	draining atomic.Int64
	drains   sync.WaitGroup

	// closing is closed by Close so blocked acquirers fail over to
	// ErrPoolClosed.
	closing chan struct{}

	mu     sync.Mutex
	closed bool
	// broken records a rebuild failure after a panic — from then on the
	// pool serves errors rather than hanging callers on a slot that will
	// never be refilled. closeErr collects the first Searcher.Close
	// error from any snapshot drain, for Close to return.
	broken   error
	closeErr error

	// Ingest's edge buffer, merged into the serving graph by Rebuild.
	// rebuilding single-flights the RebuildThreshold background rebuild.
	pendMu     sync.Mutex
	pendSrcs   []Vertex
	pendDsts   []Vertex
	rebuilding atomic.Bool

	// tel is the resolved telemetry hub (PoolOptions.Telemetry, or one
	// the pool built for ServeMonitor); monitor the HTTP server bound
	// to monitorAddr, both nil/empty when monitoring is off.
	tel         *obs.Telemetry
	monitor     *http.Server
	monitorAddr string

	// Batching mode (nil/zero when Batching.Lanes == 0): queries
	// enqueue batchReqs on batchCh; runner goroutines coalesce them
	// into MS-BFS traversals. replies is the free-list of reply
	// channels (a buffered channel of channels rather than a sync.Pool,
	// so the warm path stays allocation-free regardless of GC timing).
	// batchProducers tracks queries between admission registration and
	// reply receipt; Close waits for it before closing batchStop, so a
	// runner that sees batchStop knows no sender can still be in
	// flight and the final drain cannot strand anyone. Each runner
	// rebinds its BatchSearcher to the serving snapshot between batches,
	// so swaps reach the batching path without pausing it.
	batching       BatchingOptions
	batchCh        chan batchReq
	batchStop      chan struct{}
	batchWG        sync.WaitGroup
	batchProducers sync.WaitGroup
	replies        chan chan batchReply
}

// batchReq is one query handed to the batch runners.
type batchReq struct {
	root  Vertex
	ctx   context.Context
	reply chan batchReply
}

// batchReply is the per-lane outcome delivered back to the querier.
type batchReply struct {
	res Result
	err error
}

// NewPool builds a pool of warm Searchers over g. All Searchers are
// created eagerly so the first queries pay no setup.
func NewPool(g *Graph, opt PoolOptions) (*Pool, error) {
	if g == nil {
		return nil, errors.New("mcbfs: nil graph")
	}
	size := opt.Size
	if size <= 0 {
		perSearcher := opt.Search.Threads
		if perSearcher <= 0 {
			perSearcher = runtime.GOMAXPROCS(0)
		}
		size = runtime.GOMAXPROCS(0) / perSearcher
		if size < 1 {
			size = 1
		}
	}
	p := &Pool{
		opt:      opt,
		size:     size,
		ordering: opt.Search.Ordering,
		closing:  make(chan struct{}),
	}
	if rd := opt.Search.Reordered; rd != nil {
		p.ordering = rd.Order
	}
	p.transposeSelf = opt.Search.Transpose == g
	p.tel = opt.Telemetry
	if p.tel == nil && opt.ServeMonitor != "" {
		p.tel = obs.NewTelemetry(obs.TelemetryOptions{Shards: size, Metrics: opt.Metrics})
	}
	// Batch capacity is decided up front (immutable after this point) so
	// the telemetry gauges registered below never race startBatching.
	batchLanes, batchRunners := 0, 0
	if opt.Batching.Lanes > 0 {
		b := opt.Batching.withDefaults()
		batchLanes, batchRunners = b.Lanes, b.Runners
	}
	if p.tel != nil {
		p.tel.SetPoolInfo(func() obs.PoolInfo {
			sn := p.snap.Load()
			return obs.PoolInfo{
				SearcherSlots: cap(sn.free),
				SearchersBusy: cap(sn.free) - len(sn.free),
				BatchLanes:    batchLanes,
				BatchRunners:  batchRunners,
			}
		})
		p.tel.SetDrainGauge(p.Draining)
	}
	sn, err := p.buildSnapshot(g, 1, opt.Search.Reordered)
	if err != nil {
		return nil, err
	}
	p.drains.Add(1)
	p.snap.Store(sn)
	if p.tel != nil {
		p.tel.SetEpoch(1)
	}
	if opt.ServeMonitor != "" {
		ln, err := net.Listen("tcp", opt.ServeMonitor)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("mcbfs: monitor listen on %q: %w", opt.ServeMonitor, err)
		}
		p.monitorAddr = ln.Addr().String()
		p.monitor = &http.Server{Handler: p.tel.Handler()}
		go func() { _ = p.monitor.Serve(ln) }()
	}
	if opt.Batching.Lanes > 0 {
		if err := p.startBatching(); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// startBatching builds the batch runners: one BatchSearcher per runner,
// the admission channel, and the reply free-list.
func (p *Pool) startBatching() error {
	b := p.opt.Batching.withDefaults()
	if b.Lanes > core.MaxLanes {
		return fmt.Errorf("mcbfs: Batching.Lanes %d exceeds %d", b.Lanes, core.MaxLanes)
	}
	p.batching = b
	p.batchCh = make(chan batchReq, b.QueueDepth)
	p.batchStop = make(chan struct{})
	// Free-list sized to every reply channel the pool can have in
	// flight at once: queued + being-served requests.
	nReplies := b.QueueDepth + b.Lanes*b.Runners
	p.replies = make(chan chan batchReply, nReplies)
	for i := 0; i < nReplies; i++ {
		p.replies <- make(chan batchReply, 1)
	}
	sn := p.snap.Load()
	for i := 0; i < b.Runners; i++ {
		bs, err := p.newBatchSearcher(i, sn)
		if err != nil {
			close(p.batchStop)
			p.batchWG.Wait()
			p.batchCh = nil // Close must not re-run the batch shutdown
			return err
		}
		p.batchWG.Add(1)
		go p.batchRunner(i, bs, sn)
	}
	return nil
}

// newBatchSearcher builds one runner's MS-BFS session over a given
// snapshot's graph, wired to the pool's telemetry and metrics.
func (p *Pool) newBatchSearcher(runner int, sn *poolSnapshot) (*core.BatchSearcher, error) {
	return core.NewBatchSearcher(sn.g, core.BatchOptions{
		Width:          p.batching.Lanes,
		Threads:        p.opt.Search.Threads,
		PinThreads:     p.opt.Search.PinThreads,
		Telemetry:      p.tel,
		TelemetryShard: runner,
		Metrics:        p.opt.Metrics,
		Ordering:       sn.searchOpt.Ordering,
		Reordered:      sn.searchOpt.Reordered,
	})
}

// Telemetry returns the pool's telemetry hub: PoolOptions.Telemetry if
// one was supplied, the hub the pool built for ServeMonitor, or nil
// when monitoring is off.
func (p *Pool) Telemetry() *Telemetry { return p.tel }

// MonitorAddr returns the bound address of the pool's monitoring HTTP
// server ("" when ServeMonitor was not set) — useful with ":0" to
// discover the kernel-assigned port.
func (p *Pool) MonitorAddr() string { return p.monitorAddr }

// Size returns the pool's total serving capacity: Searcher slots plus
// batch lanes across all runners (the maximum queries in flight at
// once). Use Slots for the two components separately. Before this
// accounted for batching it reported only cap(free), understating a
// batching pool's concurrency.
func (p *Pool) Size() int {
	searchers, lanes := p.Slots()
	return searchers + lanes
}

// Slots reports the pool's serving capacity by kind: the number of
// warm Searcher slots (per-query borrows) and the number of MS-BFS
// batch lanes across all runners (0 when batching is off).
func (p *Pool) Slots() (searchers, batchLanes int) {
	searchers = p.size
	if p.batchCh != nil {
		batchLanes = p.batching.Lanes * p.batching.Runners
	}
	return searchers, batchLanes
}

// Epoch returns the serving snapshot's epoch: 1 for the graph the pool
// was built with, incremented by each successful Swap (including the
// ones Rebuild and threshold-triggered ingests perform).
func (p *Pool) Epoch() int64 { return p.snap.Load().epoch }

// Graph returns the graph the serving snapshot answers queries on.
// After a Swap this is the swapped-in graph even while older epochs
// are still draining in-flight queries.
func (p *Pool) Graph() *Graph { return p.snap.Load().g }

// Draining reports how many retired snapshots are still draining:
// superseded epochs holding Searchers open for their last in-flight
// borrowers. 0 means every past epoch has fully torn down.
func (p *Pool) Draining() int { return int(p.draining.Load()) }

// Pending reports how many ingested edges are buffered awaiting the
// next Rebuild.
func (p *Pool) Pending() int {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	return len(p.pendSrcs)
}

// Query runs one BFS from root with the pool's session configuration.
// See Pool's type documentation for what the returned Result contains.
func (p *Pool) Query(ctx context.Context, root Vertex) (Result, error) {
	return p.Search(ctx, root, Query{})
}

// Search is Query with per-query overrides (algorithm tier, depth
// bound), exactly as for Searcher.Search. The Result is copied out of
// the Searcher before it returns to the pool, with the pooled slices
// (Parents, PerLevel, Trace) detached; a warm deadline-free query
// performs no heap allocation.
//
// With Batching enabled, default-configuration queries (zero Query) are
// coalesced into shared MS-BFS traversals; overridden queries still
// borrow a Searcher.
func (p *Pool) Search(ctx context.Context, root Vertex, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.opt.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.opt.DefaultTimeout)
			defer cancel()
		}
	}
	if p.batchCh != nil && q == (Query{}) {
		return p.batchedSearch(ctx, root)
	}
	qstart := p.telNow()
	sn, s, err := p.acquire(ctx)
	if err != nil {
		p.noteShed(qstart, err)
		return Result{}, err
	}
	r, err, panicked := p.searchOn(s, ctx, root, q)
	if panicked {
		p.notePanic(root, qstart)
		p.rebuild(sn, s)
		return Result{}, err
	}
	var res Result
	if r != nil {
		res = *r
		res.Parents, res.PerLevel, res.Trace = nil, nil, nil
	}
	sn.free <- s
	sn.release(p)
	p.countCancelled(err)
	return res, err
}

// QueryFunc runs one BFS from root and invokes fn with the full Result
// — Parents, PerLevel and Trace included — while the borrowed Searcher
// is still held, so the pointers are safe to read for the duration of
// fn (and only then; copy what must outlive it). fn's error is
// returned as the query's error. A panic in fn is treated like a
// panicking search: the Searcher is discarded and rebuilt.
func (p *Pool) QueryFunc(ctx context.Context, root Vertex, q Query, fn func(*Result) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.opt.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.opt.DefaultTimeout)
			defer cancel()
		}
	}
	qstart := p.telNow()
	sn, s, err := p.acquire(ctx)
	if err != nil {
		p.noteShed(qstart, err)
		return err
	}
	err, panicked := p.runWith(s, ctx, root, q, fn)
	if panicked {
		p.notePanic(root, qstart)
		p.rebuild(sn, s)
		return err
	}
	sn.free <- s
	sn.release(p)
	p.countCancelled(err)
	return err
}

// acquire borrows a Searcher from the serving snapshot: the fast path
// takes an idle one without blocking; the slow path waits until one
// frees up, the snapshot is superseded by a Swap (retry on the new
// epoch), the pool closes, or the caller's context expires (shed).
// The returned snapshot holds one reference for the borrow; the caller
// must return the Searcher to sn.free and then call sn.release(p).
// Shed accounting — the Shed counter and the telemetry error outcome —
// is centralized in noteShed, which every admission path calls on its
// error.
func (p *Pool) acquire(ctx context.Context) (*poolSnapshot, *core.Searcher, error) {
	for {
		if err := p.err(); err != nil {
			return nil, nil, err
		}
		sn := p.snap.Load()
		// Reference first, then re-check retirement: a Swap between the
		// Load and the Add may already have begun draining, and a drained
		// snapshot's free channel would block us forever. The stale
		// reference is released (possibly re-triggering the Once-guarded
		// drain) and the loop retries on the new epoch.
		sn.refs.Add(1)
		if sn.retired.Load() {
			sn.release(p)
			continue
		}
		select {
		case s := <-sn.free:
			return sn, s, nil
		default:
		}
		select {
		case s := <-sn.free:
			return sn, s, nil
		case <-sn.retiredCh:
			// Swapped out from under us mid-wait: move to the new epoch
			// rather than queueing on Searchers that are being torn down.
			sn.release(p)
			continue
		case <-p.closing:
			sn.release(p)
			return nil, nil, ErrPoolClosed
		case <-ctx.Done():
			sn.release(p)
			return nil, nil, fmt.Errorf("%w: %w", ErrPoolSaturated, ctx.Err())
		}
	}
}

// batchedSearch is the batching-mode query path: register as a
// producer, enqueue on the admission channel (shedding when the queue
// stays full past the caller's context), and wait for the per-lane
// reply. A warm query allocates nothing: the request is a channel send
// of a value, and the reply channel comes from the free-list.
func (p *Pool) batchedSearch(ctx context.Context, root Vertex) (Result, error) {
	qstart := p.telNow()
	// Producer registration orders against Close: after closed is set
	// no new producer registers, so batchProducers.Wait() in Close
	// covers every request that could reach the channel.
	p.mu.Lock()
	if err := p.errLocked(); err != nil {
		p.mu.Unlock()
		return Result{}, err
	}
	p.batchProducers.Add(1)
	p.mu.Unlock()
	defer p.batchProducers.Done()

	// Free-list exhaustion means more callers than the pool can have in
	// flight — the same saturation signal as a full admission queue.
	var reply chan batchReply
	select {
	case reply = <-p.replies:
	default:
		select {
		case reply = <-p.replies:
		case <-p.closing:
			return Result{}, ErrPoolClosed
		case <-ctx.Done():
			err := fmt.Errorf("%w: %w", ErrPoolSaturated, ctx.Err())
			p.noteShed(qstart, err)
			return Result{}, err
		}
	}
	req := batchReq{root: root, ctx: ctx, reply: reply}
	select {
	case p.batchCh <- req:
	default:
		select {
		case p.batchCh <- req:
		case <-p.closing:
			p.replies <- reply
			return Result{}, ErrPoolClosed
		case <-ctx.Done():
			p.replies <- reply
			err := fmt.Errorf("%w: %w", ErrPoolSaturated, ctx.Err())
			p.noteShed(qstart, err)
			return Result{}, err
		}
	}
	// Admitted: the runner owns the request and will always reply, so
	// the wait is unconditional — abandoning it would let the next
	// borrower of this reply channel read our lane's result.
	r := <-reply
	p.replies <- reply
	p.countCancelled(r.err)
	return r.res, r.err
}

// batchRunner is one batching-mode serving loop: block for the first
// query, hold the admission window open to coalesce more (up to the
// lane budget), run the shared MS-BFS traversal with each lane bounded
// by its own query context, and deliver per-lane results. A panicking
// traversal poisons only this runner's BatchSearcher, which is rebuilt.
//
// The runner tracks the snapshot its BatchSearcher was built over:
// after collecting each batch it compares against the serving snapshot
// and, on an epoch change, rebinds — builds a fresh BatchSearcher on
// the new graph and closes the old one. If the rebind fails, the
// runner degrades to its stale snapshot (counted in SwapDegraded)
// rather than dropping queries; it retries on the next batch.
func (p *Pool) batchRunner(runner int, bs *core.BatchSearcher, sn *poolSnapshot) {
	defer p.batchWG.Done()
	lanes := p.batching.Lanes
	window := p.batching.Window
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	reqs := make([]batchReq, 0, lanes)
	roots := make([]Vertex, 0, lanes)
	ctxs := make([]context.Context, 0, lanes)
	for {
		reqs = reqs[:0]
		select {
		case req := <-p.batchCh:
			reqs = append(reqs, req)
		case <-p.batchStop:
			// Close has seen every producer finish; anything still
			// queued was abandoned by a shutdown race and is failed
			// here, then the drain is final.
			for {
				select {
				case req := <-p.batchCh:
					req.reply <- batchReply{err: ErrPoolClosed}
				default:
					bs.Close()
					return
				}
			}
		}
		// Admission window: wait up to window for the batch to fill.
		// Under load the lane budget is hit first and the timer is
		// simply stopped; idle runners pay one timer sleep per batch.
		if lanes > 1 {
			timer.Reset(window)
		collect:
			for len(reqs) < lanes {
				select {
				case req := <-p.batchCh:
					reqs = append(reqs, req)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}

		// Rebind to the serving snapshot if a Swap landed since the last
		// batch. Done after collection so the admission window isn't
		// extended by the rebuild; the batch itself runs on whichever
		// epoch the rebind reached.
		if cur := p.snap.Load(); cur != sn {
			if nbs, err := p.newBatchSearcher(runner, cur); err == nil {
				bs.Close()
				bs, sn = nbs, cur
			} else if p.opt.Metrics != nil {
				p.opt.Metrics.SwapDegraded.Add(1)
			}
		}

		roots = roots[:0]
		ctxs = ctxs[:0]
		for _, req := range reqs {
			roots = append(roots, req.root)
			ctxs = append(ctxs, req.ctx)
		}
		res, err, panicked := p.batchOn(bs, roots, ctxs)
		if panicked {
			for _, req := range reqs {
				req.reply <- batchReply{err: err}
			}
			if p.opt.Metrics != nil {
				p.opt.Metrics.Recovered.Add(1)
			}
			bs, sn = p.rebuildBatch(bs, runner)
			if bs == nil {
				// The pool is broken; keep answering (with the error)
				// so admitted producers are never stranded.
				p.failBatchRequests()
				return
			}
			continue
		}
		if err != nil {
			// SearchLanes only errors as a whole on invalid input or a
			// dead batch context; neither occurs here (roots are
			// validated by the graph bound check per query below, and
			// the batch context is Background). Fail the lanes anyway
			// rather than dropping them.
			for _, req := range reqs {
				req.reply <- batchReply{err: err}
			}
			continue
		}
		for l, req := range reqs {
			if lerr := res.Err[l]; lerr != nil {
				req.reply <- batchReply{err: lerr}
				continue
			}
			req.reply <- batchReply{res: res.LaneResult(l)}
		}
	}
}

// failBatchRequests serves the admission channel with errors after a
// runner's BatchSearcher could not be rebuilt, until Close's final
// drain point.
func (p *Pool) failBatchRequests() {
	for {
		select {
		case req := <-p.batchCh:
			req.reply <- batchReply{err: p.err()}
		case <-p.batchStop:
			for {
				select {
				case req := <-p.batchCh:
					req.reply <- batchReply{err: ErrPoolClosed}
				default:
					return
				}
			}
		}
	}
}

// batchOn runs one batch traversal under a recover scope.
func (p *Pool) batchOn(bs *core.BatchSearcher, roots []Vertex, ctxs []context.Context) (res *core.BatchResult, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			res = nil
			err = fmt.Errorf("mcbfs: batch of %d queries panicked: %v", len(roots), r)
		}
	}()
	res, err = bs.SearchLanes(context.Background(), roots, ctxs)
	return res, err, false
}

// rebuildBatch replaces a runner's BatchSearcher after a panic,
// mirroring rebuild for the Searcher pool. The replacement is built
// over the current serving snapshot (the panicked one's epoch may be
// long gone). Returns nil — and marks the pool broken — when the
// rebuild fails.
func (p *Pool) rebuildBatch(old *core.BatchSearcher, runner int) (*core.BatchSearcher, *poolSnapshot) {
	go func() {
		defer func() { _ = recover() }()
		old.Close()
	}()
	sn := p.snap.Load()
	bs, err := p.newBatchSearcher(runner, sn)
	if err != nil {
		p.mu.Lock()
		p.broken = fmt.Errorf("mcbfs: rebuilding batch searcher after panic: %w", err)
		p.mu.Unlock()
		return nil, nil
	}
	return bs, sn
}

// searchOn executes one borrowed search under a recover scope, so a
// panic is contained to this query and reported as an error.
func (p *Pool) searchOn(s *core.Searcher, ctx context.Context, root Vertex, q Query) (res *Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			res = nil
			err = fmt.Errorf("mcbfs: query from root %d panicked: %v", root, r)
		}
	}()
	res, err = s.SearchContext(ctx, root, q)
	return res, err, false
}

// runWith is searchOn plus the caller's fn, both inside the recover
// scope (QueryFunc's contract: a panicking fn poisons the Searcher it
// was reading, so the Searcher is rebuilt just the same).
func (p *Pool) runWith(s *core.Searcher, ctx context.Context, root Vertex, q Query, fn func(*Result) error) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("mcbfs: query from root %d panicked: %v", root, r)
		}
	}()
	res, err := s.SearchContext(ctx, root, q)
	if err != nil {
		return err, false
	}
	return fn(res), false
}

// telNow stamps the query's admission time, but only when a telemetry
// hub will consume it — the no-telemetry fast path stays free of the
// extra clock read.
func (p *Pool) telNow() time.Time {
	if p.tel == nil {
		return time.Time{}
	}
	return time.Now()
}

// noteShed records an admission failure into every sink before the
// caller returns ErrPoolSaturated: the Shed serving counter and — when
// a telemetry hub is attached — the latency histogram's shed outcome,
// which feeds the /metrics error-rate windows. Centralizing both here
// keeps the Searcher-pool and batching admission paths consistent.
// Cancellation and search errors are recorded by the sessions
// themselves, so only the saturated path is noted here; the recorded
// latency is the time the query spent waiting before it was refused.
func (p *Pool) noteShed(qstart time.Time, err error) {
	if !errors.Is(err, ErrPoolSaturated) {
		return
	}
	if p.opt.Metrics != nil {
		p.opt.Metrics.Shed.Add(1)
	}
	if p.tel != nil {
		p.tel.RecordShed(qstart, time.Since(qstart))
	}
}

// notePanic reports a panicking query to the telemetry hub. The
// Searcher never reached its own recording point, so the pool records
// the sample — scalars only, on shard 0 (panics are rare enough that
// shard contention is irrelevant).
func (p *Pool) notePanic(root Vertex, qstart time.Time) {
	if p.tel == nil {
		return
	}
	p.tel.RecordQuery(0, obs.QuerySample{
		Root:     uint32(root),
		Start:    qstart,
		Duration: time.Since(qstart),
		Outcome:  obs.OutcomePanic,
	})
}

// countCancelled feeds the Cancelled serving counter for queries the
// context unwound. A shed query's error wraps the context error that
// expired while it waited for admission, so it matches both
// ErrPoolSaturated and context.DeadlineExceeded/Canceled; noteShed
// already counted it, and counting it here too would double-book one
// outcome across Shed and Cancelled. Each query increments exactly one
// of the two.
func (p *Pool) countCancelled(err error) {
	if err == nil || p.opt.Metrics == nil {
		return
	}
	if errors.Is(err, ErrPoolSaturated) {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		p.opt.Metrics.Cancelled.Add(1)
	}
}

// rebuild replaces a Searcher whose query panicked: the old one is
// closed on a best-effort basis (its pool protocol may be corrupted
// mid-job, so the close runs detached and its own panic is swallowed)
// and a fresh Searcher takes the slot in the snapshot that owned it.
// If that snapshot was retired while the query was in flight, the slot
// is simply forgotten (the snapshot's drain closes one fewer) — no
// query can ever borrow from a retired epoch again. If the rebuild
// itself fails the pool is marked broken rather than left to hang
// callers on a slot that will never be refilled. The borrow reference
// is released at the end, so a retired snapshot cannot begin draining
// while its slot count is still being adjusted.
func (p *Pool) rebuild(sn *poolSnapshot, old *core.Searcher) {
	if p.opt.Metrics != nil {
		p.opt.Metrics.Recovered.Add(1)
	}
	go func() {
		defer func() { _ = recover() }()
		old.Close()
	}()
	if sn.retired.Load() {
		sn.live.Add(-1)
		sn.release(p)
		return
	}
	s, err := core.NewSearcher(sn.g, sn.searchOpt)
	if err != nil {
		sn.live.Add(-1)
		p.mu.Lock()
		p.broken = fmt.Errorf("mcbfs: rebuilding Searcher after panic: %w", err)
		p.mu.Unlock()
		sn.release(p)
		return
	}
	sn.free <- s
	sn.release(p)
}

// err returns the pool's terminal state, if any.
func (p *Pool) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.errLocked()
}

// errLocked is err with p.mu already held.
func (p *Pool) errLocked() error {
	if p.closed {
		return ErrPoolClosed
	}
	return p.broken
}

// Close shuts the pool down: new queries fail with ErrPoolClosed,
// waiting acquirers are released, the serving snapshot is retired, and
// Close blocks until every snapshot — current and still-draining past
// epochs — has drained, closing each Searcher. Close is idempotent.
func (p *Pool) Close() error {
	p.swapMu.Lock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.swapMu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.closing)
	// Retiring the serving snapshot starts its drain as soon as the last
	// in-flight borrower returns; past epochs are already retired.
	p.snap.Load().retire(p)
	p.swapMu.Unlock()
	if p.monitor != nil {
		_ = p.monitor.Close()
	}
	p.drains.Wait()
	if p.batchCh != nil {
		// Every producer registered before closed was set; once they
		// all return (replied, shed, or released by closing), no sender
		// can touch batchCh again and the runners' final drain is safe.
		p.batchProducers.Wait()
		close(p.batchStop)
		p.batchWG.Wait()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closeErr
}
