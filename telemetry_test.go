package mcbfs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mcbfs"
)

// statusDoc mirrors the /debug/bfs JSON shape the way an external
// consumer would decode it.
type statusDoc struct {
	Pool struct {
		Size int `json:"size"`
		Busy int `json:"busy"`
	} `json:"pool"`
	QPS struct {
		S1  float64 `json:"1s"`
		S10 float64 `json:"10s"`
		S60 float64 `json:"60s"`
	} `json:"qps"`
	ErrorRate struct {
		S60 float64 `json:"60s"`
	} `json:"errorRate"`
	Latency struct {
		Count uint64 `json:"count"`
		P50   string `json:"p50"`
		P999  string `json:"p999"`
	} `json:"latency"`
	Queries map[string]int64 `json:"queries"`
	Slowest []struct {
		Root       uint32 `json:"root"`
		DurationNs int64  `json:"durationNs"`
		Levels     int    `json:"levels"`
		Outcome    string `json:"outcome"`
		Captured   bool   `json:"captured"`
		PerLevel   []struct {
			Level      int              `json:"level"`
			DurationNs int64            `json:"durationNs"`
			Frontier   int64            `json:"frontier"`
			PhaseNs    map[string]int64 `json:"phaseNs"`
		} `json:"perLevel"`
	} `json:"slowest"`
}

// TestPoolServeMonitorE2E drives a monitored pool end to end: queries
// through Pool.Query, then the two HTTP surfaces — /metrics must be
// valid Prometheus text, /debug/bfs must report rolling QPS and at
// least one captured slow query with its per-level phase breakdown.
func TestPoolServeMonitorE2E(t *testing.T) {
	g, err := mcbfs.GridGraph(64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:         2,
		Search:       mcbfs.Options{Threads: 2},
		ServeMonitor: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Telemetry() == nil {
		t.Fatal("ServeMonitor did not create a telemetry hub")
	}
	addr := pool.MonitorAddr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("MonitorAddr = %q, want a bound port", addr)
	}

	ctx := context.Background()
	const queries = 20
	for i := 0; i < queries; i++ {
		if _, err := pool.Query(ctx, mcbfs.Vertex(i)); err != nil {
			t.Fatal(err)
		}
	}

	base := "http://" + addr
	mbody := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE mcbfs_query_duration_seconds histogram",
		`mcbfs_query_duration_seconds_bucket{le="+Inf"} 20`,
		"mcbfs_query_duration_seconds_count 20",
		`mcbfs_queries_total{outcome="ok"} 20`,
		"mcbfs_pool_searchers 2",
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("/metrics missing %q\n%s", want, mbody)
		}
	}

	sbody := httpGet(t, base+"/debug/bfs")
	var st statusDoc
	if err := json.Unmarshal([]byte(sbody), &st); err != nil {
		t.Fatalf("/debug/bfs JSON: %v\n%s", err, sbody)
	}
	if st.Pool.Size != 2 {
		t.Errorf("pool size = %d, want 2", st.Pool.Size)
	}
	if st.QPS.S1 <= 0 || st.QPS.S10 <= 0 || st.QPS.S60 <= 0 {
		t.Errorf("rolling QPS not reported: %+v", st.QPS)
	}
	if st.Latency.Count != queries || st.Latency.P50 == "" || st.Latency.P999 == "" {
		t.Errorf("latency block incomplete: %+v", st.Latency)
	}
	if st.Queries["ok"] != queries {
		t.Errorf("queries = %v, want ok=%d", st.Queries, queries)
	}
	if len(st.Slowest) == 0 {
		t.Fatal("no slowest queries reported")
	}
	// The recorder is cold (threshold 0), so every query was captured:
	// the slowest entry must carry per-level phase breakdowns.
	var captured bool
	for _, q := range st.Slowest {
		if !q.Captured || len(q.PerLevel) == 0 {
			continue
		}
		captured = true
		if q.Levels != len(q.PerLevel) {
			t.Errorf("levels = %d but perLevel has %d entries", q.Levels, len(q.PerLevel))
		}
		lv := q.PerLevel[0]
		if lv.Frontier <= 0 || lv.PhaseNs == nil {
			t.Errorf("level 0 breakdown incomplete: %+v", lv)
		}
		if _, ok := lv.PhaseNs["local-scan"]; !ok {
			t.Errorf("phaseNs missing local-scan: %v", lv.PhaseNs)
		}
		break
	}
	if !captured {
		t.Error("no slow query with a per-level breakdown was captured")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, b)
	}
	return string(b)
}

// TestPoolSharedTelemetryHub checks that a caller-supplied hub is used
// as-is and aggregates shed traffic next to successful queries.
func TestPoolSharedTelemetryHub(t *testing.T) {
	g, err := mcbfs.GridGraph(32, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	tel := mcbfs.NewTelemetry(mcbfs.TelemetryOptions{Shards: 1})
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:      1,
		Search:    mcbfs.Options{Threads: 1},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Telemetry() != tel {
		t.Fatal("pool did not adopt the supplied hub")
	}
	if _, err := pool.Query(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := tel.OutcomeCount(mcbfs.OutcomeOK); got != 1 {
		t.Errorf("ok count = %d, want 1", got)
	}

	// Saturate: hold the only Searcher, then shed a query.
	hold := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- pool.QueryFunc(context.Background(), 0, mcbfs.Query{}, func(*mcbfs.Result) error {
			close(hold)
			time.Sleep(50 * time.Millisecond)
			return nil
		})
	}()
	<-hold
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := pool.Query(ctx, 0); err == nil {
		t.Fatal("expected shed error")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := tel.OutcomeCount(mcbfs.OutcomeShed); got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
}

// TestPoolQueryTelemetryZeroAlloc locks in the acceptance criterion:
// a warm Query with full telemetry enabled performs zero heap
// allocations per operation.
func TestPoolQueryTelemetryZeroAlloc(t *testing.T) {
	g, err := mcbfs.GridGraph(64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny flight ring so the warmup below exercises every slot's
	// PerLevel capacity; all searches run from one root, so captured
	// breakdowns have identical length and the slots reach steady state.
	tel := mcbfs.NewTelemetry(mcbfs.TelemetryOptions{Shards: 1, FlightSize: 8})
	pool, err := mcbfs.NewPool(g, mcbfs.PoolOptions{
		Size:      1,
		Search:    mcbfs.Options{Threads: 2},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	for i := 0; i < 128; i++ { // warm: past the first threshold refresh
		if _, err := pool.Query(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := pool.Query(ctx, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm telemetry-enabled Query allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkServeTelemetryOverhead compares warm pool queries with
// telemetry off and on; the acceptance budget for the telemetry path is
// a ≤2% throughput cost. The workload is a shallow wide graph (the
// serving shape): telemetry's only per-query cost scales with level
// count, so a small-world graph with a handful of levels is where the
// budget must hold — a deep narrow graph (e.g. a grid, hundreds of
// levels of tiny frontiers) pays proportionally more for its phase
// timestamps, as any per-level instrument does.
func BenchmarkServeTelemetryOverhead(b *testing.B) {
	g, err := mcbfs.UniformGraph(1<<16, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, enabled := range []bool{false, true} {
		b.Run(fmt.Sprintf("telemetry=%v", enabled), func(b *testing.B) {
			opt := mcbfs.PoolOptions{Size: 1, Search: mcbfs.Options{Threads: 2}}
			if enabled {
				opt.Telemetry = mcbfs.NewTelemetry(mcbfs.TelemetryOptions{Shards: 1})
			}
			pool, err := mcbfs.NewPool(g, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			ctx := context.Background()
			for i := 0; i < 80; i++ { // warm the session and the flight ring
				if _, err := pool.Query(ctx, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Query(ctx, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
