// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices DESIGN.md calls out.
//
// Two kinds of benchmark appear here:
//
//   - measured: real library runs on this host at host-appropriate
//     sizes; b.N iterations are timed as usual and the achieved rate is
//     reported as the custom metric "ME/s".
//   - simulated: the calibrated machine model evaluated at the paper's
//     full scale; the simulation itself is what is timed (it is
//     microseconds), and the *reproduced paper figure* is reported as
//     the custom metric "sim-ME/s".
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mcbfs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mcbfs/internal/core"
	"mcbfs/internal/dist"
	"mcbfs/internal/gen"
	"mcbfs/internal/graph"
	"mcbfs/internal/graph500"
	"mcbfs/internal/machine"
	"mcbfs/internal/queue"
	"mcbfs/internal/simbfs"
	"mcbfs/internal/ssca2"
	"mcbfs/internal/topology"
)

// benchGraph caches measured-workload graphs across benchmarks.
var (
	benchMu     sync.Mutex
	benchGraphs = map[string]*graph.Graph{}
)

func benchUniform(b *testing.B, n, d int) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("u/%d/%d", n, d)
	benchMu.Lock()
	defer benchMu.Unlock()
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g, err := gen.Uniform(n, d, 42)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

func benchRMAT(b *testing.B, scale int, m int64) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("r/%d/%d", scale, m)
	benchMu.Lock()
	defer benchMu.Unlock()
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g, err := gen.RMAT(scale, m, gen.GTgraphDefaults, 42)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

// runBFS times b.N searches and reports the measured rate.
func runBFS(b *testing.B, g *graph.Graph, opt core.Options) {
	b.Helper()
	var edges int64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := core.BFS(g, 0, opt)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.EdgesTraversed
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
	}
}

// reportSim runs one paper-scale simulation per iteration and reports
// the simulated figure.
func reportSim(b *testing.B, f func() simbfs.Result) {
	b.Helper()
	var last simbfs.Result
	for i := 0; i < b.N; i++ {
		last = f()
	}
	b.ReportMetric(last.RatePerSec/1e6, "sim-ME/s")
}

// --- Fig. 2: memory pipelining ---

func BenchmarkFig2MemoryPipelining(b *testing.B) {
	for _, ws := range []int64{32 << 10, 8 << 20, 64 << 20} {
		for _, depth := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("ws=%dKB/depth=%d", ws>>10, depth), func(b *testing.B) {
				var rate float64
				for i := 0; i < b.N; i++ {
					rate = machine.MeasureRandomReadRate(ws, depth, 30*time.Millisecond)
				}
				b.ReportMetric(rate/1e6, "Mreads/s")
			})
		}
	}
}

// --- Fig. 3: fetch-and-add scaling ---

func BenchmarkFig3FetchAndAdd(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = machine.MeasureFetchAddRate(4<<20, threads, 30*time.Millisecond)
			}
			b.ReportMetric(rate/1e6, "Mops/s")
		})
	}
}

// --- Fig. 4: bitmap accesses vs atomics ---

func BenchmarkFig4InstrumentedBFS(b *testing.B) {
	g := benchUniform(b, 1<<20, 8) // paper: 16M edges, arity 8 (scaled)
	var atomics, reads int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BFS(g, 0, core.Options{
			Algorithm:  core.AlgSingleSocket,
			Threads:    4,
			Instrument: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		atomics, reads = 0, 0
		for _, ls := range res.PerLevel {
			atomics += ls.AtomicOps
			reads += ls.BitmapReads
		}
	}
	b.ReportMetric(float64(atomics)/float64(reads), "atomics/read")
}

// --- Fig. 5: impact of the optimizations ---

func BenchmarkFig5Optimizations(b *testing.B) {
	g := benchUniform(b, 1<<19, 8)
	algs := []struct {
		name string
		opt  core.Options
	}{
		{"simple", core.Options{Algorithm: core.AlgParallelSimple, Threads: 4, Machine: topology.NehalemEP}},
		{"bitmap", core.Options{Algorithm: core.AlgSingleSocket, Threads: 4, Machine: topology.NehalemEP, DisableDoubleCheck: true}},
		{"bitmap+dc", core.Options{Algorithm: core.AlgSingleSocket, Threads: 4, Machine: topology.NehalemEP}},
		{"channels", core.Options{Algorithm: core.AlgMultiSocket, Threads: 8, Machine: topology.NehalemEP}},
	}
	for _, a := range algs {
		b.Run(a.name, func(b *testing.B) { runBFS(b, g, a.opt) })
	}
}

// --- Figs. 6-9: rates, scalability, size sensitivity ---

// benchFig runs the measured (scaled) and simulated (paper-scale)
// halves of one rate figure.
func benchFig(b *testing.B, kind simbfs.GraphKind, model machine.Model, measuredThreads []int) {
	// Measured at host scale.
	for _, d := range []int{8, 16} {
		var g *graph.Graph
		if kind == simbfs.RMAT {
			g = benchRMAT(b, 18, int64(d)<<18)
		} else {
			g = benchUniform(b, 1<<18, d)
		}
		for _, t := range measuredThreads {
			b.Run(fmt.Sprintf("measured/d=%d/threads=%d", d, t), func(b *testing.B) {
				runBFS(b, g, core.Options{Threads: t, Machine: topology.NehalemEP})
			})
		}
	}
	// Simulated at paper scale (n=32M, d=8..32).
	for _, d := range []float64{8, 32} {
		for _, t := range []int{1, model.Topo.TotalThreads()} {
			b.Run(fmt.Sprintf("sim/d=%.0f/threads=%d", d, t), func(b *testing.B) {
				w := simbfs.Workload{Kind: kind, N: 32e6, Degree: d}
				reportSim(b, func() simbfs.Result { return simbfs.SimulateBest(w, model, t) })
			})
		}
	}
}

func BenchmarkFig6UniformEP(b *testing.B) {
	benchFig(b, simbfs.Uniform, machine.EP(), []int{1, 4})
}

func BenchmarkFig7RMATEP(b *testing.B) {
	benchFig(b, simbfs.RMAT, machine.EP(), []int{1, 4})
}

func BenchmarkFig8UniformEX(b *testing.B) {
	benchFig(b, simbfs.Uniform, machine.EX(), []int{1, 4})
}

func BenchmarkFig9RMATEX(b *testing.B) {
	benchFig(b, simbfs.RMAT, machine.EX(), []int{1, 4})
}

// BenchmarkFig6cSizeSensitivity sweeps the vertex count at fixed degree
// (the paper's 6c/7c/8c/9c panels), measured on the host.
func BenchmarkFig6cSizeSensitivity(b *testing.B) {
	for _, scale := range []int{14, 16, 18, 20} {
		g := benchUniform(b, 1<<scale, 8)
		b.Run(fmt.Sprintf("n=2^%d", scale), func(b *testing.B) {
			runBFS(b, g, core.Options{Threads: 4, Machine: topology.NehalemEP})
		})
	}
}

// --- Fig. 10: throughput mode ---

func BenchmarkFig10Throughput(b *testing.B) {
	for _, instances := range []int{1, 2, 4} {
		graphs := make([]*graph.Graph, instances)
		for i := range graphs {
			graphs[i] = benchUniform(b, 1<<17, 16)
		}
		b.Run(fmt.Sprintf("instances=%d", instances), func(b *testing.B) {
			var edges int64
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				var mu sync.Mutex
				for j := 0; j < instances; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						res, err := core.BFS(graphs[j], 0, core.Options{
							Algorithm: core.AlgSingleSocket, Threads: 2,
						})
						if err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						edges += res.EdgesTraversed
						mu.Unlock()
					}(j)
				}
				wg.Wait()
			}
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
		})
	}
}

// --- Table III: headline comparisons (simulated at paper scale) ---

func BenchmarkTable3(b *testing.B) {
	ex := machine.EX()
	rows := []struct {
		name string
		w    simbfs.Workload
	}{
		{"uniform-64M-512M-vs-XMT128", simbfs.Workload{Kind: simbfs.Uniform, N: 64e6, Degree: 8}},
		{"rmat-200M-1B-vs-MTA2-40", simbfs.Workload{Kind: simbfs.RMAT, N: 200e6, Degree: 5}},
		{"uniform-d50-vs-BGL256", simbfs.Workload{Kind: simbfs.Uniform, N: 64e6, Degree: 50}},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			reportSim(b, func() simbfs.Result { return simbfs.SimulateBest(r.w, ex, 64) })
		})
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationVisitedLayout compares the bitmap visited set
// (Algorithm 2) against claiming directly on the 4-byte parent array
// (Algorithm 1's layout) — the paper's working-set argument.
func BenchmarkAblationVisitedLayout(b *testing.B) {
	g := benchUniform(b, 1<<20, 8)
	b.Run("bitmap-1bit", func(b *testing.B) {
		runBFS(b, g, core.Options{Algorithm: core.AlgSingleSocket, Threads: 4})
	})
	b.Run("parents-4byte", func(b *testing.B) {
		runBFS(b, g, core.Options{Algorithm: core.AlgParallelSimple, Threads: 4})
	})
}

// BenchmarkAblationDoubleCheck isolates the double-checked claim: the
// same algorithm with and without the plain probe before the atomic.
func BenchmarkAblationDoubleCheck(b *testing.B) {
	g := benchUniform(b, 1<<20, 8)
	b.Run("double-check", func(b *testing.B) {
		runBFS(b, g, core.Options{Algorithm: core.AlgSingleSocket, Threads: 4})
	})
	b.Run("always-atomic", func(b *testing.B) {
		runBFS(b, g, core.Options{Algorithm: core.AlgSingleSocket, Threads: 4, DisableDoubleCheck: true})
	})
}

// BenchmarkAblationBatchSize sweeps the inter-socket channel batch
// size (the paper's batching optimization, Section III).
func BenchmarkAblationBatchSize(b *testing.B) {
	g := benchUniform(b, 1<<19, 8)
	for _, batch := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			runBFS(b, g, core.Options{
				Algorithm: core.AlgMultiSocket,
				Threads:   8,
				Machine:   topology.NehalemEP,
				BatchSize: batch,
			})
		})
	}
}

// BenchmarkAblationChannelKind compares the FastForward+TicketLock
// channel against the plausible alternatives for moving (vertex,
// parent) tuples between sockets.
func BenchmarkAblationChannelKind(b *testing.B) {
	const tuples = 1 << 16
	const batch = 64
	makeBatch := func() []queue.Tuple {
		bt := make([]queue.Tuple, batch)
		for i := range bt {
			bt[i] = queue.Tuple{V: uint32(i), Parent: uint32(i + 1)}
		}
		return bt
	}

	b.Run("fastforward-ticketlock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := queue.NewChannel()
			done := make(chan struct{})
			go func() {
				defer close(done)
				buf := make([]queue.Tuple, batch)
				got := 0
				for got < tuples {
					got += c.ReceiveBatch(buf)
				}
			}()
			bt := makeBatch()
			for sent := 0; sent < tuples; sent += batch {
				c.SendBatch(bt)
			}
			<-done
		}
	})

	b.Run("go-chan-per-tuple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch := make(chan queue.Tuple, 4096)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for got := 0; got < tuples; got++ {
					<-ch
				}
			}()
			for sent := 0; sent < tuples; sent++ {
				ch <- queue.Tuple{V: uint32(sent), Parent: 1}
			}
			<-done
		}
	})

	b.Run("go-chan-batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch := make(chan []queue.Tuple, 256)
			done := make(chan struct{})
			go func() {
				defer close(done)
				got := 0
				for got < tuples {
					got += len(<-ch)
				}
			}()
			for sent := 0; sent < tuples; sent += batch {
				bt := makeBatch()
				ch <- bt
			}
			<-done
		}
	})

	b.Run("mutex-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var mu sync.Mutex
			var slice []queue.Tuple
			done := make(chan struct{})
			go func() {
				defer close(done)
				got := 0
				for got < tuples {
					mu.Lock()
					got += len(slice)
					slice = slice[:0]
					mu.Unlock()
				}
			}()
			bt := makeBatch()
			for sent := 0; sent < tuples; sent += batch {
				mu.Lock()
				slice = append(slice, bt...)
				mu.Unlock()
			}
			<-done
		}
	})
}

// BenchmarkAblationDirectionOptimizing compares the paper's top-down
// algorithm against the direction-optimizing hybrid extension; the
// custom metric shows the scanned-edge reduction that bottom-up's early
// exit buys on dense random graphs.
func BenchmarkAblationDirectionOptimizing(b *testing.B) {
	g := benchUniform(b, 1<<19, 16)
	gt := g.Transpose()
	b.Run("top-down", func(b *testing.B) {
		runBFS(b, g, core.Options{Algorithm: core.AlgSingleSocket, Threads: 4})
	})
	b.Run("hybrid", func(b *testing.B) {
		var scanned, topDownEdges int64
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res, err := core.BFS(g, 0, core.Options{
				Algorithm: core.AlgDirectionOptimizing,
				Threads:   4,
				Transpose: gt,
			})
			if err != nil {
				b.Fatal(err)
			}
			scanned = res.EdgesTraversed
			topDownEdges += res.EdgesTraversed
		}
		elapsed := time.Since(start).Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(topDownEdges)/elapsed/1e6, "ME/s")
		}
		b.ReportMetric(float64(scanned)/float64(g.NumEdges()), "scanned/m")
	})
}

// BenchmarkAblationProbeBatch sweeps the software-pipelined probe
// block size — the in-code analogue of the paper's _mm_prefetch
// strategy for keeping multiple bitmap reads in flight.
func BenchmarkAblationProbeBatch(b *testing.B) {
	g := benchUniform(b, 1<<21, 8) // 2M vertices: bitmap spills the L2
	for _, pb := range []int{0, 4, 16, 64} {
		b.Run(fmt.Sprintf("probeBatch=%d", pb), func(b *testing.B) {
			runBFS(b, g, core.Options{Algorithm: core.AlgSingleSocket, Threads: 1, ProbeBatch: pb})
		})
	}
}

// BenchmarkSearchThroughput measures the amortized-session repeated-
// search path: one Searcher, a search per iteration. -benchmem (or the
// ReportAllocs below) is the acceptance gauge — warm searches must not
// allocate their parents/bitmap/queue state, so allocs/op sits at ~0
// versus the tens of allocations a one-shot core.BFS pays. The one-shot
// variant is benchmarked alongside for the cold-vs-warm comparison.
func BenchmarkSearchThroughput(b *testing.B) {
	g := benchUniform(b, 1<<18, 8)
	roots := []graph.Vertex{0, 101, 1 << 10, 1 << 15, 7}
	tiers := []struct {
		name string
		opt  core.Options
	}{
		{"sequential", core.Options{Algorithm: core.AlgSequential, Threads: 1}},
		{"single-socket", core.Options{Algorithm: core.AlgSingleSocket, Threads: 4}},
		{"multi-socket", core.Options{Algorithm: core.AlgMultiSocket, Threads: 8, Machine: topology.NehalemEP}},
	}
	for _, tier := range tiers {
		b.Run("warm/"+tier.name, func(b *testing.B) {
			s, err := core.NewSearcher(g, tier.opt)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.BFS(0); err != nil { // absorb the cold search
				b.Fatal(err)
			}
			var edges int64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := s.BFS(roots[i%len(roots)])
				if err != nil {
					b.Fatal(err)
				}
				edges += res.EdgesTraversed
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
				b.ReportMetric(float64(b.N)/elapsed, "searches/s")
			}
		})
		b.Run("oneshot/"+tier.name, func(b *testing.B) {
			var edges int64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := core.BFS(g, roots[i%len(roots)], tier.opt)
				if err != nil {
					b.Fatal(err)
				}
				edges += res.EdgesTraversed
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
				b.ReportMetric(float64(b.N)/elapsed, "searches/s")
			}
		})
	}
}

// BenchmarkGraph500 runs the Graph500 protocol at a small scale and
// reports the harmonic-mean TEPS as the custom metric.
func BenchmarkGraph500(b *testing.B) {
	spec := graph500.DefaultSpec(16)
	spec.Roots = 4
	spec.SkipValidation = true
	var hm float64
	for i := 0; i < b.N; i++ {
		res, err := graph500.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		hm = res.HarmonicMeanTEPS
	}
	b.ReportMetric(hm/1e6, "hm-MTEPS")
}

// BenchmarkSSCA2Kernel4 measures betweenness-centrality throughput
// (BFS + dependency sweep per source) — SSCA#2's analysis kernel, the
// workload family of the paper's Fig. 10.
func BenchmarkSSCA2Kernel4(b *testing.B) {
	g := benchRMAT(b, 14, 1<<17).Undirected()
	sources := make([]graph.Vertex, 16)
	for i := range sources {
		sources[i] = graph.Vertex(i * 64)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := ssca2.Kernel4(g, sources, 4); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*len(sources))/elapsed, "sources/s")
	}
}

// BenchmarkDistBFS measures the distributed-memory prototype across
// node counts, reporting cross-node tuple traffic per edge.
func BenchmarkDistBFS(b *testing.B) {
	g := benchUniform(b, 1<<18, 8)
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var tuples, edges int64
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := dist.BFS(g, 0, dist.Options{Nodes: nodes, BatchSize: 4096})
				if err != nil {
					b.Fatal(err)
				}
				tuples = res.Comm.TuplesSent
				edges += res.EdgesTraversed
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
			}
			b.ReportMetric(float64(tuples)/float64(g.NumEdges()), "tuples/edge")
		})
	}
}

// BenchmarkAblationChunkSize sweeps the current-queue dequeue chunk
// (the granularity of the paper's LockedDequeue).
func BenchmarkAblationChunkSize(b *testing.B) {
	g := benchUniform(b, 1<<19, 8)
	for _, chunk := range []int{1, 16, 128, 1024} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			runBFS(b, g, core.Options{
				Algorithm: core.AlgSingleSocket,
				Threads:   4,
				ChunkSize: chunk,
			})
		})
	}
}

// BenchmarkInstrumentOverhead measures the cost of the observability
// layer on a 1M-vertex R-MAT graph: off (the guaranteed-zero-overhead
// path), per-level counters (-instrument), and the full per-worker
// timeline trace. "off" must stay within noise of the seed rate.
func BenchmarkInstrumentOverhead(b *testing.B) {
	g := benchRMAT(b, 20, 1<<23)
	base := core.Options{Algorithm: core.AlgSingleSocket, Threads: 4}
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"off", func(o *core.Options) {}},
		{"instrument", func(o *core.Options) { o.Instrument = true }},
		{"trace", func(o *core.Options) { o.Instrument = true; o.Trace = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			opt := base
			v.mod(&opt)
			runBFS(b, g, opt)
		})
	}
}

// BenchmarkBatchThroughput measures the MS-BFS batched query engine on
// the scale-18 R-MAT workload: one iteration runs one shared traversal
// serving `width` lanes, so queries/s is width / batch-duration. The
// single/warm sub-benchmark is the comparison point — the same graph
// served one query at a time on a warm amortized Searcher. The
// acceptance gauges are queries/s at width 64 (the edge-scan
// amortization must beat the single-lane session by >= 3x) and
// allocs/op (the warm batched path must not allocate).
func BenchmarkBatchThroughput(b *testing.B) {
	g := benchRMAT(b, 18, 16<<18)
	n := uint64(g.NumVertices())
	roots := make([]graph.Vertex, core.MaxLanes)
	for i := range roots {
		roots[i] = graph.Vertex((uint64(i)*2654435761 + 1) % n)
	}
	b.Run("single/warm", func(b *testing.B) {
		s, err := core.NewSearcher(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if _, err := s.BFS(roots[0]); err != nil { // absorb the cold search
			b.Fatal(err)
		}
		var edges int64
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res, err := s.BFS(roots[i%len(roots)])
			if err != nil {
				b.Fatal(err)
			}
			edges += res.EdgesTraversed
		}
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			b.ReportMetric(float64(b.N)/elapsed, "queries/s")
			b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
		}
	})
	for _, width := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			bs, err := core.NewBatchSearcher(g, core.BatchOptions{Width: width})
			if err != nil {
				b.Fatal(err)
			}
			defer bs.Close()
			if _, err := bs.Search(roots[:width]); err != nil { // absorb the cold batch
				b.Fatal(err)
			}
			var laneEdges int64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := bs.Search(roots[:width])
				if err != nil {
					b.Fatal(err)
				}
				for l := 0; l < width; l++ {
					laneEdges += res.Edges[l]
				}
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(b.N*width)/elapsed, "queries/s")
				b.ReportMetric(float64(laneEdges)/elapsed/1e6, "ME/s")
			}
		})
	}
}

// BenchmarkAblationVertexOrder sweeps locality orderings against search
// tiers on a scale-20 R-MAT graph (scale 16 under -short). Each
// relabeling is computed once outside every timed region and its
// one-time cost reported as "reorder-ms"; the timed loops are warm
// searches through the translation layer — callers speak original
// vertex ids throughout — so the ME/s delta against order=natural is
// the pure locality effect, and allocs/op must stay 0 to show the
// translation adds no per-query allocation.
func BenchmarkAblationVertexOrder(b *testing.B) {
	scale := 20
	if testing.Short() {
		scale = 16
	}
	g := benchRMAT(b, scale, int64(16)<<scale)

	// Deterministic non-isolated roots in original-id space; every
	// ordering answers the same queries.
	var roots []graph.Vertex
	for v := 0; v < g.NumVertices() && len(roots) < core.MaxLanes; v += 97 {
		if g.Degree(graph.Vertex(v)) > 0 {
			roots = append(roots, graph.Vertex(v))
		}
	}
	if len(roots) == 0 {
		b.Fatal("no non-isolated roots")
	}
	for distinct := len(roots); len(roots) < core.MaxLanes; {
		roots = append(roots, roots[len(roots)%distinct])
	}

	orderings := []graph.Ordering{
		graph.OrderNatural, graph.OrderDegree, graph.OrderDegreeGroup, graph.OrderBFS,
	}
	rds := make(map[graph.Ordering]*graph.Reordered, len(orderings))
	for _, o := range orderings {
		rd, err := g.Reorder(o)
		if err != nil {
			b.Fatal(err)
		}
		rds[o] = rd
	}

	tiers := []struct {
		name string
		opt  core.Options
	}{
		{"sequential", core.Options{Algorithm: core.AlgSequential, Threads: 1}},
		{"single-socket", core.Options{Algorithm: core.AlgSingleSocket, Threads: 4}},
	}
	for _, o := range orderings {
		rd := rds[o]
		for _, tier := range tiers {
			b.Run(fmt.Sprintf("order=%s/%s", o, tier.name), func(b *testing.B) {
				opt := tier.opt
				opt.Ordering = o
				opt.Reordered = rd
				s, err := core.NewSearcher(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				if _, err := s.BFS(roots[0]); err != nil { // absorb the cold search
					b.Fatal(err)
				}
				var edges int64
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					res, err := s.BFS(roots[i%len(roots)])
					if err != nil {
						b.Fatal(err)
					}
					edges += res.EdgesTraversed
				}
				if elapsed := time.Since(start).Seconds(); elapsed > 0 {
					b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
				}
				b.ReportMetric(float64(rd.ReorderTime().Milliseconds()), "reorder-ms")
			})
		}
		b.Run(fmt.Sprintf("order=%s/msbfs-64", o), func(b *testing.B) {
			bs, err := core.NewBatchSearcher(g, core.BatchOptions{
				Width:     core.MaxLanes,
				Ordering:  o,
				Reordered: rd,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer bs.Close()
			if _, err := bs.Search(roots); err != nil { // absorb the cold batch
				b.Fatal(err)
			}
			var laneEdges int64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := bs.Search(roots)
				if err != nil {
					b.Fatal(err)
				}
				for l := range roots {
					laneEdges += res.Edges[l]
				}
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(laneEdges)/elapsed/1e6, "ME/s")
			}
			b.ReportMetric(float64(rd.ReorderTime().Milliseconds()), "reorder-ms")
		})
	}
}

// BenchmarkAblationLoadBalance isolates degree-aware scheduling: each
// parallel tier runs warm searches over a skewed R-MAT graph with
// edge-budgeted chunking + hub splitting on (the auto budget) and off
// (legacy fixed-size vertex chunks). The delta is the load-balance win;
// sub-benchmarks also assert the warm path stays allocation-free with
// the hub board wired in.
func BenchmarkAblationLoadBalance(b *testing.B) {
	scale := 20
	if testing.Short() {
		scale = 16
	}
	g := benchRMAT(b, scale, int64(16)<<scale)

	var roots []graph.Vertex
	for v := 0; v < g.NumVertices() && len(roots) < 16; v += 131 {
		if g.Degree(graph.Vertex(v)) > 0 {
			roots = append(roots, graph.Vertex(v))
		}
	}
	if len(roots) == 0 {
		b.Fatal("no non-isolated roots")
	}

	tiers := []struct {
		name string
		opt  core.Options
	}{
		{"parallel-simple", core.Options{Algorithm: core.AlgParallelSimple, Threads: 4}},
		{"single-socket", core.Options{Algorithm: core.AlgSingleSocket, Threads: 4}},
		{"multi-socket", core.Options{Algorithm: core.AlgMultiSocket, Threads: 4,
			Machine: topology.Generic(2, 2, 1)}},
		{"hybrid", core.Options{Algorithm: core.AlgDirectionOptimizing, Threads: 4}},
	}
	budgets := []struct {
		name   string
		budget int64
	}{
		{"budget=on", 0}, // auto: max(1024, avg-degree × chunk size)
		{"budget=off", core.EdgeBudgetOff},
	}
	for _, tier := range tiers {
		for _, bud := range budgets {
			b.Run(tier.name+"/"+bud.name, func(b *testing.B) {
				opt := tier.opt
				opt.EdgeBudget = bud.budget
				s, err := core.NewSearcher(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				if _, err := s.BFS(roots[0]); err != nil { // absorb the cold search
					b.Fatal(err)
				}
				// The warm path must reach a zero-alloc steady state:
				// scratch, hub board, and partition tables live in the
				// Searcher, but the unbounded inter-socket channels grow
				// to a steal-pattern-dependent segment high-water mark
				// over the first few searches before recirculating. Give
				// them a bounded number of searches to get there.
				steady := false
				for attempt := 0; attempt < 6 && !steady; attempt++ {
					steady = testing.AllocsPerRun(2, func() {
						if _, err := s.BFS(roots[1%len(roots)]); err != nil {
							b.Fatal(err)
						}
					}) == 0
				}
				if !steady {
					b.Fatal("warm searches still allocating after 6 settle rounds, want steady-state 0")
				}
				var edges int64
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					res, err := s.BFS(roots[i%len(roots)])
					if err != nil {
						b.Fatal(err)
					}
					edges += res.EdgesTraversed
				}
				if elapsed := time.Since(start).Seconds(); elapsed > 0 {
					b.ReportMetric(float64(edges)/elapsed/1e6, "ME/s")
				}
			})
		}
	}
}
